GO ?= go

.PHONY: all build test check fmt vet race bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, static analysis, and the full
# suite under the race detector.
check: fmt vet race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the chain-core microbenchmarks (state root, CoW copy, block
# insert, reorg, detection query).
bench:
	$(GO) test ./internal/state/ ./internal/chain/ -run NONE -bench . -benchtime 20x
