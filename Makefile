GO ?= go

.PHONY: all build test check fmt vet lint fuzz-smoke race bench telemetry-budget trace-budget

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, static analysis (generic vet
# plus the project-specific scvet passes), the full suite under the race
# detector, and the telemetry overhead budget.
check: fmt vet lint race telemetry-budget trace-budget

# lint runs scvet, the project-specific analyzer enforcing the invariants
# generic linters cannot see: consensus determinism (detsource),
# errors.Is discipline (senterr), crypto-free mutex critical sections
# (locksafe), acyclic lock ordering (lockorder), terminating goroutines
# (goleak), stable /metrics names (metricname), bounded network-sized
# allocations (boundalloc), wire-input taint tracking (wiretaint),
# structured-logging discipline (logdisc), and durable commits
# (fsyncdisc). Run `scvet -list` for the catalog. Audited exceptions
# live in .scvet.allow with their justifications; see DESIGN.md §9.
lint:
	$(GO) run ./cmd/scvet ./...

# fuzz-smoke runs each attacker-facing decoder's native fuzz target
# briefly (frames and handshakes off the TCP wire, RLP off gossip, and
# the snap-sync/range-sync payload decoders a hostile peer controls).
# Override FUZZTIME for longer local campaigns.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) -run NONE ./internal/wire/
	$(GO) test -fuzz=FuzzParseHandshake -fuzztime=$(FUZZTIME) -run NONE ./internal/wire/
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) -run NONE ./internal/rlp/
	$(GO) test -fuzz='^FuzzParseSnapManifest$$' -fuzztime=$(FUZZTIME) -run NONE ./internal/p2p/
	$(GO) test -fuzz='^FuzzParseSnapChunkRequest$$' -fuzztime=$(FUZZTIME) -run NONE ./internal/p2p/
	$(GO) test -fuzz='^FuzzParseSnapChunk$$' -fuzztime=$(FUZZTIME) -run NONE ./internal/p2p/
	$(GO) test -fuzz='^FuzzParseRangeBlocks$$' -fuzztime=$(FUZZTIME) -run NONE ./internal/p2p/

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The wire transport is vetted explicitly on top of the repo-wide pass:
# its concurrency-heavy socket code is where vet findings bite hardest.
vet:
	$(GO) vet ./...
	$(GO) vet ./internal/wire

race:
	$(GO) test -race ./...

# bench runs the chain-core microbenchmarks (state root, CoW copy, block
# insert, reorg, detection query).
bench:
	$(GO) test ./internal/state/ ./internal/chain/ -run NONE -bench . -benchtime 20x

# telemetry-budget fails if a hot-path counter increment costs more than
# the budget (30 ns/op by default; override with
# SMARTCROWD_COUNTER_BUDGET_NS). Must run without -race: the detector's
# instrumentation would dominate the measurement.
telemetry-budget:
	$(GO) test ./internal/telemetry/ -run TestCounterOverheadBudget -count=1 -v

# trace-budget fails if opening and ending a traced span (id stamping +
# span ring + trace-store filing) costs more than the budget (5 µs/op by
# default; override with SMARTCROWD_TRACE_BUDGET_NS). Must run without
# -race for the same reason as telemetry-budget. The tracecost bench
# experiment gates the same number plus the wire-envelope cost.
trace-budget:
	$(GO) test ./internal/telemetry/ -run TestTraceOverheadBudget -count=1 -v
