// Command smartcrowd-bench regenerates the tables and figures of the
// SmartCrowd paper's evaluation (§VII).
//
// Usage:
//
//	smartcrowd-bench              # run everything at quick scale
//	smartcrowd-bench -full        # paper-sized runs (2000 blocks, 100 trials)
//	smartcrowd-bench -run fig5a   # one experiment (comma-separate for more)
//	smartcrowd-bench -list        # list experiment ids
//
// Every run prints the regenerated rows plus PASS/FAIL notes for the
// paper's qualitative claims; the exit status is non-zero if any shape
// check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		full    = flag.Bool("full", false, "paper-sized runs (slower)")
		only    = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvDir  = flag.String("csv", "", "also write each report as CSV into this directory")
		jsonDir = flag.String("json", "", "also write each report (rows, notes, metrics) as JSON into this directory")
	)
	flag.Parse()

	if *list {
		for _, exp := range bench.All() {
			fmt.Printf("%-14s %s\n", exp.ID, exp.Title)
		}
		return 0
	}

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	selected := bench.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			exp, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, exp)
		}
	}

	failures := 0
	for _, exp := range selected {
		start := time.Now()
		report, err := exp.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd-bench: %s: %v\n", exp.ID, err)
			failures++
			continue
		}
		fmt.Println(report)
		fmt.Printf("(%s in %s)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(report.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: write %s: %v\n", path, err)
				failures++
			}
		}
		if *jsonDir != "" {
			data, err := report.JSON()
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, exp.ID+".json"), data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: json %s: %v\n", exp.ID, err)
				failures++
			}
		}
		if !report.ShapeOK {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "smartcrowd-bench: %d experiment(s) failed shape checks\n", failures)
		return 1
	}
	return 0
}
