// Command smartcrowd-bench regenerates the tables and figures of the
// SmartCrowd paper's evaluation (§VII).
//
// Usage:
//
//	smartcrowd-bench              # run everything at quick scale
//	smartcrowd-bench -full        # paper-sized runs (2000 blocks, 100 trials)
//	smartcrowd-bench -run fig5a   # one experiment (comma-separate for more)
//	smartcrowd-bench -list        # list experiment ids
//
// Every run prints the regenerated rows plus PASS/FAIL notes for the
// paper's qualitative claims; the exit status is non-zero if any shape
// check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/bench"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		full    = flag.Bool("full", false, "paper-sized runs (slower)")
		only    = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvDir  = flag.String("csv", "", "also write each report as CSV into this directory")
		jsonDir = flag.String("json", "", "also write each report (rows, notes, metrics) as JSON into this directory")
		showTel = flag.Bool("telemetry", false, "print per-experiment telemetry deltas (chain/txpool/pow counters moved by the run)")
	)
	flag.Parse()

	if *list {
		for _, exp := range bench.All() {
			fmt.Printf("%-14s %s\n", exp.ID, exp.Title)
		}
		return 0
	}

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	selected := bench.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			exp, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, exp)
		}
	}

	failures := 0
	for _, exp := range selected {
		start := time.Now()
		before := telemetry.TakeSnapshot()
		report, err := exp.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd-bench: %s: %v\n", exp.ID, err)
			failures++
			continue
		}
		// Attach what the run moved in the process-wide registry: counter
		// and histogram-count deltas attribute chain/txpool/pow work to
		// this experiment even though the registry is shared.
		report.Telemetry = telemetry.Since(before)
		fmt.Println(report)
		if *showTel {
			printTelemetry(report.Telemetry)
		}
		fmt.Printf("(%s in %s)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(report.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: write %s: %v\n", path, err)
				failures++
			}
		}
		if *jsonDir != "" {
			data, err := report.JSON()
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, exp.ID+".json"), data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "smartcrowd-bench: json %s: %v\n", exp.ID, err)
				failures++
			}
		}
		if !report.ShapeOK {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "smartcrowd-bench: %d experiment(s) failed shape checks\n", failures)
		return 1
	}
	return 0
}

// printTelemetry renders the counter deltas an experiment moved, skipping
// quantile/max series (point-in-time, not attributable to one run).
func printTelemetry(deltas map[string]float64) {
	keys := make([]string, 0, len(deltas))
	for k := range deltas {
		if strings.Contains(k, "_p50") || strings.Contains(k, "_p90") ||
			strings.Contains(k, "_p99") || strings.Contains(k, "_max") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("telemetry deltas:")
	for _, k := range keys {
		fmt.Printf("  %-60s %14.0f\n", k, deltas[k])
	}
}
