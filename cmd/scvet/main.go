// Command scvet runs SmartCrowd's project-specific static-analysis
// passes over the module and exits non-zero on findings. It is the
// machine check behind the invariants earlier PRs established by hand:
// consensus determinism (detsource), errors.Is discipline (senterr),
// crypto-free critical sections (locksafe), deadlock-free lock ordering
// (lockorder), terminating goroutines (goleak), stable /metrics names
// (metricname), bounded network-sized allocations (boundalloc), wire
// taint tracking (wiretaint), event-discipline (logdisc), and durable
// commits (fsyncdisc).
//
// Usage:
//
//	scvet [-allow file] [-list] [-json] [-strict] [-pass a,b] [packages]
//
// Packages default to ./... . Audited exceptions live in .scvet.allow at
// the module root (see internal/analysis.Allowlist for the format);
// stale entries are reported as warnings — or, under -strict, as a
// non-zero exit, which is how CI keeps the allowlist from rotting.
// -json emits machine-readable findings on stdout while the canonical
// `file:line: [pass] message` lines move to stderr, so log-scanning
// problem matchers keep working. -pass restricts the run to a
// comma-separated subset of the catalog (an unknown name is a usage
// error, exit 2); staleness is only judged on full-catalog runs.
//
// Exit codes: 0 clean, 1 findings (or stale entries under -strict),
// 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/smartcrowd/smartcrowd/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape: one object per finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowPath := fs.String("allow", "", "allowlist file (default <module root>/.scvet.allow)")
	list := fs.Bool("list", false, "print the pass catalog and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout (text lines move to stderr)")
	strict := fs.Bool("strict", false, "exit non-zero when allowlist entries match nothing")
	passFilter := fs.String("pass", "", "comma-separated subset of passes to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, p := range analysis.Passes() {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name, p.Doc)
		}
		return 0
	}

	passes := analysis.Passes()
	if *passFilter != "" {
		passes = nil
		for _, name := range strings.Split(*passFilter, ",") {
			name = strings.TrimSpace(name)
			p := analysis.PassByName(name)
			if p == nil {
				fmt.Fprintf(stderr, "scvet: unknown pass %q (see scvet -list)\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	root := moduleRoot(cwd)
	if *allowPath == "" {
		*allowPath = filepath.Join(root, ".scvet.allow")
	}
	allow, err := analysis.LoadAllowlist(*allowPath)
	if err != nil {
		return fatal(stderr, err)
	}

	pkgs, err := analysis.Load(cwd, fs.Args()...)
	if err != nil {
		return fatal(stderr, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "scvet: warning: %s: type error: %v\n", pkg.ImportPath, terr)
		}
	}

	findings, suppressed := allow.Filter(analysis.RunPasses(pkgs, passes))
	textOut := io.Writer(stdout)
	if *jsonOut {
		textOut = stderr
	}
	jf := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		f.Pos.Filename = relPath(root, f.Pos.Filename)
		fmt.Fprintln(textOut, f)
		jf = append(jf, jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Pass: f.Pass, Message: f.Msg})
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jf); err != nil {
			return fatal(stderr, err)
		}
	}

	// Stale-entry accounting only makes sense when every pass ran: a
	// subset run leaves the other passes' entries legitimately unmatched.
	var stale int
	if *passFilter == "" {
		for _, e := range allow.Unused() {
			stale++
			fmt.Fprintf(stderr, "scvet: warning: %s:%d: allowlist entry matched nothing (stale?): %s %s %q\n",
				*allowPath, e.Line, e.Pass, e.FileSuffix, e.MsgSub)
		}
	}

	switch {
	case len(findings) > 0:
		fmt.Fprintf(stderr, "scvet: %d finding(s), %d suppressed by allowlist\n", len(findings), suppressed)
		return 1
	case *strict && stale > 0:
		fmt.Fprintf(stderr, "scvet: %d stale allowlist entr%s (strict)\n", stale, plural(stale, "y", "ies"))
		return 1
	case suppressed > 0:
		fmt.Fprintf(stderr, "scvet: clean (%d audited exception(s) suppressed)\n", suppressed)
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// moduleRoot resolves the enclosing module's directory via the go tool,
// falling back to dir when outside a module.
func moduleRoot(dir string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	gomod := strings.TrimSpace(string(out))
	if err != nil || gomod == "" || gomod == os.DevNull {
		return dir
	}
	return filepath.Dir(gomod)
}

// relPath shortens filenames under root for stable, readable output.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "scvet:", err)
	return 2
}
