// Command scvet runs SmartCrowd's project-specific static-analysis
// passes over the module and exits non-zero on findings. It is the
// machine check behind the invariants the last four PRs established by
// hand: consensus determinism (detsource), errors.Is discipline
// (senterr), crypto-free critical sections (locksafe), stable /metrics
// names (metricname), and bounded network-sized allocations (boundalloc).
//
// Usage:
//
//	scvet [-allow file] [-list] [packages]
//
// Packages default to ./... . Audited exceptions live in .scvet.allow at
// the module root (see internal/analysis.Allowlist for the format);
// stale entries are reported as warnings so the allowlist cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/smartcrowd/smartcrowd/internal/analysis"
)

func main() {
	allowPath := flag.String("allow", "", "allowlist file (default <module root>/.scvet.allow)")
	list := flag.Bool("list", false, "print the pass catalog and exit")
	flag.Parse()

	if *list {
		for _, p := range analysis.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root := moduleRoot(cwd)
	if *allowPath == "" {
		*allowPath = filepath.Join(root, ".scvet.allow")
	}
	allow, err := analysis.LoadAllowlist(*allowPath)
	if err != nil {
		fatal(err)
	}

	pkgs, err := analysis.Load(cwd, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "scvet: warning: %s: type error: %v\n", pkg.ImportPath, terr)
		}
	}

	findings, suppressed := allow.Filter(analysis.RunAll(pkgs))
	for _, f := range findings {
		f.Pos.Filename = relPath(root, f.Pos.Filename)
		fmt.Println(f)
	}
	for _, e := range allow.Unused() {
		fmt.Fprintf(os.Stderr, "scvet: warning: %s:%d: allowlist entry matched nothing (stale?): %s %s %q\n",
			*allowPath, e.Line, e.Pass, e.FileSuffix, e.MsgSub)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "scvet: %d finding(s), %d suppressed by allowlist\n", len(findings), suppressed)
		os.Exit(1)
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "scvet: clean (%d audited exception(s) suppressed)\n", suppressed)
	}
}

// moduleRoot resolves the enclosing module's directory via the go tool,
// falling back to dir when outside a module.
func moduleRoot(dir string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	gomod := strings.TrimSpace(string(out))
	if err != nil || gomod == "" || gomod == os.DevNull {
		return dir
	}
	return filepath.Dir(gomod)
}

// relPath shortens filenames under root for stable, readable output.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scvet:", err)
	os.Exit(2)
}
