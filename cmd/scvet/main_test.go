package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/analysis"
)

// The CLI contract under test: exit 0 clean / 1 findings / 2 usage,
// -list mirroring the catalog, -json machine output with the canonical
// text lines intact on stderr, -strict failing on stale allowlist
// entries, and allowlist resolution from a subdirectory of the module.

// chdir switches the working directory for one test. run() resolves the
// module root and load patterns from the cwd, so tests steer it this way.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeTempModule lays out a throwaway module with one dirty package
// (internal/leak spawns an unstoppable goroutine — exactly one goleak
// finding) and one clean package.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tmpmod\n\ngo 1.22\n",
		"internal/leak/leak.go": `package leak

type S struct{ n int }

func (s *S) poll() { s.n++ }

// Spin leaks: the goroutine loops forever with no stop signal.
func Spin(s *S) {
	go func() {
		for {
			s.poll()
		}
	}()
}
`,
		"internal/okpkg/ok.go": `package okpkg

func Add(a, b int) int { return a + b }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListMatchesCatalog(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	passes := analysis.Passes()
	if len(passes) < 10 {
		t.Fatalf("catalog has %d passes, want at least 10", len(passes))
	}
	if len(lines) != len(passes) {
		t.Fatalf("-list printed %d lines, catalog has %d passes", len(lines), len(passes))
	}
	for i, p := range passes {
		if !strings.HasPrefix(lines[i], p.Name) || !strings.Contains(lines[i], p.Doc) {
			t.Errorf("-list line %d = %q, want pass %q with doc", i, lines[i], p.Name)
		}
	}
}

func TestUnknownPassIsUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-pass", "nosuchpass")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown pass "nosuchpass"`) {
		t.Fatalf("stderr = %q, want unknown-pass message", stderr)
	}
}

func TestExitCodesDirtyAndClean(t *testing.T) {
	mod := writeTempModule(t)
	chdir(t, mod)

	code, stdout, _ := runCLI(t, "./...")
	if code != 1 {
		t.Fatalf("dirty tree exit = %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "[goleak]") || !strings.Contains(stdout, "leak.go") {
		t.Fatalf("stdout = %q, want a goleak finding in leak.go", stdout)
	}

	code, stdout, stderr := runCLI(t, "./internal/okpkg")
	if code != 0 {
		t.Fatalf("clean package exit = %d, want 0 (stdout %q stderr %q)", code, stdout, stderr)
	}
}

func TestJSONFindings(t *testing.T) {
	mod := writeTempModule(t)
	chdir(t, mod)

	code, stdout, stderr := runCLI(t, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Pass != "goleak" || findings[0].Line == 0 ||
		!strings.HasSuffix(findings[0].File, "leak.go") {
		t.Fatalf("findings = %+v, want one goleak finding in leak.go", findings)
	}
	// The canonical text line moves to stderr so log-based problem
	// matchers still annotate the PR.
	if !strings.Contains(stderr, "leak.go") || !strings.Contains(stderr, "[goleak]") {
		t.Fatalf("stderr = %q, want canonical file:line: [pass] line", stderr)
	}
}

func TestStrictFailsOnStaleAllowlist(t *testing.T) {
	mod := writeTempModule(t)
	chdir(t, mod)
	allow := filepath.Join(mod, "stale.allow")
	if err := os.WriteFile(allow, []byte("# audited: entry for code that no longer exists\nsenterr no_such_file.go nothing matches this\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr := runCLI(t, "-allow", allow, "./internal/okpkg")
	if code != 0 || !strings.Contains(stderr, "matched nothing") {
		t.Fatalf("non-strict: exit %d stderr %q, want 0 with a stale warning", code, stderr)
	}
	code, _, stderr = runCLI(t, "-strict", "-allow", allow, "./internal/okpkg")
	if code != 1 || !strings.Contains(stderr, "stale allowlist") {
		t.Fatalf("strict: exit %d stderr %q, want 1 citing stale entries", code, stderr)
	}
}

func TestAllowlistResolvedFromSubdirectory(t *testing.T) {
	mod := writeTempModule(t)
	if err := os.WriteFile(filepath.Join(mod, ".scvet.allow"),
		[]byte("# audited: fixture leak under test\ngoleak leak.go has no reachable termination path\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Run from inside internal/leak with no -allow flag: the module
	// root's .scvet.allow must still be found and suppress the finding.
	chdir(t, filepath.Join(mod, "internal", "leak"))
	code, stdout, stderr := runCLI(t, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout %q stderr %q)", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "suppressed") {
		t.Fatalf("stderr = %q, want suppression summary", stderr)
	}
}
