// Command smartcrowd runs a local SmartCrowd testnet and utilities.
//
// Subcommands:
//
//	keygen            generate a stakeholder keypair
//	demo              run the full release→detect→payout→query lifecycle
//	mine              seal blocks with the real CPU proof-of-work sealer
//	simulate          run a whole-platform simulation and print balances
//	node              run a networked provider on the TCP wire transport
//	serve             serve the HTTP/JSON query API
//
// Run `smartcrowd <subcommand> -h` for flags.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/core"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/pow"
	"github.com/smartcrowd/smartcrowd/internal/rpc"
	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "keygen":
		return cmdKeygen(args[1:])
	case "demo":
		return cmdDemo(args[1:])
	case "mine":
		return cmdMine(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "node":
		return cmdNode(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "-h", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "smartcrowd: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: smartcrowd <subcommand> [flags]

subcommands:
  keygen      generate a stakeholder keypair
  demo        run the full release→detect→payout→query lifecycle
  mine        seal blocks with the real CPU proof-of-work sealer
  simulate    run a whole-platform simulation and print balances
  node        run a networked provider: TCP gossip, CPU mining, /v1 API
  serve       run the demo lifecycle and serve the HTTP/JSON query API
              (with -listen/-peers: a networked node, like 'node')`)
}

func cmdKeygen(args []string) int {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	label := fs.String("label", "", "derive deterministically from a label (testing only)")
	out := fs.String("out", "", "save an encrypted keystore file to this path")
	passphrase := fs.String("passphrase", "", "keystore passphrase (required with -out)")
	_ = fs.Parse(args)

	var w *wallet.Wallet
	if *label != "" {
		w = wallet.NewDeterministic(*label)
	} else {
		var err error
		w, err = wallet.New(rand.Reader)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: keygen: %v\n", err)
			return 1
		}
	}
	fmt.Printf("address:    %s\n", w.Address())
	fmt.Printf("public key: %x\n", w.PublicKey().BytesCompressed())
	if *out != "" {
		if err := wallet.SaveKeystore(w, *out, *passphrase); err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: keygen: %v\n", err)
			return 1
		}
		// Prove the roundtrip before reporting success.
		if _, err := wallet.LoadKeystore(*out, *passphrase); err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: keygen: keystore verification failed: %v\n", err)
			return 1
		}
		fmt.Printf("keystore:   %s (AES-256-GCM, PBKDF2-HMAC-SHA256)\n", *out)
	}
	return 0
}

func cmdDemo(args []string) int {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	vulns := fs.Int("vulns", 4, "vulnerabilities seeded into the released firmware")
	insurance := fs.Uint64("insurance", 1000, "SRA insurance in ether")
	bounty := fs.Uint64("bounty", 5, "per-vulnerability bounty in ether")
	seed := fs.Int64("seed", 1, "deterministic run seed")
	_ = fs.Parse(args)

	p := core.NewPlatform(core.Config{Seed: *seed})
	must := func(err error) bool {
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: demo: %v\n", err)
			return false
		}
		return true
	}
	if !must(p.Fund(p.ProviderWallet("acme").Address(), types.EtherAmount(10_000))) ||
		!must(p.Fund(p.ProviderWallet("globex").Address(), types.EtherAmount(10_000))) ||
		!must(p.Fund(p.DetectorWallet("seclab").Address(), types.EtherAmount(100))) {
		return 1
	}
	if _, err := p.AddProvider("acme"); !must(err) {
		return 1
	}
	if _, err := p.AddProvider("globex"); !must(err) {
		return 1
	}
	if _, err := p.AddDetector("seclab", &detection.CapabilityEngine{
		Name: "seclab", Capability: 1, Speed: 4, Seed: *seed,
	}); !must(err) {
		return 1
	}

	img := detection.GenerateImage("smart-cam-fw", "2.0", detection.UniverseSpec{
		High: *vulns / 2, Medium: *vulns - *vulns/2, Seed: *seed,
	})
	fmt.Printf("release: %s v%s with %d seeded vulnerabilities\n", img.Name, img.Version, len(img.Vulns))

	sra, err := p.Release(0, img, types.EtherAmount(*insurance), types.EtherAmount(*bounty))
	if !must(err) {
		return 1
	}
	fmt.Printf("phase 1: SRA %s announced, %s escrowed\n", sra.ID.Short(), sra.Insurance)

	for i := 0; i < 6; i++ {
		blk, err := p.Mine(i % 2)
		if !must(err) {
			return 1
		}
		fmt.Printf("block %d sealed by %s (%d txs)\n",
			blk.Header.Number, blk.Header.Miner.Short(), len(blk.Txs))
	}

	ref, err := p.Reference(sra.ID)
	if !must(err) {
		return 1
	}
	fmt.Printf("phase 4: consumer reference for %s\n", sra.ID.Short())
	fmt.Printf("  provider:            %s\n", ref.Provider)
	fmt.Printf("  confirmed vulns:     %d\n", ref.ConfirmedVulns)
	fmt.Printf("  reports on chain:    %d\n", ref.Reports)
	fmt.Printf("  insurance remaining: %s\n", ref.InsuranceRemaining)
	fmt.Printf("  safe to deploy:      %v\n", ref.SafeToDeploy)
	fmt.Printf("detector earned:       %s\n", p.Detectors()[0].Earnings())
	return 0
}

func cmdMine(args []string) int {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	blocks := fs.Int("blocks", 5, "blocks to seal")
	threads := fs.Int("threads", 0, "sealer threads (0 = all CPUs)")
	target := fs.Duration("target", 2*time.Second, "desired time per block")
	_ = fs.Parse(args)

	rate := pow.HashRate(30_000)
	difficulty := uint64(rate * target.Seconds())
	if difficulty == 0 {
		difficulty = 1
	}
	fmt.Printf("calibration: %.0f header-hashes/s, difficulty %d for ~%s blocks\n",
		rate, difficulty, target)

	sealer := &pow.CPUSealer{Threads: *threads}
	parent := types.Hash{}
	miner := wallet.NewDeterministic("cli-miner").Address()
	for n := 1; n <= *blocks; n++ {
		hdr := types.Header{
			ParentID:   parent,
			Number:     uint64(n),
			Time:       uint64(n),
			Difficulty: difficulty,
			Miner:      miner,
		}
		start := time.Now()
		sealed, err := sealer.Seal(hdr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: mine: %v\n", err)
			return 1
		}
		elapsed := time.Since(start)
		parent = sealed.ID()
		fmt.Printf("block %d sealed: nonce %d, id %s, %s\n",
			n, sealed.Nonce, parent.Short(), elapsed.Round(time.Millisecond))
	}
	return 0
}

func cmdSimulate(args []string) int {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	horizon := fs.Duration("horizon", 30*time.Minute, "simulated duration")
	detectors := fs.Int("detectors", 4, "number of detectors (threads 1..n)")
	vulns := fs.Int("vulns", 8, "vulnerabilities in the released system")
	insurance := fs.Uint64("insurance", 1000, "insurance in ether")
	bounty := fs.Uint64("bounty", 5, "bounty per vulnerability in ether")
	seed := fs.Int64("seed", 1, "deterministic run seed")
	_ = fs.Parse(args)

	shares := pow.TopFiveEthereumShares()
	providers := make([]sim.ProviderSpec, len(shares))
	for i, s := range shares {
		providers[i] = sim.ProviderSpec{Name: s.Name, HashShare: s.HashShare}
	}
	specs := make([]sim.DetectorSpec, *detectors)
	for i := range specs {
		specs[i] = sim.DetectorSpec{Name: fmt.Sprintf("detector-%d", i+1), Threads: i + 1}
	}

	res, err := sim.Run(sim.Config{
		Seed:      *seed,
		Providers: providers,
		Detectors: specs,
		Releases: []sim.ReleaseSpec{{
			Provider: 2, At: 30 * time.Second,
			Insurance: types.EtherAmount(*insurance),
			Bounty:    types.EtherAmount(*bounty),
			NumVulns:  *vulns,
		}},
		Horizon: *horizon,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: simulate: %v\n", err)
		return 1
	}

	fmt.Printf("simulated %s: %d blocks sealed\n", *horizon, len(res.Blocks))
	fmt.Println("\nproviders:")
	for i, spec := range providers {
		bal := res.ProviderBalance(i)
		fmt.Printf("  %-12s HP %5.2f%%  blocks %3d  mining %8s  fees %10s  punish %8s  net %+9.3f ETH\n",
			spec.Name, spec.HashShare*100, bal.Blocks, bal.Mining, bal.Fees, bal.Punishment, bal.Net())
	}
	fmt.Println("\ndetectors:")
	for i, spec := range specs {
		bal := res.DetectorBalance(i)
		fmt.Printf("  %-12s threads %d  claims %2d  bounty %9s  gas %9s  net %+9.3f ETH\n",
			spec.Name, spec.Threads, bal.Accepted, bal.Bounty, bal.Gas, bal.Net())
	}
	for _, sra := range res.SRAs {
		fmt.Printf("\nSRA %s: %d/%d vulnerabilities confirmed, %s forfeited of %s insurance\n",
			sra.ID.Short(), sra.Confirmed, sra.NumVulns, sra.PaidOut, sra.Insurance)
	}
	fmt.Println()
	fmt.Print(res.TelemetrySummary())
	return 0
}

func cmdServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8047", "listen address")
	seed := fs.Int64("seed", 1, "deterministic run seed")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator use only)")
	listen := fs.String("listen", "", "join a real TCP network: wire transport listen address")
	peers := fs.String("peers", "", "comma-separated wire peer addresses (with -listen)")
	parallelism := fs.Int("parallelism", runtime.GOMAXPROCS(0),
		"worker count for optimistic parallel block execution (1 = serial; with -listen)")
	rpcTimeout := fs.Duration("rpc-timeout", 0,
		"read/write deadline per RPC request (0 = 30s defaults); header and idle deadlines are always set")
	_ = fs.Parse(args)

	// With a wire listen address, serve is a networked node whose RPC
	// listener is -addr — the multi-process deployment path. Without it,
	// serve keeps its original behaviour: a self-contained demo chain on
	// the simulated bus.
	if *listen != "" {
		nodeArgs := []string{"-listen", *listen, "-rpc", *addr, "-parallelism", strconv.Itoa(*parallelism),
			"-rpc-timeout", rpcTimeout.String()}
		if *peers != "" {
			nodeArgs = append(nodeArgs, "-peers", *peers)
		}
		if *pprofOn {
			nodeArgs = append(nodeArgs, "-pprof")
		}
		return cmdNode(nodeArgs)
	}

	// Build the demo platform so the API has something to serve.
	p := core.NewPlatform(core.Config{Seed: *seed})
	if err := p.Fund(p.ProviderWallet("acme").Address(), types.EtherAmount(10_000)); err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	if err := p.Fund(p.DetectorWallet("seclab").Address(), types.EtherAmount(100)); err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	prov, err := p.AddProvider("acme")
	if err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	if _, err := p.AddDetector("seclab", &detection.CapabilityEngine{
		Name: "seclab", Capability: 1, Speed: 4, Seed: *seed,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	img := detection.GenerateImage("smart-cam-fw", "2.0", detection.UniverseSpec{High: 2, Medium: 2, Seed: *seed})
	sra, err := p.Release(0, img, types.EtherAmount(1000), types.EtherAmount(5))
	if err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	for i := 0; i < 6; i++ {
		if _, err := p.Mine(0); err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
			return 1
		}
	}
	fmt.Printf("serving SmartCrowd API on http://%s\n", *addr)
	fmt.Printf("try: curl http://%s/status\n", *addr)
	fmt.Printf("     curl http://%s/reference/%s\n", *addr, sra.ID)
	fmt.Printf("     curl http://%s/metrics\n", *addr)
	if *pprofOn {
		fmt.Printf("     pprof enabled: go tool pprof http://%s/debug/pprof/profile\n", *addr)
	}
	server := rpc.NewServerWith(prov, p.Contract(), rpc.Config{EnablePprof: *pprofOn})
	if err := rpc.NewHTTPServer(*addr, server, *rpcTimeout).ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "smartcrowd: serve: %v\n", err)
		return 1
	}
	return 0
}
