package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/pow"
	"github.com/smartcrowd/smartcrowd/internal/rpc"
	"github.com/smartcrowd/smartcrowd/internal/store"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
	"github.com/smartcrowd/smartcrowd/internal/wire"
)

// cmdNode runs one full SmartCrowd provider as an OS process on the real
// TCP transport: it mines with the CPU sealer, gossips blocks and
// transactions to its peers, backfills ancestry after partitions, and
// serves the /v1 HTTP API. Several of these processes on one host (or
// many) converge to a single canonical chain.
func cmdNode(args []string) int {
	fs := flag.NewFlagSet("node", flag.ExitOnError)
	id := fs.String("id", "", "node identity (default: node@<listen addr>)")
	listen := fs.String("listen", "127.0.0.1:9470", "TCP listen address for the wire transport")
	peers := fs.String("peers", "", "comma-separated peer addresses to dial and keep dialed")
	rpcAddr := fs.String("rpc", "", "serve the /v1 HTTP API on this address (empty = no RPC)")
	mine := fs.Bool("mine", true, "mine blocks with the CPU sealer")
	threads := fs.Int("threads", 1, "sealer threads (0 = all CPUs)")
	difficulty := fs.Uint64("difficulty", 20_000, "fixed block difficulty (~hashes per block)")
	maxTxs := fs.Int("maxtxs", 0, "max transactions per mined block (0 = no cap)")
	blocks := fs.Int("blocks", 0, "stop after mining this many blocks (0 = run until interrupted)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof on the RPC listener (operator use only)")
	parallelism := fs.Int("parallelism", runtime.GOMAXPROCS(0),
		"worker count for optimistic parallel block execution (1 = serial, for debugging)")
	rpcTimeout := fs.Duration("rpc-timeout", 0,
		"read/write deadline per RPC request (0 = 30s defaults); header and idle deadlines are always set")
	datadir := fs.String("datadir", "", "persist the chain under this directory (empty = in-memory only)")
	snapInterval := fs.Uint64("snapshot-interval", 512,
		"blocks between durable state snapshots (only with -datadir)")
	_ = fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "smartcrowd: node: %v\n", err)
		return 1
	}

	nodeID := p2p.NodeID(*id)
	if nodeID == "" {
		nodeID = p2p.NodeID("node@" + *listen)
	}

	// Every node derives the identical genesis from an empty allocation
	// and default contract parameters, so handshakes across processes
	// agree. Mining rewards, not genesis funding, supply the economy.
	sc := contract.New(contract.DefaultParams(), detection.NewGroundTruthVerifier(false))
	cfg := chain.DefaultConfig(sc)
	cfg.ExecParallelism = *parallelism
	if *datadir != "" {
		disk, err := store.Open(*datadir)
		if err != nil {
			return fail(err)
		}
		cfg.Storage = disk
		cfg.SnapshotInterval = *snapInterval
	}
	prov, err := node.NewProvider(nodeID, wallet.NewDeterministic(string(nodeID)), cfg, nil)
	if err != nil {
		return fail(err)
	}
	// Flush the final state snapshot and release the store on every exit
	// path, so the next start restores from the snapshot instead of
	// replaying the whole log.
	defer func() {
		if err := prov.Chain().Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smartcrowd: node: close: %v\n", err)
		}
	}()
	if *datadir != "" {
		st := prov.Chain().StorageStats()
		fmt.Printf("node %s: chain storage in %s (%d blocks", nodeID, st.Dir, st.Blocks)
		if st.Recovered {
			fmt.Printf(", recovered after crash")
		}
		fmt.Printf("), head %d\n", prov.Chain().HeadNumber())
	}

	transport, err := wire.New(wire.Config{
		NodeID:     nodeID,
		ListenAddr: *listen,
		Genesis:    prov.Chain().Genesis().ID(),
		Peers:      splitPeers(*peers),
		Head: func() (types.Hash, uint64) {
			head := prov.Chain().Head()
			return head.ID(), head.Header.Number
		},
	})
	if err != nil {
		return fail(err)
	}
	defer transport.Close()
	prov.AttachTransport(transport)
	transport.Start()
	fmt.Printf("node %s: wire transport on %s", nodeID, transport.Addr())
	if len(splitPeers(*peers)) > 0 {
		fmt.Printf(", dialing %s", *peers)
	}
	fmt.Println()

	if *rpcAddr != "" {
		server := rpc.NewServerWith(prov, sc, rpc.Config{EnablePprof: *pprofOn})
		// Deadlines on every connection phase keep slow-loris clients
		// from pinning handler goroutines on an unattended listener.
		httpSrv := rpc.NewHTTPServer(*rpcAddr, server, *rpcTimeout)
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "smartcrowd: node: rpc: %v\n", err)
			}
		}()
		fmt.Printf("node %s: /v1 API on http://%s\n", nodeID, *rpcAddr)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { <-sig; close(stop) }()

	// Gossip pump: drain the transport whenever messages land, with a
	// timer fallback so re-dial events and stragglers are never stuck.
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-transport.Wake():
			case <-tick.C:
			case <-stop:
				return
			}
			prov.HandleMessages()
		}
	}()

	if !*mine {
		<-stop
		return 0
	}

	sealer := &pow.CPUSealer{Threads: *threads}
	mined := 0
	for {
		select {
		case <-stop:
			return 0
		default:
		}
		blk, err := prov.SealAndPublish(sealer, uint64(time.Now().UnixMilli()), *difficulty, *maxTxs, stop)
		if errors.Is(err, node.ErrStaleSeal) {
			continue // head moved under us: rebuild on the new head
		}
		if err != nil {
			select {
			case <-stop:
				return 0
			default:
			}
			if errors.Is(err, pow.ErrSealAborted) {
				continue
			}
			fmt.Fprintf(os.Stderr, "smartcrowd: node: seal: %v\n", err)
			time.Sleep(250 * time.Millisecond)
			continue
		}
		mined++
		fmt.Printf("node %s: sealed block %d (%s, %d txs)\n",
			nodeID, blk.Header.Number, blk.ID().Short(), len(blk.Txs))
		if *blocks > 0 && mined >= *blocks {
			fmt.Printf("node %s: mined %d blocks, holding at head %d\n", nodeID, mined, prov.Chain().HeadNumber())
			<-stop
			return 0
		}
	}
}

func splitPeers(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
