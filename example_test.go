package smartcrowd_test

import (
	"fmt"

	"github.com/smartcrowd/smartcrowd"
)

// Example walks the full SmartCrowd lifecycle: an insured release, crowd
// detection through the two-phase report protocol, automatic payout, and
// the consumer's authoritative reference.
func Example() {
	p := smartcrowd.NewPlatform(smartcrowd.PlatformConfig{Seed: 42})
	_ = p.Fund(p.ProviderWallet("acme").Address(), smartcrowd.EtherAmount(10_000))
	_ = p.Fund(p.DetectorWallet("seclab").Address(), smartcrowd.EtherAmount(100))
	_, _ = p.AddProvider("acme")
	_, _ = p.AddDetector("seclab", &smartcrowd.CapabilityEngine{
		Name: "seclab", Capability: 1, Speed: 8, Seed: 42,
	})

	img := smartcrowd.GenerateImage("smart-lock-fw", "1.3.0",
		smartcrowd.UniverseSpec{High: 2, Medium: 1, Seed: 42})
	sra, _ := p.Release(0, img, smartcrowd.EtherAmount(1000), smartcrowd.EtherAmount(5))
	for i := 0; i < 6; i++ {
		_, _ = p.Mine(0)
	}

	ref, _ := p.Reference(sra.ID)
	fmt.Printf("confirmed: %d, safe to deploy: %v\n", ref.ConfirmedVulns, ref.SafeToDeploy)
	fmt.Printf("detector earned: %s\n", p.Detectors()[0].Earnings())
	// Output:
	// confirmed: 3, safe to deploy: false
	// detector earned: 15 ETH
}

// ExampleRunSimulation reproduces a slice of the paper's evaluation: a
// 30-minute platform run with capability-graded detectors.
func ExampleRunSimulation() {
	res, err := smartcrowd.RunSimulation(smartcrowd.SimConfig{
		Seed: 7,
		Providers: []smartcrowd.ProviderSpec{
			{Name: "p1", HashShare: 0.6},
			{Name: "p2", HashShare: 0.4},
		},
		Detectors: []smartcrowd.DetectorSpec{
			{Name: "slow", Threads: 1},
			{Name: "fast", Threads: 8},
		},
		Releases: []smartcrowd.ReleaseSpec{{
			Provider:  0,
			At:        30_000_000_000, // 30 s
			Insurance: smartcrowd.EtherAmount(1000),
			Bounty:    smartcrowd.EtherAmount(5),
			NumVulns:  6,
		}},
		Horizon: 1_800_000_000_000, // 30 min
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sra := res.SRAs[0]
	fmt.Printf("confirmed %d/%d, forfeited %s\n", sra.Confirmed, sra.NumVulns, sra.PaidOut)
	// Output:
	// confirmed 6/6, forfeited 30 ETH
}

// ExamplePaperProviderModel evaluates the paper's §VI-B theory: the
// vulnerability-proportion baseline of the 14.9%-hashing-power provider.
func ExamplePaperProviderModel() {
	m := smartcrowd.PaperProviderModel(0.149, 1000)
	fmt.Printf("VPB at 10 minutes: %.3f\n", m.VPB(10*60*1_000_000_000))
	// Output:
	// VPB at 10 minutes: 0.038
}

// ExampleAggregateFindings merges differently-worded reports of the same
// vulnerability (paper §VIII, N-version descriptions).
func ExampleAggregateFindings() {
	a := []smartcrowd.Finding{{VulnID: "V-1", Severity: smartcrowd.SeverityMedium, Evidence: "overflow in parser"}}
	b := []smartcrowd.Finding{{VulnID: "V-1", Severity: smartcrowd.SeverityHigh, Evidence: "heap smash via URI"}}
	merged := smartcrowd.AggregateFindings(a, b)
	fmt.Printf("%d finding, severity %s\n", len(merged), merged[0].Severity)
	// Output:
	// 1 finding, severity high
}
