// Package smartcrowd is a from-scratch Go implementation of SmartCrowd
// (Wu et al., ICDCS 2019): a blockchain-powered platform that crowdsources
// IoT system vulnerability detection with decentralized, automated
// incentives.
//
// The platform runs three stakeholder roles over a proof-of-work
// blockchain with a gas-metered contract VM:
//
//   - IoT providers release systems through insured announcements (SRAs),
//     mine the chain, verify detection reports, and are punished — out of
//     their escrowed insurance — for every confirmed vulnerability;
//   - detectors scan released systems and submit two-phase reports
//     (commitment R†, reveal R*), earning the preset bounty automatically
//     for every first-reported genuine vulnerability;
//   - consumers query the chain as an authoritative reference before
//     deploying a system.
//
// # Quick start
//
//	p := smartcrowd.NewPlatform(smartcrowd.PlatformConfig{Seed: 1})
//	_ = p.Fund(p.ProviderWallet("acme").Address(), smartcrowd.EtherAmount(10_000))
//	_ = p.Fund(p.DetectorWallet("lab").Address(), smartcrowd.EtherAmount(100))
//	provider, _ := p.AddProvider("acme")
//	_, _ = p.AddDetector("lab", &smartcrowd.CapabilityEngine{Name: "lab", Capability: 1})
//
//	img := smartcrowd.GenerateImage("cam-fw", "2.0", smartcrowd.UniverseSpec{High: 3, Seed: 7})
//	sra, _ := p.Release(0, img, smartcrowd.EtherAmount(1000), smartcrowd.EtherAmount(5))
//	for i := 0; i < 5; i++ {
//		_, _ = p.Mine(0)
//	}
//	ref, _ := p.Reference(sra.ID)
//	fmt.Println(ref.ConfirmedVulns, ref.SafeToDeploy)
//	_ = provider
//
// For large-scale experiments (hours of simulated mining in milliseconds)
// use RunSimulation, which reproduces the paper's §VII evaluation; the
// cmd/smartcrowd-bench binary regenerates every table and figure.
package smartcrowd

import (
	"errors"
	"net/http"

	"github.com/smartcrowd/smartcrowd/internal/core"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/economics"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/rpc"
	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// Core value types.
type (
	// Amount is a currency quantity in gwei (10⁻⁹ ether).
	Amount = types.Amount
	// Address is a 20-byte account identifier.
	Address = types.Address
	// Hash is a 32-byte Keccak-256 digest.
	Hash = types.Hash
	// Severity classifies a vulnerability's risk.
	Severity = types.Severity
	// Finding is one reported vulnerability.
	Finding = types.Finding
	// SRA is a system release announcement (paper Eq. 1).
	SRA = types.SRA
	// InitialReport is the R† commitment (paper Eq. 3).
	InitialReport = types.InitialReport
	// DetailedReport is the R* reveal (paper Eq. 5).
	DetailedReport = types.DetailedReport
	// Wallet is a secp256k1 signing identity.
	Wallet = wallet.Wallet
)

// Currency units.
const (
	GWei  = types.GWei
	Ether = types.Ether
)

// Severity levels.
const (
	SeverityLow    = types.SeverityLow
	SeverityMedium = types.SeverityMedium
	SeverityHigh   = types.SeverityHigh
)

// EtherAmount converts whole ether to an Amount.
func EtherAmount(n uint64) Amount { return types.EtherAmount(n) }

// Platform orchestration.
type (
	// Platform is a running SmartCrowd deployment: providers, detectors
	// and consumers over a gossip network.
	Platform = core.Platform
	// PlatformConfig parameterizes NewPlatform.
	PlatformConfig = core.Config
	// Reference is the consumer-facing security summary for a release.
	Reference = node.Reference
	// ProviderNode is a mining IoT provider (full node).
	ProviderNode = node.ProviderNode
	// DetectorNode is a lightweight detector driving the two-phase
	// report protocol.
	DetectorNode = node.DetectorNode
	// Consumer queries the chain before deployment.
	Consumer = node.Consumer
)

// NewPlatform creates an empty platform; add providers and detectors, then
// drive it with Release, Mine and Step.
func NewPlatform(cfg PlatformConfig) *Platform { return core.NewPlatform(cfg) }

// Detection substrate.
type (
	// SystemImage is a released IoT system with its vulnerability
	// universe.
	SystemImage = detection.SystemImage
	// UniverseSpec sizes a generated vulnerability universe.
	UniverseSpec = detection.UniverseSpec
	// Vulnerability is one ground-truth flaw.
	Vulnerability = detection.Vulnerability
	// Engine is a detector's analysis capability.
	Engine = detection.Engine
	// CapabilityEngine models a detector with tunable capability/speed.
	CapabilityEngine = detection.CapabilityEngine
	// ForgingEngine fabricates findings (attack model).
	ForgingEngine = detection.ForgingEngine
	// PlagiarizingEngine replays stolen findings (attack model).
	PlagiarizingEngine = detection.PlagiarizingEngine
	// ServiceProfile simulates a Table-I third-party scanning service.
	ServiceProfile = detection.ServiceProfile
	// Detection is one engine finding with its discovery time.
	Detection = detection.Detection
	// OverlapStats measures how much two finding sets intersect.
	OverlapStats = detection.OverlapStats
)

// Extended detection capabilities (paper §VIII).
type (
	// VulnLibrary is a CVE/NVD-style signature database.
	VulnLibrary = detection.VulnLibrary
	// Signature is one known-vulnerability record.
	Signature = detection.Signature
	// LibraryEngine scans by signature matching against a library.
	LibraryEngine = detection.LibraryEngine
	// FuzzingEngine models dynamic/fuzz testing with an iteration budget.
	FuzzingEngine = detection.FuzzingEngine
	// CompositeEngine merges engines N-version style.
	CompositeEngine = detection.CompositeEngine
	// Notification is a retrospective-detection alert for a subscribed
	// consumer (the SmartRetro extension).
	Notification = core.Notification
)

// NewVulnLibrary creates an empty signature database.
func NewVulnLibrary() *VulnLibrary { return detection.NewVulnLibrary() }

// AggregateFindings merges multiple detectors' findings into one
// deduplicated reference (N-version descriptions, paper §VIII).
func AggregateFindings(reports ...[]Finding) []Finding {
	return detection.AggregateFindings(reports...)
}

// Overlap computes the pairwise overlap between two scans.
func Overlap(nameA string, a []Detection, nameB string, b []Detection) OverlapStats {
	return detection.Overlap(nameA, a, nameB, b)
}

// CountBySeverity tallies detections per severity in Table I column order
// (high, medium, low).
func CountBySeverity(ds []Detection) [3]int { return detection.CountBySeverity(ds) }

// GenerateImage builds a system image with a seeded vulnerability
// universe.
func GenerateImage(name, version string, spec UniverseSpec) *SystemImage {
	return detection.GenerateImage(name, version, spec)
}

// TableIApps returns the two IoT apps of the paper's Table I.
func TableIApps() []*SystemImage { return detection.TableIApps() }

// TableIServices returns the six third-party service profiles of Table I.
func TableIServices() []*ServiceProfile { return detection.TableIServices() }

// Experiment harness.
type (
	// SimConfig parameterizes a whole-platform simulation run.
	SimConfig = sim.Config
	// SimResult carries a run's blocks, balances and SRA outcomes.
	SimResult = sim.Result
	// ProviderSpec configures one simulated mining provider.
	ProviderSpec = sim.ProviderSpec
	// DetectorSpec configures one simulated detector.
	DetectorSpec = sim.DetectorSpec
	// ReleaseSpec schedules one simulated SRA.
	ReleaseSpec = sim.ReleaseSpec
)

// RunSimulation executes a deterministic whole-platform simulation — the
// harness behind every table and figure reproduction.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// Theoretical model (paper §VI-B).
type (
	// ProviderModel evaluates provider incentives, punishments and the
	// VPB baseline (Eq. 8, 9, 14).
	ProviderModel = economics.ProviderModel
	// DetectorModel evaluates detector balances (Eq. 13).
	DetectorModel = economics.DetectorModel
)

// PaperProviderModel returns the provider model calibrated to the paper's
// testbed for a hashing-power share and insurance.
func PaperProviderModel(hashShare, insuranceEther float64) ProviderModel {
	return economics.PaperProviderModel(hashShare, insuranceEther)
}

// TotalDetectionCapability computes DC_T (Eq. 11).
func TotalDetectionCapability(capabilities, rhos []float64) (float64, error) {
	return economics.TotalDetectionCapability(capabilities, rhos)
}

// NewWallet derives a deterministic wallet from a label (simulation use
// only — not for real value).
func NewWallet(label string) *Wallet { return wallet.NewDeterministic(label) }

// SaveKeystore persists a wallet's key encrypted under a passphrase
// (AES-256-GCM, PBKDF2-HMAC-SHA256).
func SaveKeystore(w *Wallet, path, passphrase string) error {
	return wallet.SaveKeystore(w, path, passphrase)
}

// LoadKeystore unseals a keystore file.
func LoadKeystore(path, passphrase string) (*Wallet, error) {
	return wallet.LoadKeystore(path, passphrase)
}

// NewAPIHandler serves the platform's HTTP/JSON query API (status, blocks,
// balances, receipts, SRA references, light-client proofs, transaction
// submission) over its first provider node — the interaction surface the
// paper implements with the Ethereum JSON API.
func NewAPIHandler(p *Platform) (http.Handler, error) {
	providers := p.Providers()
	if len(providers) == 0 {
		return nil, errors.New("smartcrowd: platform has no providers")
	}
	return rpc.NewServer(providers[0], p.Contract()), nil
}
