package txpool

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// fakeState is a StateReader with fixed values.
type fakeState struct {
	nonces   map[types.Address]uint64
	balances map[types.Address]types.Amount
}

func (f *fakeState) Nonce(a types.Address) uint64 { return f.nonces[a] }
func (f *fakeState) Balance(a types.Address) types.Amount {
	if f.balances == nil {
		return types.EtherAmount(1_000_000)
	}
	return f.balances[a]
}

func newFakeState() *fakeState {
	return &fakeState{nonces: make(map[types.Address]uint64)}
}

func signedTx(t *testing.T, w *wallet.Wallet, nonce uint64, gasPrice types.Amount) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		Kind:     types.TxTransfer,
		Nonce:    nonce,
		To:       types.Address{1},
		Value:    1,
		GasLimit: 21_000,
		GasPrice: gasPrice,
	}
	if err := types.SignTx(tx, w); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestAddAndPending(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	tx := signedTx(t, alice, 0, 50)
	if err := p.Add(tx, st); err != nil {
		t.Fatal(err)
	}
	if !p.Has(tx.Hash()) || p.Len() != 1 {
		t.Error("pool does not hold the tx")
	}
	got := p.Pending(st, 10)
	if len(got) != 1 || got[0].Hash() != tx.Hash() {
		t.Error("Pending did not return the tx")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	tx := signedTx(t, alice, 0, 50)
	if err := p.Add(tx, st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx, st); !errors.Is(err, ErrKnownTx) {
		t.Errorf("err = %v, want ErrKnownTx", err)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	p := New(Config{})
	alice := wallet.NewDeterministic("alice")
	tx := signedTx(t, alice, 0, 50)
	tx.Value = 999 // break signature
	if err := p.Add(tx, newFakeState()); !errors.Is(err, ErrInvalidTx) {
		t.Errorf("err = %v, want ErrInvalidTx", err)
	}
}

func TestAddRejectsStaleNonce(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	st.nonces[alice.Address()] = 5
	if err := p.Add(signedTx(t, alice, 4, 50), st); !errors.Is(err, ErrNonceTooLow) {
		t.Errorf("err = %v, want ErrNonceTooLow", err)
	}
}

func TestAddRejectsUnaffordable(t *testing.T) {
	p := New(Config{})
	alice := wallet.NewDeterministic("alice")
	st := &fakeState{
		nonces:   map[types.Address]uint64{},
		balances: map[types.Address]types.Amount{alice.Address(): 10},
	}
	if err := p.Add(signedTx(t, alice, 0, 50), st); !errors.Is(err, ErrUnaffordable) {
		t.Errorf("err = %v, want ErrUnaffordable", err)
	}
}

func TestReplacementNeedsPriceBump(t *testing.T) {
	p := New(Config{PriceBump: 10})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	if err := p.Add(signedTx(t, alice, 0, 100), st); err != nil {
		t.Fatal(err)
	}
	// +5% is not enough.
	if err := p.Add(signedTx(t, alice, 0, 105), st); !errors.Is(err, ErrUnderpriced) {
		t.Errorf("err = %v, want ErrUnderpriced", err)
	}
	// +10% replaces.
	better := signedTx(t, alice, 0, 110)
	if err := p.Add(better, st); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("pool has %d txs after replacement, want 1", p.Len())
	}
	got := p.Pending(st, 1)
	if got[0].GasPrice != 110 {
		t.Error("replacement not effective")
	}
}

func TestCapacity(t *testing.T) {
	p := New(Config{Capacity: 2})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	if err := p.Add(signedTx(t, alice, 0, 50), st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(signedTx(t, alice, 1, 50), st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(signedTx(t, alice, 2, 50), st); !errors.Is(err, ErrPoolFull) {
		t.Errorf("err = %v, want ErrPoolFull", err)
	}
}

func TestPendingRespectsNonceOrderWithinSender(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	// Insert out of order, with the later nonce priced higher.
	tx1 := signedTx(t, alice, 1, 500)
	tx0 := signedTx(t, alice, 0, 10)
	if err := p.Add(tx1, st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx0, st); err != nil {
		t.Fatal(err)
	}
	got := p.Pending(st, 10)
	if len(got) != 2 || got[0].Nonce != 0 || got[1].Nonce != 1 {
		t.Errorf("pending order broken: %v", []uint64{got[0].Nonce, got[1].Nonce})
	}
}

func TestPendingSkipsGappedNonces(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	if err := p.Add(signedTx(t, alice, 2, 50), st); err != nil { // gap: 0,1 missing
		t.Fatal(err)
	}
	if got := p.Pending(st, 10); len(got) != 0 {
		t.Errorf("gapped tx selected: %d", len(got))
	}
}

func TestPendingPrefersHigherFeeAcrossSenders(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")
	if err := p.Add(signedTx(t, alice, 0, 10), st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(signedTx(t, bob, 0, 90), st); err != nil {
		t.Fatal(err)
	}
	got := p.Pending(st, 1)
	if got[0].From != bob.Address() {
		t.Error("lower-fee tx selected first")
	}
}

func TestPendingLimit(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	for n := uint64(0); n < 5; n++ {
		if err := p.Add(signedTx(t, alice, n, 50), st); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Pending(st, 3); len(got) != 3 {
		t.Errorf("limit ignored: %d", len(got))
	}
	if got := p.Pending(st, 0); len(got) != 5 {
		t.Errorf("unlimited pending = %d, want 5", len(got))
	}
}

func TestRemoveAndPrune(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	tx0 := signedTx(t, alice, 0, 50)
	tx1 := signedTx(t, alice, 1, 50)
	if err := p.Add(tx0, st); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx1, st); err != nil {
		t.Fatal(err)
	}

	p.Remove(tx0.Hash())
	if p.Has(tx0.Hash()) || p.Len() != 1 {
		t.Error("Remove failed")
	}

	// The chain advanced: alice's confirmed nonce is now 2.
	st.nonces[alice.Address()] = 2
	p.Prune(st)
	if p.Len() != 0 {
		t.Errorf("Prune left %d stale txs", p.Len())
	}
}

func TestPendingDeterministic(t *testing.T) {
	build := func() []*types.Transaction {
		p := New(Config{})
		st := newFakeState()
		for i := 0; i < 6; i++ {
			w := wallet.NewDeterministic(string(rune('a' + i)))
			if err := p.Add(signedTx(t, w, 0, 50), st); err != nil {
				t.Fatal(err)
			}
		}
		return p.Pending(st, 0)
	}
	a, b := build(), build()
	for i := range a {
		if a[i].Hash() != b[i].Hash() {
			t.Fatal("Pending order is not deterministic")
		}
	}
}

func TestAddAllBatchAdmission(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")

	txs := []*types.Transaction{
		signedTx(t, alice, 0, 50),
		signedTx(t, alice, 1, 50),
		signedTx(t, bob, 0, 60),
	}
	for i, err := range p.AddAll(txs, st) {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if p.Len() != 3 {
		t.Fatalf("pool holds %d txs, want 3", p.Len())
	}
	// Batch admission must be indistinguishable from sequential Add calls:
	// Pending ordering (price desc, arrival tie-break) matches slice order.
	got := p.Pending(st, 10)
	if len(got) != 3 || got[0].Hash() != txs[2].Hash() ||
		got[1].Hash() != txs[0].Hash() || got[2].Hash() != txs[1].Hash() {
		t.Error("Pending order does not match sequential-Add semantics")
	}
}

func TestAddAllReportsPerTxErrors(t *testing.T) {
	p := New(Config{})
	st := newFakeState()
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")

	dup := signedTx(t, alice, 0, 50)
	if err := p.Add(dup, st); err != nil {
		t.Fatal(err)
	}
	bad := signedTx(t, bob, 1, 50)
	bad.Value = 999 // breaks the signature

	txs := []*types.Transaction{
		dup,                       // 0: already pooled
		bad,                       // 1: invalid signature
		signedTx(t, bob, 0, 50),   // 2: fine
		signedTx(t, alice, 1, 50), // 3: fine
	}
	errs := p.AddAll(txs, st)
	if !errors.Is(errs[0], ErrKnownTx) {
		t.Errorf("errs[0] = %v, want ErrKnownTx", errs[0])
	}
	if !errors.Is(errs[1], ErrInvalidTx) {
		t.Errorf("errs[1] = %v, want ErrInvalidTx", errs[1])
	}
	if errs[2] != nil || errs[3] != nil {
		t.Errorf("valid txs rejected: %v, %v", errs[2], errs[3])
	}
	if p.Len() != 3 {
		t.Fatalf("pool holds %d txs, want 3", p.Len())
	}
}

func TestAddAllEmpty(t *testing.T) {
	p := New(Config{})
	if errs := p.AddAll(nil, newFakeState()); len(errs) != 0 {
		t.Fatalf("nil batch returned %d errors", len(errs))
	}
}
