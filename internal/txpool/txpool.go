// Package txpool implements the pending-transaction pool mining providers
// draw from when assembling SmartCrowd blocks. Transactions are kept per
// sender in nonce order; block assembly selects by gas price (highest
// first) while respecting nonce sequencing, mirroring geth's pending pool.
package txpool

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Pool errors.
var (
	ErrKnownTx      = errors.New("txpool: transaction already pooled")
	ErrUnderpriced  = errors.New("txpool: replacement transaction underpriced")
	ErrPoolFull     = errors.New("txpool: pool capacity reached")
	ErrNonceTooLow  = errors.New("txpool: nonce below sender's confirmed nonce")
	ErrInvalidTx    = errors.New("txpool: transaction failed validation")
	ErrUnaffordable = errors.New("txpool: sender balance below transaction cost")
)

// StateReader supplies the account facts admission control needs.
type StateReader interface {
	Nonce(types.Address) uint64
	Balance(types.Address) types.Amount
}

// Config tunes the pool.
type Config struct {
	// Capacity bounds the total pooled transactions (0 = 4096).
	Capacity int
	// PriceBump is the minimum percent gas-price increase for replacing a
	// same-nonce transaction (0 = 10).
	PriceBump int
}

// Pool is a thread-safe pending pool.
type Pool struct {
	mu        sync.Mutex
	cfg       Config
	perSender map[types.Address]map[uint64]*types.Transaction // nonce → tx
	byHash    map[types.Hash]*types.Transaction
	// arrival orders same-price transactions first-come-first-served at
	// block assembly, as geth does.
	arrival map[types.Hash]uint64
	seq     uint64
}

// New creates an empty pool.
func New(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.PriceBump <= 0 {
		cfg.PriceBump = 10
	}
	return &Pool{
		cfg:       cfg,
		perSender: make(map[types.Address]map[uint64]*types.Transaction),
		byHash:    make(map[types.Hash]*types.Transaction),
		arrival:   make(map[types.Hash]uint64),
	}
}

// Add admits a transaction after stateless validation and solvency checks
// against the supplied state view. The expensive stateless work — ECDSA
// sender recovery inside ValidateBasic, the transaction hash — runs before
// the pool mutex is taken, so concurrent submitters never serialize on
// signature recovery.
func (p *Pool) Add(tx *types.Transaction, st StateReader) error {
	if err := tx.ValidateBasic(); err != nil {
		mAdmitInvalid.Inc()
		return fmt.Errorf("%w: %v", ErrInvalidTx, err)
	}
	hash := tx.Hash()

	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.admitLocked(tx, hash, st)
	recordAdmit(err)
	mPending.Set(int64(len(p.byHash)))
	return err
}

// AddAll admits a batch of transactions. Sender recovery is warmed in
// parallel across the shared prefetcher pool and all stateless validation
// happens before the lock, so the critical section is pure map work. The
// result has one entry per transaction (nil = admitted), letting callers
// relay exactly the admitted subset; order of admission matches slice
// order, so the batch behaves like sequential Add calls.
func (p *Pool) AddAll(txs []*types.Transaction, st StateReader) []error {
	return p.AddAllTraced(txs, st, telemetry.TraceContext{})
}

// AddAllTraced is AddAll under a trace context: the whole batch is
// covered by one admission span (spans are batch-granular, never
// per-transaction) parented into tc when valid.
func (p *Pool) AddAllTraced(txs []*types.Transaction, st StateReader, tc telemetry.TraceContext) []error {
	errs := make([]error, len(txs))
	if len(txs) == 0 {
		return errs
	}
	span := telemetry.StartSpanIn(tc, "txpool.AddAll")
	defer func() {
		admitted := 0
		for _, err := range errs {
			if err == nil {
				admitted++
			}
		}
		span.End(telemetry.L("txs", strconv.Itoa(len(txs))), telemetry.L("admitted", strconv.Itoa(admitted)))
	}()
	types.RecoverSenders(txs)
	hashes := make([]types.Hash, len(txs))
	for i, tx := range txs {
		if err := tx.ValidateBasic(); err != nil {
			errs[i] = fmt.Errorf("%w: %v", ErrInvalidTx, err)
			mAdmitInvalid.Inc()
			continue
		}
		hashes[i] = tx.Hash()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	for i, tx := range txs {
		if errs[i] != nil {
			continue
		}
		errs[i] = p.admitLocked(tx, hashes[i], st)
		recordAdmit(errs[i])
	}
	mPending.Set(int64(len(p.byHash)))
	return errs
}

// admitLocked performs the stateful admission checks and inserts the
// (already validated) transaction. Callers hold the lock.
func (p *Pool) admitLocked(tx *types.Transaction, hash types.Hash, st StateReader) error {
	sender := tx.From
	if _, known := p.byHash[hash]; known {
		return ErrKnownTx
	}
	if st != nil {
		if tx.Nonce < st.Nonce(sender) {
			return fmt.Errorf("%w: confirmed %d, tx %d", ErrNonceTooLow, st.Nonce(sender), tx.Nonce)
		}
		if st.Balance(sender) < tx.Cost() {
			return fmt.Errorf("%w: balance %s, cost %s", ErrUnaffordable, st.Balance(sender), tx.Cost())
		}
	}

	bucket := p.perSender[sender]
	if existing, ok := bucket[tx.Nonce]; ok {
		// Same-nonce replacement requires a meaningful price bump.
		threshold := existing.GasPrice + existing.GasPrice*types.Amount(p.cfg.PriceBump)/100
		if tx.GasPrice < threshold {
			return fmt.Errorf("%w: have %s, need ≥ %s", ErrUnderpriced, tx.GasPrice, threshold)
		}
		delete(p.byHash, existing.Hash())
	} else if len(p.byHash) >= p.cfg.Capacity {
		return ErrPoolFull
	}

	if bucket == nil {
		bucket = make(map[uint64]*types.Transaction)
		p.perSender[sender] = bucket
	}
	bucket[tx.Nonce] = tx
	p.byHash[hash] = tx
	p.seq++
	p.arrival[hash] = p.seq
	return nil
}

// Has reports whether the pool holds the transaction.
func (p *Pool) Has(hash types.Hash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.byHash[hash]
	return ok
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byHash)
}

// Remove drops a transaction (e.g. after inclusion in a block).
func (p *Pool) Remove(hash types.Hash) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.removeLocked(hash)
	mPending.Set(int64(len(p.byHash)))
}

func (p *Pool) removeLocked(hash types.Hash) {
	tx, ok := p.byHash[hash]
	if !ok {
		return
	}
	delete(p.byHash, hash)
	bucket := p.perSender[tx.From]
	delete(bucket, tx.Nonce)
	if len(bucket) == 0 {
		delete(p.perSender, tx.From)
	}
}

// Prune drops every transaction whose nonce is now below the sender's
// confirmed nonce (called after a new block lands).
func (p *Pool) Prune(st StateReader) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for sender, bucket := range p.perSender {
		confirmed := st.Nonce(sender)
		for nonce, tx := range bucket {
			if nonce < confirmed {
				delete(p.byHash, tx.Hash())
				delete(p.arrival, tx.Hash())
				delete(bucket, nonce)
			}
		}
		if len(bucket) == 0 {
			delete(p.perSender, sender)
		}
	}
	mPending.Set(int64(len(p.byHash)))
}

// Pending selects up to maxTxs transactions for block assembly: senders'
// transactions stay nonce-ordered, and across senders higher-fee
// transactions win. Transactions whose nonce does not chain onto the
// sender's confirmed nonce are skipped (gapped).
func (p *Pool) Pending(st StateReader, maxTxs int) []*types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Build per-sender runnable queues: consecutive nonces starting at the
	// confirmed nonce.
	type queue struct {
		txs []*types.Transaction
	}
	queues := make([]*queue, 0, len(p.perSender))
	for sender, bucket := range p.perSender {
		start := uint64(0)
		if st != nil {
			start = st.Nonce(sender)
		}
		q := &queue{}
		for n := start; ; n++ {
			tx, ok := bucket[n]
			if !ok {
				break
			}
			q.txs = append(q.txs, tx)
		}
		if len(q.txs) > 0 {
			queues = append(queues, q)
		}
	}

	// Deterministic order: sort queues by head gas price desc, tie-break
	// by head hash.
	var out []*types.Transaction
	for len(out) < maxTxs || maxTxs <= 0 {
		sort.Slice(queues, func(i, j int) bool {
			a, b := queues[i].txs[0], queues[j].txs[0]
			if a.GasPrice != b.GasPrice {
				return a.GasPrice > b.GasPrice
			}
			return p.arrival[a.Hash()] < p.arrival[b.Hash()]
		})
		if len(queues) == 0 {
			break
		}
		out = append(out, queues[0].txs[0])
		queues[0].txs = queues[0].txs[1:]
		if len(queues[0].txs) == 0 {
			queues = queues[1:]
		}
		if maxTxs > 0 && len(out) >= maxTxs {
			break
		}
	}
	return out
}
