package txpool

import (
	"errors"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

var (
	mAdmitAccepted     = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "accepted"))
	mAdmitDuplicate    = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "duplicate"))
	mAdmitUnderpriced  = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "underpriced"))
	mAdmitFull         = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "full"))
	mAdmitNonceLow     = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "nonce_low"))
	mAdmitUnaffordable = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "unaffordable"))
	mAdmitInvalid      = telemetry.GetCounter("smartcrowd_txpool_admit_total", telemetry.L("outcome", "invalid"))
	mPending           = telemetry.GetGauge("smartcrowd_txpool_pending")
)

func init() {
	telemetry.SetHelp("smartcrowd_txpool_admit_total", "transaction admission attempts, by outcome")
	telemetry.SetHelp("smartcrowd_txpool_pending", "transactions currently pooled")
}

// recordAdmit classifies one admission attempt into the counter family.
func recordAdmit(err error) {
	switch {
	case err == nil:
		mAdmitAccepted.Inc()
	case errors.Is(err, ErrKnownTx):
		mAdmitDuplicate.Inc()
	case errors.Is(err, ErrUnderpriced):
		mAdmitUnderpriced.Inc()
	case errors.Is(err, ErrPoolFull):
		mAdmitFull.Inc()
	case errors.Is(err, ErrNonceTooLow):
		mAdmitNonceLow.Inc()
	case errors.Is(err, ErrUnaffordable):
		mAdmitUnaffordable.Inc()
	default:
		mAdmitInvalid.Inc()
	}
}
