package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// simMetrics is a per-run metric set on a private registry, so concurrent
// or repeated Run calls never bleed counts into one another (or into the
// process-wide Default registry used by live nodes).
type simMetrics struct {
	reg           *telemetry.Registry
	blockInterval *telemetry.Histogram // milliseconds between blocks
	blockTxs      *telemetry.Histogram
	propagation   *telemetry.Histogram // seal→import latency per simulated peer
	blocks        *telemetry.Counter
	feesGwei      *telemetry.Counter
	rewardGwei    *telemetry.Counter // miner block rewards
	bountyGwei    *telemetry.Counter // detector payouts
	punishGwei    *telemetry.Counter // provider insurance forfeits
	gasGwei       *telemetry.Counter // sender gas spend
}

func newSimMetrics() *simMetrics {
	reg := telemetry.NewRegistry()
	m := &simMetrics{
		reg:           reg,
		blockInterval: reg.Histogram("smartcrowd_sim_block_interval_ms"),
		blockTxs:      reg.Histogram("smartcrowd_sim_block_txs"),
		propagation:   reg.Histogram("smartcrowd_sim_propagation_ms"),
		blocks:        reg.Counter("smartcrowd_sim_blocks_total"),
		feesGwei:      reg.Counter("smartcrowd_sim_fees_gwei_total"),
		rewardGwei:    reg.Counter("smartcrowd_sim_payout_gwei_total", telemetry.L("role", "miner_reward")),
		bountyGwei:    reg.Counter("smartcrowd_sim_payout_gwei_total", telemetry.L("role", "detector_bounty")),
		punishGwei:    reg.Counter("smartcrowd_sim_payout_gwei_total", telemetry.L("role", "provider_punishment")),
		gasGwei:       reg.Counter("smartcrowd_sim_payout_gwei_total", telemetry.L("role", "sender_gas")),
	}
	reg.SetHelp("smartcrowd_sim_block_interval_ms", "interval between sealed blocks in simulated milliseconds")
	reg.SetHelp("smartcrowd_sim_propagation_ms",
		"modeled seal→import latency in milliseconds, one sample per non-mining provider per block — the sim's counterpart of the wire transport's smartcrowd_wire_propagation_ms{leg=e2e}")
	reg.SetHelp("smartcrowd_sim_payout_gwei_total", "gwei moved per incentive role over the run")
	return m
}

// Telemetry returns the run's end-of-run metric snapshot. All series live
// under the smartcrowd_sim_ prefix; histogram series expand to
// _count/_sum/_max/_p50/_p90/_p99.
func (r *Result) Telemetry() telemetry.Snapshot { return r.telemetry }

// TelemetrySummary renders the run's telemetry as a compact human-readable
// block, suitable for printing after a CLI simulation.
func (r *Result) TelemetrySummary() string {
	var sb strings.Builder
	sb.WriteString("telemetry summary:\n")
	sb.WriteString(fmt.Sprintf("  blocks sealed:     %.0f\n", r.telemetry.Values["smartcrowd_sim_blocks_total"]))
	// Quantiles are exponential-bucket upper bounds and can exceed the
	// exact (CAS-tracked) max; clamp for display so the line reads sanely.
	imax := r.telemetry.Values["smartcrowd_sim_block_interval_ms_max"]
	clamp := func(v float64) float64 {
		return math.Min(v, imax)
	}
	sb.WriteString(fmt.Sprintf("  block interval:    p50 %s  p90 %s  p99 %s  max %s\n",
		msStr(clamp(r.telemetry.Values["smartcrowd_sim_block_interval_ms_p50"])),
		msStr(clamp(r.telemetry.Values["smartcrowd_sim_block_interval_ms_p90"])),
		msStr(clamp(r.telemetry.Values["smartcrowd_sim_block_interval_ms_p99"])),
		msStr(imax)))
	sb.WriteString(fmt.Sprintf("  txs per block:     p50 %.0f  max %.0f\n",
		r.telemetry.Values["smartcrowd_sim_block_txs_p50"],
		r.telemetry.Values["smartcrowd_sim_block_txs_max"]))
	// Seal→import propagation across the simulated providers; absent when
	// the run has a single provider (nothing to propagate to).
	if r.telemetry.Values["smartcrowd_sim_propagation_ms_count"] > 0 {
		pmax := r.telemetry.Values["smartcrowd_sim_propagation_ms_max"]
		pclamp := func(v float64) float64 { return math.Min(v, pmax) }
		sb.WriteString(fmt.Sprintf("  seal→import:       p50 %s  p99 %s  max %s (%.0f samples)\n",
			msStr(pclamp(r.telemetry.Values["smartcrowd_sim_propagation_ms_p50"])),
			msStr(pclamp(r.telemetry.Values["smartcrowd_sim_propagation_ms_p99"])),
			msStr(pmax),
			r.telemetry.Values["smartcrowd_sim_propagation_ms_count"]))
	}
	sb.WriteString(fmt.Sprintf("  fees collected:    %.0f gwei\n", r.telemetry.Values["smartcrowd_sim_fees_gwei_total"]))
	roles := make([]string, 0, 4)
	for k := range r.telemetry.Values {
		if strings.HasPrefix(k, "smartcrowd_sim_payout_gwei_total{") {
			roles = append(roles, k)
		}
	}
	sort.Strings(roles)
	for _, k := range roles {
		role := strings.TrimSuffix(strings.TrimPrefix(k, `smartcrowd_sim_payout_gwei_total{role="`), `"}`)
		sb.WriteString(fmt.Sprintf("  %-18s %.0f gwei\n", role+":", r.telemetry.Values[k]))
	}
	return sb.String()
}

func msStr(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Millisecond).String()
}
