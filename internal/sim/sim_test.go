package sim

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/pow"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// paperProviders returns the top-5 hashing-power split the paper uses.
func paperProviders() []ProviderSpec {
	shares := pow.TopFiveEthereumShares()
	out := make([]ProviderSpec, len(shares))
	for i, s := range shares {
		out[i] = ProviderSpec{Name: s.Name, HashShare: s.HashShare}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Horizon: time.Minute}); !errors.Is(err, ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
	if _, err := Run(Config{Providers: paperProviders()}); !errors.Is(err, ErrNoHorizon) {
		t.Errorf("err = %v, want ErrNoHorizon", err)
	}
	if _, err := Run(Config{
		Providers: paperProviders(),
		Horizon:   time.Minute,
		Releases:  []ReleaseSpec{{Provider: 99}},
	}); err == nil {
		t.Error("out-of-range release provider accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Seed:      7,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{{Name: "d1", Threads: 2}, {Name: "d2", Threads: 5}},
		Releases: []ReleaseSpec{{
			Provider: 2, At: time.Minute,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 6,
		}},
		Horizon: 20 * time.Minute,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("block %d stats differ", i)
		}
	}
	if a.Chain.Head().ID() != b.Chain.Head().ID() {
		t.Error("final chains diverge between identical runs")
	}
	for i := range a.Detectors {
		if a.DetectorBalance(i) != b.DetectorBalance(i) {
			t.Error("detector balances diverge")
		}
	}
}

func TestBlockProductionStatistics(t *testing.T) {
	// An hour of simulated mining: block count ≈ 3600/15.35 ≈ 234 and
	// winners ∝ hashing power (the Fig. 3 workload, scaled down).
	res, err := Run(Config{
		Seed:      11,
		Providers: paperProviders(),
		Horizon:   4 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := 4 * 3600 / 15.35
	if got := float64(len(res.Blocks)); math.Abs(got-expected)/expected > 0.15 {
		t.Errorf("blocks = %v, want ≈ %v", got, expected)
	}
	wins := make([]int, 5)
	for _, b := range res.Blocks {
		wins[b.Miner]++
	}
	if wins[0] <= wins[4] {
		t.Errorf("26.3%% provider (%d wins) should out-mine 10.1%% provider (%d wins)", wins[0], wins[4])
	}
	// Every block pays the 5-ether reward to its miner.
	for i := range res.Providers {
		bal := res.ProviderBalance(i)
		if bal.Mining != types.EtherAmount(5)*types.Amount(bal.Blocks) {
			t.Errorf("provider %d mining income %s over %d blocks", i, bal.Mining, bal.Blocks)
		}
	}
}

func TestDetectionLifecycleInSim(t *testing.T) {
	res, err := Run(Config{
		Seed:      3,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{
			{Name: "slow", Threads: 1},
			{Name: "fast", Threads: 8},
		},
		Releases: []ReleaseSpec{{
			Provider: 2, At: 30 * time.Second,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 8,
		}},
		Horizon:      time.Hour,
		MeanFindTime: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SRAs) != 1 {
		t.Fatalf("SRAs = %d", len(res.SRAs))
	}
	sra := res.SRAs[0]
	// Both detectors have capability 1 and an hour: every vulnerability
	// should be found and claimed once.
	if sra.Confirmed != 8 {
		t.Errorf("confirmed %d of 8 vulnerabilities", sra.Confirmed)
	}
	if sra.PaidOut != types.EtherAmount(40) {
		t.Errorf("paid out %s, want 40 ETH (8×5)", sra.PaidOut)
	}
	// Releasing provider was punished by exactly the payout.
	if got := res.ProviderBalance(2).Punishment; got != sra.PaidOut {
		t.Errorf("punishment %s != payout %s", got, sra.PaidOut)
	}
	// Detector earnings sum to the payout.
	total := res.DetectorBalance(0).Bounty + res.DetectorBalance(1).Bounty
	if total != sra.PaidOut {
		t.Errorf("detector bounties %s != payout %s", total, sra.PaidOut)
	}
	// The consumer-facing view agrees.
	info, err := res.Contract.GetSRA(res.Chain.State(), sra.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.ConfirmedVulns != 8 {
		t.Errorf("contract records %d vulns", info.ConfirmedVulns)
	}
	if info.InsuranceRemaining != types.EtherAmount(960) {
		t.Errorf("insurance remaining %s", info.InsuranceRemaining)
	}
}

func TestCapabilityProportionalEarnings(t *testing.T) {
	// The Fig. 6(a) mechanism: per-vulnerability exponential races make
	// expected claims proportional to thread counts. With 1 vs 7 threads
	// over many vulnerabilities, the fast detector must claim several
	// times the slow one's count.
	res, err := Run(Config{
		Seed:      19,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{
			{Name: "t1", Threads: 1},
			{Name: "t7", Threads: 7},
		},
		Releases: []ReleaseSpec{{
			Provider: 2, At: time.Minute,
			Insurance: types.EtherAmount(4000), Bounty: types.EtherAmount(5), NumVulns: 100,
		}},
		Horizon:      3 * time.Hour,
		MeanFindTime: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(res.DetectorBalance(0).Accepted)
	fast := float64(res.DetectorBalance(1).Accepted)
	if slow+fast < 95 {
		t.Fatalf("only %v claims confirmed of 100", slow+fast)
	}
	ratio := fast / math.Max(slow, 1)
	if ratio < 3.5 {
		t.Errorf("fast/slow claim ratio %.2f; expected ≈7 (capability-proportional)", ratio)
	}
}

func TestDuplicateClaimsRejectedButCostGas(t *testing.T) {
	// Both detectors find everything; the loser of each race still reveals
	// and pays gas — the ρ_i < 1 share of Eq. 10.
	res, err := Run(Config{
		Seed:      23,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{
			{Name: "a", Threads: 4},
			{Name: "b", Threads: 4},
		},
		Releases: []ReleaseSpec{{
			Provider: 0, At: time.Minute,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 10,
		}},
		Horizon: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.DetectorBalance(0), res.DetectorBalance(1)
	if a.Accepted+b.Accepted != 10 {
		t.Fatalf("confirmed %d of 10", a.Accepted+b.Accepted)
	}
	// Both paid gas; both submitted ~10 report pairs.
	if a.Gas == 0 || b.Gas == 0 {
		t.Error("a racing detector paid no gas")
	}
	// Total bounty = 50 ether split between them.
	if a.Bounty+b.Bounty != types.EtherAmount(50) {
		t.Errorf("bounties %s + %s != 50 ETH", a.Bounty, b.Bounty)
	}
}

func TestReportCostsMatchPaperScale(t *testing.T) {
	// Fig. 6(b): each detection report costs ≈0.011 ether at 50 gwei; an
	// SRA deployment ≈0.095 ether.
	res, err := Run(Config{
		Seed:      29,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{{Name: "d", Threads: 4}},
		Releases: []ReleaseSpec{{
			Provider: 1, At: time.Minute,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 5,
		}},
		Horizon: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.DetectorBalance(0)
	// 5 vulns → 5 R† + 5 R* = 10 report txs at ~0.0055 each (110k×50gwei).
	perReport := d.Gas.Ether() / 10
	if perReport < 0.004 || perReport > 0.015 {
		t.Errorf("per-report cost %.4f ether, want the paper's ~0.011 scale", perReport)
	}
	// Provider 1 paid SRA gas ≈ 0.095.
	p := res.ProviderBalance(1)
	if math.Abs(p.Gas.Ether()-0.095) > 0.001 {
		t.Errorf("SRA deploy cost %.4f ether, want ≈0.095", p.Gas.Ether())
	}
	// Costs are negligible next to incentives (the paper's observation).
	if d.Bounty.Ether() < 10*d.Gas.Ether() {
		t.Errorf("bounty %.3f not ≫ gas %.3f", d.Bounty.Ether(), d.Gas.Ether())
	}
}

func TestMultipleReleasesAcrossProviders(t *testing.T) {
	res, err := Run(Config{
		Seed:      31,
		Providers: paperProviders(),
		Detectors: []DetectorSpec{{Name: "d", Threads: 8}},
		Releases: []ReleaseSpec{
			{Provider: 0, At: time.Minute, Insurance: types.EtherAmount(500), Bounty: types.EtherAmount(5), NumVulns: 3},
			{Provider: 3, At: 5 * time.Minute, Insurance: types.EtherAmount(800), Bounty: types.EtherAmount(10), NumVulns: 2},
		},
		Horizon: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SRAs) != 2 {
		t.Fatalf("SRAs = %d", len(res.SRAs))
	}
	if res.SRAs[0].PaidOut != types.EtherAmount(15) {
		t.Errorf("SRA0 paid %s, want 15", res.SRAs[0].PaidOut)
	}
	if res.SRAs[1].PaidOut != types.EtherAmount(20) {
		t.Errorf("SRA1 paid %s, want 20", res.SRAs[1].PaidOut)
	}
	if res.ProviderBalance(0).Punishment != types.EtherAmount(15) ||
		res.ProviderBalance(3).Punishment != types.EtherAmount(20) {
		t.Error("punishments misattributed across providers")
	}
}

func TestNoDetectorsMeansNoPunishment(t *testing.T) {
	res, err := Run(Config{
		Seed:      37,
		Providers: paperProviders(),
		Releases: []ReleaseSpec{{
			Provider: 0, At: time.Minute,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 10,
		}},
		Horizon: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SRAs[0].PaidOut != 0 {
		t.Error("payout without detectors")
	}
	if res.ProviderBalance(0).Punishment != 0 {
		t.Error("punishment without detectors")
	}
}

func TestBlockIntervalDistribution(t *testing.T) {
	res, err := Run(Config{
		Seed:      41,
		Providers: paperProviders(),
		Horizon:   8 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range res.Blocks {
		sum += b.Interval.Seconds()
	}
	mean := sum / float64(len(res.Blocks))
	if math.Abs(mean-15.35) > 1.5 {
		t.Errorf("mean interval %.2fs, want ≈15.35s", mean)
	}
}

// TestSubMillisecondSealingIntervals regression-tests the timestamp clamp:
// with a tiny mean block time, consecutive sealing events can land inside
// the same millisecond and must still produce strictly increasing block
// timestamps.
func TestSubMillisecondSealingIntervals(t *testing.T) {
	res, err := Run(Config{
		Seed:          99,
		Providers:     paperProviders(),
		Horizon:       50 * time.Millisecond,
		MeanBlockTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) < 10 {
		t.Fatalf("only %d blocks sealed", len(res.Blocks))
	}
	blocks := res.Chain.CanonicalBlocks()
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Header.Time <= blocks[i-1].Header.Time {
			t.Fatalf("block %d time %d not after parent %d",
				i, blocks[i].Header.Time, blocks[i-1].Header.Time)
		}
	}
}
