// Package sim is SmartCrowd's experiment harness: a discrete-event
// simulation that drives a full platform — mining providers (weighted PoW
// lottery), lightweight detectors racing per-vulnerability through the
// two-phase report protocol, SRA releases with escrowed insurance — over
// simulated hours in milliseconds of wall-clock time. Every run is
// deterministic given its seed.
//
// The harness reproduces the paper's §VII experiments: block production and
// rewards (Fig. 3), provider incentives and punishments (Fig. 4, 5), and
// detector incentives and costs (Fig. 6).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/incentive"
	"github.com/smartcrowd/smartcrowd/internal/pow"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/txpool"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// ProviderSpec configures one mining IoT provider.
type ProviderSpec struct {
	// Name labels the provider.
	Name string
	// HashShare is its fraction of network hashing power (ζ_i).
	HashShare float64
	// Funds is its genesis balance.
	Funds types.Amount
}

// DetectorSpec configures one detector.
type DetectorSpec struct {
	// Name labels the detector.
	Name string
	// Threads scales detection speed, as the paper allocates 1-8 threads.
	Threads int
	// Capability is DC_i, the per-vulnerability discovery probability.
	Capability float64
	// Funds is its genesis balance (pays report gas).
	Funds types.Amount
}

// ReleaseSpec schedules one SRA.
type ReleaseSpec struct {
	// Provider indexes Config.Providers.
	Provider int
	// At is the release time from simulation start.
	At time.Duration
	// Insurance (I) and Bounty (μ) parameterize the contract.
	Insurance, Bounty types.Amount
	// NumVulns sizes the image's vulnerability universe. The paper's VP
	// maps to NumVulns ≈ VP·Insurance/Bounty (expected forfeiture VP·I).
	NumVulns int
}

// Config parameterizes a run.
type Config struct {
	Seed      int64
	Providers []ProviderSpec
	Detectors []DetectorSpec
	Releases  []ReleaseSpec
	// Horizon is the simulated duration.
	Horizon time.Duration
	// MeanBlockTime is the PoW mean interval (paper: 15.35 s).
	MeanBlockTime time.Duration
	// MeanFindTime is the expected per-vulnerability search time for a
	// single-thread detector (default 2 min).
	MeanFindTime time.Duration
	// GasPrice applies to every transaction (default 50 gwei).
	GasPrice types.Amount
	// RevealConfirmations gates Phase II (default 1).
	RevealConfirmations uint64
	// MaxTxPerBlock caps block size (0 = unlimited).
	MaxTxPerBlock int
}

// BlockStat summarizes one sealed block.
type BlockStat struct {
	Number uint64
	Miner  int // index into Config.Providers
	// Time is the absolute simulation time at sealing.
	Time time.Duration
	// Interval is the time since the previous block.
	Interval time.Duration
	Reports  int
	Fees     types.Amount
}

// SRAOutcome summarizes one release at the end of the run.
type SRAOutcome struct {
	ID        types.Hash
	Provider  int
	Insurance types.Amount
	Bounty    types.Amount
	NumVulns  int
	// PaidOut is the insurance forfeited to detectors.
	PaidOut types.Amount
	// Confirmed is the number of distinct vulnerabilities chained.
	Confirmed uint64
}

// Result carries a run's artifacts.
type Result struct {
	Blocks    []BlockStat
	SRAs      []SRAOutcome
	Tracker   *incentive.Tracker
	Providers []types.Address
	Detectors []types.Address
	Chain     *chain.Chain
	Contract  *contract.Contract
	// telemetry is the run's end-of-run metric snapshot (see Telemetry).
	telemetry telemetry.Snapshot
}

// ProviderBalance returns the tracked balance of provider i.
func (r *Result) ProviderBalance(i int) incentive.Balance {
	return r.Tracker.Of(r.Providers[i])
}

// DetectorBalance returns the tracked balance of detector i.
func (r *Result) DetectorBalance(i int) incentive.Balance {
	return r.Tracker.Of(r.Detectors[i])
}

// event is a scheduled action.
type event struct {
	at  time.Duration
	seq int
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// runner is the mutable state of one simulation.
type runner struct {
	cfg      Config
	rng      *rand.Rand
	chain    *chain.Chain
	contract *contract.Contract
	verifier *detection.GroundTruthVerifier
	sealer   *pow.SimSealer
	pool     *txpool.Pool
	tracker  *incentive.Tracker
	metrics  *simMetrics

	providerWallets []*wallet.Wallet
	detectorWallets []*wallet.Wallet
	nonces          map[types.Address]uint64

	events eventQueue
	seq    int
	now    time.Duration

	sraProvider map[types.Hash]int // SRA id → provider index
	sraOutcomes []*SRAOutcome
	// pendingSRAs are announced releases whose detection phase starts
	// once the SRA transaction is chained (paper §V-A: "an SRA is
	// available until it has been verified and recorded in the
	// blockchain").
	pendingSRAs []*pendingSRA
	// pendingReveals maps an R† tx hash to its prepared reveal.
	pendingReveals []*reveal
	blockStats     []BlockStat
}

type pendingSRA struct {
	txHash types.Hash
	sra    *types.SRA
	img    *detection.SystemImage
	active bool
}

type reveal struct {
	initialTxHash types.Hash
	detailed      *types.DetailedReport
	detector      int
	done          bool
}

// Validation errors.
var (
	ErrNoProviders = errors.New("sim: no providers configured")
	ErrNoHorizon   = errors.New("sim: horizon must be positive")
)

// Run executes a configured simulation.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Providers) == 0 {
		return nil, ErrNoProviders
	}
	if cfg.Horizon <= 0 {
		return nil, ErrNoHorizon
	}
	if cfg.MeanBlockTime <= 0 {
		cfg.MeanBlockTime = pow.PaperMeanBlockTime
	}
	if cfg.MeanFindTime <= 0 {
		cfg.MeanFindTime = 2 * time.Minute
	}
	if cfg.GasPrice == 0 {
		cfg.GasPrice = 50 * types.GWei
	}
	if cfg.RevealConfirmations == 0 {
		cfg.RevealConfirmations = 1
	}
	for i, rel := range cfg.Releases {
		if rel.Provider < 0 || rel.Provider >= len(cfg.Providers) {
			return nil, fmt.Errorf("sim: release %d references provider %d of %d", i, rel.Provider, len(cfg.Providers))
		}
	}

	r := &runner{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		verifier:    detection.NewGroundTruthVerifier(false),
		pool:        txpool.New(txpool.Config{Capacity: 1 << 16}),
		tracker:     incentive.NewTracker(),
		metrics:     newSimMetrics(),
		nonces:      make(map[types.Address]uint64),
		sraProvider: make(map[types.Hash]int),
	}
	r.contract = contract.New(contract.DefaultParams(), r.verifier)

	// Genesis allocation.
	alloc := make(map[types.Address]types.Amount)
	miners := make([]pow.MinerPower, len(cfg.Providers))
	for i, spec := range cfg.Providers {
		w := wallet.NewDeterministic(fmt.Sprintf("sim%d-provider-%s", cfg.Seed, spec.Name))
		r.providerWallets = append(r.providerWallets, w)
		funds := spec.Funds
		if funds == 0 {
			funds = types.EtherAmount(100_000)
		}
		alloc[w.Address()] = funds
		miners[i] = pow.MinerPower{Name: spec.Name, HashShare: spec.HashShare}
	}
	for _, spec := range cfg.Detectors {
		w := wallet.NewDeterministic(fmt.Sprintf("sim%d-detector-%s", cfg.Seed, spec.Name))
		r.detectorWallets = append(r.detectorWallets, w)
		funds := spec.Funds
		if funds == 0 {
			funds = types.EtherAmount(1000)
		}
		alloc[w.Address()] = funds
	}

	chainCfg := chain.DefaultConfig(r.contract)
	chainCfg.SkipPoWCheck = true
	chainCfg.Alloc = alloc
	c, err := chain.New(chainCfg)
	if err != nil {
		return nil, err
	}
	r.chain = c

	sealer, err := pow.NewSimSealer(pow.SimConfig{
		Miners:        miners,
		MeanBlockTime: cfg.MeanBlockTime,
		Seed:          cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	r.sealer = sealer

	// Schedule releases.
	for i := range cfg.Releases {
		rel := cfg.Releases[i]
		idx := i
		r.schedule(rel.At, func() { r.release(idx) })
	}

	r.loop()
	return r.result(), nil
}

func (r *runner) schedule(at time.Duration, fn func()) {
	if at < r.now {
		at = r.now
	}
	r.seq++
	heap.Push(&r.events, &event{at: at, seq: r.seq, fn: fn})
}

// loop alternates between scheduled submissions and block production until
// the horizon elapses.
func (r *runner) loop() {
	heap.Init(&r.events)
	for {
		ev := r.sealer.Next()
		next := r.now + ev.Interval
		if next > r.cfg.Horizon {
			return
		}
		// Fire all submissions due before the block lands.
		for len(r.events) > 0 && r.events[0].at <= next {
			e := heap.Pop(&r.events).(*event)
			r.now = e.at
			e.fn()
		}
		r.now = next
		r.mine(ev)
	}
}

// release fires one SRA: generate the image, register ground truth, submit
// the announcement, and schedule detector discoveries.
func (r *runner) release(relIdx int) {
	rel := r.cfg.Releases[relIdx]
	w := r.providerWallets[rel.Provider]
	img := detection.GenerateImage(
		fmt.Sprintf("fw-%d", relIdx), "1.0",
		detection.UniverseSpec{High: rel.NumVulns, Seed: r.cfg.Seed + int64(relIdx)*31},
	)
	sra := &types.SRA{
		Provider:     w.Address(),
		Name:         img.Name,
		Version:      img.Version,
		SystemHash:   img.Hash(),
		DownloadLink: "sc://releases/" + img.Name,
		Insurance:    rel.Insurance,
		Bounty:       rel.Bounty,
	}
	if err := types.SignSRA(sra, w); err != nil {
		panic("sim: sign SRA: " + err.Error())
	}
	r.verifier.Register(sra.ID, img)
	r.sraProvider[sra.ID] = rel.Provider
	r.sraOutcomes = append(r.sraOutcomes, &SRAOutcome{
		ID: sra.ID, Provider: rel.Provider,
		Insurance: rel.Insurance, Bounty: rel.Bounty, NumVulns: rel.NumVulns,
	})

	tx := types.NewSRATx(sra, r.nextNonce(w.Address()), r.contract.Params().GasSRA, r.cfg.GasPrice)
	if err := types.SignTx(tx, w); err != nil {
		panic("sim: sign SRA tx: " + err.Error())
	}
	if err := r.pool.Add(tx, r.chain.State()); err != nil {
		panic("sim: pool SRA tx: " + err.Error())
	}
	r.pendingSRAs = append(r.pendingSRAs, &pendingSRA{txHash: tx.Hash(), sra: sra, img: img})
}

// activateDetection schedules the detector discovery races for a chained
// SRA. Detectors race per vulnerability: each discovery is an independent
// exponential race at rate ∝ threads.
func (r *runner) activateDetection(sra *types.SRA, img *detection.SystemImage) {
	for di, spec := range r.cfg.Detectors {
		threads := spec.Threads
		if threads <= 0 {
			threads = 1
		}
		capability := spec.Capability
		if capability <= 0 {
			capability = 1
		}
		for _, vuln := range img.Vulns {
			if r.rng.Float64() >= capability {
				continue
			}
			// Subtle vulnerabilities take longer to find but are not
			// missed outright by a capable detector.
			mean := float64(r.cfg.MeanFindTime) * (1 + vuln.Subtlety)
			after := time.Duration(r.rng.ExpFloat64() * mean / float64(threads))
			detectorIdx, finding := di, types.Finding{
				VulnID:   vuln.ID,
				Severity: vuln.Severity,
				Evidence: fmt.Sprintf("found by %s", spec.Name),
			}
			sraID := sra.ID
			r.schedule(r.now+after, func() { r.submitInitial(detectorIdx, sraID, finding) })
		}
	}
}

// submitInitial commits one finding (Phase I) for a detector.
func (r *runner) submitInitial(detectorIdx int, sraID types.Hash, finding types.Finding) {
	w := r.detectorWallets[detectorIdx]
	detailed := &types.DetailedReport{
		SRAID:    sraID,
		Detector: w.Address(),
		Wallet:   w.Address(),
		Findings: []types.Finding{finding},
	}
	if err := types.SignDetailedReport(detailed, w); err != nil {
		panic("sim: sign R*: " + err.Error())
	}
	initial := &types.InitialReport{
		SRAID:      sraID,
		Detector:   w.Address(),
		DetailHash: detailed.CommitmentHash(),
		Wallet:     w.Address(),
	}
	if err := types.SignInitialReport(initial, w); err != nil {
		panic("sim: sign R†: " + err.Error())
	}
	itx := types.NewInitialReportTx(initial, r.nextNonce(w.Address()),
		r.contract.Params().GasInitialReport, r.cfg.GasPrice)
	if err := types.SignTx(itx, w); err != nil {
		panic("sim: sign R† tx: " + err.Error())
	}
	if err := r.pool.Add(itx, r.chain.State()); err != nil {
		// Detector ran out of funds — a legitimate outcome; skip.
		r.nonces[w.Address()]-- // release the nonce
		return
	}
	r.pendingReveals = append(r.pendingReveals, &reveal{
		initialTxHash: itx.Hash(),
		detailed:      detailed,
		detector:      detectorIdx,
	})
}

// Gossip propagation model parameters: a freshly sealed block reaches
// each other provider after 1–2 relay hops, each an exponentially
// distributed delay. The 40ms mean hop matches the cross-region TCP
// latencies the wire transport's smartcrowd_wire_propagation_ms
// histogram observes in deployment, so the sim's seal→import summary is
// comparable with live numbers.
const simHopMeanMs = 40.0

// samplePropagation records one modeled seal→import latency sample per
// non-mining provider — the sim-side counterpart of the wire transport's
// end-to-end propagation measurement.
func (r *runner) samplePropagation(winner int) {
	for i := range r.providerWallets {
		if i == winner {
			continue
		}
		hops := 1 + r.rng.Intn(2)
		delay := 0.0
		for h := 0; h < hops; h++ {
			delay += r.rng.ExpFloat64() * simHopMeanMs
		}
		r.metrics.propagation.Observe(uint64(delay))
	}
}

// mine lets the lottery winner seal a block from the pool, then performs
// incentive attribution and schedules eligible reveals.
func (r *runner) mine(ev pow.SealEvent) {
	minerWallet := r.providerWallets[ev.Winner]
	txs := r.pool.Pending(r.chain.State(), r.cfg.MaxTxPerBlock)
	head := r.chain.Head()
	// Sub-millisecond sealing intervals can collapse onto the parent's
	// millisecond timestamp; consensus requires strictly increasing time.
	timestamp := uint64(r.now / time.Millisecond)
	if timestamp <= head.Header.Time {
		timestamp = head.Header.Time + 1
	}
	blk, err := r.chain.BuildBlock(
		head.ID(),
		minerWallet.Address(),
		timestamp,
		pow.PaperBlockDifficulty,
		txs,
	)
	if err != nil {
		panic("sim: build block: " + err.Error())
	}
	blk.Header.Nonce = r.sealer.NonceFor()
	if _, err := r.chain.InsertBlock(blk); err != nil {
		panic("sim: insert block: " + err.Error())
	}
	for _, tx := range blk.Txs {
		r.pool.Remove(tx.Hash())
	}
	r.pool.Prune(r.chain.State())

	// Incentive attribution (Eq. 7-10 flows).
	stat := BlockStat{
		Number:   blk.Header.Number,
		Miner:    ev.Winner,
		Time:     r.now,
		Interval: ev.Interval,
		Reports:  blk.CountReports(),
	}
	r.tracker.Record(minerWallet.Address(), incentive.FlowMining, r.chain.Config().BlockReward)
	r.metrics.blocks.Inc()
	r.metrics.blockInterval.Observe(uint64(ev.Interval / time.Millisecond))
	r.metrics.blockTxs.Observe(uint64(len(blk.Txs)))
	r.samplePropagation(ev.Winner)
	r.metrics.rewardGwei.Add(uint64(r.chain.Config().BlockReward))
	for _, tx := range blk.Txs {
		receipt, err := r.chain.ReceiptOf(tx.Hash())
		if err != nil {
			continue
		}
		r.tracker.Record(minerWallet.Address(), incentive.FlowFees, receipt.Fee)
		r.tracker.Record(tx.From, incentive.FlowGas, receipt.Fee)
		stat.Fees += receipt.Fee
		r.metrics.feesGwei.Add(uint64(receipt.Fee))
		r.metrics.gasGwei.Add(uint64(receipt.Fee))
		if receipt.Kind == types.TxDetailedReport && receipt.Success {
			rep, repErr := tx.DetailedReport()
			if repErr != nil {
				continue
			}
			r.tracker.Record(rep.Wallet, incentive.FlowBounty, receipt.Payout.Paid)
			r.tracker.RecordAccepted(rep.Wallet, uint64(len(receipt.Payout.Accepted)))
			r.metrics.bountyGwei.Add(uint64(receipt.Payout.Paid))
			if pIdx, ok := r.sraProvider[rep.SRAID]; ok {
				r.tracker.Record(r.providerWallets[pIdx].Address(),
					incentive.FlowPunishment, receipt.Payout.Paid)
				r.metrics.punishGwei.Add(uint64(receipt.Payout.Paid))
				for _, o := range r.sraOutcomes {
					if o.ID == rep.SRAID {
						o.PaidOut += receipt.Payout.Paid
						o.Confirmed += uint64(len(receipt.Payout.Accepted))
					}
				}
			}
		}
	}
	r.blockStats = append(r.blockStats, stat)

	// Phase #2 start: detection begins once the SRA is chained.
	for _, ps := range r.pendingSRAs {
		if ps.active {
			continue
		}
		if r.chain.Confirmations(ps.txHash) >= 1 {
			ps.active = true
			r.activateDetection(ps.sra, ps.img)
		}
	}

	// Phase II: queue reveals whose commitments are now confirmed. The
	// whole due batch is built and signed first so the sender prefetcher
	// can warm the ECDSA caches across all CPUs; admission then runs
	// per transaction with the same ordering and failure semantics as
	// sequential adds (a failed add releases its nonce).
	var dueReveals []*reveal
	var dueTxs []*types.Transaction
	for _, pr := range r.pendingReveals {
		if pr.done {
			continue
		}
		if r.chain.Confirmations(pr.initialTxHash) < r.cfg.RevealConfirmations {
			continue
		}
		w := r.detectorWallets[pr.detector]
		dtx := types.NewDetailedReportTx(pr.detailed, r.nextNonce(w.Address()),
			r.contract.Params().GasDetailedReport, r.cfg.GasPrice)
		if err := types.SignTx(dtx, w); err != nil {
			panic("sim: sign R* tx: " + err.Error())
		}
		dueReveals = append(dueReveals, pr)
		dueTxs = append(dueTxs, dtx)
	}
	types.RecoverSenders(dueTxs)
	for i, pr := range dueReveals {
		if err := r.pool.Add(dueTxs[i], r.chain.State()); err != nil {
			r.nonces[r.detectorWallets[pr.detector].Address()]--
			pr.done = true // out of funds; abandon
			continue
		}
		pr.done = true
	}
}

func (r *runner) nextNonce(a types.Address) uint64 {
	n := r.nonces[a]
	r.nonces[a] = n + 1
	return n
}

func (r *runner) result() *Result {
	res := &Result{
		Blocks:    r.blockStats,
		Tracker:   r.tracker,
		Chain:     r.chain,
		Contract:  r.contract,
		telemetry: r.metrics.reg.Snapshot(),
	}
	for _, w := range r.providerWallets {
		res.Providers = append(res.Providers, w.Address())
	}
	for _, w := range r.detectorWallets {
		res.Detectors = append(res.Detectors, w.Address())
	}
	for _, o := range r.sraOutcomes {
		res.SRAs = append(res.SRAs, *o)
	}
	return res
}
