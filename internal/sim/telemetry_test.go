package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// TestRunTelemetryMatchesResult cross-checks the end-of-run telemetry
// snapshot against the structured Result: same block count, per-block
// reward accounting, and interval histogram coverage.
func TestRunTelemetryMatchesResult(t *testing.T) {
	res, err := Run(Config{
		Seed:      7,
		Providers: paperProviders(),
		Horizon:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry()
	blocks := float64(len(res.Blocks))
	if blocks == 0 {
		t.Fatal("simulation sealed no blocks")
	}
	if got := tel.Values["smartcrowd_sim_blocks_total"]; got != blocks {
		t.Errorf("blocks_total = %v, result has %v blocks", got, blocks)
	}
	if got := tel.Values["smartcrowd_sim_block_interval_ms_count"]; got != blocks {
		t.Errorf("block_interval count = %v, want one observation per block (%v)", got, blocks)
	}
	// Every block pays the fixed reward, so the miner_reward payout series
	// must equal blocks × BlockReward exactly.
	reward := tel.Values[`smartcrowd_sim_payout_gwei_total{role="miner_reward"}`]
	if want := blocks * float64(types.EtherAmount(5)); reward != want {
		t.Errorf("miner_reward payouts = %v gwei, want %v", reward, want)
	}
	// Histogram quantiles are bucket upper bounds, so p50 ≤ max always.
	p50 := tel.Values["smartcrowd_sim_block_interval_ms_p50"]
	max := tel.Values["smartcrowd_sim_block_interval_ms_max"]
	if p50 <= 0 || max < p50 {
		t.Errorf("interval quantiles implausible: p50=%v max=%v", p50, max)
	}
	// The propagation model samples every non-mining provider once per
	// block: blocks × (providers − 1) observations exactly.
	nProviders := float64(len(paperProviders()))
	if got, want := tel.Values["smartcrowd_sim_propagation_ms_count"], blocks*(nProviders-1); got != want {
		t.Errorf("propagation samples = %v, want blocks×(providers-1) = %v", got, want)
	}
	pp50 := tel.Values["smartcrowd_sim_propagation_ms_p50"]
	pp99 := tel.Values["smartcrowd_sim_propagation_ms_p99"]
	if pp50 <= 0 || pp99 < pp50 {
		t.Errorf("propagation quantiles implausible: p50=%v p99=%v", pp50, pp99)
	}
}

// TestTelemetrySummaryRendering checks the human-readable rendering pulls
// from the same snapshot the structured accessor exposes.
func TestTelemetrySummaryRendering(t *testing.T) {
	res, err := Run(Config{
		Seed:      7,
		Providers: paperProviders(),
		Horizon:   30 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.TelemetrySummary()
	for _, want := range []string{
		"telemetry summary:",
		"blocks sealed:",
		"block interval:",
		"seal→import:",
		"miner_reward:",
		"sender_gas:",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Runs on a private registry: two runs must not accumulate into each
	// other's counters.
	res2, err := Run(Config{Seed: 7, Providers: paperProviders(), Horizon: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Telemetry().Values["smartcrowd_sim_blocks_total"]
	b := res2.Telemetry().Values["smartcrowd_sim_blocks_total"]
	if a != b {
		t.Errorf("identical runs report different block totals: %v vs %v (registry bleed?)", a, b)
	}
}
