package rlp

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Canonical vectors from the Ethereum wiki RLP specification.
func TestEncodeVectors(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want string
	}{
		{"dog", String([]byte("dog")), "83646f67"},
		{"cat-dog list", List(String([]byte("cat")), String([]byte("dog"))), "c88363617483646f67"},
		{"empty string", String(nil), "80"},
		{"empty list", List(), "c0"},
		{"zero", Uint64(0), "80"},
		{"fifteen", Uint64(15), "0f"},
		{"1024", Uint64(1024), "820400"},
		{"set of three", List(List(), List(List()), List(List(), List(List()))), "c7c0c1c0c3c0c1c0"},
		{
			"lorem (56 bytes, long string)",
			String([]byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit")),
			"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974",
		},
		{"single byte 0x00", String([]byte{0x00}), "00"},
		{"single byte 0x7f", String([]byte{0x7f}), "7f"},
		{"single byte 0x80", String([]byte{0x80}), "8180"},
	}
	for _, tc := range cases {
		got := hex.EncodeToString(Encode(tc.item))
		if got != tc.want {
			t.Errorf("%s: encoded %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestDecodeRoundtrip(t *testing.T) {
	items := []Item{
		String(nil),
		String([]byte{0}),
		String([]byte("hello world")),
		String(bytes.Repeat([]byte{0xAB}, 100)),
		Uint64(1<<63 + 5),
		List(),
		List(String([]byte("a")), List(Uint64(7), String(nil))),
		BigInt(new(big.Int).Lsh(big.NewInt(1), 200)),
	}
	for i, it := range items {
		enc := Encode(it)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("item %d: decode failed: %v", i, err)
		}
		if !itemEqual(it, dec) {
			t.Errorf("item %d: roundtrip mismatch: %#v != %#v", i, it, dec)
		}
	}
}

func itemEqual(a, b Item) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == KindString {
		return bytes.Equal(a.Str, b.Str)
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !itemEqual(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"trailing bytes", "8080"},
		{"truncated short string", "83646f"},
		{"truncated long string", "b838aa"},
		{"non-canonical single byte", "8105"},
		{"non-canonical long form for short string", "b801ff"},
		{"length with leading zero", "b90001ff"},
		{"truncated list payload", "c883636174"},
		{"truncated length prefix", "b9"},
	}
	for _, tc := range cases {
		data, err := hex.DecodeString(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed input %s", tc.name, tc.in)
		}
	}
}

func TestUint64Roundtrip(t *testing.T) {
	f := func(v uint64) bool {
		it, err := Decode(Encode(Uint64(v)))
		if err != nil {
			return false
		}
		got, err := it.AsUint64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigIntRoundtrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		v := new(big.Int).SetUint64(hi)
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(lo))
		it, err := Decode(Encode(BigInt(v)))
		if err != nil {
			return false
		}
		got, err := it.AsBigInt()
		return err == nil && got.Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigIntNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BigInt(-1) did not panic")
		}
	}()
	BigInt(big.NewInt(-1))
}

func TestAsUint64Errors(t *testing.T) {
	if _, err := List().AsUint64(); err == nil {
		t.Error("AsUint64 on a list should fail")
	}
	if _, err := String(bytes.Repeat([]byte{1}, 9)).AsUint64(); err == nil {
		t.Error("AsUint64 on 9-byte string should overflow")
	}
	if _, err := String([]byte{0, 1}).AsUint64(); err == nil {
		t.Error("AsUint64 should reject leading zero")
	}
}

// TestEncodeDeterministic: identical trees must encode identically — the
// property consensus hashing relies on.
func TestEncodeDeterministic(t *testing.T) {
	f := func(a []byte, b []byte, n uint8) bool {
		it := List(String(a), List(String(b), Uint64(uint64(n))))
		return bytes.Equal(Encode(it), Encode(it))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArbitraryRoundtrip builds random nested structures and checks
// encode→decode identity.
func TestArbitraryRoundtrip(t *testing.T) {
	f := func(leaves [][]byte, shape uint8) bool {
		it := buildTree(leaves, int(shape)%3+1)
		dec, err := Decode(Encode(it))
		return err == nil && itemEqual(it, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildTree(leaves [][]byte, fan int) Item {
	if len(leaves) == 0 {
		return List()
	}
	if len(leaves) <= fan {
		items := make([]Item, len(leaves))
		for i, l := range leaves {
			items[i] = String(l)
		}
		return List(items...)
	}
	mid := len(leaves) / 2
	return List(buildTree(leaves[:mid], fan), buildTree(leaves[mid:], fan))
}

func FuzzDecode(f *testing.F) {
	f.Add([]byte{0xc8, 0x83, 0x63, 0x61, 0x74, 0x83, 0x64, 0x6f, 0x67})
	f.Add([]byte{0x80})
	f.Add([]byte{0xb8, 0x38})
	f.Fuzz(func(t *testing.T, data []byte) {
		it, err := Decode(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the identical bytes (canonicality).
		if !bytes.Equal(Encode(it), data) {
			t.Fatalf("decode/encode not canonical for %x", data)
		}
	})
}

func TestKindReflectsStructure(t *testing.T) {
	if got := String([]byte("x")).Kind; got != KindString {
		t.Errorf("String kind = %v", got)
	}
	if got := List().Kind; got != KindList {
		t.Errorf("List kind = %v", got)
	}
	if !reflect.DeepEqual(Bytes([]byte("y")), String([]byte("y"))) {
		t.Error("Bytes is not an alias of String")
	}
}

func BenchmarkEncodeBlockLike(b *testing.B) {
	// A structure shaped like a SmartCrowd block body: 100 reports of ~200
	// bytes each.
	reports := make([]Item, 100)
	payload := bytes.Repeat([]byte{0x5A}, 200)
	for i := range reports {
		reports[i] = List(Uint64(uint64(i)), String(payload))
	}
	blk := List(Uint64(123456), String(bytes.Repeat([]byte{1}, 32)), List(reports...))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(blk)
	}
}

// TestEncodePanicsAreStructured pins the panic values Encode raises on
// programmer error: they must be *EncodeError carrying the offending Go
// type, the item kind, and the value, so a fuzz crash log identifies the
// bad input without a debugger.
func TestEncodePanicsAreStructured(t *testing.T) {
	mustPanic := func(name string, fn func(), wantType string, wantKind Kind, wantSubstrings ...string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			ee, ok := r.(*EncodeError)
			if !ok {
				t.Errorf("%s: panic value is %T, want *EncodeError", name, r)
				return
			}
			if ee.GoType != wantType {
				t.Errorf("%s: GoType = %q, want %q", name, ee.GoType, wantType)
			}
			if ee.Kind != wantKind {
				t.Errorf("%s: Kind = %d, want %d", name, ee.Kind, wantKind)
			}
			msg := ee.Error()
			if !strings.HasPrefix(msg, "rlp: cannot encode ") {
				t.Errorf("%s: message %q lacks the rlp: cannot encode prefix", name, msg)
			}
			for _, sub := range wantSubstrings {
				if !strings.Contains(msg, sub) {
					t.Errorf("%s: message %q missing %q", name, msg, sub)
				}
			}
		}()
		fn()
	}

	mustPanic("negative big.Int",
		func() { BigInt(big.NewInt(-5)) },
		"*big.Int", KindString, "negative value -5")
	mustPanic("invalid kind zero",
		func() { Encode(Item{}) },
		"rlp.Item", Kind(0), "invalid item kind 0")
	mustPanic("invalid kind out of range",
		func() { Encode(Item{Kind: Kind(9)}) },
		"rlp.Item", Kind(9), "invalid item kind 9")
	mustPanic("invalid kind nested in list",
		func() { Encode(List(Uint64(1), Item{Kind: Kind(7)})) },
		"rlp.Item", Kind(7), "invalid item kind 7")
}
