// Package rlp implements Recursive Length Prefix encoding, the canonical
// serialization used by Ethereum for blocks and transactions. SmartCrowd
// hashes RLP encodings to derive block identifiers, transaction hashes and
// the report identifiers of Eq. 1, 3 and 5.
//
// The API is deliberately explicit: values are built from Item trees
// (strings and lists) rather than via reflection, which keeps encode/decode
// deterministic and allocation-light on the consensus hot path.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

// Kind discriminates the two RLP item kinds.
type Kind int

// RLP item kinds.
const (
	KindString Kind = iota + 1
	KindList
)

// Item is a node in an RLP value tree: either a byte string or a list of
// items.
type Item struct {
	Kind Kind
	Str  []byte
	List []Item
}

// Decoding errors.
var (
	ErrTrailingBytes  = errors.New("rlp: trailing bytes after value")
	ErrTruncated      = errors.New("rlp: input truncated")
	ErrNonCanonical   = errors.New("rlp: non-canonical encoding")
	ErrOversizedValue = errors.New("rlp: length prefix exceeds input")
)

// EncodeError is the panic value raised for unencodable inputs (negative
// big integers, corrupt Item kinds). Encoding only panics on programmer
// error — every network-reachable path goes through Decode, which
// returns errors — so the panic carries the offending Go type and item
// kind as structure, making fuzz-crash triage actionable instead of a
// bare string hunt.
type EncodeError struct {
	// GoType is the Go type of the offending value, e.g. "*big.Int" or
	// "rlp.Item".
	GoType string
	// Kind is the item kind involved; zero when the kind itself is the
	// corruption being reported.
	Kind Kind
	// Detail describes the violation, including the offending value.
	Detail string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("rlp: cannot encode %s (kind %d): %s", e.GoType, e.Kind, e.Detail)
}

// String builds a string item.
func String(b []byte) Item { return Item{Kind: KindString, Str: b} }

// Bytes is an alias of String for readability at call sites.
func Bytes(b []byte) Item { return String(b) }

// Uint64 builds a string item holding the minimal big-endian encoding of v
// (zero encodes as the empty string, per the Ethereum convention).
func Uint64(v uint64) Item {
	if v == 0 {
		return Item{Kind: KindString}
	}
	var buf [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		buf[7-i] = byte(v >> (8 * i))
	}
	for n < 8 && buf[n] == 0 {
		n++
	}
	return Item{Kind: KindString, Str: buf[n:]}
}

// BigInt builds a string item holding the minimal big-endian encoding of v.
// Negative values are not representable in RLP and panic.
func BigInt(v *big.Int) Item {
	if v == nil || v.Sign() == 0 {
		return Item{Kind: KindString}
	}
	if v.Sign() < 0 {
		panic(&EncodeError{GoType: "*big.Int", Kind: KindString,
			Detail: fmt.Sprintf("negative value %s is not representable in RLP", v)})
	}
	return Item{Kind: KindString, Str: v.Bytes()}
}

// List builds a list item.
func List(items ...Item) Item { return Item{Kind: KindList, List: items} }

// AsUint64 interprets a string item as a canonical unsigned integer.
func (it Item) AsUint64() (uint64, error) {
	if it.Kind != KindString {
		return 0, errors.New("rlp: list cannot be an integer")
	}
	if len(it.Str) > 8 {
		return 0, errors.New("rlp: integer overflows uint64")
	}
	if len(it.Str) > 0 && it.Str[0] == 0 {
		return 0, ErrNonCanonical
	}
	var v uint64
	for _, b := range it.Str {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// AsBigInt interprets a string item as a canonical unsigned big integer.
func (it Item) AsBigInt() (*big.Int, error) {
	if it.Kind != KindString {
		return nil, errors.New("rlp: list cannot be an integer")
	}
	if len(it.Str) > 0 && it.Str[0] == 0 {
		return nil, ErrNonCanonical
	}
	return new(big.Int).SetBytes(it.Str), nil
}

// Encode serializes the item tree to canonical RLP bytes.
func Encode(it Item) []byte {
	return appendItem(nil, it)
}

func appendItem(dst []byte, it Item) []byte {
	switch it.Kind {
	case KindString:
		return appendString(dst, it.Str)
	case KindList:
		var payload []byte
		for _, sub := range it.List {
			payload = appendItem(payload, sub)
		}
		dst = appendHeader(dst, 0xc0, len(payload))
		return append(dst, payload...)
	default:
		panic(&EncodeError{GoType: "rlp.Item", Kind: it.Kind,
			Detail: fmt.Sprintf("invalid item kind %d (want KindString=%d or KindList=%d)",
				it.Kind, KindString, KindList)})
	}
}

func appendString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(dst, s[0])
	}
	dst = appendHeader(dst, 0x80, len(s))
	return append(dst, s...)
}

func appendHeader(dst []byte, base byte, length int) []byte {
	if length < 56 {
		return append(dst, base+byte(length))
	}
	var lenBuf [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		lenBuf[7-i] = byte(uint64(length) >> (8 * i))
	}
	for n < 8 && lenBuf[n] == 0 {
		n++
	}
	dst = append(dst, base+55+byte(8-n))
	return append(dst, lenBuf[n:]...)
}

// Decode parses exactly one RLP value from data, rejecting trailing bytes
// and non-canonical encodings.
func Decode(data []byte) (Item, error) {
	it, rest, err := decodeOne(data)
	if err != nil {
		return Item{}, err
	}
	if len(rest) != 0 {
		return Item{}, ErrTrailingBytes
	}
	return it, nil
}

func decodeOne(data []byte) (Item, []byte, error) {
	if len(data) == 0 {
		return Item{}, nil, ErrTruncated
	}
	prefix := data[0]
	switch {
	case prefix < 0x80: // single byte
		return Item{Kind: KindString, Str: data[:1]}, data[1:], nil

	case prefix <= 0xb7: // short string
		n := int(prefix - 0x80)
		if len(data) < 1+n {
			return Item{}, nil, ErrOversizedValue
		}
		s := data[1 : 1+n]
		if n == 1 && s[0] < 0x80 {
			return Item{}, nil, ErrNonCanonical // should have been a single byte
		}
		return Item{Kind: KindString, Str: s}, data[1+n:], nil

	case prefix <= 0xbf: // long string
		lenLen := int(prefix - 0xb7)
		n, rest, err := decodeLength(data[1:], lenLen)
		if err != nil {
			return Item{}, nil, err
		}
		if n < 56 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrOversizedValue
		}
		return Item{Kind: KindString, Str: rest[:n]}, rest[n:], nil

	case prefix <= 0xf7: // short list
		n := int(prefix - 0xc0)
		if len(data) < 1+n {
			return Item{}, nil, ErrOversizedValue
		}
		return decodeListPayload(data[1:1+n], data[1+n:])

	default: // long list
		lenLen := int(prefix - 0xf7)
		n, rest, err := decodeLength(data[1:], lenLen)
		if err != nil {
			return Item{}, nil, err
		}
		if n < 56 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrOversizedValue
		}
		return decodeListPayload(rest[:n], rest[n:])
	}
}

func decodeLength(data []byte, lenLen int) (int, []byte, error) {
	if lenLen > 8 || len(data) < lenLen {
		return 0, nil, ErrTruncated
	}
	if lenLen > 0 && data[0] == 0 {
		return 0, nil, ErrNonCanonical
	}
	var n uint64
	for _, b := range data[:lenLen] {
		n = n<<8 | uint64(b)
	}
	const maxLen = 1 << 31
	if n > maxLen {
		return 0, nil, ErrOversizedValue
	}
	return int(n), data[lenLen:], nil
}

func decodeListPayload(payload, rest []byte) (Item, []byte, error) {
	items := []Item{}
	for len(payload) > 0 {
		var (
			sub Item
			err error
		)
		sub, payload, err = decodeOne(payload)
		if err != nil {
			return Item{}, nil, err
		}
		items = append(items, sub)
	}
	return Item{Kind: KindList, List: items}, rest, nil
}
