// Package light implements SmartCrowd's lightweight-client protocol
// (paper §V-B): detectors and consumers that "no longer construct,
// synchronize and store a heavyweight blockchain locally". A light client
// tracks only the header chain, verifies proof-of-work and parent links
// itself, and checks Merkle inclusion proofs for the individual
// transactions (SRAs, detection reports) it cares about — trusting full
// nodes for data availability but never for validity.
package light

import (
	"errors"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/crypto/merkle"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Light-client errors.
var (
	ErrUnknownHeader   = errors.New("light: unknown header")
	ErrBadParentLink   = errors.New("light: header does not extend a known header")
	ErrBadPoW          = errors.New("light: header fails proof-of-work")
	ErrBadNumber       = errors.New("light: header number not parent+1")
	ErrBadTimestamp    = errors.New("light: header timestamp not after parent")
	ErrProofRejected   = errors.New("light: Merkle inclusion proof rejected")
	ErrNotCanonical    = errors.New("light: header not on the best chain")
	ErrFutureThreshold = errors.New("light: insufficient confirmations")
)

// HeaderChain is the light client's view: validated headers with
// cumulative difficulty fork choice, no bodies and no state.
type HeaderChain struct {
	// skipPoW disables the PoW predicate for simulated chains (mirrors
	// chain.Config.SkipPoWCheck).
	skipPoW bool

	genesisID types.Hash
	headers   map[types.Hash]*entry
	head      *entry
	// canon maps height → canonical header id.
	canon map[uint64]types.Hash
}

type entry struct {
	header   types.Header
	parent   *entry
	totalDif uint64
}

// NewHeaderChain starts a light chain from a trusted genesis header.
func NewHeaderChain(genesis types.Header, skipPoW bool) *HeaderChain {
	id := genesis.ID()
	g := &entry{header: genesis}
	hc := &HeaderChain{
		skipPoW:   skipPoW,
		genesisID: id,
		headers:   map[types.Hash]*entry{id: g},
		head:      g,
		canon:     map[uint64]types.Hash{genesis.Number: id},
	}
	return hc
}

// Head returns the best known header.
func (hc *HeaderChain) Head() types.Header { return hc.head.header }

// HeadNumber returns the best height.
func (hc *HeaderChain) HeadNumber() uint64 { return hc.head.header.Number }

// Has reports whether a header is known.
func (hc *HeaderChain) Has(id types.Hash) bool {
	_, ok := hc.headers[id]
	return ok
}

// AddHeader validates and stores a header, updating the head when the new
// branch carries more cumulative difficulty. The light client performs the
// same consensus checks a full node does on headers — only state
// execution is delegated.
func (hc *HeaderChain) AddHeader(h types.Header) error {
	id := h.ID()
	if _, known := hc.headers[id]; known {
		return nil // idempotent
	}
	parent, ok := hc.headers[h.ParentID]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrBadParentLink, h.ParentID.Short())
	}
	if h.Number != parent.header.Number+1 {
		return fmt.Errorf("%w: parent %d, header %d", ErrBadNumber, parent.header.Number, h.Number)
	}
	if h.Time <= parent.header.Time {
		return fmt.Errorf("%w: parent %d, header %d", ErrBadTimestamp, parent.header.Time, h.Time)
	}
	if !hc.skipPoW && !h.MeetsPoW() {
		return ErrBadPoW
	}
	e := &entry{header: h, parent: parent, totalDif: parent.totalDif + h.Difficulty}
	hc.headers[id] = e
	if e.totalDif > hc.head.totalDif {
		hc.reorgTo(e)
	}
	return nil
}

// reorgTo rebuilds the canonical height index up to the new head.
func (hc *HeaderChain) reorgTo(e *entry) {
	// Clear heights above the new head.
	for n := e.header.Number + 1; ; n++ {
		if _, ok := hc.canon[n]; !ok {
			break
		}
		delete(hc.canon, n)
	}
	cursor := e
	for cursor != nil {
		id := cursor.header.ID()
		if hc.canon[cursor.header.Number] == id {
			break
		}
		hc.canon[cursor.header.Number] = id
		cursor = cursor.parent
	}
	hc.head = e
}

// CanonicalID returns the canonical header id at a height.
func (hc *HeaderChain) CanonicalID(number uint64) (types.Hash, error) {
	id, ok := hc.canon[number]
	if !ok {
		return types.Hash{}, fmt.Errorf("%w: height %d", ErrUnknownHeader, number)
	}
	return id, nil
}

// Confirmations returns how deep the given header is under the head
// (1 = head), or 0 when it is not canonical.
func (hc *HeaderChain) Confirmations(id types.Hash) uint64 {
	e, ok := hc.headers[id]
	if !ok {
		return 0
	}
	canonID, ok := hc.canon[e.header.Number]
	if !ok || canonID != id {
		return 0
	}
	return hc.head.header.Number - e.header.Number + 1
}

// TxProof is a full node's answer to a light client's transaction query:
// the transaction bytes plus a Merkle path to a block's TxRoot.
type TxProof struct {
	// BlockID names the block whose TxRoot the proof targets.
	BlockID types.Hash
	// TxBytes is the canonical transaction encoding (the Merkle leaf).
	TxBytes []byte
	// Proof is the inclusion path.
	Proof merkle.Proof
}

// BuildTxProof constructs an inclusion proof for txs[index] — the
// full-node (server) side.
func BuildTxProof(blk *types.Block, index int) (TxProof, error) {
	if index < 0 || index >= len(blk.Txs) {
		return TxProof{}, fmt.Errorf("light: tx index %d out of range (%d txs)", index, len(blk.Txs))
	}
	leaves := txLeaves(blk.Txs)
	proof, err := merkle.Prove(leaves, index)
	if err != nil {
		return TxProof{}, fmt.Errorf("light: build proof: %w", err)
	}
	return TxProof{
		BlockID: blk.ID(),
		TxBytes: leaves[index],
		Proof:   proof,
	}, nil
}

// txLeaves mirrors types.ComputeTxRoot's leaf derivation: each leaf is the
// transaction hash.
func txLeaves(txs []*types.Transaction) [][]byte {
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		h := tx.Hash()
		leaves[i] = h[:]
	}
	return leaves
}

// VerifyProof checks a transaction proof against the light client's
// canonical header chain and a minimum confirmation depth. The proven leaf
// is the transaction's hash; pair with VerifyTxWithBody to validate full
// transaction bodies.
func (hc *HeaderChain) VerifyProof(p TxProof, minConfirmations uint64) error {
	e, ok := hc.headers[p.BlockID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHeader, p.BlockID.Short())
	}
	conf := hc.Confirmations(p.BlockID)
	if conf == 0 {
		return fmt.Errorf("%w: block %s", ErrNotCanonical, p.BlockID.Short())
	}
	if conf < minConfirmations {
		return fmt.Errorf("%w: %d < %d", ErrFutureThreshold, conf, minConfirmations)
	}
	root := merkle.Hash(e.header.TxRoot)
	if !merkle.Verify(root, p.TxBytes, p.Proof) {
		return ErrProofRejected
	}
	return nil
}

// VerifyTxWithBody checks the proof and that the supplied transaction body
// matches the proven leaf hash, returning the validated transaction.
func (hc *HeaderChain) VerifyTxWithBody(p TxProof, body []byte, minConfirmations uint64) (*types.Transaction, error) {
	if err := hc.VerifyProof(p, minConfirmations); err != nil {
		return nil, err
	}
	tx, err := types.DecodeTx(body)
	if err != nil {
		return nil, fmt.Errorf("light: decode proven tx: %w", err)
	}
	h := tx.Hash()
	if len(p.TxBytes) != len(h) || types.Hash(h) != sliceToHash(p.TxBytes) {
		return nil, fmt.Errorf("%w: body hash does not match proven leaf", ErrProofRejected)
	}
	if err := tx.ValidateBasic(); err != nil {
		return nil, fmt.Errorf("light: proven tx invalid: %w", err)
	}
	return tx, nil
}

func sliceToHash(b []byte) types.Hash {
	var h types.Hash
	copy(h[:], b)
	return h
}
