package light

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// fullNode builds a full chain with a few blocks of transfers and returns
// it with the sender wallet.
func fullNode(t *testing.T, blocks int) (*chain.Chain, *wallet.Wallet) {
	t.Helper()
	alice := wallet.NewDeterministic("alice")
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{alice.Address(): types.EtherAmount(1000)}
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := wallet.NewDeterministic("miner").Address()
	for n := 0; n < blocks; n++ {
		tx := &types.Transaction{
			Kind:     types.TxTransfer,
			Nonce:    uint64(n),
			To:       types.Address{1},
			Value:    1,
			GasLimit: 21_000,
			GasPrice: 50,
		}
		if err := types.SignTx(tx, alice); err != nil {
			t.Fatal(err)
		}
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_000, 1000, []*types.Transaction{tx})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.InsertBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	return c, alice
}

// syncLight replays a full node's canonical headers into a light chain.
func syncLight(t *testing.T, c *chain.Chain) *HeaderChain {
	t.Helper()
	blocks := c.CanonicalBlocks()
	hc := NewHeaderChain(blocks[0].Header, true)
	for _, blk := range blocks[1:] {
		if err := hc.AddHeader(blk.Header); err != nil {
			t.Fatalf("sync header %d: %v", blk.Header.Number, err)
		}
	}
	return hc
}

func TestHeaderSyncTracksHead(t *testing.T) {
	c, _ := fullNode(t, 5)
	hc := syncLight(t, c)
	if hc.HeadNumber() != 5 {
		t.Errorf("light head %d, want 5", hc.HeadNumber())
	}
	lightHead := hc.Head()
	if lightHead.ID() != c.Head().ID() {
		t.Error("light head diverges from full node")
	}
	id, err := hc.CanonicalID(3)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := c.BlockByNumber(3)
	if id != full.ID() {
		t.Error("canonical index wrong")
	}
}

func TestAddHeaderValidation(t *testing.T) {
	c, _ := fullNode(t, 2)
	blocks := c.CanonicalBlocks()
	hc := NewHeaderChain(blocks[0].Header, true)

	t.Run("unknown parent", func(t *testing.T) {
		if err := hc.AddHeader(blocks[2].Header); !errors.Is(err, ErrBadParentLink) {
			t.Errorf("err = %v", err)
		}
	})
	if err := hc.AddHeader(blocks[1].Header); err != nil {
		t.Fatal(err)
	}
	t.Run("bad number", func(t *testing.T) {
		h := blocks[2].Header
		h.Number = 7
		if err := hc.AddHeader(h); !errors.Is(err, ErrBadNumber) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("stale timestamp", func(t *testing.T) {
		h := blocks[2].Header
		h.Time = blocks[1].Header.Time
		if err := hc.AddHeader(h); !errors.Is(err, ErrBadTimestamp) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("idempotent", func(t *testing.T) {
		if err := hc.AddHeader(blocks[1].Header); err != nil {
			t.Errorf("re-adding a known header failed: %v", err)
		}
	})
}

func TestPoWEnforcedWhenNotSkipped(t *testing.T) {
	c, _ := fullNode(t, 1)
	blocks := c.CanonicalBlocks()
	hc := NewHeaderChain(blocks[0].Header, false) // enforce PoW
	h := blocks[1].Header
	h.Difficulty = 1 << 60 // unmeetable with the stored nonce
	if err := hc.AddHeader(h); !errors.Is(err, ErrBadPoW) {
		t.Errorf("err = %v, want ErrBadPoW", err)
	}
}

func TestLightForkChoice(t *testing.T) {
	c, _ := fullNode(t, 3)
	blocks := c.CanonicalBlocks()
	hc := syncLight(t, c)

	// A heavier competing header at height 1 reorganizes the light chain.
	rival := types.Header{
		ParentID:   blocks[0].Header.ID(),
		Number:     1,
		Time:       blocks[0].Header.Time + 1,
		Difficulty: 10_000, // out-weighs the 3×1000 canonical branch
		Miner:      wallet.NewDeterministic("rival").Address(),
		TxRoot:     types.ComputeTxRoot(nil),
	}
	if err := hc.AddHeader(rival); err != nil {
		t.Fatal(err)
	}
	head := hc.Head()
	if head.ID() != rival.ID() {
		t.Error("heavier branch did not become light head")
	}
	// Old canonical entries above the fork are gone.
	if _, err := hc.CanonicalID(2); !errors.Is(err, ErrUnknownHeader) {
		t.Error("stale canonical height survived reorg")
	}
	if hc.Confirmations(blocks[3].Header.ID()) != 0 {
		t.Error("orphaned header still reports confirmations")
	}
}

func TestTxProofRoundtrip(t *testing.T) {
	c, _ := fullNode(t, 4)
	hc := syncLight(t, c)
	blk, err := c.BlockByNumber(2)
	if err != nil {
		t.Fatal(err)
	}

	proof, err := BuildTxProof(blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := types.EncodeTx(blk.Txs[0])
	tx, err := hc.VerifyTxWithBody(proof, body, 1)
	if err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if tx.Hash() != blk.Txs[0].Hash() {
		t.Error("verified tx differs from original")
	}
}

func TestTxProofRejectsTampering(t *testing.T) {
	c, alice := fullNode(t, 4)
	hc := syncLight(t, c)
	blk, _ := c.BlockByNumber(2)
	proof, err := BuildTxProof(blk, 0)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("forged body", func(t *testing.T) {
		forged := &types.Transaction{
			Kind: types.TxTransfer, Nonce: 9, To: types.Address{2},
			Value: types.EtherAmount(999), GasLimit: 21_000, GasPrice: 50,
		}
		if err := types.SignTx(forged, alice); err != nil {
			t.Fatal(err)
		}
		if _, err := hc.VerifyTxWithBody(proof, types.EncodeTx(forged), 1); err == nil {
			t.Error("forged body accepted under a real proof")
		}
	})

	t.Run("tampered leaf", func(t *testing.T) {
		bad := proof
		bad.TxBytes = append([]byte(nil), proof.TxBytes...)
		bad.TxBytes[0] ^= 0xFF
		if err := hc.VerifyProof(bad, 1); !errors.Is(err, ErrProofRejected) {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("unknown block", func(t *testing.T) {
		bad := proof
		bad.BlockID = types.HashBytes([]byte("ghost"))
		if err := hc.VerifyProof(bad, 1); !errors.Is(err, ErrUnknownHeader) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestTxProofConfirmationThreshold(t *testing.T) {
	c, _ := fullNode(t, 4)
	hc := syncLight(t, c)
	blk, _ := c.BlockByNumber(4) // the head block: 1 confirmation
	proof, err := BuildTxProof(blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.VerifyProof(proof, 1); err != nil {
		t.Errorf("1-conf proof rejected: %v", err)
	}
	if err := hc.VerifyProof(proof, 6); !errors.Is(err, ErrFutureThreshold) {
		t.Errorf("err = %v, want ErrFutureThreshold", err)
	}
}

func TestTxProofNotCanonical(t *testing.T) {
	c, _ := fullNode(t, 3)
	hc := syncLight(t, c)
	blocks := c.CanonicalBlocks()
	blk2 := blocks[2]
	proof, err := BuildTxProof(blk2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reorg the light chain away from the proven block.
	rival := types.Header{
		ParentID:   blocks[0].Header.ID(),
		Number:     1,
		Time:       blocks[0].Header.Time + 1,
		Difficulty: 10_000,
		TxRoot:     types.ComputeTxRoot(nil),
	}
	if err := hc.AddHeader(rival); err != nil {
		t.Fatal(err)
	}
	if err := hc.VerifyProof(proof, 1); !errors.Is(err, ErrNotCanonical) {
		t.Errorf("err = %v, want ErrNotCanonical", err)
	}
}

func TestBuildTxProofBounds(t *testing.T) {
	c, _ := fullNode(t, 1)
	blk, _ := c.BlockByNumber(1)
	if _, err := BuildTxProof(blk, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := BuildTxProof(blk, len(blk.Txs)); err == nil {
		t.Error("out-of-range index accepted")
	}
}
