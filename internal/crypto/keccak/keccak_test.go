package keccak

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"
)

// Published Keccak-256 (legacy / Ethereum) vectors.
var keccakVectors = []struct {
	in   string
	want string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
}

// SHA3-256 vectors generated with Python hashlib (FIPS 202).
var sha3Vectors = []struct {
	in   []byte
	want string
}{
	{[]byte(""), "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
	{[]byte("abc"), "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	{[]byte("hello world"), "644bcc7e564373040999aac89e7622f3ca71fba1d972fd94a31c3bfbf24e3938"},
	{[]byte("The quick brown fox jumps over the lazy dog"), "69070dda01975c8c120c3aada1b282394e7f032fa9cf32f4cb2259a0897dfc04"},
	{iota200(), "5f728f63bf5ee48c77f453c0490398fa645b8d4c4e56be9a41cfec344d6ca899"},
}

func iota200() []byte {
	b := make([]byte, 200)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestKeccak256Vectors(t *testing.T) {
	for _, tc := range keccakVectors {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("Keccak256(%q) = %x, want %s", tc.in, got, tc.want)
		}
	}
}

func TestSHA3256Vectors(t *testing.T) {
	for _, tc := range sha3Vectors {
		got := SumSHA3256(tc.in)
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("SHA3-256(%.10q...) = %x, want %s", tc.in, got, tc.want)
		}
	}
}

// TestStreamingMatchesOneShot checks that arbitrary write-splits produce the
// same digest as a single Write.
func TestStreamingMatchesOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		h := New256()
		k := int(split) % (len(data) + 1)
		_, _ = h.Write(data[:k])
		_, _ = h.Write(data[k:])
		var one [Size]byte = Sum256(data)
		return bytes.Equal(h.Sum(nil), one[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSumDoesNotDisturbState checks Sum can be called mid-stream.
func TestSumDoesNotDisturbState(t *testing.T) {
	h := New256()
	_, _ = h.Write([]byte("part one "))
	_ = h.Sum(nil)
	_, _ = h.Write([]byte("part two"))
	want := Sum256([]byte("part one part two"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Error("Sum disturbed the running sponge state")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New256()
	_, _ = h.Write([]byte("garbage"))
	h.Reset()
	_, _ = h.Write([]byte("abc"))
	want, _ := hex.DecodeString(keccakVectors[1].want)
	if !bytes.Equal(h.Sum(nil), want) {
		t.Error("Reset did not restore the initial state")
	}
}

func TestSum256ConcatEqualsJoined(t *testing.T) {
	f := func(a, b, c []byte) bool {
		joined := Sum256(bytes.Join([][]byte{a, b, c}, nil))
		split := Sum256Concat(a, b, c)
		return joined == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDomainSeparation ensures Keccak-256 and SHA3-256 never collide on the
// same input (different padding must yield different digests).
func TestDomainSeparation(t *testing.T) {
	f := func(data []byte) bool {
		return Sum256(data) != SumSHA3256(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRateBoundaryLengths exercises inputs that land exactly on, just below
// and just above the 136-byte sponge rate, where padding bugs hide.
func TestRateBoundaryLengths(t *testing.T) {
	for _, n := range []int{0, 1, 135, 136, 137, 271, 272, 273, 1000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		h := New256()
		_, _ = h.Write(data)
		var one [Size]byte = Sum256(data)
		if !bytes.Equal(h.Sum(nil), one[:]) {
			t.Errorf("length %d: streaming != one-shot", n)
		}
	}
}

func TestHashInterfaceSizes(t *testing.T) {
	h := New256()
	if h.Size() != 32 {
		t.Errorf("Size() = %d, want 32", h.Size())
	}
	if h.BlockSize() != 136 {
		t.Errorf("BlockSize() = %d, want 136", h.BlockSize())
	}
}

func BenchmarkKeccak256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func TestPooledGetPutRoundTrip(t *testing.T) {
	msg := []byte("pooled digest round trip")
	want := Sum256(msg)
	// Repeated Get/Put cycles must keep producing correct digests even as
	// the same pooled state objects are reused (Reset must fully scrub).
	for i := 0; i < 10; i++ {
		h := Get256()
		h.Write(msg)
		var got [Size]byte
		h.Sum(got[:0])
		Put(h)
		if got != want {
			t.Fatalf("cycle %d: pooled digest mismatch", i)
		}
		// Interleave a different message so a dirty reused state would skew.
		h2 := Get256()
		h2.Write([]byte{byte(i)})
		h2.Sum(nil)
		Put(h2)
	}
}

func TestPooledOneShotConcurrent(t *testing.T) {
	// Hammer the pooled one-shot paths from many goroutines; under -race
	// this pins that pooled states are never shared while in use.
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), make([]byte, 200)}
	wants := make([][Size]byte, len(msgs))
	for i, m := range msgs {
		wants[i] = Sum256(m)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				k := (g + i) % len(msgs)
				if Sum256(msgs[k]) != wants[k] {
					done <- errAt(g, i)
					return
				}
				if Sum256Concat(msgs[k][:len(msgs[k])/2], msgs[k][len(msgs[k])/2:]) != wants[k] {
					done <- errAt(g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func errAt(g, i int) error { return fmt.Errorf("goroutine %d iter %d: digest mismatch", g, i) }
