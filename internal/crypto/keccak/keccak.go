// Package keccak implements the Keccak-f[1600] sponge construction and the
// two 256-bit hash flavours SmartCrowd needs: legacy Keccak-256 (as used by
// Ethereum for addresses, transaction hashes and contract storage keys) and
// FIPS-202 SHA3-256 (as referenced by the SmartCrowd paper for report
// identifiers). The two differ only in the domain-separation padding byte.
//
// The implementation is self-contained (no external dependencies) and is
// validated against published test vectors in keccak_test.go.
package keccak

import (
	"encoding/binary"
	"hash"
	"sync"
)

// Size is the digest size in bytes for both Keccak-256 and SHA3-256.
const Size = 32

// rate256 is the sponge rate in bytes for 256-bit output (1600-512 bits).
const rate256 = 136

// Domain-separation padding bytes. Legacy Keccak (pre-FIPS, used by
// Ethereum) pads with 0x01; FIPS-202 SHA-3 pads with 0x06.
const (
	domainKeccak = 0x01
	domainSHA3   = 0x06
)

// roundConstants are the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets holds the rho-step rotation amount for lane (x, y),
// indexed as x + 5y.
var rotationOffsets = [25]uint{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// permute applies the full 24-round Keccak-f[1600] permutation in place.
func permute(a *[25]uint64) {
	var b [25]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl(a[x+5*y], rotationOffsets[x+5*y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// digest is a streaming sponge for 256-bit output.
type digest struct {
	state  [25]uint64
	buf    [rate256]byte
	n      int // bytes buffered in buf
	domain byte
}

var (
	_ hash.Hash = (*digest)(nil)
)

// New256 returns a streaming legacy Keccak-256 hash (Ethereum flavour).
func New256() hash.Hash { return &digest{domain: domainKeccak} }

// NewSHA3256 returns a streaming FIPS-202 SHA3-256 hash.
func NewSHA3256() hash.Hash { return &digest{domain: domainSHA3} }

func (d *digest) Size() int      { return Size }
func (d *digest) BlockSize() int { return rate256 }

func (d *digest) Reset() {
	d.state = [25]uint64{}
	d.n = 0
}

func (d *digest) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		n := copy(d.buf[d.n:], p)
		d.n += n
		p = p[n:]
		if d.n == rate256 {
			d.absorb()
		}
	}
	return written, nil
}

// absorb XORs one full rate block into the state and permutes.
func (d *digest) absorb() {
	for i := 0; i < rate256/8; i++ {
		d.state[i] ^= binary.LittleEndian.Uint64(d.buf[8*i:])
	}
	permute(&d.state)
	d.n = 0
}

// Sum appends the digest to b without disturbing the running state.
func (d *digest) Sum(b []byte) []byte {
	// Work on a copy so callers can keep writing afterwards.
	dc := *d
	dc.buf[dc.n] = dc.domain
	for i := dc.n + 1; i < rate256; i++ {
		dc.buf[i] = 0
	}
	dc.buf[rate256-1] |= 0x80
	for i := 0; i < rate256/8; i++ {
		dc.state[i] ^= binary.LittleEndian.Uint64(dc.buf[8*i:])
	}
	permute(&dc.state)
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		binary.LittleEndian.PutUint64(out[8*i:], dc.state[i])
	}
	return append(b, out[:]...)
}

// digestPool recycles sponge states across one-shot and streaming
// hashes. A digest is ~350 bytes of state; the verification pipeline
// hashes millions of transactions, headers, merkle nodes and trie paths,
// and pooling removes both the per-hash allocation and the full state
// copy hash.Hash's non-destructive Sum forces.
var digestPool = sync.Pool{New: func() interface{} { return new(digest) }}

func getDigest(domain byte) *digest {
	d := digestPool.Get().(*digest)
	d.Reset()
	d.domain = domain
	return d
}

// finalizeInto pads, permutes and squeezes the digest into out. It is
// destructive (the sponge state is consumed) — exactly what one-shot
// hashing wants, since it skips the defensive state copy of Sum.
func (d *digest) finalizeInto(out *[Size]byte) {
	d.buf[d.n] = d.domain
	for i := d.n + 1; i < rate256; i++ {
		d.buf[i] = 0
	}
	d.buf[rate256-1] |= 0x80
	for i := 0; i < rate256/8; i++ {
		d.state[i] ^= binary.LittleEndian.Uint64(d.buf[8*i:])
	}
	permute(&d.state)
	for i := 0; i < Size/8; i++ {
		binary.LittleEndian.PutUint64(out[8*i:], d.state[i])
	}
}

// Get256 returns a reset streaming legacy Keccak-256 hasher from the
// package pool. Pair with Put to recycle it; hot paths that hash many
// small items (trie nodes, account digests) avoid a fresh sponge
// allocation per item.
func Get256() hash.Hash {
	return getDigest(domainKeccak)
}

// Put returns a hasher obtained from Get256 to the pool. The hasher must
// not be used afterwards. Hashers from other sources are ignored.
func Put(h hash.Hash) {
	if d, ok := h.(*digest); ok {
		digestPool.Put(d)
	}
}

// Sum256 computes the legacy Keccak-256 digest of data in one shot.
func Sum256(data []byte) [Size]byte {
	var out [Size]byte
	d := getDigest(domainKeccak)
	_, _ = d.Write(data)
	d.finalizeInto(&out)
	digestPool.Put(d)
	return out
}

// SumSHA3256 computes the FIPS-202 SHA3-256 digest of data in one shot.
func SumSHA3256(data []byte) [Size]byte {
	var out [Size]byte
	d := getDigest(domainSHA3)
	_, _ = d.Write(data)
	d.finalizeInto(&out)
	digestPool.Put(d)
	return out
}

// Sum256Concat hashes the concatenation of the given byte slices with
// legacy Keccak-256. SmartCrowd identifiers (Eq. 1, 3 and 5 of the paper)
// are hashes over field concatenations; this helper avoids intermediate
// allocation at the call sites.
func Sum256Concat(parts ...[]byte) [Size]byte {
	d := getDigest(domainKeccak)
	for _, p := range parts {
		_, _ = d.Write(p)
	}
	var out [Size]byte
	d.finalizeInto(&out)
	digestPool.Put(d)
	return out
}
