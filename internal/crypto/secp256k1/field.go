package secp256k1

import "math/bits"

// Fast fixed-width field arithmetic modulo the secp256k1 prime
//
//	p = 2²⁵⁶ − 2³² − 977 = 2²⁵⁶ − 0x1000003D1.
//
// Values are four 64-bit limbs, little-endian, always kept fully reduced
// (< p). The special prime shape makes reduction cheap: any overflow c at
// 2²⁵⁶ folds back as c·0x1000003D1. This is the same strategy
// libsecp256k1 and btcec use; it replaces math/big on the hot secp256k1
// paths (signing, verification, recovery) while the generic big.Int code
// remains for arbitrary curves (P-256 differential testing).
//
// Everything here is differentially tested against math/big in
// field_test.go. The code is not constant-time (see the package comment).

// pFold is 2²⁵⁶ mod p.
const pFold uint64 = 0x1000003D1

// pLimbs is the prime p in little-endian limbs.
var pLimbs = [4]uint64{
	0xFFFFFFFEFFFFFC2F, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF,
}

// fieldVal is an element of GF(p), fully reduced.
type fieldVal struct {
	n [4]uint64
}

// feIsZero reports whether a == 0.
func (a *fieldVal) feIsZero() bool {
	return a.n[0]|a.n[1]|a.n[2]|a.n[3] == 0
}

// feEqual reports whether a == b.
func (a *fieldVal) feEqual(b *fieldVal) bool {
	return a.n == b.n
}

// geqP reports whether the unreduced limb vector is ≥ p.
func geqP(n *[4]uint64) bool {
	if n[3] != pLimbs[3] {
		return n[3] > pLimbs[3]
	}
	if n[2] != pLimbs[2] {
		return n[2] > pLimbs[2]
	}
	if n[1] != pLimbs[1] {
		return n[1] > pLimbs[1]
	}
	return n[0] >= pLimbs[0]
}

// subP subtracts p in place (caller guarantees the value is ≥ p).
func subP(n *[4]uint64) {
	var borrow uint64
	n[0], borrow = bits.Sub64(n[0], pLimbs[0], 0)
	n[1], borrow = bits.Sub64(n[1], pLimbs[1], borrow)
	n[2], borrow = bits.Sub64(n[2], pLimbs[2], borrow)
	n[3], _ = bits.Sub64(n[3], pLimbs[3], borrow)
}

// feSetBytes loads a 32-byte big-endian value, reducing mod p.
func (a *fieldVal) feSetBytes(b *[32]byte) {
	for i := 0; i < 4; i++ {
		a.n[i] = uint64(b[31-8*i]) | uint64(b[30-8*i])<<8 |
			uint64(b[29-8*i])<<16 | uint64(b[28-8*i])<<24 |
			uint64(b[27-8*i])<<32 | uint64(b[26-8*i])<<40 |
			uint64(b[25-8*i])<<48 | uint64(b[24-8*i])<<56
	}
	if geqP(&a.n) {
		subP(&a.n)
	}
}

// feBytes stores the value as 32 big-endian bytes.
func (a *fieldVal) feBytes(out *[32]byte) {
	for i := 0; i < 4; i++ {
		limb := a.n[i]
		out[31-8*i] = byte(limb)
		out[30-8*i] = byte(limb >> 8)
		out[29-8*i] = byte(limb >> 16)
		out[28-8*i] = byte(limb >> 24)
		out[27-8*i] = byte(limb >> 32)
		out[26-8*i] = byte(limb >> 40)
		out[25-8*i] = byte(limb >> 48)
		out[24-8*i] = byte(limb >> 56)
	}
}

// feAdd sets a = a + b mod p.
func (a *fieldVal) feAdd(b *fieldVal) {
	var carry uint64
	a.n[0], carry = bits.Add64(a.n[0], b.n[0], 0)
	a.n[1], carry = bits.Add64(a.n[1], b.n[1], carry)
	a.n[2], carry = bits.Add64(a.n[2], b.n[2], carry)
	a.n[3], carry = bits.Add64(a.n[3], b.n[3], carry)
	if carry != 0 {
		// Fold 2²⁵⁶ back in: add pFold. Since both inputs were < p,
		// the folded value cannot overflow again past one extra fold.
		var c uint64
		a.n[0], c = bits.Add64(a.n[0], pFold, 0)
		a.n[1], c = bits.Add64(a.n[1], 0, c)
		a.n[2], c = bits.Add64(a.n[2], 0, c)
		a.n[3], _ = bits.Add64(a.n[3], 0, c)
	}
	if geqP(&a.n) {
		subP(&a.n)
	}
}

// feSub sets a = a − b mod p.
func (a *fieldVal) feSub(b *fieldVal) {
	var borrow uint64
	a.n[0], borrow = bits.Sub64(a.n[0], b.n[0], 0)
	a.n[1], borrow = bits.Sub64(a.n[1], b.n[1], borrow)
	a.n[2], borrow = bits.Sub64(a.n[2], b.n[2], borrow)
	a.n[3], borrow = bits.Sub64(a.n[3], b.n[3], borrow)
	if borrow != 0 {
		// Went below zero: add p back (equivalently subtract pFold from
		// the wrapped 2²⁵⁶ excess).
		var c uint64
		a.n[0], c = bits.Sub64(a.n[0], pFold, 0)
		a.n[1], c = bits.Sub64(a.n[1], 0, c)
		a.n[2], c = bits.Sub64(a.n[2], 0, c)
		a.n[3], _ = bits.Sub64(a.n[3], 0, c)
	}
}

// feNeg sets a = −a mod p.
func (a *fieldVal) feNeg() {
	if a.feIsZero() {
		return
	}
	var borrow uint64
	a.n[0], borrow = bits.Sub64(pLimbs[0], a.n[0], 0)
	a.n[1], borrow = bits.Sub64(pLimbs[1], a.n[1], borrow)
	a.n[2], borrow = bits.Sub64(pLimbs[2], a.n[2], borrow)
	a.n[3], _ = bits.Sub64(pLimbs[3], a.n[3], borrow)
}

// feMulInto sets dst = a·b mod p.
func feMulInto(dst, a, b *fieldVal) {
	// Schoolbook 4×4 → 8 limbs.
	var r [8]uint64
	var carry uint64
	for i := 0; i < 4; i++ {
		carry = 0
		ai := a.n[i]
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(ai, b.n[j])
			var c1, c2 uint64
			r[i+j], c1 = bits.Add64(r[i+j], lo, 0)
			r[i+j], c2 = bits.Add64(r[i+j], carry, 0)
			carry = hi + c1 + c2 // cannot overflow: hi ≤ 2⁶⁴−2
		}
		r[i+4] = carry
	}
	reduce512(dst, &r)
}

// feSqrInto sets dst = a² mod p.
func feSqrInto(dst, a *fieldVal) {
	feMulInto(dst, a, a)
}

// reduce512 folds a 512-bit product into a fully reduced field element:
// value = lo + hi·2²⁵⁶ ≡ lo + hi·pFold (mod p), applied twice.
func reduce512(dst *fieldVal, r *[8]uint64) {
	// Round 1: fold r[4..7]·pFold into r[0..4] (result ≤ 320 bits).
	var t [5]uint64
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(r[4+i], pFold)
		var c1, c2 uint64
		t[i], c1 = bits.Add64(r[i], lo, 0)
		t[i], c2 = bits.Add64(t[i], carry, 0)
		carry = hi + c1 + c2
	}
	t[4] = carry

	// Round 2: fold t[4]·pFold (≤ 64+33 bits) into the low 256 bits.
	hi, lo := bits.Mul64(t[4], pFold)
	var c uint64
	dst.n[0], c = bits.Add64(t[0], lo, 0)
	dst.n[1], c = bits.Add64(t[1], hi, c)
	dst.n[2], c = bits.Add64(t[2], 0, c)
	dst.n[3], c = bits.Add64(t[3], 0, c)
	if c != 0 {
		// One final fold of a single 2²⁵⁶ overflow.
		dst.n[0], c = bits.Add64(dst.n[0], pFold, 0)
		dst.n[1], c = bits.Add64(dst.n[1], 0, c)
		dst.n[2], c = bits.Add64(dst.n[2], 0, c)
		dst.n[3], _ = bits.Add64(dst.n[3], 0, c)
	}
	if geqP(&dst.n) {
		subP(&dst.n)
	}
}

// feInvInto sets dst = a⁻¹ mod p via Fermat's little theorem
// (a^(p−2) mod p) with plain square-and-multiply over the fixed exponent.
func feInvInto(dst, a *fieldVal) {
	// p − 2, little-endian limbs.
	exp := [4]uint64{
		0xFFFFFFFEFFFFFC2D, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF,
	}
	result := fieldVal{n: [4]uint64{1, 0, 0, 0}}
	base := *a
	var tmp fieldVal
	for limb := 0; limb < 4; limb++ {
		e := exp[limb]
		for bit := 0; bit < 64; bit++ {
			if e&1 == 1 {
				feMulInto(&tmp, &result, &base)
				result = tmp
			}
			e >>= 1
			feSqrInto(&tmp, &base)
			base = tmp
		}
	}
	*dst = result
}
