package secp256k1

import (
	"math/big"
	"testing"
	"testing/quick"
)

// feFromBig builds a fieldVal from a big.Int (reduced mod p).
func feFromBig(v *big.Int) fieldVal {
	var buf [32]byte
	new(big.Int).Mod(v, S256().P).FillBytes(buf[:])
	var f fieldVal
	f.feSetBytes(&buf)
	return f
}

// feToBig converts back for comparison.
func feToBig(f *fieldVal) *big.Int {
	var buf [32]byte
	f.feBytes(&buf)
	return new(big.Int).SetBytes(buf[:])
}

// randomFe derives a pseudo-random field element from four limbs.
func randomFe(a, b, c, d uint64) *big.Int {
	v := new(big.Int).SetUint64(a)
	for _, w := range []uint64{b, c, d} {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(w))
	}
	return v.Mod(v, S256().P)
}

func TestFieldBytesRoundtrip(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		v := randomFe(a, b, c, d)
		fe := feFromBig(v)
		return feToBig(&fe).Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldSetBytesReduces(t *testing.T) {
	// Loading a value ≥ p must reduce it.
	var buf [32]byte
	pPlus5 := new(big.Int).Add(S256().P, big.NewInt(5))
	pPlus5.FillBytes(buf[:])
	var fe fieldVal
	fe.feSetBytes(&buf)
	if feToBig(&fe).Cmp(big.NewInt(5)) != 0 {
		t.Errorf("p+5 loaded as %v, want 5", feToBig(&fe))
	}
}

func TestFieldAddSubDifferential(t *testing.T) {
	p := S256().P
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 uint64) bool {
		av, bv := randomFe(a1, a2, a3, a4), randomFe(b1, b2, b3, b4)
		fa, fb := feFromBig(av), feFromBig(bv)

		sum := feFromBig(av) // copy
		sum.feAdd(&fb)
		wantSum := new(big.Int).Add(av, bv)
		wantSum.Mod(wantSum, p)
		if feToBig(&sum).Cmp(wantSum) != 0 {
			return false
		}

		diff := fa
		diff.feSub(&fb)
		wantDiff := new(big.Int).Sub(av, bv)
		wantDiff.Mod(wantDiff, p)
		return feToBig(&diff).Cmp(wantDiff) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFieldMulSqrDifferential(t *testing.T) {
	p := S256().P
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 uint64) bool {
		av, bv := randomFe(a1, a2, a3, a4), randomFe(b1, b2, b3, b4)
		fa, fb := feFromBig(av), feFromBig(bv)

		var prod fieldVal
		feMulInto(&prod, &fa, &fb)
		want := new(big.Int).Mul(av, bv)
		want.Mod(want, p)
		if feToBig(&prod).Cmp(want) != 0 {
			return false
		}

		var sq fieldVal
		feSqrInto(&sq, &fa)
		wantSq := new(big.Int).Mul(av, av)
		wantSq.Mod(wantSq, p)
		return feToBig(&sq).Cmp(wantSq) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFieldNegDifferential(t *testing.T) {
	p := S256().P
	f := func(a1, a2, a3, a4 uint64) bool {
		av := randomFe(a1, a2, a3, a4)
		fe := feFromBig(av)
		fe.feNeg()
		want := new(big.Int).Neg(av)
		want.Mod(want, p)
		return feToBig(&fe).Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldInvDifferential(t *testing.T) {
	p := S256().P
	f := func(a1, a2, a3, a4 uint64) bool {
		av := randomFe(a1, a2, a3, a4)
		if av.Sign() == 0 {
			return true
		}
		fe := feFromBig(av)
		var inv fieldVal
		feInvInto(&inv, &fe)
		want := new(big.Int).ModInverse(av, p)
		return feToBig(&inv).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFieldEdgeValues(t *testing.T) {
	p := S256().P
	edges := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).SetUint64(pFold),
		new(big.Int).Lsh(big.NewInt(1), 255),
	}
	for _, a := range edges {
		for _, b := range edges {
			fa, fb := feFromBig(a), feFromBig(b)
			sum := fa
			sum.feAdd(&fb)
			want := new(big.Int).Add(a, b)
			want.Mod(want, p)
			if feToBig(&sum).Cmp(want) != 0 {
				t.Errorf("add(%v, %v) wrong", a, b)
			}
			var prod fieldVal
			feMulInto(&prod, &fa, &fb)
			wantM := new(big.Int).Mul(a, b)
			wantM.Mod(wantM, p)
			if feToBig(&prod).Cmp(wantM) != 0 {
				t.Errorf("mul(%v, %v) wrong", a, b)
			}
		}
	}
}

// TestFastPointOpsMatchGeneric pins the fieldVal point arithmetic against
// the generic big.Int Jacobian path on random scalars.
func TestFastPointOpsMatchGeneric(t *testing.T) {
	c := S256()
	f := func(ka, kb uint64) bool {
		a := new(big.Int).SetUint64(ka%1_000_000 + 2)
		b := new(big.Int).SetUint64(kb%1_000_000 + 2)
		// Fast path (dispatched because c == _s256).
		pa, pb := c.ScalarBaseMult(a), c.ScalarBaseMult(b)
		fastSum := c.Add(pa, pb)
		fastDouble := c.Double(pa)
		fastMul := c.ScalarMult(pb, a)

		// Generic path, forced via Jacobian internals.
		genSum := c.fromJacobian(c.add(c.toJacobian(pa), c.toJacobian(pb)))
		genDouble := c.fromJacobian(c.double(c.toJacobian(pa)))
		acc := jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
		base := c.toJacobian(pb)
		for i := a.BitLen() - 1; i >= 0; i-- {
			acc = c.double(acc)
			if a.Bit(i) == 1 {
				acc = c.add(acc, base)
			}
		}
		genMul := c.fromJacobian(acc)

		return fastSum.Equal(genSum) && fastDouble.Equal(genDouble) && fastMul.Equal(genMul)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFastPathInfinityHandling(t *testing.T) {
	c := S256()
	g := c.Generator()
	if !c.Add(g, c.Neg(g)).Infinity() {
		t.Error("G + (−G) != inf on fast path")
	}
	if !c.Add(Point{}, Point{}).Infinity() {
		t.Error("inf + inf != inf")
	}
	inf := geInfinity()
	var doubled gePoint
	geDouble(&doubled, &inf)
	if !doubled.isInfinity() {
		t.Error("2·inf != inf in ge arithmetic")
	}
}

func BenchmarkFieldMul(b *testing.B) {
	fa := feFromBig(randomFe(1, 2, 3, 4))
	fb := feFromBig(randomFe(5, 6, 7, 8))
	var out fieldVal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		feMulInto(&out, &fa, &fb)
	}
}

func BenchmarkFieldInv(b *testing.B) {
	fa := feFromBig(randomFe(1, 2, 3, 4))
	var out fieldVal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		feInvInto(&out, &fa)
	}
}
