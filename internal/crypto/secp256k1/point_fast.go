package secp256k1

import (
	"math/big"
	"sync"
)

// Fast Jacobian point arithmetic for secp256k1 (a = 0) over the fixed
// field in field.go. The generic big.Int path in curve.go remains for
// arbitrary curves (P-256 differential tests); the public Curve methods
// dispatch here when the receiver is the secp256k1 singleton.

// gePoint is a Jacobian point (X/Z², Y/Z³); Z == 0 encodes infinity.
type gePoint struct {
	x, y, z fieldVal
}

// geInfinity returns the point at infinity.
func geInfinity() gePoint {
	var p gePoint
	p.x.n[0] = 1
	p.y.n[0] = 1
	return p
}

func (p *gePoint) isInfinity() bool { return p.z.feIsZero() }

// geFromAffine converts an affine point (must be on the curve, not
// infinity).
func geFromAffine(pt Point) gePoint {
	var out gePoint
	var buf [32]byte
	pt.X.FillBytes(buf[:])
	out.x.feSetBytes(&buf)
	pt.Y.FillBytes(buf[:])
	out.y.feSetBytes(&buf)
	out.z.n[0] = 1
	return out
}

// geToAffine converts back to affine big.Int coordinates.
func geToAffine(p *gePoint) Point {
	if p.isInfinity() {
		return Point{}
	}
	var zInv, zInv2, zInv3, ax, ay fieldVal
	feInvInto(&zInv, &p.z)
	feSqrInto(&zInv2, &zInv)
	feMulInto(&zInv3, &zInv2, &zInv)
	feMulInto(&ax, &p.x, &zInv2)
	feMulInto(&ay, &p.y, &zInv3)
	var xb, yb [32]byte
	ax.feBytes(&xb)
	ay.feBytes(&yb)
	return Point{X: new(big.Int).SetBytes(xb[:]), Y: new(big.Int).SetBytes(yb[:])}
}

// geDouble sets dst = 2p using dbl-2009-l (a = 0).
func geDouble(dst, p *gePoint) {
	if p.isInfinity() || p.y.feIsZero() {
		*dst = geInfinity()
		return
	}
	var A, B, C, D, E, F, X3, Y3, Z3, tmp fieldVal
	feSqrInto(&A, &p.x) // A = X²
	feSqrInto(&B, &p.y) // B = Y²
	feSqrInto(&C, &B)   // C = B²

	// D = 2·((X+B)² − A − C)
	tmp = p.x
	tmp.feAdd(&B)
	feSqrInto(&D, &tmp)
	D.feSub(&A)
	D.feSub(&C)
	tmp = D
	D.feAdd(&tmp) // ×2

	// E = 3A, F = E²
	E = A
	E.feAdd(&A)
	E.feAdd(&A)
	feSqrInto(&F, &E)

	// X3 = F − 2D
	X3 = F
	X3.feSub(&D)
	X3.feSub(&D)

	// Y3 = E·(D − X3) − 8C
	tmp = D
	tmp.feSub(&X3)
	feMulInto(&Y3, &E, &tmp)
	tmp = C
	tmp.feAdd(&C) // 2C
	C = tmp
	C.feAdd(&tmp) // 4C
	tmp = C
	C.feAdd(&tmp) // 8C
	Y3.feSub(&C)

	// Z3 = 2·Y·Z
	feMulInto(&Z3, &p.y, &p.z)
	tmp = Z3
	Z3.feAdd(&tmp)

	dst.x, dst.y, dst.z = X3, Y3, Z3
}

// geAdd sets dst = p + q using add-2007-bl.
func geAdd(dst, p, q *gePoint) {
	if p.isInfinity() {
		*dst = *q
		return
	}
	if q.isInfinity() {
		*dst = *p
		return
	}

	var z1z1, z2z2, u1, u2, s1, s2, tmp fieldVal
	feSqrInto(&z1z1, &p.z)
	feSqrInto(&z2z2, &q.z)
	feMulInto(&u1, &p.x, &z2z2)
	feMulInto(&u2, &q.x, &z1z1)

	feMulInto(&tmp, &p.y, &q.z)
	feMulInto(&s1, &tmp, &z2z2)
	feMulInto(&tmp, &q.y, &p.z)
	feMulInto(&s2, &tmp, &z1z1)

	if u1.feEqual(&u2) {
		if !s1.feEqual(&s2) {
			*dst = geInfinity()
			return
		}
		geDouble(dst, p)
		return
	}

	var h, i, j, r, v, X3, Y3, Z3 fieldVal
	h = u2
	h.feSub(&u1) // H = U2 − U1
	i = h
	i.feAdd(&h) // 2H
	feSqrInto(&tmp, &i)
	i = tmp // I = (2H)²
	feMulInto(&j, &h, &i)

	r = s2
	r.feSub(&s1)
	tmp = r
	r.feAdd(&tmp) // r = 2(S2 − S1)

	feMulInto(&v, &u1, &i)

	// X3 = r² − J − 2V
	feSqrInto(&X3, &r)
	X3.feSub(&j)
	X3.feSub(&v)
	X3.feSub(&v)

	// Y3 = r·(V − X3) − 2·S1·J
	tmp = v
	tmp.feSub(&X3)
	feMulInto(&Y3, &r, &tmp)
	feMulInto(&tmp, &s1, &j)
	Y3.feSub(&tmp)
	Y3.feSub(&tmp)

	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	tmp = p.z
	tmp.feAdd(&q.z)
	feSqrInto(&Z3, &tmp)
	Z3.feSub(&z1z1)
	Z3.feSub(&z2z2)
	feMulInto(&tmp, &Z3, &h)
	Z3 = tmp

	dst.x, dst.y, dst.z = X3, Y3, Z3
}

// geScalarMult computes k·p with a 4-bit fixed window. k must already be
// reduced mod N.
func geScalarMult(p *gePoint, k *big.Int) gePoint {
	if k.Sign() == 0 || p.isInfinity() {
		return geInfinity()
	}
	var table [16]gePoint
	table[0] = geInfinity()
	table[1] = *p
	for w := 2; w < 16; w++ {
		geAdd(&table[w], &table[w-1], p)
	}
	acc := geInfinity()
	words := k.Bits()
	windows := (k.BitLen() + 3) / 4
	for i := windows - 1; i >= 0; i-- {
		geDouble(&acc, &acc)
		geDouble(&acc, &acc)
		geDouble(&acc, &acc)
		geDouble(&acc, &acc)
		if w := nibbleAt(words, i); w != 0 {
			geAdd(&acc, &acc, &table[w])
		}
	}
	return acc
}

// geBaseTable is the comb table for the generator: table[i][w] =
// w·2^(4i)·G, built once on first use.
var (
	geBaseOnce  sync.Once
	geBaseTable [][16]gePoint
)

func geBase() [][16]gePoint {
	geBaseOnce.Do(func() {
		windows := (S256().N.BitLen() + 3) / 4
		table := make([][16]gePoint, windows)
		stride := geFromAffine(S256().Generator())
		for i := 0; i < windows; i++ {
			table[i][0] = geInfinity()
			for w := 1; w < 16; w++ {
				geAdd(&table[i][w], &table[i][w-1], &stride)
			}
			for b := 0; b < 4; b++ {
				geDouble(&stride, &stride)
			}
		}
		geBaseTable = table
	})
	return geBaseTable
}

// geScalarBaseMult computes k·G via the precomputed comb (k reduced mod N).
func geScalarBaseMult(k *big.Int) gePoint {
	if k.Sign() == 0 {
		return geInfinity()
	}
	table := geBase()
	acc := geInfinity()
	words := k.Bits()
	windows := len(table)
	for i := 0; i < windows; i++ {
		if w := nibbleAt(words, i); w != 0 {
			geAdd(&acc, &acc, &table[i][w])
		}
	}
	return acc
}
