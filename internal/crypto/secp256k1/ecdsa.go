package secp256k1

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"io"
	"math/big"
)

// PrivateKey is an ECDSA private key on secp256k1.
type PrivateKey struct {
	D      *big.Int
	Public PublicKey
}

// PublicKey is an ECDSA public key on secp256k1.
type PublicKey struct {
	Point Point
}

// Signature is an ECDSA signature with a recovery identifier. V is 0 or 1
// and selects which of the two candidate public keys RecoverPublicKey
// returns (Ethereum-style recovery id, without the +27 legacy offset).
type Signature struct {
	R, S *big.Int
	V    byte
}

// ErrInvalidSignature is returned when a signature fails structural
// validation (out-of-range R/S or malformed encoding).
var ErrInvalidSignature = errors.New("secp256k1: invalid signature")

// GenerateKey creates a private key from entropy read from r. Pass nil to
// use crypto/rand.
func GenerateKey(r io.Reader) (*PrivateKey, error) {
	if r == nil {
		r = rand.Reader
	}
	c := S256()
	for {
		buf := make([]byte, 32)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() == 0 || d.Cmp(c.N) >= 0 {
			continue
		}
		return NewPrivateKey(d), nil
	}
}

// NewPrivateKey builds a private key from a scalar in [1, N-1]. The scalar
// is reduced modulo N; a zero scalar panics because it can never occur from
// GenerateKey and indicates programmer error.
func NewPrivateKey(d *big.Int) *PrivateKey {
	c := S256()
	d = new(big.Int).Mod(d, c.N)
	if d.Sign() == 0 {
		panic("secp256k1: zero private key")
	}
	return &PrivateKey{
		D:      d,
		Public: PublicKey{Point: c.ScalarBaseMult(d)},
	}
}

// Bytes returns the 32-byte big-endian scalar.
func (k *PrivateKey) Bytes() []byte {
	out := make([]byte, 32)
	k.D.FillBytes(out)
	return out
}

// Bytes returns the 65-byte uncompressed SEC1 encoding.
func (pk PublicKey) Bytes() []byte { return S256().Marshal(pk.Point) }

// BytesCompressed returns the 33-byte compressed SEC1 encoding.
func (pk PublicKey) BytesCompressed() []byte { return S256().MarshalCompressed(pk.Point) }

// ParsePublicKey decodes a SEC1-encoded public key (compressed or not).
func ParsePublicKey(data []byte) (PublicKey, error) {
	p, err := S256().Unmarshal(data)
	if err != nil {
		return PublicKey{}, err
	}
	if p.Infinity() {
		return PublicKey{}, errors.New("secp256k1: public key is the point at infinity")
	}
	return PublicKey{Point: p}, nil
}

// hashToScalar converts a message digest to a scalar per SEC1 §4.1.3: take
// the leftmost BitSize bits, then reduce mod N.
func hashToScalar(digest []byte, c *Curve) *big.Int {
	orderBytes := (c.N.BitLen() + 7) / 8
	if len(digest) > orderBytes {
		digest = digest[:orderBytes]
	}
	e := new(big.Int).SetBytes(digest)
	excess := len(digest)*8 - c.N.BitLen()
	if excess > 0 {
		e.Rsh(e, uint(excess))
	}
	return e
}

// Sign produces a deterministic (RFC 6979) ECDSA signature over a 32-byte
// message digest. The S value is normalized to the lower half of the group
// order (Ethereum/BIP-62 low-s rule) so signatures are non-malleable.
func (k *PrivateKey) Sign(digest []byte) (Signature, error) {
	if len(digest) != 32 {
		return Signature{}, errors.New("secp256k1: digest must be 32 bytes")
	}
	c := S256()
	e := hashToScalar(digest, c)
	halfN := new(big.Int).Rsh(c.N, 1)

	for nonce := rfc6979(k.D, digest, c); ; {
		kNonce := nonce()
		if kNonce.Sign() == 0 || kNonce.Cmp(c.N) >= 0 {
			continue
		}
		p := c.ScalarBaseMult(kNonce)
		if p.Infinity() {
			continue
		}
		r := new(big.Int).Mod(p.X, c.N)
		if r.Sign() == 0 {
			continue
		}
		// s = k⁻¹(e + r·d) mod N
		kInv := new(big.Int).ModInverse(kNonce, c.N)
		s := new(big.Int).Mul(r, k.D)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, c.N)
		if s.Sign() == 0 {
			continue
		}
		v := byte(p.Y.Bit(0))
		// x overflow case: r = p.X - N would need v |= 2; p.X >= N has
		// probability ~2⁻¹²⁸ so we simply retry instead.
		if p.X.Cmp(c.N) >= 0 {
			continue
		}
		if s.Cmp(halfN) > 0 {
			s.Sub(c.N, s)
			v ^= 1
		}
		return Signature{R: r, S: s, V: v}, nil
	}
}

// Verify reports whether sig is a valid signature of digest under pk.
func (pk PublicKey) Verify(digest []byte, sig Signature) bool {
	c := S256()
	if sig.R == nil || sig.S == nil {
		return false
	}
	if sig.R.Sign() <= 0 || sig.S.Sign() <= 0 ||
		sig.R.Cmp(c.N) >= 0 || sig.S.Cmp(c.N) >= 0 {
		return false
	}
	if pk.Point.Infinity() || !c.IsOnCurve(pk.Point) {
		return false
	}
	e := hashToScalar(digest, c)
	w := new(big.Int).ModInverse(sig.S, c.N)
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, c.N)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, c.N)
	p := c.Add(c.ScalarBaseMult(u1), c.ScalarMult(pk.Point, u2))
	if p.Infinity() {
		return false
	}
	x := new(big.Int).Mod(p.X, c.N)
	return x.Cmp(sig.R) == 0
}

// RecoverPublicKey recovers the signing public key from a signature and the
// digest it signed. This is how SmartCrowd nodes attribute on-chain
// messages to wallet addresses without carrying explicit public keys.
func RecoverPublicKey(digest []byte, sig Signature) (PublicKey, error) {
	c := S256()
	if sig.R == nil || sig.S == nil ||
		sig.R.Sign() <= 0 || sig.S.Sign() <= 0 ||
		sig.R.Cmp(c.N) >= 0 || sig.S.Cmp(c.N) >= 0 || sig.V > 1 {
		return PublicKey{}, ErrInvalidSignature
	}
	// R point has x = sig.R (we never emit the overflow case) and the
	// parity selected by V.
	y, err := c.recoverY(sig.R, sig.V == 1)
	if err != nil {
		return PublicKey{}, ErrInvalidSignature
	}
	rPoint := Point{X: new(big.Int).Set(sig.R), Y: y}

	// Q = r⁻¹(s·R − e·G). By construction Q satisfies the ECDSA
	// verification equation for (r, s) — substituting Q into
	// x(u1·G + u2·Q) returns R's x-coordinate — so no separate Verify
	// pass is needed; structural validation above covers the rest.
	e := hashToScalar(digest, c)
	rInv := new(big.Int).ModInverse(sig.R, c.N)
	sR := c.ScalarMult(rPoint, sig.S)
	eG := c.ScalarBaseMult(e)
	q := c.ScalarMult(c.Add(sR, c.Neg(eG)), rInv)
	if q.Infinity() || !c.IsOnCurve(q) {
		return PublicKey{}, ErrInvalidSignature
	}
	return PublicKey{Point: q}, nil
}

// Serialize encodes the signature as 65 bytes: R (32) || S (32) || V (1).
func (s Signature) Serialize() []byte {
	out := make([]byte, 65)
	s.R.FillBytes(out[:32])
	s.S.FillBytes(out[32:64])
	out[64] = s.V
	return out
}

// ParseSignature decodes a 65-byte R||S||V signature.
func ParseSignature(data []byte) (Signature, error) {
	if len(data) != 65 {
		return Signature{}, ErrInvalidSignature
	}
	return Signature{
		R: new(big.Int).SetBytes(data[:32]),
		S: new(big.Int).SetBytes(data[32:64]),
		V: data[64],
	}, nil
}

// rfc6979 returns a generator of deterministic nonces for (key, digest) as
// specified by RFC 6979 §3.2, using HMAC-SHA256. Successive calls yield the
// retry sequence (step h).
func rfc6979(priv *big.Int, digest []byte, c *Curve) func() *big.Int {
	qLen := (c.N.BitLen() + 7) / 8
	x := make([]byte, qLen)
	priv.FillBytes(x)
	h1 := make([]byte, qLen)
	hashToScalar(digest, c).FillBytes(h1)

	// Step b-c.
	v := make([]byte, sha256.Size)
	k := make([]byte, sha256.Size)
	for i := range v {
		v[i] = 0x01
	}

	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}

	// Steps d-g.
	k = mac(k, v, []byte{0x00}, x, h1)
	v = mac(k, v)
	k = mac(k, v, []byte{0x01}, x, h1)
	v = mac(k, v)

	return func() *big.Int {
		for {
			var t []byte
			for len(t) < qLen {
				v = mac(k, v)
				t = append(t, v...)
			}
			candidate := bitsToScalar(t[:qLen], c)
			// Prepare next iteration state regardless of acceptance.
			k = mac(k, v, []byte{0x00})
			v = mac(k, v)
			if candidate.Sign() > 0 && candidate.Cmp(c.N) < 0 {
				return candidate
			}
		}
	}
}

// bitsToScalar implements bits2int from RFC 6979 (no reduction).
func bitsToScalar(b []byte, c *Curve) *big.Int {
	v := new(big.Int).SetBytes(b)
	excess := len(b)*8 - c.N.BitLen()
	if excess > 0 {
		v.Rsh(v, uint(excess))
	}
	return v
}
