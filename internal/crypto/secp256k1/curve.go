// Package secp256k1 implements the secp256k1 elliptic curve and ECDSA
// signatures with deterministic (RFC 6979) nonces and public-key recovery,
// matching the signature scheme the SmartCrowd paper prescribes for SRAs
// (Eq. 2) and detection reports (Eq. 4).
//
// The arithmetic is written over a generic short-Weierstrass curve
// (y² = x³ + ax + b mod p) so that the identical code path can be
// instantiated with NIST P-256 and differentially tested against the Go
// standard library (see curve_test.go). It uses math/big and is not
// constant-time; SmartCrowd is a research platform, not a wallet.
package secp256k1

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync"
)

// Curve holds the domain parameters of a short-Weierstrass curve over a
// prime field, y² = x³ + A·x + B (mod P), with base point (Gx, Gy) of
// prime order N.
type Curve struct {
	Name    string
	P       *big.Int // field prime
	N       *big.Int // group order
	A, B    *big.Int // curve coefficients
	Gx, Gy  *big.Int // generator
	BitSize int
}

// Point is an affine curve point. The zero value (nil coordinates) is the
// point at infinity.
type Point struct {
	X, Y *big.Int
}

// Infinity reports whether p is the point at infinity.
func (p Point) Infinity() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two points are the same affine point.
func (p Point) Equal(q Point) bool {
	if p.Infinity() || q.Infinity() {
		return p.Infinity() && q.Infinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

func (p Point) String() string {
	if p.Infinity() {
		return "(inf)"
	}
	return fmt.Sprintf("(%x, %x)", p.X, p.Y)
}

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("secp256k1: bad hex constant " + s)
	}
	return v
}

// S256 returns the secp256k1 curve parameters (SEC 2, version 2.0).
func S256() *Curve { return _s256 }

var _s256 = &Curve{
	Name:    "secp256k1",
	P:       mustHex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"),
	N:       mustHex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"),
	A:       big.NewInt(0),
	B:       big.NewInt(7),
	Gx:      mustHex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
	Gy:      mustHex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
	BitSize: 256,
}

// P256Params returns NIST P-256 parameters for differential testing against
// crypto/elliptic. Not used by the SmartCrowd protocol itself.
func P256Params() *Curve {
	return &Curve{
		Name:    "P-256",
		P:       mustHex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"),
		N:       mustHex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"),
		A:       mustHex("ffffffff00000001000000000000000000000000fffffffffffffffffffffffc"),
		B:       mustHex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
		Gx:      mustHex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
		Gy:      mustHex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
		BitSize: 256,
	}
}

// IsOnCurve reports whether p satisfies the curve equation (the point at
// infinity is considered on-curve).
func (c *Curve) IsOnCurve(p Point) bool {
	if p.Infinity() {
		return true
	}
	if p.X.Sign() < 0 || p.X.Cmp(c.P) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(c.P) >= 0 {
		return false
	}
	// y² = x³ + ax + b
	y2 := new(big.Int).Mul(p.Y, p.Y)
	y2.Mod(y2, c.P)
	rhs := new(big.Int).Mul(p.X, p.X)
	rhs.Mul(rhs, p.X)
	ax := new(big.Int).Mul(c.A, p.X)
	rhs.Add(rhs, ax)
	rhs.Add(rhs, c.B)
	rhs.Mod(rhs, c.P)
	return y2.Cmp(rhs) == 0
}

// Generator returns the curve's base point.
func (c *Curve) Generator() Point {
	return Point{X: new(big.Int).Set(c.Gx), Y: new(big.Int).Set(c.Gy)}
}

// jacobian is a point in Jacobian projective coordinates:
// (X/Z², Y/Z³). Z == 0 encodes the point at infinity.
type jacobian struct {
	x, y, z *big.Int
}

func (c *Curve) toJacobian(p Point) jacobian {
	if p.Infinity() {
		return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	return jacobian{
		x: new(big.Int).Set(p.X),
		y: new(big.Int).Set(p.Y),
		z: big.NewInt(1),
	}
}

func (c *Curve) fromJacobian(j jacobian) Point {
	if j.z.Sign() == 0 {
		return Point{}
	}
	zInv := new(big.Int).ModInverse(j.z, c.P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, c.P)
	x := new(big.Int).Mul(j.x, zInv2)
	x.Mod(x, c.P)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, c.P)
	y := new(big.Int).Mul(j.y, zInv3)
	y.Mod(y, c.P)
	return Point{X: x, Y: y}
}

// double returns 2*j using the standard dbl-2007-bl-style formulas with a
// general curve coefficient A.
func (c *Curve) double(j jacobian) jacobian {
	if j.z.Sign() == 0 || j.y.Sign() == 0 {
		return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	}
	p := c.P
	xx := new(big.Int).Mul(j.x, j.x) // X²
	xx.Mod(xx, p)
	yy := new(big.Int).Mul(j.y, j.y) // Y²
	yy.Mod(yy, p)
	yyyy := new(big.Int).Mul(yy, yy) // Y⁴
	yyyy.Mod(yyyy, p)
	zz := new(big.Int).Mul(j.z, j.z) // Z²
	zz.Mod(zz, p)

	// S = 4·X·Y²
	s := new(big.Int).Mul(j.x, yy)
	s.Lsh(s, 2)
	s.Mod(s, p)

	// M = 3·X² + A·Z⁴
	m := new(big.Int).Lsh(xx, 1)
	m.Add(m, xx)
	if c.A.Sign() != 0 {
		z4 := new(big.Int).Mul(zz, zz)
		z4.Mod(z4, p)
		z4.Mul(z4, c.A)
		m.Add(m, z4)
	}
	m.Mod(m, p)

	// X' = M² − 2·S
	x3 := new(big.Int).Mul(m, m)
	x3.Sub(x3, new(big.Int).Lsh(s, 1))
	x3.Mod(x3, p)
	if x3.Sign() < 0 {
		x3.Add(x3, p)
	}

	// Y' = M·(S − X') − 8·Y⁴
	y3 := new(big.Int).Sub(s, x3)
	y3.Mul(y3, m)
	y3.Sub(y3, new(big.Int).Lsh(yyyy, 3))
	y3.Mod(y3, p)
	if y3.Sign() < 0 {
		y3.Add(y3, p)
	}

	// Z' = 2·Y·Z
	z3 := new(big.Int).Mul(j.y, j.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, p)

	return jacobian{x: x3, y: y3, z: z3}
}

// add returns j1 + j2 in Jacobian coordinates.
func (c *Curve) add(j1, j2 jacobian) jacobian {
	if j1.z.Sign() == 0 {
		return j2
	}
	if j2.z.Sign() == 0 {
		return j1
	}
	p := c.P

	z1z1 := new(big.Int).Mul(j1.z, j1.z)
	z1z1.Mod(z1z1, p)
	z2z2 := new(big.Int).Mul(j2.z, j2.z)
	z2z2.Mod(z2z2, p)

	u1 := new(big.Int).Mul(j1.x, z2z2)
	u1.Mod(u1, p)
	u2 := new(big.Int).Mul(j2.x, z1z1)
	u2.Mod(u2, p)

	s1 := new(big.Int).Mul(j1.y, j2.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, p)
	s2 := new(big.Int).Mul(j2.y, j1.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, p)

	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			// P + (−P) = infinity
			return jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
		}
		return c.double(j1)
	}

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, p)
	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, p)
	jj := new(big.Int).Mul(h, i)
	jj.Mod(jj, p)

	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, p)
	r.Lsh(r, 1)

	v := new(big.Int).Mul(u1, i)
	v.Mod(v, p)

	// X3 = r² − J − 2·V
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, jj)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	x3.Mod(x3, p)
	if x3.Sign() < 0 {
		x3.Add(x3, p)
	}

	// Y3 = r·(V − X3) − 2·S1·J
	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	s1j := new(big.Int).Mul(s1, jj)
	y3.Sub(y3, new(big.Int).Lsh(s1j, 1))
	y3.Mod(y3, p)
	if y3.Sign() < 0 {
		y3.Add(y3, p)
	}

	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	z3 := new(big.Int).Add(j1.z, j2.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, p)
	if z3.Sign() < 0 {
		z3.Add(z3, p)
	}

	return jacobian{x: x3, y: y3, z: z3}
}

// Add returns p + q in affine coordinates.
func (c *Curve) Add(p, q Point) Point {
	if c == _s256 {
		if p.Infinity() {
			return q
		}
		if q.Infinity() {
			return p
		}
		gp, gq := geFromAffine(p), geFromAffine(q)
		var out gePoint
		geAdd(&out, &gp, &gq)
		return geToAffine(&out)
	}
	return c.fromJacobian(c.add(c.toJacobian(p), c.toJacobian(q)))
}

// Double returns 2p in affine coordinates.
func (c *Curve) Double(p Point) Point {
	if c == _s256 && !p.Infinity() {
		gp := geFromAffine(p)
		var out gePoint
		geDouble(&out, &gp)
		return geToAffine(&out)
	}
	return c.fromJacobian(c.double(c.toJacobian(p)))
}

// Neg returns −p.
func (c *Curve) Neg(p Point) Point {
	if p.Infinity() {
		return Point{}
	}
	y := new(big.Int).Sub(c.P, p.Y)
	y.Mod(y, c.P)
	return Point{X: new(big.Int).Set(p.X), Y: y}
}

// ScalarMult returns k·p using a left-to-right 4-bit fixed window over
// Jacobian coordinates (the 15-entry odd/even table costs 14 additions and
// saves ~64 additions over plain double-and-add for 256-bit scalars). k is
// reduced modulo the group order.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point {
	k = new(big.Int).Mod(k, c.N)
	if k.Sign() == 0 || p.Infinity() {
		return Point{}
	}
	if c == _s256 {
		gp := geFromAffine(p)
		out := geScalarMult(&gp, k)
		return geToAffine(&out)
	}
	// table[w] = w·p for w in 1..15.
	var table [16]jacobian
	table[0] = jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	table[1] = c.toJacobian(p)
	for w := 2; w < 16; w++ {
		table[w] = c.add(table[w-1], table[1])
	}

	acc := jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	windows := (k.BitLen() + 3) / 4
	words := k.Bits()
	for i := windows - 1; i >= 0; i-- {
		acc = c.double(c.double(c.double(c.double(acc))))
		w := nibbleAt(words, i)
		if w != 0 {
			acc = c.add(acc, table[w])
		}
	}
	return c.fromJacobian(acc)
}

// nibbleAt extracts 4-bit window i (counting from the least-significant
// end) of a big.Int's word representation.
func nibbleAt(words []big.Word, i int) int {
	bitPos := i * 4
	wordIdx := bitPos / bits.UintSize
	if wordIdx >= len(words) {
		return 0
	}
	return int(words[wordIdx]>>(bitPos%bits.UintSize)) & 0xF
}

// baseTableWindow is the comb width for the precomputed generator table.
const baseTableWindow = 4

// baseTable memoizes window multiples of G per curve:
// table[i][w] = w·2^(4i)·G for i ∈ [0, 64), w ∈ [0, 16).
var (
	baseTableMu sync.Mutex
	baseTables  = make(map[*Curve][][]jacobian)
)

func (c *Curve) baseTable() [][]jacobian {
	baseTableMu.Lock()
	defer baseTableMu.Unlock()
	if t, ok := baseTables[c]; ok {
		return t
	}
	windows := (c.N.BitLen() + baseTableWindow - 1) / baseTableWindow
	table := make([][]jacobian, windows)
	inf := jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	stride := c.toJacobian(c.Generator()) // 2^(4i)·G, updated per window
	for i := 0; i < windows; i++ {
		row := make([]jacobian, 1<<baseTableWindow)
		row[0] = inf
		for w := 1; w < 1<<baseTableWindow; w++ {
			row[w] = c.add(row[w-1], stride)
		}
		table[i] = row
		for b := 0; b < baseTableWindow; b++ {
			stride = c.double(stride)
		}
	}
	baseTables[c] = table
	return table
}

// ScalarBaseMult returns k·G using a fixed-window comb over a precomputed
// generator table — roughly an order of magnitude faster than the generic
// double-and-add, which matters because every transaction and report
// signature costs one base multiplication (and every verification two
// multiplications, one of them here).
func (c *Curve) ScalarBaseMult(k *big.Int) Point {
	k = new(big.Int).Mod(k, c.N)
	if k.Sign() == 0 {
		return Point{}
	}
	if c == _s256 {
		out := geScalarBaseMult(k)
		return geToAffine(&out)
	}
	table := c.baseTable()
	acc := jacobian{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
	words := k.Bits()
	bitsPerWord := bits.UintSize
	windows := len(table)
	for i := 0; i < windows; i++ {
		bitPos := i * baseTableWindow
		wordIdx := bitPos / bitsPerWord
		if wordIdx >= len(words) {
			break
		}
		w := int(words[wordIdx]>>(bitPos%bitsPerWord)) & (1<<baseTableWindow - 1)
		if w != 0 {
			acc = c.add(acc, table[i][w])
		}
	}
	return c.fromJacobian(acc)
}

// Marshal encodes p as an uncompressed SEC1 point (0x04 || X || Y).
func (c *Curve) Marshal(p Point) []byte {
	byteLen := (c.BitSize + 7) / 8
	out := make([]byte, 1+2*byteLen)
	if p.Infinity() {
		return out[:1] // single zero byte encodes infinity
	}
	out[0] = 0x04
	p.X.FillBytes(out[1 : 1+byteLen])
	p.Y.FillBytes(out[1+byteLen:])
	return out
}

// MarshalCompressed encodes p as a compressed SEC1 point
// (0x02/0x03 || X).
func (c *Curve) MarshalCompressed(p Point) []byte {
	byteLen := (c.BitSize + 7) / 8
	out := make([]byte, 1+byteLen)
	if p.Infinity() {
		return out[:1]
	}
	out[0] = byte(2 + p.Y.Bit(0))
	p.X.FillBytes(out[1:])
	return out
}

// Unmarshal decodes an uncompressed or compressed SEC1 point and validates
// that it is on the curve.
func (c *Curve) Unmarshal(data []byte) (Point, error) {
	byteLen := (c.BitSize + 7) / 8
	switch {
	case len(data) == 1 && data[0] == 0:
		return Point{}, nil
	case len(data) == 1+2*byteLen && data[0] == 0x04:
		p := Point{
			X: new(big.Int).SetBytes(data[1 : 1+byteLen]),
			Y: new(big.Int).SetBytes(data[1+byteLen:]),
		}
		if !c.IsOnCurve(p) {
			return Point{}, errors.New("secp256k1: point not on curve")
		}
		return p, nil
	case len(data) == 1+byteLen && (data[0] == 0x02 || data[0] == 0x03):
		x := new(big.Int).SetBytes(data[1:])
		y, err := c.recoverY(x, data[0] == 0x03)
		if err != nil {
			return Point{}, err
		}
		return Point{X: x, Y: y}, nil
	default:
		return Point{}, fmt.Errorf("secp256k1: invalid point encoding (%d bytes)", len(data))
	}
}

// recoverY computes y from x via the curve equation, choosing the root with
// the requested parity.
func (c *Curve) recoverY(x *big.Int, odd bool) (*big.Int, error) {
	if x.Sign() < 0 || x.Cmp(c.P) >= 0 {
		return nil, errors.New("secp256k1: x coordinate out of range")
	}
	// y² = x³ + ax + b
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, new(big.Int).Mul(c.A, x))
	rhs.Add(rhs, c.B)
	rhs.Mod(rhs, c.P)
	y := new(big.Int).ModSqrt(rhs, c.P)
	if y == nil {
		return nil, errors.New("secp256k1: x is not on the curve")
	}
	if (y.Bit(0) == 1) != odd {
		y.Sub(c.P, y)
	}
	return y, nil
}
