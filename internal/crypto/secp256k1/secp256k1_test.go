package secp256k1

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"math/big"
	"testing"
	"testing/quick"
)

func TestGeneratorOnCurve(t *testing.T) {
	c := S256()
	if !c.IsOnCurve(c.Generator()) {
		t.Fatal("generator is not on the curve")
	}
}

// TestKnownMultiples checks k·G against published secp256k1 vectors.
func TestKnownMultiples(t *testing.T) {
	c := S256()
	cases := []struct {
		k      int64
		xs, ys string
	}{
		{1, "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
			"483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"},
		{2, "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
			"1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"},
		{3, "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
			"388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"},
	}
	for _, tc := range cases {
		got := c.ScalarBaseMult(big.NewInt(tc.k))
		if got.X.Cmp(mustHex(tc.xs)) != 0 || got.Y.Cmp(mustHex(tc.ys)) != 0 {
			t.Errorf("%d·G = %v, want (%s, %s)", tc.k, got, tc.xs, tc.ys)
		}
	}
}

func TestOrderTimesGeneratorIsInfinity(t *testing.T) {
	c := S256()
	// ScalarMult reduces mod N, so use the raw loop via N-1 then add G.
	nm1 := new(big.Int).Sub(c.N, big.NewInt(1))
	p := c.ScalarBaseMult(nm1)
	sum := c.Add(p, c.Generator())
	if !sum.Infinity() {
		t.Errorf("(N-1)·G + G = %v, want infinity", sum)
	}
	// (N-1)·G must equal −G.
	if !p.Equal(c.Neg(c.Generator())) {
		t.Error("(N-1)·G != -G")
	}
}

func TestGroupLaws(t *testing.T) {
	c := S256()
	f := func(ka, kb uint64) bool {
		a := new(big.Int).SetUint64(ka%10_000 + 1)
		b := new(big.Int).SetUint64(kb%10_000 + 1)
		aG := c.ScalarBaseMult(a)
		bG := c.ScalarBaseMult(b)
		// (a+b)G == aG + bG
		sum := c.ScalarBaseMult(new(big.Int).Add(a, b))
		if !c.Add(aG, bG).Equal(sum) {
			return false
		}
		// a(bG) == b(aG)
		if !c.ScalarMult(bG, a).Equal(c.ScalarMult(aG, b)) {
			return false
		}
		// closure
		return c.IsOnCurve(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddInfinityIdentity(t *testing.T) {
	c := S256()
	g := c.Generator()
	if !c.Add(g, Point{}).Equal(g) {
		t.Error("G + inf != G")
	}
	if !c.Add(Point{}, g).Equal(g) {
		t.Error("inf + G != G")
	}
	if !c.Add(g, c.Neg(g)).Infinity() {
		t.Error("G + (-G) != inf")
	}
	if !c.Double(Point{}).Infinity() {
		t.Error("2·inf != inf")
	}
}

// TestDifferentialP256 runs the generic Weierstrass code with NIST P-256
// parameters and compares scalar multiplication against crypto/elliptic.
func TestDifferentialP256(t *testing.T) {
	ours := P256Params()
	std := elliptic.P256()
	f := func(seed uint64) bool {
		k := new(big.Int).SetUint64(seed)
		k.Mul(k, k) // widen
		k.Add(k, big.NewInt(1))
		k.Mod(k, ours.N)
		wantX, wantY := std.ScalarBaseMult(k.Bytes())
		got := ours.ScalarBaseMult(k)
		return got.X.Cmp(wantX) == 0 && got.Y.Cmp(wantY) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialP256Add compares point addition against crypto/elliptic.
func TestDifferentialP256Add(t *testing.T) {
	ours := P256Params()
	std := elliptic.P256()
	a := ours.ScalarBaseMult(big.NewInt(123456789))
	b := ours.ScalarBaseMult(big.NewInt(987654321))
	wantX, wantY := std.Add(a.X, a.Y, b.X, b.Y)
	got := ours.Add(a, b)
	if got.X.Cmp(wantX) != 0 || got.Y.Cmp(wantY) != 0 {
		t.Errorf("Add mismatch: got %v want (%x, %x)", got, wantX, wantY)
	}
}

// TestVerifyAgainstStdlibECDSA signs with crypto/ecdsa on P-256 and
// verifies with our generic verifier logic transplanted to P-256 params —
// exercising hashToScalar and the verification equation against a second
// implementation.
func TestVerifyAgainstStdlibECDSA(t *testing.T) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("smartcrowd differential test"))
	r, s, err := ecdsa.Sign(rand.Reader, key, digest[:])
	if err != nil {
		t.Fatal(err)
	}
	c := P256Params()
	e := hashToScalar(digest[:], c)
	w := new(big.Int).ModInverse(s, c.N)
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, c.N)
	u2 := new(big.Int).Mul(r, w)
	u2.Mod(u2, c.N)
	pub := Point{X: key.PublicKey.X, Y: key.PublicKey.Y}
	p := c.Add(c.ScalarBaseMult(u1), c.ScalarMult(pub, u2))
	if new(big.Int).Mod(p.X, c.N).Cmp(r) != 0 {
		t.Error("our verification equation rejects a stdlib ECDSA signature")
	}
}

func TestSignVerifyRoundtrip(t *testing.T) {
	key, err := GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("release announcement"))
	sig, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !key.Public.Verify(digest[:], sig) {
		t.Error("valid signature rejected")
	}
	// Wrong digest must fail.
	other := sha256.Sum256([]byte("tampered"))
	if key.Public.Verify(other[:], sig) {
		t.Error("signature verified against a different digest")
	}
	// Wrong key must fail.
	key2, _ := GenerateKey(nil)
	if key2.Public.Verify(digest[:], sig) {
		t.Error("signature verified under a different key")
	}
}

func TestSignDeterministic(t *testing.T) {
	key := NewPrivateKey(big.NewInt(0x1337))
	digest := sha256.Sum256([]byte("deterministic"))
	a, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	b, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if a.R.Cmp(b.R) != 0 || a.S.Cmp(b.S) != 0 || a.V != b.V {
		t.Error("RFC 6979 signing is not deterministic")
	}
}

func TestLowSNormalization(t *testing.T) {
	c := S256()
	halfN := new(big.Int).Rsh(c.N, 1)
	for i := int64(1); i <= 20; i++ {
		key := NewPrivateKey(big.NewInt(i * 7919))
		digest := sha256.Sum256([]byte{byte(i)})
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		if sig.S.Cmp(halfN) > 0 {
			t.Errorf("signature %d has high S", i)
		}
	}
}

func TestHighSRejectedBehaviour(t *testing.T) {
	// A flipped-S signature still satisfies raw ECDSA; recovery must still
	// attribute it to the same key only if V is flipped consistently. We
	// verify that Verify accepts it (ECDSA malleability) but that our
	// Serialize/Parse path preserves exactly what Sign emitted.
	key := NewPrivateKey(big.NewInt(42))
	digest := sha256.Sum256([]byte("malleable"))
	sig, _ := key.Sign(digest[:])
	c := S256()
	flipped := Signature{R: sig.R, S: new(big.Int).Sub(c.N, sig.S), V: sig.V ^ 1}
	if !key.Public.Verify(digest[:], flipped) {
		t.Error("ECDSA should accept the complementary S value")
	}
}

func TestRecoverPublicKey(t *testing.T) {
	for i := int64(1); i <= 10; i++ {
		key := NewPrivateKey(big.NewInt(i * 104729))
		digest := sha256.Sum256([]byte{byte(i), 0xAB})
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverPublicKey(digest[:], sig)
		if err != nil {
			t.Fatalf("recover failed for key %d: %v", i, err)
		}
		if !got.Point.Equal(key.Public.Point) {
			t.Errorf("key %d: recovered wrong public key", i)
		}
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	digest := sha256.Sum256([]byte("x"))
	bad := []Signature{
		{R: big.NewInt(0), S: big.NewInt(1), V: 0},
		{R: big.NewInt(1), S: big.NewInt(0), V: 0},
		{R: S256().N, S: big.NewInt(1), V: 0},
		{R: big.NewInt(1), S: big.NewInt(1), V: 5},
	}
	for i, sig := range bad {
		if _, err := RecoverPublicKey(digest[:], sig); err == nil {
			t.Errorf("case %d: garbage signature recovered successfully", i)
		}
	}
}

func TestSignatureSerializeRoundtrip(t *testing.T) {
	key := NewPrivateKey(big.NewInt(99991))
	digest := sha256.Sum256([]byte("serialize"))
	sig, _ := key.Sign(digest[:])
	parsed, err := ParseSignature(sig.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.R.Cmp(sig.R) != 0 || parsed.S.Cmp(sig.S) != 0 || parsed.V != sig.V {
		t.Error("serialize/parse roundtrip mismatch")
	}
	if _, err := ParseSignature(make([]byte, 64)); err == nil {
		t.Error("ParseSignature accepted a 64-byte blob")
	}
}

func TestPointMarshalRoundtrip(t *testing.T) {
	c := S256()
	f := func(seed uint64) bool {
		k := new(big.Int).SetUint64(seed + 1)
		p := c.ScalarBaseMult(k)
		u, err := c.Unmarshal(c.Marshal(p))
		if err != nil || !u.Equal(p) {
			return false
		}
		comp, err := c.Unmarshal(c.MarshalCompressed(p))
		return err == nil && comp.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsOffCurve(t *testing.T) {
	c := S256()
	bad := c.Marshal(c.Generator())
	bad[len(bad)-1] ^= 0x01 // corrupt Y
	if _, err := c.Unmarshal(bad); err == nil {
		t.Error("Unmarshal accepted an off-curve point")
	}
	if _, err := c.Unmarshal([]byte{0x07, 1, 2}); err == nil {
		t.Error("Unmarshal accepted an invalid prefix")
	}
}

func TestParsePublicKeyRejectsInfinity(t *testing.T) {
	if _, err := ParsePublicKey([]byte{0}); err == nil {
		t.Error("ParsePublicKey accepted the point at infinity")
	}
}

func TestGenerateKeyUniqueness(t *testing.T) {
	a, err := GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.D.Cmp(b.D) == 0 {
		t.Error("two generated keys are identical")
	}
}

func BenchmarkSign(b *testing.B) {
	key := NewPrivateKey(big.NewInt(123456789))
	digest := sha256.Sum256([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	key := NewPrivateKey(big.NewInt(123456789))
	digest := sha256.Sum256([]byte("bench"))
	sig, _ := key.Sign(digest[:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !key.Public.Verify(digest[:], sig) {
			b.Fatal("verify failed")
		}
	}
}

func FuzzParseSignature(f *testing.F) {
	key := NewPrivateKey(big.NewInt(7))
	digest := sha256.Sum256([]byte("fuzz"))
	sig, _ := key.Sign(digest[:])
	f.Add(sig.Serialize())
	f.Add(bytes.Repeat([]byte{0xFF}, 65))
	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := ParseSignature(data)
		if err != nil {
			return
		}
		// Parsed signatures must never panic verification.
		_ = key.Public.Verify(digest[:], sig)
		_, _ = RecoverPublicKey(digest[:], sig)
	})
}
