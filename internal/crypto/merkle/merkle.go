// Package merkle implements the binary Merkle tree SmartCrowd blocks use to
// organize detection results (Fig. 2 of the paper: "block i contains ω_i
// detection results, organized based on the Merkle tree structure like the
// transaction organization in Bitcoin").
//
// Leaves are hashed with Keccak-256 under a leaf domain prefix, interior
// nodes under a node domain prefix (preventing second-preimage attacks that
// confuse leaves with interior nodes). An odd node at any level is paired
// with itself, Bitcoin-style.
package merkle

import (
	"errors"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
)

// HashSize is the size in bytes of tree hashes.
const HashSize = keccak.Size

// Domain prefixes for leaf and interior hashing.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// Hash is a Merkle tree hash.
type Hash = [HashSize]byte

// EmptyRoot is the root of a tree over zero leaves: the Keccak-256 of the
// empty string under the node prefix.
var EmptyRoot = keccak.Sum256Concat([]byte{nodePrefix})

// LeafHash hashes a single leaf payload.
func LeafHash(data []byte) Hash {
	return keccak.Sum256Concat([]byte{leafPrefix}, data)
}

// nodeHash combines two child hashes.
func nodeHash(left, right Hash) Hash {
	return keccak.Sum256Concat([]byte{nodePrefix}, left[:], right[:])
}

// Root computes the Merkle root over the given leaf payloads.
func Root(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return EmptyRoot
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, nodeHash(level[i], level[i])) // duplicate odd node
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling hash on an inclusion path.
type ProofStep struct {
	Sibling Hash
	// Right reports whether the sibling sits to the right of the running
	// hash (i.e. the running hash is the left input).
	Right bool
}

// Proof is a Merkle inclusion proof for a single leaf.
type Proof struct {
	LeafIndex int
	LeafCount int
	Steps     []ProofStep
}

// ErrIndexOutOfRange is returned when a proof is requested for a leaf index
// beyond the tree.
var ErrIndexOutOfRange = errors.New("merkle: leaf index out of range")

// Prove builds an inclusion proof for leaves[index].
func Prove(leaves [][]byte, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, fmt.Errorf("%w: index %d, %d leaves", ErrIndexOutOfRange, index, len(leaves))
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	proof := Proof{LeafIndex: index, LeafCount: len(leaves)}
	pos := index
	for len(level) > 1 {
		sib := pos ^ 1
		if sib >= len(level) {
			sib = pos // odd node duplicated
		}
		proof.Steps = append(proof.Steps, ProofStep{
			Sibling: level[sib],
			Right:   sib > pos || sib == pos, // duplicated node hashes as (h, h)
		})
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, nodeHash(level[i], level[i]))
			}
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// Verify checks that leaf data sits at the proof's position under root.
func Verify(root Hash, leaf []byte, proof Proof) bool {
	if proof.LeafCount <= 0 || proof.LeafIndex < 0 || proof.LeafIndex >= proof.LeafCount {
		return false
	}
	h := LeafHash(leaf)
	for _, step := range proof.Steps {
		if step.Right {
			h = nodeHash(h, step.Sibling)
		} else {
			h = nodeHash(step.Sibling, h)
		}
	}
	return h == root
}
