package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func makeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("report-%d", i))
	}
	return leaves
}

func TestEmptyRootStable(t *testing.T) {
	if Root(nil) != EmptyRoot {
		t.Error("Root(nil) != EmptyRoot")
	}
	if Root([][]byte{}) != EmptyRoot {
		t.Error("Root(empty) != EmptyRoot")
	}
}

func TestSingleLeaf(t *testing.T) {
	leaves := makeLeaves(1)
	root := Root(leaves)
	if root == EmptyRoot {
		t.Error("single-leaf root equals empty root")
	}
	p, err := Prove(leaves, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(root, leaves[0], p) {
		t.Error("single-leaf proof rejected")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		leaves := makeLeaves(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !Verify(root, leaves[i], p) {
				t.Errorf("n=%d i=%d: valid proof rejected", n, i)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	leaves := makeLeaves(10)
	root := Root(leaves)
	p, _ := Prove(leaves, 3)
	if Verify(root, []byte("forged-report"), p) {
		t.Error("proof verified a leaf that is not in the tree")
	}
	if Verify(root, leaves[4], p) {
		t.Error("proof for index 3 verified leaf 4")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	leaves := makeLeaves(8)
	root := Root(leaves)
	p, _ := Prove(leaves, 2)
	p.Steps[1].Sibling[0] ^= 0xFF
	if Verify(root, leaves[2], p) {
		t.Error("tampered proof accepted")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	leaves := makeLeaves(8)
	p, _ := Prove(leaves, 2)
	other := Root(makeLeaves(9))
	if Verify(other, leaves[2], p) {
		t.Error("proof verified under a different tree's root")
	}
}

func TestProveOutOfRange(t *testing.T) {
	leaves := makeLeaves(4)
	for _, idx := range []int{-1, 4, 100} {
		if _, err := Prove(leaves, idx); err == nil {
			t.Errorf("Prove accepted index %d for 4 leaves", idx)
		}
	}
}

func TestVerifyRejectsBogusMetadata(t *testing.T) {
	leaves := makeLeaves(4)
	root := Root(leaves)
	p, _ := Prove(leaves, 1)
	p.LeafCount = 0
	if Verify(root, leaves[1], p) {
		t.Error("accepted proof with zero leaf count")
	}
}

// TestRootSensitivity: changing any single leaf must change the root.
func TestRootSensitivity(t *testing.T) {
	leaves := makeLeaves(16)
	base := Root(leaves)
	for i := range leaves {
		mutated := makeLeaves(16)
		mutated[i] = append(mutated[i], 'X')
		if Root(mutated) == base {
			t.Errorf("mutating leaf %d did not change root", i)
		}
	}
}

// TestLeafNodeDomainSeparation: a crafted interior-node payload must not
// verify as a leaf (second-preimage resistance across levels).
func TestLeafNodeDomainSeparation(t *testing.T) {
	a, b := LeafHash([]byte("a")), LeafHash([]byte("b"))
	crafted := append([]byte{nodePrefix}, append(a[:], b[:]...)...)
	two := Root([][]byte{[]byte("a"), []byte("b")})
	one := Root([][]byte{crafted[1:]}) // strip prefix; leaf hashing re-adds leafPrefix
	if one == two {
		t.Error("interior node forged as leaf: domain separation broken")
	}
}

// TestOrderSensitivity: Merkle roots must depend on leaf order.
func TestOrderSensitivity(t *testing.T) {
	leaves := makeLeaves(6)
	base := Root(leaves)
	swapped := makeLeaves(6)
	swapped[0], swapped[5] = swapped[5], swapped[0]
	if Root(swapped) == base {
		t.Error("swapping leaves did not change root")
	}
}

func TestQuickRandomTrees(t *testing.T) {
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 {
			return Root(raw) == EmptyRoot
		}
		idx := int(pick) % len(raw)
		root := Root(raw)
		p, err := Prove(raw, idx)
		if err != nil {
			return false
		}
		return Verify(root, raw[idx], p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProofLengthLogarithmic(t *testing.T) {
	leaves := makeLeaves(1024)
	p, err := Prove(leaves, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 10 {
		t.Errorf("proof over 1024 leaves has %d steps, want 10", len(p.Steps))
	}
}

func BenchmarkRoot1000(b *testing.B) {
	leaves := makeLeaves(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Root(leaves)
	}
}

func BenchmarkProveVerify1000(b *testing.B) {
	leaves := makeLeaves(1000)
	root := Root(leaves)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _ := Prove(leaves, i%1000)
		if !Verify(root, leaves[i%1000], p) {
			b.Fatal("verify failed")
		}
	}
}
