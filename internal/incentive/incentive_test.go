package incentive

import (
	"sync"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func TestDetectorIncentiveEq7(t *testing.T) {
	mu := types.EtherAmount(5)
	// 4 vulnerabilities, 75% accepted → 15 ether.
	if got := DetectorIncentive(mu, 4, 0.75); got != types.EtherAmount(15) {
		t.Errorf("in† = %s, want 15 ETH", got)
	}
	// ρ clamps.
	if got := DetectorIncentive(mu, 2, 1.5); got != types.EtherAmount(10) {
		t.Errorf("clamped ρ: %s", got)
	}
	if got := DetectorIncentive(mu, 2, -1); got != 0 {
		t.Errorf("negative ρ: %s", got)
	}
}

func TestProviderIncentiveEq8(t *testing.T) {
	// 3 blocks × 5 ether + 10 reports × 0.011 ether.
	got := ProviderIncentive(3, types.EtherAmount(5), 11*types.Finny, 10)
	want := types.EtherAmount(15) + 110*types.Finny
	if got != want {
		t.Errorf("in* = %s, want %s", got, want)
	}
}

func TestProviderPunishmentEq9(t *testing.T) {
	mu := types.EtherAmount(5)
	deploy := 95 * types.Finny
	got := ProviderPunishment(mu, []uint64{2, 1, 0, 3}, deploy)
	want := types.EtherAmount(30) + deploy
	if got != want {
		t.Errorf("pu = %s, want %s", got, want)
	}
	if got := ProviderPunishment(mu, nil, deploy); got != deploy {
		t.Errorf("no detections: pu = %s, want deploy cost only", got)
	}
}

func TestDetectorCostEq10(t *testing.T) {
	c := 11 * types.Finny
	psi := types.Finny
	got := DetectorCost(3, c, 0.5, psi)
	want := 3 * (c + psi/2)
	if got != want {
		t.Errorf("co = %s, want %s", got, want)
	}
}

func TestTrackerFlows(t *testing.T) {
	tr := NewTracker()
	a := wallet.NewDeterministic("a").Address()

	tr.Record(a, FlowMining, types.EtherAmount(5))
	tr.Record(a, FlowMining, types.EtherAmount(5))
	tr.Record(a, FlowFees, types.EtherAmount(1))
	tr.Record(a, FlowBounty, types.EtherAmount(10))
	tr.Record(a, FlowRefund, types.EtherAmount(2))
	tr.Record(a, FlowPunishment, types.EtherAmount(4))
	tr.Record(a, FlowGas, types.EtherAmount(1))
	tr.RecordAccepted(a, 3)

	b := tr.Of(a)
	if b.Mining != types.EtherAmount(10) || b.Blocks != 2 {
		t.Errorf("mining %s over %d blocks", b.Mining, b.Blocks)
	}
	if b.Fees != types.EtherAmount(1) || b.Bounty != types.EtherAmount(10) ||
		b.Refund != types.EtherAmount(2) || b.Punishment != types.EtherAmount(4) ||
		b.Gas != types.EtherAmount(1) || b.Accepted != 3 {
		t.Errorf("balance %+v", b)
	}
	// Net = 10+1+10+2 − 4 − 1 = 18.
	if net := b.Net(); net != 18 {
		t.Errorf("net = %v, want 18", net)
	}
}

func TestTrackerUnknownAddressZero(t *testing.T) {
	tr := NewTracker()
	if b := tr.Of(wallet.NewDeterministic("ghost").Address()); b.Net() != 0 {
		t.Error("unknown address has non-zero balance")
	}
}

func TestTrackerAddressesDeterministic(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 5; i++ {
		tr.Record(wallet.NewDeterministic(string(rune('a'+i))).Address(), FlowGas, 1)
	}
	a, b := tr.Addresses(), tr.Addresses()
	if len(a) != 5 {
		t.Fatalf("addresses = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("address order unstable")
		}
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	a := wallet.NewDeterministic("x").Address()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Record(a, FlowFees, 1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Of(a).Fees; got != 800 {
		t.Errorf("fees = %d, want 800", got)
	}
}

func TestFlowStrings(t *testing.T) {
	names := map[Flow]string{
		FlowMining: "mining", FlowFees: "fees", FlowBounty: "bounty",
		FlowPunishment: "punishment", FlowGas: "gas", FlowRefund: "refund",
		Flow(99): "unknown",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %s, want %s", f, f.String(), want)
		}
	}
}

func TestNetCanBeNegative(t *testing.T) {
	tr := NewTracker()
	a := wallet.NewDeterministic("loser").Address()
	tr.Record(a, FlowPunishment, types.EtherAmount(100))
	tr.Record(a, FlowMining, types.EtherAmount(30))
	if net := tr.Of(a).Net(); net != -70 {
		t.Errorf("net = %v, want -70", net)
	}
}
