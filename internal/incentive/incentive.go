// Package incentive implements SmartCrowd's incentive arithmetic (paper
// §V-D, Eq. 7-10) and a Tracker that attributes every on-chain flow —
// mining rewards, transaction fees, bounty payouts, forfeited insurance,
// burned gas — to the stakeholder balances the paper evaluates in §VII.
package incentive

import (
	"sort"
	"sync"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// DetectorIncentive computes Eq. 7: in†_i = μ · n_i · ρ_i, a detector's
// expected earnings for one SRA given bounty μ, n detected vulnerabilities
// and acceptance proportion ρ.
func DetectorIncentive(mu types.Amount, n uint64, rho float64) types.Amount {
	if rho < 0 {
		rho = 0
	}
	if rho > 1 {
		rho = 1
	}
	return types.Amount(float64(mu) * float64(n) * rho)
}

// ProviderIncentive computes Eq. 8: in*_i = χ·ν + ψ·ω, a mining provider's
// earnings for χ block rewards worth ν each plus ω report fees worth ψ
// each.
func ProviderIncentive(chi uint64, nu types.Amount, psi types.Amount, omega uint64) types.Amount {
	return types.Amount(chi)*nu + psi*types.Amount(omega)
}

// ProviderPunishment computes Eq. 9: pu_i = μ·Σ n_j·ρ_j + cp_i, the
// insurance forfeited across detectors plus the contract deployment cost.
func ProviderPunishment(mu types.Amount, acceptedPerDetector []uint64, deployCost types.Amount) types.Amount {
	var total uint64
	for _, n := range acceptedPerDetector {
		total += n
	}
	return mu*types.Amount(total) + deployCost
}

// DetectorCost computes Eq. 10: co_i = n_i·(c + ρ_i·ψ), the cost of
// submitting n reports at submission cost c with average accepted-report
// fee ρ·ψ.
func DetectorCost(n uint64, submitCost types.Amount, rho float64, psi types.Amount) types.Amount {
	return types.Amount(n) * (submitCost + types.Amount(rho*float64(psi)))
}

// Flow labels one attribution category in the tracker.
type Flow int

// Flow categories.
const (
	// FlowMining is block rewards (χ·ν).
	FlowMining Flow = iota + 1
	// FlowFees is transaction fees earned by miners (ψ·ω).
	FlowFees
	// FlowBounty is vulnerability payouts received by detectors (Eq. 7).
	FlowBounty
	// FlowPunishment is insurance forfeited by providers (Eq. 9).
	FlowPunishment
	// FlowGas is gas spent submitting transactions (Eq. 10 and deploy
	// costs).
	FlowGas
	// FlowRefund is reclaimed insurance.
	FlowRefund
)

// String names the flow.
func (f Flow) String() string {
	switch f {
	case FlowMining:
		return "mining"
	case FlowFees:
		return "fees"
	case FlowBounty:
		return "bounty"
	case FlowPunishment:
		return "punishment"
	case FlowGas:
		return "gas"
	case FlowRefund:
		return "refund"
	default:
		return "unknown"
	}
}

// Balance summarizes one stakeholder's flows. Earned categories are
// positive contributions; Punishment and Gas are costs.
type Balance struct {
	Mining     types.Amount
	Fees       types.Amount
	Bounty     types.Amount
	Refund     types.Amount
	Punishment types.Amount
	Gas        types.Amount
	Blocks     uint64 // blocks mined
	Accepted   uint64 // findings accepted
}

// Net returns earnings minus costs in ether (float, reporting only; can be
// negative).
func (b Balance) Net() float64 {
	earned := b.Mining + b.Fees + b.Bounty + b.Refund
	spent := b.Punishment + b.Gas
	return earned.Ether() - spent.Ether()
}

// Tracker accumulates flows per address. It is safe for concurrent use.
type Tracker struct {
	mu       sync.Mutex
	balances map[types.Address]*Balance
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{balances: make(map[types.Address]*Balance)}
}

func (t *Tracker) get(a types.Address) *Balance {
	b, ok := t.balances[a]
	if !ok {
		b = &Balance{}
		t.balances[a] = b
	}
	return b
}

// Record adds an amount under a flow for an address.
func (t *Tracker) Record(a types.Address, f Flow, amount types.Amount) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(a)
	switch f {
	case FlowMining:
		b.Mining += amount
		b.Blocks++
	case FlowFees:
		b.Fees += amount
	case FlowBounty:
		b.Bounty += amount
	case FlowPunishment:
		b.Punishment += amount
	case FlowGas:
		b.Gas += amount
	case FlowRefund:
		b.Refund += amount
	}
}

// RecordAccepted bumps a detector's accepted-findings counter.
func (t *Tracker) RecordAccepted(a types.Address, n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(a).Accepted += n
}

// Of returns a copy of an address's balance.
func (t *Tracker) Of(a types.Address) Balance {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.balances[a]; ok {
		return *b
	}
	return Balance{}
}

// Addresses lists tracked addresses deterministically.
func (t *Tracker) Addresses() []types.Address {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]types.Address, 0, len(t.balances))
	for a := range t.balances {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
