package rpc

// Opaque pagination cursors for the /v1 list endpoints.
//
// The legacy offset/nextOffset contract breaks under reorgs: an offset
// names a position in whatever index the *next* request happens to see,
// so a client walking pages across a head switch silently skips or
// repeats entries. A cursor instead names a position *relative to chain
// content*: it records the head the issuing view was pinned to, the next
// index to serve, and the identity of the last item already delivered.
// On the next request the server verifies that anchor against its
// current view — same head means the position is exact; a moved head
// triggers an O(1) anchor check and, for the SRA index, a re-anchoring
// scan by the last delivered ID. The client never interprets the token;
// it is validated server-side on every use.
//
// The token is base64url over a fixed binary layout plus a truncated
// keccak MAC keyed with a per-process random secret. Keying matters
// beyond integrity: a stale-head cursor is allowed to fall back to an
// O(n) re-anchoring scan, so if clients could mint tokens with arbitrary
// headID/lastID they could force that worst case on every request — a
// cheap CPU-DoS amplifier. With the keyed MAC, forged or hand-edited
// tokens fail fast at decode with bad_request; only tokens this process
// actually issued reach the resolver (every decoded field is still
// range-checked against the serving view). The deliberate consequence is
// that cursors do not survive a server restart: replaying one yields
// bad_request and the client restarts pagination, which is the documented
// contract for any rejected cursor.

import (
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// cursorKey is the per-process MAC secret for cursor tokens.
var cursorKey = func() [16]byte {
	var k [16]byte
	if _, err := rand.Read(k[:]); err != nil {
		panic(fmt.Sprintf("rpc: cursor key: %v", err))
	}
	return k
}()

// cursorSum computes the keyed checksum over a raw cursor body.
func cursorSum(raw []byte) [cursorSumLen]byte {
	buf := make([]byte, 0, len(cursorKey)+cursorRawLen)
	buf = append(buf, cursorKey[:]...)
	buf = append(buf, raw...)
	sum := keccak.Sum256(buf)
	return [cursorSumLen]byte(sum[:cursorSumLen])
}

// Cursor kinds: a token is bound to the endpoint that issued it, so a
// /v1/sras cursor replayed against /v1/blocks is rejected instead of
// being misread as a block position.
const (
	cursorKindSRAs   = 's'
	cursorKindBlocks = 'b'
)

// cursor is the decoded resume token.
type cursor struct {
	kind byte
	// headID is the view head the cursor was minted under. If it still
	// matches, pos is exact and no anchor check is needed.
	headID types.Hash
	// pos is the next index to serve: an SRA index position for sras
	// cursors, a block number for blocks cursors.
	pos uint64
	// lastID identifies the item just before pos (the last one the
	// client received): an SRA id or a block id. Zero when pos is 0.
	lastID types.Hash
}

const (
	cursorRawLen = 1 + types.HashSize + 8 + types.HashSize
	cursorSumLen = 8
)

var errBadCursor = errors.New("rpc: bad cursor")

// encodeCursor renders a cursor as its opaque token.
func encodeCursor(c cursor) string {
	raw := make([]byte, 0, cursorRawLen+cursorSumLen)
	raw = append(raw, c.kind)
	raw = append(raw, c.headID[:]...)
	raw = binary.BigEndian.AppendUint64(raw, c.pos)
	raw = append(raw, c.lastID[:]...)
	sum := cursorSum(raw)
	raw = append(raw, sum[:]...)
	return base64.RawURLEncoding.EncodeToString(raw)
}

// decodeCursor parses and validates a token for the given endpoint kind.
func decodeCursor(token string, kind byte) (cursor, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return cursor{}, fmt.Errorf("%w: not base64url", errBadCursor)
	}
	if len(raw) != cursorRawLen+cursorSumLen {
		return cursor{}, fmt.Errorf("%w: %d bytes, want %d", errBadCursor, len(raw), cursorRawLen+cursorSumLen)
	}
	sum := cursorSum(raw[:cursorRawLen])
	if !bytes.Equal(sum[:], raw[cursorRawLen:]) {
		return cursor{}, fmt.Errorf("%w: checksum mismatch", errBadCursor)
	}
	var c cursor
	c.kind = raw[0]
	if c.kind != kind {
		return cursor{}, fmt.Errorf("%w: token from a different endpoint", errBadCursor)
	}
	copy(c.headID[:], raw[1:])
	c.pos = binary.BigEndian.Uint64(raw[1+types.HashSize:])
	copy(c.lastID[:], raw[1+types.HashSize+8:])
	return c, nil
}

// resolveSRACursor maps a decoded sras cursor to the start position in
// the serving view's SRA index. Fast paths first: an unchanged head (or
// a cursor at the very start) needs no anchoring, and an intact anchor —
// the SRA just before pos still carries lastID — is one O(1) lookup.
// Only a reorg that moved the anchor pays for the full re-anchoring
// scan; if the anchor SRA is gone entirely the position resumes clamped,
// which is the best available approximation.
func resolveSRACursor(cr ChainReader, cur cursor) int {
	count := cr.SRACount()
	clamp := func(p uint64) int {
		if p > uint64(count) {
			return count
		}
		return int(p)
	}
	if cur.pos == 0 {
		return 0
	}
	if cur.headID == cr.Head().ID() {
		return clamp(cur.pos)
	}
	start := clamp(cur.pos)
	if ref, ok := cr.SRAAt(start - 1); ok && ref.ID == cur.lastID {
		return start
	}
	for i := 0; i < count; i++ {
		if ref, ok := cr.SRAAt(i); ok && ref.ID == cur.lastID {
			return i + 1
		}
	}
	return start
}

// nextSRACursor mints the resume token for the page that ended at
// start+len(refs). It is always issued — on the last page it is a poll
// token: replaying it returns whatever SRAs landed since.
func nextSRACursor(cr ChainReader, start int, refs []chain.SRARef) string {
	pos := start + len(refs)
	if count := cr.SRACount(); pos > count {
		pos = count
	}
	var last types.Hash
	if len(refs) > 0 {
		last = refs[len(refs)-1].ID
	} else if ref, ok := cr.SRAAt(pos - 1); ok {
		last = ref.ID
	}
	return encodeCursor(cursor{
		kind:   cursorKindSRAs,
		headID: cr.Head().ID(),
		pos:    uint64(pos),
		lastID: last,
	})
}
