package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/store"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// TestRestartUnderConcurrentRPC proves the durability layer and the
// lock-free read path compose: while HTTP readers hammer a real server,
// the disk-backed chain underneath is closed and its datadir reopened by
// a second chain (the "restarted process"). Pinned ReadViews never touch
// storage, so every in-flight and subsequent read keeps answering from
// the published snapshot — no error, no torn page — and the reopened
// chain recovers the byte-identical head. Run it under -race: the value
// of the test is the interleaving, not the assertions alone.
func TestRestartUnderConcurrentRPC(t *testing.T) {
	dir := t.TempDir()
	sc := contract.New(contract.DefaultParams(), detection.NewGroundTruthVerifier(false))
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chain.DefaultConfig(sc)
	cfg.SkipPoWCheck = true
	cfg.Storage = disk
	cfg.SnapshotInterval = 8
	prov, err := node.NewProvider("restart-rpc", wallet.NewDeterministic("miner"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(prov, sc))
	defer srv.Close()

	for i := 0; i < 20; i++ {
		head := prov.Chain().Head()
		if _, err := prov.MineBlock(head.Header.Time+15_000, 1000, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	wantHead := prov.Chain().Head().ID()

	paths := []string{
		"/v1/status",
		"/v1/blocks?from=0",
		"/v1/sras",
		"/v1/health",
		"/v1/node",
		"/v1/block/5",
	}
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			client := srv.Client()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(seed+n)%len(paths)]
				resp, err := client.Get(srv.URL + path)
				if err != nil {
					errCh <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(i)
	}

	// Phase 1: close the chain (final snapshot, files released) while the
	// read storm is live.
	time.Sleep(50 * time.Millisecond)
	if err := prov.Chain().Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: still mid-storm, "restart": reopen the same datadir in a
	// fresh chain and check it recovered the exact head the readers are
	// being served from.
	time.Sleep(50 * time.Millisecond)
	disk2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := chain.DefaultConfig(sc)
	cfg2.SkipPoWCheck = true
	cfg2.Storage = disk2
	cfg2.SnapshotInterval = 8
	reopened, err := chain.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Head().ID(); got != wantHead {
		t.Fatalf("reopened head %s, want %s", got.Short(), wantHead.Short())
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("read failed during restart: %v", err)
	default:
	}

	// The original server still answers from its pinned views.
	var st StatusResponse
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-close status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.HeadNumber != 20 {
		t.Fatalf("post-close head %d, want 20", st.HeadNumber)
	}
}
