package rpc

import (
	"encoding/base64"
	"encoding/binary"
	"net/http"
	"strings"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestCursorCodec(t *testing.T) {
	orig := cursor{
		kind:   cursorKindSRAs,
		headID: types.HashBytes([]byte("head")),
		pos:    42,
		lastID: types.HashBytes([]byte("last")),
	}
	token := encodeCursor(orig)
	got, err := decodeCursor(token, cursorKindSRAs)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip %+v, want %+v", got, orig)
	}

	if _, err := decodeCursor(token, cursorKindBlocks); err == nil {
		t.Error("sras cursor accepted by the blocks endpoint kind")
	}
	if _, err := decodeCursor("not!base64url", cursorKindSRAs); err == nil {
		t.Error("garbage token decoded")
	}
	if _, err := decodeCursor(token[:len(token)-8], cursorKindSRAs); err == nil {
		t.Error("truncated token decoded")
	}
	// Flip one character: the checksum must catch it.
	tampered := []byte(token)
	if tampered[10] == 'A' {
		tampered[10] = 'B'
	} else {
		tampered[10] = 'A'
	}
	if _, err := decodeCursor(string(tampered), cursorKindSRAs); err == nil {
		t.Error("tampered token decoded")
	}
}

// TestCursorForgedChecksumRejected: a client that knows the token layout
// but not the per-process key (here, computing the unkeyed keccak the
// pre-keyed scheme used) cannot mint cursors with arbitrary headID/lastID
// — forging one of those per request would force the worst-case O(n)
// re-anchoring scan every time. Forgeries must die at decode.
func TestCursorForgedChecksumRejected(t *testing.T) {
	raw := make([]byte, 0, cursorRawLen+cursorSumLen)
	raw = append(raw, cursorKindSRAs)
	var head, last types.Hash
	head[0], last[0] = 0xaa, 0xbb
	raw = append(raw, head[:]...)
	raw = binary.BigEndian.AppendUint64(raw, 12345)
	raw = append(raw, last[:]...)
	sum := keccak.Sum256(raw)
	raw = append(raw, sum[:cursorSumLen]...)
	forged := base64.RawURLEncoding.EncodeToString(raw)
	if _, err := decodeCursor(forged, cursorKindSRAs); err == nil {
		t.Fatal("forged unkeyed cursor accepted")
	}
}

// TestSRAListCursorWalk pages the SRA index by cursor alone: two pages of
// two, then the final poll token picks up an SRA released after the walk.
func TestSRAListCursorWalk(t *testing.T) {
	e := newEnv(t)
	extra := []*types.SRA{
		e.releaseSRA("fw-two", 1),
		e.releaseSRA("fw-three", 2),
		e.releaseSRA("fw-four", 3),
	}

	var page SRAListResponse
	resp, _ := e.getRaw("/v1/sras?limit=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first page status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("cursorless first page stamped with Deprecation")
	}
	if code := e.get("/v1/sras?limit=2", &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if page.NextCursor == "" {
		t.Fatal("first page has no nextCursor")
	}

	if code := e.get("/v1/sras?cursor="+page.NextCursor+"&limit=2", &page); code != http.StatusOK {
		t.Fatalf("second page status %d", code)
	}
	if page.Offset != 2 || len(page.SRAs) != 2 || page.SRAs[1].ID != extra[2].ID.String() {
		t.Fatalf("second page %+v, want entries 2..3 ending at fw-four", page)
	}
	if page.NextOffset != nil {
		t.Error("last page has a nextOffset")
	}
	if page.NextCursor == "" {
		t.Fatal("last page has no poll cursor")
	}

	// Replaying the poll token is an empty page until a new SRA lands.
	poll := page.NextCursor
	if code := e.get("/v1/sras?cursor="+poll, &page); code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	if len(page.SRAs) != 0 || page.Total != 4 {
		t.Fatalf("caught-up poll %+v, want empty with total 4", page)
	}
	fresh := e.releaseSRA("fw-five", 4)
	if code := e.get("/v1/sras?cursor="+poll, &page); code != http.StatusOK {
		t.Fatalf("re-poll status %d", code)
	}
	if len(page.SRAs) != 1 || page.SRAs[0].ID != fresh.ID.String() {
		t.Fatalf("re-poll %+v, want exactly fw-five", page)
	}
}

// TestSRAListCursorReanchors hands the server a cursor whose position no
// longer matches its anchor (as after a reorg): the server must find the
// last delivered SRA by ID and resume right after it, not trust pos.
func TestSRAListCursorReanchors(t *testing.T) {
	e := newEnv(t)
	second := e.releaseSRA("fw-two", 1)
	e.releaseSRA("fw-three", 2)

	// Claims "I've read 3 entries, the last was the env SRA" — but the
	// env SRA is at index 0, so the walk must resume at index 1.
	stale := encodeCursor(cursor{
		kind:   cursorKindSRAs,
		headID: types.HashBytes([]byte("some other fork")),
		pos:    3,
		lastID: e.sra.ID,
	})
	var page SRAListResponse
	if code := e.get("/v1/sras?cursor="+stale+"&limit=1", &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if page.Offset != 1 || len(page.SRAs) != 1 || page.SRAs[0].ID != second.ID.String() {
		t.Fatalf("re-anchored page %+v, want fw-two at offset 1", page)
	}
}

func TestSRAListOffsetIsDeprecated(t *testing.T) {
	e := newEnv(t)
	resp, _ := e.getRaw("/v1/sras?offset=0&limit=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offset request status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("offset request missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "cursor") {
		t.Errorf("Link header %q does not point at the cursor form", link)
	}
}

func TestListParamRejections(t *testing.T) {
	e := newEnv(t)
	sraCursor := encodeCursor(cursor{kind: cursorKindSRAs})
	blockCursor := encodeCursor(cursor{kind: cursorKindBlocks})
	for _, path := range []string{
		"/v1/sras?limit=0",
		"/v1/sras?limit=xyz",
		"/v1/sras?offset=-1",
		"/v1/sras?offset=1.5",
		"/v1/sras?cursor=garbage",
		"/v1/sras?cursor=" + sraCursor + "&offset=2",
		"/v1/sras?cursor=" + blockCursor, // wrong endpoint's token
		"/v1/blocks?from=-1",
		"/v1/blocks?to=xyz",
		"/v1/blocks?cursor=garbage",
		"/v1/blocks?cursor=" + blockCursor + "&from=0",
		"/v1/blocks?cursor=" + sraCursor,
		"/debug/traces?limit=0",
	} {
		resp, body := e.getRaw(path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		if got := decodeErrBody(t, body); got.Code != CodeBadRequest {
			t.Errorf("GET %s: code %q, want %q", path, got.Code, CodeBadRequest)
		}
	}

	// Oversized limits clamp instead of erroring: the cap is a promise
	// about page size, not a trap for generous clients.
	var page SRAListResponse
	if code := e.get("/v1/sras?limit=100000", &page); code != http.StatusOK {
		t.Errorf("oversized limit status %d, want 200 (clamped)", code)
	}
}

// TestBlockListCursorWalk iterates blocks open-endedly: a from-only
// request pages toward the head, the caught-up poll token picks up the
// next mined block, and a bounded from/to request mints no cursor.
func TestBlockListCursorWalk(t *testing.T) {
	e := newEnv(t) // head is block 3

	var page BlockListResponse
	if code := e.get("/v1/blocks?from=1", &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(page.Blocks) != 3 || page.NextCursor == "" {
		t.Fatalf("open-ended page %+v, want blocks 1..3 plus a cursor", page)
	}

	// Caught up: the continuation is empty but keeps handing back a token.
	if code := e.get("/v1/blocks?cursor="+page.NextCursor, &page); code != http.StatusOK {
		t.Fatalf("caught-up page status %d", code)
	}
	if len(page.Blocks) != 0 || page.From != 4 || page.NextCursor == "" {
		t.Fatalf("caught-up page %+v, want empty at from=4 with a poll cursor", page)
	}
	poll := page.NextCursor
	e.mine()
	if code := e.get("/v1/blocks?cursor="+poll, &page); code != http.StatusOK {
		t.Fatalf("re-poll status %d", code)
	}
	if len(page.Blocks) != 1 || page.Blocks[0].Number != 4 {
		t.Fatalf("re-poll %+v, want exactly block 4", page)
	}

	// Bounded requests keep the fixed-range contract: no cursor.
	var bounded BlockListResponse
	if code := e.get("/v1/blocks?from=1&to=2", &bounded); code != http.StatusOK {
		t.Fatalf("bounded status %d", code)
	}
	if bounded.NextCursor != "" {
		t.Errorf("bounded range minted cursor %q", bounded.NextCursor)
	}
}

// TestBlockListOpenEndedPaging mines past the page cap: an open-ended
// request serves exactly MaxBlockRangeSize blocks and the cursor chain
// walks the rest without a gap or an overlap.
func TestBlockListOpenEndedPaging(t *testing.T) {
	e := newEnv(t)
	for e.provider.Chain().HeadNumber() < 120 {
		e.mine()
	}

	var page BlockListResponse
	if code := e.get("/v1/blocks", &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(page.Blocks) != MaxBlockRangeSize || page.From != 0 || page.To != 99 {
		t.Fatalf("first page from=%d to=%d len=%d, want 0..99", page.From, page.To, len(page.Blocks))
	}
	if code := e.get("/v1/blocks?cursor="+page.NextCursor, &page); code != http.StatusOK {
		t.Fatalf("second page status %d", code)
	}
	if len(page.Blocks) != 21 || page.Blocks[0].Number != 100 || page.Blocks[20].Number != 120 {
		t.Fatalf("second page from=%d len=%d, want blocks 100..120", page.From, len(page.Blocks))
	}

	// An explicitly bounded over-wide range still errors — only the
	// open-ended form pages.
	if code := e.get("/v1/blocks?from=0&to=119", nil); code != http.StatusBadRequest {
		t.Errorf("explicit oversized range returned %d, want 400", code)
	}
}

// TestBlockListCursorReorgInvalidation: a blocks cursor whose anchor
// block is no longer canonical cannot be resumed without splicing two
// forks into one stream, so the server rejects it outright.
func TestBlockListCursorReorgInvalidation(t *testing.T) {
	e := newEnv(t)
	bogus := encodeCursor(cursor{
		kind:   cursorKindBlocks,
		headID: types.HashBytes([]byte("other fork")),
		pos:    2,
		lastID: types.HashBytes([]byte("not block 1")),
	})
	resp, body := e.getRaw("/v1/blocks?cursor=" + bogus)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := decodeErrBody(t, body); !strings.Contains(got.Message, "reorg") {
		t.Errorf("message %q does not explain the reorg invalidation", got.Message)
	}

	// A cursor pointing past our head is equally unanchorable (we cannot
	// verify a block we do not have).
	beyond := encodeCursor(cursor{
		kind:   cursorKindBlocks,
		headID: types.HashBytes([]byte("x")),
		pos:    1000,
		lastID: types.HashBytes([]byte("y")),
	})
	if code := e.get("/v1/blocks?cursor="+beyond, nil); code != http.StatusBadRequest {
		t.Errorf("beyond-head cursor returned %d, want 400", code)
	}
}

// TestCursorSurvivesHeadAdvance is the reorg-stability core: a page is
// cut, the chain grows (new head, new SRA landing mid-walk), and the
// cursor still resumes exactly after the last delivered entry — where an
// offset-based walk would have been measured against the new index.
func TestCursorSurvivesHeadAdvance(t *testing.T) {
	e := newEnv(t)
	second := e.releaseSRA("fw-two", 1)

	var page SRAListResponse
	if code := e.get("/v1/sras?limit=1", &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(page.SRAs) != 1 || page.SRAs[0].ID != e.sra.ID.String() {
		t.Fatalf("first page %+v", page)
	}

	// Head moves between the two page fetches.
	e.mine()
	e.mine()

	if code := e.get("/v1/sras?cursor="+page.NextCursor+"&limit=1", &page); code != http.StatusOK {
		t.Fatalf("second page status %d", code)
	}
	if len(page.SRAs) != 1 || page.SRAs[0].ID != second.ID.String() {
		t.Fatalf("resumed page %+v, want fw-two", page)
	}
}

func TestNodeEndpoint(t *testing.T) {
	e := newEnv(t)
	var nr NodeResponse
	if code := e.get("/v1/node", &nr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if nr.NodeID != "rpc-provider" {
		t.Errorf("nodeId %q", nr.NodeID)
	}
	if nr.HeadNumber != 3 || nr.HeadID == "" {
		t.Errorf("head %d/%q, want 3", nr.HeadNumber, nr.HeadID)
	}
	if nr.Storage.Backend != "memory" {
		t.Errorf("backend %q, want memory (env chain has no store)", nr.Storage.Backend)
	}
	if nr.Sync.Mode != "live" {
		t.Errorf("sync mode %q, want live", nr.Sync.Mode)
	}
	if nr.Peers != -1 {
		t.Errorf("peers %d, want -1 without a transport", nr.Peers)
	}
}

func TestHealthReportsSyncMode(t *testing.T) {
	e := newEnv(t)
	var h HealthResponse
	if code := e.get("/v1/health", &h); code != http.StatusOK {
		t.Fatalf("health returned %d", code)
	}
	if h.SyncMode != "live" {
		t.Errorf("syncMode %q, want live", h.SyncMode)
	}
}
