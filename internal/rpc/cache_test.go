package rpc

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// rawGet fetches base+path and returns the response with its body fully
// read, so tests can assert on exact bytes and headers. inm, when
// non-empty, is sent as If-None-Match.
func rawGet(t *testing.T, base, path, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// newForkProvider builds a provider with a deterministic genesis shared
// by every call: same allocation, same contract parameters. Distinct
// instances can therefore exchange blocks and reorg one another.
func newForkProvider(t *testing.T, id string, alice *wallet.Wallet) *node.ProviderNode {
	t.Helper()
	sc := contract.New(contract.DefaultParams(), detection.NewGroundTruthVerifier(false))
	cfg := chain.DefaultConfig(sc)
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{alice.Address(): types.EtherAmount(5000)}
	prov, err := node.NewProvider(p2p.NodeID(id), wallet.NewDeterministic("miner"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prov
}

func mineOn(t *testing.T, prov *node.ProviderNode) {
	t.Helper()
	head := prov.Chain().Head()
	if _, err := prov.MineBlock(head.Header.Time+15_000, 1000, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCacheReorgInvalidation is the satellite guarantee: after a fork
// switch, no head-keyed answer computed against the losing branch is
// ever served again. Branch A carries a transfer; branch B (heavier)
// does not. Every cached answer that mentioned the transfer must change
// the moment B wins.
func TestCacheReorgInvalidation(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	payee := types.Address{0xAB, 0xCD}
	provA := newForkProvider(t, "fork-a", alice)
	provB := newForkProvider(t, "fork-b", alice)
	if provA.Chain().Genesis().ID() != provB.Chain().Genesis().ID() {
		t.Fatal("fork providers disagree on genesis")
	}

	// Branch A: one block carrying alice → payee.
	tx := &types.Transaction{
		Kind:     types.TxTransfer,
		Nonce:    0,
		To:       payee,
		Value:    types.EtherAmount(7),
		GasLimit: 21_000,
		GasPrice: 50 * types.GWei,
	}
	if err := types.SignTx(tx, alice); err != nil {
		t.Fatal(err)
	}
	if err := provA.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	mineOn(t, provA)

	// Branch B: two empty blocks — strictly heavier.
	mineOn(t, provB)
	mineOn(t, provB)

	sc := provA.Chain().Config().Contract
	srv := httptest.NewServer(NewServerWith(provA, sc, Config{}))
	defer srv.Close()

	balPath := "/v1/balance/" + payee.String()
	resp, body := rawGet(t, srv.URL, balPath, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("balance returned %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"ether":7`)) {
		t.Fatalf("pre-reorg balance body %s, want 7 ether", body)
	}
	balETag := resp.Header.Get("ETag")

	// Warm more head-keyed entries, then serve the balance again from
	// cache to prove it is cached at all.
	stResp, stBody := rawGet(t, srv.URL, "/v1/status", "")
	recResp, _ := rawGet(t, srv.URL, "/v1/receipt/"+tx.Hash().String(), "")
	if recResp.StatusCode != http.StatusOK {
		t.Fatalf("receipt returned %d pre-reorg", recResp.StatusCode)
	}
	hits0 := mCacheHitHead.Value()
	if _, again := rawGet(t, srv.URL, balPath, ""); !bytes.Equal(again, body) {
		t.Fatal("cached balance body differs from first answer")
	}
	if mCacheHitHead.Value() == hits0 {
		t.Fatal("second balance read did not hit the head cache")
	}

	// The reorg: branch B's blocks displace branch A.
	evict0 := mCacheEvict.Value()
	if _, err := provA.Chain().InsertChain(provB.Chain().CanonicalBlocks()[1:]); err != nil {
		t.Fatal(err)
	}
	if provA.Chain().HeadNumber() != 2 {
		t.Fatalf("reorg did not take: head %d", provA.Chain().HeadNumber())
	}

	// Balance must be recomputed: the transfer never happened on B.
	resp, body = rawGet(t, srv.URL, balPath, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reorg balance returned %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"gwei":0`)) {
		t.Fatalf("post-reorg balance body %s, want zero", body)
	}
	if got := resp.Header.Get("ETag"); got == balETag {
		t.Fatal("post-reorg balance kept the stale ETag")
	}
	// A stale validator must revalidate to a full 200, never a 304.
	if resp304, _ := rawGet(t, srv.URL, balPath, balETag); resp304.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag revalidated to %d, want 200", resp304.StatusCode)
	}

	// Status flips to the new head; the receipt of the orphaned transfer
	// is gone from the canonical chain.
	stResp2, stBody2 := rawGet(t, srv.URL, "/v1/status", "")
	if bytes.Equal(stBody2, stBody) || stResp2.Header.Get("ETag") == stResp.Header.Get("ETag") {
		t.Fatal("status served the pre-reorg answer after the fork switch")
	}
	if recResp2, _ := rawGet(t, srv.URL, "/v1/receipt/"+tx.Hash().String(), ""); recResp2.StatusCode != http.StatusNotFound {
		t.Fatalf("orphaned receipt returned %d, want 404", recResp2.StatusCode)
	}
	// The losing generation (≥3 entries) was discarded wholesale.
	if mCacheEvict.Value() == evict0 {
		t.Fatal("reorg did not evict the stale head generation")
	}
}

// TestCacheETagAndTiers pins the HTTP caching contract: head-keyed
// answers carry no-cache + a strong ETag that 304s until the head
// moves; finalized objects advertise themselves immutable.
func TestCacheETagAndTiers(t *testing.T) {
	e := newEnv(t) // head = 3
	srv := httptest.NewServer(NewServerWith(e.provider, e.sc, Config{FinalityDepth: 1}))
	defer srv.Close()

	// Head tier: /v1/status.
	resp, body := rawGet(t, srv.URL, "/v1/status", "")
	if cc := resp.Header.Get("Cache-Control"); cc != "public, no-cache" {
		t.Errorf("status Cache-Control %q", cc)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("status has no ETag")
	}
	if resp304, b := rawGet(t, srv.URL, "/v1/status", etag); resp304.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("revalidation: status %d body %q, want bodyless 304", resp304.StatusCode, b)
	}

	// Finalized tier: block 1 is 2 deep ≥ K=1.
	permMiss0, permHit0 := mCacheMissPerm.Value(), mCacheHitPerm.Value()
	bResp, bBody := rawGet(t, srv.URL, "/v1/block/1", "")
	if cc := bResp.Header.Get("Cache-Control"); cc != "public, max-age=31536000, immutable" {
		t.Errorf("finalized block Cache-Control %q", cc)
	}
	if mCacheMissPerm.Value() != permMiss0+1 {
		t.Error("finalized block did not register a perm-tier miss")
	}
	if _, bBody2 := rawGet(t, srv.URL, "/v1/block/1", ""); !bytes.Equal(bBody2, bBody) {
		t.Fatal("finalized block bytes changed between reads")
	}
	if mCacheHitPerm.Value() != permHit0+1 {
		t.Error("second finalized read did not hit the perm tier")
	}

	// The head block (depth 0 < K) stays head-keyed.
	if hResp, _ := rawGet(t, srv.URL, "/v1/block/3", ""); hResp.Header.Get("Cache-Control") != "public, no-cache" {
		t.Errorf("head block Cache-Control %q", hResp.Header.Get("Cache-Control"))
	}

	// Cached 404s revalidate with a full body: only 200s may 304.
	nResp, _ := rawGet(t, srv.URL, "/v1/block/99", "")
	if nResp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing block returned %d", nResp.StatusCode)
	}
	if nResp2, b := rawGet(t, srv.URL, "/v1/block/99", nResp.Header.Get("ETag")); nResp2.StatusCode != http.StatusNotFound || len(b) == 0 {
		t.Fatalf("cached 404 revalidated to %d with body %q", nResp2.StatusCode, b)
	}
	_ = body
}

// TestLockedAndViewBodiesIdentical asserts the oracle property the
// rpcload bench relies on: the locked mutex path, the bare view path
// and the cached view path produce byte-identical responses for every
// read route — including cache hits.
func TestLockedAndViewBodiesIdentical(t *testing.T) {
	e := newEnv(t)
	locked := httptest.NewServer(NewServerWith(e.provider, e.sc, Config{UseLockedReads: true}))
	defer locked.Close()
	bare := httptest.NewServer(NewServerWith(e.provider, e.sc, Config{DisableCache: true}))
	defer bare.Close()
	cached := httptest.NewServer(NewServerWith(e.provider, e.sc, Config{}))
	defer cached.Close()

	paths := []string{
		"/v1/status",
		"/v1/block/0",
		"/v1/block/1",
		"/v1/block/99",
		"/v1/blocks?from=0&to=3",
		"/v1/balance/" + e.detector.Address().String(),
		"/v1/receipt/" + e.dtxHash.String(),
		"/v1/sra/" + e.sra.ID.String(),
		"/v1/sras",
		"/v1/reference/" + e.sra.ID.String(),
		"/v1/proof/" + e.dtxHash.String(),
	}
	for _, path := range paths {
		lResp, lBody := rawGet(t, locked.URL, path, "")
		vResp, vBody := rawGet(t, bare.URL, path, "")
		cResp, cBody := rawGet(t, cached.URL, path, "")
		_, cBody2 := rawGet(t, cached.URL, path, "") // cache hit
		if lResp.StatusCode != vResp.StatusCode || lResp.StatusCode != cResp.StatusCode {
			t.Errorf("%s: status locked=%d view=%d cached=%d", path, lResp.StatusCode, vResp.StatusCode, cResp.StatusCode)
			continue
		}
		if !bytes.Equal(lBody, vBody) {
			t.Errorf("%s: view body diverges from locked oracle\nlocked: %s\nview:   %s", path, lBody, vBody)
		}
		if !bytes.Equal(lBody, cBody) || !bytes.Equal(lBody, cBody2) {
			t.Errorf("%s: cached body diverges from locked oracle", path)
		}
	}
}

// TestCacheSingleflight drives many concurrent misses for one key at the
// cache layer and asserts exactly one build ran and everyone got its
// bytes.
func TestCacheSingleflight(t *testing.T) {
	c := newRespCache()
	head := types.HashBytes([]byte("head"))
	var builds atomic.Int64
	build := func() (int, []byte) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return http.StatusOK, []byte("{\"x\":1}\n")
	}
	const n = 32
	results := make([]*cacheEntry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.headGetOrBuild(head, "k", build)
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i, e := range results {
		if e.status != http.StatusOK || !bytes.Equal(e.body, results[0].body) || e.etag != results[0].etag {
			t.Fatalf("waiter %d got a different entry: %+v", i, e)
		}
	}

	// A panicking build must not wedge waiters or poison the key.
	func() {
		defer func() { _ = recover() }()
		c.headGetOrBuild(head, "boom", func() (int, []byte) { panic("build died") })
	}()
	if e := c.headGetOrBuild(head, "boom", func() (int, []byte) { return http.StatusOK, []byte("ok\n") }); e.status != http.StatusOK {
		t.Fatalf("key poisoned after panicking build: %+v", e)
	}
}

// TestCacheConcurrentReadersAcrossMining hammers the full HTTP path from
// many goroutines while the chain head keeps moving — run under -race,
// this is the end-to-end check that snapshot swaps never tear a reader.
func TestCacheConcurrentReadersAcrossMining(t *testing.T) {
	e := newEnv(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{
		"/v1/status",
		"/v1/block/1",
		"/v1/blocks?from=0&to=50",
		"/v1/balance/" + e.detector.Address().String(),
		"/v1/receipt/" + e.dtxHash.String(),
		"/v1/sras",
		"/v1/proof/" + e.dtxHash.String(),
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(g+i)%len(paths)]
				resp, body := rawGet(t, e.server.URL, path, "")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s returned %d: %s", path, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 8; i++ {
		mineOn(t, e.provider)
	}
	close(stop)
	wg.Wait()
	if got := e.provider.Chain().HeadNumber(); got != 11 {
		t.Fatalf("head %d after hammer, want 11", got)
	}
}
