package rpc

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

// Package-level metric handles, resolved once at init. The request
// latency histograms are split by read mode so the rpcload bench can
// compare the locked oracle against the snapshot+cache path from one
// process-wide registry.
var (
	mLegacyHits = telemetry.GetCounter("smartcrowd_rpc_legacy_requests_total")

	mReqLockedNs = telemetry.GetHistogram("smartcrowd_rpc_request_ns", telemetry.L("mode", "locked"))
	mReqViewNs   = telemetry.GetHistogram("smartcrowd_rpc_request_ns", telemetry.L("mode", "view"))
	mReqErrors   = telemetry.GetCounter("smartcrowd_rpc_request_errors_total")

	mCacheHitPerm  = telemetry.GetCounter("smartcrowd_rpc_cache_hit_total", telemetry.L("tier", "finalized"))
	mCacheHitHead  = telemetry.GetCounter("smartcrowd_rpc_cache_hit_total", telemetry.L("tier", "head"))
	mCacheMissPerm = telemetry.GetCounter("smartcrowd_rpc_cache_miss_total", telemetry.L("tier", "finalized"))
	mCacheMissHead = telemetry.GetCounter("smartcrowd_rpc_cache_miss_total", telemetry.L("tier", "head"))
	mCacheEvict    = telemetry.GetCounter("smartcrowd_rpc_cache_evict_total")
)

func init() {
	telemetry.SetHelp("smartcrowd_rpc_legacy_requests_total", "requests served via deprecated unprefixed route aliases")
	telemetry.SetHelp("smartcrowd_rpc_request_ns", "/v1 request service latency, by chain read mode (locked mutex vs lock-free view)")
	telemetry.SetHelp("smartcrowd_rpc_request_errors_total", "/v1 requests answered with an error envelope")
	telemetry.SetHelp("smartcrowd_rpc_cache_hit_total", "response-cache hits, by tier (finalized content-addressed vs head-keyed generation)")
	telemetry.SetHelp("smartcrowd_rpc_cache_miss_total", "response-cache misses that built and stored a response, by tier")
	telemetry.SetHelp("smartcrowd_rpc_cache_evict_total", "response-cache entries discarded (head-generation swaps and finalized-tier rotations)")
}
