package rpc

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

var mLegacyHits = telemetry.GetCounter("smartcrowd_rpc_legacy_requests_total")

func init() {
	telemetry.SetHelp("smartcrowd_rpc_legacy_requests_total", "requests served via deprecated unprefixed route aliases")
}
