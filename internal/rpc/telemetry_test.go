package rpc

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestSRAUnknownID(t *testing.T) {
	e := newEnv(t)
	ghost := types.HashBytes([]byte("no-such-sra"))
	if code := e.get("/sra/"+ghost.String(), nil); code != http.StatusNotFound {
		t.Errorf("unknown SRA returned %d, want 404", code)
	}
	if code := e.get("/sra/zzzz", nil); code != http.StatusBadRequest {
		t.Errorf("malformed SRA id returned %d, want 400", code)
	}
}

func TestReferenceUnknownID(t *testing.T) {
	e := newEnv(t)
	ghost := types.HashBytes([]byte("no-such-reference"))
	if code := e.get("/reference/"+ghost.String(), nil); code != http.StatusNotFound {
		t.Errorf("unknown reference returned %d, want 404", code)
	}
	if code := e.get("/reference/zzzz", nil); code != http.StatusBadRequest {
		t.Errorf("malformed reference id returned %d, want 400", code)
	}
}

// TestProofNonCanonicalTx submits a transaction that sits in the pool but
// is never mined: /proof must 404 (only canonical inclusion is provable),
// even though the node knows the hash.
func TestProofNonCanonicalTx(t *testing.T) {
	e := newEnv(t)
	tx := &types.Transaction{
		Kind:     types.TxTransfer,
		Nonce:    1,
		To:       types.Address{7},
		Value:    1,
		GasLimit: 21_000,
		GasPrice: 50 * types.GWei,
	}
	if err := types.SignTx(tx, e.alice); err != nil {
		t.Fatal(err)
	}
	if err := e.provider.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if code := e.get("/proof/"+tx.Hash().String(), nil); code != http.StatusNotFound {
		t.Errorf("pooled-but-unmined tx proof returned %d, want 404", code)
	}
}

// TestMetricsEndpoint checks the Prometheus surface: content type, the
// exposition grammar, and that families from every instrumented subsystem
// are present (package-level handles register at init, so even subsystems
// the test env never exercises — PoW sealing, p2p delivery — must appear
// with zero values).
func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t)
	resp, err := http.Get(e.server.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type %q, want %q", ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, family := range []string{
		"smartcrowd_chain_import_total",
		"smartcrowd_txpool_admit_total",
		"smartcrowd_types_sender_cache_total",
		"smartcrowd_pow_seal_total",
		"smartcrowd_p2p_deliveries_total",
	} {
		if !strings.Contains(body, "# TYPE "+family) {
			t.Errorf("family %s missing from exposition", family)
		}
	}

	// The env mined three blocks before the server started, so chain
	// imports must have moved.
	inserted := false
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			// Comment lines must be HELP or TYPE.
			if line != "" && !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unrecognized comment line %q", line)
			}
			continue
		}
		// Sample lines are "<series> <value>"; the value must parse.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("sample line %q has no value", line)
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Errorf("sample line %q: bad value: %v", line, err)
		}
		if strings.HasPrefix(line, `smartcrowd_chain_import_total{outcome="inserted"}`) && v > 0 {
			inserted = true
		}
	}
	if !inserted {
		t.Error("chain_import_total{outcome=inserted} did not move after mining")
	}
}

func TestDebugVarsIncludesSmartcrowd(t *testing.T) {
	e := newEnv(t)
	resp, err := http.Get(e.server.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars returned %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("debug/vars is not a JSON object: %v", err)
	}
	sc, ok := vars["smartcrowd"]
	if !ok {
		t.Fatal("expvar map has no \"smartcrowd\" entry")
	}
	var values map[string]float64
	if err := json.Unmarshal(sc, &values); err != nil {
		t.Fatalf("smartcrowd expvar is not a flat series map: %v", err)
	}
	if len(values) == 0 {
		t.Error("smartcrowd expvar map is empty")
	}
}

func TestDebugSpansEndpoint(t *testing.T) {
	e := newEnv(t)
	var spans []telemetry.SpanRecord
	if code := e.get("/debug/spans", &spans); code != http.StatusOK {
		t.Fatalf("debug/spans returned %d", code)
	}
	// The ring is process-wide; the env's setup may or may not have traced
	// spans depending on test order, so only the shape is asserted — the
	// response must be a JSON array (decode above) even when empty.
}

func TestPprofGatedByConfig(t *testing.T) {
	e := newEnv(t)
	// Default server (from newEnv) must not serve pprof.
	if code := e.get("/debug/pprof/cmdline", nil); code != http.StatusNotFound {
		t.Errorf("pprof served on default config: %d", code)
	}
	// An explicitly enabled server must.
	enabled := httptest.NewServer(NewServerWith(e.provider, e.sc, Config{EnablePprof: true}))
	defer enabled.Close()
	resp, err := http.Get(enabled.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline returned %d with EnablePprof", resp.StatusCode)
	}
}
