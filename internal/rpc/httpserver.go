package rpc

import (
	"net/http"
	"time"
)

// Default I/O deadlines for the public HTTP listener. Every /v1 response
// is small (the widest, a 100-block page, stays under a few hundred KiB)
// and served from memory, so generous-but-finite bounds lose no
// legitimate client while denying slow-loris peers the ability to pin a
// handler goroutine forever.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// NewHTTPServer wraps handler in an http.Server with every I/O deadline
// set — net/http's zero values mean "wait forever", which an unattended
// public listener must never do. timeout scales the read/write deadlines
// (0 keeps the defaults); the header and idle deadlines are fixed, since
// neither depends on response size.
func NewHTTPServer(addr string, handler http.Handler, timeout time.Duration) *http.Server {
	read, write := DefaultReadTimeout, DefaultWriteTimeout
	if timeout > 0 {
		read, write = timeout, timeout
	}
	headerTimeout := DefaultReadHeaderTimeout
	if headerTimeout > read {
		headerTimeout = read
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: headerTimeout,
		ReadTimeout:       read,
		WriteTimeout:      write,
		IdleTimeout:       DefaultIdleTimeout,
	}
}
