package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// This file is the observability read surface: hierarchical traces,
// the structured-log ring, the live event feed and the readiness probe.
// None of it is part of the versioned consumer API contract except
// /v1/events and /v1/health, which consumers are expected to script
// against.

// sortedLabels renders a label map as a JSON object with keys in sorted
// order. encoding/json happens to sort map keys today, but /debug/spans
// promises deterministic bytes, so the ordering is pinned here rather
// than inherited from an encoder implementation detail.
type sortedLabels map[string]string

func (m sortedLabels) MarshalJSON() ([]byte, error) {
	if len(m) == 0 {
		return []byte("{}"), nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// SpanView is SpanRecord with deterministically encoded labels.
type SpanView struct {
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"durationNs"`
	Labels     sortedLabels `json:"labels,omitempty"`
	TraceID    string       `json:"traceId,omitempty"`
	SpanID     string       `json:"spanId,omitempty"`
	ParentID   string       `json:"parentId,omitempty"`
}

func spanView(sp telemetry.SpanRecord) SpanView {
	return SpanView{
		Name:       sp.Name,
		Start:      sp.Start,
		DurationNs: sp.DurationNs,
		Labels:     sortedLabels(sp.Labels),
		TraceID:    sp.TraceID,
		SpanID:     sp.SpanID,
		ParentID:   sp.ParentID,
	}
}

// handleSpans serves the tracer's recent-span ring, oldest first, with
// label maps sorted so repeated requests over identical state produce
// identical bytes.
func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	spans := telemetry.RecentSpans()
	views := make([]SpanView, 0, len(spans))
	for _, sp := range spans {
		views = append(views, spanView(sp))
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, http.StatusOK, views)
}

// TraceNode is one span in a trace's hop tree, children nested under the
// span that caused them — on one node or across the network.
type TraceNode struct {
	Name       string       `json:"name"`
	SpanID     string       `json:"spanId"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"durationNs"`
	Labels     sortedLabels `json:"labels,omitempty"`
	Children   []*TraceNode `json:"children,omitempty"`
}

// TraceResponse is one trace: the flat span list (completion order, as
// recorded) plus the reconstructed hierarchy.
type TraceResponse struct {
	ID           string     `json:"id"`
	StartUnixNs  int64      `json:"startUnixNs"`
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanView `json:"spans"`
	// Roots holds the trace's span tree. A span whose parent has not
	// been recorded (still open, evicted from the span budget, or ended
	// on a node whose store we cannot see) surfaces as a root.
	Roots []*TraceNode `json:"roots"`
}

func traceResponse(rec telemetry.TraceRecord) TraceResponse {
	resp := TraceResponse{
		ID:           rec.ID,
		StartUnixNs:  rec.StartUnixNs,
		DroppedSpans: rec.DroppedSpans,
		Spans:        make([]SpanView, 0, len(rec.Spans)),
	}
	nodes := make(map[string]*TraceNode, len(rec.Spans))
	for _, sp := range rec.Spans {
		resp.Spans = append(resp.Spans, spanView(sp))
		nodes[sp.SpanID] = &TraceNode{
			Name:       sp.Name,
			SpanID:     sp.SpanID,
			Start:      sp.Start,
			DurationNs: sp.DurationNs,
			Labels:     sortedLabels(sp.Labels),
		}
	}
	for _, sp := range rec.Spans {
		node := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, node)
		} else {
			resp.Roots = append(resp.Roots, node)
		}
	}
	// Deterministic sibling order: by start time, span id as tie-break.
	var sortTree func(ns []*TraceNode)
	sortTree = func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].SpanID < ns[j].SpanID
		})
		for _, n := range ns {
			sortTree(n.Children)
		}
	}
	sortTree(resp.Roots)
	return resp
}

// handleTraces serves the trace store: `?id=<hex>` for one trace,
// otherwise the most recent traces (`?limit=`, default 32).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if raw := r.URL.Query().Get("id"); raw != "" {
		id, ok := telemetry.ParseTraceID(raw)
		if !ok {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad trace id %q", raw))
			return
		}
		rec, ok := telemetry.GetTrace(id)
		if !ok {
			writeErr(w, http.StatusNotFound, CodeNotFound, errors.New("rpc: trace not in store (evicted or never recorded)"))
			return
		}
		writeJSON(w, http.StatusOK, traceResponse(rec))
		return
	}
	limit, err := parseQueryPositive(r, "limit", 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	recs := telemetry.RecentTraces(limit)
	out := make([]TraceResponse, 0, len(recs))
	for _, rec := range recs {
		out = append(out, traceResponse(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLogs serves the structured-log ring, oldest first. `?level=`
// filters to entries at or above a severity.
func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	entries := telemetry.RecentLogs()
	if raw := r.URL.Query().Get("level"); raw != "" {
		min, ok := parseLevel(raw)
		if !ok {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad level %q (want debug|info|warn|error)", raw))
			return
		}
		kept := entries[:0]
		for _, e := range entries {
			if lvl, ok := parseLevel(e.Level); ok && lvl >= min {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if entries == nil {
		entries = []telemetry.LogEntry{}
	}
	writeJSON(w, http.StatusOK, entries)
}

func parseLevel(s string) (telemetry.Level, bool) {
	switch s {
	case "debug", "DEBUG":
		return telemetry.LevelDebug, true
	case "info", "INFO":
		return telemetry.LevelInfo, true
	case "warn", "WARN":
		return telemetry.LevelWarn, true
	case "error", "ERROR":
		return telemetry.LevelError, true
	}
	return 0, false
}

// maxSSEStream bounds one /v1/events connection. The HTTP server's write
// timeout covers the whole response, so the stream must end before it
// fires; clients reconnect with Last-Event-ID and miss nothing that is
// still in the replay ring.
const maxSSEStream = 25 * time.Second

// handleEvents streams chain lifecycle events (new heads, SRA
// registrations, detection verdicts) as server-sent events. Replay
// starts after the Last-Event-ID header or `?since=` sequence number, so
// a reconnecting consumer resumes exactly where it dropped.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, CodeInternal, errors.New("rpc: response writer cannot stream"))
		return
	}
	since := uint64(0)
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad Last-Event-ID %q", raw))
			return
		}
		since = v
	} else if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad since %q", raw))
			return
		}
		since = v
	}

	// Subscribe before replaying so nothing published between the two
	// calls is lost; duplicates across the seam are filtered by seq.
	ch, cancel := telemetry.SubscribeEvents(64)
	defer cancel()

	hdr := w.Header()
	hdr.Set("Content-Type", "text/event-stream")
	hdr.Set("Cache-Control", "no-cache")
	hdr.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 2000\n\n")

	last := since
	for _, ev := range telemetry.EventsSince(since) {
		writeSSE(w, ev)
		last = ev.Seq
	}
	flusher.Flush()

	deadline := time.NewTimer(maxSSEStream)
	defer deadline.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if ev.Seq <= last {
				continue
			}
			writeSSE(w, ev)
			last = ev.Seq
			flusher.Flush()
		case <-deadline.C:
			// Polite end-of-stream: a comment line, then the client's
			// EventSource reconnects with Last-Event-ID set.
			fmt.Fprintf(w, ": stream rotated after %s\n\n", maxSSEStream)
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev telemetry.Event) {
	body, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, body)
}

// HealthResponse is the /v1/health readiness report.
type HealthResponse struct {
	Status     string `json:"status"`
	HeadNumber uint64 `json:"headNumber"`
	HeadID     string `json:"headId"`
	// HeadAgeSeconds is wall time minus the head's block timestamp,
	// clamped at zero (block times are miner-declared).
	HeadAgeSeconds int64 `json:"headAgeSeconds"`
	// Peers is the live transport connection count, or -1 when the node
	// runs without a network transport (single-node and sim setups).
	Peers      int    `json:"peers"`
	PendingTxs int    `json:"pendingTxs"`
	Orphans    int    `json:"orphans"`
	EventSeq   uint64 `json:"eventSeq"`
	// SyncMode is the node's current sync mode (live, snap, replay).
	SyncMode string `json:"syncMode"`
}

// handleHealth reports readiness: 200 when the node can serve fresh
// chain state, 503 when it cannot — while a snap-sync session is
// adopting a downloaded snapshot (answers are about to jump wholesale),
// or when it has a transport but no peers (an isolated node serves stale
// answers and should be rotated out of load balancing). snap_syncing
// takes precedence: a syncing node usually also has its serving peer, so
// the peer check alone would report it healthy mid-adoption.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	cr, _ := s.reader()
	head := cr.Head()
	age := time.Now().Unix() - int64(head.Header.Time)
	if age < 0 {
		age = 0
	}
	peers := s.node.PeerCount()
	sync := s.node.SyncStatus()
	resp := HealthResponse{
		Status:         "ok",
		HeadNumber:     head.Header.Number,
		HeadID:         head.ID().String(),
		HeadAgeSeconds: age,
		Peers:          peers,
		PendingTxs:     s.node.PoolLen(),
		Orphans:        s.node.OrphanCount(),
		EventSeq:       telemetry.EventSeq(),
		SyncMode:       sync.Mode,
	}
	status := http.StatusOK
	switch {
	case sync.ApplyingSnapshot:
		resp.Status = "snap_syncing"
		status = http.StatusServiceUnavailable
	case peers == 0:
		resp.Status = "no_peers"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// NodeResponse is the /v1/node operational report: identity, head,
// storage durability and sync state. Like /v1/health it answers from
// live process state, outside the view/cache machinery — operators poll
// it to watch a restart recover or a snap-sync progress, so serving a
// cached generation would defeat the point.
type NodeResponse struct {
	NodeID     string          `json:"nodeId"`
	HeadNumber uint64          `json:"headNumber"`
	HeadID     string          `json:"headId"`
	Peers      int             `json:"peers"`
	PendingTxs int             `json:"pendingTxs"`
	Storage    StorageResponse `json:"storage"`
	Sync       node.SyncStatus `json:"sync"`
}

// StorageResponse reports the chain's persistence backend.
type StorageResponse struct {
	Backend        string `json:"backend"`
	Dir            string `json:"dir,omitempty"`
	Blocks         uint64 `json:"blocks"`
	LogBytes       int64  `json:"logBytes"`
	IndexBytes     int64  `json:"indexBytes"`
	WALBytes       int64  `json:"walBytes"`
	SnapshotBytes  int64  `json:"snapshotBytes"`
	SnapshotHeight uint64 `json:"snapshotHeight"`
	// Recovered reports that the last open healed after a crash
	// (truncated a torn tail or rebuilt the index from the log).
	Recovered bool `json:"recovered"`
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	cr, _ := s.reader()
	head := cr.Head()
	st := s.node.Chain().StorageStats()
	writeJSON(w, http.StatusOK, NodeResponse{
		NodeID:     string(s.node.ID()),
		HeadNumber: head.Header.Number,
		HeadID:     head.ID().String(),
		Peers:      s.node.PeerCount(),
		PendingTxs: s.node.PoolLen(),
		Storage: StorageResponse{
			Backend:        st.Backend,
			Dir:            st.Dir,
			Blocks:         st.Blocks,
			LogBytes:       st.LogBytes,
			IndexBytes:     st.IndexBytes,
			WALBytes:       st.WALBytes,
			SnapshotBytes:  st.SnapshotBytes,
			SnapshotHeight: st.SnapshotHeight,
			Recovered:      st.Recovered,
		},
		Sync: s.node.SyncStatus(),
	})
}
