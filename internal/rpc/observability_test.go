package rpc

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

func TestHealthEndpoint(t *testing.T) {
	e := newEnv(t)
	var h HealthResponse
	if code := e.get("/v1/health", &h); code != http.StatusOK {
		t.Fatalf("health returned %d", code)
	}
	if h.Status != "ok" {
		t.Errorf("status %q, want ok", h.Status)
	}
	if h.HeadNumber == 0 {
		t.Error("health reports genesis head after mining")
	}
	if h.Peers != -1 {
		t.Errorf("peers %d, want -1 (no transport attached)", h.Peers)
	}
	if h.HeadID == "" {
		t.Error("health has no head id")
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	e := newEnv(t)
	// The env mined blocks through MineBlock, which mints a block.seal
	// trace per block and remembers it by block id.
	head := e.provider.Chain().Head()
	tc, ok := e.provider.TraceOf(head.ID())
	if !ok {
		t.Fatal("provider kept no trace for its own head")
	}

	var recs []TraceResponse
	if code := e.get("/debug/traces", &recs); code != http.StatusOK {
		t.Fatalf("debug/traces returned %d", code)
	}
	if len(recs) == 0 {
		t.Fatal("trace store is empty after mining")
	}

	var one TraceResponse
	if code := e.get("/debug/traces?id="+tc.TraceID.String(), &one); code != http.StatusOK {
		t.Fatalf("trace lookup returned %d", code)
	}
	if one.ID != tc.TraceID.String() {
		t.Fatalf("lookup returned trace %s, want %s", one.ID, tc.TraceID.String())
	}
	if len(one.Spans) == 0 || len(one.Roots) == 0 {
		t.Fatalf("trace has no spans/roots: %+v", one)
	}
	sawSeal := false
	for _, sp := range one.Spans {
		if sp.Name == "block.seal" {
			sawSeal = true
		}
	}
	if !sawSeal {
		t.Errorf("head trace lacks its block.seal root span: %+v", one.Spans)
	}

	if code := e.get("/debug/traces?id=zzzz", nil); code != http.StatusBadRequest {
		t.Errorf("malformed trace id returned %d, want 400", code)
	}
	if code := e.get("/debug/traces?id="+strings.Repeat("00", 16), nil); code != http.StatusNotFound {
		t.Errorf("unknown trace id returned %d, want 404", code)
	}
}

func TestDebugLogsEndpoint(t *testing.T) {
	e := newEnv(t)
	telemetry.Log("rpctest").Warn("observable entry", "k", "v")

	var entries []telemetry.LogEntry
	if code := e.get("/debug/logs", &entries); code != http.StatusOK {
		t.Fatalf("debug/logs returned %d", code)
	}
	found := false
	for _, en := range entries {
		if en.Subsystem == "rpctest" && en.Msg == "observable entry" {
			found = true
			if en.Fields != "k=v" {
				t.Errorf("fields %q, want k=v", en.Fields)
			}
		}
	}
	if !found {
		t.Fatal("emitted entry not in /debug/logs")
	}

	// Severity filter: a warn-and-up view must keep the entry; an
	// error-only view must drop it.
	var warns []telemetry.LogEntry
	if code := e.get("/debug/logs?level=warn", &warns); code != http.StatusOK {
		t.Fatalf("filtered debug/logs returned %d", code)
	}
	for _, en := range warns {
		if lvl, ok := parseLevel(en.Level); !ok || lvl < telemetry.LevelWarn {
			t.Errorf("level filter leaked %q entry", en.Level)
		}
	}
	if code := e.get("/debug/logs?level=loud", nil); code != http.StatusBadRequest {
		t.Errorf("bad level returned %d, want 400", code)
	}
}

// TestDebugSpansDeterministic asserts the satellite contract: identical
// state must serve byte-identical /debug/spans responses with an explicit
// JSON content type.
func TestDebugSpansDeterministic(t *testing.T) {
	e := newEnv(t)
	sp := telemetry.StartSpan("det.test")
	sp.End(
		telemetry.L("zeta", "1"), telemetry.L("alpha", "2"),
		telemetry.L("mid", "3"), telemetry.L("beta", "4"),
	)

	fetch := func() (string, string) {
		resp, err := http.Get(e.server.URL + "/debug/spans")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug/spans returned %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	b1, ct := fetch()
	b2, _ := fetch()
	if ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	if b1 != b2 {
		t.Fatal("two reads of identical span state differ")
	}
	// The sorted-label contract, visible in the bytes themselves.
	if !strings.Contains(b1, `{"alpha":"2","beta":"4","mid":"3","zeta":"1"}`) {
		t.Errorf("labels not serialized in sorted key order: %s", b1)
	}
}

// TestEventsSSE drives the /v1/events stream end to end: publish, then
// connect with a replay cursor and assert framing, ordering and the
// trace stamp.
func TestEventsSSE(t *testing.T) {
	e := newEnv(t)
	// Cursor taken before publishing: the subscription must replay
	// exactly what follows it.
	cursor := telemetry.EventSeq()
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), Span: telemetry.NewSpanID(), Start: 1}
	telemetry.PublishEvent("testevent", tc, map[string]string{"block": "b-1"})

	req, err := http.NewRequest("GET", e.server.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(cursor, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	// Read frames until our event shows up (the stream stays open, so a
	// bounded scan, not ReadAll).
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	var sawID, sawType, sawData bool
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			sawID = true
		case line == "event: testevent":
			sawType = true
		case strings.HasPrefix(line, "data: ") && strings.Contains(line, `"block":"b-1"`):
			if !strings.Contains(line, tc.TraceID.String()) {
				t.Fatalf("event data lacks its trace id: %s", line)
			}
			sawData = true
		}
		if sawID && sawType && sawData {
			return
		}
	}
	t.Fatalf("published event never arrived (id=%v type=%v data=%v)", sawID, sawType, sawData)
}
