// Package rpc exposes a SmartCrowd provider node over HTTP/JSON — the
// counterpart of the Ethereum JSON API the paper's prototype uses for
// "data interaction between detectors and smart contracts" (§VII).
// Consumers query release references and balances; detectors submit
// transactions and fetch light-client proofs.
//
// The documented surface lives under the versioned /v1 prefix:
//
//	GET  /v1/status                    chain head summary
//	GET  /v1/block/{number}            canonical block by height
//	GET  /v1/blocks?from=&to=          bounded block range (≤ 100 blocks)
//	GET  /v1/balance/{address}         account balance (gwei + ether)
//	GET  /v1/receipt/{txhash}          canonical transaction receipt
//	GET  /v1/sra/{id}                  SRA record + detection summary
//	GET  /v1/sras?cursor=&limit=       paginated SRA index (limit ≤ 100)
//	GET  /v1/reference/{id}            consumer security reference
//	GET  /v1/proof/{txhash}            Merkle inclusion proof for a tx
//	POST /v1/tx                        submit a hex-encoded transaction
//	GET  /v1/events                    live SSE feed of heads/SRAs/verdicts
//	GET  /v1/health                    readiness probe (peers, sync, head age)
//	GET  /v1/node                      operational report (storage, sync, peers)
//
// The list endpoints paginate with opaque cursors (cursor.go): every
// page carries a nextCursor token that resumes exactly after the last
// delivered item even if the head moved — or reorged — between requests.
// The pre-cursor offset/nextOffset contract remains accepted for one
// release: requests carrying ?offset= are answered in full but stamped
// with a Deprecation header pointing at the cursor form. /v1/blocks
// serves bounded ?from=&to= ranges (≤ 100 blocks) as before; an
// open-ended request (no `to`) pages toward the head via nextCursor.
//
// The original unprefixed paths remain as deprecated aliases: they serve
// identical responses plus a "Deprecation: true" header and a Link to the
// /v1 successor. Errors are uniform across every route:
//
//	{"error":{"code":"<stable-string>","message":"<human detail>"}}
//
// with codes bad_request, not_found, tx_rejected and internal. Clients
// branch on the code; the message is diagnostic only.
//
// # Read path
//
// Every GET handler serves from an immutable chain.ReadView pinned once
// per request by a single atomic load — no handler ever takes the chain
// mutex, so a million polling consumers cannot stall the import pipeline
// (or each other). On top of the view sits a read-through response cache
// (cache.go): finalized objects (blocks and proofs ≥ K confirmations
// deep) cache their encoded bytes content-addressed by block id with
// immutable Cache-Control, while head-dependent answers (/v1/status,
// balances, receipts, SRA pages) live in a generation keyed by the head
// hash and are invalidated wholesale the moment a new snapshot is
// published. Responses carry strong ETags; If-None-Match revalidation
// answers 304 without a body. /v1/status includes the pool's pending-tx
// count, which is not head-pinned — its staleness is bounded by one
// head-generation swap. Config.UseLockedReads restores the mutex path as
// a byte-identical oracle for the rpcload benchmark.
//
// Observability endpoints are operational, not part of the versioned API:
//
//	GET  /metrics                      Prometheus text exposition
//	GET  /debug/vars                   expvar JSON (includes "smartcrowd")
//	GET  /debug/spans                  recent traced spans, oldest first
//	GET  /debug/traces                 hierarchical traces (?id= for one)
//	GET  /debug/logs                   structured-log ring (?level= filter)
//	GET  /debug/pprof/...              net/http/pprof (Config.EnablePprof)
package rpc

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/crypto/merkle"
	"github.com/smartcrowd/smartcrowd/internal/light"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/state"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// Config tunes the optional parts of the API surface.
type Config struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and should only
	// face operators.
	EnablePprof bool
	// UseLockedReads routes every read through the chain's mutex-guarded
	// methods instead of the published ReadView — the pre-snapshot
	// behavior, kept as the byte-identical oracle the rpcload benchmark
	// measures against. The response cache is off in this mode.
	UseLockedReads bool
	// DisableCache serves from the ReadView but skips the response
	// cache, isolating the snapshot's contribution from the cache's.
	DisableCache bool
	// FinalityDepth is K: objects at least K blocks below the view head
	// are finalized, so their content-addressed responses advertise
	// themselves as immutable to HTTP caches. 0 means the chain's
	// configured confirmation depth (the paper's 6-block rule).
	FinalityDepth uint64
}

// ChainReader is the chain read surface the GET handlers consume. It is
// satisfied by both *chain.ReadView (the default: one atomic load pins
// an immutable snapshot for the whole request) and *chain.Chain (the
// mutex-guarded oracle behind Config.UseLockedReads).
type ChainReader interface {
	Head() *types.Block
	HeadNumber() uint64
	TotalDifficulty() uint64
	BlockByNumber(n uint64) (*types.Block, error)
	BlocksRange(from, to uint64) []*types.Block
	ReceiptOf(txHash types.Hash) (*chain.Receipt, error)
	Confirmations(txHash types.Hash) uint64
	TxLocation(txHash types.Hash) (blockID types.Hash, number uint64, txIdx int, ok bool)
	SRACount() int
	SRAList(offset, limit int) []chain.SRARef
	SRAAt(i int) (chain.SRARef, bool)
	DetectionResults(sraID types.Hash) []chain.DetectionRecord
	State() *state.DB
}

// Server serves the JSON API for one provider node.
type Server struct {
	node     *node.ProviderNode
	contract *contract.Contract
	cfg      Config
	cache    *respCache
	finality uint64
	reqNs    *telemetry.Histogram
	mux      *http.ServeMux
}

// NewServer wires the API around a provider node and the SmartCrowd
// contract with the default configuration.
func NewServer(n *node.ProviderNode, c *contract.Contract) *Server {
	return NewServerWith(n, c, Config{})
}

// NewServerWith wires the API with explicit configuration.
func NewServerWith(n *node.ProviderNode, c *contract.Contract, cfg Config) *Server {
	s := &Server{
		node:     n,
		contract: c,
		cfg:      cfg,
		cache:    newRespCache(),
		finality: cfg.FinalityDepth,
		reqNs:    mReqViewNs,
		mux:      http.NewServeMux(),
	}
	if s.finality == 0 {
		s.finality = n.Chain().Config().Confirmations
	}
	if cfg.UseLockedReads {
		s.reqNs = mReqLockedNs
	}

	// Every route registers twice: canonically under /v1, and at its
	// historical unprefixed path as a deprecated alias that carries a
	// Deprecation header pointing clients at the successor. Both paths
	// feed the mode-labeled latency histogram.
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"GET", "/status", s.handleStatus},
		{"GET", "/block/{number}", s.handleBlock},
		{"GET", "/balance/{address}", s.handleBalance},
		{"GET", "/receipt/{txhash}", s.handleReceipt},
		{"GET", "/sra/{id}", s.handleSRA},
		{"GET", "/reference/{id}", s.handleReference},
		{"GET", "/proof/{txhash}", s.handleProof},
		{"POST", "/tx", s.handleSubmitTx},
	}
	for _, r := range routes {
		h := s.measured(r.h)
		s.mux.HandleFunc(r.method+" /v1"+r.path, h)
		s.mux.HandleFunc(r.method+" "+r.path, deprecatedAlias(r.path, h))
	}
	// List endpoints are part of the redesign and exist only under /v1.
	s.mux.HandleFunc("GET /v1/sras", s.measured(s.handleSRAList))
	s.mux.HandleFunc("GET /v1/blocks", s.measured(s.handleBlockList))

	// Streaming, readiness and operational endpoints: versioned because
	// consumers script against them, but deliberately outside the
	// cache/view machinery — all answer from live process state.
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/node", s.handleNode)

	// Observability surface. The metrics registry is process-wide, so
	// every server mounted in one process serves the same numbers.
	telemetry.PublishExpvar()
	s.mux.Handle("GET /metrics", telemetry.Handler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/spans", s.handleSpans)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/logs", s.handleLogs)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stable error codes of the /v1 envelope. Clients branch on these; the
// accompanying message is diagnostic and may change freely.
const (
	CodeBadRequest = "bad_request" // malformed path value, query or body
	CodeNotFound   = "not_found"   // the referenced object is not on the canonical chain
	CodeTxRejected = "tx_rejected" // a well-formed transaction failed admission
	CodeInternal   = "internal"    // server-side failure
)

// ErrorEnvelope is the uniform error response of every route.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries a stable machine-readable code plus a human message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	mReqErrors.Inc()
	writeJSON(w, status, errEnvelope(code, err))
}

func errEnvelope(code string, err error) ErrorEnvelope {
	return ErrorEnvelope{Error: ErrorBody{Code: code, Message: err.Error()}}
}

// encodeBody renders the exact bytes writeJSON streams for v — Marshal
// plus the Encoder's trailing newline — so cached responses stay
// byte-identical with the uncached (and locked-oracle) paths.
func encodeBody(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(errEnvelope(CodeInternal, err))
	}
	return append(b, '\n')
}

// measured wraps a handler with the per-request latency histogram for
// the server's read mode.
func (s *Server) measured(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.reqNs.ObserveDuration(time.Since(t0))
	}
}

// reader pins the read surface for one request: the latest published
// ReadView (view != nil), or the locked chain oracle under
// Config.UseLockedReads (view == nil, which also bypasses the cache).
func (s *Server) reader() (ChainReader, *chain.ReadView) {
	c := s.node.Chain()
	if s.cfg.UseLockedReads {
		return c, nil
	}
	v := c.CurrentView()
	return v, v
}

// cacheRef names where a response may cache: the finalized
// content-addressed tier (perm) or the current head generation.
type cacheRef struct {
	perm bool
	key  string
}

// serveRead writes one read response, routing it through the response
// cache when the request is served from a ReadView. Within one head
// generation (and forever in the finalized tier) every answer for a key
// is immutable, so serving cached bytes is exact, not approximate.
func (s *Server) serveRead(w http.ResponseWriter, r *http.Request, view *chain.ReadView, ref cacheRef, build func() (int, interface{})) {
	if view == nil || s.cfg.DisableCache || ref.key == "" {
		status, v := build()
		if status >= 400 {
			mReqErrors.Inc()
		}
		writeJSON(w, status, v)
		return
	}
	enc := func() (int, []byte) {
		status, v := build()
		return status, encodeBody(v)
	}
	var e *cacheEntry
	if ref.perm {
		e = s.cache.permGetOrBuild(ref.key, enc)
	} else {
		e = s.cache.headGetOrBuild(view.HeadID(), ref.key, enc)
	}
	if e.status == 0 {
		// The winning builder died before publishing; answer uncached.
		status, v := build()
		if status >= 400 {
			mReqErrors.Inc()
		}
		writeJSON(w, status, v)
		return
	}
	if e.status >= 400 {
		mReqErrors.Inc()
	}
	hdr := w.Header()
	hdr.Set("ETag", e.etag)
	if ref.perm {
		hdr.Set("Cache-Control", "public, max-age=31536000, immutable")
	} else {
		// Clients must revalidate, but the ETag makes revalidation a
		// body-less 304 until the head moves.
		hdr.Set("Cache-Control", "public, no-cache")
	}
	if e.status == http.StatusOK && r.Header.Get("If-None-Match") == e.etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr.Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

// deprecatedAlias wraps a handler mounted at a legacy unprefixed path: it
// serves the same response but stamps the RFC 8594 Deprecation header and
// links the /v1 successor, and counts the hit so operators can see when
// the aliases stop being used.
func deprecatedAlias(path string, h http.HandlerFunc) http.HandlerFunc {
	successor := "/v1" + path
	return func(w http.ResponseWriter, r *http.Request) {
		mLegacyHits.Inc()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// StatusResponse summarizes the chain head.
type StatusResponse struct {
	HeadNumber      uint64 `json:"headNumber"`
	HeadID          string `json:"headId"`
	TotalDifficulty uint64 `json:"totalDifficulty"`
	PendingTxs      int    `json:"pendingTxs"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cr, view := s.reader()
	s.serveRead(w, r, view, cacheRef{key: "status"}, func() (int, interface{}) {
		return http.StatusOK, StatusResponse{
			HeadNumber:      cr.HeadNumber(),
			HeadID:          cr.Head().ID().String(),
			TotalDifficulty: cr.TotalDifficulty(),
			PendingTxs:      s.node.PoolLen(),
		}
	})
}

// BlockResponse is a canonical block summary.
type BlockResponse struct {
	Number     uint64   `json:"number"`
	ID         string   `json:"id"`
	ParentID   string   `json:"parentId"`
	Time       uint64   `json:"time"`
	Difficulty uint64   `json:"difficulty"`
	Miner      string   `json:"miner"`
	TxHashes   []string `json:"txHashes"`
	Reports    int      `json:"reports"`
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(r.PathValue("number"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad block number: %w", err))
		return
	}
	cr, view := s.reader()
	blk, err := cr.BlockByNumber(n)
	if err != nil {
		// Cached per head generation: within one view, "past the head"
		// stays past the head.
		s.serveRead(w, r, view, cacheRef{key: "block!:" + r.PathValue("number")}, func() (int, interface{}) {
			return http.StatusNotFound, errEnvelope(CodeNotFound, err)
		})
		return
	}
	// Content-addressed by block id: reorg-safe at any depth, and
	// promoted to the finalized tier once K blocks deep.
	ref := cacheRef{key: "block:" + blk.ID().String()}
	if view != nil && view.FinalizedDepth(n) >= s.finality {
		ref.perm = true
	}
	s.serveRead(w, r, view, ref, func() (int, interface{}) {
		return http.StatusOK, blockResponse(blk)
	})
}

// blockResponse summarizes one block for /v1/block and /v1/blocks.
func blockResponse(blk *types.Block) BlockResponse {
	resp := BlockResponse{
		Number:     blk.Header.Number,
		ID:         blk.ID().String(),
		ParentID:   blk.Header.ParentID.String(),
		Time:       blk.Header.Time,
		Difficulty: blk.Header.Difficulty,
		Miner:      blk.Header.Miner.String(),
		Reports:    blk.CountReports(),
		TxHashes:   make([]string, 0, len(blk.Txs)),
	}
	for _, tx := range blk.Txs {
		resp.TxHashes = append(resp.TxHashes, tx.Hash().String())
	}
	return resp
}

// BalanceResponse reports an account balance.
type BalanceResponse struct {
	Address string  `json:"address"`
	GWei    uint64  `json:"gwei"`
	Ether   float64 `json:"ether"`
	Nonce   uint64  `json:"nonce"`
}

func (s *Server) handleBalance(w http.ResponseWriter, r *http.Request) {
	addr, err := wallet.ParseAddress(r.PathValue("address"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cr, view := s.reader()
	s.serveRead(w, r, view, cacheRef{key: "balance:" + addr.String()}, func() (int, interface{}) {
		// View mode reads the frozen head post-state in place; the locked
		// oracle pays for a copy-on-write State() under the write lock.
		st := cr.State()
		bal := st.Balance(addr)
		return http.StatusOK, BalanceResponse{
			Address: addr.String(),
			GWei:    uint64(bal),
			Ether:   bal.Ether(),
			Nonce:   st.Nonce(addr),
		}
	})
}

// ReceiptResponse reports a transaction outcome.
type ReceiptResponse struct {
	TxHash        string `json:"txHash"`
	Kind          string `json:"kind"`
	Success       bool   `json:"success"`
	Error         string `json:"error,omitempty"`
	GasUsed       uint64 `json:"gasUsed"`
	FeeGwei       uint64 `json:"feeGwei"`
	Confirmations uint64 `json:"confirmations"`
	PaidGwei      uint64 `json:"paidGwei,omitempty"`
	Accepted      int    `json:"acceptedFindings,omitempty"`
}

func parseHash(raw string) (types.Hash, error) {
	raw = strings.TrimPrefix(strings.TrimPrefix(raw, "0x"), "0X")
	b, err := hex.DecodeString(raw)
	if err != nil {
		return types.Hash{}, fmt.Errorf("rpc: bad hash: %w", err)
	}
	if len(b) != types.HashSize {
		return types.Hash{}, fmt.Errorf("rpc: hash must be %d bytes, got %d", types.HashSize, len(b))
	}
	var h types.Hash
	copy(h[:], b)
	return h, nil
}

func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	h, err := parseHash(r.PathValue("txhash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cr, view := s.reader()
	// Head-keyed (not finalized) even for deep transactions: the body
	// carries a live confirmation count that grows with every block.
	s.serveRead(w, r, view, cacheRef{key: "receipt:" + h.String()}, func() (int, interface{}) {
		receipt, err := cr.ReceiptOf(h)
		if err != nil {
			return http.StatusNotFound, errEnvelope(CodeNotFound, err)
		}
		return http.StatusOK, ReceiptResponse{
			TxHash:        h.String(),
			Kind:          receipt.Kind.String(),
			Success:       receipt.Success,
			Error:         receipt.Err,
			GasUsed:       receipt.GasUsed,
			FeeGwei:       uint64(receipt.Fee),
			Confirmations: cr.Confirmations(h),
			PaidGwei:      uint64(receipt.Payout.Paid),
			Accepted:      len(receipt.Payout.Accepted),
		}
	})
}

// SRAResponse is the on-chain record of a release announcement.
type SRAResponse struct {
	ID                 string  `json:"id"`
	Provider           string  `json:"provider"`
	InsuranceRemaining float64 `json:"insuranceRemainingEther"`
	BountyEther        float64 `json:"bountyEther"`
	ReleaseBlock       uint64  `json:"releaseBlock"`
	ConfirmedVulns     uint64  `json:"confirmedVulns"`
	Reports            int     `json:"reports"`
}

func (s *Server) handleSRA(w http.ResponseWriter, r *http.Request) {
	id, err := parseHash(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cr, view := s.reader()
	s.serveRead(w, r, view, cacheRef{key: "sra:" + id.String()}, func() (int, interface{}) {
		info, err := s.contract.GetSRA(cr.State(), id)
		if err != nil {
			return http.StatusNotFound, errEnvelope(CodeNotFound, err)
		}
		return http.StatusOK, SRAResponse{
			ID:                 id.String(),
			Provider:           info.Provider.String(),
			InsuranceRemaining: info.InsuranceRemaining.Ether(),
			BountyEther:        info.Bounty.Ether(),
			ReleaseBlock:       info.ReleaseBlock,
			ConfirmedVulns:     info.ConfirmedVulns,
			Reports:            len(cr.DetectionResults(id)),
		}
	})
}

// ReferenceResponse is the consumer-facing security verdict.
type ReferenceResponse struct {
	ID             string         `json:"id"`
	Provider       string         `json:"provider"`
	ConfirmedVulns uint64         `json:"confirmedVulns"`
	BySeverity     map[string]int `json:"bySeverity"`
	SafeToDeploy   bool           `json:"safeToDeploy"`
}

func (s *Server) handleReference(w http.ResponseWriter, r *http.Request) {
	id, err := parseHash(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cr, view := s.reader()
	s.serveRead(w, r, view, cacheRef{key: "reference:" + id.String()}, func() (int, interface{}) {
		consumer := node.NewConsumer(cr, s.contract, 0)
		ref, err := consumer.Lookup(id)
		if err != nil {
			return http.StatusNotFound, errEnvelope(CodeNotFound, err)
		}
		by := make(map[string]int, len(ref.BySeverity))
		for sev, n := range ref.BySeverity {
			by[sev.String()] = n
		}
		return http.StatusOK, ReferenceResponse{
			ID:             id.String(),
			Provider:       ref.Provider.String(),
			ConfirmedVulns: ref.ConfirmedVulns,
			BySeverity:     by,
			SafeToDeploy:   ref.SafeToDeploy,
		}
	})
}

// ProofResponse carries a light-client inclusion proof.
type ProofResponse struct {
	BlockID   string   `json:"blockId"`
	BlockNum  uint64   `json:"blockNumber"`
	LeafHex   string   `json:"leafHex"`
	TxHex     string   `json:"txHex"`
	LeafIndex int      `json:"leafIndex"`
	LeafCount int      `json:"leafCount"`
	Siblings  []string `json:"siblings"` // "L:<hex>" or "R:<hex>"
}

func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	h, err := parseHash(r.PathValue("txhash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	cr, view := s.reader()
	// One index lookup replaces the historical full-chain scan.
	blockID, number, txIdx, ok := cr.TxLocation(h)
	if !ok {
		s.serveRead(w, r, view, cacheRef{key: "proof!:" + h.String()}, func() (int, interface{}) {
			return http.StatusNotFound, errEnvelope(CodeNotFound, errors.New("rpc: transaction not on canonical chain"))
		})
		return
	}
	blk, err := cr.BlockByNumber(number)
	if err != nil || blk.ID() != blockID {
		// Only reachable in locked mode, where a reorg can slip between
		// the two lookups; a view is internally consistent by
		// construction.
		writeErr(w, http.StatusNotFound, CodeNotFound, errors.New("rpc: transaction not on canonical chain"))
		return
	}
	// The proof commits to the block alone, so the response is
	// content-addressed; K blocks down it becomes immutable.
	ref := cacheRef{key: "proof:" + blockID.String() + ":" + h.String()}
	if view != nil && view.FinalizedDepth(number) >= s.finality {
		ref.perm = true
	}
	s.serveRead(w, r, view, ref, func() (int, interface{}) {
		proof, err := light.BuildTxProof(blk, txIdx)
		if err != nil {
			return http.StatusInternalServerError, errEnvelope(CodeInternal, err)
		}
		resp := ProofResponse{
			BlockID:   proof.BlockID.String(),
			BlockNum:  blk.Header.Number,
			LeafHex:   hex.EncodeToString(proof.TxBytes),
			TxHex:     hex.EncodeToString(types.EncodeTx(blk.Txs[txIdx])),
			LeafIndex: proof.Proof.LeafIndex,
			LeafCount: proof.Proof.LeafCount,
		}
		for _, step := range proof.Proof.Steps {
			side := "L"
			if step.Right {
				side = "R"
			}
			resp.Siblings = append(resp.Siblings, side+":"+hex.EncodeToString(step.Sibling[:]))
		}
		return http.StatusOK, resp
	})
}

// Pagination caps for the list endpoints. Both are enforced, not merely
// suggested: /v1/sras clamps limit to MaxSRAPageSize, and /v1/blocks
// rejects ranges wider than MaxBlockRangeSize outright.
const (
	DefaultSRAPageSize = 25
	MaxSRAPageSize     = 100
	MaxBlockRangeSize  = 100
)

// SRAListResponse is a page of the canonical SRA index. NextCursor is
// always present: on the last page it is a poll token that resumes after
// the final entry once new SRAs land. Offset and NextOffset survive for
// one release for pre-cursor clients.
type SRAListResponse struct {
	Total      int           `json:"total"`
	Offset     int           `json:"offset"`
	NextOffset *int          `json:"nextOffset"` // null on the last page
	NextCursor string        `json:"nextCursor"`
	SRAs       []SRAResponse `json:"sras"`
}

// parseQueryInt reads an optional non-negative integer query parameter.
// Malformed or negative values are rejected here, at parse time, so
// every list endpoint answers them with a bad_request envelope instead
// of silently serving an empty page.
func parseQueryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("rpc: bad %s %q: want a non-negative integer", key, raw)
	}
	return v, nil
}

// parseQueryPositive reads an optional integer query parameter that must
// be at least 1 when present. A limit of 0 is always a client bug —
// answering it with an empty 200 page hides the bug, so it is rejected
// like any other malformed value. Oversized limits are NOT rejected:
// callers clamp them to the documented cap.
func parseQueryPositive(r *http.Request, key string, def int) (int, error) {
	v, err := parseQueryInt(r, key, def)
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, fmt.Errorf("rpc: bad %s: want a positive integer", key)
	}
	return v, nil
}

// deprecateOffsetParam stamps a response to a request that paginated by
// the legacy ?offset= parameter: answered in full, but marked so clients
// migrate to the cursor form before the parameter is removed.
func deprecateOffsetParam(w http.ResponseWriter, successor string) {
	mLegacyHits.Inc()
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
}

func (s *Server) handleSRAList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, err := parseQueryPositive(r, "limit", DefaultSRAPageSize)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if limit > MaxSRAPageSize {
		limit = MaxSRAPageSize
	}
	cr, view := s.reader()

	var start int
	switch {
	case q.Has("cursor") && q.Has("offset"):
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("rpc: cursor and offset are mutually exclusive"))
		return
	case q.Has("cursor"):
		cur, err := decodeCursor(q.Get("cursor"), cursorKindSRAs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		start = resolveSRACursor(cr, cur)
	default:
		offset, err := parseQueryInt(r, "offset", 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		if q.Has("offset") {
			deprecateOffsetParam(w, "/v1/sras?cursor=")
		}
		start = offset
	}

	// Cursor and offset requests that resolve to the same position share
	// one cache entry: the body depends only on (start, limit, view).
	key := fmt.Sprintf("sras:%d:%d", start, limit)
	s.serveRead(w, r, view, cacheRef{key: key}, func() (int, interface{}) {
		st := cr.State()
		refs := cr.SRAList(start, limit)
		resp := SRAListResponse{
			Total:  cr.SRACount(),
			Offset: start,
			SRAs:   make([]SRAResponse, 0, len(refs)),
		}
		for _, ref := range refs {
			info, err := s.contract.GetSRA(st, ref.ID)
			if err != nil {
				// The index and contract state move together under the
				// view (or the chain lock-step); a miss here is a
				// server-side inconsistency.
				return http.StatusInternalServerError, errEnvelope(CodeInternal, err)
			}
			resp.SRAs = append(resp.SRAs, SRAResponse{
				ID:                 ref.ID.String(),
				Provider:           info.Provider.String(),
				InsuranceRemaining: info.InsuranceRemaining.Ether(),
				BountyEther:        info.Bounty.Ether(),
				ReleaseBlock:       info.ReleaseBlock,
				ConfirmedVulns:     info.ConfirmedVulns,
				Reports:            len(cr.DetectionResults(ref.ID)),
			})
		}
		if next := start + len(refs); len(refs) > 0 && next < resp.Total {
			resp.NextOffset = &next
		}
		resp.NextCursor = nextSRACursor(cr, start, refs)
		return http.StatusOK, resp
	})
}

// BlockListResponse is a range of canonical blocks. NextCursor is set on
// open-ended requests (no explicit `to`, or a cursor): it resumes after
// the last delivered block, and on a caught-up page it is a poll token
// for blocks mined since.
type BlockListResponse struct {
	From       uint64          `json:"from"`
	To         uint64          `json:"to"`
	Head       uint64          `json:"head"`
	NextCursor string          `json:"nextCursor,omitempty"`
	Blocks     []BlockResponse `json:"blocks"`
}

func (s *Server) handleBlockList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cr, view := s.reader()
	head := cr.HeadNumber()

	if q.Has("cursor") {
		if q.Has("from") || q.Has("to") {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				errors.New("rpc: cursor and from/to are mutually exclusive"))
			return
		}
		cur, err := decodeCursor(q.Get("cursor"), cursorKindBlocks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		// Block numbers are fixed at seal time, so the anchor check is
		// exact: either the block just below the resume point is still the
		// one the client saw, or that history was reorged away and every
		// continuation would silently splice two forks — reject instead.
		if cur.pos > 0 {
			parent, err := cr.BlockByNumber(cur.pos - 1)
			if err != nil || parent.ID() != cur.lastID {
				writeErr(w, http.StatusBadRequest, CodeBadRequest,
					errors.New("rpc: cursor invalidated by a reorg; restart pagination from a finalized block"))
				return
			}
		}
		to := cur.pos + MaxBlockRangeSize - 1
		if to > head {
			to = head
		}
		s.serveBlockPage(w, r, view, cr, cur.pos, to, head, true)
		return
	}

	from, err := parseQueryInt(r, "from", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	to, err := parseQueryInt(r, "to", int(head))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if to < from {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("rpc: bad range: from %d after to %d", from, to))
		return
	}
	if q.Has("to") {
		// Explicitly bounded ranges keep the hard cap: the client named
		// both ends, so a too-wide range is a contract violation.
		if to-from+1 > MaxBlockRangeSize {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("rpc: range %d..%d spans %d blocks, cap is %d", from, to, to-from+1, MaxBlockRangeSize))
			return
		}
		s.serveBlockPage(w, r, view, cr, uint64(from), uint64(to), head, false)
		return
	}
	// Open-ended (`to` defaulted to the head): page instead of reject —
	// the first MaxBlockRangeSize blocks now, a cursor for the rest.
	if to-from+1 > MaxBlockRangeSize {
		to = from + MaxBlockRangeSize - 1
	}
	s.serveBlockPage(w, r, view, cr, uint64(from), uint64(to), head, true)
}

// serveBlockPage renders one canonical block range. tail marks an
// open-ended iteration, which mints a nextCursor resuming after the last
// delivered block (or re-polling the same position when the page is
// empty because the iteration caught up with the head).
func (s *Server) serveBlockPage(w http.ResponseWriter, r *http.Request, view *chain.ReadView, cr ChainReader, from, to, head uint64, tail bool) {
	key := fmt.Sprintf("blocks:%d:%d:%t", from, to, tail)
	s.serveRead(w, r, view, cacheRef{key: key}, func() (int, interface{}) {
		// The whole range resolves from one snapshot (one lock
		// acquisition in oracle mode), so a reorg mid-request can never
		// mix blocks from two forks into a single page.
		resp := BlockListResponse{From: from, To: to, Head: head}
		blocks := cr.BlocksRange(from, to)
		for _, blk := range blocks {
			resp.Blocks = append(resp.Blocks, blockResponse(blk))
		}
		if len(resp.Blocks) > 0 {
			resp.To = resp.Blocks[len(resp.Blocks)-1].Number
		}
		if tail {
			next := cursor{kind: cursorKindBlocks, headID: cr.Head().ID(), pos: from}
			if n := len(blocks); n > 0 {
				next.pos = blocks[n-1].Header.Number + 1
				next.lastID = blocks[n-1].ID()
			} else if from > 0 {
				if blk, err := cr.BlockByNumber(from - 1); err == nil {
					next.lastID = blk.ID()
				}
			}
			resp.NextCursor = encodeCursor(next)
		}
		return http.StatusOK, resp
	})
}

// SubmitRequest is the POST /tx body.
type SubmitRequest struct {
	TxHex string `json:"txHex"`
}

// SubmitResponse acknowledges a pooled transaction.
type SubmitResponse struct {
	TxHash string `json:"txHash"`
	Pooled bool   `json:"pooled"`
}

func (s *Server) handleSubmitTx(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad request body: %w", err))
		return
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(req.TxHex, "0x"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("rpc: bad tx hex: %w", err))
		return
	}
	tx, err := types.DecodeTx(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if err := s.node.SubmitTx(tx); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeTxRejected, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{TxHash: tx.Hash().String(), Pooled: true})
}

// ParseProofResponse reconstructs a light.TxProof (and the raw tx body)
// from a ProofResponse — the client side of GET /proof.
func ParseProofResponse(resp ProofResponse) (light.TxProof, []byte, error) {
	blockID, err := parseHash(resp.BlockID)
	if err != nil {
		return light.TxProof{}, nil, err
	}
	leaf, err := hex.DecodeString(resp.LeafHex)
	if err != nil {
		return light.TxProof{}, nil, fmt.Errorf("rpc: bad leaf hex: %w", err)
	}
	body, err := hex.DecodeString(resp.TxHex)
	if err != nil {
		return light.TxProof{}, nil, fmt.Errorf("rpc: bad tx hex: %w", err)
	}
	proof := light.TxProof{
		BlockID: blockID,
		TxBytes: leaf,
	}
	proof.Proof.LeafIndex = resp.LeafIndex
	proof.Proof.LeafCount = resp.LeafCount
	for _, s := range resp.Siblings {
		if len(s) < 2 || (s[0] != 'L' && s[0] != 'R') || s[1] != ':' {
			return light.TxProof{}, nil, fmt.Errorf("rpc: bad sibling entry %q", s)
		}
		raw, err := hex.DecodeString(s[2:])
		if err != nil || len(raw) != types.HashSize {
			return light.TxProof{}, nil, fmt.Errorf("rpc: bad sibling hash %q", s)
		}
		var sib merkle.Hash
		copy(sib[:], raw)
		proof.Proof.Steps = append(proof.Proof.Steps, merkle.ProofStep{
			Sibling: sib,
			Right:   s[0] == 'R',
		})
	}
	return proof, body, nil
}
