package rpc

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/light"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// env is a provider node with a mined detection lifecycle plus an RPC
// server in front of it.
type env struct {
	t        *testing.T
	server   *httptest.Server
	provider *node.ProviderNode
	sc       *contract.Contract
	alice    *wallet.Wallet
	detector *wallet.Wallet
	sra      *types.SRA
	dtxHash  types.Hash
}

func newEnv(t *testing.T) *env {
	t.Helper()
	alice := wallet.NewDeterministic("alice")
	detector := wallet.NewDeterministic("detector")
	verifier := detection.NewGroundTruthVerifier(false)
	sc := contract.New(contract.DefaultParams(), verifier)
	cfg := chain.DefaultConfig(sc)
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{
		alice.Address():    types.EtherAmount(5000),
		detector.Address(): types.EtherAmount(50),
	}
	prov, err := node.NewProvider("rpc-provider", wallet.NewDeterministic("miner"), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	e := &env{
		t:        t,
		provider: prov,
		sc:       sc,
		alice:    alice,
		detector: detector,
	}

	// Release an SRA and run one report pair through.
	img := detection.GenerateImage("fw", "1.0", detection.UniverseSpec{High: 2, Seed: 3})
	e.sra = &types.SRA{
		Provider:     alice.Address(),
		Name:         img.Name,
		Version:      img.Version,
		SystemHash:   img.Hash(),
		DownloadLink: "sc://fw",
		Insurance:    types.EtherAmount(100),
		Bounty:       types.EtherAmount(5),
	}
	if err := types.SignSRA(e.sra, alice); err != nil {
		t.Fatal(err)
	}
	verifier.Register(e.sra.ID, img)
	sraTx := types.NewSRATx(e.sra, 0, 2_000_000, 50*types.GWei)
	if err := types.SignTx(sraTx, alice); err != nil {
		t.Fatal(err)
	}
	if err := prov.SubmitTx(sraTx); err != nil {
		t.Fatal(err)
	}
	e.mine()

	detailed := &types.DetailedReport{
		SRAID:    e.sra.ID,
		Detector: detector.Address(),
		Wallet:   detector.Address(),
		Findings: []types.Finding{{VulnID: img.Vulns[0].ID, Severity: img.Vulns[0].Severity}},
	}
	if err := types.SignDetailedReport(detailed, detector); err != nil {
		t.Fatal(err)
	}
	initial := &types.InitialReport{
		SRAID:      e.sra.ID,
		Detector:   detector.Address(),
		DetailHash: detailed.CommitmentHash(),
		Wallet:     detector.Address(),
	}
	if err := types.SignInitialReport(initial, detector); err != nil {
		t.Fatal(err)
	}
	itx := types.NewInitialReportTx(initial, 0, 150_000, 50*types.GWei)
	if err := types.SignTx(itx, detector); err != nil {
		t.Fatal(err)
	}
	if err := prov.SubmitTx(itx); err != nil {
		t.Fatal(err)
	}
	e.mine()
	dtx := types.NewDetailedReportTx(detailed, 1, 150_000, 50*types.GWei)
	if err := types.SignTx(dtx, detector); err != nil {
		t.Fatal(err)
	}
	if err := prov.SubmitTx(dtx); err != nil {
		t.Fatal(err)
	}
	e.mine()
	e.dtxHash = dtx.Hash()

	e.server = httptest.NewServer(NewServer(prov, sc))
	t.Cleanup(e.server.Close)
	return e
}

func (e *env) mine() {
	e.t.Helper()
	head := e.provider.Chain().Head()
	if _, err := e.provider.MineBlock(head.Header.Time+15_000, 1000, 0, 0); err != nil {
		e.t.Fatal(err)
	}
}

// get decodes a JSON response into out and returns the status code.
func (e *env) get(path string, out interface{}) int {
	e.t.Helper()
	resp, err := http.Get(e.server.URL + path)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			e.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestStatusEndpoint(t *testing.T) {
	e := newEnv(t)
	var st StatusResponse
	if code := e.get("/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if st.HeadNumber != 3 {
		t.Errorf("head number %d, want 3", st.HeadNumber)
	}
	if st.HeadID == "" || st.TotalDifficulty == 0 {
		t.Error("status incomplete")
	}
}

func TestBlockEndpoint(t *testing.T) {
	e := newEnv(t)
	var blk BlockResponse
	if code := e.get("/block/1", &blk); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if blk.Number != 1 || len(blk.TxHashes) != 1 {
		t.Errorf("block response %+v", blk)
	}
	if code := e.get("/block/99", nil); code != http.StatusNotFound {
		t.Errorf("missing block returned %d", code)
	}
	if code := e.get("/block/notanumber", nil); code != http.StatusBadRequest {
		t.Errorf("bad number returned %d", code)
	}
}

func TestBalanceEndpoint(t *testing.T) {
	e := newEnv(t)
	var bal BalanceResponse
	if code := e.get("/balance/"+e.detector.Address().String(), &bal); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	// Detector paid gas twice and earned 5 ETH.
	if bal.Ether <= 50 || bal.Nonce != 2 {
		t.Errorf("balance %+v", bal)
	}
	if code := e.get("/balance/zzzz", nil); code != http.StatusBadRequest {
		t.Errorf("bad address returned %d", code)
	}
}

func TestReceiptEndpoint(t *testing.T) {
	e := newEnv(t)
	var rec ReceiptResponse
	if code := e.get("/receipt/"+e.dtxHash.String(), &rec); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if !rec.Success || rec.Kind != "detailed-report" || rec.PaidGwei != uint64(types.EtherAmount(5)) {
		t.Errorf("receipt %+v", rec)
	}
	ghost := types.HashBytes([]byte("ghost"))
	if code := e.get("/receipt/"+ghost.String(), nil); code != http.StatusNotFound {
		t.Errorf("ghost receipt returned %d", code)
	}
}

func TestSRAAndReferenceEndpoints(t *testing.T) {
	e := newEnv(t)
	var sra SRAResponse
	if code := e.get("/sra/"+e.sra.ID.String(), &sra); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if sra.ConfirmedVulns != 1 || sra.InsuranceRemaining != 95 || sra.Reports != 2 {
		t.Errorf("sra response %+v", sra)
	}

	var ref ReferenceResponse
	if code := e.get("/reference/"+e.sra.ID.String(), &ref); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if ref.SafeToDeploy || ref.ConfirmedVulns != 1 || ref.BySeverity["high"] != 1 {
		t.Errorf("reference response %+v", ref)
	}
}

func TestProofEndpointVerifiesWithLightClient(t *testing.T) {
	e := newEnv(t)
	var pr ProofResponse
	if code := e.get("/proof/"+e.dtxHash.String(), &pr); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	proof, body, err := ParseProofResponse(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Sync a light client from the same node and verify the proof.
	blocks := e.provider.Chain().CanonicalBlocks()
	hc := light.NewHeaderChain(blocks[0].Header, true)
	for _, blk := range blocks[1:] {
		if err := hc.AddHeader(blk.Header); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := hc.VerifyTxWithBody(proof, body, 1)
	if err != nil {
		t.Fatalf("light client rejected RPC proof: %v", err)
	}
	if tx.Hash() != e.dtxHash {
		t.Error("proved a different transaction")
	}
}

func TestProofEndpointMissingTx(t *testing.T) {
	e := newEnv(t)
	ghost := types.HashBytes([]byte("ghost"))
	if code := e.get("/proof/"+ghost.String(), nil); code != http.StatusNotFound {
		t.Errorf("ghost proof returned %d", code)
	}
}

func TestSubmitTxEndpoint(t *testing.T) {
	e := newEnv(t)
	tx := &types.Transaction{
		Kind:     types.TxTransfer,
		Nonce:    1,
		To:       types.Address{9},
		Value:    1,
		GasLimit: 21_000,
		GasPrice: 50 * types.GWei,
	}
	if err := types.SignTx(tx, e.alice); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(SubmitRequest{TxHex: hex.EncodeToString(types.EncodeTx(tx))})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.server.URL+"/tx", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Pooled || sr.TxHash != tx.Hash().String() {
		t.Errorf("submit response %+v", sr)
	}
	if e.provider.PoolLen() != 1 {
		t.Error("tx not pooled")
	}
}

func TestSubmitTxRejectsGarbage(t *testing.T) {
	e := newEnv(t)
	for _, body := range []string{
		`not json`,
		`{"txHex":"zz"}`,
		fmt.Sprintf(`{"txHex":"%s"}`, hex.EncodeToString([]byte{0xc0})),
	} {
		resp, err := http.Post(e.server.URL+"/tx", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("garbage body %q accepted", body)
		}
	}
}
