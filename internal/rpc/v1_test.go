package rpc

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func (e *env) getRaw(path string) (*http.Response, []byte) {
	e.t.Helper()
	resp, err := http.Get(e.server.URL + path)
	if err != nil {
		e.t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		e.t.Fatal(err)
	}
	return resp, body
}

// releaseSRA signs, submits and mines one more release from alice.
func (e *env) releaseSRA(name string, nonce uint64) *types.SRA {
	e.t.Helper()
	sra := &types.SRA{
		Provider:     e.alice.Address(),
		Name:         name,
		Version:      "1.0",
		SystemHash:   types.HashBytes([]byte(name)),
		DownloadLink: "sc://" + name,
		Insurance:    types.EtherAmount(100),
		Bounty:       types.EtherAmount(5),
	}
	if err := types.SignSRA(sra, e.alice); err != nil {
		e.t.Fatal(err)
	}
	tx := types.NewSRATx(sra, nonce, 2_000_000, 50*types.GWei)
	if err := types.SignTx(tx, e.alice); err != nil {
		e.t.Fatal(err)
	}
	if err := e.provider.SubmitTx(tx); err != nil {
		e.t.Fatal(err)
	}
	e.mine()
	return sra
}

// TestV1RoutesAndDeprecatedAliases walks every migrated route: the /v1
// path must answer without deprecation markers, the legacy path must serve
// the identical body plus the Deprecation header and a Link to its
// successor.
func TestV1RoutesAndDeprecatedAliases(t *testing.T) {
	e := newEnv(t)
	paths := []string{
		"/status",
		"/block/1",
		"/balance/" + e.alice.Address().String(),
		"/receipt/" + e.dtxHash.String(),
		"/sra/" + e.sra.ID.String(),
		"/reference/" + e.sra.ID.String(),
		"/proof/" + e.dtxHash.String(),
	}
	for _, path := range paths {
		v1Resp, v1Body := e.getRaw("/v1" + path)
		if v1Resp.StatusCode != http.StatusOK {
			t.Errorf("GET /v1%s: status %d", path, v1Resp.StatusCode)
		}
		if v1Resp.Header.Get("Deprecation") != "" {
			t.Errorf("GET /v1%s: carries a Deprecation header", path)
		}

		legacyResp, legacyBody := e.getRaw(path)
		if legacyResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, legacyResp.StatusCode)
		}
		if legacyResp.Header.Get("Deprecation") != "true" {
			t.Errorf("GET %s: missing Deprecation header", path)
		}
		if link := legacyResp.Header.Get("Link"); !strings.Contains(link, "/v1") ||
			!strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("GET %s: Link header %q does not name the /v1 successor", path, link)
		}
		if string(v1Body) != string(legacyBody) {
			t.Errorf("GET %s: legacy body differs from /v1 body", path)
		}
	}

	// The legacy POST /tx alias is deprecated too — the marker is stamped
	// even on error responses.
	resp, err := http.Post(e.server.URL+"/tx", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("POST /tx: missing Deprecation header")
	}
}

func decodeErrBody(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error response %q is not the envelope: %v", body, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error envelope incomplete: %q", body)
	}
	return env.Error
}

func TestErrorEnvelopeCodes(t *testing.T) {
	e := newEnv(t)
	ghost := types.HashBytes([]byte("ghost"))
	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/block/notanumber", http.StatusBadRequest, CodeBadRequest},
		{"/v1/block/99", http.StatusNotFound, CodeNotFound},
		{"/v1/balance/zzzz", http.StatusBadRequest, CodeBadRequest},
		{"/v1/receipt/" + ghost.String(), http.StatusNotFound, CodeNotFound},
		{"/v1/sra/" + ghost.String(), http.StatusNotFound, CodeNotFound},
		{"/v1/proof/" + ghost.String(), http.StatusNotFound, CodeNotFound},
		{"/v1/sras?limit=-1", http.StatusBadRequest, CodeBadRequest},
		{"/v1/blocks?from=9&to=2", http.StatusBadRequest, CodeBadRequest},
	} {
		resp, body := e.getRaw(tc.path)
		if resp.StatusCode != tc.status {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if got := decodeErrBody(t, body); got.Code != tc.code {
			t.Errorf("GET %s: code %q, want %q", tc.path, got.Code, tc.code)
		}
	}

	// A well-formed transaction that fails admission maps to tx_rejected.
	pauper := wallet.NewDeterministic("pauper")
	tx := &types.Transaction{
		Kind:     types.TxTransfer,
		To:       types.Address{1},
		Value:    types.EtherAmount(1_000_000),
		GasLimit: 21_000,
		GasPrice: 50 * types.GWei,
	}
	if err := types.SignTx(tx, pauper); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(SubmitRequest{TxHex: hex.EncodeToString(types.EncodeTx(tx))})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.server.URL+"/v1/tx", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unfunded tx: status %d, want 422", resp.StatusCode)
	}
	if got := decodeErrBody(t, body); got.Code != CodeTxRejected {
		t.Errorf("unfunded tx: code %q, want %q", got.Code, CodeTxRejected)
	}
}

func TestSRAListPagination(t *testing.T) {
	e := newEnv(t)
	// The env released one SRA (alice nonce 0); add three more.
	extra := []*types.SRA{
		e.releaseSRA("fw-two", 1),
		e.releaseSRA("fw-three", 2),
		e.releaseSRA("fw-four", 3),
	}

	var page SRAListResponse
	if code := e.get("/v1/sras?limit=2", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if page.Total != 4 || page.Offset != 0 || len(page.SRAs) != 2 {
		t.Fatalf("first page %+v, want total 4 with 2 entries", page)
	}
	if page.NextOffset == nil || *page.NextOffset != 2 {
		t.Fatalf("first page nextOffset %v, want 2", page.NextOffset)
	}
	// Release order: the env SRA landed in block 1, then fw-two in block 4.
	if page.SRAs[0].ID != e.sra.ID.String() || page.SRAs[0].ReleaseBlock != 1 {
		t.Errorf("first entry %+v, want the env SRA at block 1", page.SRAs[0])
	}
	if page.SRAs[0].Reports != 2 {
		t.Errorf("env SRA lists %d reports, want 2", page.SRAs[0].Reports)
	}
	if page.SRAs[1].ID != extra[0].ID.String() {
		t.Errorf("second entry %s, want fw-two", page.SRAs[1].ID)
	}

	if code := e.get("/v1/sras?offset=2&limit=2", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if len(page.SRAs) != 2 || page.NextOffset != nil {
		t.Errorf("last page %+v, want 2 entries and null nextOffset", page)
	}
	if page.SRAs[1].ID != extra[2].ID.String() {
		t.Errorf("final entry %s, want fw-four", page.SRAs[1].ID)
	}

	if code := e.get("/v1/sras?offset=10", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if len(page.SRAs) != 0 || page.NextOffset != nil || page.Total != 4 {
		t.Errorf("past-the-end page %+v, want empty with total 4", page)
	}
}

func TestBlockListRange(t *testing.T) {
	e := newEnv(t) // head is block 3

	var page BlockListResponse
	if code := e.get("/v1/blocks", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if page.From != 0 || page.To != 3 || page.Head != 3 || len(page.Blocks) != 4 {
		t.Fatalf("default range %+v, want blocks 0..3", page)
	}

	if code := e.get("/v1/blocks?from=1&to=2", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if len(page.Blocks) != 2 || page.Blocks[0].Number != 1 || page.Blocks[1].Number != 2 {
		t.Errorf("range 1..2 returned %+v", page)
	}

	// A range reaching past the head truncates; To reports the last block
	// actually returned.
	if code := e.get("/v1/blocks?from=2&to=90", &page); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if len(page.Blocks) != 2 || page.To != 3 {
		t.Errorf("truncated range %+v, want blocks 2..3 with to=3", page)
	}

	if code := e.get("/v1/blocks?from=0&to=200", nil); code != http.StatusBadRequest {
		t.Errorf("oversized range returned %d, want 400", code)
	}

	// The list endpoints are part of the redesign: no legacy alias exists.
	if code := e.get("/blocks", nil); code != http.StatusNotFound {
		t.Errorf("legacy /blocks returned %d, want 404", code)
	}
}
