package rpc

import (
	"encoding/hex"
	"sync"
	"sync/atomic"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// respCache is the read-through response cache over the lock-free view
// path. It stores fully encoded JSON bodies in two tiers:
//
//   - finalized: objects whose bytes can never change because their key
//     embeds the identity of a block ≥ K deep (a block summary keyed by
//     block id, a tx proof keyed by block id + tx hash). Content
//     addressing makes the tier reorg-safe by construction — a fork
//     switch changes which keys get asked for, never what a key means —
//     so entries live until capacity rotation evicts them.
//
//   - head: answers that depend on the current head (/v1/status,
//     balances, receipts with live confirmation counts, SRA pages).
//     One generation per head id; the first request after a snapshot
//     swap CASes in a fresh generation, invalidating the whole previous
//     one wholesale. Within a generation every answer is immutable
//     because the underlying ReadView is.
//
// Both tiers collapse concurrent misses for one key onto a single build
// (singleflight): losers block on the winner's ready channel and serve
// its bytes. Lookups are lock-free (atomic generation pointers +
// sync.Map); the only mutex guards finalized-tier rotation.
type respCache struct {
	gen atomic.Pointer[headGen]

	// Finalized tier: two rotating generations bound total residency to
	// ~2×permGenCap entries without per-entry bookkeeping. Inserts go to
	// cur; when cur fills, cur shifts to old and the previous old is
	// dropped. Hits in old promote back into cur.
	permMu  sync.Mutex
	permCur atomic.Pointer[permGen]
	permOld atomic.Pointer[permGen]
}

// permGenCap bounds one finalized-tier generation. At ~1 KiB per encoded
// body the two live generations hold roughly 8 MiB.
const permGenCap = 4096

// headGen is the head-keyed generation: every entry was computed against
// the ReadView whose head id names the generation.
type headGen struct {
	headID  types.Hash
	count   atomic.Int64
	entries sync.Map // string → *cacheEntry
}

// permGen is one finalized-tier generation.
type permGen struct {
	count   atomic.Int64
	entries sync.Map // string → *cacheEntry
}

// cacheEntry is one encoded response. ready closes once status/body/etag
// are final; a zero status after ready means the build died (panicked)
// and waiters must build for themselves, uncached.
type cacheEntry struct {
	ready  chan struct{}
	status int
	body   []byte
	etag   string
}

func newRespCache() *respCache {
	c := &respCache{}
	c.permCur.Store(&permGen{})
	c.permOld.Store(&permGen{})
	return c
}

// etagFor derives the strong validator for a response body.
func etagFor(body []byte) string {
	sum := keccak.Sum256(body)
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// generation returns the head-keyed generation for headID, swapping in a
// fresh one — and discarding the stale generation wholesale — when the
// published view has moved on.
func (c *respCache) generation(headID types.Hash) *headGen {
	for {
		g := c.gen.Load()
		if g != nil && g.headID == headID {
			return g
		}
		ng := &headGen{headID: headID}
		if c.gen.CompareAndSwap(g, ng) {
			if g != nil {
				mCacheEvict.Add(uint64(g.count.Load()))
			}
			return ng
		}
	}
}

// headGetOrBuild serves key from the generation pinned to the given head.
func (c *respCache) headGetOrBuild(headID types.Hash, key string, build func() (int, []byte)) *cacheEntry {
	g := c.generation(headID)
	e, hit := getOrBuildKeyed(&g.entries, &g.count, key, build)
	if hit {
		mCacheHitHead.Inc()
	} else {
		mCacheMissHead.Inc()
	}
	return e
}

// permGetOrBuild serves a content-addressed key from the finalized tier.
func (c *respCache) permGetOrBuild(key string, build func() (int, []byte)) *cacheEntry {
	cur := c.permCur.Load()
	if v, ok := cur.entries.Load(key); ok {
		e := v.(*cacheEntry)
		<-e.ready
		mCacheHitPerm.Inc()
		return e
	}
	if v, ok := c.permOld.Load().entries.Load(key); ok {
		e := v.(*cacheEntry)
		<-e.ready
		// Promote: hot finalized objects survive the next rotation.
		if _, already := cur.entries.LoadOrStore(key, e); !already {
			cur.count.Add(1)
		}
		mCacheHitPerm.Inc()
		return e
	}
	e, hit := getOrBuildKeyed(&cur.entries, &cur.count, key, build)
	if hit {
		mCacheHitPerm.Inc()
		return e
	}
	mCacheMissPerm.Inc()
	c.maybeRotate()
	return e
}

// maybeRotate shifts a full finalized generation down, dropping the
// oldest one. Lookups racing a rotation stay correct: an entry is always
// reachable through cur or old until the generation holding it is
// discarded, and a discarded entry just costs a rebuild.
func (c *respCache) maybeRotate() {
	if c.permCur.Load().count.Load() < permGenCap {
		return
	}
	c.permMu.Lock()
	defer c.permMu.Unlock()
	cur := c.permCur.Load()
	if cur.count.Load() < permGenCap {
		return // lost the race to another rotator
	}
	dropped := c.permOld.Load()
	c.permOld.Store(cur)
	c.permCur.Store(&permGen{})
	mCacheEvict.Add(uint64(dropped.count.Load()))
}

// getOrBuildKeyed is the singleflight core shared by both tiers: return
// key's entry from m, or install a pending entry and build it. The
// returned entry is always ready.
func getOrBuildKeyed(m *sync.Map, count *atomic.Int64, key string, build func() (int, []byte)) (e *cacheEntry, hit bool) {
	fresh := &cacheEntry{ready: make(chan struct{})}
	actual, loaded := m.LoadOrStore(key, fresh)
	if loaded {
		e = actual.(*cacheEntry)
		<-e.ready
		return e, true
	}
	// We won the build. If build panics, the deferred close publishes the
	// zero status ("not cached, build yourself") and the entry is removed
	// so a later request retries.
	done := false
	defer func() {
		if !done {
			m.Delete(key)
		}
		close(fresh.ready)
	}()
	status, body := build()
	fresh.status, fresh.body = status, body
	fresh.etag = etagFor(body)
	done = true
	count.Add(1)
	return fresh, false
}
