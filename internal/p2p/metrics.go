package p2p

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

var (
	mDelivered   = telemetry.GetCounter("smartcrowd_p2p_deliveries_total", telemetry.L("outcome", "delivered"))
	mDropped     = telemetry.GetCounter("smartcrowd_p2p_deliveries_total", telemetry.L("outcome", "dropped"))
	mBlocked     = telemetry.GetCounter("smartcrowd_p2p_deliveries_total", telemetry.L("outcome", "blocked"))
	mFanoutPeers = telemetry.GetHistogram("smartcrowd_p2p_broadcast_fanout")
	mInFlight    = telemetry.GetGauge("smartcrowd_p2p_in_flight")

	mMalformedBlockReq    = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "block-request"))
	mMalformedManifest    = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "snap-manifest"))
	mMalformedChunkReq    = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "snap-chunk-request"))
	mMalformedChunk       = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "snap-chunk"))
	mMalformedRangeReq    = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "range-request"))
	mMalformedRangeBlocks = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "range-blocks"))
	mMalformedAnnounce    = telemetry.GetCounter("smartcrowd_p2p_malformed_total", telemetry.L("kind", "head-announce"))
)

func init() {
	telemetry.SetHelp("smartcrowd_p2p_deliveries_total", "gossip deliveries, by outcome (dropped = loss model, blocked = partition)")
	telemetry.SetHelp("smartcrowd_p2p_broadcast_fanout", "peers reached per Broadcast call")
	telemetry.SetHelp("smartcrowd_p2p_in_flight", "messages currently queued for future delivery")
	telemetry.SetHelp("smartcrowd_p2p_malformed_total", "protocol payloads rejected by validation, by kind")
}
