package p2p

import (
	"bytes"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Native fuzz targets for the snap-sync and range-sync decoders — the
// payloads a hostile peer controls byte-for-byte once a frame is
// accepted. Mirrors wire's FuzzReadFrame contract: arbitrary bytes must
// never panic, every accepted value must respect its declared bound, and
// the codecs are canonical (re-encode reproduces the input exactly).
// Seed corpora live under testdata/fuzz/; CI runs each target for a 10s
// smoke via `make fuzz-smoke`.

func fuzzHash(b byte) types.Hash {
	var h types.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

// FuzzParseSnapManifest feeds arbitrary payloads to the manifest
// decoder. An accepted manifest must respect the state-size and
// chunk-count caps, never pair a non-empty state with a zero chunk
// size, and re-encode to exactly the input.
func FuzzParseSnapManifest(f *testing.F) {
	f.Add(EncodeSnapManifest(SnapManifest{
		Height:     42,
		BlockID:    fuzzHash(0xaa),
		StateRoot:  fuzzHash(0xbb),
		StateSize:  1 << 20,
		ChunkSize:  1 << 16,
		HeadNumber: 99,
		HeadID:     fuzzHash(0xcc),
	}))
	f.Add(EncodeSnapManifest(SnapManifest{})) // empty snapshot, all zero
	f.Add(EncodeSnapManifest(SnapManifest{
		StateSize: MaxSnapStateSize,
		ChunkSize: MaxSnapStateSize / MaxSnapChunks,
	})) // exactly at both caps
	f.Add(EncodeSnapManifest(SnapManifest{StateSize: MaxSnapStateSize + 1, ChunkSize: 1 << 16})) // state over cap
	f.Add(EncodeSnapManifest(SnapManifest{StateSize: 1 << 20}))                                  // zero chunk size
	f.Add(EncodeSnapManifest(SnapManifest{StateSize: 1 << 20, ChunkSize: 1}))                    // chunk count over cap
	f.Add([]byte(""))                                                                            // empty
	f.Add(bytes.Repeat([]byte{0}, manifestSize-1))                                               // one byte short
	f.Add(bytes.Repeat([]byte{0xff}, manifestSize+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseSnapManifest(data)
		if err != nil {
			return
		}
		if m.StateSize > MaxSnapStateSize {
			t.Fatalf("accepted manifest declares %d state bytes (max %d)", m.StateSize, MaxSnapStateSize)
		}
		if n := m.Chunks(); n > MaxSnapChunks {
			t.Fatalf("accepted manifest declares %d chunks (max %d)", n, MaxSnapChunks)
		}
		if m.StateSize > 0 && m.ChunkSize == 0 {
			t.Fatalf("accepted manifest with %d state bytes but zero chunk size", m.StateSize)
		}
		if got := EncodeSnapManifest(m); !bytes.Equal(got, data) {
			t.Fatalf("accepted manifest is not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}

// FuzzParseSnapChunkRequest exercises the fixed-size request decoder.
// Accepted requests must re-encode to exactly the input.
func FuzzParseSnapChunkRequest(f *testing.F) {
	f.Add(EncodeSnapChunkRequest(fuzzHash(0xaa), 0))
	f.Add(EncodeSnapChunkRequest(fuzzHash(0x01), MaxSnapChunks-1))
	f.Add([]byte(""))                                   // empty
	f.Add(bytes.Repeat([]byte{0}, types.HashSize+3))    // one byte short
	f.Add(bytes.Repeat([]byte{0xff}, types.HashSize+5)) // one byte long

	f.Fuzz(func(t *testing.T, data []byte) {
		blockID, index, err := ParseSnapChunkRequest(data)
		if err != nil {
			return
		}
		if got := EncodeSnapChunkRequest(blockID, index); !bytes.Equal(got, data) {
			t.Fatalf("accepted chunk request is not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}

// FuzzParseSnapChunk exercises the chunk decoder. Accepted chunks carry
// non-empty data (empty chunks are malformed by contract) and re-encode
// to exactly the input.
func FuzzParseSnapChunk(f *testing.F) {
	f.Add(EncodeSnapChunk(fuzzHash(0xaa), 3, []byte("chunk-bytes")))
	f.Add(EncodeSnapChunk(fuzzHash(0x00), 0, []byte{0x00}))
	f.Add([]byte(""))                                // empty
	f.Add(EncodeSnapChunk(fuzzHash(0xbb), 7, nil))   // header only, no data — malformed
	f.Add(bytes.Repeat([]byte{0}, types.HashSize+3)) // shorter than the header

	f.Fuzz(func(t *testing.T, data []byte) {
		blockID, index, chunk, err := ParseSnapChunk(data)
		if err != nil {
			return
		}
		if len(chunk) == 0 {
			t.Fatal("accepted snap chunk with empty data")
		}
		if got := EncodeSnapChunk(blockID, index, chunk); !bytes.Equal(got, data) {
			t.Fatalf("accepted snap chunk is not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}

// FuzzParseRangeBlocks exercises the length-prefixed block-list decoder
// — the PR 9 bug class where a declared count must never out-allocate
// the frame that already arrived. Accepted lists must respect the count
// cap, their records must fit inside the payload, and the codec is
// canonical.
func FuzzParseRangeBlocks(f *testing.F) {
	f.Add(EncodeRangeBlocks(nil))
	f.Add(EncodeRangeBlocks([][]byte{[]byte("block-one"), []byte("block-two")}))
	f.Add(EncodeRangeBlocks([][]byte{{}, []byte("after-empty-record")}))
	f.Add([]byte(""))                          // shorter than the count
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})      // count far over maxRangeCount
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 1, 'x'}) // declares 2 records, carries 1
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9, 'x'}) // record declares more bytes than remain
	f.Add([]byte{0, 0, 0, 0, 'x'})             // trailing bytes after the last record

	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := ParseRangeBlocks(data)
		if err != nil {
			return
		}
		if len(blocks) > maxRangeCount {
			t.Fatalf("accepted %d range blocks (max %d)", len(blocks), maxRangeCount)
		}
		total := 4
		for _, b := range blocks {
			total += 4 + len(b)
		}
		if total != len(data) {
			t.Fatalf("accepted records cover %d bytes of a %d-byte payload", total, len(data))
		}
		if got := EncodeRangeBlocks(blocks); !bytes.Equal(got, data) {
			t.Fatalf("accepted range blocks are not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}
