package p2p

import (
	"errors"
	"testing"
)

func TestJoinAndNodes(t *testing.T) {
	n := New(Config{})
	n.Join("b")
	n.Join("a")
	n.Join("a") // idempotent
	ids := n.Nodes()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("Nodes() = %v", ids)
	}
}

func TestSendInstantDelivery(t *testing.T) {
	n := New(Config{})
	n.Join("a")
	n.Join("b")
	if err := n.Send("a", "b", Message{Kind: MsgTx, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	n.AdvanceTo(0)
	msgs := n.Receive("b")
	if len(msgs) != 1 || msgs[0].From != "a" || string(msgs[0].Payload) != "x" {
		t.Errorf("msgs = %+v", msgs)
	}
	// Drained.
	if len(n.Receive("b")) != 0 {
		t.Error("Receive did not drain")
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := New(Config{})
	n.Join("a")
	if err := n.Send("a", "ghost", Message{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
}

func TestBroadcastExcludesSender(t *testing.T) {
	n := New(Config{})
	for _, id := range []NodeID{"a", "b", "c"} {
		n.Join(id)
	}
	n.Broadcast("a", Message{Kind: MsgBlock, Payload: []byte("blk")})
	n.AdvanceTo(0)
	if len(n.Receive("a")) != 0 {
		t.Error("sender received its own broadcast")
	}
	for _, id := range []NodeID{"b", "c"} {
		if len(n.Receive(id)) != 1 {
			t.Errorf("%s missed the broadcast", id)
		}
	}
}

func TestLatencyHoldsDelivery(t *testing.T) {
	n := New(Config{MinLatency: 100, MaxLatency: 100})
	n.Join("a")
	n.Join("b")
	_ = n.Send("a", "b", Message{Kind: MsgTx})
	n.AdvanceTo(99)
	if len(n.Receive("b")) != 0 {
		t.Error("message delivered before latency elapsed")
	}
	n.AdvanceTo(100)
	if len(n.Receive("b")) != 1 {
		t.Error("message not delivered at latency bound")
	}
}

func TestDeliveryOrderDeterministic(t *testing.T) {
	runOnce := func() []string {
		n := New(Config{MinLatency: 1, MaxLatency: 50, Seed: 99})
		n.Join("a")
		n.Join("b")
		for i := 0; i < 20; i++ {
			_ = n.Send("a", "b", Message{Kind: MsgTx, Payload: []byte{byte(i)}})
		}
		n.AdvanceTo(1000)
		var order []string
		for _, m := range n.Receive("b") {
			order = append(order, string(m.Payload))
		}
		return order
	}
	a, b := runOnce(), runOnce()
	if len(a) != 20 {
		t.Fatalf("delivered %d, want 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("delivery order not deterministic across identical runs")
		}
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 0.5, Seed: 42})
	n.Join("a")
	n.Join("b")
	const total = 2000
	for i := 0; i < total; i++ {
		_ = n.Send("a", "b", Message{Kind: MsgTx})
	}
	n.AdvanceTo(0)
	got := len(n.Receive("b"))
	if got < total/3 || got > 2*total/3 {
		t.Errorf("delivered %d of %d with 50%% drop", got, total)
	}
	st := n.Stats()
	if st.Dropped+st.Delivered != total {
		t.Errorf("stats don't add up: %+v", st)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New(Config{})
	for _, id := range []NodeID{"a", "b", "c"} {
		n.Join(id)
	}
	n.Partition([]NodeID{"a"}, []NodeID{"b", "c"})

	_ = n.Send("a", "b", Message{Kind: MsgTx}) // across partition: blocked
	_ = n.Send("b", "c", Message{Kind: MsgTx}) // same partition: delivered
	n.AdvanceTo(0)
	if len(n.Receive("b")) != 0 {
		t.Error("message crossed partition")
	}
	if len(n.Receive("c")) != 1 {
		t.Error("intra-partition message lost")
	}
	if n.Stats().Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", n.Stats().Blocked)
	}

	n.Heal()
	_ = n.Send("a", "b", Message{Kind: MsgTx})
	n.AdvanceTo(0)
	if len(n.Receive("b")) != 1 {
		t.Error("message blocked after heal")
	}
}

func TestPendingDeliveries(t *testing.T) {
	n := New(Config{MinLatency: 10, MaxLatency: 10})
	n.Join("a")
	n.Join("b")
	_ = n.Send("a", "b", Message{Kind: MsgTx})
	if n.PendingDeliveries() != 1 {
		t.Error("in-flight count wrong")
	}
	n.AdvanceTo(10)
	if n.PendingDeliveries() != 0 {
		t.Error("in-flight not cleared after delivery")
	}
}

func TestTimeNeverRewinds(t *testing.T) {
	n := New(Config{})
	n.Join("a")
	n.AdvanceTo(100)
	n.AdvanceTo(50)
	if n.Now() != 100 {
		t.Errorf("time rewound to %d", n.Now())
	}
}

func TestMsgKindString(t *testing.T) {
	if MsgTx.String() != "tx" || MsgBlock.String() != "block" {
		t.Error("kind names wrong")
	}
	if MsgKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
