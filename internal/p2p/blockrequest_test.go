package p2p

import (
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestBlockRequestRoundTrip(t *testing.T) {
	id := types.HashBytes([]byte("block-seven"))
	got, err := ParseBlockRequest(EncodeBlockRequest(id))
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Errorf("round trip returned %s, want %s", got.Short(), id.Short())
	}
}

func TestParseBlockRequestRejectsBadLengths(t *testing.T) {
	valid := EncodeBlockRequest(types.Hash{1})
	for _, bad := range [][]byte{
		nil,
		{},
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0x00),
	} {
		if _, err := ParseBlockRequest(bad); err == nil {
			t.Errorf("payload of %d bytes accepted, want exactly %d", len(bad), types.HashSize)
		}
	}
}
