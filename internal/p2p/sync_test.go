package p2p

import (
	"bytes"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestSnapManifestRoundTrip(t *testing.T) {
	m := SnapManifest{
		Height:     512,
		BlockID:    types.Hash{1, 2, 3},
		StateRoot:  types.Hash{4, 5, 6},
		StateSize:  3<<20 + 17,
		ChunkSize:  1 << 20,
		HeadNumber: 530,
		HeadID:     types.Hash{7, 8, 9},
	}
	got, err := ParseSnapManifest(EncodeSnapManifest(m))
	if err != nil {
		t.Fatalf("ParseSnapManifest: %v", err)
	}
	if got != m {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
	}
	if got.Chunks() != 4 {
		t.Fatalf("Chunks() = %d, want 4", got.Chunks())
	}
}

func TestSnapManifestRejects(t *testing.T) {
	base := EncodeSnapManifest(SnapManifest{Height: 1, StateSize: 100, ChunkSize: 10})
	if _, err := ParseSnapManifest(base[:len(base)-1]); err == nil {
		t.Error("short manifest accepted")
	}
	if _, err := ParseSnapManifest(append(base, 0)); err == nil {
		t.Error("long manifest accepted")
	}
	huge := EncodeSnapManifest(SnapManifest{StateSize: MaxSnapStateSize + 1, ChunkSize: 1})
	if _, err := ParseSnapManifest(huge); err == nil {
		t.Error("oversized state size accepted")
	}
	zeroChunk := EncodeSnapManifest(SnapManifest{StateSize: 100})
	if _, err := ParseSnapManifest(zeroChunk); err == nil {
		t.Error("zero chunk size with nonzero state accepted")
	}
	// A tiny chunk size on a huge blob demands ~2^30 chunk round-trips and
	// a matching slice-header allocation on the requester: rejected.
	tinyChunks := EncodeSnapManifest(SnapManifest{Height: 1, StateSize: MaxSnapStateSize, ChunkSize: 1})
	if _, err := ParseSnapManifest(tinyChunks); err == nil {
		t.Error("manifest with 2^30 chunks accepted")
	}
	// Exactly at the chunk cap is legal.
	atCap := EncodeSnapManifest(SnapManifest{Height: 1, StateSize: MaxSnapStateSize, ChunkSize: MaxSnapStateSize / MaxSnapChunks})
	if m, err := ParseSnapManifest(atCap); err != nil {
		t.Errorf("manifest at the chunk cap rejected: %v", err)
	} else if m.Chunks() != MaxSnapChunks {
		t.Errorf("Chunks() = %d, want %d", m.Chunks(), MaxSnapChunks)
	}
	// Empty state with zero chunk size is legal (a genesis-only server).
	if _, err := ParseSnapManifest(EncodeSnapManifest(SnapManifest{})); err != nil {
		t.Errorf("empty manifest rejected: %v", err)
	}
}

func TestSnapChunkRoundTrip(t *testing.T) {
	id := types.Hash{0xaa}
	data := []byte("chunk payload bytes")
	gotID, idx, gotData, err := ParseSnapChunk(EncodeSnapChunk(id, 7, data))
	if err != nil {
		t.Fatalf("ParseSnapChunk: %v", err)
	}
	if gotID != id || idx != 7 || !bytes.Equal(gotData, data) {
		t.Fatalf("round trip mismatch: %v %d %q", gotID, idx, gotData)
	}

	reqID, reqIdx, err := ParseSnapChunkRequest(EncodeSnapChunkRequest(id, 9))
	if err != nil {
		t.Fatalf("ParseSnapChunkRequest: %v", err)
	}
	if reqID != id || reqIdx != 9 {
		t.Fatalf("request round trip mismatch: %v %d", reqID, reqIdx)
	}
}

func TestSnapChunkRejects(t *testing.T) {
	if _, _, _, err := ParseSnapChunk(EncodeSnapChunk(types.Hash{}, 0, nil)); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, _, _, err := ParseSnapChunk(make([]byte, types.HashSize)); err == nil {
		t.Error("truncated chunk accepted")
	}
	if _, _, err := ParseSnapChunkRequest(make([]byte, types.HashSize+3)); err == nil {
		t.Error("short chunk request accepted")
	}
}

func TestRangeRequestRoundTrip(t *testing.T) {
	from, to, err := ParseRangeRequest(EncodeRangeRequest(10, 200))
	if err != nil {
		t.Fatalf("ParseRangeRequest: %v", err)
	}
	if from != 10 || to != 200 {
		t.Fatalf("round trip mismatch: [%d, %d]", from, to)
	}
	if _, _, err := ParseRangeRequest(EncodeRangeRequest(5, 5)); err != nil {
		t.Errorf("single-block range rejected: %v", err)
	}
	if _, _, err := ParseRangeRequest(EncodeRangeRequest(6, 5)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := ParseRangeRequest(make([]byte, 15)); err == nil {
		t.Error("short range request accepted")
	}
}

func TestRangeBlocksRoundTrip(t *testing.T) {
	blocks := [][]byte{[]byte("block-one"), {}, []byte("a longer third block record")}
	got, err := ParseRangeBlocks(EncodeRangeBlocks(blocks))
	if err != nil {
		t.Fatalf("ParseRangeBlocks: %v", err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d records, want %d", len(got), len(blocks))
	}
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
	empty, err := ParseRangeBlocks(EncodeRangeBlocks(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty range blocks: %v %d", err, len(empty))
	}
}

func TestRangeBlocksRejects(t *testing.T) {
	valid := EncodeRangeBlocks([][]byte{[]byte("abc")})
	cases := map[string][]byte{
		"short header":   {0, 0},
		"trailing bytes": append(append([]byte{}, valid...), 0xff),
		"truncated":      valid[:len(valid)-1],
		"count beyond":   {0, 0, 0, 5, 0, 0, 0, 1, 0xaa},
		"huge count":     {0xff, 0xff, 0xff, 0xff},
		"huge record":    {0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff, 0xaa},
	}
	for name, payload := range cases {
		if _, err := ParseRangeBlocks(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHeadAnnounceRoundTrip(t *testing.T) {
	id := types.Hash{0x42}
	for _, snap := range []bool{true, false} {
		gotID, num, gotSnap, err := ParseHeadAnnounce(EncodeHeadAnnounce(id, 99, snap))
		if err != nil {
			t.Fatalf("ParseHeadAnnounce: %v", err)
		}
		if gotID != id || num != 99 || gotSnap != snap {
			t.Fatalf("round trip mismatch: %v %d %v", gotID, num, gotSnap)
		}
	}
	if _, _, _, err := ParseHeadAnnounce(make([]byte, types.HashSize+8)); err == nil {
		t.Error("short announce accepted")
	}
}

func TestSyncKindNames(t *testing.T) {
	want := map[MsgKind]string{
		MsgSnapRequest:      "snap-request",
		MsgSnapManifest:     "snap-manifest",
		MsgSnapChunk:        "snap-chunk",
		MsgSnapChunkRequest: "snap-chunk-request",
		MsgRangeRequest:     "range-request",
		MsgRangeBlocks:      "range-blocks",
		MsgHeadAnnounce:     "head-announce",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("kind %d: String() = %q, want %q", uint8(k), k.String(), name)
		}
	}
	if MsgKind(77).String() != "kind(77)" {
		t.Errorf("unknown kind formatting broke: %q", MsgKind(77).String())
	}
}
