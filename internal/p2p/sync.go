package p2p

// Snap-sync protocol payloads. A joining node downloads a recent state
// snapshot plus the canonical block tail instead of replaying the whole
// chain (cost O(snapshot + tail) instead of O(history)). The exchange is
// pull-based — the syncing side requests one manifest, then one chunk or
// block range at a time — so a single in-flight request is the flow
// control and no queue can grow without bound on either side.
//
// Like ParseBlockRequest, the codecs live here so both transports (the
// simulated bus and the TCP fabric) share one validation point with one
// classified malformed-message metric per kind. Every decoder rejects
// before allocating anything sized by remote input.

import (
	"encoding/binary"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Snap-sync message kinds, extending the base gossip kinds (1–3).
const (
	// MsgSnapRequest asks a peer for its current snapshot manifest
	// (empty payload). Peers without a fresh snapshot simply stay silent;
	// the requester's stall timeout moves it on.
	MsgSnapRequest MsgKind = iota + 4
	// MsgSnapManifest describes the snapshot a peer can serve: which
	// block it captures, the state root to verify against, and how the
	// state blob is chunked.
	MsgSnapManifest
	// MsgSnapChunk carries one chunk of the snapshot state blob.
	MsgSnapChunk
	// MsgSnapChunkRequest pulls one chunk by (snapshot block id, index).
	MsgSnapChunkRequest
	// MsgRangeRequest asks for canonical blocks [from, to] by number.
	MsgRangeRequest
	// MsgRangeBlocks answers a range request with consecutive encoded
	// blocks (possibly fewer than asked: responders clamp to their own
	// byte and count budgets; the requester re-asks from where it left).
	MsgRangeBlocks
	// MsgHeadAnnounce is synthetic: the wire transport fabricates it
	// locally when a peer's capability frame arrives, carrying the head
	// advertised in that peer's handshake. It is never decoded off the
	// socket — a remote frame with this kind is dropped as unknown — so
	// a hostile peer cannot spoof another peer's head or capabilities.
	MsgHeadAnnounce
)

func syncKindName(k MsgKind) (string, bool) {
	switch k {
	case MsgSnapRequest:
		return "snap-request", true
	case MsgSnapManifest:
		return "snap-manifest", true
	case MsgSnapChunk:
		return "snap-chunk", true
	case MsgSnapChunkRequest:
		return "snap-chunk-request", true
	case MsgRangeRequest:
		return "range-request", true
	case MsgRangeBlocks:
		return "range-blocks", true
	case MsgHeadAnnounce:
		return "head-announce", true
	}
	return "", false
}

// SnapManifest describes a servable snapshot: the block it captures, the
// commitment root the restored state must reproduce, and the chunking of
// the serialized state blob.
type SnapManifest struct {
	Height     uint64     // snapshot block number
	BlockID    types.Hash // snapshot block id
	StateRoot  types.Hash // header state root the blob must hash to
	StateSize  uint64     // serialized state blob length in bytes
	ChunkSize  uint32     // chunking unit; last chunk may be shorter
	HeadNumber uint64     // server's canonical head at manifest time
	HeadID     types.Hash // server's canonical head id
}

// Chunks returns how many chunk requests cover the state blob.
func (m SnapManifest) Chunks() uint32 {
	if m.ChunkSize == 0 {
		return 0
	}
	return uint32((m.StateSize + uint64(m.ChunkSize) - 1) / uint64(m.ChunkSize))
}

const manifestSize = 8 + types.HashSize + types.HashSize + 8 + 4 + 8 + types.HashSize

// MaxSnapStateSize bounds the snapshot blob a manifest may declare.
// Restored state lives in memory, so this is a sanity limit against a
// hostile manifest promising an absurd download, not a protocol constant.
const MaxSnapStateSize = 1 << 30

// MaxSnapChunks bounds how many chunks a manifest may split its state
// blob into. The requester allocates a slice-header per chunk and pays
// one request round-trip each, so without this cap a hostile manifest
// declaring ChunkSize=1 could demand ~StateSize allocations and hold the
// session open indefinitely. At MaxSnapStateSize the cap implies an
// effective minimum chunk size of 64 KiB.
const MaxSnapChunks = 16384

// EncodeSnapManifest builds a MsgSnapManifest payload.
func EncodeSnapManifest(m SnapManifest) []byte {
	out := make([]byte, 0, manifestSize)
	out = binary.BigEndian.AppendUint64(out, m.Height)
	out = append(out, m.BlockID[:]...)
	out = append(out, m.StateRoot[:]...)
	out = binary.BigEndian.AppendUint64(out, m.StateSize)
	out = binary.BigEndian.AppendUint32(out, m.ChunkSize)
	out = binary.BigEndian.AppendUint64(out, m.HeadNumber)
	out = append(out, m.HeadID[:]...)
	return out
}

// ParseSnapManifest validates and decodes a MsgSnapManifest payload.
func ParseSnapManifest(payload []byte) (SnapManifest, error) {
	if len(payload) != manifestSize {
		mMalformedManifest.Inc()
		return SnapManifest{}, fmt.Errorf("p2p: malformed snap manifest: %d bytes, want %d", len(payload), manifestSize)
	}
	var m SnapManifest
	m.Height = binary.BigEndian.Uint64(payload)
	copy(m.BlockID[:], payload[8:])
	copy(m.StateRoot[:], payload[8+types.HashSize:])
	off := 8 + 2*types.HashSize
	m.StateSize = binary.BigEndian.Uint64(payload[off:])
	m.ChunkSize = binary.BigEndian.Uint32(payload[off+8:])
	m.HeadNumber = binary.BigEndian.Uint64(payload[off+12:])
	copy(m.HeadID[:], payload[off+20:])
	if m.StateSize > MaxSnapStateSize {
		mMalformedManifest.Inc()
		return SnapManifest{}, fmt.Errorf("p2p: snap manifest declares %d state bytes (max %d)", m.StateSize, MaxSnapStateSize)
	}
	if m.StateSize > 0 && m.ChunkSize == 0 {
		mMalformedManifest.Inc()
		return SnapManifest{}, fmt.Errorf("p2p: snap manifest with zero chunk size")
	}
	if n := m.Chunks(); n > MaxSnapChunks {
		mMalformedManifest.Inc()
		return SnapManifest{}, fmt.Errorf("p2p: snap manifest declares %d chunks (max %d)", n, MaxSnapChunks)
	}
	return m, nil
}

// EncodeSnapChunkRequest builds a MsgSnapChunkRequest payload: the
// manifest's snapshot block id plus the wanted chunk index.
func EncodeSnapChunkRequest(blockID types.Hash, index uint32) []byte {
	out := make([]byte, 0, types.HashSize+4)
	out = append(out, blockID[:]...)
	return binary.BigEndian.AppendUint32(out, index)
}

// ParseSnapChunkRequest validates and decodes a MsgSnapChunkRequest.
func ParseSnapChunkRequest(payload []byte) (blockID types.Hash, index uint32, err error) {
	if len(payload) != types.HashSize+4 {
		mMalformedChunkReq.Inc()
		return types.Hash{}, 0, fmt.Errorf("p2p: malformed snap chunk request: %d bytes, want %d", len(payload), types.HashSize+4)
	}
	copy(blockID[:], payload)
	return blockID, binary.BigEndian.Uint32(payload[types.HashSize:]), nil
}

// EncodeSnapChunk builds a MsgSnapChunk payload: snapshot block id, chunk
// index, then the chunk bytes.
func EncodeSnapChunk(blockID types.Hash, index uint32, data []byte) []byte {
	out := make([]byte, 0, types.HashSize+4+len(data))
	out = append(out, blockID[:]...)
	out = binary.BigEndian.AppendUint32(out, index)
	return append(out, data...)
}

// ParseSnapChunk validates and decodes a MsgSnapChunk. Empty chunks are
// malformed — a server never has a reason to send one.
func ParseSnapChunk(payload []byte) (blockID types.Hash, index uint32, data []byte, err error) {
	if len(payload) <= types.HashSize+4 {
		mMalformedChunk.Inc()
		return types.Hash{}, 0, nil, fmt.Errorf("p2p: malformed snap chunk: %d bytes", len(payload))
	}
	copy(blockID[:], payload)
	return blockID, binary.BigEndian.Uint32(payload[types.HashSize:]), payload[types.HashSize+4:], nil
}

// EncodeRangeRequest builds a MsgRangeRequest payload for canonical
// blocks numbered [from, to], inclusive.
func EncodeRangeRequest(from, to uint64) []byte {
	out := make([]byte, 0, 16)
	out = binary.BigEndian.AppendUint64(out, from)
	return binary.BigEndian.AppendUint64(out, to)
}

// ParseRangeRequest validates and decodes a MsgRangeRequest.
func ParseRangeRequest(payload []byte) (from, to uint64, err error) {
	if len(payload) != 16 {
		mMalformedRangeReq.Inc()
		return 0, 0, fmt.Errorf("p2p: malformed range request: %d bytes, want 16", len(payload))
	}
	from = binary.BigEndian.Uint64(payload)
	to = binary.BigEndian.Uint64(payload[8:])
	if from > to {
		mMalformedRangeReq.Inc()
		return 0, 0, fmt.Errorf("p2p: inverted range request [%d, %d]", from, to)
	}
	return from, to, nil
}

// EncodeRangeBlocks builds a MsgRangeBlocks payload: a count followed by
// length-prefixed encoded blocks.
func EncodeRangeBlocks(blocks [][]byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(blocks)))
	for _, b := range blocks {
		out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// maxRangeCount bounds how many block records a single range response may
// declare; responders stay far below it (see node.MaxRangeBlocks).
const maxRangeCount = 4096

// ParseRangeBlocks validates and decodes a MsgRangeBlocks payload into
// the still-encoded block records. Each record's declared length is
// checked against the remaining payload before slicing, so a hostile
// count cannot force allocation beyond the frame that already arrived.
func ParseRangeBlocks(payload []byte) ([][]byte, error) {
	malformed := func(format string, args ...any) ([][]byte, error) {
		mMalformedRangeBlocks.Inc()
		return nil, fmt.Errorf("p2p: malformed range blocks: "+format, args...)
	}
	if len(payload) < 4 {
		return malformed("%d bytes", len(payload))
	}
	count := binary.BigEndian.Uint32(payload)
	if count > maxRangeCount {
		return malformed("declares %d blocks (max %d)", count, maxRangeCount)
	}
	out := make([][]byte, 0, count)
	rest := payload[4:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return malformed("record %d truncated", i)
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return malformed("record %d declares %d bytes, %d remain", i, n, len(rest))
		}
		out = append(out, rest[:n:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return malformed("%d trailing bytes", len(rest))
	}
	return out, nil
}

// EncodeHeadAnnounce builds a MsgHeadAnnounce payload: the peer's head id
// and number from its handshake, plus whether it advertised the snap
// capability. Only transports fabricate these (locally, per peer).
func EncodeHeadAnnounce(headID types.Hash, headNumber uint64, snapCapable bool) []byte {
	out := make([]byte, 0, types.HashSize+9)
	out = append(out, headID[:]...)
	out = binary.BigEndian.AppendUint64(out, headNumber)
	if snapCapable {
		return append(out, 1)
	}
	return append(out, 0)
}

// ParseHeadAnnounce decodes a MsgHeadAnnounce payload.
func ParseHeadAnnounce(payload []byte) (headID types.Hash, headNumber uint64, snapCapable bool, err error) {
	if len(payload) != types.HashSize+9 {
		mMalformedAnnounce.Inc()
		return types.Hash{}, 0, false, fmt.Errorf("p2p: malformed head announce: %d bytes, want %d", len(payload), types.HashSize+9)
	}
	copy(headID[:], payload)
	headNumber = binary.BigEndian.Uint64(payload[types.HashSize:])
	return headID, headNumber, payload[types.HashSize+8] == 1, nil
}
