// Package p2p provides the simulated peer-to-peer fabric SmartCrowd nodes
// gossip over: SRA announcements are "disseminated among all stakeholders"
// and blocks/reports are "broadcast and synchronized among IoT providers"
// (paper §IV-B, §V-C). The network is an in-process discrete-event message
// bus with configurable latency, loss and partitions, and is deterministic
// given its seed — every experiment replays bit-for-bit.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// NodeID identifies a participant.
type NodeID string

// MsgKind labels message payloads.
type MsgKind uint8

// Message kinds.
const (
	// MsgTx carries an encoded transaction (transfers, SRAs, reports).
	MsgTx MsgKind = iota + 1
	// MsgBlock carries an encoded block.
	MsgBlock
	// MsgBlockRequest asks a peer for the block with the given id
	// (payload = 32-byte block id); used to backfill missing ancestors
	// after partitions heal.
	MsgBlockRequest
)

// String returns the kind name.
func (k MsgKind) String() string {
	switch k {
	case MsgTx:
		return "tx"
	case MsgBlock:
		return "block"
	case MsgBlockRequest:
		return "block-request"
	default:
		if name, ok := syncKindName(k); ok {
			return name
		}
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one gossip payload. Trace, when valid, is the block
// lifecycle the payload belongs to; the wire transport propagates it
// across processes in a frame envelope, and the simulated network
// carries it verbatim.
type Message struct {
	From    NodeID
	Kind    MsgKind
	Payload []byte
	Trace   telemetry.TraceContext
}

// Config tunes the network.
type Config struct {
	// MinLatency and MaxLatency bound per-delivery latency in simulated
	// milliseconds (uniform). Zero values mean instant delivery.
	MinLatency, MaxLatency uint64
	// DropRate is the probability a delivery is silently lost.
	DropRate float64
	// Seed drives the deterministic latency/loss sampling.
	Seed int64
}

// Stats counts network activity.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	Blocked   int
}

// envelope is an in-flight delivery.
type envelope struct {
	deliverAt uint64
	seq       uint64
	msg       Message
}

// Network is the message bus. All methods are safe for concurrent use;
// delivery order is deterministic (by delivery time, then send sequence).
type Network struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	now      uint64
	seq      uint64
	inFlight map[NodeID][]envelope
	ready    map[NodeID][]Message
	group    map[NodeID]int // partition group; all zero = connected
	stats    Stats
}

// ErrUnknownNode is returned for operations on nodes that never joined.
var ErrUnknownNode = errors.New("p2p: unknown node")

// New creates a network.
func New(cfg Config) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	return &Network{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		inFlight: make(map[NodeID][]envelope),
		ready:    make(map[NodeID][]Message),
		group:    make(map[NodeID]int),
	}
}

// Join registers a node.
func (n *Network) Join(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.group[id]; !ok {
		n.group[id] = 0
		n.inFlight[id] = nil
		n.ready[id] = nil
	}
}

// Nodes returns all registered node ids, sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.group))
	for id := range n.group {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Now returns the network's simulated time (milliseconds).
func (n *Network) Now() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Send queues a unicast delivery.
func (n *Network) Send(from, to NodeID, msg Message) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.group[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	msg.From = from
	n.enqueue(from, to, msg)
	return nil
}

// Broadcast queues a delivery to every other node.
func (n *Network) Broadcast(from NodeID, msg Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	msg.From = from
	ids := make([]NodeID, 0, len(n.group))
	for id := range n.group {
		if id != from {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	mFanoutPeers.Observe(uint64(len(ids)))
	for _, id := range ids {
		n.enqueue(from, id, msg)
	}
}

// enqueue applies partition/loss/latency and schedules the delivery.
// Callers hold the lock.
func (n *Network) enqueue(from, to NodeID, msg Message) {
	n.stats.Sent++
	if n.group[from] != n.group[to] {
		n.stats.Blocked++
		mBlocked.Inc()
		return
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.stats.Dropped++
		mDropped.Inc()
		return
	}
	latency := n.cfg.MinLatency
	if span := n.cfg.MaxLatency - n.cfg.MinLatency; span > 0 {
		latency += uint64(n.rng.Int63n(int64(span + 1)))
	}
	n.seq++
	n.inFlight[to] = append(n.inFlight[to], envelope{
		deliverAt: n.now + latency,
		seq:       n.seq,
		msg:       msg,
	})
}

// AdvanceTo moves simulated time forward and promotes due deliveries into
// nodes' ready queues. Time never moves backwards.
func (n *Network) AdvanceTo(t uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t > n.now {
		n.now = t
	}
	for id, flights := range n.inFlight {
		if len(flights) == 0 {
			continue
		}
		var due, later []envelope
		for _, env := range flights {
			if env.deliverAt <= n.now {
				due = append(due, env)
			} else {
				later = append(later, env)
			}
		}
		if len(due) == 0 {
			continue
		}
		sort.Slice(due, func(i, j int) bool {
			if due[i].deliverAt != due[j].deliverAt {
				return due[i].deliverAt < due[j].deliverAt
			}
			return due[i].seq < due[j].seq
		})
		for _, env := range due {
			n.ready[id] = append(n.ready[id], env.msg)
			n.stats.Delivered++
			mDelivered.Inc()
		}
		n.inFlight[id] = later
	}
	inFlight := 0
	for _, flights := range n.inFlight {
		inFlight += len(flights)
	}
	mInFlight.Set(int64(inFlight))
}

// Receive drains a node's delivered messages.
func (n *Network) Receive(id NodeID) []Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	msgs := n.ready[id]
	n.ready[id] = nil
	return msgs
}

// PendingDeliveries reports how many messages are still in flight.
func (n *Network) PendingDeliveries() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, flights := range n.inFlight {
		total += len(flights)
	}
	return total
}

// Partition splits the network: nodes in groups[i] can only talk to nodes
// in the same group. Nodes not listed stay in group 0.
func (n *Network) Partition(groups ...[]NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.group {
		n.group[id] = 0
	}
	for i, g := range groups {
		for _, id := range g {
			if _, ok := n.group[id]; ok {
				n.group[id] = i + 1
			}
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.group {
		n.group[id] = 0
	}
}
