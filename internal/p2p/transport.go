package p2p

import (
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Transport is the dissemination fabric SmartCrowd nodes gossip over.
// Two implementations exist:
//
//   - *Network (this package) — the in-process discrete-event bus, fully
//     deterministic given its seed; the default for experiments;
//   - *wire.Transport — a real TCP transport with length-prefixed frames,
//     a version/genesis handshake and a reconnecting peer manager, used
//     when several OS processes form one SmartCrowd network.
//
// Nodes are written against this interface so the same ProviderNode code
// runs unchanged over either fabric. Receive is pull-based: transports
// buffer inbound messages until the node drains them, which keeps the
// simulated bus's deterministic delivery order intact and lets the TCP
// transport decouple socket readers from node processing.
type Transport interface {
	// Join registers a node identity with the fabric. The simulated bus
	// hosts many nodes; a TCP transport hosts exactly one, making Join a
	// no-op there.
	Join(id NodeID)
	// Send queues a unicast delivery. Unknown destinations error.
	Send(from, to NodeID, msg Message) error
	// Broadcast queues a delivery to every connected peer.
	Broadcast(from NodeID, msg Message)
	// Receive drains the messages delivered to id since the last call.
	Receive(id NodeID) []Message
}

// Network implements Transport.
var _ Transport = (*Network)(nil)

// ParseBlockRequest validates and decodes a MsgBlockRequest payload: the
// 32-byte id of the block being asked for. Both transports deliver these
// payloads untouched, so validation lives here — one helper, one
// classified malformed-message metric — instead of ad-hoc length checks
// at each consumer. A malformed payload is counted and rejected before
// any hash is constructed.
func ParseBlockRequest(payload []byte) (types.Hash, error) {
	if len(payload) != types.HashSize {
		mMalformedBlockReq.Inc()
		return types.Hash{}, fmt.Errorf("p2p: malformed block request: %d bytes, want %d", len(payload), types.HashSize)
	}
	var id types.Hash
	copy(id[:], payload)
	return id, nil
}

// EncodeBlockRequest builds the payload ParseBlockRequest accepts.
func EncodeBlockRequest(id types.Hash) []byte {
	out := make([]byte, types.HashSize)
	copy(out, id[:])
	return out
}
