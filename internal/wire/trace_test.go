package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// TestUntracedFrameBytesUnchanged pins the compatibility contract: a
// frame without a trace context must encode to exactly the original
// version-1 bytes, so legacy peers cannot tell this build from the one
// that predates tracing.
func TestUntracedFrameBytesUnchanged(t *testing.T) {
	payload := []byte("block-bytes")
	var got bytes.Buffer
	if err := WriteFrame(&got, Frame{Kind: p2p.MsgBlock, Payload: payload}); err != nil {
		t.Fatal(err)
	}

	// The version-1 encoding, constructed by hand from the documented
	// layout rather than through the codec under test.
	want := []byte{'S', 'C', 'W', '1', 1, byte(p2p.MsgBlock), 0, 0, 0, byte(len(payload))}
	want = append(want, payload...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("untraced frame bytes drifted:\n got %x\nwant %x", got.Bytes(), want)
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	tc := telemetry.TraceContext{
		TraceID: telemetry.NewTraceID(),
		Span:    telemetry.NewSpanID(),
		Start:   1_700_000_000_000_000_001,
	}
	in := Frame{Kind: p2p.MsgBlock, Payload: []byte("b"), Trace: tc, SentNanos: 1_700_000_000_000_000_999}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != TraceProtocolVersion {
		t.Fatalf("traced frame carries version %d, want %d", v, TraceProtocolVersion)
	}
	if length := binary.BigEndian.Uint32(buf.Bytes()[6:]); length != uint32(traceEnvelopeSize+len(in.Payload)) {
		t.Fatalf("declared length %d, want envelope %d + payload %d", length, traceEnvelopeSize, len(in.Payload))
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload changed: %+v", out)
	}
	if out.Trace != tc || out.SentNanos != in.SentNanos {
		t.Fatalf("envelope changed: got %+v / %d, want %+v / %d", out.Trace, out.SentNanos, tc, in.SentNanos)
	}
}

func TestTracedFrameEmptyPayload(t *testing.T) {
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), Span: telemetry.NewSpanID(), Start: 1}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: p2p.MsgBlockRequest, Trace: tc}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 || out.Trace != tc {
		t.Fatalf("empty-payload traced frame decoded to %+v", out)
	}
}

func TestTracedFrameTruncatedEnvelopeRejected(t *testing.T) {
	raw := []byte{'S', 'C', 'W', '1', TraceProtocolVersion, byte(p2p.MsgBlock), 0, 0, 0, 8}
	raw = append(raw, make([]byte, 8)...) // half an envelope
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("traced frame shorter than its envelope was accepted")
	}
}

func TestCapsCodec(t *testing.T) {
	trace, snap := decodeCaps(encodeCaps())
	if !trace || !snap {
		t.Fatal("our own caps payload does not advertise tracing and snap-sync")
	}
	if tr, sn := decodeCaps(nil); tr || sn {
		t.Fatal("nil caps payload advertised a capability")
	}
	if tr, sn := decodeCaps([]byte{}); tr || sn {
		t.Fatal("empty caps payload advertised a capability")
	}
	if tr, sn := decodeCaps([]byte{0x00}); tr || sn {
		t.Fatal("zero bitmask advertised a capability")
	}
	// Each bit decodes independently: a trace-only legacy payload must
	// not imply snap support, and vice versa.
	if tr, sn := decodeCaps([]byte{capTrace}); !tr || sn {
		t.Fatal("trace-only payload misdecoded")
	}
	if tr, sn := decodeCaps([]byte{capSnap}); tr || !sn {
		t.Fatal("snap-only payload misdecoded")
	}
	// Unknown future bits and trailing bytes are tolerated.
	if tr, _ := decodeCaps([]byte{capTrace | 0x80, 0xff, 0xff}); !tr {
		t.Fatal("future caps payload rejected")
	}
}
