package wire

import (
	"bytes"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Native fuzz targets for the two attacker-facing decoders, mirroring
// rlp's FuzzDecode: arbitrary bytes must never panic, and nothing may
// allocate past the 8 MiB frame bound. Seed corpora live under
// testdata/fuzz/; CI runs each target for a 10s smoke
// (`go test -fuzz=<target> -fuzztime=10s ./internal/wire`).

// FuzzReadFrame feeds arbitrary byte streams to the frame decoder. On
// success the decoded frame must respect the payload bound and survive a
// write/read round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, Frame{Kind: p2p.MsgBlock, Payload: []byte("abc")}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var traced bytes.Buffer
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), Span: telemetry.NewSpanID(), Start: 12345}
	if err := WriteFrame(&traced, Frame{Kind: p2p.MsgBlock, Payload: []byte("abc"), Trace: tc, SentNanos: 67890}); err != nil {
		f.Fatal(err)
	}
	f.Add(traced.Bytes())
	f.Add([]byte("XXXX\x01\x01\x00\x00\x00\x00"))               // bad magic
	f.Add([]byte("SCW1\x03\x01\x00\x00\x00\x00"))               // bad version (above both we speak)
	f.Add([]byte("SCW1\x01\x01\xff\xff\xff\xff"))               // declared length over bound
	f.Add([]byte("SCW1\x01"))                                   // truncated header
	f.Add([]byte("SCW1\x01\x01\x00\x00\x00\x09short"))          // truncated payload
	f.Add([]byte("SCW1\x01\x81\x00\x00\x00\x00"))               // control frame, empty payload
	f.Add([]byte("SCW1\x01\x01\x00\x7f\xff\xff" + "padding"))   // large-but-legal declaration, truncated
	f.Add([]byte("SCW1\x02\x02\x00\x00\x00\x10short-envelope")) // traced frame shorter than its envelope

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The decoder promised it never allocates past the bound.
		if len(fr.Payload) > MaxFramePayload {
			t.Fatalf("decoded payload %d bytes exceeds MaxFramePayload %d", len(fr.Payload), MaxFramePayload)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if again.Kind != fr.Kind || !bytes.Equal(again.Payload, fr.Payload) {
			t.Fatalf("round trip changed frame: %+v -> %+v", fr, again)
		}
		// A valid trace context survives the round trip exactly; an
		// invalid one re-encodes as version 1, dropping SentNanos too.
		if fr.Trace.Valid() {
			if again.Trace != fr.Trace || again.SentNanos != fr.SentNanos {
				t.Fatalf("round trip changed trace envelope: %+v -> %+v", fr, again)
			}
		} else if again.Trace.Valid() {
			t.Fatalf("untraced frame grew a trace: %+v", again)
		}
	})
}

// FuzzParseHandshake feeds arbitrary payloads to the hello decoder. An
// accepted hello must re-encode to exactly the input (the codec is
// canonical) and respect the node-id bound.
func FuzzParseHandshake(f *testing.F) {
	var genesis, head types.Hash
	for i := range head {
		head[i] = 0xaa
	}
	f.Add(encodeHello(hello{Genesis: genesis, NodeID: "node-1", HeadID: head, HeadNumber: 7}))
	f.Add(encodeHello(hello{Genesis: head, NodeID: "x", HeadID: genesis, HeadNumber: 0}))
	f.Add([]byte(""))                        // empty
	f.Add(bytes.Repeat([]byte{0}, 73))       // one byte short of the fixed header
	f.Add(bytes.Repeat([]byte{0xff, 1}, 40)) // garbage with a huge declared id length

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		if n := len(h.NodeID); n == 0 || n > maxNodeIDLen {
			t.Fatalf("accepted hello with node id length %d (bound %d)", n, maxNodeIDLen)
		}
		if got := encodeHello(h); !bytes.Equal(got, data) {
			t.Fatalf("accepted hello is not canonical:\n in: %x\nout: %x", data, got)
		}
	})
}
