package wire

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

func testGenesis() types.Hash {
	var g types.Hash
	g[0], g[31] = 0xAA, 0x55
	return g
}

// newTestTransport builds and starts a listening transport with timeouts
// tightened for tests, registered for cleanup.
func newTestTransport(t *testing.T, id string, genesis types.Hash, peers ...string) *Transport {
	t.Helper()
	tr, err := New(Config{
		NodeID:           p2p.NodeID(id),
		ListenAddr:       "127.0.0.1:0",
		Genesis:          genesis,
		Peers:            peers,
		HandshakeTimeout: 2 * time.Second,
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		DialBackoffMin:   20 * time.Millisecond,
		DialBackoffMax:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	tr.Start()
	return tr
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func hasPeer(tr *Transport, id p2p.NodeID) bool {
	for _, p := range tr.PeerIDs() {
		if p == id {
			return true
		}
	}
	return false
}

// receiveN drains tr's inbox until n protocol messages arrive or the
// timeout fires. Synthetic head announces (fabricated per connection at
// capability exchange) are expected background traffic, not part of any
// test's expected stream, so they are filtered here.
func receiveN(t *testing.T, tr *Transport, n int, timeout time.Duration) []p2p.Message {
	t.Helper()
	var got []p2p.Message
	deadline := time.After(timeout)
	for len(got) < n {
		select {
		case <-tr.Wake():
		case <-time.After(20 * time.Millisecond):
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages", len(got), n)
		}
		for _, m := range tr.Receive(tr.cfg.NodeID) {
			if m.Kind == p2p.MsgHeadAnnounce {
				continue
			}
			got = append(got, m)
		}
	}
	return got
}

func TestSendAndBroadcastOverTCP(t *testing.T) {
	g := testGenesis()
	a := newTestTransport(t, "a", g)
	b := newTestTransport(t, "b", g, a.Addr())
	waitFor(t, 5*time.Second, func() bool { return hasPeer(a, "b") && hasPeer(b, "a") }, "a and b connected")

	b.Broadcast("b", p2p.Message{Kind: p2p.MsgTx, Payload: []byte("hello from b")})
	msgs := receiveN(t, a, 1, 3*time.Second)
	if msgs[0].From != "b" || msgs[0].Kind != p2p.MsgTx || string(msgs[0].Payload) != "hello from b" {
		t.Errorf("a received %+v, want MsgTx %q from b", msgs[0], "hello from b")
	}

	if err := a.Send("a", "b", p2p.Message{Kind: p2p.MsgBlockRequest, Payload: bytes.Repeat([]byte{1}, 32)}); err != nil {
		t.Fatalf("Send to connected peer: %v", err)
	}
	msgs = receiveN(t, b, 1, 3*time.Second)
	if msgs[0].From != "a" || msgs[0].Kind != p2p.MsgBlockRequest {
		t.Errorf("b received %+v, want MsgBlockRequest from a", msgs[0])
	}

	if err := a.Send("a", "nobody", p2p.Message{Kind: p2p.MsgTx}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send to unknown peer: err = %v, want ErrUnknownPeer", err)
	}
}

func TestGenesisMismatchRejected(t *testing.T) {
	a := newTestTransport(t, "a", testGenesis())
	other := testGenesis()
	other[0] ^= 0xFF
	b := newTestTransport(t, "b", other, a.Addr())

	time.Sleep(300 * time.Millisecond) // several dial+handshake attempts
	if got := a.PeerIDs(); len(got) != 0 {
		t.Errorf("a registered peers %v despite genesis mismatch", got)
	}
	if got := b.PeerIDs(); len(got) != 0 {
		t.Errorf("b registered peers %v despite genesis mismatch", got)
	}
}

func TestSelfConnectRejected(t *testing.T) {
	tr, err := New(Config{
		NodeID:           "loner",
		ListenAddr:       "127.0.0.1:0",
		Genesis:          testGenesis(),
		HandshakeTimeout: time.Second,
		DialBackoffMin:   20 * time.Millisecond,
		DialBackoffMax:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	tr.Start()
	tr.AddPeer(tr.Addr()) // dial ourselves

	time.Sleep(300 * time.Millisecond)
	if got := tr.PeerIDs(); len(got) != 0 {
		t.Errorf("self-dial registered peers %v", got)
	}
}

// TestRawConnGarbageRejected throws non-protocol bytes at a live listener:
// the server must drop each connection without registering a peer and
// without panicking.
func TestRawConnGarbageRejected(t *testing.T) {
	g := testGenesis()
	a := newTestTransport(t, "a", g)

	var wrongVersion bytes.Buffer
	if err := WriteFrame(&wrongVersion, Frame{Kind: kindHello, Payload: encodeHello(hello{Genesis: g, NodeID: "evil"})}); err != nil {
		t.Fatal(err)
	}
	badVersion := wrongVersion.Bytes()
	badVersion[4] = ProtocolVersion + 1

	var notHello bytes.Buffer
	if err := WriteFrame(&notHello, Frame{Kind: p2p.MsgTx, Payload: []byte("first frame is not a hello")}); err != nil {
		t.Fatal(err)
	}

	for name, raw := range map[string][]byte{
		"garbage-magic": []byte("XXXXthis is not a smartcrowd stream"),
		"bad-version":   badVersion,
		"not-a-hello":   notHello.Bytes(),
		"short-hello":   {0x53, 0x43},
	} {
		conn, err := net.Dial("tcp", a.Addr())
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// The server closes after the failed handshake; drain until EOF.
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}
	if got := a.PeerIDs(); len(got) != 0 {
		t.Errorf("garbage connections registered peers %v", got)
	}
}

// TestConcurrentWriters hammers one connection from many goroutines on
// both sides while the inboxes drain concurrently — the -race proof that
// per-peer queues, write loops and inbox delivery share no unsynchronized
// state.
func TestConcurrentWriters(t *testing.T) {
	g := testGenesis()
	a := newTestTransport(t, "a", g)
	b := newTestTransport(t, "b", g, a.Addr())
	waitFor(t, 5*time.Second, func() bool { return hasPeer(a, "b") && hasPeer(b, "a") }, "a and b connected")

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				a.Broadcast("a", p2p.Message{Kind: p2p.MsgTx, Payload: []byte("from a")})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				_ = b.Send("b", "a", p2p.Message{Kind: p2p.MsgTx, Payload: []byte("from b")})
			}
		}()
	}

	var fromA, fromB int
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(10 * time.Second)
drain:
	for {
		for _, m := range a.Receive("a") {
			if m.From != "b" {
				t.Errorf("a received message stamped From=%s", m.From)
			}
			fromB++
		}
		for _, m := range b.Receive("b") {
			if m.From != "a" {
				t.Errorf("b received message stamped From=%s", m.From)
			}
			fromA++
		}
		select {
		case <-done:
			// One final settle pass for frames still in flight.
			time.Sleep(200 * time.Millisecond)
			fromB += len(a.Receive("a"))
			fromA += len(b.Receive("b"))
			break drain
		case <-deadline:
			t.Fatal("writers did not finish")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Bounded queues may shed under pressure; traffic must still flow.
	if fromA == 0 || fromB == 0 {
		t.Errorf("no traffic delivered: %d from a, %d from b", fromA, fromB)
	}
}

// TestReconnectAfterRestart kills the listening side and brings a new
// transport up on the same address: the surviving dial loop must notice
// the drop and re-establish the session with the replacement.
func TestReconnectAfterRestart(t *testing.T) {
	g := testGenesis()
	a := newTestTransport(t, "a", g)
	addr := a.Addr()
	b := newTestTransport(t, "b", g, addr)
	waitFor(t, 5*time.Second, func() bool { return hasPeer(b, "a") }, "b connected to a")

	a.Close()
	waitFor(t, 5*time.Second, func() bool { return !hasPeer(b, "a") }, "b dropped a")

	// Rebind the exact address (brief retry in case the port lingers).
	var a2 *Transport
	var err error
	for i := 0; i < 50; i++ {
		a2, err = New(Config{
			NodeID:           "a2",
			ListenAddr:       addr,
			Genesis:          g,
			HandshakeTimeout: 2 * time.Second,
			ReadTimeout:      2 * time.Second,
			WriteTimeout:     2 * time.Second,
		})
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { a2.Close() })
	a2.Start()

	waitFor(t, 5*time.Second, func() bool { return hasPeer(b, "a2") }, "b reconnected to restarted listener")
	a2.Broadcast("a2", p2p.Message{Kind: p2p.MsgTx, Payload: []byte("back online")})
	msgs := receiveN(t, b, 1, 3*time.Second)
	if msgs[0].From != "a2" || string(msgs[0].Payload) != "back online" {
		t.Errorf("post-restart message = %+v", msgs[0])
	}
}
