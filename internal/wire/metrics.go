package wire

import (
	"time"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

var (
	mDialAttempts  = telemetry.GetCounter("smartcrowd_wire_dials_total", telemetry.L("outcome", "attempt"))
	mDialSuccesses = telemetry.GetCounter("smartcrowd_wire_dials_total", telemetry.L("outcome", "ok"))
	mDialFailures  = telemetry.GetCounter("smartcrowd_wire_dials_total", telemetry.L("outcome", "error"))
	mHandshakesOK  = telemetry.GetCounter("smartcrowd_wire_handshakes_total", telemetry.L("outcome", "ok"))
	mFramesIn      = telemetry.GetCounter("smartcrowd_wire_frames_total", telemetry.L("dir", "in"))
	mFramesOut     = telemetry.GetCounter("smartcrowd_wire_frames_total", telemetry.L("dir", "out"))
	mBytesIn       = telemetry.GetCounter("smartcrowd_wire_bytes_total", telemetry.L("dir", "in"))
	mBytesOut      = telemetry.GetCounter("smartcrowd_wire_bytes_total", telemetry.L("dir", "out"))
	mQueueShed     = telemetry.GetCounter("smartcrowd_wire_queue_shed_total")
	mQueueDepth    = telemetry.GetHistogram("smartcrowd_wire_queue_depth")
	mReconnects    = telemetry.GetCounter("smartcrowd_wire_reconnects_total")
	mDisconnects   = telemetry.GetCounter("smartcrowd_wire_disconnects_total")
	mSyncKicks     = telemetry.GetCounter("smartcrowd_wire_sync_kicks_total")
	mUnknownFrames = telemetry.GetCounter("smartcrowd_wire_unknown_frames_total")
	mPeers         = telemetry.GetGauge("smartcrowd_wire_peers")
	mFanout        = telemetry.GetHistogram("smartcrowd_wire_broadcast_fanout")
	mTracePeers    = telemetry.GetCounter("smartcrowd_wire_trace_peers_total")
	mSnapPeers     = telemetry.GetCounter("smartcrowd_wire_snap_peers_total")
	mPropHop       = telemetry.GetHistogram("smartcrowd_wire_propagation_ms", telemetry.L("leg", "hop"))
	mPropE2E       = telemetry.GetHistogram("smartcrowd_wire_propagation_ms", telemetry.L("leg", "e2e"))
)

// handshakeFailure resolves the classified failure counter. Failures are
// rare, so resolving per event (a registry lookup) is fine.
func handshakeFailure(reason string) *telemetry.Counter {
	return telemetry.GetCounter("smartcrowd_wire_handshake_failures_total", telemetry.L("reason", reason))
}

func init() {
	telemetry.SetHelp("smartcrowd_wire_dials_total", "outbound dial attempts, by outcome")
	telemetry.SetHelp("smartcrowd_wire_handshakes_total", "completed version/genesis handshakes")
	telemetry.SetHelp("smartcrowd_wire_handshake_failures_total", "rejected handshakes, by reason (genesis, version, magic, hello, self, duplicate, io)")
	telemetry.SetHelp("smartcrowd_wire_frames_total", "frames moved over TCP, by direction")
	telemetry.SetHelp("smartcrowd_wire_bytes_total", "bytes moved over TCP including frame headers, by direction")
	telemetry.SetHelp("smartcrowd_wire_queue_shed_total", "outbound frames dropped oldest-first by full per-peer queues")
	telemetry.SetHelp("smartcrowd_wire_queue_depth", "per-peer outbound queue depth observed at enqueue")
	telemetry.SetHelp("smartcrowd_wire_reconnects_total", "successful re-dials after a peer connection dropped")
	telemetry.SetHelp("smartcrowd_wire_disconnects_total", "peer connections torn down")
	telemetry.SetHelp("smartcrowd_wire_sync_kicks_total", "head requests sent because a handshake advertised a longer chain")
	telemetry.SetHelp("smartcrowd_wire_unknown_frames_total", "frames with unrecognized kinds, dropped")
	telemetry.SetHelp("smartcrowd_wire_peers", "currently connected peers")
	telemetry.SetHelp("smartcrowd_wire_broadcast_fanout", "peers reached per Broadcast call")
	telemetry.SetHelp("smartcrowd_wire_trace_peers_total", "peers that advertised the trace capability")
	telemetry.SetHelp("smartcrowd_wire_snap_peers_total", "peers that advertised the snap-sync capability")
	telemetry.SetHelp("smartcrowd_wire_propagation_ms",
		"traced-frame latency in milliseconds: leg=hop is sender stamp to local receipt, leg=e2e is trace origin (seal start) to local receipt; cross-host values include clock skew, clamped at zero")
}

// observePropagation records the per-hop and end-to-end latency legs of
// one received traced frame. Wall clocks on different hosts skew, so
// negative deltas clamp to zero instead of poisoning the histogram.
func observePropagation(f Frame) {
	nowNs := time.Now().UnixNano()
	if f.SentNanos > 0 {
		mPropHop.Observe(clampMs(nowNs - f.SentNanos))
	}
	if f.Trace.Start > 0 {
		mPropE2E.Observe(clampMs(nowNs - f.Trace.Start))
	}
}

// clampMs converts a nanosecond delta to non-negative milliseconds.
func clampMs(deltaNs int64) uint64 {
	if deltaNs < 0 {
		return 0
	}
	return uint64(deltaNs / int64(time.Millisecond))
}
