// Package wire is SmartCrowd's real network transport: a stdlib-only TCP
// implementation of the p2p.Transport interface the nodes gossip over.
// Where internal/p2p simulates dissemination on a deterministic in-process
// bus, this package moves the same p2p.Message payloads between OS
// processes over length-prefixed frames, with a version/genesis handshake,
// a reconnecting peer manager (exponential backoff with jitter, per-peer
// write deadlines and read timeouts, bounded outbound queues with
// drop-oldest shedding), and full telemetry coverage.
//
// Frame layout (all integers big-endian):
//
//	magic   [4]byte  "SCW1" — rejects non-SmartCrowd peers immediately
//	version uint8    protocol version; mismatches are rejected per frame
//	kind    uint8    p2p.MsgKind (1–3) or a wire control kind (0x80+)
//	length  uint32   payload byte count, bounded by MaxFramePayload
//	payload [length]byte
//
// The codec never trusts the remote end: bad magic, unknown versions,
// oversized lengths and truncated payloads all fail with typed errors and
// without allocating the declared length first.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// Wire protocol constants.
const (
	// ProtocolVersion is the legacy framing every peer understands; the
	// handshake and untraced frames carry it.
	ProtocolVersion = 1

	// TraceProtocolVersion marks a traced frame: the payload is prefixed
	// with a fixed trace envelope (trace id, span id, origin and send
	// timestamps). Traced frames are only sent to peers that advertised
	// the capability via a kindCaps control frame after the handshake —
	// version-1 peers never see a version-2 byte, so the upgrade needs no
	// flag day.
	TraceProtocolVersion = 2

	// MaxFramePayload bounds a frame's payload. Blocks are the largest
	// protocol objects; 8 MiB leaves generous headroom while keeping a
	// hostile peer from forcing huge allocations.
	MaxFramePayload = 8 << 20

	// headerSize is magic + version + kind + length.
	headerSize = 4 + 1 + 1 + 4

	// traceEnvelopeSize is the fixed prefix of a version-2 payload:
	// trace id [16] + parent span id [8] + origin unix-nanos [8] +
	// sent unix-nanos [8].
	traceEnvelopeSize = 16 + 8 + 8 + 8
)

// magic identifies SmartCrowd wire streams.
var magic = [4]byte{'S', 'C', 'W', '1'}

// Control frame kinds, outside the p2p.MsgKind range.
const (
	// kindHello opens every connection (handshake.go).
	kindHello p2p.MsgKind = 0x80 + iota
	// kindPing keeps idle connections alive under read timeouts.
	kindPing
	// kindCaps advertises optional capabilities right after the
	// handshake. It is always sent as a version-1 frame: peers that
	// predate it count it as an unknown kind and drop it, which is
	// exactly the desired negotiation — silence means "legacy".
	kindCaps
)

// Capability bits in the kindCaps payload's first byte.
const (
	// capTrace means "send me version-2 traced frames".
	capTrace = 0x01
	// capSnap means "I speak the snap-sync message kinds (manifest,
	// chunk and range exchange) and can serve state snapshots".
	capSnap = 0x02
)

// Frame is one wire unit: a message kind plus its payload. Trace, when
// valid, rides in a version-2 envelope ahead of the payload; SentNanos
// is stamped by the writer so the receiver can compute one-hop latency.
type Frame struct {
	Kind      p2p.MsgKind
	Payload   []byte
	Trace     telemetry.TraceContext
	SentNanos int64
}

// Codec errors.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: protocol version mismatch")
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds bound")
	ErrTruncated     = errors.New("wire: truncated frame")
)

// WriteFrame encodes f to w. Payloads above MaxFramePayload are refused
// locally — the remote end would drop the connection anyway. A frame
// without a valid trace context encodes byte-identically to the original
// version-1 protocol; a traced frame gets the version-2 header byte and
// a fixed envelope ahead of the payload.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	traced := f.Trace.Valid()
	var hdr []byte
	if traced {
		hdr = make([]byte, headerSize, headerSize+traceEnvelopeSize+len(f.Payload))
	} else {
		hdr = make([]byte, headerSize, headerSize+len(f.Payload))
	}
	copy(hdr[:4], magic[:])
	if traced {
		hdr[4] = TraceProtocolVersion
	} else {
		hdr[4] = ProtocolVersion
	}
	hdr[5] = byte(f.Kind)
	declared := len(f.Payload)
	if traced {
		declared += traceEnvelopeSize
	}
	binary.BigEndian.PutUint32(hdr[6:], uint32(declared))
	if traced {
		hdr = append(hdr, f.Trace.TraceID[:]...)
		hdr = append(hdr, f.Trace.Span[:]...)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(f.Trace.Start))
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(f.SentNanos))
	}
	_, err := w.Write(append(hdr, f.Payload...))
	return err
}

// ReadFrame decodes one frame from r. It validates magic, version and the
// declared length before reading the payload, so a hostile peer cannot
// force a large allocation or park the reader on garbage. Both protocol
// versions are accepted: version 1 yields an untraced frame, version 2
// strips the trace envelope into Frame.Trace/SentNanos.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return Frame{}, err
	}
	if [4]byte(hdr[:4]) != magic {
		return Frame{}, ErrBadMagic
	}
	version := hdr[4]
	if version != ProtocolVersion && version != TraceProtocolVersion {
		return Frame{}, fmt.Errorf("%w: remote %d, local %d", ErrBadVersion, version, TraceProtocolVersion)
	}
	length := binary.BigEndian.Uint32(hdr[6:])
	maxLen := uint32(MaxFramePayload)
	if version == TraceProtocolVersion {
		maxLen += traceEnvelopeSize
	}
	if length > maxLen {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, length)
	}
	f := Frame{Kind: p2p.MsgKind(hdr[5])}
	body := []byte(nil)
	if length > 0 {
		body = make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			return Frame{}, fmt.Errorf("%w: payload short of declared %d bytes", ErrTruncated, length)
		}
	}
	if version == ProtocolVersion {
		f.Payload = body
		return f, nil
	}
	if len(body) < traceEnvelopeSize {
		return Frame{}, fmt.Errorf("%w: traced frame shorter than its envelope", ErrTruncated)
	}
	copy(f.Trace.TraceID[:], body[:16])
	copy(f.Trace.Span[:], body[16:24])
	f.Trace.Start = int64(binary.BigEndian.Uint64(body[24:32]))
	f.SentNanos = int64(binary.BigEndian.Uint64(body[32:40]))
	if len(body) > traceEnvelopeSize {
		f.Payload = body[traceEnvelopeSize:]
	}
	return f, nil
}

// encodeCaps builds the kindCaps payload: one capability bitmask byte.
// Future capabilities extend the payload; decodeCaps ignores trailing
// bytes it does not understand, so the frame can grow without another
// negotiation mechanism.
func encodeCaps() []byte { return []byte{capTrace | capSnap} }

// decodeCaps reports which capabilities a kindCaps payload advertises.
// Empty or malformed payloads advertise nothing.
func decodeCaps(payload []byte) (trace, snap bool) {
	if len(payload) < 1 {
		return false, false
	}
	return payload[0]&capTrace != 0, payload[0]&capSnap != 0
}
