// Package wire is SmartCrowd's real network transport: a stdlib-only TCP
// implementation of the p2p.Transport interface the nodes gossip over.
// Where internal/p2p simulates dissemination on a deterministic in-process
// bus, this package moves the same p2p.Message payloads between OS
// processes over length-prefixed frames, with a version/genesis handshake,
// a reconnecting peer manager (exponential backoff with jitter, per-peer
// write deadlines and read timeouts, bounded outbound queues with
// drop-oldest shedding), and full telemetry coverage.
//
// Frame layout (all integers big-endian):
//
//	magic   [4]byte  "SCW1" — rejects non-SmartCrowd peers immediately
//	version uint8    protocol version; mismatches are rejected per frame
//	kind    uint8    p2p.MsgKind (1–3) or a wire control kind (0x80+)
//	length  uint32   payload byte count, bounded by MaxFramePayload
//	payload [length]byte
//
// The codec never trusts the remote end: bad magic, unknown versions,
// oversized lengths and truncated payloads all fail with typed errors and
// without allocating the declared length first.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
)

// Wire protocol constants.
const (
	// ProtocolVersion is bumped on any incompatible framing or handshake
	// change; the handshake and every frame header carry it.
	ProtocolVersion = 1

	// MaxFramePayload bounds a frame's payload. Blocks are the largest
	// protocol objects; 8 MiB leaves generous headroom while keeping a
	// hostile peer from forcing huge allocations.
	MaxFramePayload = 8 << 20

	// headerSize is magic + version + kind + length.
	headerSize = 4 + 1 + 1 + 4
)

// magic identifies SmartCrowd wire streams.
var magic = [4]byte{'S', 'C', 'W', '1'}

// Control frame kinds, outside the p2p.MsgKind range.
const (
	// kindHello opens every connection (handshake.go).
	kindHello p2p.MsgKind = 0x80 + iota
	// kindPing keeps idle connections alive under read timeouts.
	kindPing
)

// Frame is one wire unit: a message kind plus its payload.
type Frame struct {
	Kind    p2p.MsgKind
	Payload []byte
}

// Codec errors.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: protocol version mismatch")
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds bound")
	ErrTruncated     = errors.New("wire: truncated frame")
)

// WriteFrame encodes f to w. Payloads above MaxFramePayload are refused
// locally — the remote end would drop the connection anyway.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	hdr := make([]byte, headerSize, headerSize+len(f.Payload))
	copy(hdr[:4], magic[:])
	hdr[4] = ProtocolVersion
	hdr[5] = byte(f.Kind)
	binary.BigEndian.PutUint32(hdr[6:], uint32(len(f.Payload)))
	_, err := w.Write(append(hdr, f.Payload...))
	return err
}

// ReadFrame decodes one frame from r. It validates magic, version and the
// declared length before reading the payload, so a hostile peer cannot
// force a large allocation or park the reader on garbage.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return Frame{}, err
	}
	if [4]byte(hdr[:4]) != magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[4] != ProtocolVersion {
		return Frame{}, fmt.Errorf("%w: remote %d, local %d", ErrBadVersion, hdr[4], ProtocolVersion)
	}
	length := binary.BigEndian.Uint32(hdr[6:])
	if length > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, length)
	}
	f := Frame{Kind: p2p.MsgKind(hdr[5])}
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: payload short of declared %d bytes", ErrTruncated, length)
		}
	}
	return f, nil
}
