package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// hello is the handshake each side sends as its first frame. The frame
// header already proves magic and protocol version; the hello pins the
// chain identity (genesis) and advertises who the peer is and how far its
// canonical chain reaches, so a freshly (re)connected node can kick off
// ancestor backfill immediately instead of waiting for the next gossip.
type hello struct {
	Genesis    types.Hash
	NodeID     p2p.NodeID
	HeadID     types.Hash
	HeadNumber uint64
}

// maxNodeIDLen bounds the id string a remote hello may carry.
const maxNodeIDLen = 128

// Handshake errors (the reason labels of the handshake-failure metric).
var (
	ErrGenesisMismatch = errors.New("wire: genesis mismatch")
	ErrBadHello        = errors.New("wire: malformed hello")
	ErrSelfConnect     = errors.New("wire: connected to self")
)

func encodeHello(h hello) []byte {
	out := make([]byte, 0, types.HashSize*2+8+2+len(h.NodeID))
	out = append(out, h.Genesis[:]...)
	out = append(out, h.HeadID[:]...)
	out = binary.BigEndian.AppendUint64(out, h.HeadNumber)
	out = binary.BigEndian.AppendUint16(out, uint16(len(h.NodeID)))
	out = append(out, h.NodeID...)
	return out
}

func decodeHello(payload []byte) (hello, error) {
	const fixed = types.HashSize*2 + 8 + 2
	if len(payload) < fixed {
		return hello{}, fmt.Errorf("%w: %d bytes", ErrBadHello, len(payload))
	}
	var h hello
	copy(h.Genesis[:], payload[:types.HashSize])
	copy(h.HeadID[:], payload[types.HashSize:2*types.HashSize])
	h.HeadNumber = binary.BigEndian.Uint64(payload[2*types.HashSize:])
	idLen := int(binary.BigEndian.Uint16(payload[2*types.HashSize+8:]))
	if idLen == 0 || idLen > maxNodeIDLen || len(payload) != fixed+idLen {
		return hello{}, fmt.Errorf("%w: id length %d", ErrBadHello, idLen)
	}
	h.NodeID = p2p.NodeID(payload[fixed:])
	return h, nil
}

// handshake runs the symmetric hello exchange on a fresh connection: send
// ours, read theirs, verify chain identity. The deadline bounds the whole
// exchange so a silent peer cannot park a goroutine.
func (t *Transport) handshake(conn net.Conn) (hello, error) {
	deadline := time.Now().Add(t.cfg.HandshakeTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return hello{}, err
	}
	defer conn.SetDeadline(time.Time{})

	ours := hello{Genesis: t.cfg.Genesis, NodeID: t.cfg.NodeID}
	if t.cfg.Head != nil {
		ours.HeadID, ours.HeadNumber = t.cfg.Head()
	}
	if err := WriteFrame(conn, Frame{Kind: kindHello, Payload: encodeHello(ours)}); err != nil {
		return hello{}, fmt.Errorf("wire: send hello: %w", err)
	}
	f, err := ReadFrame(conn)
	if err != nil {
		return hello{}, fmt.Errorf("wire: read hello: %w", err)
	}
	if f.Kind != kindHello {
		return hello{}, fmt.Errorf("%w: first frame kind %s", ErrBadHello, f.Kind)
	}
	theirs, err := decodeHello(f.Payload)
	if err != nil {
		return hello{}, err
	}
	if theirs.Genesis != t.cfg.Genesis {
		return hello{}, fmt.Errorf("%w: remote %s, local %s",
			ErrGenesisMismatch, theirs.Genesis.Short(), t.cfg.Genesis.Short())
	}
	if theirs.NodeID == t.cfg.NodeID {
		return hello{}, ErrSelfConnect
	}
	return theirs, nil
}

// handshakeFailReason classifies a handshake error for the metric label.
func handshakeFailReason(err error) string {
	switch {
	case errors.Is(err, ErrGenesisMismatch):
		return "genesis"
	case errors.Is(err, ErrBadVersion):
		return "version"
	case errors.Is(err, ErrBadMagic):
		return "magic"
	case errors.Is(err, ErrBadHello):
		return "hello"
	case errors.Is(err, ErrSelfConnect):
		return "self"
	default:
		return "io"
	}
}
