package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// legacyPeer speaks strictly protocol version 1, byte for byte, with no
// knowledge of capability frames or trace envelopes — it stands in for a
// build that predates tracing. It deliberately shares no codec with the
// package under test: every frame is built and parsed by hand from the
// documented v1 layout, so any drift in what a modern node puts on the
// wire for old peers fails loudly here.
type legacyPeer struct {
	t    *testing.T
	conn net.Conn
}

func dialLegacy(t *testing.T, addr string, genesis types.Hash, id string) *legacyPeer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	lp := &legacyPeer{t: t, conn: conn}
	lp.writeV1(byte(kindHello), encodeHello(hello{Genesis: genesis, NodeID: p2p.NodeID(id)}))
	kind, raw := lp.readV1()
	if kind != byte(kindHello) {
		t.Fatalf("first frame from modern node has kind %#x, want hello", kind)
	}
	if _, err := decodeHello(raw[headerSize:]); err != nil {
		t.Fatalf("modern node's hello does not decode as v1: %v", err)
	}
	return lp
}

// writeV1 sends one version-1 frame built by hand.
func (lp *legacyPeer) writeV1(kind byte, payload []byte) {
	lp.t.Helper()
	frame := []byte{'S', 'C', 'W', '1', 1, kind}
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	if err := lp.conn.SetWriteDeadline(time.Now().Add(2 * time.Second)); err != nil {
		lp.t.Fatal(err)
	}
	if _, err := lp.conn.Write(frame); err != nil {
		lp.t.Fatalf("legacy write: %v", err)
	}
}

// readV1 reads one raw frame, asserting the strict v1 invariants a legacy
// decoder enforces: magic, version byte 1, declared length within bound.
// It returns the kind and the complete frame bytes (header + payload).
func (lp *legacyPeer) readV1() (byte, []byte) {
	lp.t.Helper()
	if err := lp.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		lp.t.Fatal(err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(lp.conn, hdr); err != nil {
		lp.t.Fatalf("legacy read header: %v", err)
	}
	if !bytes.Equal(hdr[:4], []byte("SCW1")) {
		lp.t.Fatalf("bad magic on wire: %x", hdr[:4])
	}
	if hdr[4] != 1 {
		lp.t.Fatalf("modern node sent version %d to a legacy peer; a v1 decoder drops this connection", hdr[4])
	}
	length := binary.BigEndian.Uint32(hdr[6:])
	if length > MaxFramePayload {
		lp.t.Fatalf("declared length %d exceeds the v1 bound", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(lp.conn, payload); err != nil {
		lp.t.Fatalf("legacy read payload: %v", err)
	}
	return hdr[5], append(hdr, payload...)
}

// next reads frames until one is neither a ping nor a capability
// advertisement. Pings are v1 control traffic a legacy peer answers with
// silence; the caps frame is precisely the "unknown kind" a legacy build
// skips, so skipping it here mirrors real legacy behavior — but we still
// assert it arrived as a well-formed v1 frame.
func (lp *legacyPeer) next() (byte, []byte) {
	lp.t.Helper()
	for {
		kind, raw := lp.readV1()
		if kind == byte(kindPing) || kind == byte(kindCaps) {
			continue
		}
		return kind, raw
	}
}

// TestLegacyPeerInterop proves the mixed-version contract: a modern node
// talking to a peer that never advertises trace support must emit frames
// that are byte-identical to the pre-tracing encoding, and must accept the
// legacy peer's v1 frames as untraced messages.
func TestLegacyPeerInterop(t *testing.T) {
	genesis := testGenesis()
	tr := newTestTransport(t, "modern", genesis)
	lp := dialLegacy(t, tr.Addr(), genesis, "legacy")

	waitFor(t, 5*time.Second, func() bool { return hasPeer(tr, "legacy") }, "legacy peer registered")

	// The modern node broadcasts a traced block. The legacy peer must see
	// exactly the bytes a pre-tracing build would have produced: version 1,
	// no envelope, payload untouched.
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), Span: telemetry.NewSpanID(), Start: 42}
	payload := []byte("sealed-block-bytes")
	tr.Broadcast("modern", p2p.Message{Kind: p2p.MsgBlock, Payload: payload, Trace: tc})

	kind, raw := lp.next()
	if kind != byte(p2p.MsgBlock) {
		t.Fatalf("legacy peer received kind %#x, want block", kind)
	}
	want := []byte{'S', 'C', 'W', '1', 1, byte(p2p.MsgBlock)}
	want = binary.BigEndian.AppendUint32(want, uint32(len(payload)))
	want = append(want, payload...)
	if !bytes.Equal(raw, want) {
		t.Fatalf("traced broadcast reached legacy peer as:\n got %x\nwant %x", raw, want)
	}

	// The legacy peer's own v1 frame is accepted and surfaces untraced.
	lp.writeV1(byte(p2p.MsgTx), []byte("tx-bytes"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		msgs := tr.Receive("modern")
		if len(msgs) > 0 {
			if msgs[0].Kind != p2p.MsgTx || !bytes.Equal(msgs[0].Payload, []byte("tx-bytes")) {
				t.Fatalf("legacy frame surfaced as %+v", msgs[0])
			}
			if msgs[0].Trace.Valid() {
				t.Fatalf("legacy frame grew a trace context: %+v", msgs[0].Trace)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("legacy peer's frame never surfaced")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceCapablePeersExchangeEnvelopes is the other half of the
// interop matrix: two modern transports negotiate the capability and a
// traced broadcast arrives with its context and a propagation sample.
func TestTraceCapablePeersExchangeEnvelopes(t *testing.T) {
	genesis := testGenesis()
	a := newTestTransport(t, "a", genesis)
	b := newTestTransport(t, "b", genesis, a.Addr())
	waitFor(t, 5*time.Second, func() bool { return hasPeer(a, "b") && hasPeer(b, "a") }, "mesh")

	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), Span: telemetry.NewSpanID(), Start: time.Now().UnixNano()}
	// The caps exchange races the first broadcast: frames sent before the
	// capability lands are legally stripped. Re-send until the trace
	// arrives (or the deadline proves negotiation is broken).
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.Broadcast("a", p2p.Message{Kind: p2p.MsgBlock, Payload: []byte("blk"), Trace: tc})
		var traced bool
		for _, m := range b.Receive("b") {
			if m.Trace == tc {
				traced = true
			}
		}
		if traced {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("trace context never crossed between two capable peers")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
