package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
)

// TestFrameRoundTrip is the codec property test: random kinds and payload
// sizes (including empty and max-size) survive encode→decode bit-for-bit,
// and back-to-back frames on one stream decode in order.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	var want []Frame
	for i := 0; i < 200; i++ {
		size := rng.Intn(4096)
		switch i {
		case 0:
			size = 0
		case 1:
			size = MaxFramePayload
		}
		payload := make([]byte, size)
		rng.Read(payload)
		f := Frame{Kind: p2p.MsgKind(1 + rng.Intn(3)), Payload: payload}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
		want = append(want, f)
	}
	for i, w := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if got.Kind != w.Kind || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d trailing bytes after decoding all frames", buf.Len())
	}
}

func encodeValid(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFrameRejectsGarbageMagic(t *testing.T) {
	raw := encodeValid(t, Frame{Kind: p2p.MsgTx, Payload: []byte("x")})
	raw[0] = 'X'
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameRejectsVersionMismatch(t *testing.T) {
	raw := encodeValid(t, Frame{Kind: p2p.MsgTx, Payload: []byte("x")})
	raw[4] = TraceProtocolVersion + 1 // above every version we speak
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameRejectsOversizedDeclaredLength(t *testing.T) {
	raw := encodeValid(t, Frame{Kind: p2p.MsgBlock, Payload: []byte("x")})
	binary.BigEndian.PutUint32(raw[6:], MaxFramePayload+1)
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameRefusesOversizedPayload(t *testing.T) {
	err := WriteFrame(io.Discard, Frame{Kind: p2p.MsgBlock, Payload: make([]byte, MaxFramePayload+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	full := encodeValid(t, Frame{Kind: p2p.MsgBlock, Payload: bytes.Repeat([]byte("ab"), 64)})
	for _, cut := range []int{1, headerSize - 1, headerSize, headerSize + 5, len(full) - 1} {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("cut at %d decoded successfully", cut)
		}
	}
}

// TestReadFrameGarbageNeverPanics feeds random byte streams through the
// decoder: every outcome must be a clean error or a valid frame, never a
// panic or a runaway allocation.
func TestReadFrameGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		raw := make([]byte, rng.Intn(256))
		rng.Read(raw)
		r := bytes.NewReader(raw)
		for {
			if _, err := ReadFrame(r); err != nil {
				break
			}
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := hello{NodeID: "node@10.0.0.1:9470", HeadNumber: 42}
	for i := range h.Genesis {
		h.Genesis[i] = byte(i)
		h.HeadID[i] = byte(255 - i)
	}
	got, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
}

func TestDecodeHelloRejectsMalformed(t *testing.T) {
	valid := encodeHello(hello{NodeID: "n1"})
	for name, raw := range map[string][]byte{
		"empty":        {},
		"short":        valid[:len(valid)-3],
		"trailing":     append(append([]byte{}, valid...), 0xff),
		"zero-id":      encodeHello(hello{}),
		"oversized-id": encodeHello(hello{NodeID: p2p.NodeID(bytes.Repeat([]byte("a"), maxNodeIDLen+1))}),
	} {
		if _, err := decodeHello(raw); !errors.Is(err, ErrBadHello) {
			t.Errorf("%s: err = %v, want ErrBadHello", name, err)
		}
	}
}
