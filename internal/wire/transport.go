package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Config parameterizes a TCP transport. NodeID and Genesis are required;
// everything else has serviceable defaults.
type Config struct {
	// NodeID is this process's network identity, exchanged in the
	// handshake. A wire transport hosts exactly one node.
	NodeID p2p.NodeID
	// ListenAddr is the TCP address to accept peers on ("" = dial-only).
	// Use ":0" to bind an ephemeral port and read it back via Addr.
	ListenAddr string
	// Genesis pins the chain identity; handshakes with a different
	// genesis are rejected, so two testnets on one host cannot cross.
	Genesis types.Hash
	// Peers are addresses to dial and keep dialed: each gets a dial loop
	// with exponential backoff plus jitter that re-dials on disconnect.
	Peers []string
	// Head, when set, is consulted during handshakes to advertise the
	// local canonical head. A peer whose head is ahead of ours triggers
	// an immediate MsgBlockRequest for its head — the sync kick that
	// starts orphan backfill right after (re)connecting.
	Head func() (id types.Hash, number uint64)

	// HandshakeTimeout bounds the hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReadTimeout is the per-frame read deadline; idle connections are
	// kept alive by pings sent every ReadTimeout/3 (default 90s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// DialBackoffMin/Max bound the exponential re-dial backoff
	// (defaults 250ms and 15s); actual sleeps are jittered to
	// [backoff/2, backoff] so restarting fleets do not thundering-herd.
	DialBackoffMin, DialBackoffMax time.Duration
	// QueueSize bounds each peer's outbound frame queue (default 256).
	// A full queue sheds its oldest frame — slow peers lag, they do not
	// stall the node or grow memory without bound.
	QueueSize int
}

func (cfg Config) withDefaults() Config {
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 90 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.DialBackoffMin <= 0 {
		cfg.DialBackoffMin = 250 * time.Millisecond
	}
	if cfg.DialBackoffMax < cfg.DialBackoffMin {
		cfg.DialBackoffMax = 15 * time.Second
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	return cfg
}

// peer is one live, handshaken connection.
type peer struct {
	id     p2p.NodeID
	conn   net.Conn
	out    chan Frame
	done   chan struct{}
	dialed bool // we initiated the connection
	once   sync.Once
	// traceCapable flips when the peer's kindCaps frame advertises the
	// trace capability; until then (and forever, for legacy peers) every
	// outbound frame is stripped to the byte-identical version-1 form.
	traceCapable atomic.Bool
	// snapCapable flips with the snap bit of the same frame; the
	// transport then fabricates a local MsgHeadAnnounce so the node's
	// syncer learns the peer's handshake head and capabilities together.
	snapCapable atomic.Bool
	// helloHead/helloHeadNumber are the canonical head the peer
	// advertised in its handshake, frozen at connection setup.
	helloHead       types.Hash
	helloHeadNumber uint64
}

// Transport is a TCP implementation of p2p.Transport. All methods are
// safe for concurrent use.
type Transport struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	peers  map[p2p.NodeID]*peer
	inbox  []p2p.Message
	closed bool

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

var _ p2p.Transport = (*Transport)(nil)

// ErrUnknownPeer is returned by Send for destinations with no live
// connection.
var ErrUnknownPeer = errors.New("wire: no connection to peer")

// New creates a transport and, if ListenAddr is set, binds its listener.
// Call Start to begin accepting and dialing.
func New(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeID == "" {
		return nil, errors.New("wire: config requires a NodeID")
	}
	t := &Transport{
		cfg:   cfg,
		peers: make(map[p2p.NodeID]*peer),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("wire: listen %s: %w", cfg.ListenAddr, err)
		}
		t.ln = ln
	}
	return t, nil
}

// Start launches the accept loop and one dial loop per configured peer.
func (t *Transport) Start() {
	if t.ln != nil {
		t.wg.Add(1)
		go t.acceptLoop()
	}
	for _, addr := range t.cfg.Peers {
		t.AddPeer(addr)
	}
}

// AddPeer starts a persistent dial loop towards addr at runtime.
func (t *Transport) AddPeer(addr string) {
	t.wg.Add(1)
	go t.dialLoop(addr)
}

// Addr returns the bound listen address ("" for dial-only transports).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close tears the transport down: listener, dial loops, and every peer.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()

	close(t.stop)
	if t.ln != nil {
		_ = t.ln.Close()
	}
	for _, p := range peers {
		t.teardown(p)
	}
	t.wg.Wait()
	return nil
}

// --- p2p.Transport ---------------------------------------------------------

// Join is a no-op: a wire transport hosts exactly the configured node.
func (t *Transport) Join(p2p.NodeID) {}

// Send queues msg for the named peer. Unknown peers error — the caller's
// retry/backfill logic decides what that means.
func (t *Transport) Send(_, to p2p.NodeID, msg p2p.Message) error {
	t.mu.Lock()
	p, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	t.enqueue(p, Frame{Kind: msg.Kind, Payload: msg.Payload, Trace: msg.Trace})
	return nil
}

// Broadcast queues msg for every connected peer.
func (t *Transport) Broadcast(_ p2p.NodeID, msg p2p.Message) {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	mFanout.Observe(uint64(len(peers)))
	for _, p := range peers {
		t.enqueue(p, Frame{Kind: msg.Kind, Payload: msg.Payload, Trace: msg.Trace})
	}
}

// Receive drains the messages delivered for the local node.
func (t *Transport) Receive(id p2p.NodeID) []p2p.Message {
	if id != t.cfg.NodeID {
		return nil
	}
	t.mu.Lock()
	msgs := t.inbox
	t.inbox = nil
	t.mu.Unlock()
	return msgs
}

// Wake signals (capacity-1, non-blocking) whenever a message lands in the
// inbox, so drivers can block on it instead of polling Receive.
func (t *Transport) Wake() <-chan struct{} { return t.wake }

// PeerIDs returns the ids of the currently connected peers.
func (t *Transport) PeerIDs() []p2p.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]p2p.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// --- connection management -------------------------------------------------

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			default:
			}
			// Transient accept failure; brief pause avoids a hot loop.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.setupConn(conn, false)
		}()
	}
}

// dialLoop keeps one configured peer dialed: exponential backoff with
// jitter between attempts, reset on success, and a park while a duplicate
// connection to the same node already exists.
func (t *Transport) dialLoop(addr string) {
	defer t.wg.Done()
	backoff := t.cfg.DialBackoffMin
	connectedBefore := false
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		mDialAttempts.Inc()
		conn, err := net.DialTimeout("tcp", addr, t.cfg.HandshakeTimeout)
		if err != nil {
			mDialFailures.Inc()
			if !t.sleep(jitter(backoff)) {
				return
			}
			backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
			continue
		}
		p, ok := t.setupConn(conn, true)
		if p == nil && !ok {
			// Handshake failed; treat like a dial failure.
			if !t.sleep(jitter(backoff)) {
				return
			}
			backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
			continue
		}
		if !ok {
			// Duplicate: a live connection to this node already exists.
			// Park until it drops, then resume dialing promptly.
			select {
			case <-p.done:
			case <-t.stop:
				return
			}
			backoff = t.cfg.DialBackoffMin
			continue
		}
		if connectedBefore {
			mReconnects.Inc()
		}
		connectedBefore = true
		backoff = t.cfg.DialBackoffMin
		select {
		case <-p.done:
		case <-t.stop:
			return
		}
		if !t.sleep(jitter(t.cfg.DialBackoffMin)) {
			return
		}
	}
}

// setupConn handshakes a fresh connection and registers the peer. The
// returns are (peer, true) on success, (existing, false) when deduplicated
// against a live connection, and (nil, false) on handshake failure.
func (t *Transport) setupConn(conn net.Conn, dialed bool) (*peer, bool) {
	h, err := t.handshake(conn)
	if err != nil {
		handshakeFailure(handshakeFailReason(err)).Inc()
		_ = conn.Close()
		return nil, false
	}
	p := &peer{
		id:              h.NodeID,
		conn:            conn,
		out:             make(chan Frame, t.cfg.QueueSize),
		done:            make(chan struct{}),
		dialed:          dialed,
		helloHead:       h.HeadID,
		helloHeadNumber: h.HeadNumber,
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil, false
	}
	if existing, dup := t.peers[p.id]; dup {
		// Simultaneous dials create two connections per pair. Both sides
		// keep the one initiated by the smaller node id so they agree
		// without coordination.
		keepNew := (t.cfg.NodeID < p.id) == p.dialed && (t.cfg.NodeID < p.id) != existing.dialed
		if !keepNew {
			t.mu.Unlock()
			handshakeFailure("duplicate").Inc()
			_ = conn.Close()
			return existing, false
		}
		t.mu.Unlock()
		t.teardown(existing)
		t.mu.Lock()
		if t.closed || t.peers[p.id] != nil {
			t.mu.Unlock()
			_ = conn.Close()
			return nil, false
		}
	}
	t.peers[p.id] = p
	mPeers.Set(int64(len(t.peers)))
	t.mu.Unlock()
	mHandshakesOK.Inc()
	if dialed {
		mDialSuccesses.Inc()
	}

	t.wg.Add(2)
	go func() { defer t.wg.Done(); t.readLoop(p) }()
	go func() { defer t.wg.Done(); t.writeLoop(p) }()

	// Capability advertisement: a version-1 control frame listing the
	// optional protocol features we speak. Legacy peers count it as an
	// unknown kind and drop it; peers that understand it start sending us
	// traced (version-2) frames. First in the queue so it precedes any
	// protocol traffic.
	t.enqueue(p, Frame{Kind: kindCaps, Payload: encodeCaps()})

	// Sync kick: if the peer's canonical head is ahead of ours, ask for
	// it immediately. The reply flows through the node's normal orphan
	// backfill, pulling the missing ancestry without waiting for gossip.
	if t.cfg.Head != nil {
		if _, localNum := t.cfg.Head(); h.HeadNumber > localNum {
			mSyncKicks.Inc()
			t.enqueue(p, Frame{Kind: p2p.MsgBlockRequest, Payload: p2p.EncodeBlockRequest(h.HeadID)})
		}
	}
	return p, true
}

// teardown closes a peer exactly once and unregisters it.
func (t *Transport) teardown(p *peer) {
	p.once.Do(func() {
		close(p.done)
		_ = p.conn.Close()
		t.mu.Lock()
		if t.peers[p.id] == p {
			delete(t.peers, p.id)
			mPeers.Set(int64(len(t.peers)))
		}
		t.mu.Unlock()
		mDisconnects.Inc()
	})
}

// readLoop decodes frames off the socket and delivers protocol messages
// into the inbox. Any codec or socket error drops the connection — the
// dial loop (if any) will re-establish it.
func (t *Transport) readLoop(p *peer) {
	defer t.teardown(p)
	for {
		if err := p.conn.SetReadDeadline(time.Now().Add(t.cfg.ReadTimeout)); err != nil {
			return
		}
		f, err := ReadFrame(p.conn)
		if err != nil {
			return
		}
		mFramesIn.Inc()
		mBytesIn.Add(uint64(headerSize + len(f.Payload)))
		switch f.Kind {
		case kindPing, kindHello:
			continue
		case kindCaps:
			trace, snap := decodeCaps(f.Payload)
			if trace && !p.traceCapable.Swap(true) {
				mTracePeers.Inc()
			}
			if snap && !p.snapCapable.Swap(true) {
				mSnapPeers.Inc()
			}
			// The capability frame is the earliest moment we know both the
			// peer's head (from its handshake) and what it speaks. Fabricate
			// a local head announce so the node's syncer can decide whether
			// to snap-sync from this peer. The kind is never accepted off
			// the socket (see below), so the announce — and the capability
			// claim inside it — can only originate here.
			t.deliver(p2p.Message{
				From:    p.id,
				Kind:    p2p.MsgHeadAnnounce,
				Payload: p2p.EncodeHeadAnnounce(p.helloHead, p.helloHeadNumber, snap),
			})
			continue
		case p2p.MsgHeadAnnounce:
			// Synthetic-only kind: a remote frame claiming it is hostile
			// or confused either way.
			mUnknownFrames.Inc()
		case p2p.MsgTx, p2p.MsgBlock, p2p.MsgBlockRequest:
			if f.Trace.Valid() {
				observePropagation(f)
			}
			t.deliver(p2p.Message{From: p.id, Kind: f.Kind, Payload: f.Payload, Trace: f.Trace})
		case p2p.MsgSnapRequest, p2p.MsgSnapManifest, p2p.MsgSnapChunk,
			p2p.MsgSnapChunkRequest, p2p.MsgRangeRequest, p2p.MsgRangeBlocks:
			t.deliver(p2p.Message{From: p.id, Kind: f.Kind, Payload: f.Payload, Trace: f.Trace})
		default:
			mUnknownFrames.Inc()
		}
	}
}

// writeLoop drains the peer's outbound queue under per-frame write
// deadlines, pinging when idle so the remote read deadline never fires on
// a healthy connection.
func (t *Transport) writeLoop(p *peer) {
	defer t.teardown(p)
	ping := time.NewTicker(t.cfg.ReadTimeout / 3)
	defer ping.Stop()
	for {
		var f Frame
		select {
		case f = <-p.out:
		case <-ping.C:
			f = Frame{Kind: kindPing}
		case <-p.done:
			return
		}
		if err := p.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout)); err != nil {
			return
		}
		if f.Trace.Valid() {
			if p.traceCapable.Load() {
				// Stamp the send time last, so the receiver's one-hop
				// measurement excludes our queueing delay as little as
				// possible (it still includes the socket write).
				f.SentNanos = time.Now().UnixNano()
			} else {
				// The peer never advertised trace support: strip the
				// context so the bytes on the wire are exactly the
				// version-1 encoding it expects.
				f.Trace = telemetry.TraceContext{}
				f.SentNanos = 0
			}
		}
		if err := WriteFrame(p.conn, f); err != nil {
			return
		}
		mFramesOut.Inc()
		mBytesOut.Add(uint64(headerSize + len(f.Payload)))
	}
}

// enqueue adds a frame to a peer's bounded outbound queue, shedding the
// oldest queued frame when full: fresh chain state beats stale gossip,
// and a stalled peer can always re-request what it missed.
func (t *Transport) enqueue(p *peer, f Frame) {
	for {
		select {
		case p.out <- f:
			mQueueDepth.Observe(uint64(len(p.out)))
			return
		default:
		}
		select {
		case <-p.out:
			mQueueShed.Inc()
		default:
		}
	}
}

// deliver appends a message to the inbox and signals Wake.
func (t *Transport) deliver(msg p2p.Message) {
	t.mu.Lock()
	t.inbox = append(t.inbox, msg)
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// sleep waits d unless the transport is closing; it reports whether the
// caller should continue.
func (t *Transport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.stop:
		return false
	}
}

// jitter spreads a backoff uniformly over [d/2, d].
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// nextBackoff doubles towards the cap.
func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		return max
	}
	return d
}
