package wire

import (
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/detection"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// wireNode is one in-process "process": a full provider node attached to
// its own TCP transport, exactly as cmd/smartcrowd's node command wires
// them, just without the OS-process boundary so the test can drive message
// pumping deterministically.
type wireNode struct {
	prov *node.ProviderNode
	tr   *Transport
}

func newWireNode(t *testing.T, id string, peers ...string) *wireNode {
	t.Helper()
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), detection.NewGroundTruthVerifier(false)))
	cfg.SkipPoWCheck = true // mining is stamped, not ground, in this test
	prov, err := node.NewProvider(p2p.NodeID(id), wallet.NewDeterministic(id), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{
		NodeID:     p2p.NodeID(id),
		ListenAddr: "127.0.0.1:0",
		Genesis:    prov.Chain().Genesis().ID(),
		Peers:      peers,
		Head: func() (types.Hash, uint64) {
			head := prov.Chain().Head()
			return head.ID(), head.Header.Number
		},
		HandshakeTimeout: 2 * time.Second,
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		DialBackoffMin:   20 * time.Millisecond,
		DialBackoffMax:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	prov.AttachTransport(tr)
	tr.Start()
	return &wireNode{prov: prov, tr: tr}
}

// pumpUntilConverged drives every node's message loop until all chains
// report the same head at the wanted height.
func pumpUntilConverged(t *testing.T, nodes []*wireNode, height uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			n.prov.HandleMessages()
		}
		head := nodes[0].prov.Chain().Head()
		converged := head.Header.Number == height
		for _, n := range nodes[1:] {
			if n.prov.Chain().Head().ID() != head.ID() {
				converged = false
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range nodes {
		h := n.prov.Chain().Head()
		t.Logf("node %s: head %d (%s)", n.prov.ID(), h.Header.Number, h.ID().Short())
	}
	t.Fatalf("nodes did not converge at height %d", height)
}

// TestThreeNodeConvergence is the tentpole's headline proof: three nodes
// gossip over real TCP sockets to a common head, one is killed and the
// network advances without it, and a replacement node for the same
// identity rejoins, sync-kicks off the handshake head advertisement, and
// backfills to the canonical chain.
func TestThreeNodeConvergence(t *testing.T) {
	n1 := newWireNode(t, "n1")
	n2 := newWireNode(t, "n2", n1.tr.Addr())
	n3 := newWireNode(t, "n3", n1.tr.Addr(), n2.tr.Addr())
	all := []*wireNode{n1, n2, n3}

	waitFor(t, 5*time.Second, func() bool {
		return hasPeer(n1.tr, "n2") && hasPeer(n1.tr, "n3") &&
			hasPeer(n2.tr, "n1") && hasPeer(n2.tr, "n3") &&
			hasPeer(n3.tr, "n1") && hasPeer(n3.tr, "n2")
	}, "full mesh")

	// Phase 1: n1 mines, everyone follows. The pre-mining snapshot lets
	// the trace assertions below measure exactly this phase's wire
	// propagation samples.
	pre := telemetry.TakeSnapshot()
	ts := uint64(1_000)
	const difficulty = 1_000
	var lastBlk *types.Block
	for i := 0; i < 3; i++ {
		ts++
		blk, err := n1.prov.MineBlock(ts, difficulty, 0, 0)
		if err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
		lastBlk = blk
	}
	pumpUntilConverged(t, all, 3, 10*time.Second)

	// Tracing over the wire: the block's seal trace, minted on n1, must be
	// the trace every peer filed its import under — the context rode the
	// gossip frames, not process-local state.
	sealTC, ok := n1.prov.TraceOf(lastBlk.ID())
	if !ok || !sealTC.Valid() {
		t.Fatal("miner did not retain a trace context for its own block")
	}
	for _, n := range []*wireNode{n2, n3} {
		got, ok := n.prov.TraceOf(lastBlk.ID())
		if !ok {
			t.Fatalf("node %s has no trace for the gossiped block", n.prov.ID())
		}
		if got.TraceID != sealTC.TraceID {
			t.Fatalf("node %s filed block under trace %s, want %s", n.prov.ID(), got.TraceID, sealTC.TraceID)
		}
	}
	// All three nodes share this process's trace store, so the one record
	// should hold the miner's seal span plus an import span per follower.
	rec, ok := telemetry.GetTrace(sealTC.TraceID)
	if !ok {
		t.Fatalf("trace %s not in the store", sealTC.TraceID)
	}
	importedOn := map[string]bool{}
	for _, sp := range rec.Spans {
		if sp.Name == "block.import" {
			importedOn[sp.Labels["node"]] = true
		}
	}
	for _, id := range []string{"n2", "n3"} {
		if !importedOn[id] {
			t.Fatalf("trace %s has no block.import span for node %s (spans: %+v)", sealTC.TraceID, id, rec.Spans)
		}
	}
	// And the traced frames produced latency samples on both legs.
	delta := telemetry.TakeSnapshot().Delta(pre)
	if hops := delta[`smartcrowd_wire_propagation_ms_count{leg="hop"}`]; hops < 1 {
		t.Fatalf("no per-hop propagation samples recorded (delta %v)", delta)
	}
	if e2e := delta[`smartcrowd_wire_propagation_ms_count{leg="e2e"}`]; e2e < 1 {
		t.Fatalf("no end-to-end propagation samples recorded (delta %v)", delta)
	}

	// Phase 2: partition — kill n3's transport, network keeps advancing.
	n3.tr.Close()
	waitFor(t, 5*time.Second, func() bool { return !hasPeer(n1.tr, "n3") && !hasPeer(n2.tr, "n3") }, "n3 gone")
	for i := 0; i < 3; i++ {
		ts++
		if _, err := n1.prov.MineBlock(ts, difficulty, 0, 0); err != nil {
			t.Fatalf("mine block %d: %v", i+4, err)
		}
	}
	pumpUntilConverged(t, []*wireNode{n1, n2}, 6, 10*time.Second)
	if got := n3.prov.Chain().HeadNumber(); got != 3 {
		t.Fatalf("partitioned node advanced to %d, want 3", got)
	}

	// Phase 3: rejoin — a fresh transport for n3 dials back in. The
	// handshake advertises n1's head, the sync kick requests it, and the
	// orphan backfill pulls blocks 4–6 without any new mining.
	tr3b, err := New(Config{
		NodeID:     "n3",
		ListenAddr: "127.0.0.1:0",
		Genesis:    n3.prov.Chain().Genesis().ID(),
		Peers:      []string{n1.tr.Addr()},
		Head: func() (types.Hash, uint64) {
			head := n3.prov.Chain().Head()
			return head.ID(), head.Header.Number
		},
		HandshakeTimeout: 2 * time.Second,
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		DialBackoffMin:   20 * time.Millisecond,
		DialBackoffMax:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr3b.Close() })
	n3.prov.AttachTransport(tr3b)
	n3.tr = tr3b
	tr3b.Start()

	pumpUntilConverged(t, all, 6, 10*time.Second)
	want := n1.prov.Chain().Head().ID()
	if got := n3.prov.Chain().Head().ID(); got != want {
		t.Fatalf("rejoined node head %s, want %s", got.Short(), want.Short())
	}
}

// TestSnapSyncOverTCP proves the snap path end to end on real sockets: a
// node grows a chain past the snap threshold, then a cold node dials in.
// The capability exchange fabricates the head announce, the joiner pulls
// manifest, state chunks and the block prefix over the wire, verifies the
// snapshot against the commitment root, and lands on the server's head —
// all without the test injecting a single protocol message.
func TestSnapSyncOverTCP(t *testing.T) {
	server := newWireNode(t, "srv")
	ts := uint64(1_000)
	for i := 0; i < 40; i++ {
		ts += 15_000
		if _, err := server.prov.MineBlock(ts, 1_000, 0, 0); err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
	}

	pre := telemetry.TakeSnapshot()
	joiner := newWireNode(t, "join", server.tr.Addr())
	pumpUntilConverged(t, []*wireNode{server, joiner}, 40, 15*time.Second)

	if got, want := joiner.prov.Chain().Head().ID(), server.prov.Chain().Head().ID(); got != want {
		t.Fatalf("joiner head %s, want %s", got.Short(), want.Short())
	}
	if got := joiner.prov.Chain().State().Root(); got != server.prov.Chain().State().Root() {
		t.Fatal("joiner state root diverges after snap-sync")
	}
	delta := telemetry.TakeSnapshot().Delta(pre)
	if delta["smartcrowd_node_snapshots_adopted_total"] < 1 {
		t.Fatalf("joiner did not adopt a snapshot (delta %v)", delta)
	}
	if delta["smartcrowd_wire_snap_peers_total"] < 1 {
		t.Fatalf("snap capability never negotiated (delta %v)", delta)
	}
	if st := joiner.prov.SyncStatus(); st.Mode != node.SyncLive || st.ApplyingSnapshot {
		t.Fatalf("post-sync status = %+v, want live", st)
	}
}
