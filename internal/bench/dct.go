package bench

import (
	"fmt"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// AnalysisDCT quantifies the paper's Eq. 11 argument: total detection
// capability DC_T = Σ DC_i·ρ_i grows toward 1 as more detectors join —
// "more detectors' participation attracted by the incentives in SmartCrowd
// will introduce a more comprehensive detection result". The measured
// column runs the full platform with m detectors of fixed individual
// capability 0.5 and reports the fraction of the vulnerability universe
// that ends up confirmed on chain.
func AnalysisDCT(scale Scale) (*Report, error) {
	const (
		perDetector = 0.5 // DC_i: each detector finds half the flaws
		vulns       = 40
	)
	crowdSizes := []int{1, 2, 4, 8, 16}
	trials := 2
	if scale == Full {
		trials = 10
	}

	r := &Report{
		ID:      "abl-dct",
		Title:   "Total detection capability vs crowd size (Eq. 11)",
		Headers: []string{"Detectors m", "Theory DC_T", "Measured coverage"},
		ShapeOK: true,
	}

	theory := func(m int) float64 {
		// With identical DC_i = c and ρ_i = share of first-reports, the
		// expected coverage is 1 − (1−c)^m: a vulnerability stays hidden
		// only if every detector misses it.
		p := 1.0
		for i := 0; i < m; i++ {
			p *= 1 - perDetector
		}
		return 1 - p
	}

	measured := make([]float64, len(crowdSizes))
	theories := make([]float64, len(crowdSizes))
	for ci, m := range crowdSizes {
		theories[ci] = theory(m)
		var covered float64
		for trial := 0; trial < trials; trial++ {
			detectors := make([]sim.DetectorSpec, m)
			for i := range detectors {
				detectors[i] = sim.DetectorSpec{
					Name:       fmt.Sprintf("d%d", i),
					Threads:    4,
					Capability: perDetector,
				}
			}
			res, err := sim.Run(sim.Config{
				Seed:      901 + int64(ci*100+trial),
				Providers: paperProviderSpecs(),
				Detectors: detectors,
				Releases: []sim.ReleaseSpec{{
					Provider: 2, At: 30 * time.Second,
					Insurance: types.EtherAmount(2000), Bounty: types.EtherAmount(2),
					NumVulns: vulns,
				}},
				Horizon:      30 * time.Minute,
				MeanFindTime: 45 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			covered += float64(res.SRAs[0].Confirmed) / vulns
		}
		measured[ci] = covered / float64(trials)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.3f", theories[ci]),
			fmt.Sprintf("%.3f", measured[ci]),
		})
	}

	// Shape 1: coverage grows with crowd size.
	growing := true
	for i := 1; i < len(crowdSizes); i++ {
		if measured[i] < measured[i-1] {
			growing = false
		}
	}
	r.check(growing, "measured coverage grows with the detector crowd")

	// Shape 2: with 16 half-capable detectors, coverage approaches 1.
	r.check(measured[len(crowdSizes)-1] > 0.95,
		"16 detectors at DC=0.5 cover %.1f%% (Eq. 11: DC_T → 1 as m grows)",
		measured[len(crowdSizes)-1]*100)

	// Shape 3: measurements track 1−(1−c)^m within 10 points.
	tracks := true
	for i := range crowdSizes {
		if diff := measured[i] - theories[i]; diff > 0.10 || diff < -0.10 {
			tracks = false
		}
	}
	r.check(tracks, "measured coverage tracks the 1−(1−DC)^m model within ±0.10")
	return r, nil
}
