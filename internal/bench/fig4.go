package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Fig4a regenerates Fig. 4(a): cumulative provider incentives (mining
// rewards + transaction fees) over time, per hashing-power proportion.
// Releases and detector traffic supply the fee income.
func Fig4a(scale Scale) (*Report, error) {
	horizon := 30 * time.Minute
	trials := 3
	if scale == Full {
		trials = 10
	}

	specs := paperProviderSpecs()
	checkpoints := []time.Duration{10 * time.Minute, 20 * time.Minute, 30 * time.Minute}
	// cumulative[trial][provider][checkpoint]
	totals := make([][]float64, len(specs))
	for i := range totals {
		totals[i] = make([]float64, len(checkpoints))
	}

	for trial := 0; trial < trials; trial++ {
		res, err := sim.Run(sim.Config{
			Seed:      401 + int64(trial),
			Providers: specs,
			Detectors: []sim.DetectorSpec{
				{Name: "d1", Threads: 2}, {Name: "d2", Threads: 4}, {Name: "d3", Threads: 8},
			},
			Releases: []sim.ReleaseSpec{
				{Provider: 0, At: time.Minute, Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 8},
				{Provider: 1, At: 5 * time.Minute, Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 8},
			},
			Horizon: horizon,
		})
		if err != nil {
			return nil, err
		}
		reward := res.Chain.Config().BlockReward.Ether()
		for _, b := range res.Blocks {
			for ci, cp := range checkpoints {
				if b.Time <= cp {
					totals[b.Miner][ci] += reward + b.Fees.Ether()
				}
			}
		}
	}

	r := &Report{
		ID:      "fig4a",
		Title:   "Provider incentives (mining + fees) over time",
		Headers: []string{"Provider", "HP %", "10 min (ETH)", "20 min (ETH)", "30 min (ETH)"},
		ShapeOK: true,
	}
	for i, spec := range specs {
		row := []string{spec.Name, fmt.Sprintf("%.2f", spec.HashShare*100)}
		for ci := range checkpoints {
			row = append(row, fmt.Sprintf("%.1f", totals[i][ci]/float64(trials)))
		}
		r.Rows = append(r.Rows, row)
	}

	// Shape 1: incentives increase with time for every provider.
	increasing := true
	for i := range specs {
		for ci := 1; ci < len(checkpoints); ci++ {
			if totals[i][ci] < totals[i][ci-1] {
				increasing = false
			}
		}
	}
	r.check(increasing, "incentives grow with participation time")

	// Shape 2: at 30 minutes the strongest provider out-earns the weakest
	// (the paper notes ordering holds but is not strictly proportional —
	// mining is probabilistic).
	r.check(totals[0][2] > totals[4][2],
		"26.3%% HP out-earns 10.1%% HP at 30 min (%.1f vs %.1f ETH)",
		totals[0][2]/float64(trials), totals[4][2]/float64(trials))
	ratio := totals[0][2] / math.Max(totals[4][2], 1e-9)
	r.note("earnings ratio 26.3%%/10.1%% = %.2f (power ratio 2.60; paper: \"not strictly obeying\" proportions)", ratio)
	return r, nil
}

// Fig4b regenerates Fig. 4(b): provider punishments as a function of the
// vulnerability proportion (VP), for insurances of 500, 1000 and 1500
// ether. VP maps to the expected forfeiture VP·I, i.e. an image with
// N = VP·I/μ vulnerabilities at bounty μ.
func Fig4b(scale Scale) (*Report, error) {
	bounty := types.EtherAmount(5)
	insurances := []uint64{500, 1000, 1500}
	vps := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	// The horizon must leave room for every find→commit→confirm→reveal
	// pipeline to drain, or late claims deflate the punishment tail.
	horizon := 20 * time.Minute
	if scale == Full {
		horizon = 30 * time.Minute
	}

	// punished[insurance][vp] in ether.
	punished := make([][]float64, len(insurances))
	for ii, ins := range insurances {
		punished[ii] = make([]float64, len(vps))
		for vi, vp := range vps {
			numVulns := int(math.Round(vp * float64(ins) / 5))
			res, err := sim.Run(sim.Config{
				Seed:      421 + int64(ii*10+vi),
				Providers: paperProviderSpecs(),
				Detectors: []sim.DetectorSpec{
					{Name: "d1", Threads: 4}, {Name: "d2", Threads: 8},
				},
				Releases: []sim.ReleaseSpec{{
					Provider:  2, // the 14.9% provider, as §VII-B uses
					At:        30 * time.Second,
					Insurance: types.EtherAmount(ins),
					Bounty:    bounty,
					NumVulns:  numVulns,
				}},
				Horizon:      horizon,
				MeanFindTime: 30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			bal := res.ProviderBalance(2)
			punished[ii][vi] = (bal.Punishment + bal.Gas).Ether()
		}
	}

	r := &Report{
		ID:      "fig4b",
		Title:   "Provider punishments vs vulnerability proportion",
		Headers: []string{"VP", "I=500 (ETH)", "I=1000 (ETH)", "I=1500 (ETH)"},
		ShapeOK: true,
	}
	for vi, vp := range vps {
		row := []string{fmt.Sprintf("%.2f", vp)}
		for ii := range insurances {
			row = append(row, fmt.Sprintf("%.2f", punished[ii][vi]))
		}
		r.Rows = append(r.Rows, row)
	}

	// Shape 1: punishment non-decreasing in VP for each insurance.
	monotone := true
	for ii := range insurances {
		for vi := 1; vi < len(vps); vi++ {
			if punished[ii][vi]+1e-9 < punished[ii][vi-1] {
				monotone = false
			}
		}
	}
	r.check(monotone, "punishment grows with VP")

	// Shape 2: larger insurance ⇒ steeper punishment line.
	steeper := punished[2][len(vps)-1] > punished[0][len(vps)-1]
	r.check(steeper, "higher insurance steepens punishment (I=1500 tops I=500 at VP=0.10: %.1f vs %.1f ETH)",
		punished[2][len(vps)-1], punished[0][len(vps)-1])

	// Shape 3: at VP=0 only the deployment gas (~0.095 ether) remains.
	deployOnly := true
	for ii := range insurances {
		if math.Abs(punished[ii][0]-0.095) > 0.02 {
			deployOnly = false
		}
	}
	r.check(deployOnly, "at VP=0 the punishment reduces to the ≈0.095-ether deployment cost")
	return r, nil
}
