package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/vm"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// Handles on the parallel executor's counters (registered with help text
// by internal/chain); the experiment reads deltas around the measured
// import to prove speculation engaged and stayed conflict-free.
var (
	cExecParSpec = telemetry.GetCounter("smartcrowd_chain_exec_parallel_speculative_total")
	cExecParConf = telemetry.GetCounter("smartcrowd_chain_exec_parallel_conflicts_total")
	cExecParFall = telemetry.GetCounter("smartcrowd_chain_exec_parallel_fallback_total")
)

// ExecPar measures stage 2 of block import — transaction execution —
// serial versus the optimistic parallel executor (chain/parallel.go).
// The workload is built to be embarrassingly parallel at the account
// level: N independent senders each deploy a private gas-burning SCVM
// loop contract, then every measured block carries one call per sender
// to its own contract. Read/write sets are disjoint across senders, so
// the parallel executor should commit a fully clean prefix every block
// with zero conflicts, re-executions, or dense fallbacks.
//
// Sender caches are pre-warmed on both block copies before timing so
// ECDSA recovery (stage 1's cost, measured by syncpipeline) is excluded
// and VM execution dominates. Equivalence checks (same head, roots,
// receipts as the serial oracle) hold on any machine; the ≥1.5x speedup
// claim is only enforced with 4+ cores.
func ExecPar(scale Scale) (*Report, error) {
	senders, blocks, iters := 8, 24, 2_000
	if scale == Full {
		senders, blocks, iters = 16, 96, 2_000
	}
	cores := runtime.NumCPU()
	// Always run the measured path with at least two workers: even on a
	// single core the optimistic executor must speculate and stay
	// bit-identical; only the speedup claim needs real parallelism.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}

	r := &Report{
		ID:      "execpar",
		Title:   "Execution parallelism: optimistic parallel stage 2 vs serial oracle",
		Headers: []string{"Path", "Result"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	cfg, wire, err := buildExecParSource(senders, blocks, uint64(iters))
	if err != nil {
		return nil, err
	}

	// Two independently decoded copies, then sender caches warmed on
	// both so the timed sections compare execution alone.
	serialBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	parBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	for _, blk := range serialBlocks {
		types.RecoverSenders(blk.Txs)
	}
	for _, blk := range parBlocks {
		types.RecoverSenders(blk.Txs)
	}

	// Serial oracle: ExecParallelism 1 pins stage 2 to execTxsSerial.
	serialCfg := cfg
	serialCfg.ExecParallelism = 1
	serialChain, err := chain.New(serialCfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, blk := range serialBlocks {
		if _, err := serialChain.InsertBlock(blk); err != nil {
			return nil, fmt.Errorf("execpar: serial insert #%d: %w", blk.Header.Number, err)
		}
	}
	serialNS := float64(time.Since(start).Nanoseconds())

	// Parallel path: identical InsertBlock loop, only the stage-2
	// executor differs. Counter deltas confirm speculation engaged and
	// the disjoint workload stayed conflict-free.
	parCfg := cfg
	parCfg.ExecParallelism = workers
	parChain, err := chain.New(parCfg)
	if err != nil {
		return nil, err
	}
	spec0 := cExecParSpec.Value()
	conf0 := cExecParConf.Value()
	fall0 := cExecParFall.Value()
	start = time.Now()
	for _, blk := range parBlocks {
		if _, err := parChain.InsertBlock(blk); err != nil {
			return nil, fmt.Errorf("execpar: parallel insert #%d: %w", blk.Header.Number, err)
		}
	}
	parNS := float64(time.Since(start).Nanoseconds())
	spec := cExecParSpec.Value() - spec0
	conf := cExecParConf.Value() - conf0
	fall := cExecParFall.Value() - fall0

	speedup := serialNS / parNS
	r.Metrics["senders"] = float64(senders)
	r.Metrics["blocks"] = float64(blocks)
	r.Metrics["loop_iters"] = float64(iters)
	r.Metrics["cores"] = float64(cores)
	r.Metrics["workers"] = float64(workers)
	r.Metrics["serial_ns"] = serialNS
	r.Metrics["parallel_ns"] = parNS
	r.Metrics["speedup"] = speedup
	r.Metrics["speculative_txs"] = float64(spec)
	r.Metrics["conflicts"] = float64(conf)
	r.Metrics["fallbacks"] = float64(fall)

	r.Rows = [][]string{
		{"serial stage 2", fmt.Sprintf("%.3f s (%.1f blocks/sec)", serialNS/1e9, float64(blocks)/(serialNS/1e9))},
		{"parallel stage 2", fmt.Sprintf("%.3f s (%.1f blocks/sec, %d workers)", parNS/1e9, float64(blocks)/(parNS/1e9), workers)},
		{"speedup", fmt.Sprintf("%.2fx on %d cores", speedup, cores)},
	}

	// Equivalence: the optimistic executor must be bit-identical.
	r.check(parChain.Head().ID() == serialChain.Head().ID(), "parallel head matches serial head")
	rootsOK, receiptsOK, err := compareChains(serialChain, parChain)
	if err != nil {
		return nil, err
	}
	r.check(rootsOK, "state roots match at every sampled height")
	r.check(receiptsOK, "every receipt matches the serial oracle")
	r.check(spec > 0, "parallel executor speculated (%d txs)", spec)
	r.check(conf == 0 && fall == 0,
		"disjoint workload stayed conflict-free (%d conflicts, %d fallbacks)", conf, fall)

	// Performance: only a claim where there are cores to claim it on.
	if cores >= 4 {
		r.check(speedup >= 1.5, "parallel execution ≥1.5x faster than serial (%.2fx on %d cores)", speedup, cores)
	} else {
		r.note("[SKIP] ≥1.5x speedup check needs ≥4 cores, have %d (measured %.2fx)", cores, speedup)
	}
	return r, nil
}

// loopContractInit assembles deployment init code for a contract that
// burns ~24 gas × iters in a countdown loop and stops. The SCVM has no
// CODECOPY, so the init code materializes the runtime (≤32 bytes) as a
// single left-aligned PUSH32 word, stores it at memory 0, and returns
// the runtime-length prefix.
func loopContractInit(iters uint64) []byte {
	runtime := vm.MustAssemble(fmt.Sprintf(`
		PUSH %d        ; countdown counter
	loop:
		PUSH 1
		SWAP1
		SUB            ; counter-1
		DUP1           ; copy for the JUMPI condition
		PUSH @loop
		JUMPI          ; loop while counter != 0
		STOP
	`, iters))
	if len(runtime) == 0 || len(runtime) > 32 || runtime[0] == 0 {
		panic("execpar: loop runtime must be 1..32 bytes with a non-zero lead byte")
	}
	var word [32]byte
	copy(word[:], runtime)
	return vm.MustAssemble(fmt.Sprintf(`
		PUSH 0x%x      ; runtime code, right-padded to one word
		PUSH 0
		MSTORE
		PUSH %d        ; runtime length
		PUSH 0
		RETURN
	`, word, len(runtime)))
}

// buildExecParSource mines the workload chain — block 1 deploys one
// loop contract per sender, every later block carries one call per
// sender to its own contract — and returns its config plus every
// non-genesis block's wire encoding.
func buildExecParSource(senders, blocks int, iters uint64) (chain.Config, [][]byte, error) {
	miner := wallet.NewDeterministic("execpar-miner").Address()
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = make(map[types.Address]types.Amount, senders)

	wallets := make([]*wallet.Wallet, senders)
	contracts := make([]types.Address, senders)
	for i := range wallets {
		wallets[i] = wallet.NewDeterministic(fmt.Sprintf("execpar-sender-%d", i))
		cfg.Alloc[wallets[i].Address()] = types.EtherAmount(1_000)
		contracts[i] = chain.CreateAddress(wallets[i].Address(), 0)
	}

	c, err := chain.New(cfg)
	if err != nil {
		return chain.Config{}, nil, err
	}

	extend := func(txs []*types.Transaction) error {
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_350, 1000, txs)
		if err != nil {
			return err
		}
		_, err = c.InsertBlock(blk)
		return err
	}

	// Block 1: every sender deploys its private loop contract.
	initCode := loopContractInit(iters)
	deploys := make([]*types.Transaction, senders)
	for i, w := range wallets {
		tx := &types.Transaction{
			Kind:     types.TxContractCreate,
			Nonce:    0,
			Data:     initCode,
			GasLimit: 100_000,
			GasPrice: 50 * types.GWei,
		}
		if err := types.SignTx(tx, w); err != nil {
			return chain.Config{}, nil, err
		}
		deploys[i] = tx
	}
	if err := extend(deploys); err != nil {
		return chain.Config{}, nil, fmt.Errorf("execpar: deploy block: %w", err)
	}

	// Measured blocks: disjoint per-sender calls, one per sender.
	for b := 0; b < blocks; b++ {
		txs := make([]*types.Transaction, senders)
		for i, w := range wallets {
			tx := &types.Transaction{
				Kind:     types.TxContractCall,
				Nonce:    uint64(1 + b),
				To:       contracts[i],
				GasLimit: 200_000,
				GasPrice: 50 * types.GWei,
			}
			if err := types.SignTx(tx, w); err != nil {
				return chain.Config{}, nil, err
			}
			txs[i] = tx
		}
		if err := extend(txs); err != nil {
			return chain.Config{}, nil, fmt.Errorf("execpar: call block %d: %w", b, err)
		}
	}

	canonical := c.CanonicalBlocks()[1:]
	wire := make([][]byte, len(canonical))
	for i, blk := range canonical {
		wire[i] = types.EncodeBlock(blk)
	}
	return cfg, wire, nil
}
