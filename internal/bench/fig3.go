package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/pow"
	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// paperProviderSpecs returns the top-5 hashing-power distribution the
// paper configures (Fig. 3/4 setups).
func paperProviderSpecs() []sim.ProviderSpec {
	shares := pow.TopFiveEthereumShares()
	out := make([]sim.ProviderSpec, len(shares))
	for i, s := range shares {
		out[i] = sim.ProviderSpec{Name: s.Name, HashShare: s.HashShare}
	}
	return out
}

// Fig3a regenerates Fig. 3(a): the average reward for different
// computation proportions when one block is created. The paper's point:
// the per-block reward is ~5 ether regardless of hashing power — power
// determines how *often* a provider wins, not how much a win pays.
func Fig3a(scale Scale) (*Report, error) {
	horizon := 2 * time.Hour
	if scale == Full {
		horizon = 9 * time.Hour // ≈ 2000 blocks, as Fig. 3(b) measures
	}
	res, err := sim.Run(sim.Config{
		Seed:      301,
		Providers: paperProviderSpecs(),
		Horizon:   horizon,
	})
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig3a",
		Title:   "Average reward per created block by hashing power",
		Headers: []string{"Provider", "HP %", "Blocks", "AvgReward (ETH)"},
		ShapeOK: true,
	}
	specs := paperProviderSpecs()
	avgRewards := make([]float64, len(specs))
	blockCounts := make([]uint64, len(specs))
	for i, spec := range specs {
		bal := res.ProviderBalance(i)
		avg := 0.0
		if bal.Blocks > 0 {
			avg = (bal.Mining + bal.Fees).Ether() / float64(bal.Blocks)
		}
		avgRewards[i] = avg
		blockCounts[i] = bal.Blocks
		r.Rows = append(r.Rows, []string{
			spec.Name,
			fmt.Sprintf("%.2f", spec.HashShare*100),
			fmt.Sprintf("%d", bal.Blocks),
			fmt.Sprintf("%.3f", avg),
		})
	}

	// Shape 1: every provider's per-block reward ≈ 5 ether.
	ok := true
	for _, avg := range avgRewards {
		if math.Abs(avg-5) > 0.5 {
			ok = false
		}
	}
	r.check(ok, "per-block reward ≈ 5 ether for every hashing power (paper: 5-ether block reward)")

	// Shape 2: block counts ordered by hashing power.
	ordered := true
	for i := 1; i < len(blockCounts); i++ {
		if blockCounts[i] > blockCounts[i-1] {
			ordered = false
		}
	}
	r.check(ordered, "block creation frequency follows hashing power (26.3%% > 22.5%% > 14.9%% > 11.8%% > 10.1%%)")
	return r, nil
}

// Fig3b regenerates Fig. 3(b): the block-time distribution. The paper
// measures 2000 blocks on its geth testnet and reports a 15.35 s average;
// PoW interarrival is exponential, so the histogram must be right-skewed
// with standard deviation ≈ mean.
func Fig3b(scale Scale) (*Report, error) {
	targetBlocks := 1000
	if scale == Full {
		targetBlocks = 2000
	}
	horizon := time.Duration(float64(targetBlocks) * 15.35 * float64(time.Second))
	res, err := sim.Run(sim.Config{
		Seed:      302,
		Providers: paperProviderSpecs(),
		Horizon:   horizon,
	})
	if err != nil {
		return nil, err
	}

	var (
		sum, sumSq float64
		buckets    [7]int // 0-5, 5-10, 10-15, 15-20, 20-30, 30-60, 60+
	)
	for _, b := range res.Blocks {
		s := b.Interval.Seconds()
		sum += s
		sumSq += s * s
		switch {
		case s < 5:
			buckets[0]++
		case s < 10:
			buckets[1]++
		case s < 15:
			buckets[2]++
		case s < 20:
			buckets[3]++
		case s < 30:
			buckets[4]++
		case s < 60:
			buckets[5]++
		default:
			buckets[6]++
		}
	}
	n := float64(len(res.Blocks))
	mean := sum / n
	stddev := math.Sqrt(sumSq/n - mean*mean)

	r := &Report{
		ID:      "fig3b",
		Title:   fmt.Sprintf("Block time distribution over %d blocks", len(res.Blocks)),
		Headers: []string{"Interval (s)", "Blocks", "Share %"},
		ShapeOK: true,
	}
	labels := []string{"0-5", "5-10", "10-15", "15-20", "20-30", "30-60", "60+"}
	for i, label := range labels {
		r.Rows = append(r.Rows, []string{
			label,
			fmt.Sprintf("%d", buckets[i]),
			fmt.Sprintf("%.1f", 100*float64(buckets[i])/n),
		})
	}
	r.note("measured mean %.2f s, stddev %.2f s (paper: mean 15.35 s over 2000 blocks)", mean, stddev)
	r.check(math.Abs(mean-15.35) < 1.5, "mean block time ≈ 15.35 s (measured %.2f)", mean)
	r.check(buckets[0] > buckets[3], "distribution right-skewed: short intervals dominate (exponential PoW)")
	r.check(math.Abs(stddev-mean)/mean < 0.15, "stddev ≈ mean (memoryless sealing)")
	return r, nil
}

// paperGasPrice is the 50 gwei standard the cost calibration assumes.
const paperGasPrice = 50 * types.GWei
