// Package bench regenerates every table and figure of the SmartCrowd
// paper's evaluation (§VII). Each experiment is a pure function from a
// Scale (full = paper-sized, quick = CI-sized) to a Report whose rows
// mirror what the paper plots, plus shape checks that encode the paper's
// qualitative claims (who wins, by what factor, where crossovers fall).
//
// Experiment index:
//
//	Table1 — Table I:   per-service vulnerability counts, partial overlap
//	Fig3a  — Fig. 3(a): average mining reward per created block
//	Fig3b  — Fig. 3(b): block-time distribution over 2000 blocks
//	Fig4a  — Fig. 4(a): provider incentives vs time per hashing power
//	Fig4b  — Fig. 4(b): provider punishments vs VP per insurance
//	Fig5a  — Fig. 5(a): VP baseline (VPB) vs hashing power and horizon
//	Fig5b  — Fig. 5(b): provider balance at VPB and VPB±0.01
//	Fig6a  — Fig. 6(a): detector incentives vs capability (1-8 threads)
//	Fig6b  — Fig. 6(b): gas cost per detection report and per SRA
//
// plus two design ablations (two-phase reports, insurance escrow) and the
// §VIII majority-attack analysis.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Quick shrinks horizons/trials for CI and testing.B runs.
	Quick Scale = iota + 1
	// Full reproduces the paper's dimensions (2000 blocks, 100 trials).
	Full
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier (e.g. "fig5a").
	ID string
	// Title describes the artifact.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows are the data series, already formatted.
	Rows [][]string
	// Notes records paper-vs-measured shape observations.
	Notes []string
	// Metrics holds machine-readable scalar results (e.g. "blocks_per_sec")
	// for dashboards and regression tracking; most figure regenerations
	// leave it nil.
	Metrics map[string]float64 `json:",omitempty"`
	// Telemetry holds the process-wide telemetry movement (counter and
	// histogram-count deltas, current gauges) measured across the
	// experiment's run; populated by the bench CLI via telemetry.Since.
	Telemetry map[string]float64 `json:",omitempty"`
	// ShapeOK reports whether every qualitative claim held.
	ShapeOK bool
}

// check appends a PASS/FAIL note and accumulates the verdict.
func (r *Report) check(ok bool, format string, args ...interface{}) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		r.ShapeOK = false
	}
	r.Notes = append(r.Notes, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
}

// note appends an informational note.
func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)

	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "%s\n", n)
	}
	return sb.String()
}

// CSV renders the report as RFC-4180 CSV (headers + rows, no notes), for
// plotting pipelines.
func (r *Report) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// JSON renders the full report (rows, notes, metrics, verdict) as
// indented JSON for machine consumers.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Experiment is a runnable table/figure regeneration.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "tab1", Title: "Table I: third-party service detection counts", Run: Table1},
		{ID: "fig3a", Title: "Fig. 3(a): average reward per created block", Run: Fig3a},
		{ID: "fig3b", Title: "Fig. 3(b): block time distribution", Run: Fig3b},
		{ID: "fig4a", Title: "Fig. 4(a): provider incentives over time", Run: Fig4a},
		{ID: "fig4b", Title: "Fig. 4(b): punishments vs vulnerability proportion", Run: Fig4b},
		{ID: "fig5a", Title: "Fig. 5(a): VP baseline vs hashing power", Run: Fig5a},
		{ID: "fig5b", Title: "Fig. 5(b): provider balance around VPB", Run: Fig5b},
		{ID: "fig6a", Title: "Fig. 6(a): detector incentives vs capability", Run: Fig6a},
		{ID: "fig6b", Title: "Fig. 6(b): detection report costs", Run: Fig6b},
		{ID: "abl-twophase", Title: "Ablation: two-phase vs single-phase reports", Run: AblationTwoPhase},
		{ID: "abl-escrow", Title: "Ablation: escrowed vs goodwill punishment", Run: AblationEscrow},
		{ID: "abl-majority", Title: "Analysis: 51% attack success probability", Run: AblationMajority},
		{ID: "abl-dct", Title: "Analysis: total detection capability vs crowd size", Run: AnalysisDCT},
		{ID: "chaincore", Title: "Chain-core hot paths: insert throughput, state root, detection query", Run: ChainCore},
		{ID: "syncpipeline", Title: "Sync pipeline: batched InsertChain vs serial re-verification", Run: SyncPipeline},
		{ID: "snapsync", Title: "Snap-sync: snapshot adoption vs full replay for a cold joiner", Run: SnapSync},
		{ID: "execpar", Title: "Execution parallelism: optimistic parallel stage 2 vs serial oracle", Run: ExecPar},
		{ID: "rpcload", Title: "RPC read path: lock-free view + response cache vs mutex oracle", Run: RPCLoad},
		{ID: "tracecost", Title: "Trace cost: span lifecycle and wire envelope vs untraced baselines", Run: TraceCost},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
