package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
)

// SnapSync measures a cold node joining an existing network: full replay
// (decode plus InsertChain re-execution of the entire chain) versus
// snap-sync (adopt a state snapshot verified against the commitment-trie
// root, shape-verify the block prefix without executing it, then replay
// only the tail past the snapshot). Both joiners start from the same
// wire encodings with cold caches, exactly what arrives from a peer.
//
// The trust story is part of the measurement: before timing anything,
// the experiment corrupts a copy of the snapshot blob and requires
// adoption to reject it — the speedup below is only meaningful because
// the fast path still verifies the restored state against the root the
// block headers commit to.
//
// The equivalence checks (same head, same state root, same difficulty as
// the replay oracle) hold anywhere. The speedup gate follows the
// syncpipeline/execpar convention: enforced only with 4+ cores, at ≥5x
// on the paper-scale Full run (a ≥50k-block chain) and ≥2x at Quick,
// where fixed costs weigh more.
func SnapSync(scale Scale) (*Report, error) {
	blocks, txPerBlock, tail := 400, 3, 16
	minSpeedup := 2.0
	if scale == Full {
		blocks, txPerBlock, tail = 50_000, 2, 64
		minSpeedup = 5.0
	}
	cores := runtime.NumCPU()

	r := &Report{
		ID:      "snapsync",
		Title:   "Snap-sync: snapshot adoption vs full replay for a cold joiner",
		Headers: []string{"Path", "Result"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	cfg, wire, err := buildSyncSource(blocks, txPerBlock)
	if err != nil {
		return nil, err
	}

	// The serving peer: a node that grew the chain and snapshots its
	// state at the snap point (tail blocks below its head, as a live
	// server's snapshot naturally trails its head).
	snapHeight := blocks - tail
	server, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	serverBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	if _, err := server.InsertChain(serverBlocks[:snapHeight]); err != nil {
		return nil, fmt.Errorf("snapsync: grow server to snap point: %w", err)
	}
	snap, err := server.SnapshotNow()
	if err != nil {
		return nil, err
	}
	if _, err := server.InsertChain(serverBlocks[snapHeight:]); err != nil {
		return nil, fmt.Errorf("snapsync: grow server past snap point: %w", err)
	}

	// Hostile-snapshot rejection: one flipped byte in the blob must not
	// survive the commitment-root check (or the decoder before it).
	tampered := append([]byte(nil), snap.State...)
	tampered[len(tampered)/2] ^= 0x40
	guinea, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	prefixForTamper, err := decodeAll(wire[:snapHeight])
	if err != nil {
		return nil, err
	}
	tamperErr := guinea.AdoptSnapshot(prefixForTamper, tampered)
	r.check(tamperErr != nil, "tampered snapshot blob rejected before adoption (%v)", tamperErr)

	// Replay joiner: decode everything, re-execute everything.
	replayChain, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	replayBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	if n, err := replayChain.InsertChain(replayBlocks); err != nil {
		return nil, fmt.Errorf("snapsync: replay insert at block %d: %w", n, err)
	}
	replayNS := float64(time.Since(start).Nanoseconds())

	// Snap joiner: decode everything, adopt the verified snapshot for the
	// prefix, execute only the tail.
	snapChain, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	snapBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	if err := snapChain.AdoptSnapshot(snapBlocks[:snapHeight], snap.State); err != nil {
		return nil, fmt.Errorf("snapsync: adopt: %w", err)
	}
	if n, err := snapChain.InsertChain(snapBlocks[snapHeight:]); err != nil {
		return nil, fmt.Errorf("snapsync: tail insert at block %d: %w", n, err)
	}
	snapNS := float64(time.Since(start).Nanoseconds())

	speedup := replayNS / snapNS
	r.Metrics["blocks"] = float64(blocks)
	r.Metrics["txs_per_block"] = float64(txPerBlock)
	r.Metrics["tail_blocks"] = float64(tail)
	r.Metrics["cores"] = float64(cores)
	r.Metrics["replay_ms"] = replayNS / 1e6
	r.Metrics["snap_ms"] = snapNS / 1e6
	r.Metrics["speedup"] = speedup
	r.Metrics["snapshot_bytes"] = float64(len(snap.State))

	r.Rows = [][]string{
		{"full replay", fmt.Sprintf("%.2f s (%.1f blocks/sec)", replayNS/1e9, float64(blocks)/(replayNS/1e9))},
		{"snap-sync", fmt.Sprintf("%.2f s (snapshot %d KiB + %d-block tail)", snapNS/1e9, len(snap.State)/1024, tail)},
		{"speedup", fmt.Sprintf("%.2fx on %d cores", speedup, cores)},
	}

	// Equivalence: both joiners land on the server's exact head and state.
	r.check(replayChain.Head().ID() == server.Head().ID(), "replay joiner reaches the server head")
	r.check(snapChain.Head().ID() == server.Head().ID(), "snap joiner reaches the server head")
	r.check(snapChain.TotalDifficulty() == replayChain.TotalDifficulty(), "total difficulty matches the replay oracle")
	snapRoot := snapChain.State().Root()
	r.check(snapRoot == replayChain.State().Root(), "snap joiner's state root matches the replay oracle")
	r.check(snapRoot == server.Head().Header.StateRoot, "state root matches the header commitment")

	if cores >= 4 {
		r.check(speedup >= minSpeedup, "snap-sync ≥%.0fx faster than replay (%.2fx on %d cores)", minSpeedup, speedup, cores)
	} else {
		r.note("[SKIP] ≥%.0fx speedup check needs ≥4 cores, have %d (measured %.2fx)", minSpeedup, cores, speedup)
	}
	return r, nil
}
