package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Fig6a regenerates Fig. 6(a): detector incentives as a function of
// detection capability (1-8 threads) for releases at VPB and VPB±0.01.
// The paper's observations: earnings grow ≈ proportionally with capability
// (8 threads ≈ 7.8× 1 thread over 100 trials), and a higher VP hands
// detectors more ether.
func Fig6a(scale Scale) (*Report, error) {
	const (
		insurance = 1000.0
		vpb       = 0.038
	)
	trials := 8
	if scale == Full {
		trials = 100 // the paper measures 100 times
	}

	detectors := make([]sim.DetectorSpec, 8)
	for i := range detectors {
		detectors[i] = sim.DetectorSpec{Name: fmt.Sprintf("t%d", i+1), Threads: i + 1}
	}
	vps := []struct {
		label string
		vp    float64
	}{
		{"VPB-0.01", vpb - 0.01},
		{"VPB", vpb},
		{"VPB+0.01", vpb + 0.01},
	}

	// earnings[vp][detector] in ether, averaged over trials.
	earnings := make([][]float64, len(vps))
	for vi, v := range vps {
		earnings[vi] = make([]float64, len(detectors))
		numVulns := int(math.Round(v.vp * insurance / 5))
		for trial := 0; trial < trials; trial++ {
			res, err := sim.Run(sim.Config{
				Seed:      601 + int64(vi*1000+trial),
				Providers: paperProviderSpecs(),
				Detectors: detectors,
				Releases: []sim.ReleaseSpec{{
					Provider: 2, At: 30 * time.Second, // the 14.9%-HP provider, as §VII-B
					Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5),
					NumVulns: numVulns,
				}},
				// Find times must be long relative to the 15.35 s block
				// interval, or same-block commits tie randomly and flatten
				// the capability-proportional race.
				Horizon:      50 * time.Minute,
				MeanFindTime: 4 * time.Minute,
			})
			if err != nil {
				return nil, err
			}
			for di := range detectors {
				earnings[vi][di] += res.DetectorBalance(di).Bounty.Ether()
			}
		}
		for di := range detectors {
			earnings[vi][di] /= float64(trials)
		}
	}

	r := &Report{
		ID:      "fig6a",
		Title:   "Detector incentives vs capability (threads), 14.9% HP provider",
		Headers: []string{"Threads", "VPB-0.01 (ETH)", "VPB (ETH)", "VPB+0.01 (ETH)"},
		ShapeOK: true,
	}
	for di := range detectors {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", di+1),
			fmt.Sprintf("%.2f", earnings[0][di]),
			fmt.Sprintf("%.2f", earnings[1][di]),
			fmt.Sprintf("%.2f", earnings[2][di]),
		})
	}

	// Shape 1: more capability ⇒ more incentives (compare 8 vs 1 threads).
	r.check(earnings[1][7] > earnings[1][0],
		"8-thread detector out-earns 1-thread detector at VPB (%.2f vs %.2f ETH)",
		earnings[1][7], earnings[1][0])
	ratio := earnings[1][7] / math.Max(earnings[1][0], 1e-9)
	r.check(ratio > 3,
		"earnings scale with capability: 8-thread/1-thread ratio %.1f (paper ≈ 7.8)", ratio)

	// Shape 2: a larger VP pays detectors more in aggregate.
	sum := func(vi int) float64 {
		var s float64
		for _, e := range earnings[vi] {
			s += e
		}
		return s
	}
	r.check(sum(2) > sum(1) && sum(1) > sum(0),
		"aggregate detector incentives grow with VP (%.1f → %.1f → %.1f ETH)",
		sum(0), sum(1), sum(2))
	r.note("paper: \"whenever VPB increases 0.01, the detectors can gain 3~23.5 ethers (as incentives) more\"")
	return r, nil
}

// Fig6b regenerates Fig. 6(b): the gas cost of detection reports. The
// paper measures ≈0.011 ether per report and ≈0.095 ether per SRA at the
// standard gas price, and observes that costs are negligible next to
// incentives.
func Fig6b(scale Scale) (*Report, error) {
	trials := 3
	if scale == Full {
		trials = 10
	}
	var (
		reportCosts []float64
		sraCosts    []float64
		bountyTotal float64
		gasTotal    float64
	)
	for trial := 0; trial < trials; trial++ {
		res, err := sim.Run(sim.Config{
			Seed:      651 + int64(trial),
			Providers: paperProviderSpecs(),
			Detectors: []sim.DetectorSpec{
				{Name: "d4", Threads: 4}, {Name: "d8", Threads: 8},
			},
			Releases: []sim.ReleaseSpec{{
				Provider: 2, At: 30 * time.Second,
				Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5),
				NumVulns: 8,
			}},
			Horizon:      20 * time.Minute,
			MeanFindTime: time.Minute,
		})
		if err != nil {
			return nil, err
		}
		// Walk canonical receipts for per-kind costs.
		for _, blk := range res.Chain.CanonicalBlocks() {
			for _, tx := range blk.Txs {
				receipt, err := res.Chain.ReceiptOf(tx.Hash())
				if err != nil {
					continue
				}
				switch tx.Kind {
				case types.TxInitialReport, types.TxDetailedReport:
					reportCosts = append(reportCosts, receipt.Fee.Ether())
				case types.TxSRA:
					sraCosts = append(sraCosts, receipt.Fee.Ether())
				}
			}
		}
		for di := range []int{0, 1} {
			bal := res.DetectorBalance(di)
			bountyTotal += bal.Bounty.Ether()
			gasTotal += bal.Gas.Ether()
		}
	}

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	meanReport := mean(reportCosts)
	meanSRA := mean(sraCosts)
	// A "detection report" in Fig. 6(b)'s sense is the R†+R* pair.
	perReportPair := meanReport * 2

	r := &Report{
		ID:      "fig6b",
		Title:   "Gas costs of SmartCrowd transactions (50 gwei gas price)",
		Headers: []string{"Transaction", "Count", "Mean cost (ETH)"},
		ShapeOK: true,
	}
	r.Rows = append(r.Rows,
		[]string{"report tx (R† or R*)", fmt.Sprintf("%d", len(reportCosts)), fmt.Sprintf("%.4f", meanReport)},
		[]string{"detection report (R†+R* pair)", fmt.Sprintf("%d", len(reportCosts)/2), fmt.Sprintf("%.4f", perReportPair)},
		[]string{"SRA release", fmt.Sprintf("%d", len(sraCosts)), fmt.Sprintf("%.4f", meanSRA)},
	)

	r.check(math.Abs(perReportPair-0.011) < 0.004,
		"detection report costs ≈ 0.011 ETH (measured %.4f)", perReportPair)
	r.check(math.Abs(meanSRA-0.095) < 0.01,
		"SRA release costs ≈ 0.095 ETH (measured %.4f)", meanSRA)
	r.check(gasTotal < bountyTotal/5,
		"report costs are negligible next to incentives (gas %.2f ≪ bounty %.2f ETH)",
		gasTotal, bountyTotal)
	_ = paperGasPrice
	return r, nil
}
