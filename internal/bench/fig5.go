package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/economics"
	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// measuredIncentives runs the mining workload over the horizon and
// returns each provider's mean (mining + fees) income in ether, averaged
// across trials. A single simulation measures all providers at once —
// common random numbers, so cross-provider comparisons are exact within a
// trial.
func measuredIncentives(horizon time.Duration, trials int, seed int64) ([]float64, error) {
	totals := make([]float64, len(paperProviderSpecs()))
	for trial := 0; trial < trials; trial++ {
		res, err := sim.Run(sim.Config{
			Seed:      seed + int64(trial),
			Providers: paperProviderSpecs(),
			Detectors: []sim.DetectorSpec{
				{Name: "d1", Threads: 4}, {Name: "d2", Threads: 8},
			},
			Releases: []sim.ReleaseSpec{{
				Provider: 4, At: time.Minute,
				Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 8,
			}},
			Horizon: horizon,
		})
		if err != nil {
			return nil, err
		}
		for i := range totals {
			bal := res.ProviderBalance(i)
			totals[i] += (bal.Mining + bal.Fees).Ether()
		}
	}
	for i := range totals {
		totals[i] /= float64(trials)
	}
	return totals, nil
}

// Fig5a regenerates Fig. 5(a): the vulnerability-proportion baseline (VPB)
// at which a provider's mining incentives exactly offset its punishments,
// as a function of hashing power, for horizons of 10, 20 and 30 minutes
// with a 1000-ether insurance. The theory column evaluates the §VI-B
// model; the measured column derives VPB from simulated mining income.
func Fig5a(scale Scale) (*Report, error) {
	const insurance = 1000.0
	horizons := []time.Duration{10 * time.Minute, 20 * time.Minute, 30 * time.Minute}
	trials := 12
	if scale == Full {
		trials = 30
	}

	specs := paperProviderSpecs()
	r := &Report{
		ID:      "fig5a",
		Title:   "VP baseline vs hashing power (insurance 1000 ETH)",
		Headers: []string{"Provider", "HP %", "VPB@10m", "VPB@20m", "VPB@30m", "theory@10m"},
		ShapeOK: true,
	}

	vpbs := make([][]float64, len(specs)) // [provider][horizon]
	for i := range specs {
		vpbs[i] = make([]float64, len(horizons))
	}
	for hi, horizon := range horizons {
		incomes, err := measuredIncentives(horizon, trials, 501+int64(hi)*1000)
		if err != nil {
			return nil, err
		}
		for i := range specs {
			// VPB solves income = VP·I + deployCost.
			vpb := (incomes[i] - 0.095) / insurance
			if vpb < 0 {
				vpb = 0
			}
			vpbs[i][hi] = vpb
		}
	}
	for i, spec := range specs {
		row := []string{spec.Name, fmt.Sprintf("%.2f", spec.HashShare*100)}
		for hi := range horizons {
			row = append(row, fmt.Sprintf("%.3f", vpbs[i][hi]))
		}
		theory := economics.PaperProviderModel(spec.HashShare, insurance).VPB(10 * time.Minute)
		row = append(row, fmt.Sprintf("%.3f", theory))
		r.Rows = append(r.Rows, row)
	}

	// Shape 1: VPB increases with hashing power. Mining over these short
	// horizons is probabilistic (the paper makes the same caveat for
	// Fig. 4(a)), so the ordering check uses each provider's VPB summed
	// across horizons.
	ordered := true
	for i := 1; i < len(specs); i++ {
		var prev, cur float64
		for hi := range horizons {
			prev += vpbs[i-1][hi]
			cur += vpbs[i][hi]
		}
		if cur > prev {
			ordered = false
		}
	}
	r.check(ordered, "higher hashing power ⇒ larger VPB (summed across horizons)")

	// Shape 2: VPB increases with horizon for every provider.
	growing := true
	for i := range specs {
		for hi := 1; hi < len(horizons); hi++ {
			if vpbs[i][hi] <= vpbs[i][hi-1] {
				growing = false
			}
		}
	}
	r.check(growing, "longer horizon ⇒ larger VPB")

	// Shape 3: the paper's anchor — 14.9% HP at 10 min lands near 0.038.
	anchor := vpbs[2][0]
	r.check(math.Abs(anchor-0.038) < 0.015,
		"VPB(14.9%%, 10 min) = %.3f (paper: 0.038)", anchor)
	return r, nil
}

// Fig5b regenerates Fig. 5(b): the balance of the 14.9%-HP provider with
// 1000-ether insurance over 10 minutes, releasing systems at VP = VPB,
// VPB+0.01 and VPB−0.01. The paper: breakeven at VPB, ≈10 ether profit at
// VPB−0.01, ≈10 ether loss at VPB+0.01.
func Fig5b(scale Scale) (*Report, error) {
	const (
		providerIdx = 2 // 14.9% HP
		insurance   = 1000.0
		vpb         = 0.038 // paper anchor (validated by Fig5a)
	)
	trials := 5
	if scale == Full {
		trials = 20
	}
	horizon := 10 * time.Minute

	vps := []struct {
		label string
		vp    float64
	}{
		{"VPB-0.01", vpb - 0.01},
		{"VPB", vpb},
		{"VPB+0.01", vpb + 0.01},
	}

	r := &Report{
		ID:      "fig5b",
		Title:   "Provider balance at VPB and VPB±0.01 (14.9% HP, 10 min)",
		Headers: []string{"VP", "Incentives (ETH)", "Punishments (ETH)", "Balance (ETH)"},
		ShapeOK: true,
	}

	balances := make([]float64, len(vps))
	for vi, v := range vps {
		var inc, pun float64
		for trial := 0; trial < trials; trial++ {
			numVulns := int(math.Round(v.vp * insurance / 5))
			// Common random numbers: the same seed across the three VP
			// settings pins the mining sequence, so the balance deltas
			// isolate the punishment effect — the quantity Fig. 5(b)
			// reports.
			res, err := sim.Run(sim.Config{
				Seed:      551 + int64(trial),
				Providers: paperProviderSpecs(),
				Detectors: []sim.DetectorSpec{
					{Name: "d1", Threads: 4}, {Name: "d2", Threads: 8},
				},
				Releases: []sim.ReleaseSpec{{
					Provider: providerIdx, At: 30 * time.Second,
					Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5),
					NumVulns: numVulns,
				}},
				Horizon:      horizon,
				MeanFindTime: 30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			bal := res.ProviderBalance(providerIdx)
			inc += (bal.Mining + bal.Fees).Ether()
			pun += (bal.Punishment + bal.Gas).Ether()
		}
		inc /= float64(trials)
		pun /= float64(trials)
		balances[vi] = inc - pun
		r.Rows = append(r.Rows, []string{
			v.label,
			fmt.Sprintf("%.1f", inc),
			fmt.Sprintf("%.1f", pun),
			fmt.Sprintf("%+.1f", inc-pun),
		})
	}

	r.check(balances[0] > balances[1] && balances[1] > balances[2],
		"balance decreases as VP rises across VPB−0.01 → VPB → VPB+0.01")
	r.check(math.Abs(balances[1]) < 12,
		"balance at VPB ≈ 0 (measured %+.1f ETH)", balances[1])
	swing := balances[0] - balances[2]
	r.check(math.Abs(swing-20) < 10,
		"±0.01 VP swings the balance by ≈ ±10 ETH (measured total swing %.1f)", swing)
	r.note("paper: \"IoT providers can obtain an additional 10 ethers when the VP is reduced by 0.01\"")
	return r, nil
}
