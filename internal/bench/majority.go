package bench

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/smartcrowd/smartcrowd/internal/economics"
)

// AblationMajority quantifies the paper's §VIII discussion of the 51%
// attack: the probability that an attacker rewrites a detection result
// buried under the 6-confirmation rule, as a function of its hashing-power
// share. An analytic column (Nakamoto/Rosenfeld catch-up analysis, the
// paper's reference [32]) is cross-checked against a Monte-Carlo race on
// the same block-lottery model the chain simulator uses. The paper's
// deployment argument — no Ethereum pool held >30% at the time, so the
// attack "will hardly happen" — corresponds to the ≤0.3 rows.
func AblationMajority(scale Scale) (*Report, error) {
	const confirmations = 6
	trials := 20_000
	if scale == Full {
		trials = 200_000
	}
	shares := []float64{0.10, 0.20, 0.263, 0.30, 0.40, 0.45, 0.51}

	r := &Report{
		ID:      "abl-majority",
		Title:   fmt.Sprintf("Majority-attack success probability at %d confirmations", confirmations),
		Headers: []string{"Attacker share", "Analytic", "Simulated"},
		ShapeOK: true,
	}

	analytic := make([]float64, len(shares))
	simulated := make([]float64, len(shares))
	rng := rand.New(rand.NewSource(811))
	for i, q := range shares {
		analytic[i] = economics.MajorityAttackSuccess(q, confirmations)
		simulated[i] = simulateCatchUp(rng, q, confirmations, trials)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f%%", q*100),
			fmt.Sprintf("%.4f", analytic[i]),
			fmt.Sprintf("%.4f", simulated[i]),
		})
	}

	// Shape 1: monotone in attacker share, certain above 50%.
	monotone := true
	for i := 1; i < len(shares); i++ {
		if analytic[i] < analytic[i-1] {
			monotone = false
		}
	}
	r.check(monotone && analytic[len(shares)-1] == 1,
		"success probability grows with hashing share and is certain above 50%%")

	// Shape 2: at the paper's observed ceiling (~30%), the attack is
	// overwhelmingly unlikely under 6 confirmations.
	r.check(analytic[3] < 0.20,
		"at the paper's 30%% pool ceiling the 6-conf rewrite succeeds with p=%.3f", analytic[3])

	// Shape 3: simulation agrees with the analysis.
	agree := true
	for i := range shares {
		if math.Abs(analytic[i]-simulated[i]) > 0.02 {
			agree = false
		}
	}
	r.check(agree, "Monte-Carlo race agrees with the Rosenfeld analysis within ±0.02")
	r.note("paper §VIII: \"no miner or pool has occupied more than 30%% hashing power ... thereby 51%% attack will also hardly happen\"")
	return r, nil
}

// simulateCatchUp races an attacker (share q) against the honest majority:
// the honest chain first extends by z blocks (the attacker mines
// alongside), then the attacker needs to overtake the honest lead. Each
// block goes to the attacker with probability q. The race is truncated
// once the attacker falls hopelessly behind (deficit 60), which bounds the
// run while staying within Monte-Carlo error of the true probability.
func simulateCatchUp(rng *rand.Rand, q float64, z, trials int) float64 {
	wins := 0
	for t := 0; t < trials; t++ {
		attacker := 0
		honest := 0
		// Confirmation phase: honest miners accumulate z blocks.
		for honest < z {
			if rng.Float64() < q {
				attacker++
			} else {
				honest++
			}
		}
		// Catch-up phase: the attacker must exceed the honest chain.
		deficit := honest - attacker + 1 // blocks needed to get ahead
		for deficit > 0 && deficit < 60 {
			if rng.Float64() < q {
				deficit--
			} else {
				deficit++
			}
		}
		if deficit <= 0 {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}
