package bench

import (
	"fmt"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/sim"
	"github.com/smartcrowd/smartcrowd/internal/state"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// AblationTwoPhase quantifies the design decision behind the two-phase
// report submission (paper §V-B): with a commit phase and a non-zero
// confirmation depth, a plagiarist who observes revealed reports in the
// mempool cannot claim them; with single-phase submission (commit depth 0,
// reveal doubles as submission), a front-runner with a higher gas price
// steals every claim.
func AblationTwoPhase(Scale) (*Report, error) {
	run := func(commitDepth uint64) (honest, stolen int, err error) {
		verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
		params := contract.DefaultParams()
		params.CommitDepth = commitDepth
		c := contract.New(params, verifier)
		st := state.New()

		provider := wallet.NewDeterministic("abl-provider")
		honestW := wallet.NewDeterministic("abl-honest")
		thiefW := wallet.NewDeterministic("abl-thief")
		_ = st.Credit(provider.Address(), types.EtherAmount(5000))

		sra := &types.SRA{
			Provider:     provider.Address(),
			Name:         "fw",
			Version:      "1",
			DownloadLink: "sc://fw",
			Insurance:    types.EtherAmount(1000),
			Bounty:       types.EtherAmount(5),
		}
		if err := types.SignSRA(sra, provider); err != nil {
			return 0, 0, err
		}
		if err := st.Transfer(provider.Address(), contract.Address, sra.Insurance); err != nil {
			return 0, 0, err
		}
		if err := c.ApplySRA(st, 1, sra); err != nil {
			return 0, 0, err
		}

		const vulns = 10
		for v := 0; v < vulns; v++ {
			finding := types.Finding{VulnID: fmt.Sprintf("V-%d", v), Severity: types.SeverityHigh}
			detailed := &types.DetailedReport{
				SRAID: sra.ID, Detector: honestW.Address(), Wallet: honestW.Address(),
				Findings: []types.Finding{finding},
			}
			if err := types.SignDetailedReport(detailed, honestW); err != nil {
				return 0, 0, err
			}
			initial := &types.InitialReport{
				SRAID: sra.ID, Detector: honestW.Address(),
				DetailHash: detailed.CommitmentHash(), Wallet: honestW.Address(),
			}
			if err := types.SignInitialReport(initial, honestW); err != nil {
				return 0, 0, err
			}
			commitBlock := uint64(2 + v*3)
			if err := c.ApplyInitialReport(st, commitBlock, initial); err != nil {
				return 0, 0, err
			}
			revealBlock := commitBlock + commitDepth

			// The honest reveal enters the public mempool for revealBlock.
			// The thief observes it, copies the finding, and front-runs
			// with a higher gas price: with single-phase submission
			// (depth 0) its commit+reveal execute FIRST in the same block.
			stolenByThief := false
			if commitDepth == 0 {
				thiefDetailed := &types.DetailedReport{
					SRAID: sra.ID, Detector: thiefW.Address(), Wallet: thiefW.Address(),
					Findings: detailed.Findings,
				}
				if err := types.SignDetailedReport(thiefDetailed, thiefW); err != nil {
					return 0, 0, err
				}
				thiefInitial := &types.InitialReport{
					SRAID: sra.ID, Detector: thiefW.Address(),
					DetailHash: thiefDetailed.CommitmentHash(), Wallet: thiefW.Address(),
				}
				if err := types.SignInitialReport(thiefInitial, thiefW); err != nil {
					return 0, 0, err
				}
				if err := c.ApplyInitialReport(st, revealBlock, thiefInitial); err != nil {
					return 0, 0, err
				}
				payout, err := c.ApplyDetailedReport(st, revealBlock, thiefDetailed)
				if err != nil {
					return 0, 0, err
				}
				stolenByThief = len(payout.Accepted) > 0
			}
			// With two-phase (depth ≥ 1), the thief only learns the
			// findings when the honest reveal is already being chained —
			// any commitment it makes now confirms too late.

			payout, err := c.ApplyDetailedReport(st, revealBlock, detailed)
			if err != nil {
				return 0, 0, err
			}
			if stolenByThief {
				stolen++
			} else if len(payout.Accepted) > 0 {
				honest++
			}
		}
		return honest, stolen, nil
	}

	twoHonest, twoStolen, err := run(1)
	if err != nil {
		return nil, err
	}
	oneHonest, oneStolen, err := run(0)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "abl-twophase",
		Title:   "Two-phase vs single-phase report submission under mempool front-running",
		Headers: []string{"Scheme", "Honest claims", "Stolen claims", "Theft rate"},
		ShapeOK: true,
	}
	rate := func(stolen, total int) string {
		if total == 0 {
			return "0%"
		}
		return fmt.Sprintf("%d%%", 100*stolen/(total))
	}
	r.Rows = append(r.Rows,
		[]string{"two-phase (paper)", fmt.Sprintf("%d", twoHonest), fmt.Sprintf("%d", twoStolen), rate(twoStolen, twoHonest+twoStolen)},
		[]string{"single-phase", fmt.Sprintf("%d", oneHonest), fmt.Sprintf("%d", oneStolen), rate(oneStolen, oneHonest+oneStolen)},
	)
	r.check(twoStolen == 0, "two-phase submission: zero claims stolen")
	r.check(oneStolen == oneHonest+oneStolen && oneStolen > 0,
		"single-phase submission: every claim front-run (%d/%d stolen)", oneStolen, oneHonest+oneStolen)
	return r, nil
}

// AblationEscrow quantifies the insurance escrow (paper §V-D): with the
// deposit locked in the contract, punishments are collected automatically;
// without it ("goodwill" payment), a repudiating provider simply keeps the
// money — the "repudiating incentives and punishments" challenge of §IV-B.
func AblationEscrow(scale Scale) (*Report, error) {
	// Escrowed: measure actual collections in a simulation.
	res, err := sim.Run(sim.Config{
		Seed:      701,
		Providers: paperProviderSpecs(),
		Detectors: []sim.DetectorSpec{{Name: "d", Threads: 8}},
		Releases: []sim.ReleaseSpec{{
			Provider: 0, At: 30 * time.Second,
			Insurance: types.EtherAmount(1000), Bounty: types.EtherAmount(5), NumVulns: 8,
		}},
		Horizon:      20 * time.Minute,
		MeanFindTime: time.Minute,
	})
	if err != nil {
		return nil, err
	}
	due := res.SRAs[0].Bounty.Ether() * float64(res.SRAs[0].Confirmed)
	collectedEscrow := res.SRAs[0].PaidOut.Ether()

	// Goodwill: the provider chooses whether to honour each bounty. A
	// rational misbehaving provider repudiates everything; a partially
	// honest one pays half. Nothing in the protocol can force payment.
	r := &Report{
		ID:      "abl-escrow",
		Title:   "Punishment collection: contract escrow vs goodwill payment",
		Headers: []string{"Scheme", "Due (ETH)", "Collected (ETH)", "Collection rate"},
		ShapeOK: true,
	}
	r.Rows = append(r.Rows,
		[]string{"escrowed insurance (paper)", fmt.Sprintf("%.1f", due), fmt.Sprintf("%.1f", collectedEscrow), "100%"},
		[]string{"goodwill, repudiating provider", fmt.Sprintf("%.1f", due), "0.0", "0%"},
		[]string{"goodwill, 50% honest provider", fmt.Sprintf("%.1f", due), fmt.Sprintf("%.1f", due/2), "50%"},
	)
	r.check(collectedEscrow == due && due > 0,
		"escrow collects every due punishment automatically (%.1f of %.1f ETH)", collectedEscrow, due)
	r.note("paper §IV-B: providers \"can refuse to accept punishment by transferring no incentive\" without escrow")
	return r, nil
}
