package bench

import (
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/detection"
)

// Table1 regenerates Table I: the detection results of two IoT apps
// (Samsung Connect, Samsung Smart Home) across six third-party services,
// demonstrating that centralized services produce inconsistent, partially
// overlapping results — the motivation for SmartCrowd's crowdsourced
// detection.
func Table1(Scale) (*Report, error) {
	apps := detection.TableIApps()
	services := detection.TableIServices()

	r := &Report{
		ID:      "tab1",
		Title:   "Detection results of two IoT apps by third-party services",
		Headers: []string{"Service", "Connect H", "Connect M", "Connect L", "SmartHome H", "SmartHome M", "SmartHome L"},
		ShapeOK: true,
	}

	scans := make(map[string]map[string][]detection.Detection, len(services))
	for _, svc := range services {
		scans[svc.Name] = make(map[string][]detection.Detection, len(apps))
		row := []string{svc.Name}
		for _, app := range apps {
			ds := svc.Scan(app)
			scans[svc.Name][app.Name] = ds
			counts := detection.CountBySeverity(ds)
			row = append(row,
				fmt.Sprintf("%d", counts[0]),
				fmt.Sprintf("%d", counts[1]),
				fmt.Sprintf("%d", counts[2]))
		}
		r.Rows = append(r.Rows, row)
	}

	// Shape 1: counts match the paper exactly.
	exact := true
	for _, svc := range services {
		for _, app := range apps {
			got := detection.CountBySeverity(scans[svc.Name][app.Name])
			if got != svc.Counts[app.Name] {
				exact = false
			}
		}
	}
	r.check(exact, "per-service counts match Table I exactly")

	// Shape 2: non-trivial services overlap only partially (the paper:
	// "share very limited commonality").
	partial := true
	var worst float64
	for _, app := range apps {
		for i := 0; i < len(services); i++ {
			for j := i + 1; j < len(services); j++ {
				a := scans[services[i].Name][app.Name]
				b := scans[services[j].Name][app.Name]
				if len(a) == 0 || len(b) == 0 {
					continue
				}
				o := detection.Overlap(services[i].Name, a, services[j].Name, b)
				if jac := o.Jaccard(); jac > worst {
					worst = jac
				}
				if o.Jaccard() >= 0.9 {
					partial = false
				}
			}
		}
	}
	r.check(partial, "pairwise Jaccard overlap ≤ 0.9 (worst %.2f): results are partial and inconsistent", worst)
	r.note("paper: per-service findings differ so much that no single service is a complete reference")
	return r, nil
}
