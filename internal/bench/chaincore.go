package bench

import (
	"fmt"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/state"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// ChainCore measures the chain's three hot paths — block insertion
// throughput, state-root maintenance, and the consumer detection query —
// and emits machine-readable metrics next to the usual table. The shape
// checks pin the asymptotic wins of the incremental architecture: the
// root after touching one account must beat a from-scratch rebuild by
// far more than 5x, and the indexed detection query must beat the linear
// chain scan.
func ChainCore(scale Scale) (*Report, error) {
	accounts, insertBlocks, reportPairs := 2_000, 20, 120
	queryFactor := 10.0 // quick chains are short; the scan's handicap shrinks
	if scale == Full {
		accounts, insertBlocks, reportPairs = 10_000, 50, 2_500
		queryFactor = 50
	}

	r := &Report{
		ID:      "chaincore",
		Title:   "Chain-core hot paths: insert throughput, state root, detection query",
		Headers: []string{"Path", "Result"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	rootInc, rootFull, err := measureRoots(accounts)
	if err != nil {
		return nil, err
	}
	blocksPerSec, err := measureInsertThroughput(accounts, insertBlocks)
	if err != nil {
		return nil, err
	}
	queryIdx, queryScan, err := measureDetectionQuery(reportPairs)
	if err != nil {
		return nil, err
	}

	r.Metrics["accounts"] = float64(accounts)
	r.Metrics["blocks_per_sec"] = blocksPerSec
	r.Metrics["root_incremental_ns"] = rootInc
	r.Metrics["root_full_build_ns"] = rootFull
	r.Metrics["query_indexed_ns"] = queryIdx
	r.Metrics["query_scan_ns"] = queryScan
	r.Metrics["query_chain_blocks"] = float64(2 * reportPairs)

	r.Rows = [][]string{
		{"block insert (20 transfers)", fmt.Sprintf("%.1f blocks/sec at %d accounts", blocksPerSec, accounts)},
		{"state root, 1 account touched", fmt.Sprintf("%.0f ns/op (full rebuild: %.0f ns)", rootInc, rootFull)},
		{"detection query, indexed", fmt.Sprintf("%.0f ns/op on a %d-block chain", queryIdx, 2*reportPairs)},
		{"detection query, linear scan", fmt.Sprintf("%.0f ns/op (oracle)", queryScan)},
	}

	r.check(rootInc*5 < rootFull,
		"incremental root (%.0f ns) ≥5x faster than full rebuild (%.0f ns)", rootInc, rootFull)
	r.check(queryIdx*queryFactor < queryScan,
		"indexed query (%.0f ns) ≥%.0fx faster than the chain scan (%.0f ns)",
		queryIdx, queryFactor, queryScan)
	r.check(blocksPerSec > 1, "insert throughput is non-degenerate (%.1f blocks/sec)", blocksPerSec)
	return r, nil
}

// chaincoreAddr derives distinct well-distributed addresses.
func chaincoreAddr(i int) types.Address {
	h := types.HashBytes([]byte{0xCC, byte(i >> 16), byte(i >> 8), byte(i)})
	var a types.Address
	copy(a[:], h[:20])
	return a
}

// measureRoots times Root() after touching one account in an n-account
// state, and a from-scratch build of the same state — the cost a
// non-incremental commitment pays every block.
func measureRoots(n int) (incNS, fullNS float64, err error) {
	build := func() *state.DB {
		db := state.New()
		for i := 0; i < n; i++ {
			_ = db.Credit(chaincoreAddr(i), types.Amount(i+1))
		}
		db.DiscardSnapshots()
		return db
	}

	start := time.Now()
	db := build()
	_ = db.Root()
	fullNS = float64(time.Since(start).Nanoseconds())

	const iters = 20
	start = time.Now()
	for i := 0; i < iters; i++ {
		_ = db.Credit(chaincoreAddr(i%n), 1)
		db.DiscardSnapshots()
		_ = db.Root()
	}
	incNS = float64(time.Since(start).Nanoseconds()) / iters
	return incNS, fullNS, nil
}

// measureInsertThroughput times end-to-end block processing (build +
// execute + root + verify + index) with 20 transfers per block against a
// world of n allocated accounts.
func measureInsertThroughput(n, blocks int) (float64, error) {
	alice := wallet.NewDeterministic("chaincore-alice")
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = make(map[types.Address]types.Amount, n+1)
	for i := 0; i < n; i++ {
		cfg.Alloc[chaincoreAddr(i)] = types.Amount(i + 1)
	}
	cfg.Alloc[alice.Address()] = types.EtherAmount(1_000_000)
	c, err := chain.New(cfg)
	if err != nil {
		return 0, err
	}
	miner := wallet.NewDeterministic("chaincore-miner").Address()

	const txPerBlock = 20
	batches := make([][]*types.Transaction, blocks)
	nonce := uint64(0)
	for i := range batches {
		batch := make([]*types.Transaction, txPerBlock)
		for j := range batch {
			tx := &types.Transaction{
				Kind:     types.TxTransfer,
				Nonce:    nonce,
				To:       types.Address{1},
				Value:    1,
				GasLimit: 21_000,
				GasPrice: 50,
			}
			if err := types.SignTx(tx, alice); err != nil {
				return 0, err
			}
			nonce++
			batch[j] = tx
		}
		batches[i] = batch
	}

	start := time.Now()
	for i := 0; i < blocks; i++ {
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_000, 1000, batches[i])
		if err != nil {
			return 0, err
		}
		if _, err := c.InsertBlock(blk); err != nil {
			return 0, err
		}
	}
	return float64(blocks) / time.Since(start).Seconds(), nil
}

// measureDetectionQuery builds a chain carrying one report transaction
// per block across ten SRAs and times DetectionResults (indexed) against
// DetectionResultsScan (the pre-index oracle) for one SRA.
func measureDetectionQuery(pairs int) (idxNS, scanNS float64, err error) {
	provider := wallet.NewDeterministic("chaincore-provider")
	detector := wallet.NewDeterministic("chaincore-detector")
	miner := wallet.NewDeterministic("chaincore-miner").Address()
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{
		provider.Address(): types.EtherAmount(50_000),
		detector.Address(): types.EtherAmount(5_000),
	}
	c, err := chain.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	nonces := map[types.Address]uint64{}
	nextNonce := func(a types.Address) uint64 {
		n := nonces[a]
		nonces[a] = n + 1
		return n
	}
	extend := func(txs ...*types.Transaction) error {
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_350, 1000, txs)
		if err != nil {
			return err
		}
		_, err = c.InsertBlock(blk)
		return err
	}

	sras := make([]*types.SRA, 10)
	for i := range sras {
		sra := &types.SRA{
			Provider:     provider.Address(),
			Name:         "cam-fw",
			Version:      fmt.Sprintf("3.%d", i),
			SystemHash:   types.HashBytes([]byte{0x51, byte(i)}),
			DownloadLink: fmt.Sprintf("sc://releases/cam-fw/3.%d", i),
			Insurance:    types.EtherAmount(2_000),
			Bounty:       types.EtherAmount(1),
		}
		if err := types.SignSRA(sra, provider); err != nil {
			return 0, 0, err
		}
		tx := types.NewSRATx(sra, nextNonce(provider.Address()), 2_000_000, 50*types.GWei)
		if err := types.SignTx(tx, provider); err != nil {
			return 0, 0, err
		}
		if err := extend(tx); err != nil {
			return 0, 0, err
		}
		sras[i] = sra
	}
	for i := 0; i < pairs; i++ {
		sra := sras[i%len(sras)]
		detailed := &types.DetailedReport{
			SRAID:    sra.ID,
			Detector: detector.Address(),
			Wallet:   detector.Address(),
			Findings: []types.Finding{{VulnID: fmt.Sprintf("V-%d", i), Severity: types.SeverityHigh, Evidence: "poc"}},
		}
		if err := types.SignDetailedReport(detailed, detector); err != nil {
			return 0, 0, err
		}
		initial := &types.InitialReport{
			SRAID:      sra.ID,
			Detector:   detector.Address(),
			DetailHash: detailed.CommitmentHash(),
			Wallet:     detector.Address(),
		}
		if err := types.SignInitialReport(initial, detector); err != nil {
			return 0, 0, err
		}
		itx := types.NewInitialReportTx(initial, nextNonce(detector.Address()), 150_000, 50*types.GWei)
		if err := types.SignTx(itx, detector); err != nil {
			return 0, 0, err
		}
		dtx := types.NewDetailedReportTx(detailed, nextNonce(detector.Address()), 150_000, 50*types.GWei)
		if err := types.SignTx(dtx, detector); err != nil {
			return 0, 0, err
		}
		if err := extend(itx); err != nil {
			return 0, 0, err
		}
		if err := extend(dtx); err != nil {
			return 0, 0, err
		}
	}

	target := sras[0].ID
	want := len(c.DetectionResults(target))
	if want == 0 {
		return 0, 0, fmt.Errorf("chaincore: no detection records indexed")
	}

	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		if got := c.DetectionResults(target); len(got) != want {
			return 0, 0, fmt.Errorf("chaincore: indexed query returned %d records, want %d", len(got), want)
		}
	}
	idxNS = float64(time.Since(start).Nanoseconds()) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		if got := c.DetectionResultsScan(target); len(got) != want {
			return 0, 0, fmt.Errorf("chaincore: scan returned %d records, want %d", len(got), want)
		}
	}
	scanNS = float64(time.Since(start).Nanoseconds()) / iters
	return idxNS, scanNS, nil
}
