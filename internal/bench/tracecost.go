package bench

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/wire"
)

// Trace-cost gate knobs. The span budget reuses the CI overhead test's
// environment variable so one override covers both gates; the frame
// ratio has its own since it bounds a ratio, not an absolute time.
const (
	tracecostSpanBudgetEnv   = "SMARTCROWD_TRACE_BUDGET_NS"
	tracecostDefaultSpanNs   = 5000.0 // 5µs per traced span, same as TestTraceOverheadBudget
	tracecostFrameRatioEnv   = "SMARTCROWD_TRACECOST_FRAME_RATIO"
	tracecostDefaultFrameMax = 2.0 // traced round-trip may cost at most 2x legacy
)

// tracecostPayloadSize approximates a small gossiped block: large enough
// that the codec's copy/alloc work dominates, small enough that the
// 40-byte envelope's relative cost is visible if it ever regresses.
const tracecostPayloadSize = 4096

// TraceCost measures what the tracing layer costs the hot paths it
// instruments, against untraced baselines, and gates the overhead for CI:
//
//   - span lifecycle: open+end of an untraced span (ring filing only)
//     vs a traced span (id stamping + ring + trace-store filing). The
//     traced cost must stay under the same budget TestTraceOverheadBudget
//     enforces (default 5µs, SMARTCROWD_TRACE_BUDGET_NS overrides) —
//     spans end at block/batch granularity, so microseconds vanish
//     against the event rate, but accidental O(store) work would not.
//   - wire codec: WriteFrame+ReadFrame round-trip of a legacy v1 frame
//     vs a traced v2 frame carrying the 40-byte envelope, over an
//     in-memory buffer with a block-sized payload. The traced round-trip
//     must stay within 2x of legacy (SMARTCROWD_TRACECOST_FRAME_RATIO
//     overrides) and the encoded size must grow by exactly the envelope.
//
// Timing gates are skipped under -race (the detector's instrumentation
// would dominate both sides); the structural envelope check always runs.
func TraceCost(scale Scale) (*Report, error) {
	spanIters, frameIters := 200_000, 50_000
	if scale == Full {
		spanIters, frameIters = 1_000_000, 250_000
	}

	r := &Report{
		ID:      "tracecost",
		Title:   "Trace cost: span lifecycle and wire envelope vs untraced baselines",
		Headers: []string{"Path", "Untraced", "Traced", "Overhead"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	spanBudget := tracecostDefaultSpanNs
	if env := os.Getenv(tracecostSpanBudgetEnv); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", tracecostSpanBudgetEnv, env, err)
		}
		spanBudget = v
	}
	frameRatioMax := tracecostDefaultFrameMax
	if env := os.Getenv(tracecostFrameRatioEnv); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", tracecostFrameRatioEnv, env, err)
		}
		frameRatioMax = v
	}

	// Span lifecycle on a private registry: the process registry's span
	// ring and trace store keep serving the live node untouched.
	reg := telemetry.NewRegistry()
	root := reg.StartTrace("tracecost.root")
	tc := root.Context()
	root.End()

	untracedNs := timePerOp(spanIters, func() {
		reg.StartSpan("tracecost.span").End()
	})
	tracedNs := timePerOp(spanIters, func() {
		reg.StartSpanIn(tc, "tracecost.span").End()
	})
	spanRatio := ratioOf(tracedNs, untracedNs)
	r.Rows = append(r.Rows, []string{
		"span open+end",
		fmt.Sprintf("%.0f ns/op", untracedNs),
		fmt.Sprintf("%.0f ns/op", tracedNs),
		fmt.Sprintf("%.2fx", spanRatio),
	})
	r.Metrics["span_untraced_ns"] = untracedNs
	r.Metrics["span_traced_ns"] = tracedNs
	r.Metrics["span_overhead_ratio"] = spanRatio

	// Wire codec round-trip: encode to a reusable buffer, decode back.
	// The payload is deterministic junk — the codec never interprets it.
	payload := make([]byte, tracecostPayloadSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	legacy := wire.Frame{Kind: p2p.MsgBlock, Payload: payload}
	traced := wire.Frame{
		Kind:    p2p.MsgBlock,
		Payload: payload,
		Trace: telemetry.TraceContext{
			TraceID: telemetry.NewTraceID(),
			Span:    telemetry.NewSpanID(),
			Start:   time.Now().UnixNano(),
		},
		SentNanos: time.Now().UnixNano(),
	}

	legacyBytes, err := frameSize(legacy)
	if err != nil {
		return nil, err
	}
	tracedBytes, err := frameSize(traced)
	if err != nil {
		return nil, err
	}
	envelope := tracedBytes - legacyBytes
	r.Metrics["frame_legacy_bytes"] = float64(legacyBytes)
	r.Metrics["frame_traced_bytes"] = float64(tracedBytes)
	r.Metrics["envelope_bytes"] = float64(envelope)
	r.Rows = append(r.Rows, []string{
		"frame size",
		fmt.Sprintf("%d B", legacyBytes),
		fmt.Sprintf("%d B", tracedBytes),
		fmt.Sprintf("+%d B (%.2f%%)", envelope, 100*float64(envelope)/float64(legacyBytes)),
	})
	r.check(envelope == 40,
		"traced frame grows by exactly the 40-byte envelope (got +%d B)", envelope)

	legacyFrameNs, err := timeFrameRoundTrip(frameIters, legacy)
	if err != nil {
		return nil, err
	}
	tracedFrameNs, err := timeFrameRoundTrip(frameIters, traced)
	if err != nil {
		return nil, err
	}
	frameRatio := ratioOf(tracedFrameNs, legacyFrameNs)
	r.Rows = append(r.Rows, []string{
		"frame encode+decode",
		fmt.Sprintf("%.0f ns/op", legacyFrameNs),
		fmt.Sprintf("%.0f ns/op", tracedFrameNs),
		fmt.Sprintf("%.2fx", frameRatio),
	})
	r.Metrics["frame_legacy_ns"] = legacyFrameNs
	r.Metrics["frame_traced_ns"] = tracedFrameNs
	r.Metrics["frame_overhead_ratio"] = frameRatio

	if raceEnabled {
		r.note("SKIP timing gates under -race: detector instrumentation dominates both sides")
	} else {
		r.check(tracedNs <= spanBudget,
			"traced span %.0f ns/op within %.0f ns budget", tracedNs, spanBudget)
		r.check(frameRatio <= frameRatioMax,
			"traced frame round-trip %.2fx legacy, within %.1fx bound", frameRatio, frameRatioMax)
	}
	r.note("span iterations: %d, frame iterations: %d (payload %d B)",
		spanIters, frameIters, tracecostPayloadSize)
	return r, nil
}

// timePerOp runs fn iters times after a short warmup and returns the
// mean wall-clock cost per call in nanoseconds.
func timePerOp(iters int, fn func()) float64 {
	for i := 0; i < iters/10; i++ {
		fn()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// frameSize returns the encoded byte length of f.
func frameSize(f wire.Frame) (int, error) {
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// timeFrameRoundTrip measures WriteFrame+ReadFrame over a reused
// in-memory buffer, returning ns per round trip.
func timeFrameRoundTrip(iters int, f wire.Frame) (float64, error) {
	var buf bytes.Buffer
	roundTrip := func() error {
		buf.Reset()
		if err := wire.WriteFrame(&buf, f); err != nil {
			return err
		}
		got, err := wire.ReadFrame(&buf)
		if err != nil {
			return err
		}
		if got.Kind != f.Kind || len(got.Payload) != len(f.Payload) {
			return fmt.Errorf("tracecost: round-trip mangled frame: kind %d len %d", got.Kind, len(got.Payload))
		}
		return nil
	}
	for i := 0; i < iters/10; i++ {
		if err := roundTrip(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := roundTrip(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// ratioOf guards against a zero denominator on absurdly fast machines.
func ratioOf(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
