package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuickScale runs every table/figure regeneration at
// Quick scale and requires every paper-shape check to pass.
func TestAllExperimentsQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment reproductions are not short")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			report, err := exp.Run(Quick)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if !report.ShapeOK {
				t.Errorf("%s: paper-shape checks failed:\n%s", exp.ID, report)
			}
			if len(report.Rows) == 0 {
				t.Errorf("%s: report has no rows", exp.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5a"); !ok {
		t.Error("fig5a not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:      "x",
		Title:   "test",
		Headers: []string{"A", "LongHeader"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		ShapeOK: true,
	}
	r.check(true, "fine")
	r.check(false, "broken")
	r.note("just a note")
	out := r.String()
	for _, want := range []string{"== x — test ==", "A", "LongHeader", "[PASS] fine", "[FAIL] broken", "just a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if r.ShapeOK {
		t.Error("failed check did not clear ShapeOK")
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{
		Headers: []string{"A", "B"},
		Rows:    [][]string{{"1", "x,y"}, {"2", `say "hi"`}},
	}
	got := r.CSV()
	want := "A,B\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
