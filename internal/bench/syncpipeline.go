package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// SyncPipeline measures full-chain re-verification — the cost a provider
// pays when it joins the network and replays a peer's chain — serial
// versus the batched two-stage InsertChain pipeline. Blocks come off the
// wire (DecodeBlock) with cold signature caches, so ECDSA sender
// recovery dominates exactly as it does for a real syncing node; the
// pipeline's win is recovering senders and running stateless checks for
// block N+1..N+k across all cores while block N executes under the chain
// lock.
//
// The equivalence checks (same head, same state roots, same receipts as
// the sequential InsertBlock oracle) hold on any machine. The ≥2x
// speedup claim is only enforced when 4+ cores are available — on fewer
// cores there is nothing to parallelize across and the pipeline merely
// has to not lose.
func SyncPipeline(scale Scale) (*Report, error) {
	blocks, txPerBlock := 150, 4
	if scale == Full {
		blocks, txPerBlock = 1_000, 8
	}
	cores := runtime.NumCPU()

	r := &Report{
		ID:      "syncpipeline",
		Title:   "Sync pipeline: batched InsertChain vs serial re-verification",
		Headers: []string{"Path", "Result"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	cfg, wire, err := buildSyncSource(blocks, txPerBlock)
	if err != nil {
		return nil, err
	}

	// Two independently decoded copies: both start with cold hash and
	// sender caches, like blocks arriving from a peer.
	serialBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}
	pipedBlocks, err := decodeAll(wire)
	if err != nil {
		return nil, err
	}

	// Serial baseline: one core does everything — senders are recovered
	// inline before each insert so the chain's internal parallel recovery
	// finds them warm and the measurement stays genuinely sequential.
	serialChain, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, blk := range serialBlocks {
		for _, tx := range blk.Txs {
			_, _ = tx.Sender()
		}
		if _, err := serialChain.InsertBlock(blk); err != nil {
			return nil, fmt.Errorf("syncpipeline: serial insert #%d: %w", blk.Header.Number, err)
		}
	}
	serialNS := float64(time.Since(start).Nanoseconds())

	// Pipelined: one InsertChain batch, stage-1 stateless verification
	// fanned across cores, stage-2 execution chasing it serially.
	pipedChain, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	n, err := pipedChain.InsertChain(pipedBlocks)
	if err != nil {
		return nil, fmt.Errorf("syncpipeline: batch insert at block %d: %w", n, err)
	}
	pipedNS := float64(time.Since(start).Nanoseconds())

	speedup := serialNS / pipedNS
	r.Metrics["blocks"] = float64(blocks)
	r.Metrics["txs_per_block"] = float64(txPerBlock)
	r.Metrics["cores"] = float64(cores)
	r.Metrics["serial_ns"] = serialNS
	r.Metrics["pipelined_ns"] = pipedNS
	r.Metrics["speedup"] = speedup
	r.Metrics["serial_blocks_per_sec"] = float64(blocks) / (serialNS / 1e9)
	r.Metrics["pipelined_blocks_per_sec"] = float64(blocks) / (pipedNS / 1e9)

	r.Rows = [][]string{
		{"serial InsertBlock", fmt.Sprintf("%.2f s (%.1f blocks/sec)", serialNS/1e9, float64(blocks)/(serialNS/1e9))},
		{"pipelined InsertChain", fmt.Sprintf("%.2f s (%.1f blocks/sec)", pipedNS/1e9, float64(blocks)/(pipedNS/1e9))},
		{"speedup", fmt.Sprintf("%.2fx on %d cores", speedup, cores)},
	}

	// Equivalence: the pipeline must be bit-identical to the oracle.
	r.check(n == blocks, "InsertChain processed all %d blocks (got %d)", blocks, n)
	r.check(pipedChain.Head().ID() == serialChain.Head().ID(), "pipelined head matches serial head")
	r.check(pipedChain.TotalDifficulty() == serialChain.TotalDifficulty(), "total difficulty matches")
	rootsOK, receiptsOK, err := compareChains(serialChain, pipedChain)
	if err != nil {
		return nil, err
	}
	r.check(rootsOK, "state roots match at every sampled height")
	r.check(receiptsOK, "every receipt matches the serial oracle")

	// Performance: only a claim where there are cores to claim it on.
	if cores >= 4 {
		r.check(speedup >= 2, "pipeline ≥2x faster than serial (%.2fx on %d cores)", speedup, cores)
	} else {
		r.note("[SKIP] ≥2x speedup check needs ≥4 cores, have %d (measured %.2fx)", cores, speedup)
	}
	return r, nil
}

// buildSyncSource mines a transfer-heavy chain and returns its config plus
// every non-genesis block's wire encoding. Transfers dominate because a
// syncing node pays full per-signature ECDSA recovery for them, while SRA
// and report payloads hit the warm global signature cache — the honest
// workload for a sender-recovery pipeline.
func buildSyncSource(blocks, txPerBlock int) (chain.Config, [][]byte, error) {
	provider := wallet.NewDeterministic("syncpipe-provider")
	detector := wallet.NewDeterministic("syncpipe-detector")
	miner := wallet.NewDeterministic("syncpipe-miner").Address()
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{
		provider.Address(): types.EtherAmount(1_000_000),
		detector.Address(): types.EtherAmount(1_000),
	}
	c, err := chain.New(cfg)
	if err != nil {
		return chain.Config{}, nil, err
	}

	nonce := uint64(0)
	for i := 0; i < blocks; i++ {
		txs := make([]*types.Transaction, txPerBlock)
		for j := range txs {
			tx := &types.Transaction{
				Kind:     types.TxTransfer,
				Nonce:    nonce,
				To:       types.Address{byte(j + 1)},
				Value:    1,
				GasLimit: 21_000,
				GasPrice: 50 * types.GWei,
			}
			if err := types.SignTx(tx, provider); err != nil {
				return chain.Config{}, nil, err
			}
			nonce++
			txs[j] = tx
		}
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_350, 1000, txs)
		if err != nil {
			return chain.Config{}, nil, err
		}
		if _, err := c.InsertBlock(blk); err != nil {
			return chain.Config{}, nil, err
		}
	}

	canonical := c.CanonicalBlocks()[1:]
	wire := make([][]byte, len(canonical))
	for i, blk := range canonical {
		wire[i] = types.EncodeBlock(blk)
	}
	return cfg, wire, nil
}

// decodeAll turns wire encodings back into fresh block objects with cold
// caches.
func decodeAll(wire [][]byte) ([]*types.Block, error) {
	out := make([]*types.Block, len(wire))
	for i, enc := range wire {
		blk, err := types.DecodeBlock(enc)
		if err != nil {
			return nil, err
		}
		out[i] = blk
	}
	return out, nil
}

// compareChains verifies state roots at sampled heights (head, plus every
// 50th block) and every transaction receipt between the serial oracle and
// the pipelined chain.
func compareChains(serial, piped *chain.Chain) (rootsOK, receiptsOK bool, err error) {
	cs, cp := serial.CanonicalBlocks(), piped.CanonicalBlocks()
	if len(cs) != len(cp) {
		return false, false, nil
	}
	rootsOK, receiptsOK = true, true
	for i := range cs {
		if cs[i].ID() != cp[i].ID() {
			rootsOK = false
			break
		}
		if i%50 == 0 || i == len(cs)-1 {
			ss, err := serial.StateAt(cs[i].ID())
			if err != nil {
				return false, false, err
			}
			sp, err := piped.StateAt(cp[i].ID())
			if err != nil {
				return false, false, err
			}
			if ss.Root() != sp.Root() {
				rootsOK = false
			}
		}
		for _, tx := range cs[i].Txs {
			rs, err := serial.ReceiptOf(tx.Hash())
			if err != nil {
				return false, false, err
			}
			rp, err := piped.ReceiptOf(tx.Hash())
			if err != nil {
				return false, false, err
			}
			if rs.Success != rp.Success || rs.GasUsed != rp.GasUsed ||
				rs.Fee != rp.Fee || rs.Err != rp.Err {
				receiptsOK = false
			}
		}
	}
	return rootsOK, receiptsOK, nil
}
