//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; rpcload
// shrinks its request storm and demotes its latency gates to notes under
// -race, where the detector's ~10x slowdown makes wall-clock percentiles
// meaningless (the run itself stays — it is the read path's best race
// exerciser).
const raceEnabled = true
