package bench

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/node"
	"github.com/smartcrowd/smartcrowd/internal/p2p"
	"github.com/smartcrowd/smartcrowd/internal/rpc"
	"github.com/smartcrowd/smartcrowd/internal/telemetry"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// Handles on the RPC layer's mode-split latency histograms and cache
// counters (registered with help text by internal/rpc). The experiment
// reads deltas around each phase so the report's service-time quantiles
// and error rate come from the same telemetry operators scrape.
var (
	hRPCLockedNs  = telemetry.GetHistogram("smartcrowd_rpc_request_ns", telemetry.L("mode", "locked"))
	hRPCViewNs    = telemetry.GetHistogram("smartcrowd_rpc_request_ns", telemetry.L("mode", "view"))
	cRPCErrors    = telemetry.GetCounter("smartcrowd_rpc_request_errors_total")
	cRPCHitHead   = telemetry.GetCounter("smartcrowd_rpc_cache_hit_total", telemetry.L("tier", "head"))
	cRPCHitPerm   = telemetry.GetCounter("smartcrowd_rpc_cache_hit_total", telemetry.L("tier", "finalized"))
	cRPCViewSwaps = telemetry.GetCounter("smartcrowd_chain_view_published_total")
)

// rpcloadSLOEnv overrides the default p99 budget (milliseconds) the CI
// gate enforces on the view path's open-loop latency.
const (
	rpcloadSLOEnv       = "SMARTCROWD_RPCLOAD_P99_MS"
	rpcloadDefaultSLOms = 250
)

// RPCLoad measures the /v1 read path under an open-loop request storm —
// thousands of concurrent consumers firing on a fixed arrival schedule,
// with a background writer extending the chain throughout — comparing
// the historical mutex-guarded read path (Config.UseLockedReads, the
// oracle) against the lock-free ReadView + response cache.
//
// Open loop means latency is measured from each request's *scheduled*
// arrival, not from when a worker got around to sending it, so queueing
// delay behind the chain lock shows up in the percentiles instead of
// silently throttling the offered rate. Before any load, every path in
// the mix is fetched once from both servers and compared byte-for-byte:
// the fast path must be an exact oracle match, not approximately right.
//
// Shape claims: zero error envelopes at the offered rate, cache hits in
// both tiers, ≥2x p99 improvement over the locked oracle (enforced with
// ≥4 cores), and the view p99 under an SLO budget (default 250 ms,
// SMARTCROWD_RPCLOAD_P99_MS overrides) — the CI latency gate.
func RPCLoad(scale Scale) (*Report, error) {
	accounts, transferBlocks := 48, 12
	total, workers := 9_000, 1_000
	rate := 3_000 // requests per second offered to each phase
	if scale == Full {
		accounts, transferBlocks = 128, 44
		total, workers = 80_000, 4_000
		rate = 10_000
	}
	cores := runtime.NumCPU()
	writerEvery := 25 * time.Millisecond
	if raceEnabled {
		// Under -race the detector's slowdown makes wall-clock latency
		// meaningless; shrink the storm and keep only the correctness
		// gates. The concurrency coverage is the point of this mode.
		total, workers, rate = 2_000, 200, 1_000
	}

	r := &Report{
		ID:      "rpcload",
		Title:   "RPC read path: lock-free view + response cache vs mutex oracle",
		Headers: []string{"Path", "Result"},
		Metrics: make(map[string]float64),
		ShapeOK: true,
	}

	src, err := buildRPCLoadSource(accounts, transferBlocks)
	if err != nil {
		return nil, err
	}

	// Two providers over independently decoded copies of the same chain,
	// so each phase owns its writer and neither sees the other's blocks.
	lockedProv, err := src.newProvider("rpcload-locked")
	if err != nil {
		return nil, err
	}
	viewProv, err := src.newProvider("rpcload-view")
	if err != nil {
		return nil, err
	}
	lockedSrv := rpc.NewServerWith(lockedProv, src.cfg.Contract, rpc.Config{UseLockedReads: true})
	viewSrv := rpc.NewServerWith(viewProv, src.cfg.Contract, rpc.Config{})

	// Quiescent oracle sweep: every path in the mix (plus a 404) must be
	// byte-identical across the locked, view and cached paths.
	sweep := append([]string{"/v1/block/999999"}, src.paths...)
	identical := true
	for _, path := range sweep {
		want, wantCode := fetch(lockedSrv, path)
		for pass := 0; pass < 2; pass++ { // second pass serves from cache
			got, code := fetch(viewSrv, path)
			if code != wantCode || !bytes.Equal(got, want) {
				identical = false
				r.note("MISMATCH %s (pass %d): locked %d (%d bytes) vs view %d (%d bytes)",
					path, pass, wantCode, len(want), code, len(got))
			}
		}
	}
	r.check(identical, "view+cache responses byte-identical with the locked oracle (%d paths × 2 passes)", len(sweep))

	interval := time.Second / time.Duration(rate)
	errs0 := cRPCErrors.Value()
	hit0 := cRPCHitHead.Value() + cRPCHitPerm.Value()
	swaps0 := cRPCViewSwaps.Value()

	lockedCnt0 := hRPCLockedNs.Count()
	lockedRes, err := runRPCPhase(lockedSrv, lockedProv, src.paths, total, workers, interval, writerEvery)
	if err != nil {
		return nil, fmt.Errorf("rpcload: locked phase: %w", err)
	}
	viewCnt0 := hRPCViewNs.Count()
	viewRes, err := runRPCPhase(viewSrv, viewProv, src.paths, total, workers, interval, writerEvery)
	if err != nil {
		return nil, fmt.Errorf("rpcload: view phase: %w", err)
	}

	errors := cRPCErrors.Value() - errs0
	cacheHits := cRPCHitHead.Value() + cRPCHitPerm.Value() - hit0
	viewSwaps := cRPCViewSwaps.Value() - swaps0
	speedupP99 := float64(lockedRes.p99) / float64(viewRes.p99)

	sloMS := float64(rpcloadDefaultSLOms)
	if raw := os.Getenv(rpcloadSLOEnv); raw != "" {
		if v, err := strconv.ParseFloat(raw, 64); err == nil && v > 0 {
			sloMS = v
		}
	}

	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	r.Metrics["cores"] = float64(cores)
	r.Metrics["workers"] = float64(workers)
	r.Metrics["offered_rate_rps"] = float64(rate)
	r.Metrics["requests_per_phase"] = float64(total)
	r.Metrics["locked_p50_ms"] = ms(lockedRes.p50)
	r.Metrics["locked_p99_ms"] = ms(lockedRes.p99)
	r.Metrics["locked_throughput_rps"] = lockedRes.throughput
	r.Metrics["view_p50_ms"] = ms(viewRes.p50)
	r.Metrics["view_p99_ms"] = ms(viewRes.p99)
	r.Metrics["view_throughput_rps"] = viewRes.throughput
	r.Metrics["speedup_p99"] = speedupP99
	r.Metrics["error_envelopes"] = float64(errors)
	r.Metrics["cache_hits"] = float64(cacheHits)
	r.Metrics["view_snapshot_swaps"] = float64(viewSwaps)
	r.Metrics["p99_slo_ms"] = sloMS
	// Service-time quantiles from the process-wide histograms — what an
	// operator scraping /metrics would see (excludes scheduling delay).
	r.Metrics["locked_service_p50_ms"] = float64(hRPCLockedNs.Quantile(0.50)) / 1e6
	r.Metrics["locked_service_p99_ms"] = float64(hRPCLockedNs.Quantile(0.99)) / 1e6
	r.Metrics["view_service_p50_ms"] = float64(hRPCViewNs.Quantile(0.50)) / 1e6
	r.Metrics["view_service_p99_ms"] = float64(hRPCViewNs.Quantile(0.99)) / 1e6

	r.Rows = [][]string{
		{"locked oracle", fmt.Sprintf("p50 %.3f ms  p99 %.3f ms  (%.0f req/s served)",
			ms(lockedRes.p50), ms(lockedRes.p99), lockedRes.throughput)},
		{"view + cache", fmt.Sprintf("p50 %.3f ms  p99 %.3f ms  (%.0f req/s served)",
			ms(viewRes.p50), ms(viewRes.p99), viewRes.throughput)},
		{"p99 speedup", fmt.Sprintf("%.2fx at %d req/s offered, %d workers, %d cores",
			speedupP99, rate, workers, cores)},
	}

	lockedObs := hRPCLockedNs.Count() - lockedCnt0
	viewObs := hRPCViewNs.Count() - viewCnt0
	r.check(lockedObs >= uint64(total) && viewObs >= uint64(total),
		"latency histograms observed every request (locked %d, view %d, offered %d each)", lockedObs, viewObs, total)
	r.check(errors == 0, "zero error envelopes across both phases (%d)", errors)
	r.check(cacheHits > 0, "response cache served hits under churn (%d hits, %d snapshot swaps)", cacheHits, viewSwaps)
	switch {
	case raceEnabled:
		r.note("[SKIP] latency gates are meaningless under -race (view p99 %.3f ms, %.2fx)", ms(viewRes.p99), speedupP99)
	case cores < 4:
		r.check(ms(viewRes.p99) <= sloMS, "view p99 %.3f ms within the %.0f ms SLO budget", ms(viewRes.p99), sloMS)
		r.note("[SKIP] ≥2x p99 check needs ≥4 cores, have %d (measured %.2fx)", cores, speedupP99)
	default:
		r.check(ms(viewRes.p99) <= sloMS, "view p99 %.3f ms within the %.0f ms SLO budget", ms(viewRes.p99), sloMS)
		r.check(speedupP99 >= 2.0, "view p99 ≥2x better than locked oracle (%.2fx on %d cores)", speedupP99, cores)
	}
	return r, nil
}

// rpcPhaseResult summarizes one measured load phase.
type rpcPhaseResult struct {
	p50, p99   time.Duration
	throughput float64 // completed requests per second of wall clock
}

// runRPCPhase fires total requests at the handler on a fixed open-loop
// schedule (one every interval) from a pool of workers, while a writer
// goroutine keeps extending prov's chain so snapshots swap and the
// locked path suffers its real write contention. Latency for request i
// runs from its scheduled arrival start+i·interval to completion.
func runRPCPhase(h http.Handler, prov *node.ProviderNode, paths []string, total, workers int, interval, writerEvery time.Duration) (rpcPhaseResult, error) {
	stopWriter := make(chan struct{})
	var writerErr atomic.Value
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tick := time.NewTicker(writerEvery)
		defer tick.Stop()
		for {
			select {
			case <-stopWriter:
				return
			case <-tick.C:
				head := prov.Chain().Head()
				if _, err := prov.MineBlock(head.Header.Time+15_350, 1000, 0, 0); err != nil {
					writerErr.Store(err)
					return
				}
			}
		}
	}()

	latencies := make([]time.Duration, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", paths[i%len(paths)], nil))
				latencies[i] = time.Since(sched)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWriter)
	writerWG.Wait()
	if err, _ := writerErr.Load().(error); err != nil {
		return rpcPhaseResult{}, fmt.Errorf("background writer: %w", err)
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return rpcPhaseResult{
		p50:        durQuantile(latencies, 0.50),
		p99:        durQuantile(latencies, 0.99),
		throughput: float64(total) / elapsed.Seconds(),
	}, nil
}

// durQuantile reads the q-quantile from an ascending latency slice.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// fetch issues one in-process GET and returns the body bytes and status.
func fetch(h http.Handler, path string) ([]byte, int) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Body.Bytes(), rec.Code
}

// rpcLoadSource is a prebuilt workload chain plus the request mix that
// exercises it. newProvider stamps out independent providers over
// identical block copies so each phase gets its own writable chain.
type rpcLoadSource struct {
	cfg   chain.Config
	wire  [][]byte
	paths []string
}

func (s *rpcLoadSource) newProvider(id string) (*node.ProviderNode, error) {
	prov, err := node.NewProvider(p2p.NodeID(id), wallet.NewDeterministic("rpcload-miner"), s.cfg, nil)
	if err != nil {
		return nil, err
	}
	blocks, err := decodeAll(s.wire)
	if err != nil {
		return nil, err
	}
	for _, blk := range blocks {
		types.RecoverSenders(blk.Txs)
	}
	if _, err := prov.Chain().InsertChain(blocks); err != nil {
		return nil, fmt.Errorf("rpcload: seed provider %s: %w", id, err)
	}
	return prov, nil
}

// buildRPCLoadSource mines the workload: one SRA release, an initial +
// detailed report pair against it, then transferBlocks blocks of
// transfers fanning out across the allocated accounts — enough variety
// that every /v1 read route has real objects at several depths. The
// returned mix leans on the consumer-facing hot paths (status, balances,
// references) the way a polling fleet would.
func buildRPCLoadSource(accounts, transferBlocks int) (*rpcLoadSource, error) {
	provider := wallet.NewDeterministic("rpcload-provider")
	detector := wallet.NewDeterministic("rpcload-detector")
	verifier := contract.VerifierFunc(func(types.Hash, types.Finding) bool { return true })
	cfg := chain.DefaultConfig(contract.New(contract.DefaultParams(), verifier))
	cfg.SkipPoWCheck = true
	cfg.Alloc = map[types.Address]types.Amount{
		provider.Address(): types.EtherAmount(10_000),
		detector.Address(): types.EtherAmount(100),
	}
	wallets := make([]*wallet.Wallet, accounts)
	for i := range wallets {
		wallets[i] = wallet.NewDeterministic(fmt.Sprintf("rpcload-account-%d", i))
		cfg.Alloc[wallets[i].Address()] = types.EtherAmount(500)
	}

	c, err := chain.New(cfg)
	if err != nil {
		return nil, err
	}
	miner := wallet.NewDeterministic("rpcload-miner").Address()
	extend := func(txs []*types.Transaction) error {
		head := c.Head()
		blk, err := c.BuildBlock(head.ID(), miner, head.Header.Time+15_350, 1000, txs)
		if err != nil {
			return err
		}
		_, err = c.InsertBlock(blk)
		return err
	}

	// Block 1: the release. Blocks 2-3: the two-phase report.
	sra := &types.SRA{
		Provider:     provider.Address(),
		Name:         "rpcload-fw",
		Version:      "1.0",
		SystemHash:   types.HashBytes([]byte("rpcload-image")),
		DownloadLink: "sc://rpcload-fw",
		Insurance:    types.EtherAmount(100),
		Bounty:       types.EtherAmount(5),
	}
	if err := types.SignSRA(sra, provider); err != nil {
		return nil, err
	}
	sraTx := types.NewSRATx(sra, 0, 2_000_000, 50*types.GWei)
	if err := types.SignTx(sraTx, provider); err != nil {
		return nil, err
	}
	if err := extend([]*types.Transaction{sraTx}); err != nil {
		return nil, fmt.Errorf("rpcload: sra block: %w", err)
	}

	detailed := &types.DetailedReport{
		SRAID:    sra.ID,
		Detector: detector.Address(),
		Wallet:   detector.Address(),
		Findings: []types.Finding{{VulnID: "SC-RPCLOAD-0001", Severity: types.SeverityHigh}},
	}
	if err := types.SignDetailedReport(detailed, detector); err != nil {
		return nil, err
	}
	initial := &types.InitialReport{
		SRAID:      sra.ID,
		Detector:   detector.Address(),
		DetailHash: detailed.CommitmentHash(),
		Wallet:     detector.Address(),
	}
	if err := types.SignInitialReport(initial, detector); err != nil {
		return nil, err
	}
	itx := types.NewInitialReportTx(initial, 0, 150_000, 50*types.GWei)
	if err := types.SignTx(itx, detector); err != nil {
		return nil, err
	}
	if err := extend([]*types.Transaction{itx}); err != nil {
		return nil, fmt.Errorf("rpcload: initial report block: %w", err)
	}
	dtx := types.NewDetailedReportTx(detailed, 1, 150_000, 50*types.GWei)
	if err := types.SignTx(dtx, detector); err != nil {
		return nil, err
	}
	if err := extend([]*types.Transaction{dtx}); err != nil {
		return nil, fmt.Errorf("rpcload: detailed report block: %w", err)
	}

	// Transfer blocks: each account pays its ring successor, 8 txs per
	// block round-robin, so balances, receipts and proofs exist at every
	// depth from finalized to head.
	var transferHashes []types.Hash
	nonces := make([]uint64, accounts)
	for b := 0; b < transferBlocks; b++ {
		txs := make([]*types.Transaction, 0, 8)
		for k := 0; k < 8; k++ {
			i := (b*8 + k) % accounts
			tx := &types.Transaction{
				Kind:     types.TxTransfer,
				Nonce:    nonces[i],
				To:       wallets[(i+1)%accounts].Address(),
				Value:    types.EtherAmount(1),
				GasLimit: 21_000,
				GasPrice: 50 * types.GWei,
			}
			if err := types.SignTx(tx, wallets[i]); err != nil {
				return nil, err
			}
			nonces[i]++
			txs = append(txs, tx)
			transferHashes = append(transferHashes, tx.Hash())
		}
		if err := extend(txs); err != nil {
			return nil, fmt.Errorf("rpcload: transfer block %d: %w", b, err)
		}
	}

	canonical := c.CanonicalBlocks()[1:]
	wire := make([][]byte, len(canonical))
	for i, blk := range canonical {
		wire[i] = types.EncodeBlock(blk)
	}

	// The request mix: ~20 paths so head-keyed entries get re-hit a few
	// times inside each 25 ms head generation at quick-scale rates.
	head := c.HeadNumber()
	paths := []string{
		"/v1/status",
		"/v1/status", // status is the hottest consumer poll
		"/v1/block/1",
		"/v1/block/" + strconv.FormatUint(head-1, 10),
		"/v1/blocks?from=0&to=9",
		fmt.Sprintf("/v1/blocks?from=%d&to=%d", head-5, head),
		"/v1/balance/" + provider.Address().String(),
		"/v1/balance/" + detector.Address().String(),
		"/v1/balance/" + wallets[0].Address().String(),
		"/v1/balance/" + wallets[accounts/2].Address().String(),
		"/v1/receipt/" + dtx.Hash().String(),
		"/v1/receipt/" + transferHashes[0].String(),
		"/v1/receipt/" + transferHashes[len(transferHashes)-1].String(),
		"/v1/sra/" + sra.ID.String(),
		"/v1/sras",
		"/v1/reference/" + sra.ID.String(),
		"/v1/reference/" + sra.ID.String(), // the paper's consumer lookup
		"/v1/proof/" + dtx.Hash().String(),
		"/v1/proof/" + transferHashes[0].String(),
		"/v1/proof/" + transferHashes[len(transferHashes)/2].String(),
	}
	return &rpcLoadSource{cfg: cfg, wire: wire, paths: paths}, nil
}
