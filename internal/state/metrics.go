package state

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

var (
	mRootDirtyAccounts = telemetry.GetHistogram("smartcrowd_state_root_dirty_accounts")
	mRootNs            = telemetry.GetHistogram("smartcrowd_state_root_ns")
)

func init() {
	telemetry.SetHelp("smartcrowd_state_root_dirty_accounts", "accounts rehashed per non-trivial Root() computation")
	telemetry.SetHelp("smartcrowd_state_root_ns", "latency of non-trivial Root() computations")
}
