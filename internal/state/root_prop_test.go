package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// referenceRoot recomputes the state commitment from scratch: it gathers
// every non-empty account in sorted order and builds the crit-bit
// structure recursively from the sorted slice, hashing all of it. It
// shares no code with the incremental path (trieUpsert/trieDelete and the
// dirty-set bookkeeping), so agreement across random histories is strong
// evidence the incremental root equals a full rehash.
func referenceRoot(db *DB) types.Hash {
	addrs := db.Accounts()
	if len(addrs) == 0 {
		return emptyStateRoot
	}
	return refBuild(db, addrs)
}

func refBuild(db *DB, addrs []types.Address) types.Hash {
	if len(addrs) == 1 {
		h := keccak.New256()
		_, _ = h.Write([]byte{trieTagLeaf})
		_, _ = h.Write(addrs[0][:])
		d := accountDigest(addrs[0], db.accounts[addrs[0]])
		_, _ = h.Write(d[:])
		var out types.Hash
		copy(out[:], h.Sum(nil))
		return out
	}
	// The branch bit is the first bit on which the sorted group disagrees
	// — i.e. the first differing bit of its extremes. Sorted order means
	// the group splits into a bit-0 prefix and a bit-1 suffix.
	d := firstDiffBit(addrs[0], addrs[len(addrs)-1])
	split := sort.Search(len(addrs), func(i int) bool { return addrBit(addrs[i], d) == 1 })
	left := refBuild(db, addrs[:split])
	right := refBuild(db, addrs[split:])
	h := keccak.New256()
	_, _ = h.Write([]byte{trieTagBranch, byte(d >> 8), byte(d)})
	_, _ = h.Write(left[:])
	_, _ = h.Write(right[:])
	var out types.Hash
	copy(out[:], h.Sum(nil))
	return out
}

// modelAcct is the naive shadow model of one account.
type modelAcct struct {
	balance types.Amount
	nonce   uint64
	code    []byte
	storage map[types.Hash]types.Hash
}

func (m *modelAcct) clone() *modelAcct {
	cp := &modelAcct{balance: m.balance, nonce: m.nonce}
	cp.code = append([]byte(nil), m.code...)
	cp.storage = make(map[types.Hash]types.Hash, len(m.storage))
	for k, v := range m.storage {
		cp.storage[k] = v
	}
	return cp
}

// model shadows a DB with eager deep copies: snapshots store the whole
// world, so its revert semantics are trivially correct.
type model struct {
	accounts  map[types.Address]*modelAcct
	snapshots []map[types.Address]*modelAcct
}

func newModel() *model {
	return &model{accounts: make(map[types.Address]*modelAcct)}
}

func (m *model) clone() map[types.Address]*modelAcct {
	cp := make(map[types.Address]*modelAcct, len(m.accounts))
	for a, acc := range m.accounts {
		cp[a] = acc.clone()
	}
	return cp
}

func (m *model) copyModel() *model {
	return &model{accounts: m.clone()}
}

func (m *model) get(a types.Address) *modelAcct {
	acc, ok := m.accounts[a]
	if !ok {
		acc = &modelAcct{storage: make(map[types.Hash]types.Hash)}
		m.accounts[a] = acc
	}
	return acc
}

// checkAgainst compares the DB with the model field by field, plus the
// incremental root against the reference rebuild.
func checkAgainst(t *testing.T, step int, db *DB, m *model) {
	t.Helper()
	for a, acc := range m.accounts {
		if got := db.Balance(a); got != acc.balance {
			t.Fatalf("step %d: balance[%s] = %d, model %d", step, a, got, acc.balance)
		}
		if got := db.Nonce(a); got != acc.nonce {
			t.Fatalf("step %d: nonce[%s] = %d, model %d", step, a, got, acc.nonce)
		}
		if got := db.Code(a); !bytes.Equal(got, acc.code) {
			t.Fatalf("step %d: code[%s] = %x, model %x", step, a, got, acc.code)
		}
		for k, v := range acc.storage {
			if got := db.GetStorage(a, k); got != v {
				t.Fatalf("step %d: storage[%s][%s] = %s, model %s", step, a, k.Short(), got.Short(), v.Short())
			}
		}
	}
	if got, want := db.Root(), referenceRoot(db); got != want {
		t.Fatalf("step %d: incremental root %s != reference root %s", step, got.Short(), want.Short())
	}
}

// TestRootMatchesReferenceUnderRandomHistories drives long random
// mutate/snapshot/revert/copy sequences against both the CoW DB and a
// naive deep-copy model and requires (a) identical observable state and
// (b) the incrementally maintained Root to equal the from-scratch
// reference root at every checkpoint.
func TestRootMatchesReferenceUnderRandomHistories(t *testing.T) {
	universe := make([]types.Address, 12)
	for i := range universe {
		h := types.HashBytes([]byte{byte(i), 0xA7})
		copy(universe[i][:], h[:20])
	}
	keys := make([]types.Hash, 5)
	for i := range keys {
		keys[i] = types.HashBytes([]byte{0x55, byte(i)})
	}

	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := New()
			m := newModel()
			for step := 0; step < 600; step++ {
				a := universe[rng.Intn(len(universe))]
				switch op := rng.Intn(12); op {
				case 0, 1, 2: // credit
					v := types.Amount(rng.Intn(1000))
					if db.Credit(a, v) == nil {
						m.get(a).balance += v
					}
				case 3, 4: // debit
					v := types.Amount(rng.Intn(1000))
					if db.Debit(a, v) == nil {
						m.get(a).balance -= v
					}
				case 5: // nonce
					n := rng.Uint64() % 50
					db.SetNonce(a, n)
					m.get(a).nonce = n
				case 6: // code
					code := []byte{byte(rng.Intn(4)), byte(rng.Intn(4))}
					if rng.Intn(4) == 0 {
						code = nil
					}
					db.SetCode(a, code)
					m.get(a).code = append([]byte(nil), code...)
				case 7, 8: // storage write (zero value deletes)
					k := keys[rng.Intn(len(keys))]
					var v types.Hash
					if rng.Intn(3) != 0 {
						v = types.HashBytes([]byte{byte(rng.Intn(5))})
					}
					db.SetStorage(a, k, v)
					if v.IsZero() {
						delete(m.get(a).storage, k)
					} else {
						m.get(a).storage[k] = v
					}
				case 9: // snapshot
					id := db.Snapshot()
					if id != len(m.snapshots) {
						t.Fatalf("step %d: snapshot id %d, model expects %d", step, id, len(m.snapshots))
					}
					m.snapshots = append(m.snapshots, m.clone())
				case 10: // revert to a random open snapshot
					if len(m.snapshots) == 0 {
						continue
					}
					id := rng.Intn(len(m.snapshots))
					if err := db.RevertToSnapshot(id); err != nil {
						t.Fatalf("step %d: revert: %v", step, err)
					}
					m.accounts = m.snapshots[id]
					m.snapshots = m.snapshots[:id]
				case 11: // copy: fork both sides, mutate the fork, then
					// verify isolation in both directions
					cp := db.Copy()
					cpm := m.copyModel()
					for i := 0; i < 8; i++ {
						b := universe[rng.Intn(len(universe))]
						switch rng.Intn(3) {
						case 0:
							v := types.Amount(rng.Intn(500))
							if cp.Credit(b, v) == nil {
								cpm.get(b).balance += v
							}
						case 1:
							k := keys[rng.Intn(len(keys))]
							v := types.HashBytes([]byte{0xCC, byte(i)})
							cp.SetStorage(b, k, v)
							cpm.get(b).storage[k] = v
						case 2:
							cp.SetCode(b, []byte{0xFE, byte(i)})
							cpm.get(b).code = []byte{0xFE, byte(i)}
						}
					}
					checkAgainst(t, step, cp, cpm)
					// Mutating the copy must not have leaked anywhere.
					checkAgainst(t, step, db, m)
				}
				if step%37 == 0 {
					checkAgainst(t, step, db, m)
				}
			}
			db.DiscardSnapshots()
			m.snapshots = nil
			checkAgainst(t, -1, db, m)
		})
	}
}

// TestCopyOriginalKeepsMutatingSafely covers the direction the seed's
// deep copy got for free and CoW must earn: mutating the ORIGINAL after
// taking a copy must not leak into the copy.
func TestCopyOriginalKeepsMutatingSafely(t *testing.T) {
	db := New()
	a := addr("a")
	k := types.HashBytes([]byte("k"))
	_ = db.Credit(a, 100)
	db.SetStorage(a, k, types.HashBytes([]byte("v1")))
	db.SetCode(a, []byte{1})
	wantRoot := db.Root()

	cp := db.Copy()
	_ = db.Credit(a, 900)
	db.SetStorage(a, k, types.HashBytes([]byte("v2")))
	db.SetCode(a, []byte{2})

	if cp.Balance(a) != 100 {
		t.Error("original mutation leaked balance into copy")
	}
	if cp.GetStorage(a, k) != types.HashBytes([]byte("v1")) {
		t.Error("original mutation leaked storage into copy")
	}
	if !bytes.Equal(cp.Code(a), []byte{1}) {
		t.Error("original mutation leaked code into copy")
	}
	if cp.Root() != wantRoot {
		t.Error("copy root drifted after original mutated")
	}
	if db.Root() == wantRoot {
		t.Error("original root failed to change")
	}
}

// TestRevertAfterCopyDoesNotCorruptCopy reverts the original past the
// point where a copy was taken: the undo path must clone-on-write rather
// than mutate records the copy still references.
func TestRevertAfterCopyDoesNotCorruptCopy(t *testing.T) {
	db := New()
	a, b := addr("a"), addr("b")
	k := types.HashBytes([]byte("k"))
	_ = db.Credit(a, 50)
	snap := db.Snapshot()
	_ = db.Transfer(a, b, 20)
	db.SetStorage(b, k, types.HashBytes([]byte("v")))

	cp := db.Copy() // sees the post-transfer world
	if err := db.RevertToSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	if db.Balance(a) != 50 || db.Balance(b) != 0 {
		t.Error("revert did not restore the original")
	}
	if cp.Balance(a) != 30 || cp.Balance(b) != 20 {
		t.Error("reverting the original corrupted the copy")
	}
	if cp.GetStorage(b, k) != types.HashBytes([]byte("v")) {
		t.Error("reverting the original corrupted the copy's storage")
	}
	if got, want := cp.Root(), referenceRoot(cp); got != want {
		t.Errorf("copy root %s != reference %s after original revert", got.Short(), want.Short())
	}
	if got, want := db.Root(), referenceRoot(db); got != want {
		t.Errorf("original root %s != reference %s after revert", got.Short(), want.Short())
	}
}

// TestCopyChains exercises grandchild copies: each generation mutates a
// shared account and all generations must stay isolated.
func TestCopyChains(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, 1)
	c1 := db.Copy()
	c2 := c1.Copy()
	c3 := c2.Copy()
	_ = c1.Credit(a, 10)
	_ = c2.Credit(a, 100)
	_ = c3.Credit(a, 1000)
	_ = db.Credit(a, 10000)

	for i, tc := range []struct {
		db   *DB
		want types.Amount
	}{{db, 10001}, {c1, 11}, {c2, 101}, {c3, 1001}} {
		if got := tc.db.Balance(a); got != tc.want {
			t.Errorf("gen %d balance = %d, want %d", i, got, tc.want)
		}
		if got, want := tc.db.Root(), referenceRoot(tc.db); got != want {
			t.Errorf("gen %d root %s != reference %s", i, got.Short(), want.Short())
		}
	}
}
