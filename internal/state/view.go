// Recording execution views for optimistic parallel transaction
// execution. A RecordingView is a copy-on-write overlay over a base DB
// that buffers every mutation privately and records which accounts the
// transaction read and wrote. The chain's parallel executor runs each
// transaction of a block against its own view concurrently (the base is
// only ever read), then commits the buffered writes in canonical
// transaction order, using the recorded sets to detect read-after-write
// and write-after-write conflicts with earlier transactions.
//
// Granularity is the account: a transaction that touches an address in
// any way (balance, nonce, code or any storage slot) conflicts with any
// earlier transaction that wrote that address. That is coarser than
// per-slot tracking but makes the conflict check a cheap set
// intersection, and SmartCrowd's dominant traffic (transfers, detector
// reports against per-detector commitments) is disjoint at exactly this
// granularity.
package state

import (
	"fmt"
	"sort"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// viewUndo journal entry kinds, mirroring the DB journal: field-level
// undos so snapshot/revert restores exactly the mutated fields.
const (
	vEnter   = iota // account entered the overlay; undo removes it
	vBalance        // undo restores prevAmount
	vNonce          // undo restores prevU64
	vCode           // undo restores prevCode
	vStorage        // undo restores key → prevVal (or deletes if !existed)
)

// viewUndo records how to undo one overlay mutation.
type viewUndo struct {
	kind       uint8
	addr       types.Address
	prevAmount types.Amount
	prevU64    uint64
	prevCode   []byte
	key        types.Hash
	prevVal    types.Hash
	existed    bool
}

// RecordingView overlays a base DB with private write buffers and
// read/write account tracking. It satisfies the same execution surface
// as *DB (the chain executor, the SCVM and the SmartCrowd contract all
// operate through interfaces both types implement).
//
// A view never mutates its base: reads fall through to the base's
// account records, the first write to an address clones the record into
// the overlay (storage maps copy-on-write, exactly like DB.Copy
// descendants). Concurrent views over one base are safe as long as the
// base itself is not mutated while they execute; CommitTo applies a
// view's buffered writes back to the base afterwards, serially.
type RecordingView struct {
	base *DB
	// accts holds the private clones of every written account.
	accts map[types.Address]*Account
	// reads and writes are the recorded conflict-detection sets. writes
	// is a superset of live overlay entries: a reverted write stays
	// recorded, which can only make conflict detection more conservative.
	reads     map[types.Address]struct{}
	writes    map[types.Address]struct{}
	journal   []viewUndo
	snapshots []int
}

// NewRecordingView creates an empty overlay over base. The base must not
// be mutated while the view executes; it may be shared read-only by any
// number of concurrent views.
func NewRecordingView(base *DB) *RecordingView {
	return &RecordingView{
		base:   base,
		accts:  make(map[types.Address]*Account),
		reads:  make(map[types.Address]struct{}),
		writes: make(map[types.Address]struct{}),
	}
}

// account resolves addr (overlay first, then base) and records the read.
func (v *RecordingView) account(addr types.Address) *Account {
	v.reads[addr] = struct{}{}
	if acc, ok := v.accts[addr]; ok {
		return acc
	}
	if acc, ok := v.base.accounts[addr]; ok {
		return acc
	}
	return nil
}

// mutable returns addr's private overlay account ready for mutation,
// cloning it from the base (or creating it) on first touch.
func (v *RecordingView) mutable(addr types.Address) *Account {
	v.writes[addr] = struct{}{}
	if acc, ok := v.accts[addr]; ok {
		return acc
	}
	var acc *Account
	if shared, ok := v.base.accounts[addr]; ok {
		acc = shared.shallowClone()
	} else {
		acc = &Account{}
	}
	v.accts[addr] = acc
	v.journal = append(v.journal, viewUndo{kind: vEnter, addr: addr})
	return acc
}

// Snapshot opens a revert point and returns its id.
func (v *RecordingView) Snapshot() int {
	v.snapshots = append(v.snapshots, len(v.journal))
	return len(v.snapshots) - 1
}

// RevertToSnapshot undoes every overlay mutation made after the snapshot
// was taken. The recorded read/write sets are intentionally NOT rolled
// back: a reverted touch still ordered this transaction against others,
// and keeping it only errs toward detecting more conflicts.
func (v *RecordingView) RevertToSnapshot(id int) error {
	if id < 0 || id >= len(v.snapshots) {
		return fmt.Errorf("%w: %d", ErrBadSnapshot, id)
	}
	target := v.snapshots[id]
	for len(v.journal) > target {
		e := v.journal[len(v.journal)-1]
		v.journal = v.journal[:len(v.journal)-1]
		switch e.kind {
		case vEnter:
			delete(v.accts, e.addr)
		case vBalance:
			v.accts[e.addr].Balance = e.prevAmount
		case vNonce:
			v.accts[e.addr].Nonce = e.prevU64
		case vCode:
			v.accts[e.addr].Code = e.prevCode
		case vStorage:
			acc := v.accts[e.addr]
			if e.existed {
				storageForWrite(acc)[e.key] = e.prevVal
			} else if acc.Storage != nil {
				delete(storageForWrite(acc), e.key)
			}
		}
	}
	v.snapshots = v.snapshots[:id]
	return nil
}

// Balance returns the balance of addr (zero for unknown accounts).
func (v *RecordingView) Balance(addr types.Address) types.Amount {
	if acc := v.account(addr); acc != nil {
		return acc.Balance
	}
	return 0
}

// Nonce returns the next expected transaction nonce for addr.
func (v *RecordingView) Nonce(addr types.Address) uint64 {
	if acc := v.account(addr); acc != nil {
		return acc.Nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (v *RecordingView) SetNonce(addr types.Address, nonce uint64) {
	acc := v.mutable(addr)
	v.journal = append(v.journal, viewUndo{kind: vNonce, addr: addr, prevU64: acc.Nonce})
	acc.Nonce = nonce
}

// Credit adds value to addr's balance.
func (v *RecordingView) Credit(addr types.Address, value types.Amount) error {
	acc := v.mutable(addr)
	if acc.Balance+value < acc.Balance {
		return fmt.Errorf("%w: %s", ErrBalanceOverflow, addr)
	}
	v.journal = append(v.journal, viewUndo{kind: vBalance, addr: addr, prevAmount: acc.Balance})
	acc.Balance += value
	return nil
}

// Debit removes value from addr's balance, failing without mutation if
// the balance is insufficient.
func (v *RecordingView) Debit(addr types.Address, value types.Amount) error {
	if v.Balance(addr) < value {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance,
			addr, v.Balance(addr), value)
	}
	acc := v.mutable(addr)
	v.journal = append(v.journal, viewUndo{kind: vBalance, addr: addr, prevAmount: acc.Balance})
	acc.Balance -= value
	return nil
}

// Transfer moves value from one account to another atomically.
func (v *RecordingView) Transfer(from, to types.Address, value types.Amount) error {
	if err := v.Debit(from, value); err != nil {
		return err
	}
	return v.Credit(to, value)
}

// Code returns a copy of the contract code at addr (nil for plain
// accounts), mirroring DB.Code's defensive copy.
func (v *RecordingView) Code(addr types.Address) []byte {
	if acc := v.account(addr); acc != nil && acc.Code != nil {
		return append([]byte(nil), acc.Code...)
	}
	return nil
}

// SetCode installs contract code at addr.
func (v *RecordingView) SetCode(addr types.Address, code []byte) {
	acc := v.mutable(addr)
	v.journal = append(v.journal, viewUndo{kind: vCode, addr: addr, prevCode: acc.Code})
	acc.Code = append([]byte(nil), code...)
}

// GetStorage reads a contract storage slot.
func (v *RecordingView) GetStorage(addr types.Address, key types.Hash) types.Hash {
	if acc := v.account(addr); acc != nil && acc.Storage != nil {
		return acc.Storage[key]
	}
	return types.Hash{}
}

// SetStorage writes a contract storage slot. Writing the zero hash
// deletes the slot, exactly like DB.SetStorage.
func (v *RecordingView) SetStorage(addr types.Address, key, value types.Hash) {
	acc := v.mutable(addr)
	if value.IsZero() && len(acc.Storage) == 0 {
		return // deleting from empty storage: nothing to undo
	}
	st := storageForWrite(acc)
	prev, existed := st[key]
	v.journal = append(v.journal, viewUndo{
		kind: vStorage, addr: addr, key: key, prevVal: prev, existed: existed,
	})
	if value.IsZero() {
		delete(st, key)
		return
	}
	st[key] = value
}

// Touches reports whether any account this view read or wrote is in set
// — the conflict predicate against the union of earlier transactions'
// write sets (read-after-write and write-after-write alike).
func (v *RecordingView) Touches(set map[types.Address]struct{}) bool {
	if len(set) == 0 {
		return false
	}
	// Iterate the smaller side; both are pure membership tests, so map
	// order cannot leak into any output.
	if len(v.reads)+len(v.writes) <= len(set) {
		for addr := range v.reads {
			if _, ok := set[addr]; ok {
				return true
			}
		}
		for addr := range v.writes {
			if _, ok := set[addr]; ok {
				return true
			}
		}
		return false
	}
	for addr := range set {
		if _, ok := v.reads[addr]; ok {
			return true
		}
		if _, ok := v.writes[addr]; ok {
			return true
		}
	}
	return false
}

// AddWritesTo unions this view's write set into set (order-insensitive).
func (v *RecordingView) AddWritesTo(set map[types.Address]struct{}) {
	for addr := range v.writes {
		set[addr] = struct{}{}
	}
}

// Reads returns the recorded read set in deterministic address order.
func (v *RecordingView) Reads() []types.Address { return sortedAddrs(v.reads) }

// Writes returns the recorded write set in deterministic address order.
func (v *RecordingView) Writes() []types.Address { return sortedAddrs(v.writes) }

func sortedAddrs(set map[types.Address]struct{}) []types.Address {
	out := make([]types.Address, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return lessAddr(out[i], out[j]) })
	return out
}

// CommitTo applies the view's buffered writes to db in deterministic
// address order. db is normally the view's own base after all concurrent
// views finished executing; accounts are installed through db's
// copy-on-write ownership path so epoch sharing and dirty tracking (for
// the incremental Root) stay exact. Field-level journal entries are not
// emitted: commits happen between transactions, outside any snapshot,
// and a failing block discards the whole working state.
func (v *RecordingView) CommitTo(db *DB) {
	addrs := make([]types.Address, 0, len(v.accts))
	for addr := range v.accts {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return lessAddr(addrs[i], addrs[j]) })
	for _, addr := range addrs {
		acc := v.accts[addr]
		dst := db.mutable(addr)
		dst.Balance = acc.Balance
		dst.Nonce = acc.Nonce
		dst.Code = acc.Code
		if !acc.storageShared && acc.Storage != nil {
			// The view wrote storage, so acc.Storage is a private full
			// copy of the base map plus the changes; the view is
			// discarded after commit, so the map moves wholesale.
			dst.Storage = acc.Storage
			dst.storageShared = false
		}
	}
}
