// Package state implements the account state of the SmartCrowd chain:
// balances (in gwei), nonces, contract code and contract storage, with a
// journal that supports cheap snapshot/revert — required both by the SCVM
// (failed calls revert their effects) and by chain reorganizations.
package state

import (
	"errors"
	"fmt"
	"sort"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Account is the mutable record for one address.
type Account struct {
	Balance types.Amount
	Nonce   uint64
	Code    []byte
	Storage map[types.Hash]types.Hash
}

func (a *Account) clone() *Account {
	cp := &Account{Balance: a.Balance, Nonce: a.Nonce}
	if a.Code != nil {
		cp.Code = append([]byte(nil), a.Code...)
	}
	if a.Storage != nil {
		cp.Storage = make(map[types.Hash]types.Hash, len(a.Storage))
		for k, v := range a.Storage {
			cp.Storage[k] = v
		}
	}
	return cp
}

// empty reports whether the account holds no value, code or state and can
// be pruned from the root computation.
func (a *Account) empty() bool {
	return a.Balance == 0 && a.Nonce == 0 && len(a.Code) == 0 && len(a.Storage) == 0
}

// State errors.
var (
	ErrInsufficientBalance = errors.New("state: insufficient balance")
	ErrBalanceOverflow     = errors.New("state: balance overflow")
	ErrBadSnapshot         = errors.New("state: invalid snapshot id")
)

// journalEntry records how to undo one mutation.
type journalEntry struct {
	addr types.Address
	// prev is the account value before the mutation; nil means the account
	// did not exist.
	prev *Account
}

// DB is the in-memory account state. The zero value is not usable; call
// New. DB is not safe for concurrent mutation; each node owns its state.
type DB struct {
	accounts map[types.Address]*Account
	journal  []journalEntry
	// snapshots holds journal lengths for open snapshots.
	snapshots []int
}

// New creates an empty state.
func New() *DB {
	return &DB{accounts: make(map[types.Address]*Account)}
}

// Copy returns a deep copy sharing nothing with the original. Reorgs use
// this to rebuild state on a fork without disturbing the canonical state.
func (db *DB) Copy() *DB {
	cp := New()
	for addr, acc := range db.accounts {
		cp.accounts[addr] = acc.clone()
	}
	return cp
}

// touch records the pre-state of addr in the journal before mutation.
func (db *DB) touch(addr types.Address) *Account {
	acc, ok := db.accounts[addr]
	if ok {
		db.journal = append(db.journal, journalEntry{addr: addr, prev: acc.clone()})
		return acc
	}
	db.journal = append(db.journal, journalEntry{addr: addr, prev: nil})
	acc = &Account{}
	db.accounts[addr] = acc
	return acc
}

// Snapshot opens a revert point and returns its id.
func (db *DB) Snapshot() int {
	db.snapshots = append(db.snapshots, len(db.journal))
	return len(db.snapshots) - 1
}

// RevertToSnapshot undoes every mutation made after the snapshot was taken.
// Snapshots opened after id are discarded.
func (db *DB) RevertToSnapshot(id int) error {
	if id < 0 || id >= len(db.snapshots) {
		return fmt.Errorf("%w: %d", ErrBadSnapshot, id)
	}
	target := db.snapshots[id]
	for len(db.journal) > target {
		entry := db.journal[len(db.journal)-1]
		db.journal = db.journal[:len(db.journal)-1]
		if entry.prev == nil {
			delete(db.accounts, entry.addr)
		} else {
			db.accounts[entry.addr] = entry.prev
		}
	}
	db.snapshots = db.snapshots[:id]
	return nil
}

// DiscardSnapshots commits all outstanding snapshots (keeps the mutations)
// and clears the journal. Called at block boundaries.
func (db *DB) DiscardSnapshots() {
	db.journal = db.journal[:0]
	db.snapshots = db.snapshots[:0]
}

// Balance returns the balance of addr (zero for unknown accounts).
func (db *DB) Balance(addr types.Address) types.Amount {
	if acc, ok := db.accounts[addr]; ok {
		return acc.Balance
	}
	return 0
}

// Nonce returns the next expected transaction nonce for addr.
func (db *DB) Nonce(addr types.Address) uint64 {
	if acc, ok := db.accounts[addr]; ok {
		return acc.Nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (db *DB) SetNonce(addr types.Address, nonce uint64) {
	db.touch(addr).Nonce = nonce
}

// Credit adds value to addr's balance.
func (db *DB) Credit(addr types.Address, value types.Amount) error {
	acc := db.touch(addr)
	if acc.Balance+value < acc.Balance {
		return fmt.Errorf("%w: %s", ErrBalanceOverflow, addr)
	}
	acc.Balance += value
	return nil
}

// Debit removes value from addr's balance, failing without mutation if the
// balance is insufficient.
func (db *DB) Debit(addr types.Address, value types.Amount) error {
	if db.Balance(addr) < value {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance,
			addr, db.Balance(addr), value)
	}
	db.touch(addr).Balance -= value
	return nil
}

// Transfer moves value from one account to another atomically.
func (db *DB) Transfer(from, to types.Address, value types.Amount) error {
	if err := db.Debit(from, value); err != nil {
		return err
	}
	return db.Credit(to, value)
}

// Code returns a copy of the contract code at addr (nil for plain
// accounts). Copying keeps callers from mutating consensus state.
func (db *DB) Code(addr types.Address) []byte {
	if acc, ok := db.accounts[addr]; ok && acc.Code != nil {
		return append([]byte(nil), acc.Code...)
	}
	return nil
}

// SetCode installs contract code at addr.
func (db *DB) SetCode(addr types.Address, code []byte) {
	db.touch(addr).Code = append([]byte(nil), code...)
}

// GetStorage reads a contract storage slot.
func (db *DB) GetStorage(addr types.Address, key types.Hash) types.Hash {
	if acc, ok := db.accounts[addr]; ok && acc.Storage != nil {
		return acc.Storage[key]
	}
	return types.Hash{}
}

// SetStorage writes a contract storage slot. Writing the zero hash deletes
// the slot.
func (db *DB) SetStorage(addr types.Address, key, value types.Hash) {
	acc := db.touch(addr)
	if acc.Storage == nil {
		acc.Storage = make(map[types.Hash]types.Hash)
	}
	if value.IsZero() {
		delete(acc.Storage, key)
		return
	}
	acc.Storage[key] = value
}

// Exists reports whether addr has any state.
func (db *DB) Exists(addr types.Address) bool {
	acc, ok := db.accounts[addr]
	return ok && !acc.empty()
}

// Accounts returns all non-empty addresses in deterministic order.
func (db *DB) Accounts() []types.Address {
	out := make([]types.Address, 0, len(db.accounts))
	for addr, acc := range db.accounts {
		if !acc.empty() {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessAddr(out[i], out[j]) })
	return out
}

func lessAddr(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Root computes a deterministic commitment to the entire state: the
// Keccak-256 over the sorted (address, balance, nonce, code hash, sorted
// storage) sequence. A full Merkle-Patricia trie is unnecessary for
// SmartCrowd: blocks commit to the root, and every full node recomputes it
// after executing the block.
func (db *DB) Root() types.Hash {
	h := keccak.New256()
	var u64 [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			u64[i] = byte(v >> (56 - 8*i))
		}
		_, _ = h.Write(u64[:])
	}
	for _, addr := range db.Accounts() {
		acc := db.accounts[addr]
		_, _ = h.Write(addr[:])
		writeU64(uint64(acc.Balance))
		writeU64(acc.Nonce)
		codeHash := keccak.Sum256(acc.Code)
		_, _ = h.Write(codeHash[:])
		keys := make([]types.Hash, 0, len(acc.Storage))
		for k := range acc.Storage {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessHash(keys[i], keys[j]) })
		writeU64(uint64(len(keys)))
		for _, k := range keys {
			v := acc.Storage[k]
			_, _ = h.Write(k[:])
			_, _ = h.Write(v[:])
		}
	}
	var root types.Hash
	copy(root[:], h.Sum(nil))
	return root
}

func lessHash(a, b types.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
