// Package state implements the account state of the SmartCrowd chain:
// balances (in gwei), nonces, contract code and contract storage, with a
// journal that supports cheap snapshot/revert — required both by the SCVM
// (failed calls revert their effects) and by chain reorganizations.
//
// Two properties make the hot paths cheap at scale:
//
//   - Copies are copy-on-write. DB.Copy clones only the address→account
//     pointer map; account records (and their code and storage) stay
//     shared and immutable until one side writes, at which point that
//     side clones the one account it is touching. Fork execution and
//     block building no longer deep-copy the world state per block.
//
//   - The root is incremental. Each non-empty account's digest lives in a
//     persistent commitment trie (trie.go); mutations mark the account
//     dirty and Root() rehashes only dirty accounts plus their O(log n)
//     trie paths instead of re-hashing every account and storage slot.
package state

import (
	"errors"
	"fmt"
	"sort"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Account is the record for one address. Accounts reachable from more
// than one DB (after Copy) are treated as immutable; DB clones an account
// before its first mutation.
type Account struct {
	Balance types.Amount
	Nonce   uint64
	Code    []byte
	Storage map[types.Hash]types.Hash
	// storageShared marks Storage as referenced by another account record
	// (a clone ancestor); the map is copied before the first write.
	storageShared bool
}

// shallowClone copies the scalar fields and shares code and storage with
// the source. Code slices are never mutated in place (SetCode installs a
// fresh slice), so sharing them is safe unconditionally; the storage map
// is flagged for copy-on-write.
func (a *Account) shallowClone() *Account {
	return &Account{
		Balance:       a.Balance,
		Nonce:         a.Nonce,
		Code:          a.Code,
		Storage:       a.Storage,
		storageShared: a.Storage != nil,
	}
}

// empty reports whether the account holds no value, code or state and can
// be pruned from the root computation.
func (a *Account) empty() bool {
	return a.Balance == 0 && a.Nonce == 0 && len(a.Code) == 0 && len(a.Storage) == 0
}

// State errors.
var (
	ErrInsufficientBalance = errors.New("state: insufficient balance")
	ErrBalanceOverflow     = errors.New("state: balance overflow")
	ErrBadSnapshot         = errors.New("state: invalid snapshot id")
)

// Journal entry kinds. The journal records field-level undo actions, so a
// revert restores exactly the mutated fields instead of whole accounts.
const (
	jCreate  = iota // account created; undo deletes it
	jOwn            // shared account cloned for writing; undo restores the shared record
	jBalance        // undo restores prevAmount
	jNonce          // undo restores prevU64
	jCode           // undo restores prevCode
	jStorage        // undo restores key → prevVal (or deletes if !existed)
)

// journalEntry records how to undo one mutation.
type journalEntry struct {
	kind       uint8
	addr       types.Address
	prevAcc    *Account // jOwn
	prevAmount types.Amount
	prevU64    uint64
	prevCode   []byte
	key        types.Hash
	prevVal    types.Hash
	existed    bool
}

// DB is the in-memory account state. The zero value is not usable; call
// New. DB is not safe for concurrent use; each owner serializes access
// (the chain holds its write lock across Copy).
type DB struct {
	accounts map[types.Address]*Account
	// owned maps an address to the epoch in which this DB cloned (or
	// created) its account record. An account is writable in place only
	// when owned[addr] == epoch; Copy bumps epoch, disowning everything
	// at once without walking the map.
	owned map[types.Address]uint64
	epoch uint64
	// dirty holds addresses whose trie digest is stale.
	dirty map[types.Address]struct{}
	// trie is the persistent commitment trie over account digests,
	// current as of the last Root() minus the dirty set.
	trie      *trieNode
	journal   []journalEntry
	snapshots []int // journal lengths for open snapshots
}

// New creates an empty state.
func New() *DB {
	return &DB{
		accounts: make(map[types.Address]*Account),
		owned:    make(map[types.Address]uint64),
		epoch:    1,
		dirty:    make(map[types.Address]struct{}),
	}
}

// Copy returns a logically independent copy in O(accounts) pointer
// copies: account records, code, storage and the commitment trie are
// shared copy-on-write. Both sides may keep mutating; whichever side
// touches a shared account first clones just that account.
func (db *DB) Copy() *DB {
	// Disown every account: the source must also clone before its next
	// in-place write, since its records are now shared with the copy.
	db.epoch++
	cp := &DB{
		accounts: make(map[types.Address]*Account, len(db.accounts)),
		owned:    make(map[types.Address]uint64),
		epoch:    1,
		dirty:    make(map[types.Address]struct{}, len(db.dirty)),
		trie:     db.trie,
	}
	for addr, acc := range db.accounts {
		cp.accounts[addr] = acc
	}
	for addr := range db.dirty {
		cp.dirty[addr] = struct{}{}
	}
	return cp
}

// mutable returns addr's account ready for in-place mutation, creating or
// clone-on-touch copying it as needed, and marks it dirty for the next
// Root(). Every mutator goes through here before journaling field undos.
func (db *DB) mutable(addr types.Address) *Account {
	acc, ok := db.accounts[addr]
	switch {
	case !ok:
		acc = &Account{}
		db.accounts[addr] = acc
		db.owned[addr] = db.epoch
		db.journal = append(db.journal, journalEntry{kind: jCreate, addr: addr})
	case db.owned[addr] != db.epoch:
		shared := acc
		acc = shared.shallowClone()
		db.accounts[addr] = acc
		db.owned[addr] = db.epoch
		db.journal = append(db.journal, journalEntry{kind: jOwn, addr: addr, prevAcc: shared})
	}
	db.dirty[addr] = struct{}{}
	return acc
}

// undoTarget returns addr's account for a journal undo, re-cloning it if
// a Copy taken since the mutation left the record shared.
func (db *DB) undoTarget(addr types.Address) *Account {
	acc := db.accounts[addr]
	if db.owned[addr] != db.epoch {
		acc = acc.shallowClone()
		db.accounts[addr] = acc
		db.owned[addr] = db.epoch
	}
	return acc
}

// storageForWrite returns the account's storage map safe for writing,
// copying it first when it is still shared with a clone ancestor.
func storageForWrite(acc *Account) map[types.Hash]types.Hash {
	if acc.storageShared {
		m := make(map[types.Hash]types.Hash, len(acc.Storage))
		for k, v := range acc.Storage {
			m[k] = v
		}
		acc.Storage = m
		acc.storageShared = false
	}
	if acc.Storage == nil {
		acc.Storage = make(map[types.Hash]types.Hash)
	}
	return acc.Storage
}

// Snapshot opens a revert point and returns its id.
func (db *DB) Snapshot() int {
	db.snapshots = append(db.snapshots, len(db.journal))
	return len(db.snapshots) - 1
}

// RevertToSnapshot undoes every mutation made after the snapshot was taken.
// Snapshots opened after id are discarded.
func (db *DB) RevertToSnapshot(id int) error {
	if id < 0 || id >= len(db.snapshots) {
		return fmt.Errorf("%w: %d", ErrBadSnapshot, id)
	}
	target := db.snapshots[id]
	for len(db.journal) > target {
		e := db.journal[len(db.journal)-1]
		db.journal = db.journal[:len(db.journal)-1]
		switch e.kind {
		case jCreate:
			delete(db.accounts, e.addr)
			delete(db.owned, e.addr)
		case jOwn:
			db.accounts[e.addr] = e.prevAcc
			delete(db.owned, e.addr)
		case jBalance:
			db.undoTarget(e.addr).Balance = e.prevAmount
		case jNonce:
			db.undoTarget(e.addr).Nonce = e.prevU64
		case jCode:
			db.undoTarget(e.addr).Code = e.prevCode
		case jStorage:
			acc := db.undoTarget(e.addr)
			if e.existed {
				storageForWrite(acc)[e.key] = e.prevVal
			} else if acc.Storage != nil {
				delete(storageForWrite(acc), e.key)
			}
		}
		db.dirty[e.addr] = struct{}{}
	}
	db.snapshots = db.snapshots[:id]
	return nil
}

// DiscardSnapshots commits all outstanding snapshots (keeps the mutations)
// and clears the journal. Called at block boundaries.
func (db *DB) DiscardSnapshots() {
	db.journal = db.journal[:0]
	db.snapshots = db.snapshots[:0]
}

// Balance returns the balance of addr (zero for unknown accounts).
func (db *DB) Balance(addr types.Address) types.Amount {
	if acc, ok := db.accounts[addr]; ok {
		return acc.Balance
	}
	return 0
}

// Nonce returns the next expected transaction nonce for addr.
func (db *DB) Nonce(addr types.Address) uint64 {
	if acc, ok := db.accounts[addr]; ok {
		return acc.Nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (db *DB) SetNonce(addr types.Address, nonce uint64) {
	acc := db.mutable(addr)
	db.journal = append(db.journal, journalEntry{kind: jNonce, addr: addr, prevU64: acc.Nonce})
	acc.Nonce = nonce
}

// Credit adds value to addr's balance.
func (db *DB) Credit(addr types.Address, value types.Amount) error {
	acc := db.mutable(addr)
	if acc.Balance+value < acc.Balance {
		return fmt.Errorf("%w: %s", ErrBalanceOverflow, addr)
	}
	db.journal = append(db.journal, journalEntry{kind: jBalance, addr: addr, prevAmount: acc.Balance})
	acc.Balance += value
	return nil
}

// Debit removes value from addr's balance, failing without mutation if the
// balance is insufficient.
func (db *DB) Debit(addr types.Address, value types.Amount) error {
	if db.Balance(addr) < value {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance,
			addr, db.Balance(addr), value)
	}
	acc := db.mutable(addr)
	db.journal = append(db.journal, journalEntry{kind: jBalance, addr: addr, prevAmount: acc.Balance})
	acc.Balance -= value
	return nil
}

// Transfer moves value from one account to another atomically.
func (db *DB) Transfer(from, to types.Address, value types.Amount) error {
	if err := db.Debit(from, value); err != nil {
		return err
	}
	return db.Credit(to, value)
}

// Code returns a copy of the contract code at addr (nil for plain
// accounts). Copying keeps callers from mutating consensus state.
func (db *DB) Code(addr types.Address) []byte {
	if acc, ok := db.accounts[addr]; ok && acc.Code != nil {
		return append([]byte(nil), acc.Code...)
	}
	return nil
}

// SetCode installs contract code at addr.
func (db *DB) SetCode(addr types.Address, code []byte) {
	acc := db.mutable(addr)
	db.journal = append(db.journal, journalEntry{kind: jCode, addr: addr, prevCode: acc.Code})
	acc.Code = append([]byte(nil), code...)
}

// GetStorage reads a contract storage slot.
func (db *DB) GetStorage(addr types.Address, key types.Hash) types.Hash {
	if acc, ok := db.accounts[addr]; ok && acc.Storage != nil {
		return acc.Storage[key]
	}
	return types.Hash{}
}

// SetStorage writes a contract storage slot. Writing the zero hash deletes
// the slot.
func (db *DB) SetStorage(addr types.Address, key, value types.Hash) {
	acc := db.mutable(addr)
	if value.IsZero() && len(acc.Storage) == 0 {
		return // deleting from empty storage: nothing to undo
	}
	st := storageForWrite(acc)
	prev, existed := st[key]
	db.journal = append(db.journal, journalEntry{
		kind: jStorage, addr: addr, key: key, prevVal: prev, existed: existed,
	})
	if value.IsZero() {
		delete(st, key)
		return
	}
	st[key] = value
}

// Exists reports whether addr has any state.
func (db *DB) Exists(addr types.Address) bool {
	acc, ok := db.accounts[addr]
	return ok && !acc.empty()
}

// Accounts returns all non-empty addresses in deterministic order.
func (db *DB) Accounts() []types.Address {
	out := make([]types.Address, 0, len(db.accounts))
	for addr, acc := range db.accounts {
		if !acc.empty() {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessAddr(out[i], out[j]) })
	return out
}

func lessAddr(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// accountDigest commits to one account: address, balance, nonce, code
// hash and the sorted storage slots — the per-account serialization the
// commitment trie stores at its leaves.
func accountDigest(addr types.Address, acc *Account) types.Hash {
	h := keccak.Get256()
	defer keccak.Put(h)
	var u64 [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			u64[i] = byte(v >> (56 - 8*i))
		}
		_, _ = h.Write(u64[:])
	}
	_, _ = h.Write(addr[:])
	writeU64(uint64(acc.Balance))
	writeU64(acc.Nonce)
	codeHash := keccak.Sum256(acc.Code)
	_, _ = h.Write(codeHash[:])
	keys := make([]types.Hash, 0, len(acc.Storage))
	for k := range acc.Storage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessHash(keys[i], keys[j]) })
	writeU64(uint64(len(keys)))
	for _, k := range keys {
		v := acc.Storage[k]
		_, _ = h.Write(k[:])
		_, _ = h.Write(v[:])
	}
	var d types.Hash
	copy(d[:], h.Sum(nil))
	return d
}

// Root computes the deterministic commitment to the entire state: the
// root of the crit-bit trie over per-account digests (empty accounts are
// excluded). Only accounts touched since the previous Root() are
// re-hashed, so the cost is O(dirty · log accounts), not O(world state).
func (db *DB) Root() types.Hash {
	if n := len(db.dirty); n > 0 {
		// Clean roots are free and frequent; only rehash work is observed.
		mRootDirtyAccounts.Observe(uint64(n))
		t0 := now()
		defer func() { mRootNs.ObserveDuration(since(t0)) }()
	}
	for addr := range db.dirty {
		if acc, ok := db.accounts[addr]; ok && !acc.empty() {
			db.trie = trieUpsert(db.trie, addr, accountDigest(addr, acc))
		} else {
			db.trie = trieDelete(db.trie, addr)
		}
	}
	clear(db.dirty)
	if db.trie == nil {
		return emptyStateRoot
	}
	return db.trie.hash
}

func lessHash(a, b types.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
