package state

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func viewBase(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.Credit(types.Address{1}, 1000); err != nil {
		t.Fatal(err)
	}
	db.SetNonce(types.Address{1}, 7)
	db.SetCode(types.Address{2}, []byte{0xAA, 0xBB})
	db.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{0x11})
	db.DiscardSnapshots()
	return db
}

func TestViewReadFallthrough(t *testing.T) {
	db := viewBase(t)
	v := NewRecordingView(db)

	if got := v.Balance(types.Address{1}); got != 1000 {
		t.Fatalf("balance: got %d", got)
	}
	if got := v.Nonce(types.Address{1}); got != 7 {
		t.Fatalf("nonce: got %d", got)
	}
	if got := v.Code(types.Address{2}); len(got) != 2 || got[0] != 0xAA {
		t.Fatalf("code: got %x", got)
	}
	if got := v.GetStorage(types.Address{2}, types.Hash{0x01}); got != (types.Hash{0x11}) {
		t.Fatalf("storage: got %x", got)
	}
	if got := v.Balance(types.Address{9}); got != 0 {
		t.Fatalf("unknown account balance: got %d", got)
	}

	if reads := v.Reads(); len(reads) != 3 {
		t.Fatalf("reads: got %v", reads)
	}
	if writes := v.Writes(); len(writes) != 0 {
		t.Fatalf("writes should be empty, got %v", writes)
	}
}

func TestViewWriteIsolation(t *testing.T) {
	db := viewBase(t)
	preRoot := db.Root()
	v := NewRecordingView(db)

	if err := v.Transfer(types.Address{1}, types.Address{3}, 400); err != nil {
		t.Fatal(err)
	}
	v.SetNonce(types.Address{1}, 8)
	v.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{0x22})
	v.SetStorage(types.Address{2}, types.Hash{0x02}, types.Hash{0x33})
	v.SetCode(types.Address{4}, []byte{0xCC})

	// The view sees every mutation...
	if got := v.Balance(types.Address{1}); got != 600 {
		t.Fatalf("view balance: got %d", got)
	}
	if got := v.Balance(types.Address{3}); got != 400 {
		t.Fatalf("view recipient balance: got %d", got)
	}
	if got := v.GetStorage(types.Address{2}, types.Hash{0x01}); got != (types.Hash{0x22}) {
		t.Fatalf("view storage: got %x", got)
	}

	// ...while the base is untouched.
	if got := db.Balance(types.Address{1}); got != 1000 {
		t.Fatalf("base balance mutated: got %d", got)
	}
	if got := db.Balance(types.Address{3}); got != 0 {
		t.Fatalf("base recipient mutated: got %d", got)
	}
	if got := db.GetStorage(types.Address{2}, types.Hash{0x01}); got != (types.Hash{0x11}) {
		t.Fatalf("base storage mutated: got %x", got)
	}
	if db.Code(types.Address{4}) != nil {
		t.Fatal("base code mutated")
	}
	if got := db.Root(); got != preRoot {
		t.Fatal("base root changed under an uncommitted view")
	}

	if writes := v.Writes(); len(writes) != 4 {
		t.Fatalf("writes: got %v", writes)
	}
}

func TestViewSnapshotRevert(t *testing.T) {
	db := viewBase(t)
	v := NewRecordingView(db)

	v.SetNonce(types.Address{1}, 8)
	snap := v.Snapshot()
	if err := v.Debit(types.Address{1}, 300); err != nil {
		t.Fatal(err)
	}
	v.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{0x99})
	v.SetStorage(types.Address{2}, types.Hash{0x05}, types.Hash{0x55})
	if err := v.Credit(types.Address{6}, 42); err != nil {
		t.Fatal(err)
	}

	if err := v.RevertToSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := v.Balance(types.Address{1}); got != 1000 {
		t.Fatalf("reverted balance: got %d", got)
	}
	if got := v.Nonce(types.Address{1}); got != 8 {
		t.Fatalf("pre-snapshot nonce lost: got %d", got)
	}
	if got := v.GetStorage(types.Address{2}, types.Hash{0x01}); got != (types.Hash{0x11}) {
		t.Fatalf("reverted storage: got %x", got)
	}
	if got := v.GetStorage(types.Address{2}, types.Hash{0x05}); !got.IsZero() {
		t.Fatalf("reverted new slot: got %x", got)
	}
	if got := v.Balance(types.Address{6}); got != 0 {
		t.Fatalf("reverted created account: got %d", got)
	}

	if err := v.RevertToSnapshot(99); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad snapshot id: got %v", err)
	}

	// Reverted writes stay recorded: conflict detection must stay
	// conservative about accounts a transaction touched and rolled back.
	found := false
	for _, a := range v.Writes() {
		if a == (types.Address{6}) {
			found = true
		}
	}
	if !found {
		t.Fatal("reverted write dropped from the recorded write set")
	}
}

// TestViewCommitEquivalence pins the core parallel-executor invariant at
// the state layer: the same mutation sequence applied through a view plus
// CommitTo must produce the same root as applying it directly.
func TestViewCommitEquivalence(t *testing.T) {
	mutate := func(st interface {
		Transfer(from, to types.Address, value types.Amount) error
		SetNonce(addr types.Address, nonce uint64)
		SetCode(addr types.Address, code []byte)
		SetStorage(addr types.Address, key, value types.Hash)
	}) {
		_ = st.Transfer(types.Address{1}, types.Address{5}, 250)
		st.SetNonce(types.Address{1}, 8)
		st.SetCode(types.Address{5}, []byte{0x01, 0x02})
		st.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{0x77}) // overwrite
		st.SetStorage(types.Address{2}, types.Hash{0x0F}, types.Hash{0x88}) // new slot
		st.SetStorage(types.Address{5}, types.Hash{0x01}, types.Hash{0x99}) // new account storage
	}

	direct := viewBase(t)
	mutate(direct)

	base := viewBase(t)
	v := NewRecordingView(base)
	mutate(v)
	v.CommitTo(base)

	if got, want := base.Root(), direct.Root(); got != want {
		t.Fatalf("committed root %x != direct root %x", got, want)
	}
}

// TestViewCommitStorageDelete covers the zero-hash delete path across the
// overlay boundary.
func TestViewCommitStorageDelete(t *testing.T) {
	direct := viewBase(t)
	direct.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{})

	base := viewBase(t)
	v := NewRecordingView(base)
	v.SetStorage(types.Address{2}, types.Hash{0x01}, types.Hash{})
	if got := v.GetStorage(types.Address{2}, types.Hash{0x01}); !got.IsZero() {
		t.Fatalf("view still sees deleted slot: %x", got)
	}
	v.CommitTo(base)

	if got, want := base.Root(), direct.Root(); got != want {
		t.Fatalf("delete-commit root %x != direct root %x", got, want)
	}
	// Deleting from an account with no storage is a recorded write but a
	// state no-op, matching DB.SetStorage.
	v2 := NewRecordingView(base)
	v2.SetStorage(types.Address{9}, types.Hash{0x01}, types.Hash{})
	v2.CommitTo(base)
	if got := base.GetStorage(types.Address{9}, types.Hash{0x01}); !got.IsZero() {
		t.Fatalf("phantom slot appeared: %x", got)
	}
}

func TestViewTouches(t *testing.T) {
	db := viewBase(t)
	v := NewRecordingView(db)
	_ = v.Balance(types.Address{1})   // read {1}
	_ = v.Credit(types.Address{3}, 5) // write {3}
	other := map[types.Address]struct{}{{7}: {}}

	if v.Touches(nil) || v.Touches(map[types.Address]struct{}{}) {
		t.Fatal("empty set should not conflict")
	}
	if v.Touches(other) {
		t.Fatal("disjoint set should not conflict")
	}
	if !v.Touches(map[types.Address]struct{}{{1}: {}}) {
		t.Fatal("read-after-write conflict missed")
	}
	if !v.Touches(map[types.Address]struct{}{{3}: {}}) {
		t.Fatal("write-after-write conflict missed")
	}

	set := make(map[types.Address]struct{})
	v.AddWritesTo(set)
	if _, ok := set[types.Address{3}]; !ok || len(set) != 1 {
		t.Fatalf("AddWritesTo: got %v", set)
	}
}

// TestViewConcurrentSpeculation exercises the documented concurrency
// contract under -race: many views over one unmutated base, executing
// overlapping reads and disjoint writes in parallel.
func TestViewConcurrentSpeculation(t *testing.T) {
	db := viewBase(t)
	const n = 16
	done := make(chan *RecordingView, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			v := NewRecordingView(db)
			_ = v.Balance(types.Address{1}) // shared hot read
			_ = v.GetStorage(types.Address{2}, types.Hash{0x01})
			_ = v.Credit(types.Address{10, byte(i)}, types.Amount(i+1))
			v.SetStorage(types.Address{10, byte(i)}, types.Hash{0x01}, types.Hash{byte(i + 1)})
			done <- v
		}(i)
	}
	views := make([]*RecordingView, 0, n)
	for i := 0; i < n; i++ {
		views = append(views, <-done)
	}
	for _, v := range views {
		v.CommitTo(db)
	}
	for i := 0; i < n; i++ {
		if got := db.Balance(types.Address{10, byte(i)}); got == 0 {
			t.Fatalf("worker %d write lost", i)
		}
	}
}
