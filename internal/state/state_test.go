package state

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func addr(label string) types.Address {
	return wallet.NewDeterministic(label).Address()
}

func TestCreditDebitTransfer(t *testing.T) {
	db := New()
	a, b := addr("a"), addr("b")
	if err := db.Credit(a, 100); err != nil {
		t.Fatal(err)
	}
	if err := db.Transfer(a, b, 40); err != nil {
		t.Fatal(err)
	}
	if db.Balance(a) != 60 || db.Balance(b) != 40 {
		t.Errorf("balances = %d, %d; want 60, 40", db.Balance(a), db.Balance(b))
	}
	if err := db.Debit(b, 40); err != nil {
		t.Fatal(err)
	}
	if db.Balance(b) != 0 {
		t.Errorf("b balance = %d, want 0", db.Balance(b))
	}
}

func TestDebitInsufficient(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, 10)
	if err := db.Debit(a, 11); !errors.Is(err, ErrInsufficientBalance) {
		t.Errorf("err = %v, want ErrInsufficientBalance", err)
	}
	if db.Balance(a) != 10 {
		t.Error("failed debit mutated balance")
	}
}

func TestTransferInsufficientLeavesStateIntact(t *testing.T) {
	db := New()
	a, b := addr("a"), addr("b")
	_ = db.Credit(a, 5)
	if err := db.Transfer(a, b, 6); err == nil {
		t.Fatal("transfer exceeding balance succeeded")
	}
	if db.Balance(a) != 5 || db.Balance(b) != 0 {
		t.Error("failed transfer mutated balances")
	}
}

func TestCreditOverflow(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, math.MaxUint64)
	if err := db.Credit(a, 1); !errors.Is(err, ErrBalanceOverflow) {
		t.Errorf("err = %v, want ErrBalanceOverflow", err)
	}
}

func TestNonceLifecycle(t *testing.T) {
	db := New()
	a := addr("a")
	if db.Nonce(a) != 0 {
		t.Error("fresh account nonce != 0")
	}
	db.SetNonce(a, 5)
	if db.Nonce(a) != 5 {
		t.Error("SetNonce lost")
	}
}

func TestStorageLifecycle(t *testing.T) {
	db := New()
	c := addr("contract")
	k := types.HashBytes([]byte("slot"))
	v := types.HashBytes([]byte("value"))
	if got := db.GetStorage(c, k); !got.IsZero() {
		t.Error("fresh slot not zero")
	}
	db.SetStorage(c, k, v)
	if db.GetStorage(c, k) != v {
		t.Error("storage write lost")
	}
	db.SetStorage(c, k, types.Hash{})
	if !db.GetStorage(c, k).IsZero() {
		t.Error("zero write did not clear slot")
	}
	if db.Exists(c) {
		t.Error("account with deleted slot should be empty")
	}
}

func TestCodeLifecycle(t *testing.T) {
	db := New()
	c := addr("contract")
	db.SetCode(c, []byte{1, 2, 3})
	code := db.Code(c)
	if len(code) != 3 {
		t.Fatal("code lost")
	}
	code[0] = 99 // callers must not be able to mutate stored code
	if db.Code(c)[0] == 99 {
		t.Error("SetCode did not defensively copy")
	}
	if !db.Exists(c) {
		t.Error("account with code should exist")
	}
}

func TestSnapshotRevert(t *testing.T) {
	db := New()
	a, b := addr("a"), addr("b")
	_ = db.Credit(a, 100)

	snap := db.Snapshot()
	_ = db.Transfer(a, b, 30)
	db.SetNonce(a, 7)
	db.SetStorage(b, types.HashBytes([]byte("k")), types.HashBytes([]byte("v")))

	if err := db.RevertToSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if db.Balance(a) != 100 || db.Balance(b) != 0 {
		t.Error("revert did not restore balances")
	}
	if db.Nonce(a) != 0 {
		t.Error("revert did not restore nonce")
	}
	if !db.GetStorage(b, types.HashBytes([]byte("k"))).IsZero() {
		t.Error("revert did not restore storage")
	}
	if db.Exists(b) {
		t.Error("revert did not delete the created account")
	}
}

func TestNestedSnapshots(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, 10)
	s1 := db.Snapshot()
	_ = db.Credit(a, 10) // 20
	s2 := db.Snapshot()
	_ = db.Credit(a, 10) // 30
	if err := db.RevertToSnapshot(s2); err != nil {
		t.Fatal(err)
	}
	if db.Balance(a) != 20 {
		t.Errorf("after inner revert balance = %d, want 20", db.Balance(a))
	}
	if err := db.RevertToSnapshot(s1); err != nil {
		t.Fatal(err)
	}
	if db.Balance(a) != 10 {
		t.Errorf("after outer revert balance = %d, want 10", db.Balance(a))
	}
}

func TestRevertInvalidSnapshot(t *testing.T) {
	db := New()
	if err := db.RevertToSnapshot(0); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("err = %v, want ErrBadSnapshot", err)
	}
	s := db.Snapshot()
	if err := db.RevertToSnapshot(s); err != nil {
		t.Fatal(err)
	}
	// s is now consumed.
	if err := db.RevertToSnapshot(s); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("double revert: err = %v, want ErrBadSnapshot", err)
	}
}

func TestDiscardSnapshotsCommits(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, 5)
	_ = db.Snapshot()
	_ = db.Credit(a, 5)
	db.DiscardSnapshots()
	if db.Balance(a) != 10 {
		t.Error("DiscardSnapshots lost committed state")
	}
	if err := db.RevertToSnapshot(0); !errors.Is(err, ErrBadSnapshot) {
		t.Error("snapshot survived DiscardSnapshots")
	}
}

func TestCopyIsolation(t *testing.T) {
	db := New()
	a := addr("a")
	_ = db.Credit(a, 100)
	db.SetStorage(a, types.HashBytes([]byte("k")), types.HashBytes([]byte("v")))

	cp := db.Copy()
	_ = cp.Debit(a, 50)
	cp.SetStorage(a, types.HashBytes([]byte("k")), types.HashBytes([]byte("other")))

	if db.Balance(a) != 100 {
		t.Error("copy mutation leaked into original balance")
	}
	if db.GetStorage(a, types.HashBytes([]byte("k"))) != types.HashBytes([]byte("v")) {
		t.Error("copy mutation leaked into original storage")
	}
}

func TestRootDeterministicAndSensitive(t *testing.T) {
	build := func(bal types.Amount) *DB {
		db := New()
		_ = db.Credit(addr("a"), bal)
		_ = db.Credit(addr("b"), 7)
		db.SetStorage(addr("c"), types.HashBytes([]byte("k")), types.HashBytes([]byte("v")))
		return db
	}
	r1, r2 := build(5).Root(), build(5).Root()
	if r1 != r2 {
		t.Error("identical states have different roots")
	}
	if build(6).Root() == r1 {
		t.Error("balance change did not change root")
	}
}

func TestRootIgnoresEmptyAccounts(t *testing.T) {
	db := New()
	_ = db.Credit(addr("a"), 5)
	base := db.Root()
	// Touch an account without giving it state.
	_ = db.Credit(addr("ghost"), 0)
	if db.Root() != base {
		t.Error("empty account changed the root")
	}
}

func TestRootMatchesAfterRevert(t *testing.T) {
	db := New()
	_ = db.Credit(addr("a"), 50)
	before := db.Root()
	s := db.Snapshot()
	_ = db.Transfer(addr("a"), addr("b"), 25)
	db.SetCode(addr("c"), []byte{0xFE})
	if err := db.RevertToSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if db.Root() != before {
		t.Error("root differs after revert")
	}
}

// Property: a random sequence of credits and debits conserves total supply.
func TestSupplyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		db := New()
		accounts := []types.Address{addr("a"), addr("b"), addr("c"), addr("d")}
		for _, acc := range accounts {
			_ = db.Credit(acc, 1000)
		}
		for _, op := range ops {
			from := accounts[int(op)%len(accounts)]
			to := accounts[int(op>>4)%len(accounts)]
			amount := types.Amount(op % 97)
			_ = db.Transfer(from, to, amount) // may fail; fine
		}
		var total types.Amount
		for _, acc := range accounts {
			total += db.Balance(acc)
		}
		return total == 4000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransfer(b *testing.B) {
	db := New()
	a1, a2 := addr("a"), addr("b")
	_ = db.Credit(a1, types.Amount(b.N)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Transfer(a1, a2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoot100Accounts(b *testing.B) {
	db := New()
	for i := 0; i < 100; i++ {
		_ = db.Credit(addr(string(rune(i))), types.Amount(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Root()
	}
}
