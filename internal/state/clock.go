package state

import "time"

// Wall-clock access for the state package is confined to this file so
// scvet's detsource pass can prove state commitment math never reads the
// clock (clock.go is the audited shim, per the pow/clock.go convention).
// Root() timing telemetry is the only consumer; the trie and the digests
// it commits to are pure functions of the account data.

// now returns the current instant for latency measurement.
func now() time.Time { return time.Now() }

// since mirrors time.Since for the telemetry call sites.
func since(t0 time.Time) time.Duration { return time.Since(t0) }
