package state

import (
	"math/bits"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// The state commitment is a crit-bit (compressed binary radix) trie over
// account addresses, with one leaf per non-empty account carrying that
// account's digest. Nodes are immutable: every update path-copies the
// O(depth) nodes from the changed leaf to the root and rehashes only
// those, so recomputing the root after touching k of n accounts costs
// O(k log n) hashes instead of a full rehash. Immutability also makes
// sharing safe — DB.Copy hands the same root pointer to the copy, and the
// two tries diverge structurally from there.
//
// The trie shape is a pure function of the key set (crit-bit tries are
// insertion-order independent), which is what lets a from-scratch
// reference build (see the property tests) reproduce the incrementally
// maintained root bit-for-bit.

// Domain-separation tags for node hashing.
const (
	trieTagLeaf   = 0x00
	trieTagBranch = 0x01
	trieTagEmpty  = 0x02
)

// emptyStateRoot commits to the state with no non-empty accounts.
var emptyStateRoot = types.HashBytes([]byte{trieTagEmpty})

// trieNode is one immutable node. Leaves have bit == -1 and carry
// addr/digest; branches carry the index of the first bit on which their
// two subtrees disagree (left = 0, right = 1).
type trieNode struct {
	bit         int16
	left, right *trieNode
	addr        types.Address
	digest      types.Hash
	hash        types.Hash
}

// addrBit returns bit i of a, counting from the most significant bit of
// a[0] — the same order in which addresses compare lexicographically.
func addrBit(a types.Address, i int) int {
	return int(a[i>>3]>>(7-uint(i&7))) & 1
}

// firstDiffBit returns the index of the first bit on which a and b
// differ; a and b must not be equal.
func firstDiffBit(a, b types.Address) int {
	for i := range a {
		if x := a[i] ^ b[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	panic("state: firstDiffBit on equal addresses")
}

func newLeaf(addr types.Address, digest types.Hash) *trieNode {
	n := &trieNode{bit: -1, addr: addr, digest: digest}
	n.hash = types.Hash(keccak.Sum256Concat([]byte{trieTagLeaf}, addr[:], digest[:]))
	return n
}

func newBranch(bit int16, left, right *trieNode) *trieNode {
	n := &trieNode{bit: bit, left: left, right: right}
	n.hash = types.Hash(keccak.Sum256Concat(
		[]byte{trieTagBranch, byte(bit >> 8), byte(bit)}, left.hash[:], right.hash[:]))
	return n
}

// trieUpsert returns the trie with addr bound to digest. The original is
// untouched; unchanged subtrees are shared. An update that does not
// change the leaf digest returns the original root pointer.
func trieUpsert(n *trieNode, addr types.Address, digest types.Hash) *trieNode {
	if n == nil {
		return newLeaf(addr, digest)
	}
	// Walk to the candidate leaf along addr's own bit path; crit-bit
	// structure guarantees it is the only leaf addr can collide with.
	cand := n
	for cand.bit >= 0 {
		if addrBit(addr, int(cand.bit)) == 0 {
			cand = cand.left
		} else {
			cand = cand.right
		}
	}
	if cand.addr == addr {
		if cand.digest == digest {
			return n
		}
		return trieReplace(n, addr, digest)
	}
	return trieSplit(n, addr, digest, int16(firstDiffBit(addr, cand.addr)))
}

// trieReplace rewrites the existing leaf for addr, path-copying down.
func trieReplace(n *trieNode, addr types.Address, digest types.Hash) *trieNode {
	if n.bit < 0 {
		return newLeaf(addr, digest)
	}
	if addrBit(addr, int(n.bit)) == 0 {
		return newBranch(n.bit, trieReplace(n.left, addr, digest), n.right)
	}
	return newBranch(n.bit, n.left, trieReplace(n.right, addr, digest))
}

// trieSplit inserts a new leaf whose first divergence from the existing
// keys on its path is at bit d: the new branch lands above the first node
// that branches at or past d.
func trieSplit(n *trieNode, addr types.Address, digest types.Hash, d int16) *trieNode {
	if n.bit < 0 || n.bit > d {
		leaf := newLeaf(addr, digest)
		if addrBit(addr, int(d)) == 0 {
			return newBranch(d, leaf, n)
		}
		return newBranch(d, n, leaf)
	}
	if addrBit(addr, int(n.bit)) == 0 {
		return newBranch(n.bit, trieSplit(n.left, addr, digest, d), n.right)
	}
	return newBranch(n.bit, n.left, trieSplit(n.right, addr, digest, d))
}

// trieDelete returns the trie without addr; deleting an absent key
// returns the original root pointer.
func trieDelete(n *trieNode, addr types.Address) *trieNode {
	if n == nil {
		return nil
	}
	if n.bit < 0 {
		if n.addr == addr {
			return nil
		}
		return n
	}
	if addrBit(addr, int(n.bit)) == 0 {
		child := trieDelete(n.left, addr)
		switch {
		case child == n.left:
			return n
		case child == nil:
			return n.right // branch collapses onto its sibling
		}
		return newBranch(n.bit, child, n.right)
	}
	child := trieDelete(n.right, addr)
	switch {
	case child == n.right:
		return n
	case child == nil:
		return n.left
	}
	return newBranch(n.bit, n.left, child)
}
