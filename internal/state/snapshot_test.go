package state

import (
	"bytes"
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// populated builds a state with balances, nonces, code and storage across
// enough accounts to exercise sorting and the trie.
func populatedSnap(t *testing.T) *DB {
	t.Helper()
	db := New()
	for i := 0; i < 64; i++ {
		var addr types.Address
		addr[0] = byte(i * 7)
		addr[19] = byte(i)
		if err := db.Credit(addr, types.Amount(1000+i)); err != nil {
			t.Fatalf("credit: %v", err)
		}
		db.SetNonce(addr, uint64(i%5))
		if i%3 == 0 {
			db.SetCode(addr, []byte{0x60, byte(i), 0x60, 0x00})
		}
		for s := 0; s < i%4; s++ {
			var k, v types.Hash
			k[0], k[31] = byte(s), byte(i)
			v[0] = byte(s + 1)
			db.SetStorage(addr, k, v)
		}
	}
	db.DiscardSnapshots()
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := populatedSnap(t)
	wantRoot := db.Root()

	blob := db.Serialize()
	got, err := Restore(blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if root := got.Root(); root != wantRoot {
		t.Fatalf("restored root %s, want %s", root, wantRoot)
	}

	// Logical equality beyond the root: every account field survives.
	for _, addr := range db.Accounts() {
		if got.Balance(addr) != db.Balance(addr) {
			t.Errorf("balance mismatch at %s", addr)
		}
		if got.Nonce(addr) != db.Nonce(addr) {
			t.Errorf("nonce mismatch at %s", addr)
		}
		if !bytes.Equal(got.Code(addr), db.Code(addr)) {
			t.Errorf("code mismatch at %s", addr)
		}
	}

	// Determinism: same logical state, byte-identical snapshot — even via
	// an independent copy whose maps iterate in a different order.
	cp := db.Copy()
	if !bytes.Equal(cp.Serialize(), blob) {
		t.Fatal("serialization is not deterministic across copies")
	}
}

func TestSnapshotRestoredStateIsUsable(t *testing.T) {
	db := populatedSnap(t)
	blob := db.Serialize()
	got, err := Restore(blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got.Root()
	addrs := got.Accounts()
	a, b := addrs[0], addrs[1]
	if err := got.Transfer(a, b, 1); err != nil {
		t.Fatalf("transfer on restored state: %v", err)
	}
	if got.Root() == db.Root() {
		t.Fatal("mutation did not change restored root")
	}
}

func TestSnapshotEmptyState(t *testing.T) {
	db := New()
	got, err := Restore(db.Serialize())
	if err != nil {
		t.Fatalf("Restore empty: %v", err)
	}
	if got.Root() != db.Root() {
		t.Fatal("empty-state root mismatch")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	db := populatedSnap(t)
	blob := db.Serialize()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), blob[4:]...),
		"bad version":  append(append([]byte{}, blob[:4]...), append([]byte{9}, blob[5:]...)...),
		"truncated":    blob[:len(blob)/2],
		"trailing":     append(append([]byte{}, blob...), 0xff),
		"count beyond": func() []byte { b := append([]byte{}, blob...); b[5] = 0xff; return b }(),
	}
	for name, b := range cases {
		if _, err := Restore(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	// A flipped content byte must change the recomputed root (the chain
	// rejects the snapshot when it disagrees with the header root), or be
	// rejected outright by the codec's ordering checks.
	flip := append([]byte{}, blob...)
	flip[20] ^= 0x01
	if got, err := Restore(flip); err == nil && got.Root() == db.Root() {
		t.Fatal("tampered snapshot produced the original root")
	}
}

func TestSnapshotRejectsUnsortedAccounts(t *testing.T) {
	db := New()
	var a, b types.Address
	a[0], b[0] = 2, 1 // serialize sorts; swap the records manually below
	if err := db.Credit(a, 5); err != nil {
		t.Fatal(err)
	}
	if err := db.Credit(b, 5); err != nil {
		t.Fatal(err)
	}
	blob := db.Serialize()
	// Each record is fixed-size here (no code, no storage): 20+8+8+4+4.
	rec := 44
	hdr := 13
	swapped := append([]byte{}, blob[:hdr]...)
	swapped = append(swapped, blob[hdr+rec:hdr+2*rec]...)
	swapped = append(swapped, blob[hdr:hdr+rec]...)
	if _, err := Restore(swapped); !errors.Is(err, ErrSnapshotOrder) {
		t.Fatalf("unsorted accounts: got %v, want ErrSnapshotOrder", err)
	}
}
