// State snapshots: a deterministic, self-delimiting serialization of a
// DB's non-empty accounts, used by the durable chain store (periodic
// on-disk snapshots) and by snap-sync (streaming a recent state to a
// joining peer). The format commits to nothing the commitment trie does
// not: restoring a snapshot and calling Root() rebuilds the crit-bit trie
// from scratch, so a snapshot is verified by comparing that recomputed
// root against the root recorded in the block header it claims to
// represent — a tampered or truncated blob cannot produce a matching
// root.
//
// Layout (all integers big-endian):
//
//	magic   [4]byte  "SCS1"
//	version uint8    format version (1)
//	count   uint64   number of accounts
//	count × account records, in ascending address order:
//	  addr    [20]byte
//	  balance uint64
//	  nonce   uint64
//	  codeLen uint32, code [codeLen]byte
//	  slots   uint32, slots × (key [32]byte, value [32]byte) ascending
package state

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// snapshotMagic identifies a serialized state snapshot.
var snapshotMagic = [4]byte{'S', 'C', 'S', '1'}

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// Snapshot codec errors.
var (
	ErrSnapshotMagic     = errors.New("state: bad snapshot magic")
	ErrSnapshotVersion   = errors.New("state: unsupported snapshot version")
	ErrSnapshotTruncated = errors.New("state: truncated snapshot")
	ErrSnapshotOrder     = errors.New("state: snapshot records out of order")
	ErrSnapshotTrailing  = errors.New("state: trailing bytes after snapshot")
)

// Serialize encodes the DB's non-empty accounts into the canonical
// snapshot format. Two DBs with the same logical state serialize to
// identical bytes (accounts and storage slots are emitted in sorted
// order), so snapshot equality is state equality. The DB is only read;
// callers that share the DB with writers must serialize access as usual.
func (db *DB) Serialize() []byte {
	addrs := db.Accounts()
	size := 4 + 1 + 8
	for _, addr := range addrs {
		acc := db.accounts[addr]
		size += wallet.AddressSize + 8 + 8 + 4 + len(acc.Code) + 4 + len(acc.Storage)*(2*types.HashSize)
	}
	out := make([]byte, 0, size)
	out = append(out, snapshotMagic[:]...)
	out = append(out, SnapshotVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(len(addrs)))
	for _, addr := range addrs {
		acc := db.accounts[addr]
		out = append(out, addr[:]...)
		out = binary.BigEndian.AppendUint64(out, uint64(acc.Balance))
		out = binary.BigEndian.AppendUint64(out, acc.Nonce)
		out = binary.BigEndian.AppendUint32(out, uint32(len(acc.Code)))
		out = append(out, acc.Code...)
		keys := make([]types.Hash, 0, len(acc.Storage))
		for k := range acc.Storage {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessHash(keys[i], keys[j]) })
		out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
		for _, k := range keys {
			v := acc.Storage[k]
			out = append(out, k[:]...)
			out = append(out, v[:]...)
		}
	}
	return out
}

// Restore decodes a snapshot into a fresh DB. Every length is validated
// against the remaining input before it is consumed, so a hostile blob
// cannot force a large allocation or an out-of-bounds read; record order
// is enforced so the canonical encoding is the only accepted one.
// Restore does NOT verify the state against any root — callers compare
// the restored DB's Root() with the root they expect (a block header's
// StateRoot) before trusting it.
func Restore(blob []byte) (*DB, error) {
	r := snapReader{buf: blob}
	magicBytes, err := r.take(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(magicBytes) != snapshotMagic {
		return nil, ErrSnapshotMagic
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != SnapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrSnapshotVersion, ver)
	}
	count, err := r.u64()
	if err != nil {
		return nil, err
	}
	// Each account record is at least addr+balance+nonce+codeLen+slots
	// bytes; a declared count beyond that is lying about the input.
	minRecord := uint64(wallet.AddressSize + 8 + 8 + 4 + 4)
	if count > uint64(len(r.buf)-r.off)/minRecord {
		return nil, fmt.Errorf("%w: %d accounts declared in %d bytes", ErrSnapshotTruncated, count, len(blob))
	}
	db := New()
	var prevAddr types.Address
	for i := uint64(0); i < count; i++ {
		addrBytes, err := r.take(wallet.AddressSize)
		if err != nil {
			return nil, err
		}
		var addr types.Address
		copy(addr[:], addrBytes)
		if i > 0 && !lessAddr(prevAddr, addr) {
			return nil, fmt.Errorf("%w: account %d", ErrSnapshotOrder, i)
		}
		prevAddr = addr
		balance, err := r.u64()
		if err != nil {
			return nil, err
		}
		nonce, err := r.u64()
		if err != nil {
			return nil, err
		}
		codeLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		codeBytes, err := r.take(int(codeLen))
		if err != nil {
			return nil, err
		}
		slots, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(slots) > uint64(len(r.buf)-r.off)/(2*types.HashSize) {
			return nil, fmt.Errorf("%w: %d slots declared for account %d", ErrSnapshotTruncated, slots, i)
		}
		acc := &Account{Balance: types.Amount(balance), Nonce: nonce}
		if codeLen > 0 {
			acc.Code = append([]byte(nil), codeBytes...)
		}
		if slots > 0 {
			acc.Storage = make(map[types.Hash]types.Hash, slots)
			var prevKey types.Hash
			for s := uint32(0); s < slots; s++ {
				kv, err := r.take(2 * types.HashSize)
				if err != nil {
					return nil, err
				}
				var k, v types.Hash
				copy(k[:], kv[:types.HashSize])
				copy(v[:], kv[types.HashSize:])
				if s > 0 && !lessHash(prevKey, k) {
					return nil, fmt.Errorf("%w: storage slot %d of account %d", ErrSnapshotOrder, s, i)
				}
				if v.IsZero() {
					return nil, fmt.Errorf("%w: zero-valued storage slot in account %d", ErrSnapshotOrder, i)
				}
				prevKey = k
				acc.Storage[k] = v
			}
		}
		if acc.empty() {
			return nil, fmt.Errorf("%w: empty account record %d", ErrSnapshotOrder, i)
		}
		db.accounts[addr] = acc
		db.owned[addr] = db.epoch
		db.dirty[addr] = struct{}{}
	}
	if r.off != len(blob) {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotTrailing, len(blob)-r.off)
	}
	return db, nil
}

// snapReader is a bounds-checked cursor over a snapshot blob.
type snapReader struct {
	buf []byte
	off int
}

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrSnapshotTruncated, n, r.off, len(r.buf))
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *snapReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *snapReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}
