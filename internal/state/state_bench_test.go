package state

import (
	"fmt"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// benchAddr derives a distinct, well-distributed address per index.
func benchAddr(i int) types.Address {
	h := types.HashBytes([]byte{byte(i >> 16), byte(i >> 8), byte(i)})
	var a types.Address
	copy(a[:], h[:20])
	return a
}

// populated returns a rooted state holding n funded accounts.
func populated(b *testing.B, n int) *DB {
	b.Helper()
	db := New()
	for i := 0; i < n; i++ {
		if err := db.Credit(benchAddr(i), types.Amount(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	db.DiscardSnapshots()
	_ = db.Root()
	return db
}

// BenchmarkRootIncremental measures Root() at 10,000 accounts after
// touching k accounts — the per-block hot path. The seed implementation
// re-hashed the whole world here (~83 ms/op at n=10k on the reference
// machine); the incremental trie re-hashes k digests plus their O(log n)
// trie paths.
func BenchmarkRootIncremental(b *testing.B) {
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("n=10000/k=%d", k), func(b *testing.B) {
			db := populated(b, 10_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					_ = db.Credit(benchAddr((i*k+j)%10_000), 1)
				}
				db.DiscardSnapshots()
				_ = db.Root()
			}
		})
	}
}

// BenchmarkRootFullBuild measures the from-empty cost (genesis, pruned
// rebuilds) for context next to the incremental numbers.
func BenchmarkRootFullBuild(b *testing.B) {
	for _, n := range []int{1000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := New()
				for j := 0; j < n; j++ {
					_ = db.Credit(benchAddr(j), types.Amount(j+1))
				}
				_ = db.Root()
			}
		})
	}
}

// BenchmarkCopy measures the copy-on-write fork cost at 10,000 accounts:
// a pointer-map clone, no account/storage/code duplication. The seed deep
// copy paid ~2.1 ms here.
func BenchmarkCopy(b *testing.B) {
	db := populated(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Copy()
	}
}

// BenchmarkCopyThenTouch measures the realistic per-block pattern: fork
// the world, mutate a handful of accounts, recompute the root.
func BenchmarkCopyThenTouch(b *testing.B) {
	db := populated(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := db.Copy()
		for j := 0; j < 10; j++ {
			_ = cp.Credit(benchAddr((i+j)%10_000), 1)
		}
		cp.DiscardSnapshots()
		_ = cp.Root()
	}
}
