package types

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/crypto/secp256k1"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// SRA is a system release announcement Δ (paper Eq. 1):
//
//	Δ = {Δ_id, P_i, U_n, U_v, U_h, U_l, I_i, P_Sign}
//
// broadcast by an IoT provider when it releases a new IoT system. The
// announcement carries an insurance I_i that is escrowed in the SmartCrowd
// contract and forfeited pro rata when vulnerabilities are confirmed, plus
// the preset per-vulnerability bounty μ (paper §V-D). The bounty is covered
// by Δ_id alongside the paper's fields so it cannot be tampered with after
// signing.
type SRA struct {
	// Provider is P_i, the releasing provider's address.
	Provider Address
	// Name is U_n, the system's name.
	Name string
	// Version is U_v, the released version.
	Version string
	// SystemHash is U_h, the hash of the released system image; detectors
	// check the downloaded image against it.
	SystemHash Hash
	// DownloadLink is U_l, where detectors obtain the image.
	DownloadLink string
	// Insurance is I_i, the escrowed deposit forfeited on confirmed
	// vulnerabilities.
	Insurance Amount
	// Bounty is μ, the preset incentive per confirmed vulnerability.
	Bounty Amount
	// ID is Δ_id = H(P_i || U_n || U_v || U_h || U_l || I_i || μ).
	ID Hash
	// Sig is P_Sign = Sign_{sk_{P_i}}(Δ_id) (paper Eq. 2).
	Sig secp256k1.Signature
}

// SRA verification errors (the decentralized verification of paper §V-A).
var (
	ErrSRABadID        = errors.New("types: SRA identifier does not match contents")
	ErrSRABadSignature = errors.New("types: SRA signature invalid or not by provider")
	ErrSRANoInsurance  = errors.New("types: SRA carries no insurance")
	ErrSRANoBounty     = errors.New("types: SRA presets no vulnerability bounty")
	ErrSRAEmptyName    = errors.New("types: SRA system name is empty")
)

// ComputeID derives Δ_id from the announcement's contents.
func (s *SRA) ComputeID() Hash {
	var ins, bty [8]byte
	binary.BigEndian.PutUint64(ins[:], uint64(s.Insurance))
	binary.BigEndian.PutUint64(bty[:], uint64(s.Bounty))
	return HashConcat(
		s.Provider[:],
		[]byte(s.Name),
		[]byte{0}, // field separators prevent boundary ambiguity
		[]byte(s.Version),
		[]byte{0},
		s.SystemHash[:],
		[]byte(s.DownloadLink),
		[]byte{0},
		ins[:],
		bty[:],
	)
}

// SignSRA fills in the ID and provider signature using the provider's
// wallet. The wallet address must be the announcement's Provider.
func SignSRA(s *SRA, w *wallet.Wallet) error {
	if w.Address() != s.Provider {
		return fmt.Errorf("types: signing SRA for %s with wallet %s", s.Provider, w.Address())
	}
	s.ID = s.ComputeID()
	sig, err := w.SignDigest(s.ID)
	if err != nil {
		return fmt.Errorf("types: sign SRA: %w", err)
	}
	s.Sig = sig
	return nil
}

// Verify performs the decentralized SRA verification of paper §V-A: it
// recomputes Δ_id, checks that the signature recovers to P_i, and enforces
// that the announcement is insured. Nodes drop (do not propagate)
// announcements that fail any check, eradicating spoofed SRAs.
func (s *SRA) Verify() error {
	switch {
	case s.Name == "":
		return ErrSRAEmptyName
	case s.Insurance == 0:
		return ErrSRANoInsurance
	case s.Bounty == 0:
		return ErrSRANoBounty
	}
	if s.ComputeID() != s.ID {
		return ErrSRABadID
	}
	if !wallet.VerifyDigest(s.Provider, s.ID, s.Sig) {
		return ErrSRABadSignature
	}
	return nil
}

// encodePayload serializes the SRA for embedding in a transaction.
func (s *SRA) encodePayload() []byte {
	var buf []byte
	buf = append(buf, s.Provider[:]...)
	buf = appendString(buf, s.Name)
	buf = appendString(buf, s.Version)
	buf = append(buf, s.SystemHash[:]...)
	buf = appendString(buf, s.DownloadLink)
	buf = appendUint64(buf, uint64(s.Insurance))
	buf = appendUint64(buf, uint64(s.Bounty))
	buf = append(buf, s.ID[:]...)
	buf = append(buf, s.Sig.Serialize()...)
	return buf
}

func decodeSRA(data []byte) (*SRA, error) {
	d := decoder{buf: data}
	var s SRA
	d.bytes(s.Provider[:])
	s.Name = d.string()
	s.Version = d.string()
	d.bytes(s.SystemHash[:])
	s.DownloadLink = d.string()
	s.Insurance = Amount(d.uint64())
	s.Bounty = Amount(d.uint64())
	d.bytes(s.ID[:])
	sig := make([]byte, 65)
	d.bytes(sig)
	if d.err != nil {
		return nil, fmt.Errorf("types: decode SRA: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, errors.New("types: decode SRA: trailing bytes")
	}
	parsed, err := secp256k1.ParseSignature(sig)
	if err != nil {
		return nil, fmt.Errorf("types: decode SRA signature: %w", err)
	}
	s.Sig = parsed
	return &s, nil
}

// --- minimal length-prefixed encoding helpers shared by payload types ---

func appendString(buf []byte, s string) []byte {
	buf = appendUint64(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendUint64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) bytes(dst []byte) {
	if d.err != nil {
		return
	}
	if len(d.buf) < len(dst) {
		d.err = errors.New("short buffer")
		return
	}
	copy(dst, d.buf[:len(dst)])
	d.buf = d.buf[len(dst):]
}

func (d *decoder) uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = errors.New("short buffer")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[:8])
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) string() string {
	n := d.uint64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = errors.New("string length exceeds buffer")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
