// Package types defines the consensus data structures of SmartCrowd: the
// system release announcement Δ (paper Eq. 1-2), the two-phase detection
// reports R† and R* (Eq. 3-5), transactions, blocks, and the monetary units
// the incentive scheme is denominated in.
package types

import (
	"encoding/hex"
	"fmt"
	"strconv"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// HashSize is the length of consensus hashes in bytes.
const HashSize = keccak.Size

// Hash is a 32-byte Keccak-256 digest.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash.
var ZeroHash Hash

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short renders the first 4 bytes for logs.
func (h Hash) Short() string { return "0x" + hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

// HashBytes computes the Keccak-256 digest of data.
func HashBytes(data []byte) Hash { return Hash(keccak.Sum256(data)) }

// HashConcat computes the Keccak-256 digest of the concatenated parts.
// SmartCrowd identifiers (Δ_id, ID†, ID*) are hashes over field
// concatenations.
func HashConcat(parts ...[]byte) Hash { return Hash(keccak.Sum256Concat(parts...)) }

// Address aliases the wallet address type so consumers of types need not
// import wallet directly.
type Address = wallet.Address

// Amount is a quantity of currency in gwei (10⁻⁹ ether). The paper
// denominates everything in ether; a uint64 of gwei comfortably covers the
// evaluated range (insurances up to thousands of ether) while keeping
// balance arithmetic exact and allocation-free.
type Amount uint64

// Currency units.
const (
	GWei  Amount = 1
	MWei  Amount = 1_000 * GWei  // 10⁻⁶ ether, convenient for fine-grained gas
	Finny Amount = 1e6 * GWei    // 10⁻³ ether ("finney")
	Ether Amount = 1e9 * GWei    // 1 ether
	KEth  Amount = 1_000 * Ether // insurance-scale unit
)

// EtherAmount converts whole ether to an Amount.
func EtherAmount(n uint64) Amount { return Amount(n) * Ether }

// Ether returns the amount as a float64 number of ether (for reporting
// only; never used in consensus arithmetic).
func (a Amount) Ether() float64 { return float64(a) / float64(Ether) }

// String formats the amount in ether with gwei precision.
func (a Amount) String() string {
	return strconv.FormatFloat(a.Ether(), 'f', -1, 64) + " ETH"
}

// Severity classifies a vulnerability, mirroring Table I of the paper
// (high-, medium- and low-risk findings).
type Severity int

// Severity levels. Starting at 1 so the zero value is invalid.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Valid reports whether s is a defined severity.
func (s Severity) Valid() bool {
	return s >= SeverityLow && s <= SeverityHigh
}

// Finding is one discovered vulnerability inside a detection report's
// description field (Des in Eq. 5).
type Finding struct {
	// VulnID is the canonical identifier of the vulnerability (CVE-style,
	// e.g. "SC-2019-0042"). AutoVerif keys on this.
	VulnID string
	// Severity is the risk classification.
	Severity Severity
	// Evidence is free-form proof material (crash trace, exploit sketch).
	Evidence string
}

// encode serializes a finding for hashing.
func (f Finding) encode() []byte {
	buf := make([]byte, 0, len(f.VulnID)+len(f.Evidence)+2)
	buf = append(buf, byte(f.Severity))
	buf = append(buf, byte(len(f.VulnID)))
	buf = append(buf, f.VulnID...)
	buf = append(buf, f.Evidence...)
	return buf
}

// HashFindings hashes an ordered finding list (the Des component of ID*).
func HashFindings(findings []Finding) Hash {
	parts := make([][]byte, len(findings))
	for i, f := range findings {
		parts[i] = f.encode()
	}
	return HashConcat(parts...)
}
