package types

import (
	"runtime"
	"sync"
)

// senderCacher is the shared worker pool that warms Transaction sender
// caches (geth's senderCacher pattern): ECDSA recovery costs milliseconds
// in pure Go, dominates block verification, and is embarrassingly
// parallel, so every validation layer — chain insert, txpool admission,
// the simulator — hands whole transaction slices to this pool instead of
// recovering senders one by one on a single core.
//
// The pool is striped, not chunked: a slice of n transactions is split
// into min(threads, n) subtasks where subtask i handles txs[i], txs[i+k],
// txs[i+2k], … — no intermediate slice allocation, and the work stays
// balanced even when expensive transactions cluster.
var senderCacher = newTxSenderCacher(runtime.NumCPU())

// senderTask is one stripe of a recovery request.
type senderTask struct {
	txs  []*Transaction
	off  int             // first index of the stripe
	step int             // stripe stride
	wg   *sync.WaitGroup // nil for fire-and-forget prefetches
}

// txSenderCacher owns the worker goroutines and their task queue.
type txSenderCacher struct {
	threads int
	tasks   chan senderTask
}

func newTxSenderCacher(threads int) *txSenderCacher {
	if threads < 1 {
		threads = 1
	}
	c := &txSenderCacher{
		threads: threads,
		tasks:   make(chan senderTask, threads*8),
	}
	for i := 0; i < threads; i++ {
		go c.loop()
	}
	return c
}

// loop drains tasks forever. Workers only compute — they never send on
// the task channel — so blocking producers always make progress.
func (c *txSenderCacher) loop() {
	for t := range c.tasks {
		for i := t.off; i < len(t.txs); i += t.step {
			_, _ = t.txs[i].Sender()
		}
		if t.wg != nil {
			t.wg.Done()
		}
	}
}

// runStripe executes one stripe inline (used for tiny slices and as the
// overflow path of best-effort prefetches).
func runStripe(txs []*Transaction, off, step int) {
	for i := off; i < len(txs); i += step {
		_, _ = txs[i].Sender()
	}
}

// RecoverSenders warms the sender cache of every transaction in txs
// across the shared worker pool and returns once all are warm. Recovery
// failures are memoized like successes — the eventual ValidateBasic (or
// Sender) call surfaces them — so RecoverSenders itself never fails and
// is safe to call on unvalidated gossip.
func RecoverSenders(txs []*Transaction) {
	if len(txs) == 0 {
		return
	}
	mRecoverBatchTxs.Observe(uint64(len(txs)))
	if len(txs) == 1 || senderCacher.threads == 1 {
		runStripe(txs, 0, 1)
		return
	}
	stripes := senderCacher.threads
	if stripes > len(txs) {
		stripes = len(txs)
	}
	var wg sync.WaitGroup
	wg.Add(stripes)
	for i := 0; i < stripes; i++ {
		senderCacher.tasks <- senderTask{txs: txs, off: i, step: stripes, wg: &wg}
	}
	wg.Wait()
}

// PrefetchSenders schedules background sender recovery for txs and
// returns immediately. It is a best-effort hint: when the pool is
// saturated the remaining stripes are dropped rather than queued, because
// whoever needed the senders will recover them (in parallel) anyway. The
// returned count is how many stripes were shed that way — zero means the
// whole slice was scheduled — so callers can surface load-shedding
// instead of it disappearing silently; shed and scheduled stripes are
// also counted in the smartcrowd_types_prefetch_stripes_total family.
func PrefetchSenders(txs []*Transaction) (shed int) {
	if len(txs) == 0 {
		return 0
	}
	stripes := senderCacher.threads
	if stripes > len(txs) {
		stripes = len(txs)
	}
	for i := 0; i < stripes; i++ {
		select {
		case senderCacher.tasks <- senderTask{txs: txs, off: i, step: stripes}:
			mPrefetchSched.Inc()
		default:
			shed = stripes - i
			mPrefetchShed.Add(uint64(shed))
			return shed
		}
	}
	return 0
}
