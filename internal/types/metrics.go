package types

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

var (
	mSenderCacheHit  = telemetry.GetCounter("smartcrowd_types_sender_cache_total", telemetry.L("outcome", "hit"))
	mSenderCacheMiss = telemetry.GetCounter("smartcrowd_types_sender_cache_total", telemetry.L("outcome", "miss"))
	mPrefetchSched   = telemetry.GetCounter("smartcrowd_types_prefetch_stripes_total", telemetry.L("outcome", "scheduled"))
	mPrefetchShed    = telemetry.GetCounter("smartcrowd_types_prefetch_stripes_total", telemetry.L("outcome", "shed"))
	mRecoverBatchTxs = telemetry.GetHistogram("smartcrowd_types_recover_batch_txs")
)

func init() {
	telemetry.SetHelp("smartcrowd_types_sender_cache_total", "Transaction.Sender calls, by memoization outcome (miss = full ECDSA recovery)")
	telemetry.SetHelp("smartcrowd_types_prefetch_stripes_total", "PrefetchSenders stripes scheduled vs shed on pool saturation")
	telemetry.SetHelp("smartcrowd_types_recover_batch_txs", "RecoverSenders batch sizes in transactions")
}
