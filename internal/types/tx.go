package types

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/smartcrowd/smartcrowd/internal/crypto/secp256k1"
	"github.com/smartcrowd/smartcrowd/internal/rlp"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// TxKind discriminates the transaction payloads a SmartCrowd block can
// record. The paper extends standard blocks: "Besides transactions, the
// blocks of SmartCrowd also record SRAs and detection reports" (§IV-B).
type TxKind uint8

// Transaction kinds.
const (
	// TxTransfer moves value between accounts.
	TxTransfer TxKind = iota + 1
	// TxContractCreate deploys SCVM bytecode (Data holds the code).
	TxContractCreate
	// TxContractCall invokes a deployed contract (Data holds call input).
	TxContractCall
	// TxSRA records a system release announcement Δ.
	TxSRA
	// TxInitialReport records an initial detection report R†.
	TxInitialReport
	// TxDetailedReport records a detailed detection report R*.
	TxDetailedReport
)

// String returns the kind name.
func (k TxKind) String() string {
	switch k {
	case TxTransfer:
		return "transfer"
	case TxContractCreate:
		return "contract-create"
	case TxContractCall:
		return "contract-call"
	case TxSRA:
		return "sra"
	case TxInitialReport:
		return "initial-report"
	case TxDetailedReport:
		return "detailed-report"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined transaction kind.
func (k TxKind) Valid() bool { return k >= TxTransfer && k <= TxDetailedReport }

// Transaction is a signed SmartCrowd transaction. The sender is recovered
// from the signature (Ethereum-style); From is carried explicitly for
// readability and must match the recovered signer.
type Transaction struct {
	// Kind selects the payload interpretation of Data.
	Kind TxKind
	// Nonce is the sender's transaction sequence number.
	Nonce uint64
	// From is the sender; must equal the signature's recovered address.
	From Address
	// To is the recipient; the contract address for calls, the zero
	// address for contract creation and protocol payloads.
	To Address
	// Value is the attached currency (e.g. the SRA insurance deposit).
	Value Amount
	// GasLimit caps execution gas.
	GasLimit uint64
	// GasPrice is the fee per unit of gas, paid to the mining provider.
	GasPrice Amount
	// Data is the payload (contract code/input or an encoded Δ/R†/R*).
	Data []byte
	// Sig authenticates the transaction.
	Sig secp256k1.Signature

	// senderCache memoizes signature recovery keyed by the signing hash,
	// so validation layers do not repeat the expensive ECDSA recovery.
	senderCache atomic.Pointer[senderEntry]
	// sigHashCache / hashCache memoize SigHash and Hash. Both are guarded
	// by a field-compare against the transaction's current content, so a
	// mutated transaction (tamper tests, re-signing) falls back to a full
	// recompute instead of serving a stale digest.
	sigHashCache atomic.Pointer[txHashEntry]
	hashCache    atomic.Pointer[txHashEntry]
}

// senderEntry is a cached recovery result for a given signing hash.
type senderEntry struct {
	sigHash Hash
	sig     [65]byte
	addr    Address
	err     error
}

// txMemoKey is the comparable scalar portion of a transaction; together
// with a copy of Data (and, for Hash, the signature bytes) it uniquely
// determines the memoized digests.
type txMemoKey struct {
	kind     TxKind
	nonce    uint64
	from, to Address
	value    Amount
	gasLimit uint64
	gasPrice Amount
}

func (tx *Transaction) memoKey() txMemoKey {
	return txMemoKey{
		kind:     tx.Kind,
		nonce:    tx.Nonce,
		from:     tx.From,
		to:       tx.To,
		value:    tx.Value,
		gasLimit: tx.GasLimit,
		gasPrice: tx.GasPrice,
	}
}

// txHashEntry is one memoized digest. data is a private copy so in-place
// mutation of tx.Data is detected by the guard.
type txHashEntry struct {
	key  txMemoKey
	data []byte
	sig  [65]byte
	hash Hash
}

// sigBytes returns the signature's serialized form, or zeroes when the
// transaction is unsigned.
func (tx *Transaction) sigBytes() (out [65]byte) {
	if tx.Sig.R != nil && tx.Sig.S != nil {
		copy(out[:], tx.Sig.Serialize())
	}
	return out
}

// Transaction errors.
var (
	ErrTxBadSignature = errors.New("types: transaction signature invalid")
	ErrTxWrongSender  = errors.New("types: transaction From does not match signer")
	ErrTxBadKind      = errors.New("types: transaction kind invalid")
	ErrTxNoGas        = errors.New("types: transaction gas limit is zero")
	ErrTxWrongPayload = errors.New("types: transaction payload does not decode for its kind")
)

// SigHash computes the digest the sender signs: the Keccak-256 of the RLP
// encoding of all fields except the signature. The result is memoized;
// repeated calls on an unchanged transaction cost a field compare.
func (tx *Transaction) SigHash() Hash {
	key := tx.memoKey()
	if e := tx.sigHashCache.Load(); e != nil && e.key == key && bytes.Equal(e.data, tx.Data) {
		return e.hash
	}
	enc := rlp.Encode(rlp.List(
		rlp.Uint64(uint64(tx.Kind)),
		rlp.Uint64(tx.Nonce),
		rlp.Bytes(tx.From[:]),
		rlp.Bytes(tx.To[:]),
		rlp.Uint64(uint64(tx.Value)),
		rlp.Uint64(tx.GasLimit),
		rlp.Uint64(uint64(tx.GasPrice)),
		rlp.Bytes(tx.Data),
	))
	h := HashBytes(enc)
	tx.sigHashCache.Store(&txHashEntry{key: key, data: append([]byte(nil), tx.Data...), hash: h})
	return h
}

// Hash returns the transaction identifier: the Keccak-256 of the full RLP
// encoding including the signature. Memoized like SigHash; the guard also
// covers the signature bytes.
func (tx *Transaction) Hash() Hash {
	key := tx.memoKey()
	sig := tx.sigBytes()
	if e := tx.hashCache.Load(); e != nil && e.key == key && e.sig == sig && bytes.Equal(e.data, tx.Data) {
		return e.hash
	}
	enc := rlp.Encode(rlp.List(
		rlp.Uint64(uint64(tx.Kind)),
		rlp.Uint64(tx.Nonce),
		rlp.Bytes(tx.From[:]),
		rlp.Bytes(tx.To[:]),
		rlp.Uint64(uint64(tx.Value)),
		rlp.Uint64(tx.GasLimit),
		rlp.Uint64(uint64(tx.GasPrice)),
		rlp.Bytes(tx.Data),
		rlp.Bytes(tx.Sig.Serialize()),
	))
	h := HashBytes(enc)
	tx.hashCache.Store(&txHashEntry{key: key, data: append([]byte(nil), tx.Data...), sig: sig, hash: h})
	return h
}

// SignTx signs the transaction with w and sets From.
func SignTx(tx *Transaction, w *wallet.Wallet) error {
	tx.From = w.Address()
	sig, err := w.SignDigest(tx.SigHash())
	if err != nil {
		return fmt.Errorf("types: sign transaction: %w", err)
	}
	tx.Sig = sig
	return nil
}

// Sender recovers and validates the transaction's signer. The recovery is
// memoized against the current signing hash and signature, so mutating the
// transaction invalidates the cache naturally.
func (tx *Transaction) Sender() (Address, error) {
	sigHash := tx.SigHash()
	var sigBytes [65]byte
	if tx.Sig.R != nil && tx.Sig.S != nil {
		copy(sigBytes[:], tx.Sig.Serialize())
	}
	if cached := tx.senderCache.Load(); cached != nil &&
		cached.sigHash == sigHash && cached.sig == sigBytes {
		mSenderCacheHit.Inc()
		return cached.addr, cached.err
	}
	mSenderCacheMiss.Inc()

	entry := &senderEntry{sigHash: sigHash, sig: sigBytes}
	addr, err := wallet.RecoverSigner(sigHash, tx.Sig)
	switch {
	case err != nil:
		entry.err = fmt.Errorf("%w: %v", ErrTxBadSignature, err)
	case addr != tx.From:
		entry.err = ErrTxWrongSender
	default:
		entry.addr = addr
	}
	tx.senderCache.Store(entry)
	return entry.addr, entry.err
}

// ValidateBasic performs stateless validation: kind, gas, signature, and —
// for protocol payloads — that the payload decodes and passes its own
// verification (Algorithm 1 structural checks).
func (tx *Transaction) ValidateBasic() error {
	if !tx.Kind.Valid() {
		return ErrTxBadKind
	}
	if tx.GasLimit == 0 {
		return ErrTxNoGas
	}
	if _, err := tx.Sender(); err != nil {
		return err
	}
	switch tx.Kind {
	case TxSRA:
		s, err := tx.SRA()
		if err != nil {
			return err
		}
		if err := s.Verify(); err != nil {
			return err
		}
		if s.Provider != tx.From {
			return fmt.Errorf("%w: SRA provider %s, sender %s", ErrTxWrongSender, s.Provider, tx.From)
		}
		if tx.Value != s.Insurance {
			return fmt.Errorf("types: SRA insurance %s not attached (tx value %s)", s.Insurance, tx.Value)
		}
	case TxInitialReport:
		r, err := tx.InitialReport()
		if err != nil {
			return err
		}
		if err := r.Verify(); err != nil {
			return err
		}
		if r.Detector != tx.From {
			return fmt.Errorf("%w: report detector %s, sender %s", ErrTxWrongSender, r.Detector, tx.From)
		}
	case TxDetailedReport:
		r, err := tx.DetailedReport()
		if err != nil {
			return err
		}
		if err := r.Verify(); err != nil {
			return err
		}
		if r.Detector != tx.From {
			return fmt.Errorf("%w: report detector %s, sender %s", ErrTxWrongSender, r.Detector, tx.From)
		}
	case TxContractCreate:
		if len(tx.Data) == 0 {
			return fmt.Errorf("%w: contract creation with empty code", ErrTxWrongPayload)
		}
	}
	return nil
}

// NewSRATx wraps a signed SRA in a transaction carrying its insurance.
func NewSRATx(s *SRA, nonce uint64, gasLimit uint64, gasPrice Amount) *Transaction {
	return &Transaction{
		Kind:     TxSRA,
		Nonce:    nonce,
		From:     s.Provider,
		Value:    s.Insurance,
		GasLimit: gasLimit,
		GasPrice: gasPrice,
		Data:     s.encodePayload(),
	}
}

// NewInitialReportTx wraps a signed R† in a transaction.
func NewInitialReportTx(r *InitialReport, nonce uint64, gasLimit uint64, gasPrice Amount) *Transaction {
	return &Transaction{
		Kind:     TxInitialReport,
		Nonce:    nonce,
		From:     r.Detector,
		GasLimit: gasLimit,
		GasPrice: gasPrice,
		Data:     r.encodePayload(),
	}
}

// NewDetailedReportTx wraps a signed R* in a transaction.
func NewDetailedReportTx(r *DetailedReport, nonce uint64, gasLimit uint64, gasPrice Amount) *Transaction {
	return &Transaction{
		Kind:     TxDetailedReport,
		Nonce:    nonce,
		From:     r.Detector,
		GasLimit: gasLimit,
		GasPrice: gasPrice,
		Data:     r.encodePayload(),
	}
}

// SRA decodes the SRA payload; the transaction must be TxSRA.
func (tx *Transaction) SRA() (*SRA, error) {
	if tx.Kind != TxSRA {
		return nil, fmt.Errorf("%w: kind %s", ErrTxWrongPayload, tx.Kind)
	}
	return decodeSRA(tx.Data)
}

// InitialReport decodes the R† payload.
func (tx *Transaction) InitialReport() (*InitialReport, error) {
	if tx.Kind != TxInitialReport {
		return nil, fmt.Errorf("%w: kind %s", ErrTxWrongPayload, tx.Kind)
	}
	return decodeInitialReport(tx.Data)
}

// DetailedReport decodes the R* payload.
func (tx *Transaction) DetailedReport() (*DetailedReport, error) {
	if tx.Kind != TxDetailedReport {
		return nil, fmt.Errorf("%w: kind %s", ErrTxWrongPayload, tx.Kind)
	}
	return decodeDetailedReport(tx.Data)
}

// Fee returns the maximum fee the transaction can pay (gas limit × price).
func (tx *Transaction) Fee() Amount { return Amount(tx.GasLimit) * tx.GasPrice }

// Cost returns value plus maximum fee — the balance the sender must hold.
func (tx *Transaction) Cost() Amount { return tx.Value + tx.Fee() }
