package types

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func testSRA(t *testing.T, provider *wallet.Wallet) *SRA {
	t.Helper()
	s := &SRA{
		Provider:     provider.Address(),
		Name:         "smart-camera-fw",
		Version:      "2.4.1",
		SystemHash:   HashBytes([]byte("firmware image payload")),
		DownloadLink: "sc://releases/smart-camera-fw/2.4.1",
		Insurance:    EtherAmount(1000),
		Bounty:       EtherAmount(5),
	}
	if err := SignSRA(s, provider); err != nil {
		t.Fatalf("SignSRA: %v", err)
	}
	return s
}

func TestSRASignVerify(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	s := testSRA(t, p)
	if err := s.Verify(); err != nil {
		t.Fatalf("valid SRA rejected: %v", err)
	}
}

func TestSRASpoofingRejected(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	attacker := wallet.NewDeterministic("attacker")

	t.Run("forged provider identity", func(t *testing.T) {
		// The attacker frames the benign provider: announcement claims P_i
		// but is signed by the attacker.
		s := &SRA{
			Provider:     p.Address(), // victim
			Name:         "repackaged-malware",
			Version:      "1.0",
			SystemHash:   HashBytes([]byte("malware")),
			DownloadLink: "sc://evil/1.0",
			Insurance:    EtherAmount(1),
			Bounty:       EtherAmount(1),
		}
		s.ID = s.ComputeID()
		sig, err := attacker.SignDigest(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		s.Sig = sig
		if err := s.Verify(); !errors.Is(err, ErrSRABadSignature) {
			t.Errorf("spoofed SRA verified: err = %v, want ErrSRABadSignature", err)
		}
	})

	t.Run("tampered contents", func(t *testing.T) {
		s := testSRA(t, p)
		s.DownloadLink = "sc://evil/other" // swap download link after signing
		if err := s.Verify(); !errors.Is(err, ErrSRABadID) {
			t.Errorf("tampered SRA verified: err = %v, want ErrSRABadID", err)
		}
	})

	t.Run("tampered insurance", func(t *testing.T) {
		s := testSRA(t, p)
		s.Insurance = EtherAmount(1) // shrink the escrow after signing
		if err := s.Verify(); !errors.Is(err, ErrSRABadID) {
			t.Errorf("insurance tamper verified: err = %v, want ErrSRABadID", err)
		}
	})

	t.Run("tampered bounty", func(t *testing.T) {
		s := testSRA(t, p)
		s.Bounty = EtherAmount(1)
		if err := s.Verify(); !errors.Is(err, ErrSRABadID) {
			t.Errorf("bounty tamper verified: err = %v, want ErrSRABadID", err)
		}
	})
}

func TestSRARequiresInsuranceAndBounty(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	s := testSRA(t, p)
	s.Insurance = 0
	s.ID = s.ComputeID()
	if err := s.Verify(); !errors.Is(err, ErrSRANoInsurance) {
		t.Errorf("uninsured SRA: err = %v, want ErrSRANoInsurance", err)
	}

	s = testSRA(t, p)
	s.Bounty = 0
	s.ID = s.ComputeID()
	if err := s.Verify(); !errors.Is(err, ErrSRANoBounty) {
		t.Errorf("bounty-less SRA: err = %v, want ErrSRANoBounty", err)
	}

	s = testSRA(t, p)
	s.Name = ""
	s.ID = s.ComputeID()
	if err := s.Verify(); !errors.Is(err, ErrSRAEmptyName) {
		t.Errorf("nameless SRA: err = %v, want ErrSRAEmptyName", err)
	}
}

func TestSignSRAWrongWallet(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	other := wallet.NewDeterministic("other")
	s := testSRA(t, p)
	s.Sig.R = nil
	if err := SignSRA(s, other); err == nil {
		t.Error("SignSRA accepted a wallet that is not the provider")
	}
}

func TestSRAIDFieldSeparation(t *testing.T) {
	// Name/Version boundary shifting must change the ID (no concatenation
	// ambiguity).
	p := wallet.NewDeterministic("provider-1")
	a := &SRA{Provider: p.Address(), Name: "ab", Version: "c", Insurance: 1, Bounty: 1}
	b := &SRA{Provider: p.Address(), Name: "a", Version: "bc", Insurance: 1, Bounty: 1}
	if a.ComputeID() == b.ComputeID() {
		t.Error("field boundary ambiguity in Δ_id")
	}
}

func TestSRAPayloadRoundtrip(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	s := testSRA(t, p)
	decoded, err := decodeSRA(s.encodePayload())
	if err != nil {
		t.Fatalf("decodeSRA: %v", err)
	}
	if decoded.ID != s.ID || decoded.Name != s.Name || decoded.Version != s.Version ||
		decoded.Insurance != s.Insurance || decoded.Bounty != s.Bounty ||
		decoded.DownloadLink != s.DownloadLink || decoded.SystemHash != s.SystemHash {
		t.Error("payload roundtrip lost fields")
	}
	if err := decoded.Verify(); err != nil {
		t.Errorf("roundtripped SRA no longer verifies: %v", err)
	}
}

func TestSRAPayloadRejectsTruncation(t *testing.T) {
	p := wallet.NewDeterministic("provider-1")
	payload := testSRA(t, p).encodePayload()
	for _, n := range []int{0, 1, 20, len(payload) / 2, len(payload) - 1} {
		if _, err := decodeSRA(payload[:n]); err == nil {
			t.Errorf("decodeSRA accepted %d-byte truncation", n)
		}
	}
	if _, err := decodeSRA(append(payload, 0x00)); err == nil {
		t.Error("decodeSRA accepted trailing bytes")
	}
}
