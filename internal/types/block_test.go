package types

import (
	"errors"
	"math/big"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func minedBlock(t *testing.T, parent Hash, number uint64, txs []*Transaction, difficulty uint64) *Block {
	t.Helper()
	miner := wallet.NewDeterministic("miner")
	b := &Block{
		Header: Header{
			ParentID:   parent,
			Number:     number,
			Time:       number * 15_000,
			Difficulty: difficulty,
			Miner:      miner.Address(),
			TxRoot:     ComputeTxRoot(txs),
			StateRoot:  HashBytes([]byte("state")),
		},
		Txs: txs,
	}
	for nonce := uint64(0); ; nonce++ {
		b.Header.Nonce = nonce
		if b.Header.MeetsPoW() {
			return b
		}
		if nonce > 1_000_000 {
			t.Fatal("could not mine test block; difficulty too high for test")
		}
	}
}

func TestPoWTargetMonotone(t *testing.T) {
	if PoWTarget(1).Cmp(PoWTarget(2)) <= 0 {
		t.Error("higher difficulty must lower the target")
	}
	if PoWTarget(0).Cmp(PoWTarget(1)) != 0 {
		t.Error("difficulty 0 must behave as 1")
	}
	// Target(1) is 2^256-1: any hash qualifies.
	max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	if PoWTarget(1).Cmp(max) != 0 {
		t.Error("difficulty-1 target should be 2^256-1")
	}
}

func TestHeaderIDDeterministicAndSensitive(t *testing.T) {
	h := Header{Number: 5, Time: 100, Difficulty: 4, Nonce: 9}
	if h.ID() != h.ID() {
		t.Error("header ID not deterministic")
	}
	h2 := h
	h2.Nonce++
	if h.ID() == h2.ID() {
		t.Error("nonce change did not change header ID")
	}
	h3 := h
	h3.ParentID = HashBytes([]byte("x"))
	if h.ID() == h3.ID() {
		t.Error("parent change did not change header ID")
	}
}

func TestBlockVerifyShape(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	txs := []*Transaction{signedTransfer(t, alice, Address{}, 5, 0)}
	b := minedBlock(t, HashBytes([]byte("genesis")), 1, txs, 16)
	if err := b.VerifyShape(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
}

func TestBlockVerifyShapeRejectsBadTxRoot(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	txs := []*Transaction{signedTransfer(t, alice, Address{}, 5, 0)}
	b := minedBlock(t, Hash{}, 1, txs, 16)
	// A colluding miner swaps in a different transaction set after sealing.
	b.Txs = []*Transaction{signedTransfer(t, alice, Address{}, 500, 0)}
	if err := b.VerifyShape(); !errors.Is(err, ErrBlockBadTxRoot) {
		t.Errorf("tampered tx set: err = %v, want ErrBlockBadTxRoot", err)
	}
}

func TestBlockVerifyShapeRejectsBadPoW(t *testing.T) {
	b := minedBlock(t, Hash{}, 1, nil, 16)
	b.Header.Difficulty = 1 << 60 // claim a difficulty the nonce doesn't meet
	if err := b.VerifyShape(); !errors.Is(err, ErrBlockBadPoW) {
		t.Errorf("unmined block: err = %v, want ErrBlockBadPoW", err)
	}
}

func TestBlockVerifyShapeRejectsInvalidTx(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	tx := signedTransfer(t, alice, Address{}, 5, 0)
	tx.Value = 99 // break the signature
	b := minedBlock(t, Hash{}, 1, []*Transaction{tx}, 4)
	if err := b.VerifyShape(); err == nil {
		t.Error("block with invalid tx accepted")
	}
}

func TestBlockVerifyShapeRejectsZeroTime(t *testing.T) {
	b := minedBlock(t, Hash{}, 1, nil, 4)
	b.Header.Time = 0
	// Re-mine with time zero to isolate the timestamp check.
	for nonce := uint64(0); ; nonce++ {
		b.Header.Nonce = nonce
		if b.Header.MeetsPoW() {
			break
		}
	}
	if err := b.VerifyShape(); !errors.Is(err, ErrBlockNoTime) {
		t.Errorf("zero-time block: err = %v, want ErrBlockNoTime", err)
	}
}

func TestGenesisExemptFromPoW(t *testing.T) {
	g := &Block{Header: Header{Number: 0, Difficulty: 1 << 62}}
	g.Header.TxRoot = ComputeTxRoot(nil)
	if err := g.VerifyShape(); err != nil {
		t.Errorf("genesis rejected: %v", err)
	}
}

func TestCountReports(t *testing.T) {
	detector := wallet.NewDeterministic("detector")
	provider := wallet.NewDeterministic("provider")
	initial, detailed := buildReportPair(t, detector, HashBytes([]byte("s")), sampleFindings())
	itx := NewInitialReportTx(initial, 0, 1, 1)
	dtx := NewDetailedReportTx(detailed, 1, 1, 1)
	transfer := signedTransfer(t, provider, Address{}, 1, 0)
	b := &Block{Txs: []*Transaction{itx, dtx, transfer}}
	if got := b.CountReports(); got != 2 {
		t.Errorf("CountReports = %d, want 2", got)
	}
}

func TestBlockEncodeDecodeRoundtrip(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	detector := wallet.NewDeterministic("detector")
	initial, _ := buildReportPair(t, detector, HashBytes([]byte("s")), sampleFindings())
	itx := NewInitialReportTx(initial, 0, 200_000, 50*GWei)
	if err := SignTx(itx, detector); err != nil {
		t.Fatal(err)
	}
	txs := []*Transaction{signedTransfer(t, alice, Address{}, 5, 0), itx}
	b := minedBlock(t, HashBytes([]byte("parent")), 3, txs, 8)

	decoded, err := DecodeBlock(EncodeBlock(b))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID() != b.ID() {
		t.Error("block roundtrip changed ID")
	}
	if len(decoded.Txs) != len(b.Txs) {
		t.Fatalf("roundtrip lost transactions")
	}
	if err := decoded.VerifyShape(); err != nil {
		t.Errorf("roundtripped block invalid: %v", err)
	}
	// The embedded report must survive intact.
	r, err := decoded.Txs[1].InitialReport()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != initial.ID {
		t.Error("embedded report identity changed through block roundtrip")
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0xc0}, {0xc2, 0xc0, 0xc0}} {
		if _, err := DecodeBlock(data); err == nil {
			t.Errorf("DecodeBlock accepted %x", data)
		}
	}
}

func TestComputeTxRootEmptyStable(t *testing.T) {
	if ComputeTxRoot(nil) != ComputeTxRoot([]*Transaction{}) {
		t.Error("empty tx root unstable")
	}
}

func BenchmarkHeaderID(b *testing.B) {
	h := Header{Number: 123456, Time: 99, Difficulty: 0xf00000, Nonce: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Nonce = uint64(i)
		h.ID()
	}
}
