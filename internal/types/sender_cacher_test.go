package types

import (
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// coldCopies round-trips transactions through the wire encoding so every
// copy has cold hash/sender caches, like gossip off the network.
func coldCopies(t *testing.T, txs []*Transaction) []*Transaction {
	t.Helper()
	out := make([]*Transaction, len(txs))
	for i, tx := range txs {
		c, err := DecodeTx(EncodeTx(tx))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestRecoverSendersWarmsEveryTx(t *testing.T) {
	alice := wallet.NewDeterministic("cacher-alice")
	bob := wallet.NewDeterministic("cacher-bob")
	var txs []*Transaction
	for i := 0; i < 37; i++ { // odd count: exercises uneven stripes
		w := alice
		if i%2 == 1 {
			w = bob
		}
		txs = append(txs, signedTransfer(t, w, Address{9}, Amount(i+1), uint64(i)))
	}
	cold := coldCopies(t, txs)

	RecoverSenders(cold)
	for i, tx := range cold {
		from, err := tx.Sender()
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		want := alice.Address()
		if i%2 == 1 {
			want = bob.Address()
		}
		if from != want {
			t.Fatalf("tx %d: sender %v, want %v", i, from, want)
		}
	}
}

func TestRecoverSendersMemoizesFailures(t *testing.T) {
	alice := wallet.NewDeterministic("cacher-alice")
	txs := coldCopies(t, []*Transaction{signedTransfer(t, alice, Address{9}, 1, 0)})
	txs[0].Value = 999 // break the signature before recovery

	// RecoverSenders itself never fails — it is safe on unvalidated
	// gossip — but the failure must surface from the usual entry points.
	RecoverSenders(txs)
	if _, err := txs[0].Sender(); err == nil {
		t.Fatal("tampered tx recovered a sender")
	}
	if err := txs[0].ValidateBasic(); err == nil {
		t.Fatal("tampered tx passed ValidateBasic")
	}
}

func TestRecoverAndPrefetchDegenerateInputs(t *testing.T) {
	RecoverSenders(nil)
	PrefetchSenders(nil)
	RecoverSenders([]*Transaction{})
	PrefetchSenders([]*Transaction{})
}

func TestPrefetchSendersEventuallyWarms(t *testing.T) {
	alice := wallet.NewDeterministic("cacher-alice")
	var txs []*Transaction
	for i := 0; i < 8; i++ {
		txs = append(txs, signedTransfer(t, alice, Address{9}, 1, uint64(i)))
	}
	cold := coldCopies(t, txs)
	PrefetchSenders(cold)
	// Prefetch is best-effort; Sender() must return the right answer
	// whether or not the hint landed (racing the pool is the point).
	for i, tx := range cold {
		from, err := tx.Sender()
		if err != nil || from != alice.Address() {
			t.Fatalf("tx %d: sender %v err %v", i, from, err)
		}
	}
}
