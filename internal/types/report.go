package types

import (
	"errors"
	"fmt"

	"github.com/smartcrowd/smartcrowd/internal/crypto/secp256k1"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// InitialReport is R† (paper Eq. 3), the first phase of the two-phase
// report submission:
//
//	R† = {ID†, Δ, D_i, H_{R*}, W_{D_i}, D†_Sign}
//
// It commits to the detailed report's hash without revealing findings,
// which timestamps the discovery and defeats plagiarism: a thief who sees a
// revealed R* cannot retroactively produce an earlier-chained commitment.
type InitialReport struct {
	// SRAID references Δ by its identifier.
	SRAID Hash
	// Detector is D_i, the reporting detector's identity.
	Detector Address
	// DetailHash is H_{R*}, the hash commitment to the detailed report.
	DetailHash Hash
	// Wallet is W_{D_i}, the payee address for incentives.
	Wallet Address
	// ID is ID† = H(Δ || D_i || H_{R*} || W_{D_i}).
	ID Hash
	// Sig is D†_Sign = Sign_{sk_{D_i}}(ID†) (paper Eq. 4).
	Sig secp256k1.Signature
}

// DetailedReport is R* (paper Eq. 5), the second phase revealed only after
// R† is confirmed in the blockchain:
//
//	R* = {ID*, Δ, D_i, W_{D_i}, Des, D*_Sign}
type DetailedReport struct {
	// SRAID references Δ by its identifier.
	SRAID Hash
	// Detector is D_i.
	Detector Address
	// Wallet is W_{D_i}.
	Wallet Address
	// Findings is Des, the discovered vulnerabilities.
	Findings []Finding
	// ID is ID* = H(Δ || D_i || W_{D_i} || Des).
	ID Hash
	// Sig is D*_Sign.
	Sig secp256k1.Signature
}

// Report verification errors (Algorithm 1 of the paper).
var (
	ErrReportBadID        = errors.New("types: report identifier does not match contents")
	ErrReportBadSignature = errors.New("types: report signature invalid or not by detector")
	ErrReportNoFindings   = errors.New("types: detailed report lists no findings")
	ErrReportBadFinding   = errors.New("types: detailed report contains malformed finding")
	ErrDetailHashMismatch = errors.New("types: detailed report does not match initial commitment H_R*")
)

// ComputeID derives ID† per Eq. 3.
func (r *InitialReport) ComputeID() Hash {
	return HashConcat(r.SRAID[:], r.Detector[:], r.DetailHash[:], r.Wallet[:])
}

// SignInitialReport fills in ID† and the detector signature.
func SignInitialReport(r *InitialReport, w *wallet.Wallet) error {
	if w.Address() != r.Detector {
		return fmt.Errorf("types: signing R† for %s with wallet %s", r.Detector, w.Address())
	}
	r.ID = r.ComputeID()
	sig, err := w.SignDigest(r.ID)
	if err != nil {
		return fmt.Errorf("types: sign initial report: %w", err)
	}
	r.Sig = sig
	return nil
}

// Verify implements the first half of Algorithm 1: recompute ID† and check
// the detector's signature. Failing reports are dropped.
func (r *InitialReport) Verify() error {
	if r.ComputeID() != r.ID {
		return ErrReportBadID
	}
	if !wallet.VerifyDigest(r.Detector, r.ID, r.Sig) {
		return ErrReportBadSignature
	}
	return nil
}

// ComputeID derives ID* per Eq. 5.
func (r *DetailedReport) ComputeID() Hash {
	des := HashFindings(r.Findings)
	return HashConcat(r.SRAID[:], r.Detector[:], r.Wallet[:], des[:])
}

// CommitmentHash is H(R*), the value a detector must place in its initial
// report's DetailHash field. It covers the full revealed content.
func (r *DetailedReport) CommitmentHash() Hash {
	des := HashFindings(r.Findings)
	return HashConcat(r.SRAID[:], r.Detector[:], r.Wallet[:], des[:], []byte("commit"))
}

// SignDetailedReport fills in ID* and the detector signature.
func SignDetailedReport(r *DetailedReport, w *wallet.Wallet) error {
	if w.Address() != r.Detector {
		return fmt.Errorf("types: signing R* for %s with wallet %s", r.Detector, w.Address())
	}
	r.ID = r.ComputeID()
	sig, err := w.SignDigest(r.ID)
	if err != nil {
		return fmt.Errorf("types: sign detailed report: %w", err)
	}
	r.Sig = sig
	return nil
}

// Verify implements the second half of Algorithm 1, minus AutoVerif (which
// needs the detection substrate): recompute ID*, check the signature, and
// validate finding structure.
func (r *DetailedReport) Verify() error {
	if len(r.Findings) == 0 {
		return ErrReportNoFindings
	}
	for _, f := range r.Findings {
		if f.VulnID == "" || !f.Severity.Valid() || len(f.VulnID) > 255 {
			return ErrReportBadFinding
		}
	}
	if r.ComputeID() != r.ID {
		return ErrReportBadID
	}
	if !wallet.VerifyDigest(r.Detector, r.ID, r.Sig) {
		return ErrReportBadSignature
	}
	return nil
}

// VerifyAgainstCommitment checks H_{R*} from the chained initial report
// against the revealed detailed report (Algorithm 1, line 14).
func (r *DetailedReport) VerifyAgainstCommitment(initial *InitialReport) error {
	if initial.SRAID != r.SRAID || initial.Detector != r.Detector || initial.Wallet != r.Wallet {
		return ErrDetailHashMismatch
	}
	if r.CommitmentHash() != initial.DetailHash {
		return ErrDetailHashMismatch
	}
	return nil
}

// --- payload encoding ---

func (r *InitialReport) encodePayload() []byte {
	var buf []byte
	buf = append(buf, r.SRAID[:]...)
	buf = append(buf, r.Detector[:]...)
	buf = append(buf, r.DetailHash[:]...)
	buf = append(buf, r.Wallet[:]...)
	buf = append(buf, r.ID[:]...)
	buf = append(buf, r.Sig.Serialize()...)
	return buf
}

func decodeInitialReport(data []byte) (*InitialReport, error) {
	d := decoder{buf: data}
	var r InitialReport
	d.bytes(r.SRAID[:])
	d.bytes(r.Detector[:])
	d.bytes(r.DetailHash[:])
	d.bytes(r.Wallet[:])
	d.bytes(r.ID[:])
	sig := make([]byte, 65)
	d.bytes(sig)
	if d.err != nil {
		return nil, fmt.Errorf("types: decode initial report: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, errors.New("types: decode initial report: trailing bytes")
	}
	parsed, err := secp256k1.ParseSignature(sig)
	if err != nil {
		return nil, fmt.Errorf("types: decode initial report signature: %w", err)
	}
	r.Sig = parsed
	return &r, nil
}

func (r *DetailedReport) encodePayload() []byte {
	var buf []byte
	buf = append(buf, r.SRAID[:]...)
	buf = append(buf, r.Detector[:]...)
	buf = append(buf, r.Wallet[:]...)
	buf = appendUint64(buf, uint64(len(r.Findings)))
	for _, f := range r.Findings {
		buf = appendUint64(buf, uint64(f.Severity))
		buf = appendString(buf, f.VulnID)
		buf = appendString(buf, f.Evidence)
	}
	buf = append(buf, r.ID[:]...)
	buf = append(buf, r.Sig.Serialize()...)
	return buf
}

func decodeDetailedReport(data []byte) (*DetailedReport, error) {
	d := decoder{buf: data}
	var r DetailedReport
	d.bytes(r.SRAID[:])
	d.bytes(r.Detector[:])
	d.bytes(r.Wallet[:])
	n := d.uint64()
	const maxFindings = 1 << 16
	if d.err == nil && n > maxFindings {
		return nil, fmt.Errorf("types: decode detailed report: %d findings exceeds limit", n)
	}
	if d.err == nil {
		r.Findings = make([]Finding, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			f := Finding{
				Severity: Severity(d.uint64()),
				VulnID:   d.string(),
				Evidence: d.string(),
			}
			r.Findings = append(r.Findings, f)
		}
	}
	d.bytes(r.ID[:])
	sig := make([]byte, 65)
	d.bytes(sig)
	if d.err != nil {
		return nil, fmt.Errorf("types: decode detailed report: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, errors.New("types: decode detailed report: trailing bytes")
	}
	parsed, err := secp256k1.ParseSignature(sig)
	if err != nil {
		return nil, fmt.Errorf("types: decode detailed report signature: %w", err)
	}
	r.Sig = parsed
	return &r, nil
}
