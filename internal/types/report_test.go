package types

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// buildReportPair creates a linked (R†, R*) pair for a detector, as the
// two-phase submission protocol produces them.
func buildReportPair(t *testing.T, detector *wallet.Wallet, sraID Hash, findings []Finding) (*InitialReport, *DetailedReport) {
	t.Helper()
	detailed := &DetailedReport{
		SRAID:    sraID,
		Detector: detector.Address(),
		Wallet:   detector.Address(),
		Findings: findings,
	}
	if err := SignDetailedReport(detailed, detector); err != nil {
		t.Fatal(err)
	}
	initial := &InitialReport{
		SRAID:      sraID,
		Detector:   detector.Address(),
		DetailHash: detailed.CommitmentHash(),
		Wallet:     detector.Address(),
	}
	if err := SignInitialReport(initial, detector); err != nil {
		t.Fatal(err)
	}
	return initial, detailed
}

func sampleFindings() []Finding {
	return []Finding{
		{VulnID: "SC-2019-0001", Severity: SeverityHigh, Evidence: "stack overflow in parser"},
		{VulnID: "SC-2019-0002", Severity: SeverityMedium, Evidence: "weak default credentials"},
	}
}

func TestReportPairVerifies(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	sraID := HashBytes([]byte("sra"))
	initial, detailed := buildReportPair(t, d, sraID, sampleFindings())
	if err := initial.Verify(); err != nil {
		t.Errorf("valid R† rejected: %v", err)
	}
	if err := detailed.Verify(); err != nil {
		t.Errorf("valid R* rejected: %v", err)
	}
	if err := detailed.VerifyAgainstCommitment(initial); err != nil {
		t.Errorf("R* does not match its own R† commitment: %v", err)
	}
}

func TestTamperedInitialReportRejected(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	sraID := HashBytes([]byte("sra"))
	initial, _ := buildReportPair(t, d, sraID, sampleFindings())

	t.Run("redirected payee wallet", func(t *testing.T) {
		// A compromised node tries to redirect the detector's incentives.
		attacker := wallet.NewDeterministic("thief")
		mutated := *initial
		mutated.Wallet = attacker.Address()
		if err := mutated.Verify(); !errors.Is(err, ErrReportBadID) {
			t.Errorf("wallet redirection verified: err = %v", err)
		}
	})

	t.Run("swapped commitment", func(t *testing.T) {
		mutated := *initial
		mutated.DetailHash = HashBytes([]byte("other"))
		if err := mutated.Verify(); !errors.Is(err, ErrReportBadID) {
			t.Errorf("commitment swap verified: err = %v", err)
		}
	})

	t.Run("forged signature", func(t *testing.T) {
		attacker := wallet.NewDeterministic("thief")
		mutated := *initial
		sig, err := attacker.SignDigest(mutated.ID)
		if err != nil {
			t.Fatal(err)
		}
		mutated.Sig = sig
		if err := mutated.Verify(); !errors.Is(err, ErrReportBadSignature) {
			t.Errorf("forged signature verified: err = %v", err)
		}
	})
}

func TestTamperedDetailedReportRejected(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	sraID := HashBytes([]byte("sra"))
	_, detailed := buildReportPair(t, d, sraID, sampleFindings())

	t.Run("injected finding", func(t *testing.T) {
		mutated := *detailed
		mutated.Findings = append([]Finding{}, detailed.Findings...)
		mutated.Findings = append(mutated.Findings, Finding{VulnID: "FAKE-1", Severity: SeverityLow})
		if err := mutated.Verify(); !errors.Is(err, ErrReportBadID) {
			t.Errorf("finding injection verified: err = %v", err)
		}
	})

	t.Run("empty findings", func(t *testing.T) {
		mutated := *detailed
		mutated.Findings = nil
		if err := mutated.Verify(); !errors.Is(err, ErrReportNoFindings) {
			t.Errorf("empty report: err = %v", err)
		}
	})

	t.Run("malformed severity", func(t *testing.T) {
		mutated := *detailed
		mutated.Findings = []Finding{{VulnID: "X", Severity: Severity(9)}}
		if err := mutated.Verify(); !errors.Is(err, ErrReportBadFinding) {
			t.Errorf("bad severity: err = %v", err)
		}
	})
}

// TestPlagiarismStructure demonstrates the anti-plagiarism property at the
// data-structure level: a plagiarist who copies a revealed R* cannot bind
// it to its own identity without the commitment breaking.
func TestPlagiarismStructure(t *testing.T) {
	honest := wallet.NewDeterministic("honest-detector")
	thief := wallet.NewDeterministic("plagiarist")
	sraID := HashBytes([]byte("sra"))
	_, revealed := buildReportPair(t, honest, sraID, sampleFindings())

	// The thief republishes the findings under its own identity...
	stolen := &DetailedReport{
		SRAID:    sraID,
		Detector: thief.Address(),
		Wallet:   thief.Address(),
		Findings: revealed.Findings,
	}
	if err := SignDetailedReport(stolen, thief); err != nil {
		t.Fatal(err)
	}
	// ...the stolen report is internally valid (ECDSA cannot prevent that),
	if err := stolen.Verify(); err != nil {
		t.Fatalf("internally consistent stolen report rejected: %v", err)
	}
	// ...but it can never match the honest detector's chained commitment,
	honestInitial := &InitialReport{
		SRAID:      sraID,
		Detector:   honest.Address(),
		DetailHash: revealed.CommitmentHash(),
		Wallet:     honest.Address(),
	}
	if err := SignInitialReport(honestInitial, honest); err != nil {
		t.Fatal(err)
	}
	if err := stolen.VerifyAgainstCommitment(honestInitial); err == nil {
		t.Error("stolen R* matched the victim's commitment")
	}
	// ...and the thief has no earlier commitment of its own — the protocol
	// layer (contract package) enforces that R* without a prior confirmed
	// R† earns nothing. Here we verify the commitment hash binds identity:
	if stolen.CommitmentHash() == revealed.CommitmentHash() {
		t.Error("commitment hash does not bind the detector identity")
	}
}

func TestCommitmentDiffersFromID(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	_, detailed := buildReportPair(t, d, HashBytes([]byte("sra")), sampleFindings())
	if detailed.CommitmentHash() == detailed.ID {
		t.Error("commitment hash must be domain-separated from ID*")
	}
}

func TestVerifyAgainstCommitmentFieldMismatches(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	sraID := HashBytes([]byte("sra"))
	initial, detailed := buildReportPair(t, d, sraID, sampleFindings())

	other := *detailed
	other.SRAID = HashBytes([]byte("different-sra"))
	if err := other.VerifyAgainstCommitment(initial); !errors.Is(err, ErrDetailHashMismatch) {
		t.Errorf("cross-SRA replay: err = %v", err)
	}
}

func TestReportPayloadRoundtrips(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	sraID := HashBytes([]byte("sra"))
	initial, detailed := buildReportPair(t, d, sraID, sampleFindings())

	ri, err := decodeInitialReport(initial.encodePayload())
	if err != nil {
		t.Fatalf("decodeInitialReport: %v", err)
	}
	if err := ri.Verify(); err != nil {
		t.Errorf("roundtripped R† invalid: %v", err)
	}
	if ri.DetailHash != initial.DetailHash || ri.Wallet != initial.Wallet {
		t.Error("R† roundtrip lost fields")
	}

	rd, err := decodeDetailedReport(detailed.encodePayload())
	if err != nil {
		t.Fatalf("decodeDetailedReport: %v", err)
	}
	if err := rd.Verify(); err != nil {
		t.Errorf("roundtripped R* invalid: %v", err)
	}
	if len(rd.Findings) != len(detailed.Findings) {
		t.Fatalf("R* roundtrip: %d findings, want %d", len(rd.Findings), len(detailed.Findings))
	}
	for i := range rd.Findings {
		if rd.Findings[i] != detailed.Findings[i] {
			t.Errorf("finding %d mismatch after roundtrip", i)
		}
	}
}

func TestReportPayloadRejectsTruncation(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	initial, detailed := buildReportPair(t, d, HashBytes([]byte("sra")), sampleFindings())
	ip := initial.encodePayload()
	dp := detailed.encodePayload()
	for _, n := range []int{0, 10, len(ip) - 1} {
		if _, err := decodeInitialReport(ip[:n]); err == nil {
			t.Errorf("decodeInitialReport accepted %d-byte truncation", n)
		}
	}
	for _, n := range []int{0, 10, len(dp) - 1} {
		if _, err := decodeDetailedReport(dp[:n]); err == nil {
			t.Errorf("decodeDetailedReport accepted %d-byte truncation", n)
		}
	}
	if _, err := decodeDetailedReport(append(dp, 1)); err == nil {
		t.Error("decodeDetailedReport accepted trailing bytes")
	}
}

func TestDecodeDetailedReportFindingBomb(t *testing.T) {
	// A payload claiming 2^40 findings must fail fast, not allocate.
	var buf []byte
	var h Hash
	var a Address
	buf = append(buf, h[:]...)
	buf = append(buf, a[:]...)
	buf = append(buf, a[:]...)
	buf = appendUint64(buf, 1<<40)
	if _, err := decodeDetailedReport(buf); err == nil {
		t.Error("finding bomb accepted")
	}
}

func TestHashFindingsOrderSensitive(t *testing.T) {
	f := sampleFindings()
	swapped := []Finding{f[1], f[0]}
	if HashFindings(f) == HashFindings(swapped) {
		t.Error("HashFindings is order-insensitive")
	}
}

func TestSignReportWrongWallet(t *testing.T) {
	d := wallet.NewDeterministic("detector-1")
	other := wallet.NewDeterministic("other")
	r := &InitialReport{Detector: d.Address()}
	if err := SignInitialReport(r, other); err == nil {
		t.Error("SignInitialReport accepted foreign wallet")
	}
	dr := &DetailedReport{Detector: d.Address(), Findings: sampleFindings()}
	if err := SignDetailedReport(dr, other); err == nil {
		t.Error("SignDetailedReport accepted foreign wallet")
	}
}
