package types

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"github.com/smartcrowd/smartcrowd/internal/crypto/merkle"
	"github.com/smartcrowd/smartcrowd/internal/crypto/secp256k1"
	"github.com/smartcrowd/smartcrowd/internal/rlp"
)

// Header is a SmartCrowd block header (paper Fig. 2). PreBlockID and
// CurBlockID link blocks into a chain; Timestamp is the generation time;
// Nonce is the PoW solution the mining provider searched for; the Merkle
// root commits to the ω_i detection results recorded in the block.
type Header struct {
	// ParentID is PreBlockID, the identifier of the previous block.
	ParentID Hash
	// Number is the block height (0 for genesis).
	Number uint64
	// Time is the block generation timestamp in simulation milliseconds.
	Time uint64
	// Difficulty is the PoW difficulty; the header hash must be below
	// 2²⁵⁶/Difficulty.
	Difficulty uint64
	// Nonce is the PoW solution.
	Nonce uint64
	// Miner is the IoT provider that sealed the block and receives the
	// block reward and transaction fees (Eq. 8).
	Miner Address
	// TxRoot is the Merkle root over the block's transactions — the
	// detection-result organization of paper Fig. 2.
	TxRoot Hash
	// StateRoot commits to the post-execution account state.
	StateRoot Hash
}

// rlpItem encodes every header field; the PoW nonce is included so the
// sealed hash covers it.
func (h *Header) rlpItem() rlp.Item {
	return rlp.List(
		rlp.Bytes(h.ParentID[:]),
		rlp.Uint64(h.Number),
		rlp.Uint64(h.Time),
		rlp.Uint64(h.Difficulty),
		rlp.Uint64(h.Nonce),
		rlp.Bytes(h.Miner[:]),
		rlp.Bytes(h.TxRoot[:]),
		rlp.Bytes(h.StateRoot[:]),
	)
}

// ID computes CurBlockID: the Keccak-256 of the RLP-encoded header. This is
// also the value the PoW predicate constrains.
func (h *Header) ID() Hash {
	return HashBytes(rlp.Encode(h.rlpItem()))
}

// maxTarget is 2²⁵⁶ − 1.
var maxTarget = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))

// PoWTarget returns the threshold a block ID must be below for the given
// difficulty. Difficulty 0 is treated as 1 (every hash qualifies).
func PoWTarget(difficulty uint64) *big.Int {
	if difficulty == 0 {
		difficulty = 1
	}
	return new(big.Int).Div(maxTarget, new(big.Int).SetUint64(difficulty))
}

// MeetsPoW reports whether the header's ID satisfies its difficulty.
func (h *Header) MeetsPoW() bool {
	id := h.ID()
	return new(big.Int).SetBytes(id[:]).Cmp(PoWTarget(h.Difficulty)) <= 0
}

// Block is a full SmartCrowd block: a sealed header plus the transactions
// (value transfers, SRAs and detection reports) it records.
type Block struct {
	Header Header
	Txs    []*Transaction

	// idCache memoizes the header hash, guarded by a copy of the header
	// it was computed from: fork choice, indexing and PoW verification
	// all re-request the ID of sealed (immutable) blocks, while a miner
	// grinding Nonce on a header it owns still gets fresh hashes.
	idCache atomic.Pointer[blockIDEntry]
}

// blockIDEntry pins a memoized block ID to the exact header contents.
type blockIDEntry struct {
	hdr Header
	id  Hash
}

// Block validation errors.
var (
	ErrBlockBadTxRoot = errors.New("types: block transaction root mismatch")
	ErrBlockBadPoW    = errors.New("types: block does not meet proof-of-work")
	ErrBlockNoTime    = errors.New("types: block timestamp is zero")
)

// ID returns the block's identifier (its header hash), memoized against
// the current header value.
func (b *Block) ID() Hash {
	if e := b.idCache.Load(); e != nil && e.hdr == b.Header {
		return e.id
	}
	id := b.Header.ID()
	b.idCache.Store(&blockIDEntry{hdr: b.Header, id: id})
	return id
}

// ComputeTxRoot builds the Merkle root over the block's transactions.
func ComputeTxRoot(txs []*Transaction) Hash {
	if len(txs) == 0 {
		return Hash(merkle.EmptyRoot)
	}
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		h := tx.Hash()
		leaves[i] = h[:]
	}
	return Hash(merkle.Root(leaves))
}

// VerifyShape checks the block's self-consistency: Merkle root, PoW and
// structural transaction validity. Chain-contextual checks (parent link,
// state transition) live in the chain package.
func (b *Block) VerifyShape() error {
	if b.Header.Number > 0 && b.Header.Time == 0 {
		return ErrBlockNoTime
	}
	if ComputeTxRoot(b.Txs) != b.Header.TxRoot {
		return ErrBlockBadTxRoot
	}
	if b.Header.Number > 0 && !b.Header.MeetsPoW() {
		return ErrBlockBadPoW
	}
	for i, tx := range b.Txs {
		if err := tx.ValidateBasic(); err != nil {
			return fmt.Errorf("types: block tx %d: %w", i, err)
		}
	}
	return nil
}

// CountReports returns ω, the number of detection-result transactions
// (initial and detailed reports) the block records — the quantity that
// earns the mining provider per-report fees in Eq. 8.
func (b *Block) CountReports() int {
	n := 0
	for _, tx := range b.Txs {
		if tx.Kind == TxInitialReport || tx.Kind == TxDetailedReport {
			n++
		}
	}
	return n
}

// EncodeTx serializes a transaction for network transport.
func EncodeTx(tx *Transaction) []byte {
	return rlp.Encode(rlp.List(
		rlp.Uint64(uint64(tx.Kind)),
		rlp.Uint64(tx.Nonce),
		rlp.Bytes(tx.From[:]),
		rlp.Bytes(tx.To[:]),
		rlp.Uint64(uint64(tx.Value)),
		rlp.Uint64(tx.GasLimit),
		rlp.Uint64(uint64(tx.GasPrice)),
		rlp.Bytes(tx.Data),
		rlp.Bytes(tx.Sig.Serialize()),
	))
}

// DecodeTx parses a transaction from its transport encoding.
func DecodeTx(data []byte) (*Transaction, error) {
	it, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("types: decode tx: %w", err)
	}
	return txFromItem(it)
}

func txFromItem(it rlp.Item) (*Transaction, error) {
	if it.Kind != rlp.KindList || len(it.List) != 9 {
		return nil, errors.New("types: decode tx: want 9-element list")
	}
	var tx Transaction
	var err error
	get := func(i int) uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = it.List[i].AsUint64()
		return v
	}
	tx.Kind = TxKind(get(0))
	tx.Nonce = get(1)
	if err != nil {
		return nil, fmt.Errorf("types: decode tx: %w", err)
	}
	if copyExact(tx.From[:], it.List[2].Str) != nil || copyExact(tx.To[:], it.List[3].Str) != nil {
		return nil, errors.New("types: decode tx: bad address length")
	}
	tx.Value = Amount(get(4))
	tx.GasLimit = get(5)
	tx.GasPrice = Amount(get(6))
	if err != nil {
		return nil, fmt.Errorf("types: decode tx: %w", err)
	}
	tx.Data = append([]byte(nil), it.List[7].Str...)
	sig, err := secp256k1.ParseSignature(it.List[8].Str)
	if err != nil {
		return nil, fmt.Errorf("types: decode tx signature: %w", err)
	}
	tx.Sig = sig
	return &tx, nil
}

// EncodeBlock serializes a block for network transport.
func EncodeBlock(b *Block) []byte {
	txItems := make([]rlp.Item, len(b.Txs))
	for i, tx := range b.Txs {
		encoded, decodeErr := rlp.Decode(EncodeTx(tx))
		if decodeErr != nil {
			panic("types: EncodeTx produced invalid RLP: " + decodeErr.Error())
		}
		txItems[i] = encoded
	}
	return rlp.Encode(rlp.List(b.Header.rlpItem(), rlp.List(txItems...)))
}

// DecodeBlock parses a block from its transport encoding.
func DecodeBlock(data []byte) (*Block, error) {
	it, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("types: decode block: %w", err)
	}
	if it.Kind != rlp.KindList || len(it.List) != 2 {
		return nil, errors.New("types: decode block: want [header, txs]")
	}
	hdr, err := headerFromItem(it.List[0])
	if err != nil {
		return nil, err
	}
	txsItem := it.List[1]
	if txsItem.Kind != rlp.KindList {
		return nil, errors.New("types: decode block: txs is not a list")
	}
	blk := &Block{Header: hdr, Txs: make([]*Transaction, 0, len(txsItem.List))}
	for i, txIt := range txsItem.List {
		tx, err := txFromItem(txIt)
		if err != nil {
			return nil, fmt.Errorf("types: decode block tx %d: %w", i, err)
		}
		blk.Txs = append(blk.Txs, tx)
	}
	return blk, nil
}

func headerFromItem(it rlp.Item) (Header, error) {
	if it.Kind != rlp.KindList || len(it.List) != 8 {
		return Header{}, errors.New("types: decode header: want 8-element list")
	}
	var h Header
	var err error
	get := func(i int) uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = it.List[i].AsUint64()
		return v
	}
	if copyExact(h.ParentID[:], it.List[0].Str) != nil {
		return Header{}, errors.New("types: decode header: bad parent id")
	}
	h.Number = get(1)
	h.Time = get(2)
	h.Difficulty = get(3)
	h.Nonce = get(4)
	if err != nil {
		return Header{}, fmt.Errorf("types: decode header: %w", err)
	}
	if copyExact(h.Miner[:], it.List[5].Str) != nil ||
		copyExact(h.TxRoot[:], it.List[6].Str) != nil ||
		copyExact(h.StateRoot[:], it.List[7].Str) != nil {
		return Header{}, errors.New("types: decode header: bad field length")
	}
	return h, nil
}

func copyExact(dst, src []byte) error {
	if len(src) != len(dst) {
		return errors.New("length mismatch")
	}
	copy(dst, src)
	return nil
}
