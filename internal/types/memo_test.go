package types

import (
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// memoTx builds a signed transfer for the memoization tests.
func memoTx(t *testing.T) *Transaction {
	t.Helper()
	w := wallet.NewDeterministic("memo")
	tx := &Transaction{
		Kind:     TxTransfer,
		Nonce:    7,
		To:       Address{0xAA},
		Value:    1234,
		GasLimit: 21_000,
		GasPrice: 50,
		Data:     []byte{1, 2, 3},
	}
	if err := SignTx(tx, w); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTxHashMemoStableAndInvalidatedByMutation(t *testing.T) {
	tx := memoTx(t)
	h1 := tx.Hash()
	if tx.Hash() != h1 {
		t.Fatal("repeated Hash() differs on unchanged tx")
	}

	// Every hashed field must invalidate the memo when mutated — and
	// restore the original digest when mutated back.
	mutations := []struct {
		name         string
		mutate, undo func()
	}{
		{"nonce", func() { tx.Nonce++ }, func() { tx.Nonce-- }},
		{"to", func() { tx.To[0] ^= 0xFF }, func() { tx.To[0] ^= 0xFF }},
		{"value", func() { tx.Value++ }, func() { tx.Value-- }},
		{"gasLimit", func() { tx.GasLimit++ }, func() { tx.GasLimit-- }},
		{"gasPrice", func() { tx.GasPrice++ }, func() { tx.GasPrice-- }},
		{"data in place", func() { tx.Data[0] ^= 0xFF }, func() { tx.Data[0] ^= 0xFF }},
		{"data reslice", func() { tx.Data = append(tx.Data, 9) }, func() { tx.Data = tx.Data[:3] }},
	}
	for _, m := range mutations {
		m.mutate()
		if tx.Hash() == h1 {
			t.Errorf("%s: Hash() served stale memo after mutation", m.name)
		}
		m.undo()
		if tx.Hash() != h1 {
			t.Errorf("%s: Hash() did not recover original digest after undo", m.name)
		}
	}
}

func TestTxSigHashMemoCoversDataButNotSignature(t *testing.T) {
	tx := memoTx(t)
	s1 := tx.SigHash()
	h1 := tx.Hash()

	// Re-signing changes Hash (signature is hashed) but not SigHash.
	if err := SignTx(tx, wallet.NewDeterministic("other")); err != nil {
		t.Fatal(err)
	}
	if tx.SigHash() == s1 {
		t.Error("SigHash unchanged although From changed with the new signer")
	}
	if tx.Hash() == h1 {
		t.Error("Hash unchanged after re-signing")
	}

	// Same content signed by the original key must reproduce both digests.
	if err := SignTx(tx, wallet.NewDeterministic("memo")); err != nil {
		t.Fatal(err)
	}
	if tx.SigHash() != s1 || tx.Hash() != h1 {
		t.Error("digests not restored after re-signing with the original key")
	}

	// In-place Data tampering flips SigHash too.
	tx.Data[1] ^= 0xFF
	if tx.SigHash() == s1 {
		t.Error("SigHash served stale memo after Data tampering")
	}
}

func TestBlockIDMemoFollowsHeaderMutation(t *testing.T) {
	blk := &Block{Header: Header{Number: 3, Time: 99, Difficulty: 1000}}
	id1 := blk.ID()
	if id1 != blk.Header.ID() {
		t.Fatal("memoized block ID differs from header hash")
	}
	if blk.ID() != id1 {
		t.Fatal("repeated ID() differs on unchanged header")
	}

	// A sealer grinding the nonce mutates the header in place: the memo
	// must never serve the pre-mutation hash.
	for nonce := uint64(1); nonce <= 5; nonce++ {
		blk.Header.Nonce = nonce
		if got, want := blk.ID(), blk.Header.ID(); got != want {
			t.Fatalf("nonce %d: memoized ID %s, header hash %s", nonce, got.Short(), want.Short())
		}
	}
	blk.Header.Nonce = 0
	if blk.ID() != id1 {
		t.Error("ID not restored after reverting the header")
	}
}
