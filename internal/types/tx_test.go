package types

import (
	"errors"
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

func signedTransfer(t *testing.T, from *wallet.Wallet, to Address, value Amount, nonce uint64) *Transaction {
	t.Helper()
	tx := &Transaction{
		Kind:     TxTransfer,
		Nonce:    nonce,
		To:       to,
		Value:    value,
		GasLimit: 21_000,
		GasPrice: 50 * GWei,
	}
	if err := SignTx(tx, from); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTransferSignAndValidate(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")
	tx := signedTransfer(t, alice, bob.Address(), EtherAmount(1), 0)
	if err := tx.ValidateBasic(); err != nil {
		t.Fatalf("valid transfer rejected: %v", err)
	}
	sender, err := tx.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if sender != alice.Address() {
		t.Errorf("sender = %s, want %s", sender, alice.Address())
	}
}

func TestTamperedTxRejected(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")
	mallory := wallet.NewDeterministic("mallory")

	t.Run("value raised after signing", func(t *testing.T) {
		tx := signedTransfer(t, alice, bob.Address(), EtherAmount(1), 0)
		tx.Value = EtherAmount(1000)
		if _, err := tx.Sender(); err == nil {
			t.Error("tampered value accepted")
		}
	})

	t.Run("recipient redirected", func(t *testing.T) {
		tx := signedTransfer(t, alice, bob.Address(), EtherAmount(1), 0)
		tx.To = mallory.Address()
		if _, err := tx.Sender(); err == nil {
			t.Error("redirected recipient accepted")
		}
	})

	t.Run("from impersonated", func(t *testing.T) {
		tx := signedTransfer(t, mallory, bob.Address(), EtherAmount(1), 0)
		tx.From = alice.Address() // claim to be alice with mallory's signature
		if _, err := tx.Sender(); !errors.Is(err, ErrTxWrongSender) && err == nil {
			t.Errorf("impersonation accepted: err = %v", err)
		}
	})
}

func TestValidateBasicKindAndGas(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	tx := signedTransfer(t, alice, Address{}, 1, 0)
	tx.Kind = TxKind(99)
	if err := tx.ValidateBasic(); !errors.Is(err, ErrTxBadKind) {
		t.Errorf("bad kind: err = %v", err)
	}

	tx2 := &Transaction{Kind: TxTransfer, GasLimit: 0}
	if err := tx2.ValidateBasic(); !errors.Is(err, ErrTxNoGas) {
		t.Errorf("zero gas: err = %v", err)
	}
}

func TestSRATransactionLifecycle(t *testing.T) {
	provider := wallet.NewDeterministic("provider")
	s := testSRA(t, provider)
	tx := NewSRATx(s, 0, 2_000_000, 50*GWei)
	if err := SignTx(tx, provider); err != nil {
		t.Fatal(err)
	}
	if err := tx.ValidateBasic(); err != nil {
		t.Fatalf("valid SRA tx rejected: %v", err)
	}
	decoded, err := tx.SRA()
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID != s.ID {
		t.Error("SRA payload lost identity through tx")
	}
}

func TestSRATxMustAttachInsurance(t *testing.T) {
	provider := wallet.NewDeterministic("provider")
	s := testSRA(t, provider)
	tx := NewSRATx(s, 0, 2_000_000, 50*GWei)
	tx.Value = 0 // strip the escrow deposit
	if err := SignTx(tx, provider); err != nil {
		t.Fatal(err)
	}
	if err := tx.ValidateBasic(); err == nil {
		t.Error("SRA tx without attached insurance accepted")
	}
}

func TestSRATxSenderMustBeProvider(t *testing.T) {
	provider := wallet.NewDeterministic("provider")
	mallory := wallet.NewDeterministic("mallory")
	s := testSRA(t, provider)
	tx := NewSRATx(s, 0, 2_000_000, 50*GWei)
	if err := SignTx(tx, mallory); err != nil { // mallory relays the victim's SRA
		t.Fatal(err)
	}
	if err := tx.ValidateBasic(); err == nil {
		t.Error("SRA tx relayed by non-provider accepted")
	}
}

func TestReportTransactionsLifecycle(t *testing.T) {
	detector := wallet.NewDeterministic("detector")
	sraID := HashBytes([]byte("sra"))
	initial, detailed := buildReportPair(t, detector, sraID, sampleFindings())

	itx := NewInitialReportTx(initial, 0, 200_000, 50*GWei)
	if err := SignTx(itx, detector); err != nil {
		t.Fatal(err)
	}
	if err := itx.ValidateBasic(); err != nil {
		t.Fatalf("valid R† tx rejected: %v", err)
	}

	dtx := NewDetailedReportTx(detailed, 1, 200_000, 50*GWei)
	if err := SignTx(dtx, detector); err != nil {
		t.Fatal(err)
	}
	if err := dtx.ValidateBasic(); err != nil {
		t.Fatalf("valid R* tx rejected: %v", err)
	}

	gotInitial, err := itx.InitialReport()
	if err != nil {
		t.Fatal(err)
	}
	gotDetailed, err := dtx.DetailedReport()
	if err != nil {
		t.Fatal(err)
	}
	if err := gotDetailed.VerifyAgainstCommitment(gotInitial); err != nil {
		t.Errorf("roundtripped pair no longer linked: %v", err)
	}
}

func TestReportTxSenderMustBeDetector(t *testing.T) {
	detector := wallet.NewDeterministic("detector")
	mallory := wallet.NewDeterministic("mallory")
	initial, _ := buildReportPair(t, detector, HashBytes([]byte("sra")), sampleFindings())
	tx := NewInitialReportTx(initial, 0, 200_000, 50*GWei)
	if err := SignTx(tx, mallory); err != nil {
		t.Fatal(err)
	}
	if err := tx.ValidateBasic(); err == nil {
		t.Error("R† tx submitted by non-detector accepted")
	}
}

func TestWrongPayloadAccessors(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	tx := signedTransfer(t, alice, Address{}, 1, 0)
	if _, err := tx.SRA(); !errors.Is(err, ErrTxWrongPayload) {
		t.Errorf("SRA() on transfer: err = %v", err)
	}
	if _, err := tx.InitialReport(); !errors.Is(err, ErrTxWrongPayload) {
		t.Errorf("InitialReport() on transfer: err = %v", err)
	}
	if _, err := tx.DetailedReport(); !errors.Is(err, ErrTxWrongPayload) {
		t.Errorf("DetailedReport() on transfer: err = %v", err)
	}
}

func TestTxHashCoversSignature(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	a := signedTransfer(t, alice, Address{}, 1, 0)
	b := signedTransfer(t, alice, Address{}, 1, 0)
	if a.Hash() != b.Hash() {
		t.Error("deterministic signing should produce identical tx hashes")
	}
	if a.SigHash() == a.Hash() {
		t.Error("tx hash must differ from the signing hash")
	}
}

func TestTxFeeAndCost(t *testing.T) {
	tx := &Transaction{Value: EtherAmount(2), GasLimit: 1000, GasPrice: 3}
	if tx.Fee() != 3000 {
		t.Errorf("Fee = %d, want 3000", tx.Fee())
	}
	if tx.Cost() != EtherAmount(2)+3000 {
		t.Errorf("Cost = %d", tx.Cost())
	}
}

func TestTxEncodeDecodeRoundtrip(t *testing.T) {
	alice := wallet.NewDeterministic("alice")
	bob := wallet.NewDeterministic("bob")
	tx := signedTransfer(t, alice, bob.Address(), EtherAmount(7), 42)
	decoded, err := DecodeTx(EncodeTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Hash() != tx.Hash() {
		t.Error("tx roundtrip changed hash")
	}
	if err := decoded.ValidateBasic(); err != nil {
		t.Errorf("roundtripped tx invalid: %v", err)
	}
}

func TestDecodeTxRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0x80}, {0xc0}, {0xc3, 1, 2, 3}} {
		if _, err := DecodeTx(data); err == nil {
			t.Errorf("DecodeTx accepted %x", data)
		}
	}
}

func TestAmountUnits(t *testing.T) {
	if EtherAmount(3) != 3*Ether {
		t.Error("EtherAmount mismatch")
	}
	if got := EtherAmount(5).Ether(); got != 5.0 {
		t.Errorf("Ether() = %v, want 5.0", got)
	}
	if Ether != 1e9*GWei || Finny != 1e6*GWei || KEth != 1000*Ether {
		t.Error("unit ladder inconsistent")
	}
}

func TestSeverityValidity(t *testing.T) {
	for _, s := range []Severity{SeverityLow, SeverityMedium, SeverityHigh} {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	for _, s := range []Severity{0, 4, -1} {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
	if SeverityHigh.String() != "high" || SeverityLow.String() != "low" || SeverityMedium.String() != "medium" {
		t.Error("severity names wrong")
	}
}

func TestTxKindStrings(t *testing.T) {
	kinds := map[TxKind]string{
		TxTransfer:       "transfer",
		TxContractCreate: "contract-create",
		TxContractCall:   "contract-call",
		TxSRA:            "sra",
		TxInitialReport:  "initial-report",
		TxDetailedReport: "detailed-report",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
		if !k.Valid() {
			t.Errorf("%s should be valid", want)
		}
	}
	if TxKind(0).Valid() || TxKind(7).Valid() {
		t.Error("out-of-range kinds should be invalid")
	}
}
