package detection

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// The paper's §VIII "Detection capability" discussion: detectors and
// providers build capability by (i) constructing vulnerability/virus
// libraries from published sources (CVE, NVD, SecurityFocus) — static
// signature scanning — or (ii) running dynamic/fuzz testing. This file
// models both, plus the composite "N-version" detection the paper
// motivates with CloudAV.

// Signature is one known-vulnerability record in a library, CVE-style.
type Signature struct {
	// VulnID is the canonical identifier the signature matches.
	VulnID string
	// Source names the feed the signature came from (CVE, NVD, ...).
	Source string
	// Severity is the published risk class.
	Severity types.Severity
}

// VulnLibrary is a signature database assembled from public feeds — the
// paper's "construct their own vulnerability/virus libraries, for example,
// integrating the published CVE, NVD, and SecurityFocus".
type VulnLibrary struct {
	signatures map[string]Signature
}

// NewVulnLibrary creates an empty library.
func NewVulnLibrary() *VulnLibrary {
	return &VulnLibrary{signatures: make(map[string]Signature)}
}

// Add records a signature, overwriting earlier entries for the same id.
func (l *VulnLibrary) Add(sig Signature) {
	l.signatures[sig.VulnID] = sig
}

// Merge imports every signature from another library (feed integration).
func (l *VulnLibrary) Merge(other *VulnLibrary) {
	for _, sig := range other.signatures {
		l.Add(sig)
	}
}

// Has reports whether the library knows the vulnerability.
func (l *VulnLibrary) Has(vulnID string) bool {
	_, ok := l.signatures[vulnID]
	return ok
}

// Len returns the signature count.
func (l *VulnLibrary) Len() int { return len(l.signatures) }

// FeedFromImage builds a feed covering a fraction of an image's ground
// truth — a stand-in for the public disclosure process that populates CVE
// databases. Deterministic for a (source, seed) pair.
func FeedFromImage(img *SystemImage, source string, coverage float64, seed int64) *VulnLibrary {
	rng := rand.New(rand.NewSource(seed))
	lib := NewVulnLibrary()
	for _, v := range img.Vulns {
		if rng.Float64() < coverage {
			lib.Add(Signature{VulnID: v.ID, Source: source, Severity: v.Severity})
		}
	}
	return lib
}

// LibraryEngine is a static signature scanner: it finds exactly the
// vulnerabilities its library knows, quickly and deterministically.
type LibraryEngine struct {
	// Name labels the detector.
	Name string
	// Library is the signature database.
	Library *VulnLibrary
	// ScanTime is the flat time a signature pass takes.
	ScanTime time.Duration
}

var _ Engine = (*LibraryEngine)(nil)

// Scan implements Engine: signature matching against ground truth.
func (e *LibraryEngine) Scan(img *SystemImage) []Detection {
	if e.Library == nil {
		return nil
	}
	scan := e.ScanTime
	if scan <= 0 {
		scan = 30 * time.Second
	}
	var out []Detection
	for _, v := range img.Vulns {
		if !e.Library.Has(v.ID) {
			continue
		}
		out = append(out, Detection{
			Finding: types.Finding{
				VulnID:   v.ID,
				Severity: v.Severity,
				Evidence: fmt.Sprintf("signature match by %s", e.Name),
			},
			After: scan,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Finding.VulnID < out[j].Finding.VulnID })
	return out
}

// FuzzingEngine models dynamic/fuzz testing: each campaign iteration has
// an independent chance of triggering each vulnerability, so coverage
// grows with the iteration budget — unlike signature scanning it can find
// unpublished flaws, but it is slow and probabilistic.
type FuzzingEngine struct {
	// Name labels the detector.
	Name string
	// Iterations is the campaign budget.
	Iterations int
	// HitRate is the per-iteration trigger probability for an average
	// vulnerability (scaled down by subtlety).
	HitRate float64
	// IterationTime is the duration of one iteration.
	IterationTime time.Duration
	// Seed makes campaigns deterministic.
	Seed int64
}

var _ Engine = (*FuzzingEngine)(nil)

// Scan implements Engine: a fuzzing campaign over the image.
func (e *FuzzingEngine) Scan(img *SystemImage) []Detection {
	iterations := e.Iterations
	if iterations <= 0 {
		iterations = 1000
	}
	hit := e.HitRate
	if hit <= 0 {
		hit = 0.001
	}
	iterTime := e.IterationTime
	if iterTime <= 0 {
		iterTime = 100 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(e.Seed ^ int64(img.Hash()[1])<<24))
	var out []Detection
	for _, v := range img.Vulns {
		p := hit * (1 - v.Subtlety/2)
		// First triggering iteration ~ geometric(p).
		if p <= 0 {
			continue
		}
		trigger := 1 + int(rng.ExpFloat64()/p)
		if trigger > iterations {
			continue // budget exhausted before the crash reproduced
		}
		out = append(out, Detection{
			Finding: types.Finding{
				VulnID:   v.ID,
				Severity: v.Severity,
				Evidence: fmt.Sprintf("crash reproduced by %s after %d iterations", e.Name, trigger),
			},
			After: time.Duration(trigger) * iterTime,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].After < out[j].After })
	return out
}

// CompositeEngine runs several engines and merges their findings — the
// N-version protection of CloudAV that the paper builds on: engines with
// complementary blind spots cover more together.
type CompositeEngine struct {
	// Name labels the detector.
	Name string
	// Engines are the component analyzers.
	Engines []Engine
}

var _ Engine = (*CompositeEngine)(nil)

// Scan implements Engine: union of component findings, keeping the
// earliest discovery per vulnerability.
func (e *CompositeEngine) Scan(img *SystemImage) []Detection {
	best := make(map[string]Detection)
	for _, engine := range e.Engines {
		for _, d := range engine.Scan(img) {
			if prev, ok := best[d.Finding.VulnID]; !ok || d.After < prev.After {
				best[d.Finding.VulnID] = d
			}
		}
	}
	out := make([]Detection, 0, len(best))
	for _, d := range best {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Finding.VulnID < out[j].Finding.VulnID })
	return out
}

// AggregateFindings merges findings reported by multiple detectors into
// one deduplicated reference, resolving the paper's §VIII "N-version
// vulnerability descriptions" problem: the same vulnerability reported
// with differently-worded evidence collapses onto its canonical VulnID,
// evidence strings concatenated for audit.
func AggregateFindings(reports ...[]types.Finding) []types.Finding {
	type slot struct {
		finding  types.Finding
		evidence []string
	}
	merged := make(map[string]*slot)
	for _, report := range reports {
		for _, f := range report {
			s, ok := merged[f.VulnID]
			if !ok {
				s = &slot{finding: f}
				merged[f.VulnID] = s
			}
			if f.Evidence != "" {
				duplicate := false
				for _, e := range s.evidence {
					if e == f.Evidence {
						duplicate = true
						break
					}
				}
				if !duplicate {
					s.evidence = append(s.evidence, f.Evidence)
				}
			}
			// Keep the highest severity claim (conservative for consumers).
			if f.Severity > s.finding.Severity {
				s.finding.Severity = f.Severity
			}
		}
	}
	out := make([]types.Finding, 0, len(merged))
	for _, s := range merged {
		s.finding.Evidence = strings.Join(s.evidence, " | ")
		out = append(out, s.finding)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VulnID < out[j].VulnID })
	return out
}
