package detection

import (
	"strings"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestGenerateImageDeterministic(t *testing.T) {
	spec := UniverseSpec{High: 3, Medium: 5, Low: 7, Seed: 42}
	a := GenerateImage("fw", "1.0", spec)
	b := GenerateImage("fw", "1.0", spec)
	if a.Hash() != b.Hash() {
		t.Error("image hash not deterministic")
	}
	if len(a.Vulns) != 15 || len(b.Vulns) != 15 {
		t.Fatalf("universe size = %d, want 15", len(a.Vulns))
	}
	for i := range a.Vulns {
		if a.Vulns[i] != b.Vulns[i] {
			t.Fatal("universe not deterministic")
		}
	}
	counts := a.CountBySeverity()
	if counts[types.SeverityHigh] != 3 || counts[types.SeverityMedium] != 5 || counts[types.SeverityLow] != 7 {
		t.Errorf("severity counts %v", counts)
	}
}

func TestGenerateImageUniqueIDs(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 10, Medium: 10, Low: 10, Seed: 1})
	seen := make(map[string]bool)
	for _, v := range img.Vulns {
		if seen[v.ID] {
			t.Fatalf("duplicate vuln id %s", v.ID)
		}
		seen[v.ID] = true
		if v.Subtlety <= 0 || v.Subtlety > 1 {
			t.Errorf("subtlety %v out of range", v.Subtlety)
		}
	}
}

func TestCapabilityEngineFindsMoreWithHigherCapability(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 30, Medium: 60, Low: 110, Seed: 7})
	weak := &CapabilityEngine{Name: "weak", Capability: 0.2, Speed: 1, Seed: 5}
	strong := &CapabilityEngine{Name: "strong", Capability: 0.9, Speed: 1, Seed: 5}
	nWeak, nStrong := len(weak.Scan(img)), len(strong.Scan(img))
	if nWeak >= nStrong {
		t.Errorf("weak found %d, strong %d", nWeak, nStrong)
	}
	if nStrong == 0 {
		t.Error("strong engine found nothing")
	}
}

func TestCapabilityEngineOnlyReportsRealVulns(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 5, Medium: 5, Low: 5, Seed: 3})
	truth := make(map[string]bool)
	for _, v := range img.Vulns {
		truth[v.ID] = true
	}
	e := &CapabilityEngine{Name: "d", Capability: 1.0, Speed: 2, Seed: 11}
	for _, d := range e.Scan(img) {
		if !truth[d.Finding.VulnID] {
			t.Errorf("engine reported nonexistent %s", d.Finding.VulnID)
		}
	}
}

func TestCapabilityEngineScanSortedByTime(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 20, Medium: 20, Low: 20, Seed: 9})
	e := &CapabilityEngine{Name: "d", Capability: 0.8, Speed: 1, Seed: 2}
	ds := e.Scan(img)
	for i := 1; i < len(ds); i++ {
		if ds[i].After < ds[i-1].After {
			t.Fatal("detections not time-sorted")
		}
	}
}

func TestCapabilityEngineSpeedShortensSearch(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 40, Medium: 80, Low: 120, Seed: 4})
	slow := &CapabilityEngine{Name: "s", Capability: 1, Speed: 1, MeanFindTime: time.Minute, Seed: 8}
	fast := &CapabilityEngine{Name: "f", Capability: 1, Speed: 8, MeanFindTime: time.Minute, Seed: 8}
	avg := func(ds []Detection) time.Duration {
		var sum time.Duration
		for _, d := range ds {
			sum += d.After
		}
		return sum / time.Duration(len(ds))
	}
	if avg(fast.Scan(img)) >= avg(slow.Scan(img)) {
		t.Error("8-thread engine not faster than 1-thread")
	}
}

func TestForgingEngineFindingsFailAutoVerif(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 5, Medium: 5, Low: 5, Seed: 6})
	v := NewGroundTruthVerifier(false)
	sraID := types.HashBytes([]byte("sra"))
	v.Register(sraID, img)

	forger := &ForgingEngine{Name: "evil", Count: 4}
	for _, d := range forger.Scan(img) {
		if v.AutoVerif(sraID, d.Finding) {
			t.Errorf("forged finding %s passed AutoVerif", d.Finding.VulnID)
		}
	}
}

func TestGroundTruthVerifier(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 2, Medium: 0, Low: 0, Seed: 6})
	sraID := types.HashBytes([]byte("sra"))
	v := NewGroundTruthVerifier(false)
	if v.Known(sraID) {
		t.Error("verifier knows an unregistered SRA")
	}
	v.Register(sraID, img)
	if !v.Known(sraID) {
		t.Error("registration lost")
	}
	real := types.Finding{VulnID: img.Vulns[0].ID, Severity: img.Vulns[0].Severity}
	if !v.AutoVerif(sraID, real) {
		t.Error("genuine finding rejected")
	}
	if v.AutoVerif(sraID, types.Finding{VulnID: "NOPE", Severity: types.SeverityHigh}) {
		t.Error("fabricated finding accepted")
	}
	if v.AutoVerif(types.HashBytes([]byte("other")), real) {
		t.Error("finding verified against wrong SRA")
	}
}

func TestGroundTruthVerifierStrictSeverity(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 1, Medium: 0, Low: 0, Seed: 6})
	sraID := types.HashBytes([]byte("sra"))
	strict := NewGroundTruthVerifier(true)
	strict.Register(sraID, img)
	misclassified := types.Finding{VulnID: img.Vulns[0].ID, Severity: types.SeverityLow}
	if strict.AutoVerif(sraID, misclassified) {
		t.Error("strict verifier accepted wrong severity")
	}
	lax := NewGroundTruthVerifier(false)
	lax.Register(sraID, img)
	if !lax.AutoVerif(sraID, misclassified) {
		t.Error("lax verifier rejected correct vuln id")
	}
}

func TestPlagiarizingEngine(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 3, Medium: 0, Low: 0, Seed: 6})
	honest := &CapabilityEngine{Name: "honest", Capability: 1, Seed: 1}
	victimFindings := honest.Scan(img)

	thief := &PlagiarizingEngine{Name: "thief"}
	if len(thief.Scan(img)) != 0 {
		t.Error("plagiarist found something without observing")
	}
	for _, d := range victimFindings {
		thief.Observe([]types.Finding{d.Finding})
	}
	stolen := thief.Scan(img)
	if len(stolen) != len(victimFindings) {
		t.Errorf("stolen %d, observed %d", len(stolen), len(victimFindings))
	}
}

func TestTableIServiceCountsMatchPaper(t *testing.T) {
	apps := TableIApps()
	services := TableIServices()
	for _, svc := range services {
		for _, app := range apps {
			got := CountBySeverity(svc.Scan(app))
			want := svc.Counts[app.Name]
			if got != want {
				t.Errorf("%s on %s: counts %v, want %v", svc.Name, app.Name, got, want)
			}
		}
	}
}

func TestTableIServicesPartialOverlap(t *testing.T) {
	apps := TableIApps()
	quixxi := TableIServices()[1]
	jaq := TableIServices()[3]
	for _, app := range apps {
		a, b := quixxi.Scan(app), jaq.Scan(app)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("%s: empty scans", app.Name)
		}
		o := Overlap(quixxi.Name, a, jaq.Name, b)
		if o.Jaccard() >= 0.9 {
			t.Errorf("%s: services nearly identical (jaccard %.2f) — Table I requires partial overlap",
				app.Name, o.Jaccard())
		}
	}
}

func TestServiceScanDeterministic(t *testing.T) {
	app := TableIApps()[0]
	svc := TableIServices()[3]
	a, b := svc.Scan(app), svc.Scan(app)
	if len(a) != len(b) {
		t.Fatal("scan sizes differ")
	}
	for i := range a {
		if a[i].Finding.VulnID != b[i].Finding.VulnID {
			t.Fatal("scan not deterministic")
		}
	}
}

func TestServiceScanUnknownApp(t *testing.T) {
	svc := TableIServices()[1]
	other := GenerateImage("unknown-app", "9", UniverseSpec{High: 5, Seed: 1})
	if got := svc.Scan(other); got != nil {
		t.Errorf("service scanned unknown app: %d findings", len(got))
	}
}

func TestOverlapStats(t *testing.T) {
	mk := func(ids ...string) []Detection {
		out := make([]Detection, len(ids))
		for i, id := range ids {
			out[i] = Detection{Finding: types.Finding{VulnID: id}}
		}
		return out
	}
	o := Overlap("a", mk("x", "y", "z"), "b", mk("y", "z", "w"))
	if o.Intersect != 2 || o.SizeA != 3 || o.SizeB != 3 {
		t.Errorf("overlap %+v", o)
	}
	if j := o.Jaccard(); j < 0.49 || j > 0.51 {
		t.Errorf("jaccard %v, want 0.5", j)
	}
	empty := Overlap("a", nil, "b", nil)
	if empty.Jaccard() != 0 {
		t.Error("empty jaccard should be 0")
	}
}

func TestEvidenceMentionsEngine(t *testing.T) {
	img := GenerateImage("fw", "1.0", UniverseSpec{High: 10, Medium: 0, Low: 0, Seed: 2})
	e := &CapabilityEngine{Name: "scanner-7", Capability: 1, Seed: 1}
	ds := e.Scan(img)
	if len(ds) == 0 {
		t.Fatal("no detections")
	}
	if !strings.Contains(ds[0].Finding.Evidence, "scanner-7") {
		t.Error("evidence does not attribute the engine")
	}
}
