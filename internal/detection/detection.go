// Package detection models the security-detection substrate of SmartCrowd:
// IoT system images with seeded vulnerability universes, detector engines
// with configurable capability (the DC_i of paper §VI-B), the third-party
// scanning services of Table I, attack engines (forgery, plagiarism), and
// the ground-truth AutoVerif implementation (paper Eq. 6) that IoT
// providers use to verify detection reports.
//
// The paper exercises its prototype against real Android IoT apps scanned
// by commercial services; this package substitutes a synthetic
// vulnerability universe that reproduces the same statistics: per-service
// finding counts, partial cross-service overlap, and capability-
// proportional detection races.
package detection

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// Vulnerability is one ground-truth flaw in a system image.
type Vulnerability struct {
	// ID is the canonical identifier (what AutoVerif keys on).
	ID string
	// Severity is the risk class.
	Severity types.Severity
	// Subtlety in (0, 1] scales how hard the flaw is to find: detection
	// rate multiplies by (1 − Subtlety/2).
	Subtlety float64
}

// SystemImage is a released IoT system with its (hidden) ground truth.
type SystemImage struct {
	// Name and Version identify the release (U_n, U_v).
	Name    string
	Version string
	// Payload is the simulated binary; its hash is the SRA's U_h.
	Payload []byte
	// Vulns is the ground-truth vulnerability universe. Only AutoVerif
	// and the workload generator see it; detector engines must *search*.
	Vulns []Vulnerability
}

// Hash returns U_h for the image payload.
func (img *SystemImage) Hash() types.Hash { return types.HashBytes(img.Payload) }

// CountBySeverity tallies the ground truth per severity.
func (img *SystemImage) CountBySeverity() map[types.Severity]int {
	out := make(map[types.Severity]int, 3)
	for _, v := range img.Vulns {
		out[v.Severity]++
	}
	return out
}

// UniverseSpec sizes a generated vulnerability universe.
type UniverseSpec struct {
	High, Medium, Low int
	// Seed drives deterministic generation.
	Seed int64
}

// GenerateImage builds a system image with a seeded universe. Identifiers
// are stable for a given (name, version, spec) so experiments reproduce.
func GenerateImage(name, version string, spec UniverseSpec) *SystemImage {
	rng := rand.New(rand.NewSource(spec.Seed))
	img := &SystemImage{
		Name:    name,
		Version: version,
		Payload: []byte(fmt.Sprintf("image:%s:%s:%d", name, version, spec.Seed)),
	}
	add := func(sev types.Severity, label string, count int) {
		for i := 0; i < count; i++ {
			img.Vulns = append(img.Vulns, Vulnerability{
				ID:       fmt.Sprintf("SC-%s-%s-%s-%03d", name, version, label, i),
				Severity: sev,
				Subtlety: 0.1 + 0.8*rng.Float64(),
			})
		}
	}
	add(types.SeverityHigh, "H", spec.High)
	add(types.SeverityMedium, "M", spec.Medium)
	add(types.SeverityLow, "L", spec.Low)
	return img
}

// Detection is one engine finding with the simulated time the engine
// needed to uncover it (drives first-reporter races).
type Detection struct {
	Finding types.Finding
	// After is the search time from release to discovery.
	After time.Duration
}

// Engine is a detector's analysis capability: given an image it returns
// the vulnerabilities it manages to uncover. Engines stand in for the
// paper's examples (Vigilante/CloudAV engines or services like Quixxi).
type Engine interface {
	// Scan searches the image and reports discoveries.
	Scan(img *SystemImage) []Detection
}

// CapabilityEngine finds each vulnerability with probability proportional
// to its capability, in exponential time inversely proportional to its
// speed — the DC_i model of paper §VI-B, where more threads mean faster,
// more complete detection.
type CapabilityEngine struct {
	// Name labels the detector.
	Name string
	// Capability in [0, 1] is DC_i: the per-vulnerability discovery
	// probability before subtlety scaling.
	Capability float64
	// Speed scales search rate; the paper varies detector threads 1-8.
	Speed float64
	// MeanFindTime is the average time a Speed-1 engine needs per
	// discovery.
	MeanFindTime time.Duration
	// Seed makes scans deterministic.
	Seed int64
}

var _ Engine = (*CapabilityEngine)(nil)

// Scan implements Engine.
func (e *CapabilityEngine) Scan(img *SystemImage) []Detection {
	rng := rand.New(rand.NewSource(e.Seed ^ int64(img.Hash()[0])<<32 ^ int64(len(img.Payload))))
	speed := e.Speed
	if speed <= 0 {
		speed = 1
	}
	mean := e.MeanFindTime
	if mean <= 0 {
		mean = time.Minute
	}
	var out []Detection
	for _, v := range img.Vulns {
		pFind := e.Capability * (1 - v.Subtlety/2)
		if rng.Float64() >= pFind {
			continue
		}
		after := time.Duration(rng.ExpFloat64() * float64(mean) / speed)
		out = append(out, Detection{
			Finding: types.Finding{
				VulnID:   v.ID,
				Severity: v.Severity,
				Evidence: fmt.Sprintf("found by %s after %s", e.Name, after.Round(time.Millisecond)),
			},
			After: after,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].After < out[j].After })
	return out
}

// ForgingEngine fabricates findings that do not exist in the image — the
// compromised detector of paper §III-A that "declares a forged detection
// report without even having detected the IoT system". AutoVerif must
// reject every one of its findings.
type ForgingEngine struct {
	// Name labels the attacker.
	Name string
	// Count is how many fake findings to fabricate per scan.
	Count int
}

var _ Engine = (*ForgingEngine)(nil)

// Scan implements Engine by inventing vulnerabilities.
func (e *ForgingEngine) Scan(img *SystemImage) []Detection {
	out := make([]Detection, 0, e.Count)
	for i := 0; i < e.Count; i++ {
		out = append(out, Detection{
			Finding: types.Finding{
				VulnID:   fmt.Sprintf("FORGED-%s-%03d", e.Name, i),
				Severity: types.SeverityHigh,
				Evidence: "fabricated",
			},
			After: time.Millisecond, // forging is instant
		})
	}
	return out
}

// PlagiarizingEngine performs no analysis; it copies whatever findings it
// has observed from other detectors' revealed reports (paper §III-A:
// "plagiarize detection results of benign detectors").
type PlagiarizingEngine struct {
	// Name labels the attacker.
	Name string
	// Observed is the stolen finding set, updated as reveals are seen.
	Observed []types.Finding
}

var _ Engine = (*PlagiarizingEngine)(nil)

// Observe records findings gleaned from the victim's revealed reports.
func (e *PlagiarizingEngine) Observe(findings []types.Finding) {
	e.Observed = append(e.Observed, findings...)
}

// Scan implements Engine by replaying stolen findings.
func (e *PlagiarizingEngine) Scan(*SystemImage) []Detection {
	out := make([]Detection, len(e.Observed))
	for i, f := range e.Observed {
		out[i] = Detection{Finding: f, After: time.Millisecond}
	}
	return out
}
