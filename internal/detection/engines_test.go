package detection

import (
	"strings"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func testImage() *SystemImage {
	return GenerateImage("lib-fw", "1.0", UniverseSpec{High: 10, Medium: 10, Low: 10, Seed: 99})
}

func TestVulnLibraryBasics(t *testing.T) {
	lib := NewVulnLibrary()
	if lib.Len() != 0 || lib.Has("X") {
		t.Error("fresh library not empty")
	}
	lib.Add(Signature{VulnID: "CVE-1", Source: "CVE", Severity: types.SeverityHigh})
	lib.Add(Signature{VulnID: "CVE-1", Source: "NVD", Severity: types.SeverityHigh}) // overwrite
	lib.Add(Signature{VulnID: "CVE-2", Source: "CVE", Severity: types.SeverityLow})
	if lib.Len() != 2 || !lib.Has("CVE-1") || !lib.Has("CVE-2") {
		t.Errorf("library state wrong: len=%d", lib.Len())
	}
}

func TestVulnLibraryMergeFeeds(t *testing.T) {
	img := testImage()
	cve := FeedFromImage(img, "CVE", 0.4, 1)
	nvd := FeedFromImage(img, "NVD", 0.4, 2)
	merged := NewVulnLibrary()
	merged.Merge(cve)
	merged.Merge(nvd)
	if merged.Len() < cve.Len() || merged.Len() < nvd.Len() {
		t.Error("merge lost signatures")
	}
	if merged.Len() > cve.Len()+nvd.Len() {
		t.Error("merge invented signatures")
	}
	// Feeds are deterministic.
	if again := FeedFromImage(img, "CVE", 0.4, 1); again.Len() != cve.Len() {
		t.Error("feed not deterministic")
	}
}

func TestLibraryEngineFindsExactlyKnownVulns(t *testing.T) {
	img := testImage()
	lib := FeedFromImage(img, "CVE", 0.5, 7)
	e := &LibraryEngine{Name: "sig-scan", Library: lib}
	ds := e.Scan(img)
	if len(ds) != lib.Len() {
		t.Errorf("found %d, library knows %d", len(ds), lib.Len())
	}
	for _, d := range ds {
		if !lib.Has(d.Finding.VulnID) {
			t.Errorf("found %s which is not in the library", d.Finding.VulnID)
		}
		if !strings.Contains(d.Finding.Evidence, "sig-scan") {
			t.Error("evidence does not attribute the scanner")
		}
	}
	// Nil library finds nothing.
	if got := (&LibraryEngine{Name: "empty"}).Scan(img); got != nil {
		t.Error("nil library found something")
	}
}

func TestFuzzingEngineBudgetScalesCoverage(t *testing.T) {
	img := testImage()
	small := &FuzzingEngine{Name: "fuzz", Iterations: 50, HitRate: 0.01, Seed: 3}
	big := &FuzzingEngine{Name: "fuzz", Iterations: 100_000, HitRate: 0.01, Seed: 3}
	nSmall, nBig := len(small.Scan(img)), len(big.Scan(img))
	if nSmall >= nBig {
		t.Errorf("bigger budget found fewer vulns: %d vs %d", nSmall, nBig)
	}
	if nBig < len(img.Vulns)/2 {
		t.Errorf("100k iterations at 1%% hit rate found only %d of %d", nBig, len(img.Vulns))
	}
}

func TestFuzzingEngineTimeGrowsWithTrigger(t *testing.T) {
	img := testImage()
	e := &FuzzingEngine{Name: "fuzz", Iterations: 100_000, HitRate: 0.01, Seed: 3,
		IterationTime: time.Millisecond}
	ds := e.Scan(img)
	if len(ds) < 2 {
		t.Skip("not enough detections for ordering check")
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].After < ds[i-1].After {
			t.Fatal("fuzzing detections not time-ordered")
		}
	}
}

func TestFuzzingEngineOnlyReportsReal(t *testing.T) {
	img := testImage()
	truth := make(map[string]bool)
	for _, v := range img.Vulns {
		truth[v.ID] = true
	}
	e := &FuzzingEngine{Name: "fuzz", Iterations: 10_000, HitRate: 0.05, Seed: 5}
	for _, d := range e.Scan(img) {
		if !truth[d.Finding.VulnID] {
			t.Errorf("fuzzer fabricated %s", d.Finding.VulnID)
		}
	}
}

func TestCompositeEngineUnionCoverage(t *testing.T) {
	img := testImage()
	// Two narrow libraries with different halves of the truth.
	libA := FeedFromImage(img, "CVE", 0.4, 11)
	libB := FeedFromImage(img, "NVD", 0.4, 22)
	a := &LibraryEngine{Name: "a", Library: libA}
	b := &LibraryEngine{Name: "b", Library: libB}
	comp := &CompositeEngine{Name: "nversion", Engines: []Engine{a, b}}

	union := make(map[string]bool)
	for _, d := range a.Scan(img) {
		union[d.Finding.VulnID] = true
	}
	for _, d := range b.Scan(img) {
		union[d.Finding.VulnID] = true
	}
	got := comp.Scan(img)
	if len(got) != len(union) {
		t.Errorf("composite found %d, union is %d", len(got), len(union))
	}
	// No duplicates.
	seen := make(map[string]bool)
	for _, d := range got {
		if seen[d.Finding.VulnID] {
			t.Errorf("composite duplicated %s", d.Finding.VulnID)
		}
		seen[d.Finding.VulnID] = true
	}
}

func TestCompositeKeepsEarliestDiscovery(t *testing.T) {
	img := testImage()
	lib := FeedFromImage(img, "CVE", 1.0, 1)
	slow := &LibraryEngine{Name: "slow", Library: lib, ScanTime: time.Hour}
	fast := &LibraryEngine{Name: "fast", Library: lib, ScanTime: time.Second}
	comp := &CompositeEngine{Name: "c", Engines: []Engine{slow, fast}}
	for _, d := range comp.Scan(img) {
		if d.After != time.Second {
			t.Fatalf("composite kept the slower discovery (%v)", d.After)
		}
	}
}

func TestAggregateFindingsDeduplicatesNVersions(t *testing.T) {
	// The same vulnerability reported with differently-worded evidence by
	// three detectors (§VIII N-version descriptions).
	a := []types.Finding{{VulnID: "V-1", Severity: types.SeverityMedium, Evidence: "buffer overflow in httpd"}}
	b := []types.Finding{{VulnID: "V-1", Severity: types.SeverityHigh, Evidence: "heap smash via long URI"}}
	c := []types.Finding{
		{VulnID: "V-1", Severity: types.SeverityMedium, Evidence: "buffer overflow in httpd"}, // exact dup
		{VulnID: "V-2", Severity: types.SeverityLow, Evidence: "weak cipher"},
	}
	merged := AggregateFindings(a, b, c)
	if len(merged) != 2 {
		t.Fatalf("merged %d findings, want 2", len(merged))
	}
	v1 := merged[0]
	if v1.VulnID != "V-1" {
		v1 = merged[1]
	}
	if v1.Severity != types.SeverityHigh {
		t.Errorf("aggregate kept severity %v, want the highest claim", v1.Severity)
	}
	if !strings.Contains(v1.Evidence, "httpd") || !strings.Contains(v1.Evidence, "heap smash") {
		t.Errorf("aggregate lost evidence variants: %q", v1.Evidence)
	}
	if strings.Count(v1.Evidence, "buffer overflow in httpd") != 1 {
		t.Error("exact duplicate evidence not collapsed")
	}
}

func TestAggregateFindingsEmpty(t *testing.T) {
	if got := AggregateFindings(); len(got) != 0 {
		t.Error("empty aggregation produced findings")
	}
	if got := AggregateFindings(nil, nil); len(got) != 0 {
		t.Error("nil reports produced findings")
	}
}
