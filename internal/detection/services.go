package detection

import (
	"math/rand"
	"sort"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// ServiceProfile models one centralized third-party detection service from
// Table I of the paper. Each service uncovers a calibrated number of
// vulnerabilities per severity class, drawn from the image's universe with
// a service-specific bias — reproducing the paper's observation that the
// services' results are "often different and non-overlapping".
type ServiceProfile struct {
	// Name is the service label (e.g. "Quixxi").
	Name string
	// Counts maps an app name to the high/medium/low finding counts the
	// service reports for it.
	Counts map[string][3]int // [high, medium, low]
	// Bias offsets the service's sampling so different services pick
	// different subsets of the universe (limited overlap).
	Bias int64
}

// SeverityIndex orders severities as Table I columns: high, medium, low.
var SeverityIndex = [3]types.Severity{types.SeverityHigh, types.SeverityMedium, types.SeverityLow}

// TableIApps returns the two IoT apps of Table I with vulnerability
// universes large enough to cover every service's findings: Samsung
// Connect and Samsung Smart Home.
func TableIApps() []*SystemImage {
	return []*SystemImage{
		GenerateImage("samsung-connect", "1.0", UniverseSpec{High: 6, Medium: 20, Low: 42, Seed: 101}),
		GenerateImage("samsung-smart-home", "1.0", UniverseSpec{High: 25, Medium: 52, Low: 62, Seed: 202}),
	}
}

// TableIServices returns the six third-party service profiles with
// per-app counts exactly as Table I reports them.
func TableIServices() []*ServiceProfile {
	return []*ServiceProfile{
		{Name: "VirusTotal", Bias: 1, Counts: map[string][3]int{
			"samsung-connect": {0, 0, 0}, "samsung-smart-home": {0, 0, 0}}},
		{Name: "Quixxi", Bias: 2, Counts: map[string][3]int{
			"samsung-connect": {4, 6, 3}, "samsung-smart-home": {3, 8, 4}}},
		{Name: "Andrototal", Bias: 3, Counts: map[string][3]int{
			"samsung-connect": {0, 0, 0}, "samsung-smart-home": {0, 0, 0}}},
		{Name: "jaq.alibaba", Bias: 4, Counts: map[string][3]int{
			"samsung-connect": {1, 14, 32}, "samsung-smart-home": {21, 46, 55}}},
		{Name: "Ostorlab", Bias: 5, Counts: map[string][3]int{
			"samsung-connect": {0, 2, 0}, "samsung-smart-home": {0, 2, 2}}},
		{Name: "htbridge", Bias: 6, Counts: map[string][3]int{
			"samsung-connect": {1, 6, 5}, "samsung-smart-home": {1, 4, 6}}},
	}
}

var _ Engine = (*ServiceProfile)(nil)

// Scan implements Engine: the service reports its calibrated number of
// findings per severity, sampled from the universe with its own bias.
func (s *ServiceProfile) Scan(img *SystemImage) []Detection {
	counts, ok := s.Counts[img.Name]
	if !ok {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Bias*7919 + int64(len(img.Payload))))

	// Partition the universe by severity, deterministically ordered.
	bySev := make(map[types.Severity][]Vulnerability, 3)
	for _, v := range img.Vulns {
		bySev[v.Severity] = append(bySev[v.Severity], v)
	}
	var out []Detection
	for i, sev := range SeverityIndex {
		pool := append([]Vulnerability(nil), bySev[sev]...)
		sort.Slice(pool, func(a, b int) bool { return pool[a].ID < pool[b].ID })
		want := counts[i]
		if want > len(pool) {
			want = len(pool)
		}
		// Biased sample: shuffle with the service's own RNG, take the
		// first `want` — different services pick different subsets.
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		for _, v := range pool[:want] {
			out = append(out, Detection{
				Finding: types.Finding{
					VulnID:   v.ID,
					Severity: v.Severity,
					Evidence: "reported by " + s.Name,
				},
				After: time.Duration(rng.Int63n(int64(10 * time.Minute))),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Finding.VulnID < out[j].Finding.VulnID })
	return out
}

// OverlapStats measures how much two services' finding sets intersect.
type OverlapStats struct {
	A, B      string
	SizeA     int
	SizeB     int
	Intersect int
}

// Jaccard returns |A∩B| / |A∪B| (0 when both are empty).
func (o OverlapStats) Jaccard() float64 {
	union := o.SizeA + o.SizeB - o.Intersect
	if union == 0 {
		return 0
	}
	return float64(o.Intersect) / float64(union)
}

// Overlap computes pairwise overlap between two scans.
func Overlap(nameA string, a []Detection, nameB string, b []Detection) OverlapStats {
	seen := make(map[string]bool, len(a))
	for _, d := range a {
		seen[d.Finding.VulnID] = true
	}
	inter := 0
	for _, d := range b {
		if seen[d.Finding.VulnID] {
			inter++
		}
	}
	return OverlapStats{A: nameA, B: nameB, SizeA: len(a), SizeB: len(b), Intersect: inter}
}

// CountBySeverity tallies detections per severity in Table I column order.
func CountBySeverity(ds []Detection) [3]int {
	var out [3]int
	for _, d := range ds {
		for i, sev := range SeverityIndex {
			if d.Finding.Severity == sev {
				out[i]++
			}
		}
	}
	return out
}
