package detection

import (
	"sync"

	"github.com/smartcrowd/smartcrowd/internal/contract"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

// GroundTruthVerifier is the reference AutoVerif implementation (paper
// Eq. 6): a finding verifies if and only if the claimed vulnerability
// exists in the released image. It is the strongest faithful instantiation
// of the paper's "machine-automatical verification engine" — providers in
// the paper plug in CloudAV analysis engines or Vigilante SCA verification,
// both of which re-establish ground truth by re-execution.
type GroundTruthVerifier struct {
	mu     sync.RWMutex
	truth  map[types.Hash]map[string]types.Severity // SRA id → vuln id → severity
	strict bool
}

var _ contract.Verifier = (*GroundTruthVerifier)(nil)

// NewGroundTruthVerifier creates an empty verifier. With strict severity
// checking, a finding must also state the correct severity class.
func NewGroundTruthVerifier(strictSeverity bool) *GroundTruthVerifier {
	return &GroundTruthVerifier{
		truth:  make(map[types.Hash]map[string]types.Severity),
		strict: strictSeverity,
	}
}

// Register associates a released image's ground truth with its SRA.
func (v *GroundTruthVerifier) Register(sraID types.Hash, img *SystemImage) {
	v.mu.Lock()
	defer v.mu.Unlock()
	set := make(map[string]types.Severity, len(img.Vulns))
	for _, vuln := range img.Vulns {
		set[vuln.ID] = vuln.Severity
	}
	v.truth[sraID] = set
}

// AutoVerif implements contract.Verifier.
func (v *GroundTruthVerifier) AutoVerif(sraID types.Hash, finding types.Finding) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	set, ok := v.truth[sraID]
	if !ok {
		return false
	}
	sev, ok := set[finding.VulnID]
	if !ok {
		return false
	}
	if v.strict && sev != finding.Severity {
		return false
	}
	return true
}

// Known reports whether a ground truth is registered for the SRA.
func (v *GroundTruthVerifier) Known(sraID types.Hash) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.truth[sraID]
	return ok
}
