package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the pass that produced it, and a
// human-readable message. String renders the canonical
// `file:line: [pass] message` form scvet prints and the fixture harness
// matches against.
type Finding struct {
	Pos  token.Position
	Pass string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Msg)
}

// Pass is one invariant check over a type-checked package.
type Pass struct {
	Name string
	// Doc is the one-line description `scvet -list` prints.
	Doc string
	Run func(p *Package) []Finding
}

// passCatalog is built once at package init: Passes is called per
// allowlist line and per finding, so rebuilding the slice each call was
// pure allocation churn. The order is the reporting order.
var passCatalog = []*Pass{
	passDetsource,
	passSenterr,
	passLocksafe,
	passLockorder,
	passGoleak,
	passMetricname,
	passBoundalloc,
	passWiretaint,
	passLogdisc,
	passFsyncdisc,
}

// passByName indexes the catalog for PassByName, built alongside it.
var passByName = func() map[string]*Pass {
	m := make(map[string]*Pass, len(passCatalog))
	for _, p := range passCatalog {
		m[p.Name] = p
	}
	return m
}()

// Passes returns the full catalog in reporting order.
func Passes() []*Pass { return passCatalog }

// PassByName resolves a catalog entry; nil if unknown.
func PassByName(name string) *Pass { return passByName[name] }

// RunAll executes every pass over every package and returns the findings
// sorted by file, line, then pass name.
func RunAll(pkgs []*Package) []Finding {
	return RunPasses(pkgs, Passes())
}

// RunPasses executes the given passes over every package with the same
// ordering guarantees as RunAll — the `scvet -pass` subset path.
func RunPasses(pkgs []*Package, passes []*Pass) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, pass := range passes {
			out = append(out, pass.Run(pkg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return out
}

// finding builds a Finding at node's position.
func (p *Package) finding(pass string, node ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:  p.Fset.Position(node.Pos()),
		Pass: pass,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// hasPathSuffix reports whether path ends in one of the given
// slash-separated suffixes (e.g. "internal/chain"). Matching on suffix
// instead of the full module path keeps the passes working on fixture
// packages and under module renames.
func hasPathSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// importedPkgPath returns the import path when e is a package-qualifier
// identifier (the `time` in `time.Now`), else "".
func importedPkgPath(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleeObj resolves the object a call invokes: package functions,
// qualified functions and methods. Returns nil for builtins, indirect
// calls through function values it cannot see, or missing type info.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// calleePkgPath returns the defining package path of a call's callee, or
// "" when unresolvable (builtins, locals, missing info).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// baseFilename returns the basename of the file containing node.
func (p *Package) baseFilename(node ast.Node) string {
	name := p.Fset.Position(node.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (interfaces included).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && obj == types.Universe.Lookup("nil")
}

// varObj resolves an identifier to the variable it names, nil otherwise.
func varObj(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
