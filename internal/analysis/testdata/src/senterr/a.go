// Fixture for the senterr pass: sentinel errors must be matched with
// errors.Is, never == / != / switch-case.
package fixerr

import (
	"errors"
	"io"
)

var ErrKnown = errors.New("fixture: known")

var errPrivate = errors.New("fixture: private")

// ErrCode is sentinel-named but not an error; no finding.
var ErrCode = 42

func bad(err error) bool {
	if err == ErrKnown { // want `sentinel error ErrKnown compared with ==`
		return true
	}
	if err != errPrivate { // want `sentinel error errPrivate compared with !=`
		return false
	}
	return err == io.ErrUnexpectedEOF // want `sentinel error io\.ErrUnexpectedEOF compared with ==`
}

func badSwitch(err error) string {
	switch err {
	case ErrKnown: // want `switch on an error value compares ErrKnown with ==`
		return "known"
	case nil:
		return "ok"
	}
	return "other"
}

func good(err error) bool {
	if err == nil || err != nil { // nil checks are fine
		_ = err
	}
	if errors.Is(err, ErrKnown) { // the correct idiom
		return true
	}
	if ErrCode == 42 { // sentinel-named non-error; no finding
		return true
	}
	switch { // tagless switch with errors.Is; no finding
	case errors.Is(err, errPrivate):
		return false
	}
	return false
}
