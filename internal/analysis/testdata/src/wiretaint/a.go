// Fixture for the wiretaint pass. Loaded as-if it were internal/p2p: a
// wire-decoded integer must pass a dominating bound check before it
// sizes an allocation or indexes memory — and the check counts no
// matter which side of a call boundary it lives on.
package fixtaint

import (
	"encoding/binary"
	"errors"
)

const maxRecords = 4096

var errTooMany = errors.New("fixture: too many records")

// parseCount decodes a record count and returns it unvalidated: its
// result is tainted in every caller.
func parseCount(b []byte) uint32 {
	return binary.BigEndian.Uint32(b)
}

// checkCount bounds its parameter — a sanitizer, so calling it counts
// as a guard at the call site.
func checkCount(n uint32) bool {
	return n <= maxRecords
}

// goodCaller: the bound check lives in the callee and still clears the
// caller's allocation.
func goodCaller(b []byte) [][]byte {
	n := parseCount(b)
	if !checkCount(n) {
		return nil
	}
	return make([][]byte, n)
}

// badCaller allocates straight off the decoded count.
func badCaller(b []byte) [][]byte {
	n := parseCount(b)
	return make([][]byte, n) // want `allocation size depends on wire-decoded n with no dominating bound check`
}

// badDirect uses the decode in place.
func badDirect(b []byte) []byte {
	return make([]byte, binary.BigEndian.Uint32(b)) // want `allocation size depends on wire-decoded a value decoded in place`
}

// badIndex indexes a table with the raw offset.
func badIndex(b, table []byte) byte {
	i := parseCount(b)
	return table[i] // want `index depends on wire-decoded i with no dominating bound check`
}

// goodIndex compares against the table length first.
func goodIndex(b, table []byte) byte {
	i := parseCount(b)
	if int(i) >= len(table) {
		return 0
	}
	return table[i]
}

// alloc never sees wire bytes itself, but badHelperCall feeds it a
// decoded count — taint crosses the call into the parameter.
func alloc(n uint32) []byte {
	return make([]byte, n) // want `allocation size depends on wire-decoded n with no dominating bound check`
}

func badHelperCall(b []byte) []byte {
	return alloc(parseCount(b))
}

// header proves result summaries are field-sensitive: version is
// validated before returning, extra is not.
type header struct {
	version uint32
	extra   uint32
}

func parseHeader(b []byte) (header, error) {
	var h header
	h.version = binary.BigEndian.Uint32(b[0:4])
	h.extra = binary.BigEndian.Uint32(b[4:8])
	if h.version > maxRecords {
		return header{}, errTooMany
	}
	return h, nil
}

func useHeader(b []byte) ([]byte, []byte) {
	h, err := parseHeader(b)
	if err != nil {
		return nil, nil
	}
	va := make([]byte, h.version)
	ea := make([]byte, h.extra) // want `allocation size depends on wire-decoded h\.extra with no dominating bound check`
	return va, ea
}
