// Fixture for locksafe's internal/rpc rule. Loaded as-if it were
// internal/rpc: read handlers must pin a chain.ReadView; every
// *chain.Chain method except CurrentView/Config takes the chain mutex
// and is flagged.
package fixrpc

import (
	"github.com/smartcrowd/smartcrowd/internal/chain"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

type server struct {
	c *chain.Chain
}

// badHead reads the head through the mutex.
func (s *server) badHead() uint64 {
	return s.c.HeadNumber() // want `call to \(\*chain\.Chain\)\.HeadNumber in internal/rpc`
}

// badState pays for a copy-on-write state snapshot under the write lock.
func (s *server) badState(addr types.Address) types.Amount {
	return s.c.State().Balance(addr) // want `call to \(\*chain\.Chain\)\.State in internal/rpc`
}

// badReceipt resolves a receipt under the read lock.
func (s *server) badReceipt(h types.Hash) {
	_, _ = s.c.ReceiptOf(h) // want `call to \(\*chain\.Chain\)\.ReceiptOf in internal/rpc`
}

// goodView pins the lock-free snapshot: the one sanctioned entry point.
func (s *server) goodView() *chain.ReadView {
	return s.c.CurrentView()
}

// goodConfig reads construction-time configuration, immutable after New.
func (s *server) goodConfig() uint64 {
	return s.c.Config().Confirmations
}

// goodViewReads exercises the view's read surface; ReadView methods are
// lock-free by construction and never flagged.
func (s *server) goodViewReads() uint64 {
	v := s.c.CurrentView()
	_, _ = v.BlockByNumber(1)
	return v.HeadNumber()
}

// goodStorageStats reads backend counters: the store pointer is
// immutable after New and the disk stats carry their own mutex.
func (s *server) goodStorageStats() string {
	return s.c.StorageStats().Backend
}
