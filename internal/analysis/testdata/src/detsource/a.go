// Fixture for the detsource pass. Loaded as-if it were the
// consensus-critical internal/chain package; clock.go in this directory
// is the allowed shim file.
package fixchain

import (
	"crypto/sha256"
	"math/rand" // want `import of math/rand in consensus-critical package`
	"sort"
	"time"
)

// badClock reads the wall clock directly instead of going through the
// clock.go shim.
func badClock() int64 {
	t0 := time.Now()   // want `raw time\.Now in consensus-critical package`
	_ = time.Since(t0) // want `raw time\.Since in consensus-critical package`
	return t0.UnixNano()
}

// goodClock uses the shim; no finding.
func goodClock() int64 { return nowNanos() }

func badRand() int { return rand.Int() }

// badMapOrder streams map entries into a hash in iteration order.
func badMapOrder(m map[string]uint64) [32]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `map iteration order flows into a stream write`
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// badMapAppend collects keys into an outer slice and never sorts them.
func badMapAppend(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `map iteration order flows into keys`
	}
	return keys
}

// goodMapSorted is the canonical collect-then-sort idiom; no finding.
func goodMapSorted(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodLoopLocal accumulates into a loop-local value whose order cannot
// escape; no finding.
func goodLoopLocal(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// goodSliceRange ranges over a slice, which is ordered; no finding.
func goodSliceRange(keys []string) []string {
	out := []string{}
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}
