package fixchain

import "time"

// clock.go is the audited shim file: raw wall-clock reads here are
// allowed by detsource, mirroring pow/clock.go.
func nowNanos() int64 { return time.Now().UnixNano() }
