// Fixture for the logdisc pass: internal packages log through
// telemetry.Log, never stdlib log or fmt.Print*.
package fixlogdisc

import (
	"fmt"
	"log"
	"os"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

var flog = telemetry.Log("fixture")

func structured() {
	// The sanctioned path: leveled, subsystem-keyed, ring-buffered.
	flog.Info("block imported", "number", 7)
	flog.Warn("orphan buffered", "id", "abc")
}

func rawStdlib(err error) {
	log.Printf("imported block %d", 7)     // want `stdlib log.Printf in internal package`
	log.Println("pool pruned")             // want `stdlib log.Println in internal package`
	log.Fatalf("cannot continue: %v", err) // want `stdlib log.Fatalf in internal package`
}

func rawStdout() {
	fmt.Printf("peer count %d\n", 3) // want `fmt.Printf writes to stdout`
	fmt.Println("sealed")            // want `fmt.Println writes to stdout`
	fmt.Print("x")                   // want `fmt.Print writes to stdout`
}

func explicitWriters() {
	// Fprint* with an explicit writer is rendering, not logging: HTTP
	// responses, buffers and deliberate stderr writes stay legal.
	fmt.Fprintf(os.Stderr, "deliberate stderr write\n")
	_ = fmt.Sprintf("formatted %d", 1)
	_ = fmt.Errorf("wrapped: %d", 2)
}
