// Fixture for the goleak pass. Loaded as-if it were internal/node:
// every go statement must launch work with a reachable termination
// path — a return the CFG can reach, or a shutdown signal (stop/done
// channel, ctx.Done, WaitGroup registration) somewhere in its call
// tree.
package fixgoleak

import (
	"context"
	"sync"
	"time"
)

type Server struct {
	stop chan struct{}
	jobs chan int
	n    int
}

func (s *Server) poll() { s.n++ }

// spin loops forever with no exit and no signal.
func (s *Server) spin() {
	for {
		s.poll()
	}
}

// leakySpin: the literal itself is the inescapable loop.
func leakySpin(s *Server) {
	go func() { // want `goroutine func literal has no reachable termination path`
		for {
			s.poll()
		}
	}()
}

// launchSpin: the leak lives in the named method.
func launchSpin(s *Server) {
	go s.spin() // want `goroutine node\.\(Server\)\.spin has no reachable termination path`
}

// launchWrapped: the literal falls off its end, but only after a call
// that never returns — still a leak.
func launchWrapped(s *Server) {
	go func() { // want `goroutine func literal has no reachable termination path`
		s.spin()
	}()
}

// launchTicker is the classic slow leak: nothing ever stops the loop,
// and the ticker pins it in memory forever.
func launchTicker(s *Server) {
	t := time.NewTicker(time.Second)
	go func() { // want `goroutine func literal has no reachable termination path`
		for {
			<-t.C
			s.poll()
		}
	}()
}

// ---- the healthy shapes stay silent ----

// loop exits through its stop channel.
func (s *Server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.jobs:
			s.n += job
		}
	}
}

func launchLoop(s *Server) {
	go s.loop()
}

// launchBounded runs a bounded loop and returns.
func launchBounded(s *Server) {
	go func() {
		for i := 0; i < 8; i++ {
			s.poll()
		}
	}()
}

// launchRange terminates when the sender closes the channel.
func launchRange(s *Server) {
	go func() {
		for job := range s.jobs {
			s.n += job
		}
	}()
}

// launchCtx exits on context cancellation.
func launchCtx(ctx context.Context, s *Server) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				s.poll()
			}
		}
	}()
}

// waitStep blocks on the stop channel — a termination signal the
// launcher below only reaches through this call.
func (s *Server) waitStep() {
	<-s.stop
}

func launchSignalHelper(s *Server) {
	go func() {
		for {
			s.waitStep()
		}
	}()
}

// launchWG registers with a WaitGroup: its lifetime is owned by the
// waiter.
func launchWG(s *Server, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			s.poll()
		}
	}()
}
