// Fixture for the lockorder pass. Loaded as-if it were internal/chain:
// a seeded two-mutex cycle must be reported in both directions, an
// interprocedural cycle must be reported at the call sites that close
// it, and code that keeps to one consistent (blessed) order stays
// silent.
package fixlockorder

import "sync"

// Engine and Pool form the seeded AB/BA cycle: thenPool holds
// Engine.mu while taking Pool.mu, thenEngine does the reverse.
type Engine struct {
	mu sync.Mutex
	n  int
}

type Pool struct {
	mu sync.Mutex
	n  int
}

func (e *Engine) thenPool(p *Pool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p.mu.Lock() // want `acquiring chain\.Pool\.mu while holding chain\.Engine\.mu closes a lock-order cycle`
	p.n++
	p.mu.Unlock()
}

func (p *Pool) thenEngine(e *Engine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.mu.Lock() // want `acquiring chain\.Engine\.mu while holding chain\.Pool\.mu closes a lock-order cycle`
	e.n++
	e.mu.Unlock()
}

// Reg and Jrnl cycle interprocedurally: neither function takes both
// locks itself — each holds its own and calls into the other type.
type Reg struct {
	mu sync.Mutex
	n  int
}

type Jrnl struct {
	mu sync.Mutex
	n  int
}

func (r *Reg) flush(j *Jrnl) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.appendRec() // want `acquiring chain\.Jrnl\.mu while holding chain\.Reg\.mu \(via call to chain\.\(Jrnl\)\.appendRec\) closes a lock-order cycle`
}

func (j *Jrnl) appendRec() {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}

func (j *Jrnl) compact(r *Reg) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.note() // want `acquiring chain\.Reg\.mu while holding chain\.Jrnl\.mu \(via call to chain\.\(Reg\)\.note\) closes a lock-order cycle`
}

func (r *Reg) note() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// Store only ever nests inside Engine — a consistent order is exactly
// what the blessed global order demands, so no finding.
type Store struct {
	mu sync.Mutex
	n  int
}

func (e *Engine) persist(s *Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (e *Engine) persistAgain(s *Store) {
	e.mu.Lock()
	s.mu.Lock()
	s.n += 2
	s.mu.Unlock()
	e.mu.Unlock()
}

// A goroutine launched under a lock runs concurrently, not under the
// caller's locks: Store.mu inside the literal must not order after
// Engine.mu held outside it (that would fabricate no cycle here, but
// the exclusion is what keeps spawn-heavy code quiet).
func (e *Engine) spawn(s *Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
}

// Same-type hand-over-hand: identity is per declaration, so a->b and
// b->a are the same self-edge and deliberately dropped.
func handoff(a, b *Pool) {
	a.mu.Lock()
	b.mu.Lock()
	b.n = a.n
	b.mu.Unlock()
	a.mu.Unlock()
}
