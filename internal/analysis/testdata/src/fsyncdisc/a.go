// Fixture for the fsyncdisc pass. Loaded as-if it were internal/store:
// every os.File write needs a later Sync or Close on the same handle in
// the same function, or an audited allowlist entry.
package fixfsync

import (
	"bytes"
	"os"
)

type journal struct {
	logF *os.File
	idxF *os.File
}

// badFireAndForget writes and returns; the bytes live in the page cache
// only.
func badFireAndForget(f *os.File, data []byte) error {
	_, err := f.Write(data) // want `os.File.Write on "f" with no later Sync/Close`
	return err
}

// badWrongHandle syncs the WAL, not the file it wrote.
func badWrongHandle(j *journal, wal *os.File, data []byte) error {
	if _, err := j.logF.Write(data); err != nil { // want `os.File.Write on "logF" with no later Sync/Close`
		return err
	}
	return wal.Sync()
}

// badFieldWriteAt covers the WriteAt variant through a struct field.
func badFieldWriteAt(j *journal, data []byte) error {
	_, err := j.idxF.WriteAt(data, 0) // want `os.File.WriteAt on "idxF" with no later Sync/Close`
	return err
}

// badSyncBeforeWrite has the commit point on the wrong side: a Sync that
// already ran cannot flush a later write.
func badSyncBeforeWrite(f *os.File, data []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	_, err := f.WriteString("trailer") // want `os.File.WriteString on "f" with no later Sync/Close`
	return err
}

// goodWriteThenSync is the canonical commit shape.
func goodWriteThenSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// goodWriteThenClose releases the handle, which is the teardown-path
// commit point the discipline accepts.
func goodWriteThenClose(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// goodDeferredClose runs the commit at return even though the defer is
// written above the write.
func goodDeferredClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// goodPerHandle syncs each handle it wrote, interleaved.
func goodPerHandle(j *journal, data []byte) error {
	if _, err := j.logF.Write(data); err != nil {
		return err
	}
	if _, err := j.idxF.Write(data); err != nil {
		return err
	}
	if err := j.logF.Sync(); err != nil {
		return err
	}
	return j.idxF.Sync()
}

// goodNotAFile writes to an in-memory buffer; fsync is meaningless.
func goodNotAFile(buf *bytes.Buffer, data []byte) (int, error) {
	return buf.Write(data)
}
