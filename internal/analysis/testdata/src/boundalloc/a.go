// Fixture for the boundalloc pass. Loaded as-if it were internal/wire:
// slice allocations sized by decoded input need a dominating bound
// check.
package fixalloc

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxPayload = 8 << 20

var errTooLarge = errors.New("fixture: too large")

// badDecode allocates whatever length the peer declared.
func badDecode(hdr []byte, r io.Reader) ([]byte, error) {
	length := binary.BigEndian.Uint32(hdr)
	buf := make([]byte, length) // want `make size depends on "length" with no dominating bound check`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// badCap hides the peer-chosen size in the capacity argument.
func badCap(n int) []byte {
	return make([]byte, 0, n) // want `make size depends on "n" with no dominating bound check`
}

// goodBounded rejects oversized declarations before allocating.
func goodBounded(hdr []byte, r io.Reader) ([]byte, error) {
	length := binary.BigEndian.Uint32(hdr)
	if length > maxPayload {
		return nil, errTooLarge
	}
	buf := make([]byte, length)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// goodLen sizes from data already in memory; no finding.
func goodLen(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+16)
	return append(out, payload...)
}

// goodConst allocates a fixed header; no finding.
func goodConst() []byte { return make([]byte, 32) }

// goodChan: channels size lazily, only slices allocate eagerly.
func goodChan(n int) chan []byte { return make(chan []byte, n) }
