// Fixture for the metricname pass: telemetry names are snake_case
// smartcrowd_<subsystem>_<name>[_unit] literals registered at package
// init.
package fixmetric

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

// Package-level handles with conforming literal names; no findings.
var (
	mGood      = telemetry.GetCounter("smartcrowd_fixture_events_total")
	mGoodGauge = telemetry.GetGauge("smartcrowd_fixture_depth")
)

var mBadCase = telemetry.GetCounter("smartcrowd_Fixture_Events") // want `must match smartcrowd_<subsystem>_<name>`

var mBadPrefix = telemetry.GetCounter("fixture_events_total") // want `must match smartcrowd_<subsystem>_<name>`

var mBadShort = telemetry.GetGauge("smartcrowd_depth") // want `must match smartcrowd_<subsystem>_<name>`

var dynamicName = "smartcrowd_fixture_runtime_total"

var mBadComputed = telemetry.GetCounter(dynamicName) // want `name must be a string literal`

func init() {
	telemetry.SetHelp("smartcrowd_fixture_events_total", "fixture events")
	telemetry.SetHelp("not snake", "bad")                       // want `must match smartcrowd_<subsystem>_<name>`
	_ = telemetry.GetHistogram("smartcrowd_fixture_latency_ns") // init registration is fine
}

// lazyRegister resolves a handle at call time, outside package init.
func lazyRegister() {
	_ = telemetry.GetHistogram("smartcrowd_fixture_lazy_ns") // want `outside a package-level var or init`
	_ = mGood
	_ = mGoodGauge
	_ = mBadCase
	_ = mBadPrefix
	_ = mBadShort
	_ = mBadComputed
}
