// Fixture for the locksafe pass. Loaded as-if it were internal/chain:
// no ECDSA recovery or keccak hashing inside mutex critical sections.
package fixlock

import (
	"sync"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/crypto/keccak"
	"github.com/smartcrowd/smartcrowd/internal/types"
)

type store struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	byHash map[[32]byte][]byte
}

// badHashUnderLock hashes inside the critical section.
func (s *store) badHashUnderLock(data []byte) {
	s.mu.Lock()
	h := keccak.Sum256(data) // want `call to keccak\.Sum256 inside a mutex critical section`
	s.byHash[h] = data
	s.mu.Unlock()
}

// badDeferRecover: a deferred Unlock keeps the region open to the end of
// the function, so the batch recovery below is under the lock.
func (s *store) badDeferRecover(txs []*types.Transaction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	types.RecoverSenders(txs) // want `call to types\.RecoverSenders inside a mutex critical section`
}

// badSenderUnderRLock: read locks are critical sections too.
func (s *store) badSenderUnderRLock(tx *types.Transaction) {
	s.rw.RLock()
	_, _ = tx.Sender() // want `call to \(\*types\.Transaction\)\.Sender inside a mutex critical section`
	s.rw.RUnlock()
}

// badClockUnderLock reads the wall clock — directly and through the
// package clock.go shim — inside the critical section.
func (s *store) badClockUnderLock() time.Duration {
	s.mu.Lock()
	t0 := time.Now() // want `call to time\.Now inside a mutex critical section`
	d := tock(t0)    // want `call to tock \(clock\.go shim\) inside a mutex critical section`
	s.mu.Unlock()
	return d
}

// goodClockHoisted reads the clock before and after the critical
// section; no finding.
func (s *store) goodClockHoisted() time.Duration {
	t0 := tick()
	s.mu.Lock()
	n := len(s.byHash)
	s.mu.Unlock()
	_ = n
	return time.Since(t0)
}

// goodHoisted does the crypto before taking the lock; no finding.
func (s *store) goodHoisted(data []byte) {
	h := keccak.Sum256(data)
	s.mu.Lock()
	s.byHash[h] = data
	s.mu.Unlock()
}

// goodAfterUnlock hashes after releasing; no finding.
func (s *store) goodAfterUnlock(data []byte) [32]byte {
	s.mu.Lock()
	n := len(s.byHash)
	s.mu.Unlock()
	_ = n
	return keccak.Sum256(data)
}

// goodGoroutine: the spawned goroutine runs outside the lexical critical
// section; no finding.
func (s *store) goodGoroutine(data []byte, out chan<- [32]byte) {
	s.mu.Lock()
	go func() {
		out <- keccak.Sum256(data)
	}()
	s.mu.Unlock()
}
