// The package clock shim, mirroring internal/chain/clock.go: raw
// wall-clock reads are confined to this file, and locksafe treats every
// function declared here as a clock read at its call sites.
package fixlock

import "time"

// tick returns the current instant.
func tick() time.Time { return time.Now() }

// tock mirrors time.Since.
func tock(t0 time.Time) time.Duration { return time.Since(t0) }
