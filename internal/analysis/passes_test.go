package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// The module path prefix the fixtures pretend to live under. Passes
// match on path suffix, so any prefix works; using the real one keeps
// the fixtures honest.
const modPrefix = "github.com/smartcrowd/smartcrowd/"

func TestDetsourceFixture(t *testing.T) {
	runFixture(t, "detsource", modPrefix+"internal/chain")
}

func TestSenterrFixture(t *testing.T) {
	// senterr applies to every package; an arbitrary path exercises that.
	runFixture(t, "senterr", modPrefix+"internal/node")
}

func TestLocksafeFixture(t *testing.T) {
	runFixture(t, "locksafe", modPrefix+"internal/chain")
}

func TestLocksafeRPCFixture(t *testing.T) {
	runFixtureAs(t, "locksafe_rpc", "locksafe", modPrefix+"internal/rpc")
}

func TestLockorderFixture(t *testing.T) {
	runFixture(t, "lockorder", modPrefix+"internal/chain")
}

func TestGoleakFixture(t *testing.T) {
	runFixture(t, "goleak", modPrefix+"internal/node")
}

func TestWiretaintFixture(t *testing.T) {
	runFixture(t, "wiretaint", modPrefix+"internal/p2p")
}

func TestMetricnameFixture(t *testing.T) {
	runFixture(t, "metricname", modPrefix+"internal/node")
}

func TestBoundallocFixture(t *testing.T) {
	runFixture(t, "boundalloc", modPrefix+"internal/wire")
}

func TestLogdiscFixture(t *testing.T) {
	runFixture(t, "logdisc", modPrefix+"internal/node")
}

func TestFsyncdiscFixture(t *testing.T) {
	runFixture(t, "fsyncdisc", modPrefix+"internal/store")
}

// TestLogdiscAllowlisted proves a logdisc finding is suppressible via
// the committed .scvet.allow mechanism like any other pass.
func TestLogdiscAllowlisted(t *testing.T) {
	findings := runFixture(t, "logdisc", modPrefix+"internal/node")
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, ".scvet.allow")
	entry := "logdisc " + filepath.Base(findings[0].Pos.Filename) + " " + findings[0].Msg
	if err := writeFile(t, path, "# audited: fixture exception\n"+entry+"\n"); err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := allow.Filter(findings)
	if suppressed != 1 || len(kept) != len(findings)-1 {
		t.Fatalf("suppressed %d / kept %d, want 1 / %d", suppressed, len(kept), len(findings)-1)
	}
}

// TestPassesScopedToTheirPackages proves the path-scoped passes stay
// silent when the same code lives outside their jurisdiction: the
// detsource fixture is full of violations, but a non-consensus package
// is allowed to read the clock.
func TestPassesScopedToTheirPackages(t *testing.T) {
	for _, tc := range []struct{ fixture, pass, asPath string }{
		{"detsource", "detsource", modPrefix + "internal/telemetry"},
		{"locksafe", "locksafe", modPrefix + "internal/node"},
		{"locksafe_rpc", "locksafe", modPrefix + "internal/node"},
		{"boundalloc", "boundalloc", modPrefix + "internal/chain"},
		{"lockorder", "lockorder", modPrefix + "internal/incentive"},
		{"goleak", "goleak", modPrefix + "cmd/smartcrowd"},
		{"wiretaint", "wiretaint", modPrefix + "cmd/smartcrowd"},
		{"wiretaint", "wiretaint", modPrefix + "internal/state"},
		{"logdisc", "logdisc", modPrefix + "cmd/smartcrowd"},
		{"logdisc", "logdisc", modPrefix + "internal/telemetry"},
		{"fsyncdisc", "fsyncdisc", modPrefix + "internal/chain"},
	} {
		pkg := loadFixture(t, tc.fixture, tc.asPath)
		if got := PassByName(tc.pass).Run(pkg); len(got) != 0 {
			t.Errorf("[%s] as %s: want no findings outside scoped packages, got %v", tc.pass, tc.asPath, got)
		}
	}
}

// TestAllowlistSuppression proves a committed allowlist entry suppresses
// a finding (the build would pass) while an unrelated entry does not,
// and that stale entries are reported as unused.
func TestAllowlistSuppression(t *testing.T) {
	findings := runFixture(t, "boundalloc", modPrefix+"internal/wire")
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings to suppress")
	}
	target := findings[0]

	dir := t.TempDir()
	path := filepath.Join(dir, ".scvet.allow")
	content := strings.Join([]string{
		"# audited: fixture exception under test",
		"boundalloc " + filepath.Base(target.Pos.Filename) + " " + target.Msg,
		"# stale entry that matches nothing",
		"senterr no_such_file.go no such finding",
		"",
	}, "\n")
	if err := writeFile(t, path, content); err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, suppressed := allow.Filter(findings)
	if suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", suppressed)
	}
	if len(kept) != len(findings)-1 {
		t.Fatalf("kept %d findings, want %d", len(kept), len(findings)-1)
	}
	for _, f := range kept {
		if f == target {
			t.Fatalf("allowlisted finding still reported: %s", f)
		}
	}
	unused := allow.Unused()
	if len(unused) != 1 || unused[0].Pass != "senterr" {
		t.Fatalf("unused = %+v, want the stale senterr entry", unused)
	}
}

func TestAllowlistMissingFileIsEmpty(t *testing.T) {
	allow, err := LoadAllowlist(filepath.Join(t.TempDir(), "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if len(allow.Entries) != 0 {
		t.Fatalf("want empty allowlist, got %d entries", len(allow.Entries))
	}
}

func TestAllowlistRejectsMalformedEntries(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"short.allow":   "detsource onlytwo",
		"badpass.allow": "nosuchpass file.go some message",
	} {
		path := filepath.Join(dir, name)
		if err := writeFile(t, path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadAllowlist(path); err == nil {
			t.Errorf("%s: want parse error, got nil", name)
		}
	}
}

// TestRepoCleanUnderScvet is the acceptance criterion as a test: the
// real tree, filtered through the committed allowlist, has zero
// findings. It loads and type-checks the whole module, so it is skipped
// in -short runs.
func TestRepoCleanUnderScvet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost most of the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
		}
	}
	allow, err := LoadAllowlist(filepath.Join(root, ".scvet.allow"))
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := allow.Filter(RunAll(pkgs))
	for _, f := range kept {
		t.Errorf("unexpected finding in tree: %s", f)
	}
	for _, e := range allow.Unused() {
		t.Errorf("stale allowlist entry (line %d): %s %s %q", e.Line, e.Pass, e.FileSuffix, e.MsgSub)
	}
}

// TestFindingString pins the canonical rendering scvet prints and CI
// greps for.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "internal/wire/frame.go", Line: 42},
		Pass: "boundalloc",
		Msg:  "message",
	}
	if got, want := f.String(), "internal/wire/frame.go:42: [boundalloc] message"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
