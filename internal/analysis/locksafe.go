package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockedPkgs are the packages whose mutexes guard the import/admission
// hot paths. PR 2's whole point was hoisting ECDSA recovery and keccak
// hashing out of those critical sections (stage 1 lock-free, stage 2
// under the mutex); this pass keeps crypto from creeping back in.
var lockedPkgs = []string{
	"internal/chain",
	"internal/txpool",
}

// rpcChainAllowed lists the *chain.Chain methods internal/rpc may call:
// the two that never touch the chain mutex. Everything else either takes
// c.mu outright or returns data guarded by it, and the whole point of the
// ReadView redesign is that no handler ever does that — one slow import
// must not be able to stall a million polling consumers (or vice versa).
var rpcChainAllowed = map[string]bool{
	"CurrentView":  true, // one atomic pointer load
	"Config":       true, // immutable after New
	"StorageStats": true, // c.store immutable after New; Disk.Stats has its own mutex
}

// passLocksafe flags expensive or non-deterministic work lexically
// inside a mu.Lock()…mu.Unlock() region: direct calls into
// internal/crypto/keccak or internal/crypto/secp256k1, blocking batch
// recovery (types.RecoverSenders), per-transaction
// Sender()/ValidateBasic() (ECDSA on a cache miss), and wall-clock
// reads — time.Now/time.Since or the package's clock.go shim functions.
// Crypto under the lock undoes the stage-1/stage-2 split; clock reads
// under the lock inflate hold time and, worse, would let scheduling
// jitter into anything the critical section computes (the parallel
// executor's merge loop must stay a pure function of its inputs).
// `defer mu.Unlock()` keeps the region open to the end of the function;
// goroutine bodies launched inside the region (`go func(){…}()`) run
// outside the lock and are skipped.
//
// In internal/rpc the pass enforces the inverse discipline: read
// handlers must serve from a pinned chain.ReadView, so any *chain.Chain
// method call other than CurrentView/Config — every other method
// acquires the chain mutex — is flagged. Calls laundered through an
// interface (e.g. the ChainReader the locked oracle mode satisfies) are
// invisible to static receiver typing; the rule guards the direct-call
// paths where the mutex historically crept in.
var passLocksafe = &Pass{
	Name: "locksafe",
	Doc:  "no crypto or clock reads inside chain/txpool critical sections; no mutex-taking chain calls in rpc handlers",
	Run:  runLocksafe,
}

// lockEvent is one lexically ordered event inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int // evLock, evUnlock, evCrypto, evClock
	desc string
}

const (
	evLock = iota
	evUnlock
	evCrypto
	evClock
)

func runLocksafe(p *Package) []Finding {
	if hasPathSuffix(p.ImportPath, "internal/rpc") {
		return locksafeRPC(p)
	}
	if !hasPathSuffix(p.ImportPath, lockedPkgs...) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, locksafeFunc(p, fn.Body)...)
		}
	}
	return out
}

func locksafeFunc(p *Package, body *ast.BlockStmt) []Finding {
	// Goroutine bodies escape the lexical critical section: they run
	// after the spawning statement returns, typically lock-free.
	skip := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				skip[lit] = true
			}
		}
		return true
	})

	var events []lockEvent
	var deferred []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred = append(deferred, n.Call)
		case *ast.CallExpr:
			if ev, ok := classifyLockCall(p, n); ok {
				if ev.kind == evUnlock && isDeferredCall(deferred, n) {
					// A deferred Unlock releases at return: the region
					// stays lexically locked to the end of the function.
					return true
				}
				events = append(events, ev)
				return true
			}
			if desc := cryptoCallee(p.Info, n); desc != "" {
				events = append(events, lockEvent{pos: n.Pos(), kind: evCrypto, desc: desc})
			} else if desc := clockCallee(p, n); desc != "" {
				events = append(events, lockEvent{pos: n.Pos(), kind: evClock, desc: desc})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var out []Finding
	depth := 0
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			depth++
		case evUnlock:
			if depth > 0 {
				depth--
			}
		case evCrypto:
			if depth > 0 {
				out = append(out, Finding{
					Pos:  p.Fset.Position(ev.pos),
					Pass: "locksafe",
					Msg:  "call to " + ev.desc + " inside a mutex critical section; hoist crypto out of the lock (stage-1/stage-2 split)",
				})
			}
		case evClock:
			if depth > 0 {
				out = append(out, Finding{
					Pos:  p.Fset.Position(ev.pos),
					Pass: "locksafe",
					Msg:  "call to " + ev.desc + " inside a mutex critical section; read the wall clock outside the lock",
				})
			}
		}
	}
	return out
}

// locksafeRPC flags direct *chain.Chain method calls in internal/rpc
// outside the lock-free allowlist.
func locksafeRPC(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := chainMethodCallee(p.Info, call)
			if !ok || rpcChainAllowed[name] {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Pass: "locksafe",
				Msg: "call to (*chain.Chain)." + name + " in internal/rpc; " +
					"serve reads from a pinned ReadView (CurrentView), not the chain mutex",
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// chainMethodCallee reports the method name when call invokes a method
// whose receiver is chain.Chain (by value or pointer).
func chainMethodCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/chain") {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Chain" {
		return "", false
	}
	return obj.Name(), true
}

func isDeferredCall(deferred []*ast.CallExpr, call *ast.CallExpr) bool {
	for _, d := range deferred {
		if d == call {
			return true
		}
	}
	return false
}

// classifyLockCall recognises Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex-typed receiver.
func classifyLockCall(p *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return lockEvent{}, false
	}
	if !isMutexType(p.Info.TypeOf(sel.X)) {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), kind: kind}, true
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// clockCallee returns a display name when call reads the wall clock —
// time.Now/time.Since directly, or any function declared in the
// package's clock.go shim file (the detsource-audited home for raw
// clock reads) — else "".
func clockCallee(p *Package, call *ast.CallExpr) string {
	obj := calleeObj(p.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Pkg().Path() == "time" && (obj.Name() == "Now" || obj.Name() == "Since") {
		return "time." + obj.Name()
	}
	if obj.Pkg().Path() == p.ImportPath &&
		strings.HasSuffix(p.Fset.Position(obj.Pos()).Filename, "/clock.go") {
		return obj.Name() + " (clock.go shim)"
	}
	return ""
}

// cryptoCallee returns a display name when call invokes expensive crypto,
// else "".
func cryptoCallee(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/crypto/keccak"):
		return "keccak." + obj.Name()
	case strings.HasSuffix(path, "internal/crypto/secp256k1"):
		return "secp256k1." + obj.Name()
	case strings.HasSuffix(path, "internal/types"):
		switch obj.Name() {
		case "RecoverSenders":
			return "types.RecoverSenders"
		case "Sender", "ValidateBasic":
			// Methods: ECDSA recovery on a sender-cache miss.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return "(*types.Transaction)." + obj.Name()
			}
		}
	}
	return ""
}
