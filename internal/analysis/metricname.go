package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// passMetricname keeps the /metrics surface stable: every
// telemetry.GetCounter/GetGauge/GetHistogram/SetHelp name must be a
// snake_case string literal of the form smartcrowd_<subsystem>_<name>
// with an optional _unit suffix, and handle resolution must happen at
// package scope (a package-level var initializer or func init), so the
// full metric family is registered — and visible in /metrics with zero
// values — before any traffic. Names built at runtime or registered
// lazily drift between builds and break dashboards.
var passMetricname = &Pass{
	Name: "metricname",
	Doc:  "telemetry names are snake_case smartcrowd_<subsystem>_<name>[_unit] literals registered at package init",
	Run:  runMetricname,
}

// metricNameRE: the smartcrowd_ prefix plus at least subsystem and name
// segments, all lower-snake.
var metricNameRE = regexp.MustCompile(`^smartcrowd(_[a-z][a-z0-9]*){2,}$`)

// metricFuncs are the registry entry points whose first argument is a
// metric name.
var metricFuncs = map[string]bool{
	"GetCounter": true, "GetGauge": true, "GetHistogram": true, "SetHelp": true,
}

func runMetricname(p *Package) []Finding {
	if hasPathSuffix(p.ImportPath, "internal/telemetry") {
		return nil // the registry implementation itself
	}
	var out []Finding
	for _, file := range p.Files {
		regions := initRegions(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricFuncs[sel.Sel.Name] {
				return true
			}
			if !strings.HasSuffix(calleePkgPath(p.Info, call), "internal/telemetry") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				out = append(out, p.finding("metricname", call.Args[0],
					"telemetry.%s name must be a string literal, not a computed value", sel.Sel.Name))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err == nil && !metricNameRE.MatchString(name) {
				out = append(out, p.finding("metricname", lit,
					"metric name %q must match smartcrowd_<subsystem>_<name>[_unit] (lower snake_case)", name))
			}
			// SetHelp annotates an already-registered family; only handle
			// resolution is pinned to package init.
			if sel.Sel.Name != "SetHelp" && !inRegions(regions, call.Pos()) {
				out = append(out, p.finding("metricname", call,
					"telemetry.%s outside a package-level var or init; register at package init so /metrics is stable", sel.Sel.Name))
			}
			return true
		})
	}
	return out
}

// region is a half-open source span.
type region struct{ from, to token.Pos }

// initRegions returns the file spans where metric registration is
// allowed: top-level var declarations and init function bodies.
func initRegions(file *ast.File) []region {
	var out []region
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok == token.VAR {
				out = append(out, region{d.Pos(), d.End()})
			}
		case *ast.FuncDecl:
			if d.Name.Name == "init" && d.Recv == nil && d.Body != nil {
				out = append(out, region{d.Body.Pos(), d.Body.End()})
			}
		}
	}
	return out
}

func inRegions(regions []region, pos token.Pos) bool {
	for _, r := range regions {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}
