package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// wiretaintSeedPkgs decode attacker-controlled bytes into integers: the
// TCP framing layer, the p2p snap-sync/range codecs, RLP, and the rpc
// cursor tokens (client-minted until the MAC check passes).
var wiretaintSeedPkgs = []string{
	"internal/wire",
	"internal/p2p",
	"internal/rlp",
	"internal/rpc",
}

// passWiretaint supersedes boundalloc's lexical heuristic with dataflow:
// an integer is tainted when it comes out of a binary.BigEndian /
// LittleEndian decode in a wire-facing package, or flows from one —
// through assignments, struct fields, function results, and call
// arguments. Tainted values must pass a comparison against a bound
// (a named constant, literal, or len/cap of held data) that dominates
// the sink — make sizes, slice/array indexing, slice bounds, io.CopyN
// counts — in the control-flow graph.
//
// The tracking is interprocedural in all three directions the PR 9
// manifest-chunk bug class needs:
//
//   - a decoder returning an unvalidated integer taints its callers
//     (field-sensitively: a struct result with one validated and one raw
//     field only propagates the raw one);
//   - a helper that bounds-checks its parameter is a sanitizer, so
//     `if !okLen(n) { return }` in the caller clears n;
//   - passing a tainted argument taints the callee's parameter, so the
//     allocation inside a helper is still caught.
var passWiretaint = &Pass{
	Name: "wiretaint",
	Doc:  "wire-decoded integers need a dominating bound check before sizing allocations, indexing, or copies",
	Run:  runWiretaint,
}

func runWiretaint(p *Package) []Finding {
	if !strings.Contains(p.ImportPath, "internal/") {
		return nil
	}
	byPkg := p.Prog.memoize("wiretaint", func() any {
		return wiretaintProgram(p.Prog)
	}).(map[*Package][]Finding)
	return byPkg[p]
}

// wtSummary is one function's externally visible taint behaviour.
type wtSummary struct {
	// results maps result index -> tainted paths: "" for the value
	// itself, ".Field" (possibly nested) for struct results.
	results map[int]map[string]bool
	// sanitizes marks parameters the body compares against a bound:
	// calling the function counts as a guard for the argument.
	sanitizes map[int]bool
}

type wtAnalyzer struct {
	cg        *CallGraph
	cfgs      map[string]*CFG
	summaries map[string]*wtSummary
	// paramTaint marks parameters some call site passes a tainted,
	// unguarded argument into.
	paramTaint map[string]map[int]bool
}

func wiretaintProgram(pr *Program) map[*Package][]Finding {
	cg := pr.CallGraph()
	a := &wtAnalyzer{
		cg:         cg,
		cfgs:       map[string]*CFG{},
		summaries:  map[string]*wtSummary{},
		paramTaint: map[string]map[int]bool{},
	}
	var keys []string
	for key, node := range cg.Funcs {
		keys = append(keys, key)
		a.cfgs[key] = BuildCFG(node.Decl.Body)
		a.summaries[key] = &wtSummary{results: map[int]map[string]bool{}, sanitizes: map[int]bool{}}
		a.paramTaint[key] = map[int]bool{}
	}
	sort.Strings(keys)

	// Summaries feed each other (a sanitizer two calls deep, a tainted
	// result re-returned), so iterate to a bounded fixpoint. Guards can
	// retract taint between rounds, so this is not strictly monotone; the
	// cap keeps any oscillation finite and the last state is still a
	// sound-enough lint approximation.
	for round := 0; round < 8; round++ {
		changed := false
		for _, key := range keys {
			sum, argTaint := a.analyzeFunc(cg.Funcs[key], nil)
			if !reflect.DeepEqual(sum, a.summaries[key]) {
				a.summaries[key] = sum
				changed = true
			}
			for callee, params := range argTaint {
				dst := a.paramTaint[callee]
				if dst == nil {
					continue // out-of-module callee
				}
				for i := range params {
					if !dst[i] {
						dst[i] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	findings := map[*Package][]Finding{}
	for _, key := range keys {
		node := cg.Funcs[key]
		a.analyzeFunc(node, func(f Finding) {
			findings[node.Pkg] = append(findings[node.Pkg], f)
		})
	}
	return findings
}

// wtGuard is one dominance-anchored bound check.
type wtGuard struct {
	pos   token.Pos
	atoms map[string]bool
}

// analyzeFunc runs the lexical taint walk over one function body,
// returning its summary and the tainted arguments it passes onward.
// With report set it also emits sink findings (the final phase).
func (a *wtAnalyzer) analyzeFunc(node *FuncNode, report func(Finding)) (*wtSummary, map[string]map[int]bool) {
	p := node.Pkg
	c := a.cfgs[node.Key]
	guards, cmpAtoms := a.collectGuards(node)

	taint := map[string]bool{}
	params := paramNames(node.Decl)
	for i := range a.paramTaint[node.Key] {
		if i < len(params) && params[i] != "" && params[i] != "_" {
			taint[params[i]] = true
		}
	}

	sum := &wtSummary{results: map[int]map[string]bool{}, sanitizes: map[int]bool{}}
	for i, name := range params {
		if name != "" && name != "_" && cmpAtoms[name] {
			sum.sanitizes[i] = true
		}
	}
	argTaint := map[string]map[int]bool{}

	unguarded := func(text string, pos token.Pos) bool {
		return !guardedAt(c, guards, text, pos)
	}
	// taintedTexts returns e's tainted atom texts; withGuards filters the
	// ones a dominating bound check already cleared.
	taintedTexts := func(e ast.Expr, withGuards bool) []string {
		var out []string
		seen := map[string]bool{}
		for _, t := range wtAtoms(p, e) {
			if seen[t] || !textTainted(taint, t) {
				continue
			}
			if withGuards && !unguarded(t, e.Pos()) {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
		sort.Strings(out)
		return out
	}
	sink := func(arg ast.Expr, what string) {
		if report == nil || arg == nil {
			return
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
			return
		}
		hot := taintedTexts(arg, true)
		seeded := a.seedInExpr(p, node, arg)
		if len(hot) == 0 && !seeded {
			return
		}
		src := strings.Join(hot, ", ")
		if src == "" {
			src = "a value decoded in place"
		}
		report(p.finding("wiretaint", arg,
			"%s depends on wire-decoded %s with no dominating bound check; compare it against a named bound constant first", what, src))
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			a.assign(p, node, n, taint)

		case *ast.ReturnStmt:
			for i, res := range n.Results {
				e := ast.Unparen(res)
				if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
					e = ast.Unparen(u.X)
				}
				if at := atomText(p, e); at != "" {
					if textTainted(taint, at) && unguarded(at, n.Pos()) {
						pathsOf(sum.results, i)[""] = true
					}
					for k := range taint {
						if strings.HasPrefix(k, at+".") && unguarded(k, n.Pos()) {
							pathsOf(sum.results, i)[k[len(at):]] = true
						}
					}
				} else if len(taintedTexts(e, true)) > 0 || a.seedInExpr(p, node, e) {
					pathsOf(sum.results, i)[""] = true
				}
			}

		case *ast.CallExpr:
			// Builtin make sized by taint.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) >= 2 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					if t := p.Info.TypeOf(n.Args[0]); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							for _, sz := range n.Args[1:] {
								sink(sz, "allocation size")
							}
						}
					}
					return true
				}
			}
			if obj := calleeObj(p.Info, n); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "io" && obj.Name() == "CopyN" && len(n.Args) == 3 {
				sink(n.Args[2], "copy length")
			}
			// Export taint into callee parameters.
			if site := node.siteFor(n); site != nil {
				for i, arg := range n.Args {
					if len(taintedTexts(arg, true)) == 0 && !a.seedInExpr(p, node, arg) {
						continue
					}
					for _, callee := range site.Callees {
						if argTaint[callee] == nil {
							argTaint[callee] = map[int]bool{}
						}
						argTaint[callee][i] = true
					}
				}
			}

		case *ast.IndexExpr:
			if xt := p.Info.TypeOf(n.X); xt != nil && indexableForTaint(xt) {
				sink(n.Index, "index")
			}

		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				sink(bound, "slice bound")
			}
		}
		return true
	})
	return sum, argTaint
}

// assign updates the taint set for one assignment statement: strong
// kill on overwrite, taint on tainted right-hand sides, field-path
// copy when a whole tainted-fielded value is copied, and summary-driven
// taint for multi-value calls.
func (a *wtAnalyzer) assign(p *Package, node *FuncNode, st *ast.AssignStmt, taint map[string]bool) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		results := map[int]map[string]bool{}
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if site := node.siteFor(call); site != nil {
				for _, callee := range site.Callees {
					if s := a.summaries[callee]; s != nil {
						for i, paths := range s.results {
							for pth := range paths {
								pathsOf(results, i)[pth] = true
							}
						}
					}
				}
			}
			if a.isSeedCall(p, call) {
				pathsOf(results, 0)[""] = true
			}
		}
		for i, lhs := range st.Lhs {
			t := atomText(p, lhs)
			if t == "" {
				continue
			}
			killTaint(taint, t)
			for pth := range results[i] {
				taint[t+pth] = true
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		t := atomText(p, lhs)
		if t == "" {
			continue
		}
		rhs := ast.Unparen(st.Rhs[i])
		tainted := a.exprTainted(p, node, rhs, taint)
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			// op-assign (off += n): the old value feeds the new one.
			tainted = tainted || textTainted(taint, t)
		}
		rhsAtom := atomText(p, rhs)
		killTaint(taint, t)
		if tainted {
			taint[t] = true
		}
		if rhsAtom != "" {
			for k := range taint {
				if strings.HasPrefix(k, rhsAtom+".") {
					taint[t+k[len(rhsAtom):]] = true
				}
			}
		}
	}
}

// collectGuards finds the function's bound checks: comparisons against
// constants or len/cap inside if/for conditions (dominance-anchored),
// plus calls passing an argument into a sanitizing parameter. cmpAtoms
// additionally includes comparisons anywhere (a `return n <= Max` body
// sanitizes n without an if).
func (a *wtAnalyzer) collectGuards(node *FuncNode) ([]wtGuard, map[string]bool) {
	p := node.Pkg
	var guards []wtGuard
	cmpAtoms := map[string]bool{}

	cmpGuard := func(root ast.Expr, anchor token.Pos, domGuard bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
				val, bound := pair[0], pair[1]
				if !isBoundExpr(p, bound) {
					continue
				}
				atoms := map[string]bool{}
				for _, t := range wtAtoms(p, val) {
					atoms[t] = true
					cmpAtoms[t] = true
				}
				if domGuard && len(atoms) > 0 {
					guards = append(guards, wtGuard{pos: anchor, atoms: atoms})
				}
			}
			return true
		})
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			cmpGuard(n.Cond, n.Cond.Pos(), true)
		case *ast.ForStmt:
			if n.Cond != nil {
				cmpGuard(n.Cond, n.Cond.Pos(), true)
			}
		case *ast.BinaryExpr:
			cmpGuard(n, n.Pos(), false) // sanitizer detection only
		case *ast.CallExpr:
			site := node.siteFor(n)
			if site == nil {
				return true
			}
			for _, callee := range site.Callees {
				s := a.summaries[callee]
				if s == nil {
					continue
				}
				for i := range s.sanitizes {
					if i >= len(n.Args) {
						continue
					}
					atoms := map[string]bool{}
					for _, t := range wtAtoms(p, n.Args[i]) {
						atoms[t] = true
						cmpAtoms[t] = true
					}
					if len(atoms) > 0 {
						guards = append(guards, wtGuard{pos: n.Pos(), atoms: atoms})
					}
				}
			}
		}
		return true
	})
	return guards, cmpAtoms
}

// exprTainted reports whether any atom of e carries taint or e embeds a
// fresh decode.
func (a *wtAnalyzer) exprTainted(p *Package, node *FuncNode, e ast.Expr, taint map[string]bool) bool {
	for _, t := range wtAtoms(p, e) {
		if textTainted(taint, t) {
			return true
		}
	}
	return a.seedInExpr(p, node, e)
}

// seedInExpr reports whether e contains a taint source used in place: a
// wire-package endian decode, or a call whose summary taints result 0.
func (a *wtAnalyzer) seedInExpr(p *Package, node *FuncNode, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if a.isSeedCall(p, call) {
			found = true
			return false
		}
		if site := node.siteFor(call); site != nil {
			for _, callee := range site.Callees {
				if s := a.summaries[callee]; s != nil && s.results[0][""] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSeedCall recognises binary.BigEndian/LittleEndian.UintXX in a
// wire-facing package: the moment attacker bytes become an integer.
func (a *wtAnalyzer) isSeedCall(p *Package, call *ast.CallExpr) bool {
	if !hasPathSuffix(p.ImportPath, wiretaintSeedPkgs...) {
		return false
	}
	obj := calleeObj(p.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return false
	}
	return strings.HasPrefix(obj.Name(), "Uint")
}

// guardedAt reports whether a bound check on text dominates pos.
func guardedAt(c *CFG, guards []wtGuard, text string, pos token.Pos) bool {
	blk := c.BlockAt(pos)
	if blk == nil {
		return false
	}
	for _, g := range guards {
		if !g.atoms[text] {
			continue
		}
		gb := c.BlockAt(g.pos)
		if gb == nil {
			continue
		}
		if gb == blk {
			if g.pos < pos {
				return true
			}
			continue
		}
		if c.Dominates(gb, blk) {
			return true
		}
	}
	return false
}

// textTainted applies the field-extension rule: "m" tainted makes
// "m.Chunks" tainted, but not the reverse.
func textTainted(taint map[string]bool, text string) bool {
	if taint[text] {
		return true
	}
	for k := range taint {
		if strings.HasPrefix(text, k+".") {
			return true
		}
	}
	return false
}

// killTaint removes text and every field path under it (strong kill).
func killTaint(taint map[string]bool, text string) {
	delete(taint, text)
	for k := range taint {
		if strings.HasPrefix(k, text+".") {
			delete(taint, k)
		}
	}
}

// wtAtoms collects the variable-backed atoms of e: plain identifiers
// and selector chains, rendered as source text. Closure bodies are a
// different frame and are skipped.
func wtAtoms(p *Package, e ast.Expr) []string {
	if e == nil {
		return nil
	}
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// A call's value is its result, not its arguments: len(x) is a
			// safe measurement, f(x) is whatever f's summary says. Only
			// conversions pass the operand's taint through.
			if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
				return true
			}
			return false
		case *ast.SelectorExpr:
			if v, ok := p.Info.Uses[n.Sel].(*types.Var); ok && v != nil {
				out = append(out, exprText(p.Fset, n))
			}
		case *ast.Ident:
			if v := varObj(p.Info, n); v != nil {
				out = append(out, n.Name)
			}
		}
		return true
	})
	return out
}

// atomText renders e when it is an assignable atom (identifier or
// selector chain), else "".
func atomText(p *Package, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ""
		}
		if v := varObj(p.Info, e); v != nil {
			return e.Name
		}
	case *ast.SelectorExpr:
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && v != nil {
			return exprText(p.Fset, e)
		}
	}
	return ""
}

// isBoundExpr reports whether e can serve as the bound side of a guard:
// a constant-valued expression (literals, named constants, arithmetic
// over them) or anything measuring data already held (len/cap).
func isBoundExpr(p *Package, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// indexableForTaint limits index sinks to sequential containers where
// an oversized index panics: slices, arrays, strings. Map keys and
// generic instantiations are not sinks.
func indexableForTaint(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// pathsOf returns (allocating) the path set for result index i.
func pathsOf(m map[int]map[string]bool, i int) map[string]bool {
	if m[i] == nil {
		m[i] = map[string]bool{}
	}
	return m[i]
}

// paramNames flattens a function declaration's parameter names.
func paramNames(decl *ast.FuncDecl) []string {
	var out []string
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}
