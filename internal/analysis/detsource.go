package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// consensusPkgs are the packages whose outputs must be bit-identical on
// every node: anything hashed, signed, settled or gossiped. PR 1/PR 2
// made their hot paths fast; this pass keeps them deterministic.
var consensusPkgs = []string{
	"internal/chain",
	"internal/state",
	"internal/contract",
	"internal/types",
	"internal/rlp",
	"internal/vm",
}

// passDetsource forbids sources of cross-node divergence in
// consensus-critical packages:
//
//   - raw time.Now / time.Since — wall-clock must flow through a
//     package-local shim in a file named clock.go (the pow/clock.go
//     convention), so every read is auditable in one place;
//   - math/rand imports — consensus code has no business with
//     nondeterministic (or even seeded) randomness;
//   - map-iteration order leaking into an ordered sink — appending map
//     keys/values to an outer slice or streaming them into a hash/writer
//     inside `for range m` produces a node-dependent order unless the
//     collected slice is sorted afterwards (the sort suppresses the
//     finding).
//
// Audited exceptions go in the committed allowlist, not inline.
var passDetsource = &Pass{
	Name: "detsource",
	Doc:  "no raw wall-clock, math/rand, or map-order-dependent writes in consensus-critical packages",
	Run:  runDetsource,
}

func runDetsource(p *Package) []Finding {
	if !hasPathSuffix(p.ImportPath, consensusPkgs...) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding("detsource", spec,
					"import of %s in consensus-critical package; randomness diverges across nodes", path))
			}
		}
		// clock.go is the audited shim file: the one place raw wall-clock
		// reads are allowed, mirroring pow/clock.go.
		clockFile := p.baseFilename(file) == "clock.go"
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !clockFile {
				out = append(out, detsourceClockCalls(p, fn.Body)...)
			}
			out = append(out, detsourceMapOrder(p, fn.Body)...)
		}
	}
	return out
}

// detsourceClockCalls flags time.Now and time.Since calls.
func detsourceClockCalls(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if importedPkgPath(p.Info, sel.X) != "time" {
			return true
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			out = append(out, p.finding("detsource", call,
				"raw time.%s in consensus-critical package; route wall-clock through the package clock.go shim", sel.Sel.Name))
		}
		return true
	})
	return out
}

// detsourceMapOrder flags `for range m` over a map whose body feeds an
// order-sensitive sink, unless the collected slice is sorted later in the
// same function.
func detsourceMapOrder(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range mapOrderSinks(p, rng) {
			if sink.target != nil && sortedAfter(p, body, rng, sink.target) {
				continue
			}
			out = append(out, p.finding("detsource", sink.node,
				"map iteration order flows into %s; collect keys and sort before writing (consensus must be bit-deterministic)", sink.desc))
		}
		return false // sinks inside nested ranges were already collected
	})
	return out
}

// orderSink is one order-sensitive write found inside a map range body.
type orderSink struct {
	node   ast.Node
	desc   string
	target *types.Var // the slice appended to, when that is the sink
}

// streamMethods are writer/hasher methods whose call order is the output
// order.
var streamMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func mapOrderSinks(p *Package, rng *ast.RangeStmt) []orderSink {
	var sinks []orderSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) where x is declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v := varObj(p.Info, lhs)
				if v == nil || v.Pos() >= rng.Pos() {
					continue // loop-local accumulator; order dies with the loop
				}
				sinks = append(sinks, orderSink{node: n, desc: lhs.Name, target: v})
			}
		case *ast.SendStmt:
			sinks = append(sinks, orderSink{node: n, desc: "a channel send"})
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && streamMethods[sel.Sel.Name] {
				// Only method calls (hash/writer streams), not package
				// functions that happen to be named Write.
				if _, isMethod := p.Info.Selections[sel]; isMethod {
					sinks = append(sinks, orderSink{node: n, desc: "a stream write (" + sel.Sel.Name + ")"})
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether target is passed to a sort.*/slices.Sort*
// call after the range loop in the same function body — the canonical
// collect-then-sort idiom, which is deterministic.
func sortedAfter(p *Package, body *ast.BlockStmt, rng *ast.RangeStmt, target *types.Var) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() < rng.End() {
			return true
		}
		pkg := calleePkgPath(p.Info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && varObj(p.Info, id) == target {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				sorted = true
				break
			}
		}
		return true
	})
	return sorted
}
