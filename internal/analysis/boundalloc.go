package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wirePkgs are the packages that decode attacker-controlled bytes: the
// TCP framing layer, the p2p message codecs, and RLP. PR 4's framing
// validates a declared length against MaxFramePayload before allocating;
// this pass makes that discipline structural.
var wirePkgs = []string{
	"internal/wire",
	"internal/p2p",
	"internal/rlp",
}

// passBoundalloc flags `make([]T, n)` (and the capacity argument) in
// network-decoding packages when n is a runtime value with no dominating
// bound check. A size is considered bounded when it is a constant,
// derives from len/cap of data already in memory, or every variable
// feeding it appears in a comparison inside an earlier if-condition in
// the same function (the reject-before-allocate idiom). Everything else
// is a remote peer choosing our allocation size.
var passBoundalloc = &Pass{
	Name: "boundalloc",
	Doc:  "slice allocations sized by decoded input need a dominating bound check in wire/p2p/rlp",
	Run:  runBoundalloc,
}

func runBoundalloc(p *Package) []Finding {
	if !hasPathSuffix(p.ImportPath, wirePkgs...) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, boundallocFunc(p, fn.Body)...)
		}
	}
	return out
}

// guard is an if-condition that compares some variables: the canonical
// `if n > bound { return err }` shape dominating a later allocation.
type guard struct {
	pos  token.Pos
	vars map[*types.Var]bool
}

func boundallocFunc(p *Package, body *ast.BlockStmt) []Finding {
	var guards []guard
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		vars := comparedVars(p, ifStmt.Cond)
		if len(vars) > 0 {
			guards = append(guards, guard{pos: ifStmt.Pos(), vars: vars})
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		t := p.Info.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return true // chans and maps size lazily; slices allocate eagerly
		}
		for _, sizeArg := range call.Args[1:] {
			for _, v := range riskVars(p, sizeArg) {
				if guardedBefore(guards, v, call.Pos()) {
					continue
				}
				out = append(out, p.finding("boundalloc", sizeArg,
					"make size depends on %q with no dominating bound check; a remote peer picks this allocation — cap it first", v.Name()))
			}
		}
		return true
	})
	return out
}

// comparedVars collects the variables that participate in an ordering or
// equality comparison anywhere in cond.
func comparedVars(p *Package, cond ast.Expr) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := varObj(p.Info, id); v != nil {
						vars[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return vars
}

// riskVars returns the variables a size expression depends on, excluding
// anything already proven safe: constant expressions contribute nothing,
// and arguments of len/cap are measurements of data we already hold, not
// attacker input.
func riskVars(p *Package, size ast.Expr) []*types.Var {
	if tv, ok := p.Info.Types[size]; ok && tv.Value != nil {
		return nil // compile-time constant
	}
	var lenArgs []ast.Node
	ast.Inspect(size, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range call.Args {
					lenArgs = append(lenArgs, a)
				}
			}
		}
		return true
	})
	inLenArg := func(pos token.Pos) bool {
		for _, a := range lenArgs {
			if a.Pos() <= pos && pos < a.End() {
				return true
			}
		}
		return false
	}
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(size, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || inLenArg(id.Pos()) {
			return true
		}
		if v := varObj(p.Info, id); v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func guardedBefore(guards []guard, v *types.Var, before token.Pos) bool {
	for _, g := range guards {
		if g.pos < before && g.vars[v] {
			return true
		}
	}
	return false
}
