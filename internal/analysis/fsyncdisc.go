package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// storagePkgs are the packages that own durable on-disk state. A Write
// that never meets an fsync rides the page cache: the process reports
// the block committed while a power cut can still erase it, which is
// exactly the torn-commit class the WAL protocol exists to prevent.
var storagePkgs = []string{
	"internal/store",
}

// passFsyncdisc flags os.File write calls (Write/WriteAt/WriteString) in
// the storage package that are not followed, later in the same function,
// by a Sync or Close on the same file handle. "Same handle" matches the
// receiver object (a local variable or a struct field), so syncing the
// WAL does not excuse an unsynced log write. Deferred Sync/Close counts
// regardless of source position, since defers run at return.
//
// This is a commit-path discipline, not a proof: a write whose fsync
// lives in a different function is invisible to the check and must be
// allowlisted with its audit trail (the deliberately-unsynced index
// append in Disk.AppendBlocks is the canonical entry — the index is
// rebuilt from the log on open, so its durability adds nothing).
var passFsyncdisc = &Pass{
	Name: "fsyncdisc",
	Doc:  "os.File writes in the storage package need a later Sync/Close on the same handle",
	Run:  runFsyncdisc,
}

// fileWriteFuncs are the os.File methods that put bytes in the page
// cache; fileCommitFuncs are the methods that flush or release them.
var (
	fileWriteFuncs  = map[string]bool{"Write": true, "WriteAt": true, "WriteString": true}
	fileCommitFuncs = map[string]bool{"Sync": true, "Close": true}
)

func runFsyncdisc(p *Package) []Finding {
	if !hasPathSuffix(p.ImportPath, storagePkgs...) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, fsyncdiscFunc(p, fn.Body)...)
		}
	}
	return out
}

// commitPoint is one Sync/Close call: which handle, and the position
// after which writes are considered flushed. Deferred commits cover the
// whole function body.
type commitPoint struct {
	handle *types.Var
	pos    token.Pos
}

func fsyncdiscFunc(p *Package, body *ast.BlockStmt) []Finding {
	var commits []commitPoint
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		pos := token.Pos(0)
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			// A deferred Sync/Close runs at return, after every write in
			// the function regardless of where the defer is written.
			call, pos = stmt.Call, body.End()
		case *ast.CallExpr:
			call, pos = stmt, stmt.Pos()
		default:
			return true
		}
		if name, handle := osFileMethod(p, call); fileCommitFuncs[name] && handle != nil {
			commits = append(commits, commitPoint{handle: handle, pos: pos})
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, handle := osFileMethod(p, call)
		if !fileWriteFuncs[name] || handle == nil {
			return true
		}
		for _, c := range commits {
			if c.handle == handle && c.pos > call.Pos() {
				return true
			}
		}
		out = append(out, p.finding("fsyncdisc", call,
			"os.File.%s on %q with no later Sync/Close on the same handle in this function; an unflushed write is not durable — fsync it on the commit path or allowlist the audited exception", name, handle.Name()))
		return true
	})
	return out
}

// osFileMethod reports the method name and receiver handle when call is
// a method call on an *os.File (or os.File) value whose receiver is a
// plain variable or a struct field; ("", nil) otherwise. Matching the
// receiver object rather than its rendered text keeps `d.idxF` in two
// statements the same handle while `d.idxF` and `d.walF` stay distinct.
func osFileMethod(p *Package, call *ast.CallExpr) (string, *types.Var) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if !isOSFile(p.Info.TypeOf(sel.X)) {
		return "", nil
	}
	var handle *types.Var
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		handle = varObj(p.Info, recv)
	case *ast.SelectorExpr:
		handle = varObj(p.Info, recv.Sel)
	}
	return sel.Sel.Name, handle
}

// isOSFile reports whether t is os.File or *os.File.
func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
