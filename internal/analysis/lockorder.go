package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderPkgs are the packages whose mutexes guard the node's hot
// paths — the jurisdiction in which acquisition-order edges are
// collected and findings reported. Locks living elsewhere still appear
// in the graph when a scoped function reaches them through a call.
var lockorderPkgs = []string{
	"internal/chain",
	"internal/node",
	"internal/p2p",
	"internal/store",
	"internal/rpc",
	"internal/txpool",
	"internal/telemetry",
	"internal/wire",
}

// blessedLockOrder is the repo's documented global acquisition order,
// outermost first. Any two locks ever held together must be acquired
// left-to-right along this list; lockorder reports the cycles that
// violate it. See DESIGN.md §9.
const blessedLockOrder = "node.* -> chain.Chain.mu -> txpool.Pool.mu -> store.Disk.* -> wire.Transport.mu -> telemetry.*"

// passLockorder detects static deadlock potential: it extracts every
// Lock/RLock region per mutex identity (declaring type + field, or
// package variable), propagates may-acquire sets bottom-up through the
// call graph, and reports every edge that participates in a cycle of
// the resulting lock-acquisition graph. A cycle means two executions
// can acquire the same pair of locks in opposite orders — the classic
// AB/BA deadlock -race never reliably exercises.
//
// Identity is per declaration, not per instance: two instances of the
// same type share an id, so same-type hand-over-hand locking is
// invisible (and self-edges are dropped for the same reason). Goroutine
// bodies launched inside a region run concurrently, not under the
// caller's locks, so they form their own root contexts; deferred calls
// are skipped (they run as the region unwinds).
var passLockorder = &Pass{
	Name: "lockorder",
	Doc:  "no cycles in the interprocedural lock-acquisition graph (static AB/BA deadlock detection)",
	Run:  runLockorder,
}

// loEdge is one observed "acquired to while holding from" ordering.
type loEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	via      string // callee key for call-propagated edges, "" for direct
}

func runLockorder(p *Package) []Finding {
	if !hasPathSuffix(p.ImportPath, lockorderPkgs...) {
		return nil
	}
	byPkg := p.Prog.memoize("lockorder", func() any {
		return lockorderProgram(p.Prog)
	}).(map[*Package][]Finding)
	return byPkg[p]
}

func lockorderProgram(pr *Program) map[*Package][]Finding {
	cg := pr.CallGraph()

	// Every function's direct acquisitions (module-wide: helpers outside
	// the scoped packages still count when called under a scoped lock).
	direct := map[string]map[string]bool{}
	for key, node := range cg.Funcs {
		set := map[string]bool{}
		for _, ev := range loEvents(node.Pkg, node.Decl.Body) {
			if ev.acquire {
				set[ev.id] = true
			}
		}
		direct[key] = set
	}
	mayAcquire := cg.FixpointSets(direct, true)

	// Edge collection: every function body, plus every go-launched func
	// literal as its own lock-free root.
	var edges []loEdge
	adj := map[string]map[string]bool{}
	addEdge := func(e loEdge) {
		if e.from == e.to {
			return
		}
		edges = append(edges, e)
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
		if adj[e.to] == nil {
			adj[e.to] = map[string]bool{}
		}
	}
	for _, node := range cg.Funcs {
		bodies := []*ast.BlockStmt{node.Decl.Body}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					bodies = append(bodies, lit.Body)
				}
			}
			return true
		})
		for _, body := range bodies {
			collectLockEdges(node, body, mayAcquire, addEdge)
		}
	}

	// Cycles = non-trivial strongly connected components.
	scc := tarjanSCC(adj)
	inCycle := func(a, b string) bool {
		ca, ok1 := scc[a]
		cb, ok2 := scc[b]
		return ok1 && ok2 && ca.id == cb.id && ca.size > 1
	}

	// One finding per directed edge inside a cycle, at the earliest site.
	best := map[[2]string]loEdge{}
	for _, e := range edges {
		if !inCycle(e.from, e.to) {
			continue
		}
		k := [2]string{e.from, e.to}
		prev, ok := best[k]
		if !ok || e.pos < prev.pos {
			best[k] = e
		}
	}
	out := map[*Package][]Finding{}
	for _, e := range best {
		if !hasPathSuffix(e.pkg.ImportPath, lockorderPkgs...) {
			continue
		}
		members := make([]string, 0, 4)
		for m, c := range scc {
			if c.id == scc[e.from].id {
				members = append(members, m)
			}
		}
		sort.Strings(members)
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via call to %s)", shortKey(e.via))
		}
		out[e.pkg] = append(out[e.pkg], Finding{
			Pos:  e.pkg.Fset.Position(e.pos),
			Pass: "lockorder",
			Msg: fmt.Sprintf("acquiring %s while holding %s%s closes a lock-order cycle {%s}; keep to the blessed order: %s",
				e.to, e.from, via, strings.Join(members, ", "), blessedLockOrder),
		})
	}
	return out
}

// loEvent is one acquisition or release, in lexical order.
type loEvent struct {
	pos     token.Pos
	id      string
	acquire bool
}

// loEvents extracts the Lock/RLock/Unlock/RUnlock events of body,
// excluding go-launched literal bodies (separate contexts) and deferred
// unlocks (the region stays open to function end, exactly as locksafe
// models it).
func loEvents(p *Package, body *ast.BlockStmt) []loEvent {
	nested := goLitRanges(body)
	var deferred []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred = append(deferred, d.Call)
		}
		return true
	})
	var events []loEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inRanges(nested, call.Pos()) {
			return true
		}
		id, acquire, ok := lockCallID(p, call)
		if !ok {
			return true
		}
		if !acquire && isDeferredCall(deferred, call) {
			return true
		}
		events = append(events, loEvent{pos: call.Pos(), id: id, acquire: acquire})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// collectLockEdges replays body's lexical lock events against its call
// sites, emitting a from->to edge whenever a lock is acquired — directly
// or transitively through a call — while another is held.
func collectLockEdges(node *FuncNode, body *ast.BlockStmt, mayAcquire map[string]map[string]bool, addEdge func(loEdge)) {
	nested := goLitRanges(body)
	events := loEvents(node.Pkg, body)

	type callEvent struct {
		pos     token.Pos
		callees []string
	}
	var calls []callEvent
	for _, site := range node.CallsIn(body.Pos(), body.End()) {
		if site.Deferred || inRanges(nested, site.Call.Pos()) {
			continue
		}
		calls = append(calls, callEvent{pos: site.Call.Pos(), callees: site.Callees})
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	held := map[string]int{}
	heldIDs := func() []string {
		ids := make([]string, 0, len(held))
		for id, n := range held {
			if n > 0 {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		return ids
	}
	ci := 0
	emitCalls := func(until token.Pos) {
		for ; ci < len(calls) && calls[ci].pos < until; ci++ {
			hs := heldIDs()
			if len(hs) == 0 {
				continue
			}
			for _, callee := range calls[ci].callees {
				for acq := range mayAcquire[callee] {
					for _, h := range hs {
						addEdge(loEdge{from: h, to: acq, pos: calls[ci].pos, pkg: node.Pkg, via: callee})
					}
				}
			}
		}
	}
	for _, ev := range events {
		emitCalls(ev.pos)
		if ev.acquire {
			for _, h := range heldIDs() {
				addEdge(loEdge{from: h, to: ev.id, pos: ev.pos, pkg: node.Pkg})
			}
			held[ev.id]++
		} else if held[ev.id] > 0 {
			held[ev.id]--
		}
	}
	emitCalls(body.End())
}

// lockCallID recognises sync mutex Lock/RLock/Unlock/RUnlock calls and
// names the mutex by declaration: "pkg.Type.field" for struct fields,
// "pkg.Type" for locks promoted from an embedded mutex, "pkg.name" for
// variables.
func lockCallID(p *Package, call *ast.CallExpr) (id string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	obj := calleeObj(p.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	id = mutexExprID(p, sel.X)
	if id == "" {
		return "", false, false
	}
	return id, acquire, true
}

// mutexExprID names the mutex an expression denotes, by declaration.
func mutexExprID(p *Package, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		v, ok := p.Info.Uses[x.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			if s, ok := p.Info.Selections[x]; ok {
				if owner := namedOf(s.Recv()); owner != nil && owner.Obj().Pkg() != nil {
					return shortPkg(owner.Obj().Pkg().Path()) + "." + owner.Obj().Name() + "." + v.Name()
				}
			}
		}
		if v.Pkg() != nil {
			return shortPkg(v.Pkg().Path()) + "." + v.Name()
		}
	case *ast.Ident:
		v := varObj(p.Info, x)
		if v == nil {
			return ""
		}
		// A promoted Lock on an embedding type: the receiver expression
		// is the struct itself, so its named type is the identity.
		if named := namedOf(v.Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() != "sync" {
			return shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
		}
		pkgPath := p.ImportPath
		if v.Pkg() != nil {
			pkgPath = v.Pkg().Path()
		}
		return shortPkg(pkgPath) + "." + v.Name()
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// sccInfo labels a node with its component id and component size.
type sccInfo struct{ id, size int }

// tarjanSCC computes strongly connected components of a string graph.
func tarjanSCC(adj map[string]map[string]bool) map[string]sccInfo {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	out := map[string]sccInfo{}
	next, compID := 0, 0

	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			for _, m := range members {
				out[m] = sccInfo{id: compID, size: len(members)}
			}
			compID++
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
