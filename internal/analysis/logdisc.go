package analysis

import (
	"go/ast"
	"strings"
)

// passLogdisc enforces the logging discipline introduced with the
// structured logger: library code (everything under internal/) must not
// write free-form text to stderr/stdout via stdlib log or fmt.Print*.
// Those sinks bypass the leveled ring behind /debug/logs, carry no
// subsystem or trace id, and interleave across goroutines. Commands
// (cmd/, examples/) keep their human-facing fmt output, and test files
// are never loaded by the analyzer, so both are exempt by construction.
var passLogdisc = &Pass{
	Name: "logdisc",
	Doc:  "internal packages log through telemetry.Log, not stdlib log or fmt.Print*",
	Run:  runLogdisc,
}

// fmtPrintFuncs are the fmt functions that write to process stdout.
// Fprint* variants take an explicit writer and stay legal — rendering to
// a buffer or an HTTP response is not logging.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

func runLogdisc(p *Package) []Finding {
	if !strings.Contains(p.ImportPath+"/", "internal/") {
		return nil
	}
	if hasPathSuffix(p.ImportPath, "internal/telemetry") {
		return nil // the logger implementation itself
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPkgPath(p.Info, sel.X) {
			case "log":
				out = append(out, p.finding("logdisc", call,
					"stdlib log.%s in internal package; use telemetry.Log(<subsystem>) so entries are leveled, ring-buffered and trace-stamped", sel.Sel.Name))
			case "fmt":
				if fmtPrintFuncs[sel.Sel.Name] {
					out = append(out, p.finding("logdisc", call,
						"fmt.%s writes to stdout from an internal package; use telemetry.Log(<subsystem>) (or fmt.Fprint* with an explicit writer)", sel.Sel.Name))
				}
			}
			return true
		})
	}
	return out
}
