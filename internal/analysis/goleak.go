package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// passGoleak demands every spawned goroutine have a reachable
// termination path. A goroutine is flagged when the function (or
// literal) it launches provably never returns — its CFG exit is
// unreachable, or a call to a never-returning function dominates the
// exit — AND neither it nor anything it calls waits on a shutdown
// signal (a stop/done/ctx channel receive, a close-terminated range
// over a channel, a WaitGroup registration, os.Exit/Goexit). Such a
// goroutine outlives every Close/Stop the node performs: the classic
// slow leak that only shows up as RSS creep in soak tests.
//
// The analysis is interprocedural: a select-on-stop buried two helpers
// deep still counts, and `go func() { s.spinForever() }()` is still
// caught even though the literal itself falls off its end.
var passGoleak = &Pass{
	Name: "goleak",
	Doc:  "every go statement launches work with a reachable termination path or shutdown signal",
	Run:  runGoleak,
}

// goleakFacts are the program-wide results, computed once.
type goleakFacts struct {
	cg *CallGraph
	// noTerm marks functions with no terminating path: exit unreachable,
	// or every path funnels through a call to a noTerm function.
	noTerm map[string]bool
	// signal marks functions that — directly or transitively — wait on a
	// shutdown signal.
	signal map[string]map[string]bool
	cfgs   map[string]*CFG
}

const termSignalFact = "term-signal"

func runGoleak(p *Package) []Finding {
	if !strings.Contains(p.ImportPath, "internal/") {
		return nil
	}
	facts := p.Prog.memoize("goleak", func() any {
		return buildGoleakFacts(p.Prog)
	}).(*goleakFacts)

	var out []Finding
	for _, node := range facts.cg.Funcs {
		if node.Pkg != p {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if desc, leaky := goStmtLeaks(facts, node, g); leaky {
				out = append(out, p.finding("goleak", g,
					"goroutine %s has no reachable termination path: it never returns and waits on no stop/done/ctx signal; give it a stop channel, context, or bounded loop", desc))
			}
			return true
		})
	}
	return out
}

// goStmtLeaks decides one go statement. Literals are analyzed in place;
// named targets via the program facts. Interface dispatch only counts
// when every resolvable implementation leaks.
func goStmtLeaks(facts *goleakFacts, node *FuncNode, g *ast.GoStmt) (string, bool) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return "func literal", litLeaks(facts, node, lit)
	}
	site := node.siteFor(g.Call)
	if site == nil {
		return "", false
	}
	any := false
	var desc string
	for _, callee := range site.Callees {
		if _, known := facts.cg.Funcs[callee]; !known {
			return "", false // out-of-module target: not analyzable
		}
		any = true
		if !facts.noTerm[callee] || facts.signal[callee][termSignalFact] {
			return "", false
		}
		desc = shortKey(callee)
	}
	return desc, any
}

func (n *FuncNode) siteFor(call *ast.CallExpr) *CallSite {
	for i := range n.Calls {
		if n.Calls[i].Call == call {
			return &n.Calls[i]
		}
	}
	return nil
}

// litLeaks analyzes one go-launched literal body with the same rules
// the program-wide pass applies to declared functions.
func litLeaks(facts *goleakFacts, node *FuncNode, lit *ast.FuncLit) bool {
	c := BuildCFG(lit.Body)
	calls := node.CallsIn(lit.Body.Pos(), lit.Body.End())
	nestedLits := nestedFuncLitRanges(lit.Body)
	noTerm := !c.CanReach(c.Entry, c.Exit)
	if !noTerm {
		noTerm = dominatedByNoTerm(c, calls, nestedLits, facts.noTerm)
	}
	if !noTerm {
		return false
	}
	if directTermSignal(node.Pkg, lit.Body) {
		return false
	}
	nestedGo := goLitRanges(lit.Body)
	for _, site := range calls {
		if inRanges(nestedGo, site.Call.Pos()) {
			continue
		}
		for _, callee := range site.Callees {
			if facts.signal[callee][termSignalFact] {
				return false
			}
		}
	}
	return true
}

func buildGoleakFacts(pr *Program) *goleakFacts {
	cg := pr.CallGraph()
	facts := &goleakFacts{
		cg:     cg,
		noTerm: map[string]bool{},
		cfgs:   make(map[string]*CFG, len(cg.Funcs)),
	}
	litRanges := map[string][][2]token.Pos{}
	for key, node := range cg.Funcs {
		facts.cfgs[key] = BuildCFG(node.Decl.Body)
		litRanges[key] = nestedFuncLitRanges(node.Decl.Body)
		if !facts.cfgs[key].CanReach(facts.cfgs[key].Entry, facts.cfgs[key].Exit) {
			facts.noTerm[key] = true
		}
	}
	// A function also never terminates when a call to a never-terminating
	// callee dominates its exit — `func run() { spin() }` is as infinite
	// as spin itself. Iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for key, node := range cg.Funcs {
			if facts.noTerm[key] {
				continue
			}
			if dominatedByNoTerm(facts.cfgs[key], node.Calls, litRanges[key], facts.noTerm) {
				facts.noTerm[key] = true
				changed = true
			}
		}
	}

	direct := map[string]map[string]bool{}
	for key, node := range cg.Funcs {
		set := map[string]bool{}
		if directTermSignal(node.Pkg, node.Decl.Body) {
			set[termSignalFact] = true
		}
		direct[key] = set
	}
	facts.signal = cg.FixpointSets(direct, true)
	return facts
}

// dominatedByNoTerm reports whether some call whose every target is
// known never to terminate sits on all paths to the exit. Calls inside
// func literals are skipped — they run when invoked, not here — as are
// deferred calls.
func dominatedByNoTerm(c *CFG, calls []CallSite, litRanges [][2]token.Pos, noTerm map[string]bool) bool {
	for _, site := range calls {
		if site.Deferred || len(site.Callees) == 0 || inRanges(litRanges, site.Call.Pos()) {
			continue
		}
		all := true
		for _, callee := range site.Callees {
			if !noTerm[callee] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		if blk := c.BlockAt(site.Call.Pos()); blk != nil && c.Dominates(blk, c.Exit) {
			return true
		}
	}
	return false
}

// directTermSignal scans one body (excluding nested go-launched
// literals, which run concurrently) for an in-function shutdown signal.
func directTermSignal(p *Package, body *ast.BlockStmt) bool {
	nestedGo := goLitRanges(body)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inRanges(nestedGo, n.Pos()) && stopishExpr(p, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			// Range over a channel terminates when the sender closes it —
			// a termination path owned by the other side.
			if !inRanges(nestedGo, n.Pos()) {
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if inRanges(nestedGo, n.Pos()) {
				return true
			}
			obj := calleeObj(p.Info, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "os":
				if obj.Name() == "Exit" {
					found = true
				}
			case "runtime":
				if obj.Name() == "Goexit" {
					found = true
				}
			case "sync":
				// Done/Wait on a WaitGroup: the goroutine participates in a
				// registered join, so something owns its lifetime.
				if obj.Name() == "Done" || obj.Name() == "Wait" {
					found = true
				}
			case "log":
				if strings.HasPrefix(obj.Name(), "Fatal") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// stopishExpr reports whether a received-from channel expression reads
// like a shutdown signal ("<-t.stop", "<-ctx.Done()", "<-p.quit", ...).
func stopishExpr(p *Package, x ast.Expr) bool {
	text := strings.ToLower(exprText(p.Fset, x))
	for _, kw := range []string{"stop", "done", "quit", "shutdown", "exit", "kill", "halt", "closing", "closed", "ctx", "cancel"} {
		if strings.Contains(text, kw) {
			return true
		}
	}
	return false
}

// nestedFuncLitRanges returns the body span of every func literal under
// root — go-launched or not.
func nestedFuncLitRanges(root ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
		}
		return true
	})
	return out
}

// exprText renders an expression back to source text — the canonical
// string form the taint and signal analyses key on.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}
