package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is a statement-level control-flow graph for one function body.
// Blocks hold statements in execution order; edges follow Go control
// flow including labeled break/continue and goto. Func literals inside
// the body are opaque — their statements belong to the enclosing
// statement's block (they execute when called, not where written).
//
// The graph exists for two questions the interprocedural passes ask:
//
//   - dominance: does this bound check lie on every path to that
//     allocation? (wiretaint's "dominating comparison")
//   - reachability: can control leave this loop at all? (goleak's
//     "reachable termination path")
//
// Precision notes: fallthrough is treated as an ordinary statement (the
// next case is already a sibling successor of the switch head), and
// panic is not an exit — both err toward fewer findings, never more.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block

	spans []nodeSpan
	doms  map[*Block]map[*Block]bool
}

// Block is one basic block.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

type nodeSpan struct {
	pos, end token.Pos
	b        *Block
}

// BuildCFG constructs the graph for a function or func-literal body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	c.Entry = c.newBlock()
	c.Exit = c.newBlock()
	b := &cfgBuilder{cfg: c, cur: c.Entry, labels: map[string]*Block{}}
	b.stmtList(body.List)
	b.edge(b.cur, c.Exit)
	for _, g := range b.gotos {
		if target := b.labels[g.label]; target != nil {
			b.edge(g.from, target)
		}
	}
	return c
}

// BlockAt returns the block of the innermost recorded statement whose
// span covers pos, or nil — the bridge from expression positions (a
// make call, a comparison) to graph nodes.
func (c *CFG) BlockAt(pos token.Pos) *Block {
	var best *Block
	bestSize := token.Pos(-1)
	for _, s := range c.spans {
		if s.pos <= pos && pos < s.end {
			if size := s.end - s.pos; best == nil || size < bestSize {
				best, bestSize = s.b, size
			}
		}
	}
	return best
}

// Dominates reports whether a lies on every entry path to b. A block
// unreachable from entry dominates nothing and is dominated by nothing.
func (c *CFG) Dominates(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	if c.doms == nil {
		c.computeDominators()
	}
	return c.doms[b][a]
}

// CanReach reports whether to is reachable from from along edges.
func (c *CFG) CanReach(from, to *Block) bool {
	if from == nil || to == nil {
		return false
	}
	seen := map[*Block]bool{from: true}
	work := []*Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// computeDominators runs the classic iterative data-flow over the
// reachable subgraph; function CFGs are small enough that sets of
// blocks beat anything cleverer.
func (c *CFG) computeDominators() {
	reach := map[*Block]bool{}
	work := []*Block{c.Entry}
	reach[c.Entry] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	c.doms = map[*Block]map[*Block]bool{}
	c.doms[c.Entry] = map[*Block]bool{c.Entry: true}
	var reachable []*Block
	for _, b := range c.Blocks {
		if reach[b] && b != c.Entry {
			reachable = append(reachable, b)
			all := make(map[*Block]bool, len(c.Blocks))
			for _, o := range c.Blocks {
				if reach[o] {
					all[o] = true
				}
			}
			c.doms[b] = all
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range reachable {
			next := map[*Block]bool{}
			first := true
			for _, p := range b.Preds {
				if !reach[p] {
					continue
				}
				if first {
					for d := range c.doms[p] {
						next[d] = true
					}
					first = false
					continue
				}
				for d := range next {
					if !c.doms[p][d] {
						delete(next, d)
					}
				}
			}
			next[b] = true
			if len(next) != len(c.doms[b]) {
				c.doms[b] = next
				changed = true
			}
		}
	}
}

func (c *CFG) newBlock() *Block {
	b := &Block{}
	c.Blocks = append(c.Blocks, b)
	return b
}

// cfgTarget is one enclosing breakable construct.
type cfgTarget struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block
	targets []cfgTarget
	// pending is a label waiting to attach to the next loop/switch, so
	// `break label` and `continue label` resolve to that construct.
	pending string
	labels  map[string]*Block
	gotos   []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block { return b.cfg.newBlock() }

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block and records its span.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.cfg.spans = append(b.cfg.spans, nodeSpan{pos: n.Pos(), end: n.End(), b: b.cur})
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *cfgBuilder) push(t cfgTarget) { b.targets = append(b.targets, t) }
func (b *cfgBuilder) pop()             { b.targets = b.targets[:len(b.targets)-1] }

func (b *cfgBuilder) findBreak(label *ast.Ident) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label *ast.Ident) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if t.isLoop && (label == nil || t.label == label.Name) {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		// The if itself anchors its condition's block; its span covers
		// the whole statement, so BlockAt prefers inner statements.
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		body := b.newBlock()
		b.edge(head, body)
		b.push(cfgTarget{label: label, isLoop: true, breakTo: after, continueTo: cont})
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s.X)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.push(cfgTarget{label: label, isLoop: true, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.pop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.push(cfgTarget{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.pop()
		// A select{} with no cases blocks forever: head gets no edges,
		// after stays unreachable — exactly the semantics.
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(s.Label); t != nil {
				b.edge(b.cur, t.breakTo)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findContinue(s.Label); t != nil {
				b.edge(b.cur, t.continueTo)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = b.newBlock()
		}

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	default:
		b.add(s)
	}
}

func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	after := b.newBlock()
	b.push(cfgTarget{label: label, breakTo: after})
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.pop()
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}
