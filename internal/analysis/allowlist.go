package analysis

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// Allowlist holds the audited exceptions scvet suppresses. The committed
// file (.scvet.allow at the module root) is the only suppression
// mechanism — no inline nolint comments — so every exception is reviewed
// in one place with its justification.
//
// File format, one entry per line:
//
//	<pass> <file-suffix> <message substring>
//
// Blank lines and #-comments are ignored; the comment above an entry is
// the conventional place for the justification. An entry suppresses a
// finding when the pass matches exactly, the finding's file path ends in
// file-suffix, and the message contains the substring.
type Allowlist struct {
	Entries []*AllowEntry
}

// AllowEntry is one parsed allowlist line.
type AllowEntry struct {
	Pass       string
	FileSuffix string
	MsgSub     string
	Line       int // line number in the allowlist file, for diagnostics
	Used       bool
}

// LoadAllowlist parses path. A missing file is an empty allowlist, not an
// error, so fresh checkouts need no stub file.
func LoadAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Allowlist{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	al := &Allowlist{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs `<pass> <file-suffix> <message substring>`", path, lineNo)
		}
		if PassByName(fields[0]) == nil {
			return nil, fmt.Errorf("%s:%d: unknown pass %q", path, lineNo, fields[0])
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Pass:       fields[0],
			FileSuffix: fields[1],
			MsgSub:     strings.TrimSpace(fields[2]),
			Line:       lineNo,
		})
	}
	return al, sc.Err()
}

// Allows reports whether f is a committed, audited exception, marking the
// matching entry used.
func (al *Allowlist) Allows(f Finding) bool {
	for _, e := range al.Entries {
		if e.Pass == f.Pass &&
			strings.HasSuffix(f.Pos.Filename, e.FileSuffix) &&
			strings.Contains(f.Msg, e.MsgSub) {
			e.Used = true
			return true
		}
	}
	return false
}

// Filter splits findings into kept (to report) and suppressed counts.
func (al *Allowlist) Filter(findings []Finding) (kept []Finding, suppressed int) {
	for _, f := range findings {
		if al.Allows(f) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// Unused returns entries that matched nothing — stale exceptions that
// should be deleted so the allowlist never outlives the code it excuses.
func (al *Allowlist) Unused() []*AllowEntry {
	var out []*AllowEntry
	for _, e := range al.Entries {
		if !e.Used {
			out = append(out, e)
		}
	}
	return out
}
