// Package analysis is SmartCrowd's project-specific static-analysis
// suite: the pass catalog behind `cmd/scvet`. Generic linters cannot see
// the invariants this codebase actually depends on — consensus-critical
// packages must be bit-deterministic across nodes, expensive crypto must
// stay out of mutex critical sections (the PR-2 stage-1/stage-2 split),
// telemetry names must be stable literals, and every allocation sized by
// a network-decoded value must be bounded first. Each pass encodes one of
// those invariants as a machine check over the type-checked AST.
//
// The implementation is deliberately stdlib-only (go/parser + go/ast +
// go/types), matching the repo's zero-dependency rule. Packages are
// loaded by shelling out to `go list -deps -export -json`, which yields
// both the file sets to parse and compiler export data for every import;
// a gc-importer with a lookup function then lets go/types resolve imports
// without golang.org/x/tools.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one type-checked target package ready for the passes.
type Package struct {
	// ImportPath is the package's import path. Fixture packages loaded
	// with LoadDir carry the "as-if" path of the production package they
	// stand in for, so path-scoped passes apply.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-check errors. Loading keeps going so
	// scvet can still report on a tree mid-refactor, but callers may want
	// to surface these.
	TypeErrors []error
	// Prog links back to the whole load: the interprocedural passes
	// (lockorder, goleak, wiretaint) need every package's function bodies
	// to chase calls across package boundaries. Load wires all packages
	// into one Program; LoadDir wraps the fixture in a singleton.
	Prog *Program
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct{ Main bool }
}

// newInfo allocates the full types.Info map set the passes rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// goList runs `go list -deps -export -json` in dir for the given
// patterns and returns the decoded package stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves every import from
// the compiler export data `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// parseFiles parses the named files (joined onto dir) with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load type-checks every main-module package matched by patterns
// (relative to dir, typically "./...") and returns them sorted by import
// path. Import resolution uses compiler export data, so the tree must
// build — which tier-1 already requires.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", t.ImportPath, err)
		}
		pkg := &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Info:       newInfo(),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		// Check returns the package even on soft errors; the passes
		// tolerate partial type info.
		pkg.Pkg, _ = conf.Check(t.ImportPath, fset, files, pkg.Info)
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	prog := &Program{Pkgs: out}
	for _, p := range out {
		p.Prog = prog
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files outside the normal
// build (the testdata fixture packages live under testdata/, which the go
// tool ignores). moduleDir anchors `go list` so the fixtures' imports —
// stdlib or module-internal — resolve through export data. asPath is the
// import path the fixture pretends to be, so path-scoped passes fire.
func LoadDir(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, fixtureDir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports through the module's build cache.
	importSet := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "C" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg := &Package{
		ImportPath: asPath,
		Dir:        fixtureDir,
		Fset:       fset,
		Files:      files,
		Info:       newInfo(),
	}
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Pkg, _ = conf.Check(asPath, fset, files, pkg.Info)
	pkg.Prog = &Program{Pkgs: []*Package{pkg}}
	return pkg, nil
}
