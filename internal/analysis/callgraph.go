package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Program is one whole load: every type-checked package plus the shared
// interprocedural infrastructure (call graph, per-pass summaries) built
// over all of them. The per-function AST passes never need it, but
// lockorder, goleak, and wiretaint chase facts across function and
// package boundaries — a lock acquired three calls deep, a stop-channel
// receive in a helper, a bound check in a callee — so they analyze the
// Program once and report per package.
type Program struct {
	Pkgs []*Package

	mu   sync.Mutex
	cg   *CallGraph
	memo map[string]any
}

// CallGraph returns the program's call graph, built on first use.
func (pr *Program) CallGraph() *CallGraph {
	pr.mu.Lock()
	cg := pr.cg
	pr.mu.Unlock()
	if cg != nil {
		return cg
	}
	cg = buildCallGraph(pr)
	pr.mu.Lock()
	if pr.cg == nil {
		pr.cg = cg
	}
	cg = pr.cg
	pr.mu.Unlock()
	return cg
}

// memoize caches a program-wide computation under key. build runs
// outside the lock (it typically needs CallGraph itself); a duplicate
// build under contention is wasted work, never a wrong answer.
func (pr *Program) memoize(key string, build func() any) any {
	pr.mu.Lock()
	v, ok := pr.memo[key]
	pr.mu.Unlock()
	if ok {
		return v
	}
	v = build()
	pr.mu.Lock()
	if pr.memo == nil {
		pr.memo = map[string]any{}
	}
	if prev, ok := pr.memo[key]; ok {
		v = prev
	} else {
		pr.memo[key] = v
	}
	pr.mu.Unlock()
	return v
}

// CallSite is one resolved call inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callees are the possible targets as function keys: exactly one for
	// direct calls, every module implementation for interface-method
	// calls (static dispatch over-approximates dynamic dispatch).
	Callees []string
	// InGoLit marks calls lexically inside a go-launched func literal:
	// they run concurrently with the enclosing function, so lock-held
	// propagation must not flow into them.
	InGoLit bool
	// Deferred marks calls inside a defer statement: they run at return,
	// after lexical critical sections have closed.
	Deferred bool
}

// FuncNode is one declared function or method with a body.
type FuncNode struct {
	Key   string
	Pkg   *Package
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// CallsIn returns the node's call sites whose positions fall inside
// [pos, end) — used to scope queries to one func literal's body.
func (n *FuncNode) CallsIn(pos, end token.Pos) []CallSite {
	var out []CallSite
	for _, c := range n.Calls {
		if c.Call.Pos() >= pos && c.Call.Pos() < end {
			out = append(out, c)
		}
	}
	return out
}

// CallGraph maps function keys to their nodes. Keys are
// "<pkg-path>.Name" for functions and "<pkg-path>.(Type).Name" for
// methods — stable across the source/export-data object split, so a
// call into another source-loaded package lands on that package's node.
type CallGraph struct {
	Funcs map[string]*FuncNode
}

// funcKeyOf renders the cross-package key for a function object.
func funcKeyOf(fn types.Object) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += "(" + named.Obj().Name() + ")."
		}
	}
	return key + fn.Name()
}

// shortPkg is the last path element: display form for lock ids and
// finding messages ("internal/chain" -> "chain").
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// shortKey compresses a function key for messages:
// ".../internal/chain.(Chain).setHead" -> "chain.(Chain).setHead".
func shortKey(key string) string {
	i := strings.LastIndexByte(key, '/')
	if i < 0 {
		return key
	}
	return key[i+1:]
}

// goLitRanges returns the source span of every go-launched func literal
// body under root, at any nesting depth.
func goLitRanges(root ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(root, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				out = append(out, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
			}
		}
		return true
	})
	return out
}

func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func buildCallGraph(pr *Program) *CallGraph {
	cg := &CallGraph{Funcs: map[string]*FuncNode{}}

	// Every named type the program declares, for interface-call
	// resolution. All source packages share one export-data importer, so
	// Implements checks across package universes agree on imported types.
	var namedTypes []*types.Named
	for _, p := range pr.Pkgs {
		if p.Pkg == nil {
			continue
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					namedTypes = append(namedTypes, named)
				}
			}
		}
	}

	for _, p := range pr.Pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj := p.Info.Defs[fn.Name]
				if obj == nil {
					continue
				}
				node := &FuncNode{Key: funcKeyOf(obj), Pkg: p, Decl: fn}
				goLits := goLitRanges(fn.Body)
				var deferred [][2]token.Pos
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if d, ok := n.(*ast.DeferStmt); ok {
						deferred = append(deferred, [2]token.Pos{d.Pos(), d.End()})
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callees := resolveCallees(p, call, namedTypes)
					if len(callees) == 0 {
						return true
					}
					node.Calls = append(node.Calls, CallSite{
						Call:     call,
						Callees:  callees,
						InGoLit:  inRanges(goLits, call.Pos()),
						Deferred: inRanges(deferred, call.Pos()),
					})
					return true
				})
				cg.Funcs[node.Key] = node
			}
		}
	}
	return cg
}

// resolveCallees maps a call expression to its possible target keys:
// the single static target for ordinary calls, or every module type
// implementing the interface for interface-method calls. Builtins,
// conversions, and calls through untyped function values resolve to
// nothing (the analyses under-approximate there).
func resolveCallees(p *Package, call *ast.CallExpr, namedTypes []*types.Named) []string {
	obj := calleeObj(p.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			var out []string
			for _, named := range namedTypes {
				if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
					continue
				}
				m, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), fn.Name())
				if mf, ok := m.(*types.Func); ok {
					out = append(out, funcKeyOf(mf))
				}
			}
			return out
		}
	}
	return []string{funcKeyOf(fn)}
}

// FixpointSets propagates per-function fact sets bottom-up through the
// graph: result[f] = direct[f] ∪ ⋃ result[callee] over f's call sites.
// Sites inside go-launched literals are excluded when skipGoLit is set —
// facts established by a spawned goroutine are not ordered with the
// spawning function. Deferred calls are always included (they do run in
// the caller, just late). Iterates to a fixed point; cycles in the call
// graph simply converge to the union over the SCC.
func (cg *CallGraph) FixpointSets(direct map[string]map[string]bool, skipGoLit bool) map[string]map[string]bool {
	result := make(map[string]map[string]bool, len(cg.Funcs))
	for key := range cg.Funcs {
		set := map[string]bool{}
		for f := range direct[key] {
			set[f] = true
		}
		result[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, node := range cg.Funcs {
			set := result[key]
			for _, site := range node.Calls {
				if skipGoLit && site.InGoLit {
					continue
				}
				for _, callee := range site.Callees {
					for f := range result[callee] {
						if !set[f] {
							set[f] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return result
}
