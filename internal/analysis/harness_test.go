package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness is a hand-rolled analysistest: each pass has a
// package under testdata/src/<pass>/ whose files carry
//
//	<code> // want `regex`
//
// comments on every line the pass must flag. runFixture loads the
// package as-if it had the given import path, runs exactly one pass, and
// requires a 1:1 match between findings and want annotations — missing
// findings, unexpected findings, and non-matching messages all fail.

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// writeFile is a tiny test helper for allowlist files.
func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

// expectation is one want annotation.
type expectation struct {
	file string // basename
	line int
	re   *regexp.Regexp
}

func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file: filepath.Base(pos.Filename),
					line: pos.Line,
					re:   re,
				})
			}
		}
	}
	return wants
}

// loadFixture loads testdata/src/<name> as-if it were asPath.
func loadFixture(t *testing.T, name, asPath string) *Package {
	t.Helper()
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleDir, filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	return pkg
}

// runFixture executes one pass over its fixture and diffs findings
// against the want annotations. It returns the findings for further
// assertions (the allowlist test reuses them).
func runFixture(t *testing.T, passName, asPath string) []Finding {
	t.Helper()
	return runFixtureAs(t, passName, passName, asPath)
}

// runFixtureAs is runFixture with an explicit fixture directory, for
// passes with more than one fixture (locksafe has a chain/txpool fixture
// and an rpc fixture).
func runFixtureAs(t *testing.T, fixture, passName, asPath string) []Finding {
	t.Helper()
	pass := PassByName(passName)
	if pass == nil {
		t.Fatalf("unknown pass %q", passName)
	}
	pkg := loadFixture(t, fixture, asPath)
	findings := pass.Run(pkg)
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", passName)
	}

	matched := make([]bool, len(findings))
	for _, want := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.Pos.Filename) != want.file || f.Pos.Line != want.line {
				continue
			}
			if !want.re.MatchString(f.Msg) {
				t.Errorf("%s:%d: finding %q does not match want `%s`",
					want.file, want.line, f.Msg, want.re)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: no [%s] finding; want `%s`", want.file, want.line, passName, want.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("fixture %s: %d findings, %d want annotations", passName, len(findings), len(wants))
	}
	// Every finding must render in the file:line: [pass] message shape
	// scvet prints.
	for _, f := range findings {
		rendered := f.String()
		wantShape := fmt.Sprintf(":%d: [%s] ", f.Pos.Line, f.Pass)
		if !regexp.MustCompile(regexp.QuoteMeta(wantShape)).MatchString(rendered) {
			t.Errorf("finding %q missing canonical `file:line: [pass]` shape", rendered)
		}
	}
	return findings
}
