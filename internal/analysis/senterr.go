package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// passSenterr flags sentinel-error comparison with == or != (including
// `switch err { case ErrX: }`), the exact bug class PR 2 fixed when
// wrapped ErrKnownBlock values stopped matching an equality check in the
// node's gossip import path. Wrapped errors only match through errors.Is.
var passSenterr = &Pass{
	Name: "senterr",
	Doc:  "sentinel errors must be matched with errors.Is, not == / != / switch-case",
	Run:  runSenterr,
}

// sentinelName matches the conventional sentinel spellings: exported
// ErrFoo and unexported errFoo package variables.
var sentinelName = regexp.MustCompile(`^(Err[A-Z0-9]|err[A-Z])`)

func runSenterr(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilIdent(p.Info, n.X) || isNilIdent(p.Info, n.Y) {
					return true // err != nil is the one legitimate equality
				}
				name, ok := sentinelOperand(p, n.X)
				if !ok {
					name, ok = sentinelOperand(p, n.Y)
				}
				if !ok {
					return true
				}
				out = append(out, p.finding("senterr", n,
					"sentinel error %s compared with %s; wrapped errors will not match — use errors.Is", name, n.Op))
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(p.Info.TypeOf(n.Tag)) {
					return true
				}
				for _, stmt := range n.Body.List {
					clause, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range clause.List {
						if name, ok := sentinelOperand(p, v); ok {
							out = append(out, p.finding("senterr", v,
								"switch on an error value compares %s with ==; use an errors.Is chain", name))
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// sentinelOperand reports whether e names a sentinel error variable
// (ErrFoo / errFoo spelling, error-typed), returning its display name.
func sentinelOperand(p *Package, e ast.Expr) (string, bool) {
	var id *ast.Ident
	display := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id, display = e, e.Name
	case *ast.SelectorExpr:
		// Qualified sentinel: pkg.ErrFoo.
		if importedPkgPath(p.Info, e.X) == "" {
			return "", false
		}
		id = e.Sel
		if x, ok := e.X.(*ast.Ident); ok {
			display = x.Name + "." + e.Sel.Name
		} else {
			display = e.Sel.Name
		}
	default:
		return "", false
	}
	if !sentinelName.MatchString(id.Name) {
		return "", false
	}
	if varObj(p.Info, id) == nil || !isErrorType(p.Info.TypeOf(e)) {
		return "", false
	}
	return display, true
}
