package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled structured logging. Library code logs through subsystem-keyed
// Logger values instead of stdlib log.Printf: every entry is a flat
// key=value line (machine-greppable, no format-string drift), carries an
// optional trace id, lands in a bounded ring served at /debug/logs, and
// is counted per level in smartcrowd_log_entries_total. Stdlib-only,
// like the rest of this package.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way log lines and /debug/logs do.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// logRingSize bounds the entries retained for /debug/logs.
const logRingSize = 1024

// LogEntry is one retained log line.
type LogEntry struct {
	TimeUnixMs int64  `json:"timeUnixMs"`
	Level      string `json:"level"`
	Subsystem  string `json:"subsystem"`
	Msg        string `json:"msg"`
	// Fields is the rendered `k=v k2=v2` tail, already formatted so the
	// ring holds no per-entry maps.
	Fields string `json:"fields,omitempty"`
	Trace  string `json:"trace,omitempty"`
}

// logSink is the process-wide log destination: a writer plus a ring.
// Logging is never on a consensus hot path, so one mutex is fine.
type logSink struct {
	mu    sync.Mutex
	out   io.Writer
	buf   [logRingSize]LogEntry
	next  int
	total uint64
}

var (
	sink     = &logSink{out: os.Stderr}
	minLevel atomic.Int32 // Level; entries below are dropped entirely
)

func init() {
	minLevel.Store(int32(LevelInfo))
}

// Metrics for the logging surface itself, registered at package init so
// /metrics shows the families before any traffic.
var logEntryCounters = [4]*Counter{
	GetCounter("smartcrowd_log_entries_total", L("level", "debug")),
	GetCounter("smartcrowd_log_entries_total", L("level", "info")),
	GetCounter("smartcrowd_log_entries_total", L("level", "warn")),
	GetCounter("smartcrowd_log_entries_total", L("level", "error")),
}

func init() {
	SetHelp("smartcrowd_log_entries_total", "Structured log entries emitted, by level.")
}

// SetLogOutput redirects rendered log lines (default os.Stderr). Pass
// io.Discard to keep the ring but silence the stream.
func SetLogOutput(w io.Writer) {
	sink.mu.Lock()
	sink.out = w
	sink.mu.Unlock()
}

// SetLogLevel sets the minimum emitted level (default LevelInfo).
func SetLogLevel(l Level) { minLevel.Store(int32(l)) }

// LogLevel returns the current minimum level.
func LogLevel() Level { return Level(minLevel.Load()) }

// RecentLogs returns retained entries oldest-first.
func RecentLogs() []LogEntry {
	sink.mu.Lock()
	defer sink.mu.Unlock()
	n := logRingSize
	if sink.total < uint64(n) {
		n = int(sink.total)
	}
	out := make([]LogEntry, 0, n)
	start := (sink.next - n + logRingSize) % logRingSize
	for i := 0; i < n; i++ {
		out = append(out, sink.buf[(start+i)%logRingSize])
	}
	return out
}

// Logger emits entries for one subsystem. The zero value logs with an
// empty subsystem; obtain loggers via Log. Logger is a small value —
// copy it freely, derive trace-stamped children with WithTrace.
type Logger struct {
	subsys string
	trace  string
}

// Log returns the logger for a subsystem (conventionally the package
// name: "node", "wire", "chain", ...).
func Log(subsys string) Logger { return Logger{subsys: subsys} }

// WithTrace returns a copy of the logger that stamps entries with the
// context's trace id. An invalid context returns the logger unchanged.
func (l Logger) WithTrace(tc TraceContext) Logger {
	if !tc.Valid() {
		return l
	}
	l.trace = tc.TraceID.String()
	return l
}

// Debug logs at debug level (dropped unless SetLogLevel(LevelDebug)).
func (l Logger) Debug(msg string, kv ...interface{}) { l.emit(LevelDebug, msg, kv) }

// Info logs at info level.
func (l Logger) Info(msg string, kv ...interface{}) { l.emit(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l Logger) Warn(msg string, kv ...interface{}) { l.emit(LevelWarn, msg, kv) }

// Error logs at error level.
func (l Logger) Error(msg string, kv ...interface{}) { l.emit(LevelError, msg, kv) }

// Fatal logs at error level and exits the process. For main packages and
// examples; library code should return errors instead.
func (l Logger) Fatal(msg string, kv ...interface{}) {
	l.emit(LevelError, msg, kv)
	osExit(1)
}

// osExit is swapped out by tests.
var osExit = os.Exit

// emit renders and files one entry. kv is alternating key, value; a
// trailing odd value is rendered under the key "!badkey" rather than
// dropped, so mistakes surface in the output.
func (l Logger) emit(level Level, msg string, kv []interface{}) {
	if int32(level) < minLevel.Load() {
		return
	}
	if level >= LevelDebug && level <= LevelError {
		logEntryCounters[level].Inc()
	}
	now := time.Now()
	entry := LogEntry{
		TimeUnixMs: now.UnixMilli(),
		Level:      level.String(),
		Subsystem:  l.subsys,
		Msg:        msg,
		Fields:     renderFields(kv),
		Trace:      l.trace,
	}

	var sb strings.Builder
	sb.Grow(96 + len(msg) + len(entry.Fields))
	sb.WriteString(now.UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(entry.Level)
	sb.WriteString(" sub=")
	sb.WriteString(l.subsys)
	sb.WriteString(" msg=")
	sb.WriteString(quoteIfNeeded(msg))
	if entry.Fields != "" {
		sb.WriteByte(' ')
		sb.WriteString(entry.Fields)
	}
	if l.trace != "" {
		sb.WriteString(" trace=")
		sb.WriteString(l.trace)
	}
	sb.WriteByte('\n')

	sink.mu.Lock()
	sink.buf[sink.next] = entry
	sink.next = (sink.next + 1) % logRingSize
	sink.total++
	out := sink.out
	if out != nil {
		// Write while holding the lock so concurrent entries never
		// interleave mid-line; log volume makes contention irrelevant.
		_, _ = io.WriteString(out, sb.String())
	}
	sink.mu.Unlock()
}

// renderFields formats alternating key/value pairs as `k=v k2=v2`.
func renderFields(kv []interface{}) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if i+1 >= len(kv) {
			sb.WriteString("!badkey=")
			sb.WriteString(quoteIfNeeded(fmt.Sprint(kv[i])))
			break
		}
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		sb.WriteString(key)
		sb.WriteByte('=')
		sb.WriteString(quoteIfNeeded(fmt.Sprint(kv[i+1])))
	}
	return sb.String()
}

// quoteIfNeeded wraps values containing whitespace, quotes, or '=' in Go
// quoting so lines stay one-token-per-field parseable.
func quoteIfNeeded(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return fmt.Sprintf("%q", v)
	}
	return v
}
