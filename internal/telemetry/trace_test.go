package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTraceContextThreading(t *testing.T) {
	r := NewRegistry()

	root := r.StartTrace("block.build")
	tc := root.Context()
	if !tc.Valid() {
		t.Fatal("StartTrace returned invalid context")
	}
	if tc.Start == 0 {
		t.Fatal("trace context missing origin timestamp")
	}

	child := r.StartSpanIn(tc, "block.seal")
	ctc := child.Context()
	if ctc.TraceID != tc.TraceID {
		t.Fatalf("child trace id %s != root %s", ctc.TraceID, tc.TraceID)
	}
	if ctc.Span == tc.Span {
		t.Fatal("child span id must differ from parent")
	}
	if ctc.Start != tc.Start {
		t.Fatal("child must inherit origin timestamp")
	}

	child.End(L("node", "n1"))
	root.End()

	rec, ok := r.Trace(tc.TraceID)
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(rec.Spans))
	}
	// Spans land in completion order: the child ended first.
	if rec.Spans[0].Name != "block.seal" || rec.Spans[1].Name != "block.build" {
		t.Fatalf("unexpected span order: %s, %s", rec.Spans[0].Name, rec.Spans[1].Name)
	}
	if rec.Spans[0].ParentID != tc.Span.String() {
		t.Fatalf("child parent link %q, want %q", rec.Spans[0].ParentID, tc.Span.String())
	}
	if rec.Spans[1].ParentID != "" {
		t.Fatalf("root must have no parent link, got %q", rec.Spans[1].ParentID)
	}
	if rec.Spans[0].TraceID != tc.TraceID.String() {
		t.Fatalf("span trace id %q, want %q", rec.Spans[0].TraceID, tc.TraceID.String())
	}
}

func TestStartSpanInInvalidParentDegrades(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpanIn(TraceContext{}, "orphan")
	if s.Context().Valid() {
		t.Fatal("invalid parent must yield untraced span")
	}
	s.End()
	if got := len(r.RecentTraces(0)); got != 0 {
		t.Fatalf("untraced span created %d traces, want 0", got)
	}
	// It still lands in the flat ring.
	spans := r.RecentSpans()
	if len(spans) != 1 || spans[0].Name != "orphan" || spans[0].TraceID != "" {
		t.Fatalf("untraced span not in ring as expected: %+v", spans)
	}
}

func TestTraceIDUniqueness(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10_000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s at i=%d", id, i)
		}
		seen[id] = true
	}
	if _, ok := ParseTraceID(NewTraceID().String()); !ok {
		t.Fatal("ParseTraceID round-trip failed")
	}
	if _, ok := ParseTraceID("zzzz"); ok {
		t.Fatal("ParseTraceID accepted junk")
	}
}

// TestSpanRingWraparound fills the flat ring well past capacity and
// checks it stays bounded with oldest-first ordering.
func TestSpanRingWraparound(t *testing.T) {
	r := NewRegistry()
	const n = spanRingSize*2 + 17
	for i := 0; i < n; i++ {
		s := r.StartSpan(fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := r.RecentSpans()
	if len(spans) != spanRingSize {
		t.Fatalf("ring retained %d spans, want exactly %d", len(spans), spanRingSize)
	}
	// Oldest retained span is n - spanRingSize; order must be ascending.
	for i, rec := range spans {
		want := fmt.Sprintf("s%d", n-spanRingSize+i)
		if rec.Name != want {
			t.Fatalf("spans[%d] = %q, want %q (oldest-first order broken)", i, rec.Name, want)
		}
	}
}

// TestTraceStoreEviction fills the store past capacity and checks LRU
// eviction, bounded memory, and that parent links inside surviving
// traces are untouched by the eviction of sibling traces.
func TestTraceStoreEviction(t *testing.T) {
	r := NewRegistry()

	// A "survivor" trace created first, with a parent→child span pair.
	surv := r.StartTrace("survivor.root")
	survCtx := surv.Context()
	r.StartSpanIn(survCtx, "survivor.child").End()
	surv.End()

	// Flood with enough single-span traces to evict everything older —
	// but keep the survivor fresh by touching it mid-flood.
	const flood = maxTraces + 64
	for i := 0; i < flood; i++ {
		s := r.StartTrace("flood")
		s.End()
		if i == flood/2 {
			// An update moves the survivor to the front of the LRU.
			r.StartSpanIn(survCtx, "survivor.touch").End()
		}
	}

	traces := r.RecentTraces(0)
	if len(traces) > maxTraces {
		t.Fatalf("store retained %d traces, cap is %d", len(traces), maxTraces)
	}
	if r.EvictedTraces() == 0 {
		t.Fatal("flood past capacity evicted nothing")
	}

	rec, ok := r.Trace(survCtx.TraceID)
	if !ok {
		t.Fatal("recently-touched trace was evicted (LRU broken)")
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("survivor has %d spans, want 3", len(rec.Spans))
	}
	// Parent links survive sibling eviction.
	for _, sp := range rec.Spans {
		if strings.HasPrefix(sp.Name, "survivor.") && sp.Name != "survivor.root" {
			if sp.ParentID != survCtx.Span.String() {
				t.Fatalf("span %s lost parent link: %q", sp.Name, sp.ParentID)
			}
		}
	}

	// The flood's oldest traces are the ones that went.
	for _, tr := range traces {
		if tr.ID == survCtx.TraceID.String() {
			return
		}
	}
	t.Fatal("survivor missing from RecentTraces")
}

// TestTraceStoreSpanOverflow checks the per-trace span bound counts
// instead of growing.
func TestTraceStoreSpanOverflow(t *testing.T) {
	r := NewRegistry()
	root := r.StartTrace("big")
	tc := root.Context()
	root.End()
	const extra = 40
	for i := 0; i < maxSpansPerTrace+extra; i++ {
		r.StartSpanIn(tc, "hop").End()
	}
	rec, ok := r.Trace(tc.TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(rec.Spans) != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, cap is %d", len(rec.Spans), maxSpansPerTrace)
	}
	// root + (max-1) hops stored, the rest counted: 1 + cap + extra total ends.
	if rec.DroppedSpans != extra+1 {
		t.Fatalf("dropped %d spans, want %d", rec.DroppedSpans, extra+1)
	}
}

func TestRecentTracesLimitAndOrder(t *testing.T) {
	r := NewRegistry()
	var ids []string
	for i := 0; i < 5; i++ {
		s := r.StartTrace("t")
		ids = append(ids, s.Context().TraceID.String())
		s.End()
	}
	got := r.RecentTraces(3)
	if len(got) != 3 {
		t.Fatalf("limit ignored: got %d", len(got))
	}
	// Most recently updated first.
	for i := 0; i < 3; i++ {
		if got[i].ID != ids[4-i] {
			t.Fatalf("RecentTraces[%d] = %s, want %s", i, got[i].ID, ids[4-i])
		}
	}
}

func TestLoggerRingAndFormat(t *testing.T) {
	var out strings.Builder
	SetLogOutput(&out)
	defer SetLogOutput(os.Stderr)

	lg := Log("testsub")
	lg.Info("hello world", "height", 7, "id", "abc")
	line := out.String()
	for _, want := range []string{"level=info", "sub=testsub", `msg="hello world"`, "height=7", "id=abc"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}

	// Debug suppressed at the default level.
	out.Reset()
	lg.Debug("quiet")
	if out.Len() != 0 {
		t.Fatalf("debug leaked at info level: %q", out.String())
	}
	SetLogLevel(LevelDebug)
	lg.Debug("loud")
	SetLogLevel(LevelInfo)
	if !strings.Contains(out.String(), "level=debug") {
		t.Fatalf("debug not emitted at debug level: %q", out.String())
	}

	// The ring retains entries and a trace-stamped logger records the id.
	root := StartTrace("log.test")
	lg.WithTrace(root.Context()).Warn("traced entry")
	logs := RecentLogs()
	if len(logs) == 0 {
		t.Fatal("ring empty")
	}
	last := logs[len(logs)-1]
	if last.Msg != "traced entry" || last.Trace != root.Context().TraceID.String() {
		t.Fatalf("ring entry %+v missing trace stamp", last)
	}
	if last.Level != "warn" || last.Subsystem != "testsub" {
		t.Fatalf("ring entry %+v has wrong level/subsystem", last)
	}
}

func TestLoggerFatalExits(t *testing.T) {
	SetLogOutput(io.Discard)
	defer SetLogOutput(os.Stderr)
	orig := osExit
	defer func() { osExit = orig }()
	code := -1
	osExit = func(c int) { code = c }
	Log("x").Fatal("boom")
	if code != 1 {
		t.Fatalf("Fatal exited with %d, want 1", code)
	}
}

func TestEventBusPublishSubscribeReplay(t *testing.T) {
	before := EventSeq()
	ch, cancel := SubscribeEvents(4)
	defer cancel()

	root := StartTrace("evt.test")
	PublishEvent("head", root.Context(), map[string]string{"number": "9"})
	PublishEvent("sra", TraceContext{}, nil)

	var got []Event
	timeout := time.After(2 * time.Second)
	for len(got) < 2 {
		select {
		case e := <-ch:
			if e.Seq > before {
				got = append(got, e)
			}
		case <-timeout:
			t.Fatalf("timed out with %d events", len(got))
		}
	}
	if got[0].Type != "head" || got[0].Trace != root.Context().TraceID.String() {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[0].Data["number"] != "9" {
		t.Fatalf("event data lost: %+v", got[0].Data)
	}
	if got[1].Type != "sra" || got[1].Trace != "" {
		t.Fatalf("event 1 = %+v", got[1])
	}
	if got[1].Seq != got[0].Seq+1 {
		t.Fatalf("sequence not monotonic: %d then %d", got[0].Seq, got[1].Seq)
	}

	// Replay returns the same events for a late joiner.
	replay := EventsSince(before)
	if len(replay) < 2 {
		t.Fatalf("replay returned %d events, want >= 2", len(replay))
	}
	if replay[0].Seq != got[0].Seq {
		t.Fatalf("replay starts at %d, want %d", replay[0].Seq, got[0].Seq)
	}
	// Cancel twice must not panic.
	cancel()
}

func TestEventBusSlowSubscriberDrops(t *testing.T) {
	_, cancelA := SubscribeEvents(1)
	defer cancelA()
	dropped := mEventsDropped.Value()
	for i := 0; i < 5; i++ {
		PublishEvent("head", TraceContext{}, nil)
	}
	if mEventsDropped.Value() <= dropped {
		t.Fatal("full subscriber buffer recorded no drops")
	}
}
