package telemetry

import (
	"os"
	"strconv"
	"testing"
)

// benchTraceReg is shared by the trace benchmarks; a fresh registry per
// benchmark run would measure map growth instead of steady state.
var benchTraceReg = NewRegistry()

func BenchmarkUntracedSpan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTraceReg.StartSpan("bench.span").End()
	}
}

func BenchmarkTracedSpan(b *testing.B) {
	root := benchTraceReg.StartTrace("bench.root")
	tc := root.Context()
	root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTraceReg.StartSpanIn(tc, "bench.hop").End()
	}
}

// TestTraceOverheadBudget is the tracing half of the CI overhead gate:
// opening and ending a traced span (id stamping + ring + trace-store
// filing) must stay within budget. Spans end at block/batch granularity,
// so the budget is microseconds, not the counters' 30ns — the gate
// exists to catch accidental O(store) work on the span path, not to
// shave nanoseconds. Overridable via SMARTCROWD_TRACE_BUDGET_NS.
func TestTraceOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead budget is not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("skipping overhead budget in -short mode")
	}
	budget := 5000.0 // 5µs per traced span, ~3 orders below the event rate
	if env := os.Getenv("SMARTCROWD_TRACE_BUDGET_NS"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad SMARTCROWD_TRACE_BUDGET_NS %q: %v", env, err)
		}
		budget = v
	}
	res := testing.Benchmark(BenchmarkTracedSpan)
	perOp := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("traced span: %.2f ns/op over %d iterations (budget %.0f ns)", perOp, res.N, budget)
	if perOp > budget {
		t.Errorf("traced span %.2f ns/op exceeds %.0f ns budget", perOp, budget)
	}
}
