package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full uint64 range in power-of-two buckets:
// bucket 0 holds the value 0, bucket i (1 ≤ i ≤ 63) holds values in
// [2^(i-1), 2^i − 1], and bucket 64 holds values ≥ 2^63.
const numBuckets = 65

// Histogram is a streaming histogram over uint64 observations (durations
// in nanoseconds, batch sizes, dirty-account counts) with exponential
// power-of-two buckets. Observe is three atomic adds plus a CAS max;
// quantiles are exact at bucket granularity — Quantile returns the upper
// bound of the bucket containing the requested rank, so for observations
// that are themselves bucket bounds (see SnapToBucket) the result equals
// a reference rank from sorting the raw samples.
//
// Reads taken while writers are active see each atomic individually
// consistent but not a single point-in-time cut; telemetry consumers
// tolerate that by construction.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// bucketIndex maps a value to its bucket: bits.Len64 gives 0 for 0, 1 for
// 1, 2 for 2–3, …, 64 for values ≥ 2^63.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(i) - 1
	}
}

// SnapToBucket rounds v up to its bucket's upper bound — the value
// Quantile would report for it. Exported for tests and for consumers that
// want to compare exact references against histogram output.
func SnapToBucket(v uint64) uint64 { return BucketBound(bucketIndex(v)) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q ∈ [0, 1]: the upper bound of
// the bucket holding the observation of rank ⌈q·count⌉ (rank 1 = the
// smallest). Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return BucketBound(i)
		}
	}
	// Writers raced count ahead of buckets; report the top bucket seen.
	return h.max.Load()
}
