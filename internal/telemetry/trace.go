package telemetry

import (
	"container/list"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Causal tracing. A TraceContext names one block-lifecycle story — minted
// when a transaction batch is admitted or a block seal begins — and is
// threaded through build → seal → gossip → peer import → setHead. Every
// span opened inside a context lands in the owning registry's bounded
// trace store, grouped by trace id with parent links intact, so
// /debug/traces can render the full causal tree even across process
// boundaries (the wire transport carries the context in a frame
// envelope; see internal/wire).
//
// Sampling policy: traces are minted at block/batch granularity, never
// per transaction, so the store's bounds are generous relative to the
// event rate. When a trace accumulates more than maxSpansPerTrace spans
// the excess is counted, not stored; when the store holds more than
// maxTraces traces the least-recently-updated trace is evicted whole.

const (
	// maxTraces bounds the retained traces (LRU on last update).
	maxTraces = 512
	// maxSpansPerTrace bounds the spans kept per trace; overflow is
	// counted in TraceRecord.DroppedSpans.
	maxSpansPerTrace = 128
)

// TraceID names one causal story across nodes. 16 random-seeded bytes.
type TraceID [16]byte

// SpanID names one span within a trace. 8 bytes.
type SpanID [8]byte

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// TraceContext is the propagated half of a trace: the trace id, the span
// to parent new work under, and the origin timestamp (unix nanoseconds at
// trace mint) that end-to-end latency is measured against. The zero value
// is "not traced" and is always safe to pass around.
type TraceContext struct {
	TraceID TraceID
	Span    SpanID
	// Start is the unix-nano timestamp the trace was minted at; children
	// inherit it so any hop can compute origin→here latency.
	Start int64
}

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() }

// Id minting: a per-process random base plus an atomic counter. Two
// processes share no base (16/8 random bytes), and within a process the
// counter guarantees uniqueness without any locking.
var (
	traceIDBase [8]byte
	spanIDBase  uint64
	traceSeq    atomic.Uint64
	spanSeq     atomic.Uint64
)

func init() {
	var seed [16]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// crypto/rand failing is unrecoverable in general, but tracing
		// must never take the node down: fall back to a fixed base and
		// rely on the counters for in-process uniqueness.
		copy(seed[:], "smartcrowd-trace")
	}
	copy(traceIDBase[:], seed[:8])
	spanIDBase = binary.BigEndian.Uint64(seed[8:])
}

// NewTraceID mints a process-unique trace id.
func NewTraceID() TraceID {
	var id TraceID
	copy(id[:8], traceIDBase[:])
	binary.BigEndian.PutUint64(id[8:], traceSeq.Add(1))
	return id
}

// NewSpanID mints a process-unique span id.
func NewSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], spanIDBase+spanSeq.Add(1))
	return id
}

// TraceRecord is one retained trace: its spans in completion order plus
// an overflow count when the per-trace bound was hit.
type TraceRecord struct {
	ID           string       `json:"id"`
	StartUnixNs  int64        `json:"startUnixNs"`
	Spans        []SpanRecord `json:"spans"`
	DroppedSpans int          `json:"droppedSpans,omitempty"`
}

// traceEntry is the store-internal mutable form of a TraceRecord.
type traceEntry struct {
	id      TraceID
	startNs int64
	spans   []SpanRecord
	dropped int
	elem    *list.Element // position in traceStore.order; Value is *traceEntry
}

// traceStore is a bounded LRU of traces keyed by trace id. Recency is
// last span completion, so an in-flight cross-node trace stays resident
// while its hops arrive. Like the span ring, writes happen at block/batch
// granularity, so a mutex is fine.
type traceStore struct {
	mu      sync.Mutex
	traces  map[TraceID]*traceEntry
	order   *list.List // front = most recently updated
	evicted uint64
}

func (ts *traceStore) ensureLocked() {
	if ts.traces == nil {
		ts.traces = make(map[TraceID]*traceEntry)
		ts.order = list.New()
	}
}

// record files one completed span under its trace, evicting the
// least-recently-updated trace when the store is over capacity.
func (ts *traceStore) record(tc TraceContext, rec SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.ensureLocked()
	e, ok := ts.traces[tc.TraceID]
	if !ok {
		e = &traceEntry{id: tc.TraceID, startNs: tc.Start}
		e.elem = ts.order.PushFront(e)
		ts.traces[tc.TraceID] = e
		for ts.order.Len() > maxTraces {
			oldest := ts.order.Back()
			ts.order.Remove(oldest)
			delete(ts.traces, oldest.Value.(*traceEntry).id)
			ts.evicted++
		}
	} else {
		ts.order.MoveToFront(e.elem)
	}
	if len(e.spans) >= maxSpansPerTrace {
		e.dropped++
		return
	}
	e.spans = append(e.spans, rec)
}

// recent returns up to limit traces, most recently updated first.
// limit <= 0 means all retained traces.
func (ts *traceStore) recent(limit int) []TraceRecord {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.order == nil {
		return []TraceRecord{}
	}
	n := ts.order.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]TraceRecord, 0, n)
	for el := ts.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*traceEntry).snapshot())
	}
	return out
}

// get returns one trace by id.
func (ts *traceStore) get(id TraceID) (TraceRecord, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.traces[id]
	if !ok {
		return TraceRecord{}, false
	}
	return e.snapshot(), true
}

func (e *traceEntry) snapshot() TraceRecord {
	return TraceRecord{
		ID:           e.id.String(),
		StartUnixNs:  e.startNs,
		Spans:        append([]SpanRecord(nil), e.spans...),
		DroppedSpans: e.dropped,
	}
}

// evictedCount returns how many whole traces the store has dropped.
func (ts *traceStore) evictedCount() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evicted
}

// StartTrace mints a fresh trace and opens its root span. The returned
// span's Context() is what gets threaded through the block lifecycle and
// propagated over the wire.
func (r *Registry) StartTrace(name string) Span {
	now := time.Now()
	return Span{
		ring:  &r.spans,
		store: &r.traces,
		name:  name,
		start: now,
		tc: TraceContext{
			TraceID: NewTraceID(),
			Span:    NewSpanID(),
			Start:   now.UnixNano(),
		},
	}
}

// StartSpanIn opens a span as a child of parent. An invalid parent
// degrades to a plain untraced span, so call sites never need to branch.
func (r *Registry) StartSpanIn(parent TraceContext, name string) Span {
	if !parent.Valid() {
		return r.StartSpan(name)
	}
	return Span{
		ring:  &r.spans,
		store: &r.traces,
		name:  name,
		start: time.Now(),
		tc: TraceContext{
			TraceID: parent.TraceID,
			Span:    NewSpanID(),
			Start:   parent.Start,
		},
		parent: parent.Span,
	}
}

// RecentTraces returns up to limit retained traces, most recently
// updated first (limit <= 0 for all).
func (r *Registry) RecentTraces(limit int) []TraceRecord { return r.traces.recent(limit) }

// Trace returns one retained trace by id.
func (r *Registry) Trace(id TraceID) (TraceRecord, bool) { return r.traces.get(id) }

// EvictedTraces returns how many traces the store has evicted whole.
func (r *Registry) EvictedTraces() uint64 { return r.traces.evictedCount() }

// StartTrace mints a trace on the Default registry.
func StartTrace(name string) Span { return Default.StartTrace(name) }

// StartSpanIn opens a child span on the Default registry.
func StartSpanIn(parent TraceContext, name string) Span { return Default.StartSpanIn(parent, name) }

// RecentTraces returns the Default registry's retained traces.
func RecentTraces(limit int) []TraceRecord { return Default.RecentTraces(limit) }

// GetTrace returns one trace from the Default registry.
func GetTrace(id TraceID) (TraceRecord, bool) { return Default.Trace(id) }

// ParseTraceID parses a 32-hex-char trace id (as rendered by String).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(id) {
		return TraceID{}, false
	}
	copy(id[:], raw)
	return id, true
}
