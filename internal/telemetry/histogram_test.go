package telemetry

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v     uint64
		snap  uint64
		index int
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 3, 2},
		{3, 3, 2},
		{4, 7, 3},
		{1000, 1023, 10},
		{1 << 62, 1<<63 - 1, 63},
		{1 << 63, ^uint64(0), 64},
		{^uint64(0), ^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.index {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.index)
		}
		if got := SnapToBucket(c.v); got != c.snap {
			t.Errorf("SnapToBucket(%d) = %d, want %d", c.v, got, c.snap)
		}
	}
}

// TestHistogramQuantilesExactAgainstReferenceSort feeds randomized inputs
// (snapped to bucket bounds, the histogram's resolution) into both the
// streaming histogram and an exact sort-based reference, and requires the
// quantile answers to be identical. This is the acceptance oracle for the
// exposition quantiles: at bucket granularity the histogram is exact, not
// approximate.
func TestHistogramQuantilesExactAgainstReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		h := new(Histogram)
		ref := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			// Mix magnitudes: uniform exponent spreads values across
			// buckets instead of clustering in the top decade.
			v := rng.Uint64() >> uint(rng.Intn(64))
			v = SnapToBucket(v)
			h.Observe(v)
			ref = append(ref, v)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })

		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
			rank := int(float64(n)*q + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			want := ref[rank-1]
			if got := h.Quantile(q); got != want {
				t.Fatalf("trial %d n=%d q=%v: histogram %d, reference sort %d", trial, n, q, got, want)
			}
		}
		if h.Max() != ref[n-1] {
			t.Fatalf("trial %d: max %d, reference %d", trial, h.Max(), ref[n-1])
		}
		var sum uint64
		for _, v := range ref {
			sum += v
		}
		if h.Sum() != sum {
			t.Fatalf("trial %d: sum %d, reference %d", trial, h.Sum(), sum)
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := new(Histogram)
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(10)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile arguments not clamped")
	}
	h.ObserveDuration(-5)
	if h.Count() != 2 {
		t.Errorf("count %d, want 2", h.Count())
	}
}
