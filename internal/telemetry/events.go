package telemetry

import (
	"sync"
	"time"
)

// Lifecycle event bus backing the /v1/events SSE feed. Producers (chain
// setHead, node admission) publish small typed events — new head, SRA
// recorded, verdict recorded — stamped with their trace ids; consumers
// subscribe with a bounded buffer and are dropped-from rather than
// blocked-on when slow. A replay ring lets a reconnecting subscriber
// resume from its last seen sequence number (SSE Last-Event-ID).

// eventRingSize bounds the replay window.
const eventRingSize = 256

// Event is one lifecycle notification.
type Event struct {
	// Seq is a process-wide monotonically increasing sequence number;
	// SSE clients replay from it after a reconnect.
	Seq        uint64 `json:"seq"`
	TimeUnixMs int64  `json:"timeUnixMs"`
	// Type is the event kind: "head", "sra", "verdict", ...
	Type  string            `json:"type"`
	Trace string            `json:"trace,omitempty"`
	Data  map[string]string `json:"data,omitempty"`
}

// eventBus is the process-wide publish/subscribe fabric.
type eventBus struct {
	mu    sync.Mutex
	seq   uint64
	buf   [eventRingSize]Event
	next  int
	total uint64
	subs  map[int]chan Event
	subID int
}

var events = &eventBus{subs: make(map[int]chan Event)}

var (
	mEventsPublished = GetCounter("smartcrowd_events_published_total")
	mEventsDropped   = GetCounter("smartcrowd_events_dropped_total")
)

func init() {
	SetHelp("smartcrowd_events_published_total", "Lifecycle events published on the event bus.")
	SetHelp("smartcrowd_events_dropped_total", "Events dropped because a subscriber's buffer was full.")
}

// PublishEvent files an event on the process-wide bus. The bus stamps
// the timestamp and sequence number itself so producers holding locks
// need not read the clock.
func PublishEvent(typ string, tc TraceContext, data map[string]string) {
	e := Event{
		TimeUnixMs: time.Now().UnixMilli(),
		Type:       typ,
		Data:       data,
	}
	if tc.Valid() {
		e.Trace = tc.TraceID.String()
	}
	mEventsPublished.Inc()

	events.mu.Lock()
	events.seq++
	e.Seq = events.seq
	events.buf[events.next] = e
	events.next = (events.next + 1) % eventRingSize
	events.total++
	for _, ch := range events.subs {
		select {
		case ch <- e:
		default:
			mEventsDropped.Inc()
		}
	}
	events.mu.Unlock()
}

// SubscribeEvents registers a subscriber with the given channel buffer
// (minimum 1). The returned cancel func must be called exactly once; it
// closes the channel.
func SubscribeEvents(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	events.mu.Lock()
	events.subID++
	id := events.subID
	events.subs[id] = ch
	events.mu.Unlock()
	cancel := func() {
		events.mu.Lock()
		if _, ok := events.subs[id]; ok {
			delete(events.subs, id)
			close(ch)
		}
		events.mu.Unlock()
	}
	return ch, cancel
}

// EventsSince returns retained events with Seq > since, oldest first.
// since=0 returns the full replay window.
func EventsSince(since uint64) []Event {
	events.mu.Lock()
	defer events.mu.Unlock()
	n := eventRingSize
	if events.total < uint64(n) {
		n = int(events.total)
	}
	out := make([]Event, 0, n)
	start := (events.next - n + eventRingSize) % eventRingSize
	for i := 0; i < n; i++ {
		e := events.buf[(start+i)%eventRingSize]
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// EventSeq returns the bus's current (latest assigned) sequence number.
func EventSeq() uint64 {
	events.mu.Lock()
	defer events.mu.Unlock()
	return events.seq
}
