package telemetry

import (
	"os"
	"strconv"
	"testing"
)

var sinkCounter Counter
var sinkHist Histogram

func BenchmarkCounterInc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkCounter.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sinkCounter.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkHist.Observe(uint64(i))
	}
}

// TestCounterOverheadBudget is the CI overhead gate: a counter increment
// must stay within the documented per-increment budget (default 30ns,
// overridable via SMARTCROWD_COUNTER_BUDGET_NS for slower machines). It is
// skipped under the race detector, which multiplies atomic costs by an
// order of magnitude and would only measure the instrumentation.
func TestCounterOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead budget is not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("skipping overhead budget in -short mode")
	}
	budget := 30.0
	if env := os.Getenv("SMARTCROWD_COUNTER_BUDGET_NS"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad SMARTCROWD_COUNTER_BUDGET_NS %q: %v", env, err)
		}
		budget = v
	}
	res := testing.Benchmark(BenchmarkCounterInc)
	perOp := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("counter increment: %.2f ns/op over %d iterations (budget %.0f ns)", perOp, res.N, budget)
	if perOp > budget {
		t.Errorf("counter increment %.2f ns/op exceeds %.0f ns budget", perOp, budget)
	}
	if res.AllocsPerOp() != 0 {
		t.Errorf("counter increment allocates %d objects/op, want 0", res.AllocsPerOp())
	}
}
