package telemetry

import (
	"encoding/json"
	"sort"
)

// Snapshot is a point-in-time flattening of every metric in a registry to
// `name{labels}` → value. Histograms expand to `_count`, `_sum`, `_max`,
// `_p50`, `_p90` and `_p99` series. Counters and histogram counts/sums
// are marked monotone so Delta can subtract a baseline; gauges, maxima
// and quantiles report their current value.
type Snapshot struct {
	Values map[string]float64 `json:"values"`
	// Monotone flags the keys Delta subtracts (counters, _count, _sum).
	Monotone map[string]bool `json:"-"`
}

// seriesKey renders `name{labels}` (or bare name when unlabeled).
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// suffixedKey renders `name_sfx{labels}`.
func suffixedKey(name, sfx, labels string) string { return seriesKey(name+sfx, labels) }

// Snapshot flattens the registry. The result is a consistent read of each
// individual atomic, not a global point-in-time cut.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Values:   make(map[string]float64),
		Monotone: make(map[string]bool),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				k := seriesKey(f.name, s.labels)
				snap.Values[k] = float64(m.Value())
				snap.Monotone[k] = true
			case *Gauge:
				snap.Values[seriesKey(f.name, s.labels)] = float64(m.Value())
			case *Histogram:
				ck := suffixedKey(f.name, "_count", s.labels)
				sk := suffixedKey(f.name, "_sum", s.labels)
				snap.Values[ck] = float64(m.Count())
				snap.Values[sk] = float64(m.Sum())
				snap.Monotone[ck] = true
				snap.Monotone[sk] = true
				snap.Values[suffixedKey(f.name, "_max", s.labels)] = float64(m.Max())
				snap.Values[suffixedKey(f.name, "_p50", s.labels)] = float64(m.Quantile(0.50))
				snap.Values[suffixedKey(f.name, "_p90", s.labels)] = float64(m.Quantile(0.90))
				snap.Values[suffixedKey(f.name, "_p99", s.labels)] = float64(m.Quantile(0.99))
			}
		}
	}
	return snap
}

// Delta returns this snapshot relative to a baseline: monotone series are
// subtracted, everything else reports its current value. Zero entries are
// dropped so bench reports stay readable.
func (s Snapshot) Delta(prev Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range s.Values {
		if s.Monotone[k] {
			v -= prev.Values[k] // missing baseline key reads as 0
		}
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// Keys returns the snapshot's series keys, sorted.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSON renders just the values map, sorted by encoding/json.
func (s Snapshot) MarshalJSON() ([]byte, error) { return json.Marshal(s.Values) }

// TakeSnapshot flattens the Default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// Since returns the Default registry's metric movement since a baseline
// snapshot — the delta the bench harness records alongside timings.
func Since(prev Snapshot) map[string]float64 { return Default.Snapshot().Delta(prev) }
