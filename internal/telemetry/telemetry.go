// Package telemetry is SmartCrowd's zero-dependency observability layer:
// a process-wide metrics registry (lock-free atomic counters and gauges,
// exponential-bucket streaming histograms), a lightweight span tracer, and
// export surfaces — Prometheus text exposition (prom.go), an expvar
// bridge, and a flattened Snapshot JSON API (snapshot.go) the bench
// harness uses to record metric deltas alongside timings.
//
// The paper's evaluation (§VII) is built entirely on measured system
// signals — block intervals, fee totals, confirmation latencies, per-miner
// hashing-power shares. This package makes those signals observable on a
// live node instead of only in offline bench harnesses.
//
// Design constraints:
//
//   - Stdlib only. No client_golang, no OpenTelemetry.
//   - Cheap enough to leave on: a counter increment is one atomic add on a
//     pre-resolved handle (documented budget: ≤ 30 ns, enforced by
//     TestCounterOverheadBudget); a histogram observation is three atomic
//     adds plus a CAS max.
//   - Safe under -race: every hot-path mutation is a sync/atomic
//     operation; the registry lock is only taken when resolving a handle,
//     which callers do once at package init.
//
// Naming convention: `smartcrowd_<pkg>_<name>` with unit suffixes
// (`_total` for counters, `_ns`/`_ms` for durations) and dimensions as
// labels, e.g. `smartcrowd_txpool_admission_total{outcome="shed"}`.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered as key="value".
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing event count. The zero value is
// usable but unregistered; obtain counters from a Registry so they export.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (pool depth, head height, hash rate).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates family types; a name is bound to one kind for
// the life of the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// series is one labeled instance of a family.
type series struct {
	labels string // canonical `k="v",k2="v2"` rendering, sorted by key
	metric interface{}
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]*series
}

// Registry owns metric families, the span ring, and the trace store. All
// methods are safe for concurrent use; handle resolution takes a lock,
// but the returned handles mutate lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	spans    spanRing
	traces   traceStore
}

// NewRegistry creates an empty registry. Most code uses the process-wide
// Default; simulations that need per-run isolation create their own.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every package-level helper binds to.
var Default = NewRegistry()

// validName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// canonicalLabels renders labels sorted by key. Values are escaped for the
// exposition format (backslash, quote, newline).
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// resolve returns (creating on first use) the metric for name+labels.
// A name is permanently bound to one kind; mixing kinds is a programming
// error and panics, like a duplicate expvar.Publish.
func (r *Registry) resolve(kind metricKind, name string, labels []Label, fresh func() interface{}) interface{} {
	key := canonicalLabels(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == kind {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			return s.metric
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if !validName(name) {
			panic("telemetry: invalid metric name " + name)
		}
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, metric: fresh()}
		f.series[key] = s
	}
	return s.metric
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.resolve(kindCounter, name, labels, func() interface{} { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.resolve(kindGauge, name, labels, func() interface{} { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it on first
// use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.resolve(kindHistogram, name, labels, func() interface{} { return new(Histogram) }).(*Histogram)
}

// SetHelp attaches exposition help text to a family (first writer wins;
// families without help export their name).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok && f.help == "" {
		f.help = help
	}
}

// Package-level helpers bound to Default.

// GetCounter returns a counter from the Default registry.
func GetCounter(name string, labels ...Label) *Counter { return Default.Counter(name, labels...) }

// GetGauge returns a gauge from the Default registry.
func GetGauge(name string, labels ...Label) *Gauge { return Default.Gauge(name, labels...) }

// GetHistogram returns a histogram from the Default registry.
func GetHistogram(name string, labels ...Label) *Histogram {
	return Default.Histogram(name, labels...)
}

// SetHelp attaches help text to a Default-registry family.
func SetHelp(name, help string) { Default.SetHelp(name, help) }
