//go:build race

package telemetry

// raceEnabled reports whether the race detector is compiled in; the
// overhead-budget gate skips itself under -race.
const raceEnabled = true
