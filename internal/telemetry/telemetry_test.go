package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("smartcrowd_test_events_total", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter value %d, want 5", got)
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("smartcrowd_test_events_total", L("kind", "a")) != c {
		t.Error("handle not memoized")
	}
	// Different labels are a distinct series.
	if r.Counter("smartcrowd_test_events_total", L("kind", "b")) == c {
		t.Error("label series not distinct")
	}

	g := r.Gauge("smartcrowd_test_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge value %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("smartcrowd_test_x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge on a counter name did not panic")
		}
	}()
	r.Gauge("smartcrowd_test_x_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("9bad name")
}

func TestLabelCanonicalization(t *testing.T) {
	if got := canonicalLabels([]Label{L("z", "1"), L("a", "2")}); got != `a="2",z="1"` {
		t.Errorf("labels not sorted: %s", got)
	}
	if got := canonicalLabels([]Label{L("k", `a"b\c`)}); got != `k="a\"b\\c"` {
		t.Errorf("labels not escaped: %s", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("smartcrowd_test_total")
	g := r.Gauge("smartcrowd_test_level")
	h := r.Histogram("smartcrowd_test_sizes")
	c.Add(10)
	g.Set(3)
	h.Observe(8)

	before := r.Snapshot()
	c.Add(5)
	g.Set(9)
	h.Observe(8)
	delta := r.Snapshot().Delta(before)

	if delta["smartcrowd_test_total"] != 5 {
		t.Errorf("counter delta %v, want 5", delta["smartcrowd_test_total"])
	}
	if delta["smartcrowd_test_level"] != 9 {
		t.Errorf("gauge delta reports %v, want current value 9", delta["smartcrowd_test_level"])
	}
	if delta["smartcrowd_test_sizes_count"] != 1 {
		t.Errorf("histogram count delta %v, want 1", delta["smartcrowd_test_sizes_count"])
	}
	// Snapshot JSON is the flat values map.
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["smartcrowd_test_total"] != 15 {
		t.Errorf("snapshot JSON total %v, want 15", m["smartcrowd_test_total"])
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("smartcrowd_test_events_total", L("kind", "a")).Add(3)
	r.Counter("smartcrowd_test_events_total", L("kind", "b")).Add(1)
	r.SetHelp("smartcrowd_test_events_total", "test events")
	r.Gauge("smartcrowd_test_depth").Set(-4)
	h := r.Histogram("smartcrowd_test_latency_ns")
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP smartcrowd_test_events_total test events",
		"# TYPE smartcrowd_test_events_total counter",
		`smartcrowd_test_events_total{kind="a"} 3`,
		`smartcrowd_test_events_total{kind="b"} 1`,
		"# TYPE smartcrowd_test_depth gauge",
		"smartcrowd_test_depth -4",
		"# TYPE smartcrowd_test_latency_ns summary",
		`smartcrowd_test_latency_ns{quantile="0.5"} 1023`,
		"smartcrowd_test_latency_ns_sum 100000",
		"smartcrowd_test_latency_ns_count 100",
		"# TYPE smartcrowd_test_latency_ns_max gauge",
		"smartcrowd_test_latency_ns_max 1000",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\n---\n%s", want, out)
		}
	}
	// Every non-comment line is `name value` or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestSpanRing(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("test.op")
	time.Sleep(time.Millisecond)
	d := sp.End(L("blocks", "7"))
	if d < time.Millisecond {
		t.Errorf("span duration %v too short", d)
	}
	spans := r.RecentSpans()
	if len(spans) != 1 || spans[0].Name != "test.op" || spans[0].Labels["blocks"] != "7" {
		t.Errorf("recent spans %+v", spans)
	}
	// Overflow keeps the most recent spanRingSize entries, oldest first.
	for i := 0; i < spanRingSize+10; i++ {
		r.StartSpan("overflow").End()
	}
	spans = r.RecentSpans()
	if len(spans) != spanRingSize {
		t.Fatalf("ring holds %d spans, want %d", len(spans), spanRingSize)
	}
	for _, s := range spans {
		if s.Name != "overflow" {
			t.Fatalf("stale span %q survived overflow", s.Name)
		}
	}
}

// TestConcurrentUse exercises every mutation path under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := r.Counter("smartcrowd_test_conc_total", L("w", string(rune('a'+n))))
			h := r.Histogram("smartcrowd_test_conc_ns")
			g := r.Gauge("smartcrowd_test_conc_depth")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(uint64(j))
				g.Add(1)
				if j%100 == 0 {
					sp := r.StartSpan("conc")
					_ = r.Snapshot()
					sp.End()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Values["smartcrowd_test_conc_ns_count"] != 8000 {
		t.Errorf("histogram count %v, want 8000", snap.Values["smartcrowd_test_conc_ns_count"])
	}
	if snap.Values["smartcrowd_test_conc_depth"] != 8000 {
		t.Errorf("gauge %v, want 8000", snap.Values["smartcrowd_test_conc_depth"])
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // second call must not panic on duplicate expvar name
}
