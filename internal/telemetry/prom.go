package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric in the Prometheus text exposition
// format (v0.0.4). Families are emitted in name order, series in label
// order, so output is deterministic given a quiescent registry. Counters
// and gauges map directly; histograms export as summaries (quantile
// series plus `_sum`/`_count`) with an additional `<name>_max` gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	type line struct{ s string }
	var out []line
	emit := func(format string, args ...interface{}) {
		out = append(out, line{fmt.Sprintf(format, args...)})
	}
	for _, name := range names {
		f := r.families[name]
		help := f.help
		if help == "" {
			help = name
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		emit("# HELP %s %s", name, help)
		switch f.kind {
		case kindCounter:
			emit("# TYPE %s counter", name)
			for _, k := range keys {
				c := f.series[k].metric.(*Counter)
				emit("%s %s", seriesKey(name, k), strconv.FormatUint(c.Value(), 10))
			}
		case kindGauge:
			emit("# TYPE %s gauge", name)
			for _, k := range keys {
				g := f.series[k].metric.(*Gauge)
				emit("%s %s", seriesKey(name, k), strconv.FormatInt(g.Value(), 10))
			}
		case kindHistogram:
			emit("# TYPE %s summary", name)
			for _, k := range keys {
				h := f.series[k].metric.(*Histogram)
				for _, q := range [...]struct {
					q float64
					s string
				}{{0.50, "0.5"}, {0.90, "0.9"}, {0.99, "0.99"}} {
					ql := `quantile="` + q.s + `"`
					if k != "" {
						ql = k + "," + ql
					}
					emit("%s %s", seriesKey(name, ql), strconv.FormatUint(h.Quantile(q.q), 10))
				}
				emit("%s %s", suffixedKey(name, "_sum", k), strconv.FormatUint(h.Sum(), 10))
				emit("%s %s", suffixedKey(name, "_count", k), strconv.FormatUint(h.Count(), 10))
			}
			emit("# TYPE %s_max gauge", name)
			for _, k := range keys {
				h := f.series[k].metric.(*Histogram)
				emit("%s %s", suffixedKey(name, "_max", k), strconv.FormatUint(h.Max(), 10))
			}
		}
	}
	r.mu.RUnlock()

	for _, l := range out {
		if _, err := io.WriteString(w, l.s+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// WritePrometheus renders the Default registry.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

var expvarOnce sync.Once

// PublishExpvar exposes the Default registry's snapshot as the expvar
// variable "smartcrowd", so GET /debug/vars carries the same numbers as
// GET /metrics. Idempotent — expvar panics on duplicate names, so the
// publish happens exactly once per process.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("smartcrowd", expvar.Func(func() interface{} {
			return Default.Snapshot()
		}))
	})
}
