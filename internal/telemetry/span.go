package telemetry

import (
	"sync"
	"time"
)

// spanRingSize bounds the retained completed spans.
const spanRingSize = 256

// SpanRecord is one completed traced region. The trace fields are empty
// for plain (untraced) spans and hex-rendered ids for spans opened via
// StartTrace/StartSpanIn.
type SpanRecord struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationNs is the span's wall-clock length in nanoseconds.
	DurationNs int64             `json:"durationNs"`
	Labels     map[string]string `json:"labels,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	SpanID     string            `json:"spanId,omitempty"`
	ParentID   string            `json:"parentId,omitempty"`
}

// spanRing retains the most recent spanRingSize completed spans. Spans end
// at block/batch granularity (not per transaction), so a mutex here is
// nowhere near any hot path.
type spanRing struct {
	mu    sync.Mutex
	buf   [spanRingSize]SpanRecord
	next  int
	total uint64
}

func (sr *spanRing) record(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % spanRingSize
	sr.total++
	sr.mu.Unlock()
}

// recent returns retained spans oldest-first.
func (sr *spanRing) recent() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := spanRingSize
	if sr.total < uint64(n) {
		n = int(sr.total)
	}
	out := make([]SpanRecord, 0, n)
	start := (sr.next - n + spanRingSize) % spanRingSize
	for i := 0; i < n; i++ {
		out = append(out, sr.buf[(start+i)%spanRingSize])
	}
	return out
}

// Span is an in-progress traced region; End completes it into the
// registry's ring buffer and, when the span belongs to a trace, into the
// registry's trace store as well.
type Span struct {
	ring   *spanRing
	store  *traceStore
	name   string
	start  time.Time
	tc     TraceContext // own context: trace id + this span's id
	parent SpanID
}

// StartSpan opens a span. The returned value is cheap to discard — a span
// never ended is simply never recorded.
func (r *Registry) StartSpan(name string) Span {
	return Span{ring: &r.spans, name: name, start: time.Now()}
}

// Context returns the span's trace context, for threading into children
// or propagating over the wire. Zero (invalid) for untraced spans.
func (s Span) Context() TraceContext { return s.tc }

// End completes the span with optional labels and returns its duration.
func (s Span) End(labels ...Label) time.Duration {
	d := time.Since(s.start)
	if s.ring == nil {
		return d
	}
	var lm map[string]string
	if len(labels) > 0 {
		lm = make(map[string]string, len(labels))
		for _, l := range labels {
			lm[l.Key] = l.Value
		}
	}
	rec := SpanRecord{Name: s.name, Start: s.start, DurationNs: int64(d), Labels: lm}
	if s.tc.Valid() {
		rec.TraceID = s.tc.TraceID.String()
		rec.SpanID = s.tc.Span.String()
		if !s.parent.IsZero() {
			rec.ParentID = s.parent.String()
		}
	}
	s.ring.record(rec)
	if s.tc.Valid() && s.store != nil {
		s.store.record(s.tc, rec)
	}
	return d
}

// RecentSpans returns the registry's retained spans, oldest first.
func (r *Registry) RecentSpans() []SpanRecord { return r.spans.recent() }

// StartSpan opens a span on the Default registry.
func StartSpan(name string) Span { return Default.StartSpan(name) }

// RecentSpans returns the Default registry's retained spans.
func RecentSpans() []SpanRecord { return Default.RecentSpans() }
