package pow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/telemetry"
)

// MinerPower describes one mining provider's share of the network.
type MinerPower struct {
	// Name labels the miner in experiment output.
	Name string
	// HashShare is the miner's fraction of total hashing power, as the
	// paper configures via miner.start() thread counts. Shares need not
	// sum to 1; they are normalized.
	HashShare float64
}

// SealEvent is one simulated block-sealing outcome.
type SealEvent struct {
	// Winner is the index into the miner set of the provider who found
	// the nonce.
	Winner int
	// Interval is the time the network needed to find this block.
	Interval time.Duration
}

// SimSealer samples proof-of-work outcomes instead of grinding hashes.
// PoW block discovery is a Poisson race: the network-wide interarrival
// time is exponential with the configured mean, and the winner of each
// round is distributed proportionally to hashing power. Both facts follow
// from the memorylessness of independent Poisson processes, so sampling
// reproduces the statistics the paper measures (Fig. 3) exactly.
//
// SimSealer is deterministic given its seed, which makes every experiment
// reproducible bit-for-bit. It is not safe for concurrent use.
type SimSealer struct {
	rng        *rand.Rand
	miners     []MinerPower
	cumulative []float64 // normalized cumulative shares
	meanBlock  time.Duration
	// wins are the per-miner lottery-win counters, resolved once at
	// construction so Next stays a pure sampling step plus one atomic add.
	wins []*telemetry.Counter
}

// SimConfig configures a SimSealer.
type SimConfig struct {
	// Miners is the provider set with hashing-power shares.
	Miners []MinerPower
	// MeanBlockTime is the expected network block interval. The paper
	// measures 15.35 s on its geth testnet at difficulty 0xf00000.
	MeanBlockTime time.Duration
	// Seed makes runs reproducible.
	Seed int64
}

// Simulation errors.
var (
	ErrNoMiners  = errors.New("pow: no miners configured")
	ErrBadShares = errors.New("pow: hash shares must be positive")
)

// NewSimSealer validates the configuration and builds a sealer.
func NewSimSealer(cfg SimConfig) (*SimSealer, error) {
	if len(cfg.Miners) == 0 {
		return nil, ErrNoMiners
	}
	if cfg.MeanBlockTime <= 0 {
		return nil, fmt.Errorf("pow: mean block time %v must be positive", cfg.MeanBlockTime)
	}
	total := 0.0
	for _, m := range cfg.Miners {
		if m.HashShare <= 0 || math.IsNaN(m.HashShare) || math.IsInf(m.HashShare, 0) {
			return nil, fmt.Errorf("%w: %q has share %v", ErrBadShares, m.Name, m.HashShare)
		}
		total += m.HashShare
	}
	cum := make([]float64, len(cfg.Miners))
	acc := 0.0
	for i, m := range cfg.Miners {
		acc += m.HashShare / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0 // guard against rounding
	return &SimSealer{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		miners:     append([]MinerPower(nil), cfg.Miners...),
		cumulative: cum,
		meanBlock:  cfg.MeanBlockTime,
		wins:       simWinCounters(cfg.Miners),
	}, nil
}

// Miners returns the configured miner set.
func (s *SimSealer) Miners() []MinerPower {
	return append([]MinerPower(nil), s.miners...)
}

// Next samples the next block-sealing event.
func (s *SimSealer) Next() SealEvent {
	// Interarrival ~ Exp(mean).
	interval := time.Duration(s.rng.ExpFloat64() * float64(s.meanBlock))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	// Winner ∝ hash share.
	u := s.rng.Float64()
	winner := len(s.cumulative) - 1
	for i, c := range s.cumulative {
		if u < c {
			winner = i
			break
		}
	}
	s.wins[winner].Inc()
	return SealEvent{Winner: winner, Interval: interval}
}

// NonceFor deterministically fabricates a plausible nonce for a simulated
// block; simulated chains skip the PoW predicate but keep the field
// populated so encodings stay uniform.
func (s *SimSealer) NonceFor() uint64 { return s.rng.Uint64() }

// TopFiveEthereumShares returns the hashing-power distribution the paper
// uses: the top-5 Ethereum mining pools at the time of writing
// (etherscan.io/stat/miner), normalized. Fig. 4(a) labels these
// 26.30%, 22.50%, 14.90%, 11.80% and 10.10%.
func TopFiveEthereumShares() []MinerPower {
	return []MinerPower{
		{Name: "provider-1", HashShare: 0.2630},
		{Name: "provider-2", HashShare: 0.2250},
		{Name: "provider-3", HashShare: 0.1490},
		{Name: "provider-4", HashShare: 0.1180},
		{Name: "provider-5", HashShare: 0.1010},
	}
}

// PaperMeanBlockTime is the average block time the paper measures over
// 2000 blocks on its private geth testnet (Fig. 3(b)).
const PaperMeanBlockTime = 15350 * time.Millisecond

// PaperBlockDifficulty is the fixed difficulty the paper configures
// (0xf00000).
const PaperBlockDifficulty uint64 = 0xf00000
