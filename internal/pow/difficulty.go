package pow

// Difficulty adjustment. The paper fixes difficulty at 0xf00000 for its
// testnet, but a deployable SmartCrowd must retarget as providers join and
// leave; we implement the homestead-style rule geth applies, which the
// paper's substrate inherits.

// DifficultyConfig tunes the retargeting rule.
type DifficultyConfig struct {
	// TargetBlockTime is the desired seconds-per-block.
	TargetBlockTime uint64
	// BoundDivisor controls the adjustment step (parent/2048 in Ethereum).
	BoundDivisor uint64
	// Minimum clamps the difficulty floor.
	Minimum uint64
}

// DefaultDifficultyConfig mirrors the paper's environment: ~15-second
// blocks with Ethereum's step size and the paper's 0xf00000 starting
// difficulty as the floor.
func DefaultDifficultyConfig() DifficultyConfig {
	return DifficultyConfig{
		TargetBlockTime: 15,
		BoundDivisor:    2048,
		Minimum:         0xf00000,
	}
}

// NextDifficulty computes a child block's difficulty from its parent, in
// the style of Ethereum Homestead:
//
//	diff = parent + parent/2048 * max(1 - (t_child - t_parent)/target, -99)
//
// clamped below by cfg.Minimum.
func NextDifficulty(cfg DifficultyConfig, parentDifficulty, parentTimeSec, childTimeSec uint64) uint64 {
	if cfg.BoundDivisor == 0 {
		cfg.BoundDivisor = 2048
	}
	if cfg.TargetBlockTime == 0 {
		cfg.TargetBlockTime = 15
	}
	step := parentDifficulty / cfg.BoundDivisor
	if step == 0 {
		step = 1
	}

	var elapsed uint64
	if childTimeSec > parentTimeSec {
		elapsed = childTimeSec - parentTimeSec
	}
	factor := int64(1) - int64(elapsed/cfg.TargetBlockTime)
	if factor < -99 {
		factor = -99
	}

	next := int64(parentDifficulty) + int64(step)*factor
	if next < int64(cfg.Minimum) {
		return cfg.Minimum
	}
	return uint64(next)
}
