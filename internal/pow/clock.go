package pow

import "time"

// nowNanos returns a monotonic nanosecond reading. Isolated here so the
// rest of the package stays free of wall-clock dependencies.
func nowNanos() int64 { return time.Now().UnixNano() }
