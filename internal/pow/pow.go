// Package pow implements SmartCrowd's proof-of-work consensus engine
// (paper §V-C): IoT providers search for a Nonce that drives the block hash
// below the difficulty target, and the provider who finds it records the
// pending detection results and earns the block reward (Eq. 8).
//
// Two sealers share one interface:
//
//   - CPUSealer performs the real nonce search (used by the feasibility
//     benchmarks and the live testnet CLI);
//   - SimSealer (lottery.go) samples the *outcome* of the search — winner ∝
//     hashing power, interarrival ~ exponential — so the experiment harness
//     can reproduce the paper's multi-hour figures in milliseconds.
package pow

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

// ErrSealAborted is returned when a seal attempt is cancelled before a
// valid nonce is found.
var ErrSealAborted = errors.New("pow: seal aborted")

// Sealer searches for a proof-of-work nonce for a block header.
type Sealer interface {
	// Seal mutates hdr.Nonce until hdr meets its difficulty, or aborts
	// when stop is closed. The returned header is fully sealed.
	Seal(hdr types.Header, stop <-chan struct{}) (types.Header, error)
}

// Verify checks a sealed header against its declared difficulty.
func Verify(hdr *types.Header) bool { return hdr.MeetsPoW() }

// CPUSealer performs a parallel brute-force nonce search. The zero value
// uses all CPUs; set Threads to bound parallelism (the paper pins
// miner.start() thread counts to emulate hashing-power shares).
type CPUSealer struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
}

var _ Sealer = (*CPUSealer)(nil)

// Seal implements Sealer by exhaustively searching the nonce space in
// disjoint strides, one per thread.
func (s *CPUSealer) Seal(hdr types.Header, stop <-chan struct{}) (types.Header, error) {
	threads := s.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	var (
		found    atomic.Bool
		result   types.Header
		mu       sync.Mutex
		wg       sync.WaitGroup
		attempts atomic.Uint64
	)
	sealStart := nowNanos()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(start uint64) {
			defer wg.Done()
			h := hdr
			tried := uint64(0)
			// Workers count attempts locally and publish once at exit so
			// the search loop stays free of shared atomics.
			defer func() { attempts.Add(tried) }()
			for nonce := start; ; nonce += uint64(threads) {
				if found.Load() {
					return
				}
				// Poll the stop channel periodically, not per hash.
				if nonce%1024 == start%1024 {
					select {
					case <-stop:
						return
					default:
					}
				}
				h.Nonce = nonce
				tried++
				if h.MeetsPoW() {
					if found.CompareAndSwap(false, true) {
						mu.Lock()
						result = h
						mu.Unlock()
					}
					return
				}
			}
		}(uint64(t))
	}
	wg.Wait()
	elapsed := nowNanos() - sealStart
	tried := attempts.Load()
	mSealAttempts.Observe(tried)
	mSealNs.ObserveDuration(time.Duration(elapsed))
	if elapsed > 0 {
		mHashRate.Set(int64(float64(tried) / (float64(elapsed) / 1e9)))
	}
	if !found.Load() {
		mSealAborted.Inc()
		return types.Header{}, ErrSealAborted
	}
	mSealSealed.Inc()
	mu.Lock()
	defer mu.Unlock()
	return result, nil
}

// HashRate estimates this machine's header-hash throughput (hashes/second)
// by timing a fixed batch. Used to calibrate live-testnet difficulty.
func HashRate(samples int) float64 {
	if samples <= 0 {
		samples = 50_000
	}
	hdr := types.Header{Number: 1, Difficulty: 1<<64 - 1} // unreachable target
	start := nowNanos()
	for i := 0; i < samples; i++ {
		hdr.Nonce = uint64(i)
		_ = hdr.ID()
	}
	elapsed := nowNanos() - start
	if elapsed <= 0 {
		return 0
	}
	return float64(samples) / (float64(elapsed) / 1e9)
}
