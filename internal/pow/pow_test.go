package pow

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/smartcrowd/smartcrowd/internal/types"
)

func TestCPUSealerFindsValidNonce(t *testing.T) {
	s := &CPUSealer{Threads: 2}
	hdr := types.Header{Number: 1, Time: 1, Difficulty: 64}
	sealed, err := s.Seal(hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(&sealed) {
		t.Error("sealed header fails verification")
	}
	if sealed.Number != hdr.Number || sealed.Difficulty != hdr.Difficulty {
		t.Error("sealing mutated non-nonce fields")
	}
}

func TestCPUSealerSingleThread(t *testing.T) {
	s := &CPUSealer{Threads: 1}
	hdr := types.Header{Number: 2, Time: 2, Difficulty: 16}
	sealed, err := s.Seal(hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sealed.MeetsPoW() {
		t.Error("single-threaded seal invalid")
	}
}

func TestCPUSealerAbort(t *testing.T) {
	s := &CPUSealer{Threads: 2}
	// Practically unreachable difficulty.
	hdr := types.Header{Number: 1, Time: 1, Difficulty: 1 << 62}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := s.Seal(hdr, stop)
		done <- err
	}()
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrSealAborted) {
			t.Errorf("err = %v, want ErrSealAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("seal did not abort")
	}
}

func TestVerifyRejectsUnsealed(t *testing.T) {
	hdr := types.Header{Number: 1, Difficulty: 1 << 62, Nonce: 12345}
	if Verify(&hdr) {
		t.Error("unsealed header verified (astronomically unlikely)")
	}
}

func TestNewSimSealerValidation(t *testing.T) {
	if _, err := NewSimSealer(SimConfig{MeanBlockTime: time.Second}); !errors.Is(err, ErrNoMiners) {
		t.Errorf("no miners: err = %v", err)
	}
	if _, err := NewSimSealer(SimConfig{
		Miners:        []MinerPower{{Name: "x", HashShare: -1}},
		MeanBlockTime: time.Second,
	}); !errors.Is(err, ErrBadShares) {
		t.Errorf("negative share: err = %v", err)
	}
	if _, err := NewSimSealer(SimConfig{
		Miners: []MinerPower{{Name: "x", HashShare: 1}},
	}); err == nil {
		t.Error("zero block time accepted")
	}
}

func TestSimSealerDeterministic(t *testing.T) {
	mk := func() *SimSealer {
		s, err := NewSimSealer(SimConfig{
			Miners:        TopFiveEthereumShares(),
			MeanBlockTime: PaperMeanBlockTime,
			Seed:          42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, eb)
		}
	}
}

// TestSimSealerWinnerDistribution checks that over many rounds each
// provider wins in proportion to its hashing power — the property Fig. 3(a)
// and Fig. 4(a) rest on.
func TestSimSealerWinnerDistribution(t *testing.T) {
	miners := TopFiveEthereumShares()
	s, err := NewSimSealer(SimConfig{Miners: miners, MeanBlockTime: PaperMeanBlockTime, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200_000
	wins := make([]int, len(miners))
	for i := 0; i < rounds; i++ {
		wins[s.Next().Winner]++
	}
	total := 0.0
	for _, m := range miners {
		total += m.HashShare
	}
	for i, m := range miners {
		got := float64(wins[i]) / rounds
		want := m.HashShare / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: win rate %.4f, want %.4f ± 0.01", m.Name, got, want)
		}
	}
}

// TestSimSealerBlockTimeDistribution checks mean and shape (exponential:
// variance ≈ mean²) of the interarrival distribution — Fig. 3(b).
func TestSimSealerBlockTimeDistribution(t *testing.T) {
	s, err := NewSimSealer(SimConfig{
		Miners:        TopFiveEthereumShares(),
		MeanBlockTime: PaperMeanBlockTime,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 100_000
	var sum, sumSq float64
	for i := 0; i < rounds; i++ {
		sec := s.Next().Interval.Seconds()
		sum += sec
		sumSq += sec * sec
	}
	mean := sum / rounds
	variance := sumSq/rounds - mean*mean
	wantMean := PaperMeanBlockTime.Seconds()
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Errorf("mean block time %.2fs, want %.2fs ± 2%%", mean, wantMean)
	}
	// Exponential distribution: stddev == mean.
	if math.Abs(math.Sqrt(variance)-wantMean)/wantMean > 0.05 {
		t.Errorf("stddev %.2fs, want ≈ %.2fs (exponential shape)", math.Sqrt(variance), wantMean)
	}
}

func TestSimSealerNormalizesShares(t *testing.T) {
	// Shares that sum to 200% must behave like 50/50.
	s, err := NewSimSealer(SimConfig{
		Miners:        []MinerPower{{Name: "a", HashShare: 1.0}, {Name: "b", HashShare: 1.0}},
		MeanBlockTime: time.Second,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wins := [2]int{}
	for i := 0; i < 50_000; i++ {
		wins[s.Next().Winner]++
	}
	ratio := float64(wins[0]) / float64(wins[0]+wins[1])
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("unnormalized shares skewed the lottery: %.3f", ratio)
	}
}

func TestTopFiveEthereumShares(t *testing.T) {
	shares := TopFiveEthereumShares()
	if len(shares) != 5 {
		t.Fatalf("want 5 providers, got %d", len(shares))
	}
	want := []float64{0.2630, 0.2250, 0.1490, 0.1180, 0.1010}
	for i, m := range shares {
		if m.HashShare != want[i] {
			t.Errorf("provider %d share = %v, want %v", i, m.HashShare, want[i])
		}
	}
}

func TestNextDifficulty(t *testing.T) {
	cfg := DefaultDifficultyConfig()
	parent := uint64(0xf00000 * 4)

	t.Run("fast block raises difficulty", func(t *testing.T) {
		next := NextDifficulty(cfg, parent, 100, 105) // 5s < 15s target
		if next <= parent {
			t.Errorf("difficulty %d did not rise after fast block", next)
		}
	})
	t.Run("slow block lowers difficulty", func(t *testing.T) {
		next := NextDifficulty(cfg, parent, 100, 160) // 60s > 15s target
		if next >= parent {
			t.Errorf("difficulty %d did not fall after slow block", next)
		}
	})
	t.Run("floor respected", func(t *testing.T) {
		next := NextDifficulty(cfg, cfg.Minimum, 100, 100_000)
		if next != cfg.Minimum {
			t.Errorf("difficulty %d fell below floor %d", next, cfg.Minimum)
		}
	})
	t.Run("bounded drop", func(t *testing.T) {
		// factor clamps at -99, so one pathological block cannot zero the
		// difficulty of a large parent.
		huge := uint64(1) << 40
		next := NextDifficulty(cfg, huge, 0, 1<<30)
		if next < huge-huge/2048*99-1 {
			t.Errorf("difficulty dropped more than the clamp allows: %d", next)
		}
	})
	t.Run("zero-value config defaults", func(t *testing.T) {
		next := NextDifficulty(DifficultyConfig{}, 4096, 100, 105)
		if next == 0 {
			t.Error("zero config produced zero difficulty")
		}
	})
}

func TestHashRatePositive(t *testing.T) {
	if hr := HashRate(5_000); hr <= 0 {
		t.Errorf("HashRate = %v, want > 0", hr)
	}
}

func BenchmarkCPUSealDifficulty4096(b *testing.B) {
	s := &CPUSealer{Threads: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := types.Header{Number: uint64(i), Time: 1, Difficulty: 4096}
		if _, err := s.Seal(hdr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSealerNext(b *testing.B) {
	s, err := NewSimSealer(SimConfig{
		Miners:        TopFiveEthereumShares(),
		MeanBlockTime: PaperMeanBlockTime,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
