package pow

import "github.com/smartcrowd/smartcrowd/internal/telemetry"

var (
	mSealAttempts = telemetry.GetHistogram("smartcrowd_pow_seal_attempts")
	mSealNs       = telemetry.GetHistogram("smartcrowd_pow_seal_ns")
	mSealSealed   = telemetry.GetCounter("smartcrowd_pow_seal_total", telemetry.L("outcome", "sealed"))
	mSealAborted  = telemetry.GetCounter("smartcrowd_pow_seal_total", telemetry.L("outcome", "aborted"))
	mHashRate     = telemetry.GetGauge("smartcrowd_pow_hash_rate")
)

func init() {
	telemetry.SetHelp("smartcrowd_pow_seal_attempts", "nonces tried per CPUSealer.Seal call (across all threads)")
	telemetry.SetHelp("smartcrowd_pow_seal_ns", "wall-clock latency per CPUSealer.Seal call")
	telemetry.SetHelp("smartcrowd_pow_seal_total", "CPUSealer.Seal calls, by outcome")
	telemetry.SetHelp("smartcrowd_pow_hash_rate", "effective hashes per second of the last completed seal")
	telemetry.SetHelp("smartcrowd_pow_sim_wins_total", "simulated lottery wins per miner (SimSealer)")
}

// simWinCounters builds one lottery-win counter per configured miner, so
// per-weight win shares are readable straight off /metrics.
func simWinCounters(miners []MinerPower) []*telemetry.Counter {
	out := make([]*telemetry.Counter, len(miners))
	for i, m := range miners {
		out[i] = telemetry.GetCounter("smartcrowd_pow_sim_wins_total", telemetry.L("miner", m.Name))
	}
	return out
}
