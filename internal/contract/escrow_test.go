package contract

import (
	"testing"

	"github.com/smartcrowd/smartcrowd/internal/state"
	"github.com/smartcrowd/smartcrowd/internal/types"
	"github.com/smartcrowd/smartcrowd/internal/vm"
	"github.com/smartcrowd/smartcrowd/internal/wallet"
)

// escrowEnv hosts the bytecode escrow at a test address.
type escrowEnv struct {
	st      *state.DB
	machine *vm.VM
	addr    types.Address
	owner   types.Address
}

func newEscrowEnv(t *testing.T) *escrowEnv {
	t.Helper()
	env := &escrowEnv{
		st:    state.New(),
		addr:  wallet.NewDeterministic("escrow-contract").Address(),
		owner: wallet.NewDeterministic("escrow-owner").Address(),
	}
	env.st.SetCode(env.addr, EscrowCode)
	env.machine = vm.New(env.st, vm.BlockContext{Number: 1, Time: 1000})
	return env
}

// call invokes the escrow; value is credited to the contract first, like
// the chain executor does.
func (e *escrowEnv) call(t *testing.T, caller types.Address, value types.Amount, input []byte) (vm.Result, error) {
	t.Helper()
	if value > 0 {
		if err := e.st.Transfer(caller, e.addr, value); err != nil {
			t.Fatal(err)
		}
	}
	return e.machine.Execute(EscrowCode, vm.CallContext{
		Caller:   caller,
		Contract: e.addr,
		Value:    value,
		Input:    input,
		GasLimit: 1_000_000,
	})
}

func TestEscrowInitOnce(t *testing.T) {
	env := newEscrowEnv(t)
	res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit))
	if err != nil || res.Reverted {
		t.Fatalf("init failed: %v (reverted=%v)", err, res.Reverted)
	}
	// Second init must revert.
	res, err = env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted {
		t.Error("re-init did not revert")
	}
}

func TestEscrowDepositAndPay(t *testing.T) {
	env := newEscrowEnv(t)
	payee := wallet.NewDeterministic("payee").Address()
	_ = env.st.Credit(env.owner, types.EtherAmount(100))

	if res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit)); err != nil || res.Reverted {
		t.Fatalf("init: %v", err)
	}
	if res, err := env.call(t, env.owner, types.EtherAmount(50), EscrowInput(EscrowMethodDeposit)); err != nil || res.Reverted {
		t.Fatalf("deposit: %v", err)
	}
	res, err := env.call(t, env.owner, 0,
		EscrowInput(EscrowMethodPay, AddressWord(payee), AmountWord(types.EtherAmount(20))))
	if err != nil || res.Reverted {
		t.Fatalf("pay: %v (reverted=%v)", err, res.Reverted)
	}
	if env.st.Balance(payee) != types.EtherAmount(20) {
		t.Errorf("payee balance %s, want 20 ETH", env.st.Balance(payee))
	}
	if env.st.Balance(env.addr) != types.EtherAmount(30) {
		t.Errorf("escrow balance %s, want 30 ETH", env.st.Balance(env.addr))
	}
}

func TestEscrowPayUnauthorized(t *testing.T) {
	env := newEscrowEnv(t)
	mallory := wallet.NewDeterministic("mallory").Address()
	_ = env.st.Credit(env.owner, types.EtherAmount(100))
	if res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit)); err != nil || res.Reverted {
		t.Fatalf("init: %v", err)
	}
	if res, err := env.call(t, env.owner, types.EtherAmount(50), EscrowInput(EscrowMethodDeposit)); err != nil || res.Reverted {
		t.Fatalf("deposit: %v", err)
	}
	res, err := env.call(t, mallory, 0,
		EscrowInput(EscrowMethodPay, AddressWord(mallory), AmountWord(types.EtherAmount(50))))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted {
		t.Error("non-owner payout did not revert")
	}
	if env.st.Balance(mallory) != 0 {
		t.Error("mallory extracted funds")
	}
}

func TestEscrowPayOverdraw(t *testing.T) {
	env := newEscrowEnv(t)
	payee := wallet.NewDeterministic("payee").Address()
	_ = env.st.Credit(env.owner, types.EtherAmount(100))
	if res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit)); err != nil || res.Reverted {
		t.Fatalf("init: %v", err)
	}
	if res, err := env.call(t, env.owner, types.EtherAmount(10), EscrowInput(EscrowMethodDeposit)); err != nil || res.Reverted {
		t.Fatalf("deposit: %v", err)
	}
	res, err := env.call(t, env.owner, 0,
		EscrowInput(EscrowMethodPay, AddressWord(payee), AmountWord(types.EtherAmount(11))))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted {
		t.Error("overdraw did not revert")
	}
}

func TestEscrowUnknownMethodReverts(t *testing.T) {
	env := newEscrowEnv(t)
	res, err := env.call(t, env.owner, 0, EscrowInput(99))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted {
		t.Error("unknown method did not revert")
	}
}

// TestEscrowDifferentialAgainstNative drives the same deposit/pay sequence
// through the SCVM escrow and the native contract payout path and checks
// both move the same amounts.
func TestEscrowDifferentialAgainstNative(t *testing.T) {
	// Bytecode path.
	env := newEscrowEnv(t)
	payee := wallet.NewDeterministic("payee").Address()
	_ = env.st.Credit(env.owner, types.EtherAmount(1000))
	if res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit)); err != nil || res.Reverted {
		t.Fatalf("init: %v", err)
	}
	if res, err := env.call(t, env.owner, types.EtherAmount(1000), EscrowInput(EscrowMethodDeposit)); err != nil || res.Reverted {
		t.Fatalf("deposit: %v", err)
	}
	for i := 0; i < 3; i++ {
		res, err := env.call(t, env.owner, 0,
			EscrowInput(EscrowMethodPay, AddressWord(payee), AmountWord(types.EtherAmount(5))))
		if err != nil || res.Reverted {
			t.Fatalf("pay %d: %v", i, err)
		}
	}
	bytecodePaid := env.st.Balance(payee)

	// Native path: one SRA with insurance 1000, bounty 5, three findings.
	f := newFixture(t, acceptAll)
	payout, err := f.submitPair(t, findings("V-1", "V-2", "V-3"), 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if types.Amount(payout.Paid) != bytecodePaid {
		t.Errorf("native paid %s, bytecode paid %s", payout.Paid, bytecodePaid)
	}
}

// TestEscrowGasCosts pins the bytecode gas costs that anchor the Fig. 6(b)
// calibration: a payout costs a few tens of thousands of gas, well under
// the calibrated 110k per report (which also covers signature checks and
// storage bookkeeping the native path performs).
func TestEscrowGasCosts(t *testing.T) {
	env := newEscrowEnv(t)
	payee := wallet.NewDeterministic("payee").Address()
	_ = env.st.Credit(env.owner, types.EtherAmount(100))
	res, err := env.call(t, env.owner, 0, EscrowInput(EscrowMethodInit))
	if err != nil {
		t.Fatal(err)
	}
	if res.GasUsed < vm.GasSStoreSet {
		t.Errorf("init gas %d implausibly low", res.GasUsed)
	}
	if res, err = env.call(t, env.owner, types.EtherAmount(50), EscrowInput(EscrowMethodDeposit)); err != nil {
		t.Fatal(err)
	}
	depositGas := res.GasUsed
	if res, err = env.call(t, env.owner, 0,
		EscrowInput(EscrowMethodPay, AddressWord(payee), AmountWord(types.EtherAmount(1)))); err != nil {
		t.Fatal(err)
	}
	payGas := res.GasUsed
	// The first deposit pays the 20k zero→non-zero SSTORE tier; pay only
	// resets the slot (5k) but adds the 9k TRANSFER, so both sit in the
	// 10k-30k band and pay must at least cover transfer + reset.
	if payGas < vm.GasTransfer+vm.GasSStoreReset {
		t.Errorf("pay gas %d below transfer+reset floor", payGas)
	}
	if depositGas < vm.GasSStoreSet {
		t.Errorf("first deposit gas %d below the set tier", depositGas)
	}
	params := DefaultParams()
	if payGas+vm.IntrinsicGas(EscrowInput(EscrowMethodPay), false) > params.GasDetailedReport {
		t.Errorf("bytecode payout (%d gas) exceeds the calibrated report gas %d",
			payGas, params.GasDetailedReport)
	}
}
